#!/usr/bin/env bash
# End-to-end smoke of the storage fault layer, as run by the CI disk-smoke
# job:
#
#   phase 1  fault-free baseline batch — record every job's journaled
#            result bit for bit;
#   phase 2  crash the same batch at two injected write boundaries
#            (io.crash-after-write, the torture harness's site), resume
#            fault-free, and assert the resumed results are bit-identical
#            to the baseline and every surviving journal line parses;
#   phase 3  a batch under a seeded io.enospc schedule survives with
#            typed degradation (journaled checkpoint failures, not a
#            crash) and still produces baseline-identical results;
#   phase 4  the serve daemon under the same schedule flips to degraded
#            read-only mode (typed storage-error rejections, health
#            "degraded") instead of dying; SIGKILL + fault-free restart
#            recovers every accepted job to done;
#   phase 5  minflo torture on the real c432 batch+trace+serve workload:
#            at least 50 distinct crash points, zero recovery-invariant
#            violations.
#
# Requires a prior `dune build bin/minflo_cli.exe`; override MINFLO to
# point at a different binary.
set -euo pipefail
cd "$(dirname "$0")/.."

MINFLO="${MINFLO:-_build/default/bin/minflo_cli.exe}"
if [ ! -x "$MINFLO" ]; then
  echo "error: $MINFLO not found; run: dune build bin/minflo_cli.exe" >&2
  exit 2
fi

DIR="$(mktemp -d)"
SOCK="$DIR/minflo.sock"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

batch() {
  local ckpt="$1"
  shift
  "$MINFLO" batch c432 --factors 0.55,0.6 --solvers simplex \
    --checkpoint-dir "$ckpt" -j 1 --retries 0 "$@"
}

# job id -> (area, area_ratio, met, iterations) from a journal's job-ok lines
results() {
  python3 - "$1" <<'PY'
import json, sys
out = {}
for line in open(sys.argv[1]):
    line = line.strip()
    if not line:
        continue
    try:
        ev = json.loads(line)
    except ValueError:
        continue  # torn line from a crash: readers skip it
    if ev.get("event") == "job-ok":
        out[ev["job"]] = (ev["area"], ev["area_ratio"], ev["met"],
                          ev["iterations"])
for job in sorted(out):
    print(job, *out[job])
PY
}

every_line_parses() {
  python3 - "$1" <<'PY'
import json, sys
torn = 0
lines = open(sys.argv[1]).read().splitlines()
for i, line in enumerate(lines):
    if not line.strip():
        continue
    try:
        json.loads(line)
    except ValueError:
        torn += 1
        # only the crash-torn line may fail to parse, and scanners drop it;
        # a *parsing* half-record would be silent corruption
        assert len(line) < 2 or not (line.startswith("{") and line.endswith("}")), \
            "half-record parses as complete: %r" % line
assert torn <= 1, "more than one torn line: %d" % torn
print("journal parse audit ok (%d lines, %d torn)" % (len(lines), torn))
PY
}

echo "== phase 1: fault-free baseline"
batch "$DIR/base"
results "$DIR/base/journal.jsonl" >"$DIR/baseline.txt"
cat "$DIR/baseline.txt"
[ -s "$DIR/baseline.txt" ]

echo "== phase 2: crash at injected write boundaries, resume bit-identically"
for K in 4 14; do
  rm -rf "$DIR/crash"
  # a simulated process death pinned to the K-th write the batch performs
  if batch "$DIR/crash" --inject-fault io.crash-after-write \
      --fault-after "$((K - 1))" --fault-count 1 >/dev/null 2>&1; then
    echo "error: batch survived its injected crash at boundary $K" >&2
    exit 1
  fi
  every_line_parses "$DIR/crash/journal.jsonl"
  batch "$DIR/crash" --resume >/dev/null
  results "$DIR/crash/journal.jsonl" >"$DIR/resumed.txt"
  if ! diff -u "$DIR/baseline.txt" "$DIR/resumed.txt"; then
    echo "error: resumed results differ from baseline (boundary $K)" >&2
    exit 1
  fi
  echo "crash at boundary $K: resumed bit-identical"
done

echo "== phase 3: batch survives a seeded io.enospc schedule, typed"
rm -rf "$DIR/enospc"
batch "$DIR/enospc" --inject-fault io.enospc --fault-after 6 --fault-count 2 \
  >/dev/null
every_line_parses "$DIR/enospc/journal.jsonl"
# the two swallowed writes cost journal lines or checkpoint saves, never
# the results
results "$DIR/enospc/journal.jsonl" >"$DIR/enospc.txt"
if ! diff -u "$DIR/baseline.txt" "$DIR/enospc.txt"; then
  echo "error: results drifted under io.enospc" >&2
  exit 1
fi
echo "io.enospc schedule: results bit-identical, failures typed"

wait_ready() {
  for _ in $(seq 1 150); do
    if "$MINFLO" client health --socket "$SOCK" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "error: daemon never became healthy" >&2
  exit 1
}

field() {
  python3 -c 'import json,sys; print(json.loads(sys.argv[1])[sys.argv[2]])' \
    "$1" "$2"
}

echo "== phase 4: serve degrades read-only under io.enospc, recovers after restart"
RUN="$DIR/serve"
"$MINFLO" serve --socket "$SOCK" --dir "$RUN" -j 1 --queue 8 \
  --inject-fault io.enospc --fault-after 8 &
DAEMON_PID=$!
wait_ready
ACCEPTED=()
DEGRADED=0
for i in $(seq 0 9); do
  set +e
  R="$("$MINFLO" client submit c17 --socket "$SOCK" \
    --factor "1.3$i" --sleep 0.2 2>/dev/null)"
  CODE=$?
  set -e
  if [ "$CODE" = 0 ]; then
    ACCEPTED+=("$(field "$R" id)")
  elif [ "$CODE" = 3 ] && [ "$(field "$R" code)" = "storage-error" ]; then
    DEGRADED=1
    break
  else
    echo "error: unexpected submit outcome (exit $CODE): $R" >&2
    exit 1
  fi
done
[ "$DEGRADED" = 1 ] || { echo "error: daemon never degraded" >&2; exit 1; }
[ "${#ACCEPTED[@]}" -ge 1 ] || { echo "error: nothing accepted pre-fault" >&2; exit 1; }
H="$("$MINFLO" client health --socket "$SOCK" || true)"
[ "$(field "$H" status)" = "degraded" ]
echo "degraded after ${#ACCEPTED[@]} accepted jobs, typed storage-error rejection"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
"$MINFLO" serve --socket "$SOCK" --dir "$RUN" -j 1 --queue 8 &
DAEMON_PID=$!
wait_ready
for ID in "${ACCEPTED[@]}"; do
  R="$("$MINFLO" client result "$ID" --socket "$SOCK" --wait)"
  [ "$(field "$R" state)" = "done" ]
done
"$MINFLO" client drain --socket "$SOCK" >/dev/null
wait "$DAEMON_PID"
DAEMON_PID=""
echo "all ${#ACCEPTED[@]} accepted jobs recovered to done after SIGKILL + restart"

echo "== phase 5: crash-point torture (>=50 points, zero violations)"
"$MINFLO" torture c432 --dir "$DIR/torture" \
  --max-crash-points 100 --min-crash-points 50

echo "disk smoke: OK"
