#!/usr/bin/env bash
# End-to-end smoke of the serve daemon, as run by the CI serve-smoke job:
#
#   phase 1  loadgen mix through a live daemon — well-formed jobs plus
#            jobs the lint gate must reject and a deliberately tiny
#            budget — asserting every accepted job reaches a terminal
#            state;
#   phase 2  SIGTERM mid-load: the drain must finish in-flight work and
#            exit 0 with a sealed journal;
#   phase 3  SIGKILL mid-flight, restart on the same run directory: no
#            accepted job may be lost;
#   audit    the journal must be clean — every serve-accepted job has a
#            terminal event.
#
# Requires a prior `dune build bin/minflo_cli.exe`; override MINFLO to
# point at a different binary.
set -euo pipefail
cd "$(dirname "$0")/.."

MINFLO="${MINFLO:-_build/default/bin/minflo_cli.exe}"
if [ ! -x "$MINFLO" ]; then
  echo "error: $MINFLO not found; run: dune build bin/minflo_cli.exe" >&2
  exit 2
fi

DIR="$(mktemp -d)"
SOCK="$DIR/minflo.sock"
RUN="$DIR/run"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

wait_ready() {
  for _ in $(seq 1 150); do
    if "$MINFLO" client health --socket "$SOCK" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "error: daemon never became healthy" >&2
  exit 1
}

field() {
  python3 -c 'import json,sys; print(json.loads(sys.argv[1])[sys.argv[2]])' \
    "$1" "$2"
}

echo "== phase 1: loadgen mix (lint-rejected + budget-exhausted jobs)"
"$MINFLO" serve --socket "$SOCK" --dir "$RUN" -j 2 --queue 8 &
DAEMON_PID=$!
wait_ready
SUMMARY="$("$MINFLO" loadgen c17 c432 --socket "$SOCK" -n 4 \
  --lint-bad 2 --tiny-budget 1 --deadline 300)"
echo "$SUMMARY"
python3 - "$SUMMARY" <<'PY'
import json, sys
s = json.loads(sys.argv[1])
assert s["lint_rejected"] == 2, ("lint gate did not fire", s)
assert s["overloaded"] == 0 and s["draining"] == 0, ("unexpected shedding", s)
assert s["accepted"] == s["done"] + s["failed"] + s["cancelled"], \
    ("accepted job lost", s)
# the tiny-budget job may legitimately fail (budget-exhausted before the
# target); every well-formed job must land in "done"
assert s["done"] >= s["accepted"] - 1, ("well-formed job failed", s)
print("phase 1 ok: %d accepted, %d done, %d lint-rejected"
      % (s["accepted"], s["done"], s["lint_rejected"]))
PY

echo "== phase 2: SIGTERM mid-load drains gracefully"
R1="$("$MINFLO" client submit c17 --socket "$SOCK" --factor 1.30 --sleep 1.0)"
R2="$("$MINFLO" client submit c17 --socket "$SOCK" --factor 1.35 --sleep 1.0)"
field "$R1" id >/dev/null && field "$R2" id >/dev/null
kill -TERM "$DAEMON_PID"
if ! wait "$DAEMON_PID"; then
  echo "error: daemon exited nonzero on SIGTERM drain" >&2
  exit 1
fi
DAEMON_PID=""
grep -q "serve-drain-complete" "$RUN/journal.jsonl"
echo "phase 2 ok: drained with in-flight work, journal sealed"

echo "== phase 3: SIGKILL mid-flight, restart, nothing lost"
"$MINFLO" serve --socket "$SOCK" --dir "$RUN" -j 1 --queue 8 &
DAEMON_PID=$!
wait_ready
ID3="$(field "$("$MINFLO" client submit c432 --socket "$SOCK" \
  --factor 0.5 --sleep 2.0)" id)"
ID4="$(field "$("$MINFLO" client submit c17 --socket "$SOCK" \
  --factor 1.40 --sleep 2.0)" id)"
sleep 0.5 # let the first job reach a worker
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
"$MINFLO" serve --socket "$SOCK" --dir "$RUN" -j 1 --queue 8 &
DAEMON_PID=$!
wait_ready
R3="$("$MINFLO" client result "$ID3" --socket "$SOCK" --wait)"
R4="$("$MINFLO" client result "$ID4" --socket "$SOCK" --wait)"
[ "$(field "$R3" state)" = "done" ]
[ "$(field "$R4" state)" = "done" ]
"$MINFLO" client drain --socket "$SOCK" >/dev/null
wait "$DAEMON_PID"
DAEMON_PID=""
echo "phase 3 ok: both jobs recovered to done after SIGKILL + restart"

echo "== journal audit: every accepted job reached a terminal state"
python3 - "$RUN/journal.jsonl" <<'PY'
import json, sys
TERMINAL = {"job-result", "job-failed", "job-quarantined",
            "job-lint-quarantined", "job-cancelled"}
accepted, terminal = set(), set()
for line in open(sys.argv[1]):
    line = line.strip()
    if not line:
        continue
    try:
        ev = json.loads(line)
    except ValueError:
        continue  # torn final line from the SIGKILL: readers skip it
    if ev.get("event") == "serve-accepted":
        accepted.add(ev["job"])
    elif ev.get("event") in TERMINAL and "job" in ev:
        terminal.add(ev["job"])
missing = accepted - terminal
assert not missing, "accepted jobs with no terminal event: %s" % missing
print("audit clean: %d accepted jobs, all terminal" % len(accepted))
PY

echo "serve smoke: OK"
