#!/usr/bin/env bash
# End-to-end chaos smoke of the networked serve stack, as run by the CI
# chaos-smoke job:
#
#   phase 0  client deadlines: `result --wait --timeout` against a job
#            that is still sleeping must exit 1 with the typed
#            net-timeout diagnostic — never hang;
#   phase 1  fault-free baseline: four sizings, signatures recorded;
#   phase 2  the same four sizings through `minflo chaosproxy` with a
#            seeded fault schedule (dropped accepts, stalled requests,
#            torn response lines, delayed responses), plus a worker
#            SIGKILLed mid-load — every job must still resolve
#            bit-identically to the baseline;
#   phase 3  a loadgen mix through the same proxy: every accepted job
#            reaches a terminal state;
#   audit    the daemon journal must be clean (every serve-accepted job
#            terminal) and the proxy's report must prove the armed
#            faults actually fired.
#
# Requires a prior `dune build bin/minflo_cli.exe`; override MINFLO to
# point at a different binary.
set -euo pipefail
cd "$(dirname "$0")/.."

MINFLO="${MINFLO:-_build/default/bin/minflo_cli.exe}"
if [ ! -x "$MINFLO" ]; then
  echo "error: $MINFLO not found; run: dune build bin/minflo_cli.exe" >&2
  exit 2
fi

DIR="$(mktemp -d)"
BASE_SOCK="$DIR/base.sock"
BASE_RUN="$DIR/base-run"
SOCK="$DIR/minflo.sock"
RUN="$DIR/run"
PROXY="$DIR/proxy.sock"
REPORT="$DIR/chaos-report.json"
DAEMON_PID=""
PROXY_PID=""
cleanup() {
  [ -n "$PROXY_PID" ] && kill -9 "$PROXY_PID" 2>/dev/null || true
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

wait_ready() { # $1 = socket
  for _ in $(seq 1 150); do
    if "$MINFLO" client health --socket "$1" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "error: daemon on $1 never became healthy" >&2
  exit 1
}

field() {
  python3 -c 'import json,sys; print(json.loads(sys.argv[1])[sys.argv[2]])' \
    "$1" "$2"
}

# the fields whose equality defines "the same sizing result" — identity
# and provenance fields (id embeds the sleep suffix, resumed records a
# recovery) are excluded by construction
signature() {
  python3 -c '
import json, sys
r = json.loads(sys.argv[1])
keys = ["circuit", "factor", "solver", "area", "area_ratio", "cp",
        "target", "met", "iterations", "saving_pct", "stop"]
print(json.dumps([r.get(k) for k in keys]))' "$1"
}

FACTORS="1.30 1.31 1.32 1.33"

echo "== phase 0: --wait --timeout is a typed deadline, not a hang"
"$MINFLO" serve --socket "$BASE_SOCK" --dir "$BASE_RUN" -j 2 --queue 8 &
DAEMON_PID=$!
wait_ready "$BASE_SOCK"
SLOW_ID="$(field "$("$MINFLO" client submit c17 --socket "$BASE_SOCK" \
  --factor 1.50 --sleep 3.0)" id)"
if OUT="$("$MINFLO" client result "$SLOW_ID" --socket "$BASE_SOCK" \
  --wait --timeout 0.5 2>&1)"; then
  echo "error: deadlined wait on a sleeping job succeeded: $OUT" >&2
  exit 1
fi
echo "$OUT" | grep -q "net-timeout" || {
  echo "error: deadline expiry was not the typed net-timeout: $OUT" >&2
  exit 1
}
# without the deadline the same wait resolves normally
[ "$(field "$("$MINFLO" client result "$SLOW_ID" --socket "$BASE_SOCK" \
  --wait)" state)" = "done" ]
echo "phase 0 ok: deadline expired typed (exit 1), undeadlined wait resolved"

echo "== phase 1: fault-free baseline signatures"
: > "$DIR/baseline.sigs"
for F in $FACTORS; do
  ID="$(field "$("$MINFLO" client submit c17 --socket "$BASE_SOCK" \
    --factor "$F")" id)"
  signature "$("$MINFLO" client result "$ID" --socket "$BASE_SOCK" --wait)" \
    >> "$DIR/baseline.sigs"
done
"$MINFLO" client drain --socket "$BASE_SOCK" >/dev/null
wait "$DAEMON_PID"
DAEMON_PID=""
echo "phase 1 ok: $(wc -l < "$DIR/baseline.sigs") baseline signatures"

echo "== phase 2: same jobs through the chaos proxy + worker SIGKILL"
"$MINFLO" serve --socket "$SOCK" --dir "$RUN" -j 2 --queue 16 \
  --retries 2 --watchdog 30 &
DAEMON_PID=$!
wait_ready "$SOCK"
"$MINFLO" chaosproxy --listen "unix:$PROXY" --upstream "$SOCK" \
  --inject-fault net.accept-drop --inject-fault net.read-stall \
  --inject-fault net.torn-write --inject-fault net.delayed-response \
  --fault-count 2 --fault-seed 42 --delay 0.2 --report "$REPORT" \
  >/dev/null &
PROXY_PID=$!
for _ in $(seq 1 100); do [ -S "$PROXY" ] && break; sleep 0.05; done
[ -S "$PROXY" ] || { echo "error: chaosproxy never listened" >&2; exit 1; }

# the first job sleeps long enough for its worker to be murdered mid-run;
# sleeps only perturb the job identity, never the sizing result
IDS=""
SLEEP=3.0
for F in $FACTORS; do
  IDS="$IDS $(field "$("$MINFLO" client submit c17 --socket "$PROXY" \
    --factor "$F" --sleep "$SLEEP" --retries 6)" id)"
  SLEEP=0.3
done
VICTIM_ID="$(echo "$IDS" | awk '{print $1}')"
VICTIM_PID="$(python3 - "$RUN/journal.jsonl" "$VICTIM_ID" <<'PY'
import json, sys
pid = None
for line in open(sys.argv[1]):
    try:
        ev = json.loads(line)
    except ValueError:
        continue
    if ev.get("event") == "job-spawn" and ev.get("job") == sys.argv[2]:
        pid = ev["pid"]
print(pid if pid is not None else "")
PY
)"
[ -n "$VICTIM_PID" ] || { echo "error: no worker pid journaled" >&2; exit 1; }
kill -9 "$VICTIM_PID" 2>/dev/null || true
echo "killed worker $VICTIM_PID of job $VICTIM_ID mid-load"

: > "$DIR/chaos.sigs"
for ID in $IDS; do
  R="$("$MINFLO" client result "$ID" --socket "$PROXY" --wait \
    --retries 6 --timeout 30)"
  [ "$(field "$R" state)" = "done" ]
  signature "$R" >> "$DIR/chaos.sigs"
done
diff "$DIR/baseline.sigs" "$DIR/chaos.sigs" || {
  echo "error: chaos results differ from the fault-free baseline" >&2
  exit 1
}
echo "phase 2 ok: all four results bit-identical under chaos"

echo "== phase 3: loadgen mix through the proxy"
SUMMARY="$("$MINFLO" loadgen c17 --socket "$PROXY" -n 3 --lint-bad 1 \
  --tiny-budget 1 --retries 6 --deadline 300)"
echo "$SUMMARY"
python3 - "$SUMMARY" <<'PY'
import json, sys
s = json.loads(sys.argv[1])
assert s["lint_rejected"] == 1, ("lint gate did not fire", s)
assert s["accepted"] == s["done"] + s["failed"] + s["cancelled"], \
    ("accepted job lost behind the proxy", s)
assert s["done"] >= 3, ("well-formed job failed", s)
print("phase 3 ok: %d accepted, %d done through the proxy"
      % (s["accepted"], s["done"]))
PY

"$MINFLO" client drain --socket "$SOCK" >/dev/null
wait "$DAEMON_PID"
DAEMON_PID=""
kill -TERM "$PROXY_PID"
wait "$PROXY_PID" 2>/dev/null || true
PROXY_PID=""

echo "== audit: journal clean, faults actually fired"
python3 - "$RUN/journal.jsonl" "$REPORT" "$VICTIM_ID" <<'PY'
import json, sys
TERMINAL = {"job-result", "job-failed", "job-quarantined",
            "job-lint-quarantined", "job-cancelled"}
accepted, terminal, victim_spawns = set(), set(), 0
for line in open(sys.argv[1]):
    line = line.strip()
    if not line:
        continue
    try:
        ev = json.loads(line)
    except ValueError:
        continue
    if ev.get("event") == "serve-accepted":
        accepted.add(ev["job"])
    elif ev.get("event") in TERMINAL and "job" in ev:
        terminal.add(ev["job"])
    elif ev.get("event") == "job-spawn" and ev.get("job") == sys.argv[3]:
        victim_spawns += 1
missing = accepted - terminal
assert not missing, "accepted jobs with no terminal event: %s" % missing
assert victim_spawns >= 2, \
    "the murdered worker was never respawned (%d spawns)" % victim_spawns
report = json.load(open(sys.argv[2]))
fired = {k: v for k, v in report.items() if v > 0}
assert fired, "chaosproxy report shows no fault ever fired: %s" % report
print("audit clean: %d accepted jobs all terminal, victim spawned %dx, "
      "faults fired: %s" % (len(accepted), victim_spawns, fired))
PY

echo "chaos smoke: OK"
