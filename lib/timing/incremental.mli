(** Incremental arrival-time maintenance under size changes.

    TILOS performs one size bump per iteration; recomputing the full STA
    each time costs [O(V+E)] even though a bump usually perturbs a small
    neighborhood. This engine keeps delays and arrival times current under
    {!set_size}: the bumped vertex and the fanins it loads get fresh
    delays, and the arrival change is propagated through a topologically
    ordered worklist over the {!Arena} CSR that stops as soon as values
    settle. Propagation is EXACT — a vertex re-propagates whenever its
    recomputed arrival differs at all, not merely beyond a tolerance — so
    after every update the engine's delays and arrivals are bit-identical
    to a from-scratch batch {!Sta} pass (max-propagation is
    order-independent in floats, and the delay sums keep their coefficient
    order). That bit-equivalence is enforced by a 200-seed random-mutation
    differential in the test suite and by the fuzz oracle's
    [sta/incremental-mismatch] stage. Each worklist pop ticks the
    [incr_updates] perf counter; each {!set_size} that settles ticks
    [full_sweeps_avoided]. *)

type t

val create : Minflo_tech.Delay_model.t -> sizes:float array -> t
(** The engine copies [sizes]; mutate through {!set_size} only. *)

val size : t -> int -> float

val sizes : t -> float array
(** A fresh copy of the current sizes. *)

val all_delays : t -> float array
(** A fresh copy of the current per-vertex delays — bit-identical to
    [Delay_model.delays model (sizes t)] without the O(E) recompute. *)

val delay : t -> int -> float
val arrival : t -> int -> float

val finish : t -> int -> float
(** [arrival + delay]. *)

val set_size : t -> int -> float -> unit
(** Clamped to the model's bounds. *)

val critical_path : t -> float
(** Maximum finish time over sink vertices. *)

val total_violation : t -> target:float -> float
(** Sum over sinks of [max 0 (finish - target)]. *)

val critical_set : ?eps_rel:float -> t -> int list
(** Vertices on some maximal-finish path: backward traversal from the
    worst sinks along tight edges ([arrival j = finish i] within a relative
    tolerance). Equals the minimum-slack vertex set of the batch STA. *)
