module Delay_model = Minflo_tech.Delay_model
module Perf = Minflo_robust.Perf

type t = {
  arena : Arena.t;
  model : Delay_model.t;
  x : float array;
  delays : float array;
  at : float array;
  (* worklist: dirty flags indexed by TOPO POSITION plus the dirty window
     [lo, hi]. Settling scans the window in ascending position — exactly
     the order a min-heap keyed by position pops, with O(1) insert and no
     per-element heap or hash traffic. *)
  dirty : bool array;
  mutable lo : int;
  mutable hi : int;
  (* epoch-stamped visited marks for [critical_set] — avoids allocating and
     clearing an n-sized array per backtrace *)
  stamp : int array;
  mutable epoch : int;
}

let create model ~sizes =
  let arena = Arena.of_model model in
  let n = arena.Arena.n in
  if Array.length sizes <> n then
    invalid_arg "Incremental.create: wrong sizes length";
  let x = Array.copy sizes in
  let delays = Array.make n 0.0 in
  Arena.delays_into arena x delays;
  let at = Array.make n 0.0 in
  Arena.arrivals_into arena ~delays at;
  { arena;
    model;
    x;
    delays;
    at;
    dirty = Array.make n false;
    lo = n;
    hi = -1;
    stamp = Array.make n 0;
    epoch = 0 }

let size t i = t.x.(i)
let sizes t = Array.copy t.x
let all_delays t = Array.copy t.delays
let delay t i = t.delays.(i)
let arrival t i = t.at.(i)
let finish t i = t.at.(i) +. t.delays.(i)

let push t v =
  let p = t.arena.Arena.pos.(v) in
  if not t.dirty.(p) then begin
    t.dirty.(p) <- true;
    if p < t.lo then t.lo <- p;
    if p > t.hi then t.hi <- p
  end

(* Propagate arrival changes in topological order: scan the dirty window
   ascending, recomputing each dirty vertex's arrival EXACTLY — the fresh
   value is the same max the batch sweep computes, not a toleranced update —
   so after every [settle] the engine state bit-matches a from-scratch
   {!Sta.arrivals}. Marking a fanout extends the window ([t.hi] is re-read
   every step); fanouts sit at strictly greater positions, so each vertex is
   processed at most once with all its fanins final. *)
let settle t =
  let a = t.arena in
  let p = ref t.lo in
  while !p <= t.hi do
    if t.dirty.(!p) then begin
      t.dirty.(!p) <- false;
      let v = a.Arena.topo.(!p) in
      Perf.tick_incr_update ();
      let fresh = ref 0.0 in
      for c = a.Arena.fanin_off.(v) to a.Arena.fanin_off.(v + 1) - 1 do
        let u = a.Arena.fanin.(c) in
        let f = t.at.(u) +. t.delays.(u) in
        if f > !fresh then fresh := f
      done;
      if !fresh <> t.at.(v) then begin
        t.at.(v) <- !fresh;
        for c = a.Arena.fanout_off.(v) to a.Arena.fanout_off.(v + 1) - 1 do
          push t a.Arena.fanout.(c)
        done
      end
    end;
    incr p
  done;
  t.lo <- a.Arena.n;
  t.hi <- -1

let set_size t i nx =
  let nx =
    min t.model.Delay_model.max_size (max t.model.Delay_model.min_size nx)
  in
  if nx <> t.x.(i) then begin
    t.x.(i) <- nx;
    let a = t.arena in
    let refresh v =
      let d = Arena.delay a t.x v in
      if d <> t.delays.(v) then begin
        t.delays.(v) <- d;
        (* the vertex's own finish moved: its arrival is unchanged but its
           fanouts must re-max *)
        for c = a.Arena.fanout_off.(v) to a.Arena.fanout_off.(v + 1) - 1 do
          push t a.Arena.fanout.(c)
        done
      end
    in
    refresh i;
    for c = a.Arena.loader_off.(i) to a.Arena.loader_off.(i + 1) - 1 do
      refresh a.Arena.loader_k.(c)
    done;
    Perf.tick_full_sweep_avoided ();
    settle t
  end

let critical_path t =
  let a = t.arena in
  let best = ref 0.0 in
  for k = 0 to Array.length a.Arena.sinks - 1 do
    let f = finish t a.Arena.sinks.(k) in
    if f > !best then best := f
  done;
  !best

let total_violation t ~target =
  let a = t.arena in
  let acc = ref 0.0 in
  for k = 0 to Array.length a.Arena.sinks - 1 do
    acc := !acc +. max 0.0 (finish t a.Arena.sinks.(k) -. target)
  done;
  !acc

let critical_set ?(eps_rel = 1e-9) t =
  let a = t.arena in
  let cp = critical_path t in
  let eps = eps_rel *. (1.0 +. cp) in
  t.epoch <- t.epoch + 1;
  let seen = t.stamp and ep = t.epoch in
  let acc = ref [] in
  let rec visit v =
    if seen.(v) <> ep then begin
      seen.(v) <- ep;
      acc := v :: !acc;
      for c = a.Arena.fanin_off.(v) to a.Arena.fanin_off.(v + 1) - 1 do
        let u = a.Arena.fanin.(c) in
        (* edge u -> v is tight when u's finish realizes v's arrival *)
        if abs_float (t.at.(u) +. t.delays.(u) -. t.at.(v)) <= eps then visit u
      done
    end
  in
  for k = 0 to Array.length a.Arena.sinks - 1 do
    let v = a.Arena.sinks.(k) in
    if abs_float (finish t v -. cp) <= eps then visit v
  done;
  List.rev !acc
