module Digraph = Minflo_graph.Digraph
module Topo = Minflo_graph.Topo
module Delay_model = Minflo_tech.Delay_model

type t = {
  model : Delay_model.t;
  n : int;
  m : int;
  edge_src : int array;
  edge_dst : int array;
  fanout_off : int array;
  fanout : int array;
  fanin_off : int array;
  fanin : int array;
  coeff_off : int array;
  coeff_j : int array;
  coeff_a : float array;
  loader_off : int array;
  loader_k : int array;
  loader_a : float array;
  topo : int array;
  pos : int array;
  sinks : int array;
  mutable blocks : int array array option;
}

let build model =
  let g = model.Delay_model.graph in
  let n = Digraph.node_count g in
  let m = Digraph.edge_count g in
  let edge_src = Array.init m (Digraph.src g) in
  let edge_dst = Array.init m (Digraph.dst g) in
  (* adjacency CSR. Row contents must reproduce [Digraph.succ]/[Digraph.pred]
     exactly (edge insertion order): TILOS breaks best-fanin ties by strict
     [>] over that order, and the critical-set backtrace lists vertices in
     pred order — both are trajectory-visible. *)
  let fanout_off = Array.make (n + 1) 0 in
  let fanin_off = Array.make (n + 1) 0 in
  for e = 0 to m - 1 do
    fanout_off.(edge_src.(e) + 1) <- fanout_off.(edge_src.(e) + 1) + 1;
    fanin_off.(edge_dst.(e) + 1) <- fanin_off.(edge_dst.(e) + 1) + 1
  done;
  for u = 0 to n - 1 do
    fanout_off.(u + 1) <- fanout_off.(u + 1) + fanout_off.(u);
    fanin_off.(u + 1) <- fanin_off.(u + 1) + fanin_off.(u)
  done;
  let fanout = Array.make m 0 in
  let fanin = Array.make m 0 in
  (* edge ids are allocated in insertion order, and [out_edges]/[in_edges]
     return ascending edge ids (the adjacency lists are reversed on read) —
     so filling rows by one ascending edge scan lands every row in exactly
     the order [succ]/[pred] produce it *)
  let out_cur = Array.make n 0 in
  let in_cur = Array.make n 0 in
  for e = 0 to m - 1 do
    let u = edge_src.(e) and v = edge_dst.(e) in
    fanout.(fanout_off.(u) + out_cur.(u)) <- v;
    out_cur.(u) <- out_cur.(u) + 1;
    fanin.(fanin_off.(v) + in_cur.(v)) <- u;
    in_cur.(v) <- in_cur.(v) + 1
  done;
  (* coefficient CSR: [a_coeffs.(i)] flattened in row-array order — float
     sums over a row must keep their order to stay bit-identical *)
  let coeff_off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    coeff_off.(i + 1) <-
      coeff_off.(i) + Array.length model.Delay_model.a_coeffs.(i)
  done;
  let nc = coeff_off.(n) in
  let coeff_j = Array.make nc 0 in
  let coeff_a = Array.make nc 0.0 in
  for i = 0 to n - 1 do
    let row = model.Delay_model.a_coeffs.(i) in
    let base = coeff_off.(i) in
    Array.iteri
      (fun c (j, a) ->
        coeff_j.(base + c) <- j;
        coeff_a.(base + c) <- a)
      row
  done;
  (* loader CSR: for each [j], the [(k, a_kj)] pairs with [k] loading [j].
     Historically this reverse index was built by consing over ascending
     rows, so consumers read it with [k] DESCENDING (and within a row,
     right-to-left). The sensitivity fixpoint sums floats in that order;
     build the rows reversed so the sums stay bit-identical. *)
  let loader_off = Array.make (n + 1) 0 in
  for c = 0 to nc - 1 do
    loader_off.(coeff_j.(c) + 1) <- loader_off.(coeff_j.(c) + 1) + 1
  done;
  for j = 0 to n - 1 do
    loader_off.(j + 1) <- loader_off.(j + 1) + loader_off.(j)
  done;
  let loader_k = Array.make nc 0 in
  let loader_a = Array.make nc 0.0 in
  let cur = Array.make n 0 in
  for i = n - 1 downto 0 do
    for c = coeff_off.(i + 1) - 1 downto coeff_off.(i) do
      let j = coeff_j.(c) in
      loader_k.(loader_off.(j) + cur.(j)) <- i;
      loader_a.(loader_off.(j) + cur.(j)) <- coeff_a.(c);
      cur.(j) <- cur.(j) + 1
    done
  done;
  let topo = Topo.sort g in
  let pos = Array.make n 0 in
  Array.iteri (fun k v -> pos.(v) <- k) topo;
  (* sink ids ascending — the order [Array.iteri] over [is_sink] visits
     them, so sums over sinks keep their historical accumulation order *)
  let nsinks = ref 0 in
  Array.iter (fun s -> if s then incr nsinks) model.Delay_model.is_sink;
  let sinks = Array.make !nsinks 0 in
  let sc = ref 0 in
  Array.iteri
    (fun v s ->
      if s then begin
        sinks.(!sc) <- v;
        incr sc
      end)
    model.Delay_model.is_sink;
  { model;
    n;
    m;
    edge_src;
    edge_dst;
    fanout_off;
    fanout;
    fanin_off;
    fanin;
    coeff_off;
    coeff_j;
    coeff_a;
    loader_off;
    loader_k;
    loader_a;
    topo;
    pos;
    sinks;
    blocks = None }

(* Small physical-equality memo: the engine calls every timing routine with
   the same model record thousands of times per run ({!Model_cache} also
   returns physically shared models across requests), so [of_model] must be
   O(1) on the hot path. A handful of entries covers every realistic
   interleaving (engine + differential legs + audits). *)
let memo_capacity = 8
let memo : (Delay_model.t * t) option array = Array.make memo_capacity None

let of_model model =
  let rec find k =
    if k >= memo_capacity then None
    else
      match memo.(k) with
      | Some (m, a) when m == model -> Some (k, a)
      | _ -> find (k + 1)
  in
  match find 0 with
  | Some (k, a) ->
    (* move-to-front so the working set stays resident *)
    if k > 0 then begin
      let hit = memo.(k) in
      Array.blit memo 0 memo 1 k;
      memo.(0) <- hit
    end;
    a
  | None ->
    let a = build model in
    Array.blit memo 0 memo 1 (memo_capacity - 1);
    memo.(0) <- Some (model, a);
    a

let blocks t =
  match t.blocks with
  | Some b -> b
  | None ->
    let b = Delay_model.elimination_blocks t.model in
    t.blocks <- Some b;
    b

let is_source t i = t.fanin_off.(i) = t.fanin_off.(i + 1)

let delay t x i =
  let acc = ref t.model.Delay_model.b.(i) in
  for c = t.coeff_off.(i) to t.coeff_off.(i + 1) - 1 do
    acc := !acc +. (t.coeff_a.(c) *. x.(t.coeff_j.(c)))
  done;
  t.model.Delay_model.a_self.(i) +. (!acc /. x.(i))

let delays_into t x out =
  for i = 0 to t.n - 1 do
    out.(i) <- delay t x i
  done

let arrivals_into t ~delays out =
  Array.fill out 0 t.n 0.0;
  for k = 0 to t.n - 1 do
    let i = t.topo.(k) in
    let reach = out.(i) +. delays.(i) in
    for c = t.fanout_off.(i) to t.fanout_off.(i + 1) - 1 do
      let j = t.fanout.(c) in
      if reach > out.(j) then out.(j) <- reach
    done
  done
