(** Flat, cache-friendly arena over a {!Minflo_tech.Delay_model} DAG.

    The delay model's {!Minflo_graph.Digraph} stores adjacency as int lists
    and allocates fresh lists on every [succ]/[pred] read — fine for
    construction, hostile to the timing hot loops, which walk fanins and
    fanouts millions of times per sizing run. The arena flattens everything
    once per circuit into int-indexed CSR arrays (offsets + targets) plus a
    flattened coefficient table and its reverse (loader) index, caches the
    topological order and the elimination blocks, and is shared by the
    batch STA, the incremental engine, TILOS, the W-phase and the D-phase.

    Iteration orders are load-bearing: every CSR row reproduces the exact
    order of the structure it replaces ([Digraph.succ]/[pred] insertion
    order; [a_coeffs] row order; the historical cons-built reverse index
    read with rows descending). Float sums and strict-[>] tie-breaks over
    those rows are therefore bit-identical to the pre-arena code — the
    property that keeps engine trajectories, proof-carrying traces and the
    bench baselines unchanged.

    [of_model] memoizes by physical equality (few-entry move-to-front
    table), so repeated calls with the same model record — the engine's
    steady state, and what {!Minflo_tech.Model_cache} produces across
    requests — cost O(1). *)

type t = private {
  model : Minflo_tech.Delay_model.t;
  n : int;  (** vertex count. *)
  m : int;  (** edge count. *)
  edge_src : int array;  (** per edge id (= {!Minflo_graph.Digraph.src}). *)
  edge_dst : int array;
  fanout_off : int array;  (** [n+1] offsets into [fanout]. *)
  fanout : int array;
      (** successors of [i] at [fanout_off.(i) .. fanout_off.(i+1)-1], in
          [Digraph.succ] order. *)
  fanin_off : int array;
  fanin : int array;  (** predecessors, in [Digraph.pred] order. *)
  coeff_off : int array;
  coeff_j : int array;  (** [a_coeffs] rows flattened, in row order. *)
  coeff_a : float array;
  loader_off : int array;
  loader_k : int array;
      (** reverse coefficient index: the vertices [k] with [a_kj <> 0] for
          each [j], rows descending (see module doc). *)
  loader_a : float array;
  topo : int array;  (** one fixed topological order of the vertices. *)
  pos : int array;  (** [pos.(topo.(k)) = k]. *)
  sinks : int array;
      (** the vertices with [is_sink] set, ascending — the order an
          [Array.iteri] scan of [is_sink] visits them, so folds over sinks
          keep their historical accumulation order. *)
  mutable blocks : int array array option;
}

val of_model : Minflo_tech.Delay_model.t -> t
(** The arena of [model], built on first request per physical record and
    memoized afterwards. *)

val blocks : t -> int array array
(** Cached {!Minflo_tech.Delay_model.elimination_blocks}. *)

val is_source : t -> int -> bool
(** No fanin ([Digraph.in_degree = 0] without walking a list). *)

val delay : t -> float array -> int -> float
(** Bit-identical to {!Minflo_tech.Delay_model.delay}. *)

val delays_into : t -> float array -> float array -> unit
(** [delays_into t x out] fills [out] with every vertex delay under [x]. *)

val arrivals_into : t -> delays:float array -> float array -> unit
(** One forward max-propagation sweep in [topo] order into a caller-owned
    array; does not tick the sweep counter (callers decide). *)
