(** Delay balancing with Fictitious Specific Delay Units (FSDUs).

    A balanced configuration assigns a non-negative FSDU to every edge of
    the timing DAG — plus a virtual input edge for every source vertex and a
    virtual output edge for every sink — such that along *every* full
    source-to-sink path, [sum of vertex delays + sum of FSDUs = deadline].
    The FSDUs materialize all slack in the circuit; the D-phase then
    redistributes them by FSDU displacement (Eq. 9), which provably
    preserves path balance (Theorem 2) and, with inputs and the output
    dummy pinned, the critical path (Corollary 1).

    Configurations are generated from a vertex potential [p] (any function
    with [p(j) >= p(i) + delay(i)] on edges, [0 <= p] at sources,
    [p(i) + delay(i) <= deadline] at sinks): [`Alap] uses required times
    (slack pushed toward the inputs), [`Asap] uses arrival times (slack
    pushed toward the outputs). Theorem 1 — all balanced configurations are
    FSDU-displaced versions of each other — shows as the difference of
    potentials, which {!displacement_between} returns. *)

type t = {
  potential : float array;
  edge_fsdu : float array;    (** per {!Minflo_graph.Digraph} edge id *)
  source_fsdu : float array;  (** meaningful at vertices with no fanin *)
  sink_fsdu : float array;    (** meaningful at sink vertices *)
  deadline : float;
}

val balance :
  ?mode:[ `Alap | `Asap ] ->
  ?sta:Sta.t ->
  Minflo_tech.Delay_model.t ->
  delays:float array ->
  deadline:float ->
  t
(** Requires a safe circuit ([CP <= deadline]); FSDUs are non-negative then.
    Default mode [`Alap]. [?sta] supplies an analysis already computed for
    the same [delays] and [deadline] (the D-phase's safety probe): the
    balancer then skips its own full sweep and ticks the
    [full_sweeps_avoided] perf counter. *)

val check :
  Minflo_tech.Delay_model.t ->
  delays:float array ->
  t ->
  (unit, Minflo_robust.Diag.error) result
(** Verifies non-negativity of every FSDU and exact path balance (via the
    potential identity on each edge); failures are typed
    [Invariant {what = "fsdu-balance"; _}] diagnostics. Test-suite oracle
    for Theorems 1-2 and the [--check] post-phase invariant. *)

val displacement_between : t -> t -> float array
(** [displacement_between a b]: the vertex relabeling [r] with
    [b = displace a r] (Theorem 1). *)

val displace : Minflo_tech.Delay_model.t -> t -> float array -> t
(** Apply an FSDU displacement [r] (Eq. 9): each edge FSDU becomes
    [fsdu + r(dst) - r(src)], source edges use [r(src_vertex)], sink edges
    [-r(sink_vertex)] (the virtual endpoints are pinned at 0). The result
    may violate non-negativity; {!check} decides legality. *)
