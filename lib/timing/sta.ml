module Digraph = Minflo_graph.Digraph
module Topo = Minflo_graph.Topo
module Delay_model = Minflo_tech.Delay_model

type t = {
  arrival : float array;
  required : float array;
  slack : float array;
  critical_path : float;
  deadline : float;
}

let arrivals model ~delays =
  Minflo_robust.Perf.tick_sweep ();
  let g = model.Delay_model.graph in
  let order = Topo.sort g in
  let n = Digraph.node_count g in
  let at = Array.make n 0.0 in
  Array.iter
    (fun i ->
      let reach = at.(i) +. delays.(i) in
      List.iter (fun j -> if reach > at.(j) then at.(j) <- reach) (Digraph.succ g i))
    order;
  at

let critical_path_only model ~delays =
  let at = arrivals model ~delays in
  let cp = ref 0.0 in
  Array.iteri (fun i a -> if a +. delays.(i) > !cp then cp := a +. delays.(i)) at;
  !cp

let analyze model ~delays ~deadline =
  let g = model.Delay_model.graph in
  let order = Topo.sort g in
  let n = Digraph.node_count g in
  let at = arrivals model ~delays in
  let cp = ref 0.0 in
  Array.iteri (fun i a -> if a +. delays.(i) > !cp then cp := a +. delays.(i)) at;
  Minflo_robust.Perf.tick_sweep ();
  let rt = Array.make n infinity in
  for k = n - 1 downto 0 do
    let i = order.(k) in
    if model.Delay_model.is_sink.(i) then
      rt.(i) <- min rt.(i) (deadline -. delays.(i));
    List.iter
      (fun j -> rt.(i) <- min rt.(i) (rt.(j) -. delays.(i)))
      (Digraph.succ g i)
  done;
  let slack = Array.init n (fun i -> rt.(i) -. at.(i)) in
  { arrival = at; required = rt; slack; critical_path = !cp; deadline }

let edge_slack t ~delays model e =
  let g = model.Delay_model.graph in
  let i = Digraph.src g e and j = Digraph.dst g e in
  t.required.(j) -. t.arrival.(i) -. delays.(i)

let is_safe ?(eps = 1e-9) t = Array.for_all (fun s -> s >= -.eps) t.slack

let critical_vertices ?(eps = 1e-9) t =
  let worst = Array.fold_left min infinity t.slack in
  let acc = ref [] in
  Array.iteri (fun i s -> if s <= worst +. eps then acc := i :: !acc) t.slack;
  List.rev !acc

let worst_path model ~delays =
  let g = model.Delay_model.graph in
  let at = arrivals model ~delays in
  (* find the vertex finishing the critical path, then backtrace greedily *)
  let finish = ref 0 and best = ref neg_infinity in
  Array.iteri
    (fun i a ->
      let f = a +. delays.(i) in
      if f > !best then begin
        best := f;
        finish := i
      end)
    at;
  let rec back i acc =
    let acc = i :: acc in
    if at.(i) = 0.0 && Digraph.in_degree g i = 0 then acc
    else begin
      (* pick the fanin realizing AT(i) *)
      let pick =
        List.fold_left
          (fun best_j j ->
            match best_j with
            | Some bj when at.(bj) +. delays.(bj) >= at.(j) +. delays.(j) -> best_j
            | _ -> Some j)
          None (Digraph.pred g i)
      in
      match pick with None -> acc | Some j -> back j acc
    end
  in
  back !finish []
