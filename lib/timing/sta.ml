module Delay_model = Minflo_tech.Delay_model

type t = {
  arrival : float array;
  required : float array;
  slack : float array;
  critical_path : float;
  deadline : float;
}

let arrivals model ~delays =
  Minflo_robust.Perf.tick_sweep ();
  let a = Arena.of_model model in
  let at = Array.make a.Arena.n 0.0 in
  Arena.arrivals_into a ~delays at;
  at

let critical_path_only model ~delays =
  let at = arrivals model ~delays in
  let cp = ref 0.0 in
  Array.iteri (fun i a -> if a +. delays.(i) > !cp then cp := a +. delays.(i)) at;
  !cp

let analyze model ~delays ~deadline =
  let a = Arena.of_model model in
  let n = a.Arena.n in
  let at = arrivals model ~delays in
  let cp = ref 0.0 in
  Array.iteri (fun i a -> if a +. delays.(i) > !cp then cp := a +. delays.(i)) at;
  Minflo_robust.Perf.tick_sweep ();
  let rt = Array.make n infinity in
  for k = n - 1 downto 0 do
    let i = a.Arena.topo.(k) in
    if model.Delay_model.is_sink.(i) then
      rt.(i) <- min rt.(i) (deadline -. delays.(i));
    for c = a.Arena.fanout_off.(i) to a.Arena.fanout_off.(i + 1) - 1 do
      let j = a.Arena.fanout.(c) in
      rt.(i) <- min rt.(i) (rt.(j) -. delays.(i))
    done
  done;
  let slack = Array.init n (fun i -> rt.(i) -. at.(i)) in
  { arrival = at; required = rt; slack; critical_path = !cp; deadline }

let edge_slack t ~delays model e =
  let a = Arena.of_model model in
  let i = a.Arena.edge_src.(e) and j = a.Arena.edge_dst.(e) in
  t.required.(j) -. t.arrival.(i) -. delays.(i)

let is_safe ?(eps = 1e-9) t = Array.for_all (fun s -> s >= -.eps) t.slack

let critical_vertices ?(eps = 1e-9) t =
  let worst = Array.fold_left min infinity t.slack in
  let acc = ref [] in
  Array.iteri (fun i s -> if s <= worst +. eps then acc := i :: !acc) t.slack;
  List.rev !acc

let worst_path model ~delays =
  let a = Arena.of_model model in
  let at = arrivals model ~delays in
  (* find the vertex finishing the critical path, then backtrace greedily *)
  let finish = ref 0 and best = ref neg_infinity in
  Array.iteri
    (fun i v ->
      let f = v +. delays.(i) in
      if f > !best then begin
        best := f;
        finish := i
      end)
    at;
  let rec back i acc =
    let acc = i :: acc in
    if at.(i) = 0.0 && Arena.is_source a i then acc
    else begin
      (* pick the fanin realizing AT(i): first fanin wins ties, in pred
         order, matching the historical fold over [Digraph.pred] *)
      let pick = ref (-1) and pick_f = ref neg_infinity in
      for c = a.Arena.fanin_off.(i) to a.Arena.fanin_off.(i + 1) - 1 do
        let j = a.Arena.fanin.(c) in
        let f = at.(j) +. delays.(j) in
        if f > !pick_f then begin
          pick_f := f;
          pick := j
        end
      done;
      if !pick < 0 then acc else back !pick acc
    end
  in
  back !finish []
