module Digraph = Minflo_graph.Digraph
module Delay_model = Minflo_tech.Delay_model

type t = {
  potential : float array;
  edge_fsdu : float array;
  source_fsdu : float array;
  sink_fsdu : float array;
  deadline : float;
}

let of_potential model ~delays ~deadline p =
  let a = Arena.of_model model in
  let n = a.Arena.n in
  let edge_fsdu =
    Array.init a.Arena.m (fun e ->
        let i = a.Arena.edge_src.(e) and j = a.Arena.edge_dst.(e) in
        p.(j) -. p.(i) -. delays.(i))
  in
  let source_fsdu =
    Array.init n (fun i -> if Arena.is_source a i then p.(i) else 0.0)
  in
  let sink_fsdu =
    Array.init n (fun i ->
        if model.Delay_model.is_sink.(i) then deadline -. p.(i) -. delays.(i) else 0.0)
  in
  { potential = p; edge_fsdu; source_fsdu; sink_fsdu; deadline }

let balance ?(mode = `Alap) ?sta model ~delays ~deadline =
  let sta =
    match sta with
    | Some s ->
      (* the caller already ran the analysis (the D-phase safety probe):
         reuse it instead of re-sweeping the whole DAG *)
      Minflo_robust.Perf.tick_full_sweep_avoided ();
      s
    | None -> Sta.analyze model ~delays ~deadline
  in
  if not (Sta.is_safe ~eps:1e-6 sta) then
    invalid_arg
      (Printf.sprintf "Balance.balance: circuit is not safe (CP %.3f > deadline %.3f)"
         sta.critical_path deadline);
  let p =
    match mode with
    | `Alap ->
      (* required times can be +inf on unconstrained vertices; clamp to the
         latest meaningful value *)
      Array.mapi
        (fun i r -> if r = infinity then deadline -. delays.(i) else r)
        sta.required
    | `Asap -> Array.copy sta.arrival
  in
  of_potential model ~delays ~deadline p

let check model ~delays t =
  let g = model.Delay_model.graph in
  let bad = ref None in
  let eps = 1e-6 in
  let report fmt = Printf.ksprintf (fun s -> if !bad = None then bad := Some s) fmt in
  Array.iteri
    (fun e f ->
      let i = Digraph.src g e and j = Digraph.dst g e in
      if f < -.eps then report "edge %d->%d has negative FSDU %g" i j f;
      (* balance identity: fsdu must match the potential difference *)
      let expect = t.potential.(j) -. t.potential.(i) -. delays.(i) in
      if abs_float (expect -. f) > eps then
        report "edge %d->%d FSDU %g inconsistent with potential (%g)" i j f expect)
    t.edge_fsdu;
  Array.iteri
    (fun i f ->
      if Digraph.in_degree g i = 0 then begin
        if f < -.eps then report "source %d has negative FSDU %g" i f;
        if abs_float (f -. t.potential.(i)) > eps then
          report "source %d FSDU %g inconsistent with potential %g" i f t.potential.(i)
      end)
    t.source_fsdu;
  Array.iteri
    (fun i f ->
      if model.Delay_model.is_sink.(i) then begin
        if f < -.eps then report "sink %d has negative FSDU %g" i f;
        let expect = t.deadline -. t.potential.(i) -. delays.(i) in
        if abs_float (f -. expect) > eps then
          report "sink %d FSDU %g inconsistent with potential (%g)" i f expect
      end)
    t.sink_fsdu;
  match !bad with
  | Some detail ->
    Error (Minflo_robust.Diag.Invariant { what = "fsdu-balance"; detail })
  | None -> Ok ()

let displacement_between a b = Array.map2 (fun pb pa -> pb -. pa) b.potential a.potential

let displace model t r =
  let g = model.Delay_model.graph in
  let n = Array.length t.potential in
  if Array.length r <> n then invalid_arg "Balance.displace: wrong r length";
  { t with
    potential = Array.init n (fun i -> t.potential.(i) +. r.(i));
    edge_fsdu =
      Array.mapi
        (fun e f -> f +. r.(Digraph.dst g e) -. r.(Digraph.src g e))
        t.edge_fsdu;
    (* virtual endpoints (primary inputs and the output dummy O) are pinned
       at r = 0, per Corollary 1 *)
    source_fsdu =
      Array.mapi
        (fun i f -> if Digraph.in_degree g i = 0 then f +. r.(i) else f)
        t.source_fsdu;
    sink_fsdu =
      Array.mapi
        (fun i f -> if model.Delay_model.is_sink.(i) then f -. r.(i) else f)
        t.sink_fsdu }
