(** Delta-debugging reduction of a failing netlist.

    [shrink ~keep nl] searches for a smaller netlist on which [keep] still
    holds (in the campaign, [keep] is "the oracle still reports the same
    fingerprint"). The reduction lattice, tried in order inside a
    to-fixpoint loop:

    - {e gate removal} (ddmin over chunks, halving): a removed gate's
      output signal is substituted by its first fanin everywhere it is
      read (and in the output list), so the candidate stays structurally
      plausible; re-elaboration rejects anything invalid;
    - {e fanin truncation}: each gate's fanin list cut to its kind's
      minimum arity;
    - {e output trimming}: surplus primary outputs dropped (one always
      remains);
    - {e input pruning}: primary inputs no gate reads are dropped.

    Every accepted step strictly decreases the lexicographic measure
    (gates, total fanins, outputs, inputs), so shrinking terminates; the
    [max_checks] budget bounds the number of [keep] evaluations (each of
    which may run a full oracle) on top of that. The result always
    satisfies [keep] — when nothing smaller does, it is the input
    unchanged. *)

val measure : Minflo_netlist.Netlist.t -> int * int * int * int
(** (gates, total fanins, outputs, inputs) — the strictly-decreasing
    termination measure; exposed for the property tests. *)

val shrink :
  ?max_checks:int ->
  keep:(Minflo_netlist.Netlist.t -> bool) ->
  Minflo_netlist.Netlist.t ->
  Minflo_netlist.Netlist.t
(** [max_checks] defaults to 1000. [keep] is never called on the input
    itself — the caller asserts it holds there. *)
