(** On-disk minimal reproducers.

    A repro file is everything [minflo replay] needs to re-run a failure
    bit-deterministically: the fingerprint it must reproduce, the campaign
    case seed it came from (provenance only — the netlist itself is
    stored, not re-generated), the full oracle configuration (floats in
    the checkpoint's bit-exact spelling), and the shrunk netlist as
    canonical [.bench] text. The format is line-oriented and versioned:

    {v
    minflo-repro 1
    fingerprint engine/fault-injected/dphase.simplex
    seed 1042
    target-factor 0x1.3333333333333p-1
    dw-iterations 12
    budget-iterations 4000
    budget-pivots 2000000
    solvers simplex ssp
    differential true
    tolerance 0x1.47ae147ae147bp-6
    fault-site dphase.simplex
    fault-seed 0
    netlist 9
    # fz_...
    ...8 more .bench lines...
    end
    v}

    Writes are atomic (tmp + rename), like checkpoints. *)

type repro = {
  fingerprint : Fingerprint.t;
  seed : int;                  (** campaign case seed (provenance). *)
  config : Oracle.config;
  netlist : Minflo_netlist.Netlist.t;
}

val file_name : repro -> string
(** ["<fingerprint-slug>-<seed>.repro"] — stable, collision-free within a
    campaign (one repro per fresh fingerprint). *)

val save : dir:string -> repro -> (string, Minflo_robust.Diag.error) result
(** Writes atomically under [dir] (created if missing) and returns the
    full path. *)

val load : string -> (repro, Minflo_robust.Diag.error) result
(** Typed failures: [Io_error] on unreadable files,
    [Checkpoint_invalid] on bad magic/version/fields, [Parse_error] on a
    corrupt embedded netlist. *)

val list : string -> string list
(** The [.repro] files under a directory, sorted; [] if the directory does
    not exist. *)
