module Diag = Minflo_robust.Diag

type t = {
  phase : string;
  code : string;
  detail : string;
}

let make ?(detail = "") ~phase ~code () = { phase; code; detail }

(* the discriminating stable field of each error kind; numeric payloads
   (areas, counts, line numbers) are deliberately dropped — they vary
   between a failure and its shrunk reproducer *)
let detail_of_error = function
  | Diag.Lint_error { rule; _ } -> rule
  | Diag.Invariant { what; _ } -> what
  | Diag.Fault_injected { site } -> site
  | Diag.Solver_diverged { solver; _ } -> solver
  | Diag.Differential_mismatch { solver_a; solver_b; _ } ->
    solver_a ^ "-" ^ solver_b
  | Diag.Budget_exhausted { resource; _ } -> resource
  | Diag.Numeric { what; _ } -> what
  | _ -> ""

let of_error ~phase e =
  { phase; code = Diag.error_code e; detail = detail_of_error e }

let equal a b = a.phase = b.phase && a.code = b.code && a.detail = b.detail

let compare a b =
  match String.compare a.phase b.phase with
  | 0 -> (
    match String.compare a.code b.code with
    | 0 -> String.compare a.detail b.detail
    | c -> c)
  | c -> c

let to_string t =
  if t.detail = "" then Printf.sprintf "%s/%s" t.phase t.code
  else Printf.sprintf "%s/%s/%s" t.phase t.code t.detail

let of_string s =
  match String.split_on_char '/' s with
  | phase :: code :: rest when phase <> "" && code <> "" ->
    Some { phase; code; detail = String.concat "/" rest }
  | _ -> None

let slug t =
  String.map
    (fun c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '-')
    (to_string t)
