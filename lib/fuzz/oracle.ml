module Diag = Minflo_robust.Diag
module Budget = Minflo_robust.Budget
module Check = Minflo_robust.Check
module Fault = Minflo_robust.Fault
module Netlist = Minflo_netlist.Netlist
module Raw = Minflo_netlist.Raw
module Bench_format = Minflo_netlist.Bench_format
module Tech = Minflo_tech.Tech
module Elmore = Minflo_tech.Elmore
module Delay_model = Minflo_tech.Delay_model
module Sta = Minflo_timing.Sta
module Incremental = Minflo_timing.Incremental
module Rng = Minflo_util.Rng
module Dphase = Minflo_sizing.Dphase
module Minflotransit = Minflo_sizing.Minflotransit
module Sweep = Minflo_sizing.Sweep
module Mcf = Minflo_flow.Mcf
module Network_simplex = Minflo_flow.Network_simplex
module Ssp = Minflo_flow.Ssp
module Cost_scaling = Minflo_flow.Cost_scaling
module Lint = Minflo_lint.Lint
module Audit = Minflo_lint.Audit
module Rule = Minflo_lint.Rule
module Job = Minflo_runner.Job

type config = {
  target_factor : float;
  dw_iterations : int;
  budget_iterations : int;
  budget_pivots : int;
  solvers : Job.solver list;
  differential : bool;
  tolerance : float;
  fault_site : string option;
  fault_seed : int;
}

let default_config =
  { target_factor = 0.6;
    dw_iterations = 12;
    budget_iterations = 4000;
    budget_pivots = 2_000_000;
    solvers = [ `Simplex; `Ssp ];
    differential = true;
    tolerance = 0.02;
    fault_site = None;
    fault_seed = 0 }

type failure = {
  fingerprint : Fingerprint.t;
  info : string;
}

type outcome = {
  failures : failure list;
  gates : int;
  met : bool;
  area : float;
}

let fingerprints o =
  List.fold_left
    (fun acc f ->
      if List.exists (Fingerprint.equal f.fingerprint) acc then acc
      else f.fingerprint :: acc)
    [] o.failures
  |> List.rev

(* ---------- failure accumulation ---------- *)

type sink = failure list ref

let flag (sink : sink) fingerprint fmt =
  Printf.ksprintf (fun info -> sink := { fingerprint; info } :: !sink) fmt

let flag_error sink ~phase e =
  flag sink (Fingerprint.of_error ~phase e) "%s" (Diag.to_string e)

(* every stage runs under this guard: a raise is itself a finding, and can
   never take the oracle (or the campaign driver) down *)
let guard sink ~phase body =
  match body () with
  | v -> Some v
  | exception Diag.Error_exn e ->
    flag_error sink ~phase e;
    None
  | exception exn ->
    flag sink
      (Fingerprint.make ~phase ~code:"crash" ~detail:(Printexc.to_string exn)
         ())
      "uncaught exception: %s" (Printexc.to_string exn);
    None

(* ---------- fault plumbing ---------- *)

let is_engine_site s = not (String.length s >= 6 && String.sub s 0 6 = "audit.")

(* make sure the leg list actually visits the faulted site *)
let effective_solvers cfg =
  let need =
    match cfg.fault_site with
    | Some "dphase.simplex" -> Some `Simplex
    | Some "dphase.ssp" -> Some `Ssp
    | Some "dphase.bellman-ford" -> Some `Bellman_ford
    | _ -> None
  in
  match need with
  | Some s when not (List.mem s cfg.solvers) -> cfg.solvers @ [ s ]
  | _ -> cfg.solvers

let make_plan cfg =
  match cfg.fault_site with
  | None -> None
  | Some site ->
    let plan = Fault.create ~seed:cfg.fault_seed () in
    let action =
      if is_engine_site site then Fault.Fail (Diag.Fault_injected { site })
      else Fault.Perturb 1.0
    in
    Fault.arm plan ~site action;
    Some plan

(* ---------- stages ---------- *)

let roundtrip_stage sink nl =
  ignore
    (guard sink ~phase:"parse" (fun () ->
         match Bench_format.parse_string (Bench_format.to_string nl) with
         | Error e -> flag_error sink ~phase:"parse" e
         | Ok nl' ->
           if
             Netlist.gate_count nl' <> Netlist.gate_count nl
             || Netlist.input_count nl' <> Netlist.input_count nl
             || List.length (Netlist.outputs nl')
                <> List.length (Netlist.outputs nl)
           then
             flag sink
               (Fingerprint.make ~phase:"parse" ~code:"roundtrip-mismatch" ())
               "print/reparse changed shape: %d/%d/%d -> %d/%d/%d"
               (Netlist.gate_count nl) (Netlist.input_count nl)
               (List.length (Netlist.outputs nl))
               (Netlist.gate_count nl') (Netlist.input_count nl')
               (List.length (Netlist.outputs nl'))))

let lint_stage sink nl =
  ignore
    (guard sink ~phase:"lint" (fun () ->
         (* tech coverage (MF008) is off: mutated cases legally exceed the
            stack bound; structural errors are the generator contract *)
         let config = { Lint.fanout_bound = None; tech = None } in
         Lint.check ~config (Raw.of_netlist nl)
         |> List.iter (fun (f : Minflo_lint.Finding.t) ->
                if f.rule.Rule.severity = Rule.Error then
                  flag sink
                    (Fingerprint.make ~phase:"lint" ~code:f.rule.Rule.id ())
                    "%s" f.message)))

(* Incremental-vs-batch STA differential. The arena-backed incremental
   engine claims bit-identity with a from-scratch batch pass after any
   mutation sequence (the property TILOS and the W-phase hot paths lean
   on); drive it through a schedule derived deterministically from the
   case itself and compare with exact float [=] — one ulp of drift in any
   delay, arrival or the critical path is a finding. *)
let incremental_stage sink model =
  ignore
    (guard sink ~phase:"sta" (fun () ->
         let n = Delay_model.num_vertices model in
         if n > 0 then begin
           let rng = Rng.create ((n * 31) + 5) in
           let x0 =
             Array.init n (fun _ ->
                 model.Delay_model.min_size +. Rng.float rng 4.0)
           in
           let eng = Incremental.create model ~sizes:x0 in
           for _ = 1 to 12 do
             let v = Rng.int rng n in
             let s =
               if Rng.bool rng then
                 Incremental.size eng v *. (1.0 +. Rng.float rng 0.4)
               else model.Delay_model.min_size +. Rng.float rng 6.0
             in
             Incremental.set_size eng v s
           done;
           let d_ref = Delay_model.delays model (Incremental.sizes eng) in
           let at_ref = Sta.arrivals model ~delays:d_ref in
           let bad = ref None in
           for v = n - 1 downto 0 do
             if
               Incremental.delay eng v <> d_ref.(v)
               || Incremental.arrival eng v <> at_ref.(v)
             then bad := Some v
           done;
           (match !bad with
           | Some v ->
             flag sink
               (Fingerprint.make ~phase:"sta" ~code:"incremental-mismatch"
                  ~detail:"vertex" ())
               "incremental engine drifted from batch STA at vertex %d: \
                delay %h vs %h, arrival %h vs %h"
               v (Incremental.delay eng v) d_ref.(v)
               (Incremental.arrival eng v) at_ref.(v)
           | None -> ());
           let cp = Sta.critical_path_only model ~delays:d_ref in
           if Incremental.critical_path eng <> cp then
             flag sink
               (Fingerprint.make ~phase:"sta" ~code:"incremental-mismatch"
                  ~detail:"critical-path" ())
               "incremental critical path %h, batch %h"
               (Incremental.critical_path eng)
               cp
         end))

type leg = {
  leg_solver : Job.solver;
  leg_result : Minflotransit.result;
}

let engine_leg sink cfg ?fault model ~target solver =
  guard sink ~phase:"engine" (fun () ->
      let checks = Check.create () in
      let options =
        { Minflotransit.default_options with
          solver;
          max_iterations = cfg.dw_iterations;
          limits =
            Budget.limits ~max_iterations:cfg.budget_iterations
              ~max_pivots:cfg.budget_pivots () }
      in
      let result = Minflotransit.optimize ~options ?fault ~checks model ~target in
      List.iter
        (fun (f : Check.finding) ->
          flag sink
            (Fingerprint.make ~phase:"check" ~code:"invariant" ~detail:f.name
               ())
            "[%s] %s: %s" (Job.solver_name solver) f.name f.detail)
        (Check.failures checks);
      (* the result itself must be sane regardless of how the run ended *)
      let n = Array.length result.Minflotransit.sizes in
      let bad_size = ref None in
      Array.iteri
        (fun i x ->
          if !bad_size = None
             && (not (Float.is_finite x)
                || x < model.Delay_model.min_size *. (1. -. 1e-9)
                || x > model.Delay_model.max_size *. (1. +. 1e-9))
          then bad_size := Some (i, x))
        result.sizes;
      (match !bad_size with
      | Some (i, x) ->
        flag sink
          (Fingerprint.make ~phase:"engine" ~code:"invariant"
             ~detail:"sizes-bounds" ())
          "[%s] size %d out of bounds: %g" (Job.solver_name solver) i x
      | None ->
        let area = Delay_model.area model result.sizes in
        let rel = abs_float (area -. result.area) /. Float.max 1e-12 area in
        if rel > 1e-6 then
          flag sink
            (Fingerprint.make ~phase:"engine" ~code:"invariant"
               ~detail:"area-mismatch" ())
            "[%s] reported area %.17g but sizes give %.17g"
            (Job.solver_name solver) result.area area;
        if result.met && n > 0 then begin
          let delays = Delay_model.delays model result.sizes in
          let cp = Sta.critical_path_only model ~delays in
          if cp > target *. (1. +. 1e-9) then
            flag sink
              (Fingerprint.make ~phase:"engine" ~code:"invariant"
                 ~detail:"met-but-late" ())
              "[%s] met=true but cp %.17g > target %.17g"
              (Job.solver_name solver) cp target
        end);
      { leg_solver = solver; leg_result = result })

let engine_differential sink cfg legs =
  match legs with
  | ({ leg_result = a; leg_solver = sa } as _la) :: rest ->
    List.iter
      (fun { leg_result = b; leg_solver = sb } ->
        if
          a.Minflotransit.met && b.Minflotransit.met
          && (not a.budget_exhausted) && not b.budget_exhausted
        then begin
          let gap =
            abs_float (a.area -. b.area)
            /. Float.max 1e-12 (Float.max a.area b.area)
          in
          if gap > cfg.tolerance then
            flag sink
              (Fingerprint.make ~phase:"differential"
                 ~code:"differential-mismatch"
                 ~detail:(Job.solver_name sa ^ "-" ^ Job.solver_name sb)
                 ())
              "final areas diverge: %s=%.17g %s=%.17g (gap %.3g > %.3g)"
              (Job.solver_name sa) a.area (Job.solver_name sb) b.area gap
              cfg.tolerance
        end)
      rest
  | [] -> ()

(* LP-level differential: the displacement problem at the TILOS seed,
   solved by all three independent MCF solvers, objectives compared
   exactly, each certificate independently audited. This is also where the
   audit.* fault sites corrupt a certificate (mirroring the CLI's
   audit-cert --inject-fault). *)
let lp_differential sink cfg ?fault model ~target (tilos : Minflo_sizing.Tilos.result) =
  ignore
    (guard sink ~phase:"audit" (fun () ->
         let delays = Delay_model.delays model tilos.sizes in
         match
           Dphase.displacement_problem model ~sizes:tilos.sizes ~delays
             ~deadline:target
         with
         | Error e -> flag_error sink ~phase:"audit" e
         | Ok problem ->
           let solve_with name solve =
             let budget = Budget.start (Budget.limits ~max_pivots:cfg.budget_pivots ()) in
             (name, solve ?budget:(Some budget) problem)
           in
           let sols =
             [ solve_with "simplex" Network_simplex.solve;
               solve_with "ssp" Ssp.solve;
               solve_with "cost-scaling" Cost_scaling.solve ]
           in
           (* objectives of exact optimal solutions agree exactly *)
           (match
              List.filter (fun (_, s) -> s.Mcf.status = Mcf.Optimal) sols
            with
           | (na, sa) :: rest ->
             List.iter
               (fun (nb, sb) ->
                 if sb.Mcf.objective <> sa.Mcf.objective then
                   flag sink
                     (Fingerprint.make ~phase:"differential"
                        ~code:"differential-mismatch"
                        ~detail:("lp-" ^ na ^ "-" ^ nb) ())
                     "LP objectives diverge: %s=%d %s=%d" na sa.Mcf.objective
                     nb sb.Mcf.objective)
               rest
           | [] -> ());
           List.iter
             (fun (tag, sol) ->
               if sol.Mcf.status <> Mcf.Aborted then begin
                 (* audit.* fault sites corrupt the certificate pre-audit *)
                 (match fault with
                 | Some plan -> (
                   match Fault.fire plan ~site:("audit." ^ tag) with
                   | Some (Fault.Perturb _) | Some (Fault.Fail _) ->
                     if Array.length sol.Mcf.flow > 0 then
                       sol.Mcf.flow.(0) <- sol.Mcf.flow.(0) + 1
                   | None -> ())
                 | None -> ());
                 Audit.check problem sol
                 |> List.iter (fun (f : Minflo_lint.Finding.t) ->
                        flag sink
                          (Fingerprint.make ~phase:"audit"
                             ~code:f.rule.Rule.id ~detail:tag ())
                          "[%s] %s" tag f.message)
               end)
             sols))

(* Warm-vs-cold leg: prime a simplex basis on the displacement LP at the
   TILOS seed, perturb the arc costs deterministically (the shape of a D/W
   iteration: same network, moved costs), and solve the perturbed LP both
   cold and through the retained basis. An exact objective mismatch, a
   status disagreement, or an audit finding on either certificate is the
   warm-start machinery corrupting a solve. *)
let warm_cold_stage sink cfg model ~target (tilos : Minflo_sizing.Tilos.result) =
  ignore
    (guard sink ~phase:"dphase" (fun () ->
         let delays = Delay_model.delays model tilos.sizes in
         match
           Dphase.displacement_problem model ~sizes:tilos.sizes ~delays
             ~deadline:target
         with
         | Error e -> flag_error sink ~phase:"dphase" e
         | Ok problem ->
           let budget () =
             Budget.start (Budget.limits ~max_pivots:cfg.budget_pivots ())
           in
           let st = Network_simplex.make_state () in
           let seed = Network_simplex.solve_warm ~budget:(budget ()) st problem in
           if seed.Mcf.status = Mcf.Optimal then begin
             let perturbed =
               { problem with
                 Mcf.arcs =
                   Array.mapi
                     (fun i (a : Mcf.arc) ->
                       if i mod 3 = 0 then { a with Mcf.cost = a.cost + 1 }
                       else a)
                     problem.Mcf.arcs }
             in
             let cold = Network_simplex.solve ~budget:(budget ()) perturbed in
             let warm =
               Network_simplex.solve_warm ~budget:(budget ()) st perturbed
             in
             let status_name = function
               | Mcf.Optimal -> "optimal"
               | Mcf.Infeasible -> "infeasible"
               | Mcf.Unbounded -> "unbounded"
               | Mcf.Aborted -> "aborted"
             in
             if cold.Mcf.status <> warm.Mcf.status then
               flag sink
                 (Fingerprint.make ~phase:"dphase" ~code:"warm-cold-mismatch"
                    ~detail:"status" ())
                 "warm/cold status diverge on perturbed LP: cold=%s warm=%s"
                 (status_name cold.Mcf.status)
                 (status_name warm.Mcf.status)
             else if
               cold.Mcf.status = Mcf.Optimal
               && cold.Mcf.objective <> warm.Mcf.objective
             then
               flag sink
                 (Fingerprint.make ~phase:"dphase" ~code:"warm-cold-mismatch" ())
                 "warm objective %d <> cold objective %d on perturbed LP"
                 warm.Mcf.objective cold.Mcf.objective;
             List.iter
               (fun (tag, sol) ->
                 if sol.Mcf.status <> Mcf.Aborted then
                   Audit.check perturbed sol
                   |> List.iter (fun (f : Minflo_lint.Finding.t) ->
                          flag sink
                            (Fingerprint.make ~phase:"dphase"
                               ~code:"warm-cold-mismatch"
                               ~detail:(tag ^ "-" ^ f.rule.Rule.id) ())
                            "[%s] %s" tag f.message))
               [ ("cold", cold); ("warm", warm) ]
           end))

(* Static-vs-solver feasibility oracle. The interval-bound analysis
   (MF201) claims a target below the static delay floor is unmeetable by
   ANY sizing in the box — so a solver leg reporting met=true on such a
   target means either the bounds are unsound or the solver lies about
   feasibility; both are findings. In the other direction, every leg's
   final critical path must land inside [cp_lo, cp_hi] (its sizes are in
   the box, and the bounds claim to contain every in-box sizing), and the
   infeasibility witness must be a real path that achieves the floor. *)
let bounds_stage sink model ~target legs =
  ignore
    (guard sink ~phase:"bounds" (fun () ->
         let module Bounds = Minflo_lint.Bounds in
         let b = Bounds.compute model in
         List.iter
           (fun { leg_solver; leg_result } ->
             let cp = leg_result.Minflotransit.cp in
             if
               cp < b.Bounds.cp_lo *. (1. -. 1e-9)
               || cp > b.Bounds.cp_hi *. (1. +. 1e-9)
             then
               flag sink
                 (Fingerprint.make ~phase:"bounds"
                    ~code:"solver-feasibility-mismatch"
                    ~detail:(Job.solver_name leg_solver ^ "-containment") ())
                 "[%s] final cp %.17g escapes the static interval [%.17g, \
                  %.17g]"
                 (Job.solver_name leg_solver) cp b.Bounds.cp_lo b.Bounds.cp_hi)
           legs;
         if Bounds.infeasible b ~target then begin
           List.iter
             (fun { leg_solver; leg_result } ->
               if leg_result.Minflotransit.met then
                 flag sink
                   (Fingerprint.make ~phase:"bounds"
                      ~code:"solver-feasibility-mismatch"
                      ~detail:(Job.solver_name leg_solver) ())
                   "[%s] claims to meet target %.17g below the static floor \
                    %.17g"
                   (Job.solver_name leg_solver) target b.Bounds.cp_lo)
             legs;
           let path = Bounds.witness_path model b in
           let g = model.Delay_model.graph in
           let rec edges_ok = function
             | i :: (j :: _ as rest) ->
               List.mem j (Minflo_graph.Digraph.succ g i) && edges_ok rest
             | _ -> true
           in
           let plen =
             List.fold_left
               (fun acc i -> acc +. b.Bounds.d_lo.(i))
               0.0 path
           in
           if not (edges_ok path) then
             flag sink
               (Fingerprint.make ~phase:"bounds" ~code:"witness-invalid" ())
               "MF201 witness is not a path of the timing graph"
           else if
             abs_float (plen -. b.Bounds.cp_lo)
             > 1e-9 *. Float.max 1.0 b.Bounds.cp_lo
           then
             flag sink
               (Fingerprint.make ~phase:"bounds" ~code:"witness-invalid" ())
               "MF201 witness path sums to %.17g, not the claimed floor %.17g"
               plen b.Bounds.cp_lo
         end))

let fired_stage sink fault =
  match fault with
  | None -> ()
  | Some plan ->
    List.iter
      (fun site ->
        let n = Fault.fired plan ~site in
        if n > 0 then
          flag sink
            (Fingerprint.make
               ~phase:(if is_engine_site site then "engine" else "audit")
               ~code:"fault-injected" ~detail:site ())
            "armed fault at %s fired %d time(s)" site n)
      (Fault.sites plan)

(* ---------- the oracle ---------- *)

let run cfg nl =
  let sink : sink = ref [] in
  let gates = Netlist.gate_count nl in
  roundtrip_stage sink nl;
  lint_stage sink nl;
  let met, area =
    match
      guard sink ~phase:"model" (fun () ->
          let model = Elmore.of_netlist Tech.default_130nm nl in
          Delay_model.validate model;
          let dmin = Sweep.dmin model in
          (model, cfg.target_factor *. dmin))
    with
    | None -> (false, nan)
    | Some (model, target) ->
      incremental_stage sink model;
      let fault = make_plan cfg in
      let legs =
        List.filter_map
          (fun s -> engine_leg sink cfg ?fault model ~target s)
          (effective_solvers cfg)
      in
      (* an engine-site fault deliberately skews one leg; differential
         comparison is only meaningful on clean runs *)
      let engine_faulted =
        match cfg.fault_site with
        | Some s -> is_engine_site s
        | None -> false
      in
      if not engine_faulted then begin
        engine_differential sink cfg legs;
        bounds_stage sink model ~target legs
      end;
      (if cfg.differential then
         match legs with
         | { leg_result; _ } :: _ when leg_result.Minflotransit.tilos.met ->
           lp_differential sink cfg ?fault model ~target
             leg_result.Minflotransit.tilos;
           warm_cold_stage sink cfg model ~target
             leg_result.Minflotransit.tilos
         | _ -> ());
      fired_stage sink fault;
      (match legs with
      | { leg_result; _ } :: _ ->
        (leg_result.Minflotransit.met, leg_result.Minflotransit.area)
      | [] -> (false, nan))
  in
  { failures = List.rev !sink; gates; met; area }
