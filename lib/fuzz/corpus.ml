module Diag = Minflo_robust.Diag
module Io = Minflo_robust.Io
module Netlist = Minflo_netlist.Netlist
module Bench_format = Minflo_netlist.Bench_format
module Job = Minflo_runner.Job
module Checkpoint = Minflo_runner.Checkpoint

type repro = {
  fingerprint : Fingerprint.t;
  seed : int;
  config : Oracle.config;
  netlist : Minflo_netlist.Netlist.t;
}

let magic = "minflo-repro"

let version = 1

let file_name r =
  Printf.sprintf "%s-%d.repro" (Fingerprint.slug r.fingerprint) r.seed

(* ---------- render ---------- *)

let render r =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let c = r.config in
  line "%s %d" magic version;
  line "fingerprint %s" (Fingerprint.to_string r.fingerprint);
  line "seed %d" r.seed;
  line "target-factor %s" (Checkpoint.hex_float c.Oracle.target_factor);
  line "dw-iterations %d" c.dw_iterations;
  line "budget-iterations %d" c.budget_iterations;
  line "budget-pivots %d" c.budget_pivots;
  line "solvers %s"
    (String.concat " " (List.map Job.solver_name c.solvers));
  line "differential %b" c.differential;
  line "tolerance %s" (Checkpoint.hex_float c.tolerance);
  line "fault-site %s" (Option.value c.fault_site ~default:"-");
  line "fault-seed %d" c.fault_seed;
  let bench = Bench_format.to_string r.netlist in
  let bench_lines = String.split_on_char '\n' bench in
  (* to_string ends with a newline; don't count the empty tail *)
  let bench_lines =
    match List.rev bench_lines with
    | "" :: rest -> List.rev rest
    | _ -> bench_lines
  in
  line "netlist %d" (List.length bench_lines);
  List.iter (fun l -> line "%s" l) bench_lines;
  line "end";
  Buffer.contents b

let rec mkdir_p dir =
  match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
    let parent = Filename.dirname dir in
    if parent <> dir then begin
      mkdir_p parent;
      try Unix.mkdir dir 0o755
      with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
    end

let save ~dir r =
  let path = Filename.concat dir (file_name r) in
  try
    mkdir_p dir;
    Result.map (fun () -> path) (Io.atomic_replace path (render r))
  with Unix.Unix_error (e, _, _) ->
    Error (Diag.Io_error { file = dir; msg = Unix.error_message e })

(* ---------- load ---------- *)

let invalid file reason = Error (Diag.Checkpoint_invalid { file; reason })

let load path =
  match
    Result.map
      (fun content ->
        match List.rev (String.split_on_char '\n' content) with
        | "" :: rest -> List.rev rest
        | lines -> List.rev lines)
      (Io.read_file path)
  with
  | Error e -> Error e
  | Ok [] -> invalid path "empty file"
  | Ok (header :: rest) -> (
    match String.split_on_char ' ' header with
    | [ m; v ] when m = magic -> (
      match int_of_string_opt v with
      | Some v when v = version -> (
        let fields = Hashtbl.create 16 in
        let netlist_lines = ref None in
        let saw_end = ref false in
        let rec scan = function
          | [] -> Ok ()
          | l :: ls -> (
            match String.index_opt l ' ' with
            | Some i when String.sub l 0 i = "netlist" -> (
              let count_s =
                String.sub l (i + 1) (String.length l - i - 1)
              in
              match int_of_string_opt count_s with
              | None -> invalid path "malformed netlist line count"
              | Some n ->
                if List.length ls < n + 1 then
                  invalid path "truncated netlist block"
                else begin
                  netlist_lines := Some (List.filteri (fun j _ -> j < n) ls);
                  let tail = List.filteri (fun j _ -> j >= n) ls in
                  (match tail with
                  | "end" :: _ -> saw_end := true
                  | _ -> ());
                  Ok ()
                end)
            | Some i ->
              Hashtbl.replace fields (String.sub l 0 i)
                (String.sub l (i + 1) (String.length l - i - 1));
              scan ls
            | None ->
              if l = "end" then saw_end := true;
              scan ls)
        in
        let ( let* ) = Result.bind in
        let* () = scan rest in
        if not !saw_end then invalid path "truncated (no end marker)"
        else
          let field k =
            match Hashtbl.find_opt fields k with
            | Some v -> Ok v
            | None -> invalid path (Printf.sprintf "missing field %S" k)
          in
          let num kind conv k =
            let* v = field k in
            match conv v with
            | Some x -> Ok x
            | None ->
              invalid path (Printf.sprintf "field %S is not %s: %S" k kind v)
          in
          let int_field = num "an integer" int_of_string_opt in
          let float_field = num "a float" Checkpoint.parse_hex_float in
          let bool_field = num "a boolean" bool_of_string_opt in
          let* fp_s = field "fingerprint" in
          let* fingerprint =
            match Fingerprint.of_string fp_s with
            | Some fp -> Ok fp
            | None -> invalid path "malformed fingerprint"
          in
          let* seed = int_field "seed" in
          let* target_factor = float_field "target-factor" in
          let* dw_iterations = int_field "dw-iterations" in
          let* budget_iterations = int_field "budget-iterations" in
          let* budget_pivots = int_field "budget-pivots" in
          let* solvers_s = field "solvers" in
          let* solvers =
            let names =
              String.split_on_char ' ' solvers_s
              |> List.filter (fun s -> s <> "")
            in
            let rec conv acc = function
              | [] -> Ok (List.rev acc)
              | n :: ns -> (
                match Job.solver_of_string n with
                | Some s -> conv (s :: acc) ns
                | None ->
                  invalid path (Printf.sprintf "unknown solver %S" n))
            in
            if names = [] then invalid path "empty solver list"
            else conv [] names
          in
          let* differential = bool_field "differential" in
          let* tolerance = float_field "tolerance" in
          let* fault_site_s = field "fault-site" in
          let fault_site =
            if fault_site_s = "-" then None else Some fault_site_s
          in
          let* fault_seed = int_field "fault-seed" in
          let* bench =
            match !netlist_lines with
            | Some ls -> Ok (String.concat "\n" ls ^ "\n")
            | None -> invalid path "missing netlist block"
          in
          let* netlist =
            match Bench_format.parse_string bench with
            | Ok nl -> Ok nl
            | Error e -> Error e
          in
          Ok
            { fingerprint;
              seed;
              config =
                { Oracle.target_factor;
                  dw_iterations;
                  budget_iterations;
                  budget_pivots;
                  solvers;
                  differential;
                  tolerance;
                  fault_site;
                  fault_seed };
              netlist })
      | _ -> invalid path "unsupported version")
    | _ -> invalid path "bad magic")

let list dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
