(** Stable identity of a fuzzing failure.

    Two failures are "the same bug" when their fingerprints are equal; the
    campaign buckets by fingerprint, the shrinker's keep-predicate is
    fingerprint preservation, and [minflo replay] succeeds iff the stored
    fingerprint reproduces. A fingerprint must therefore be a pure function
    of the failure's {e kind} — never of timings, addresses, iteration
    counts or float noise — so that the same defect on the same input maps
    to the same fingerprint on every run.

    The taxonomy is three-level:

    - [phase]: the oracle stage that observed the failure
      (["parse"], ["lint"], ["model"], ["sta"], ["engine"], ["check"],
      ["differential"], ["audit"], ["bounds"], ["dphase"], ["runner"]);
    - [code]: the stable machine tag within the phase — a
      {!Minflo_robust.Diag.error_code}, a lint/audit rule id (["MF001"],
      ["MF103"], …), or one of the harness's own tags (["crash"],
      ["hang"], ["fault-injected"], ["roundtrip-mismatch"]);
    - [detail]: the discriminator that separates distinct bugs sharing a
      code — the invariant name, the fault site, the solver pair. May be
      empty. *)

type t = {
  phase : string;
  code : string;
  detail : string;
}

val make : ?detail:string -> phase:string -> code:string -> unit -> t

val of_error : phase:string -> Minflo_robust.Diag.error -> t
(** [code] is {!Minflo_robust.Diag.error_code}; [detail] is the error's
    most discriminating stable field (lint rule, invariant name, fault
    site, solver pair, diverged solver) — never a numeric payload. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic on (phase, code, detail); total order for bucketing. *)

val to_string : t -> string
(** ["phase/code"] or ["phase/code/detail"]. Inverse of {!of_string}. *)

val of_string : string -> t option
(** Splits on ['/']: first two fields are phase and code, the rest (which
    may itself contain ['/']) is the detail. [None] without at least
    "phase/code". *)

val slug : t -> string
(** {!to_string} with every character outside [[A-Za-z0-9._-]] replaced by
    ['-']: safe as a corpus file name. *)
