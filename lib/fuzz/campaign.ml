module Diag = Minflo_robust.Diag
module Rng = Minflo_util.Rng
module Netlist = Minflo_netlist.Netlist
module Supervisor = Minflo_runner.Supervisor

type config = {
  seed : int;
  iterations : int;
  oracle : Oracle.config;
  profile : Gen_mut.profile;
  corpus_dir : string option;
  known : string list;
  shrink : bool;
  shrink_checks : int;
  isolate : bool;
  timeout_seconds : float option;
}

let default_config =
  { seed = 0;
    iterations = 100;
    oracle = Oracle.default_config;
    profile = Gen_mut.default_profile;
    corpus_dir = None;
    known = [];
    shrink = true;
    shrink_checks = 400;
    isolate = false;
    timeout_seconds = None }

type bucket = {
  fingerprint : Fingerprint.t;
  count : int;
  first_seed : int;
  info : string;
  fresh : bool;
  repro_path : string option;
  shrunk_gates : int option;
  replay_deterministic : bool option;
}

type report = {
  cases : int;
  failing_cases : int;
  buckets : bucket list;
  fresh : int;
}

let case_seeds ~seed ~n =
  let rng = Rng.create seed in
  Array.init n (fun _ -> Rng.int rng 0x3FFFFFFF)

(* ---------- one case through the oracle ---------- *)

(* failures of the harness itself (generator crash, supervised child hang
   or death) fingerprint under their own phases so they bucket cleanly *)
let generator_failure exn =
  { Oracle.fingerprint =
      Fingerprint.make ~phase:"generator" ~code:"crash"
        ~detail:(Printexc.to_string exn) ();
    info = Printf.sprintf "case generator raised: %s" (Printexc.to_string exn) }

let runner_failure (e : Diag.error) =
  let code =
    match e with
    | Diag.Job_timeout _ -> "hang"
    | Diag.Job_crashed _ -> "crash"
    | _ -> Diag.error_code e
  in
  { Oracle.fingerprint = Fingerprint.make ~phase:"runner" ~code ();
    info = Diag.to_string e }

let run_case cfg nl =
  if cfg.isolate then begin
    let sup_cfg =
      { Supervisor.parallel = 1;
        timeout_seconds = cfg.timeout_seconds;
        retries = 0;
        backoff_base = 0.0;
        isolate = true;
        watchdog_seconds = None }
    in
    match
      Supervisor.run_all ~config:sup_cfg
        [ ("fuzz-case", fun () -> Ok (Oracle.run cfg.oracle nl)) ]
    with
    | [ (_, { Supervisor.verdict = Ok outcome; _ }) ] -> outcome
    | [ (_, { Supervisor.verdict = Error e; _ }) ] ->
      { Oracle.failures = [ runner_failure e ];
        gates = Netlist.gate_count nl;
        met = false;
        area = nan }
    | _ ->
      { Oracle.failures =
          [ { fingerprint =
                Fingerprint.make ~phase:"runner" ~code:"crash"
                  ~detail:"supervisor-protocol" ();
              info = "supervisor returned an unexpected outcome list" } ];
        gates = Netlist.gate_count nl;
        met = false;
        area = nan }
  end
  else Oracle.run cfg.oracle nl

(* ---------- triage ---------- *)

type raw_bucket = {
  mutable rcount : int;
  rb_seed : int;
  rb_info : string;
  rb_netlist : Minflo_netlist.Netlist.t option;  (* first exhibit *)
}

let shrinkable (fp : Fingerprint.t) = fp.phase <> "runner"

let known_fingerprints cfg =
  let from_corpus =
    match cfg.corpus_dir with
    | None -> []
    | Some dir ->
      List.filter_map
        (fun path ->
          match Corpus.load path with
          | Ok r -> Some (Fingerprint.to_string r.Corpus.fingerprint)
          | Error _ -> None)
        (Corpus.list dir)
  in
  cfg.known @ from_corpus

let run ?progress cfg =
  let seeds = case_seeds ~seed:cfg.seed ~n:cfg.iterations in
  let known = known_fingerprints cfg in
  let buckets : (string, raw_bucket) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let failing_cases = ref 0 in
  Array.iteri
    (fun i case_seed ->
      let nl, gen_failure =
        match Gen_mut.case ~profile:cfg.profile ~seed:case_seed () with
        | nl -> (Some nl, None)
        | exception exn -> (None, Some (generator_failure exn))
      in
      let failures =
        match (nl, gen_failure) with
        | Some nl, None -> (run_case cfg nl).Oracle.failures
        | _, Some f -> [ f ]
        | None, None -> []
      in
      if failures <> [] then incr failing_cases;
      (* one bucket entry per distinct fingerprint per case *)
      let seen_here = Hashtbl.create 4 in
      List.iter
        (fun (f : Oracle.failure) ->
          let key = Fingerprint.to_string f.fingerprint in
          if not (Hashtbl.mem seen_here key) then begin
            Hashtbl.add seen_here key ();
            match Hashtbl.find_opt buckets key with
            | Some rb -> rb.rcount <- rb.rcount + 1
            | None ->
              Hashtbl.add buckets key
                { rcount = 1;
                  rb_seed = case_seed;
                  rb_info = f.info;
                  rb_netlist = nl };
              order := key :: !order
          end)
        failures;
      match progress with Some p -> p i | None -> ())
    seeds;
  let finalize key =
    let rb = Hashtbl.find buckets key in
    let fingerprint =
      match Fingerprint.of_string key with
      | Some fp -> fp
      | None -> Fingerprint.make ~phase:"runner" ~code:"bad-fingerprint" ()
    in
    let fresh = not (List.mem key known) in
    let repro_path, shrunk_gates, replay_deterministic =
      match (fresh, cfg.corpus_dir, rb.rb_netlist) with
      | true, Some dir, Some first_nl ->
        let can_rerun = shrinkable fingerprint in
        let minimal =
          if cfg.shrink && can_rerun then begin
            let keep nl =
              List.exists
                (Fingerprint.equal fingerprint)
                (Oracle.fingerprints (Oracle.run cfg.oracle nl))
            in
            Shrink.shrink ~max_checks:cfg.shrink_checks ~keep first_nl
          end
          else first_nl
        in
        let deterministic =
          if can_rerun then begin
            let fps () = Oracle.fingerprints (Oracle.run cfg.oracle minimal) in
            let a = fps () and b = fps () in
            Some (List.length a = List.length b && List.for_all2 Fingerprint.equal a b)
          end
          else None
        in
        let repro =
          { Corpus.fingerprint;
            seed = rb.rb_seed;
            config = cfg.oracle;
            netlist = minimal }
        in
        let path =
          match Corpus.save ~dir repro with
          | Ok p -> Some p
          | Error _ -> None
        in
        (path, Some (Netlist.gate_count minimal), deterministic)
      | _ -> (None, None, None)
    in
    { fingerprint;
      count = rb.rcount;
      first_seed = rb.rb_seed;
      info = rb.rb_info;
      fresh;
      repro_path;
      shrunk_gates;
      replay_deterministic }
  in
  let bucket_list =
    List.rev_map finalize !order
    |> List.sort (fun a b -> Fingerprint.compare a.fingerprint b.fingerprint)
  in
  { cases = cfg.iterations;
    failing_cases = !failing_cases;
    buckets = bucket_list;
    fresh = List.length (List.filter (fun (b : bucket) -> b.fresh) bucket_list) }

(* ---------- replay ---------- *)

type replay_outcome = {
  repro : Corpus.repro;
  observed : Fingerprint.t list;
  reproduced : bool;
  deterministic : bool;
}

let replay path =
  match Corpus.load path with
  | Error e -> Error e
  | Ok repro ->
    let fps () =
      Oracle.fingerprints (Oracle.run repro.Corpus.config repro.Corpus.netlist)
    in
    let a = fps () in
    let b = fps () in
    Ok
      { repro;
        observed = a;
        reproduced = List.exists (Fingerprint.equal repro.Corpus.fingerprint) a;
        deterministic =
          List.length a = List.length b && List.for_all2 Fingerprint.equal a b }
