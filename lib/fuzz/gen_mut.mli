(** Fuzz-case generation: random netlists plus structural mutation.

    A case is a valid netlist derived deterministically from a single
    integer seed: mostly {!Minflo_netlist.Generators.random_dag} instances
    pushed through a few rounds of {!Minflo_netlist.Mutate} (gate splices,
    kind swaps, reconvergent rewires, fanin widening, deep inverter
    chains), with a fraction of hand-built boundary shapes the parametric
    generator never emits — a single gate, a bare wire, a long inverter
    chain, one enormously wide gate — mixed in at a fixed cadence so every
    campaign exercises them.

    Cases are {e valid} by construction (they elaborate and pass
    [Netlist.validate]); the point of the harness is to find bugs in the
    analysis and sizing stack, not to re-test the parser's rejection paths
    (the linter and parser have their own negative tests). *)

type profile = {
  max_gates : int;       (** upper bound on random-DAG gate count. *)
  max_inputs : int;
  max_outputs : int;
  mutation_rounds : int; (** max mutation rounds applied per case. *)
}

val default_profile : profile
(** 40 gates, 8 inputs, 5 outputs, 4 mutation rounds — small enough that a
    full sizing run per case keeps a 200-iteration campaign fast. *)

val case : ?profile:profile -> seed:int -> unit -> Minflo_netlist.Netlist.t
(** The case for [seed]. Equal seeds give identical netlists. *)
