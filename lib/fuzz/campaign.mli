(** Seeded fuzzing campaigns: generate → oracle → triage → shrink → corpus.

    A campaign derives one case seed per iteration from the campaign seed,
    builds each case with {!Gen_mut}, pushes it through the {!Oracle}
    (optionally inside the batch runner's fork/timeout supervisor, so a
    hang or hard crash in the stack becomes a fingerprinted failure
    instead of taking the campaign down), and buckets every failure by
    {!Fingerprint}. Buckets whose fingerprint is {e fresh} — in neither
    the caller's known list nor the existing corpus — are shrunk by
    {!Shrink} to a minimal reproducer, written to the corpus directory,
    and replayed twice to certify determinism.

    Everything is deterministic from [config]: same seed, same cases, same
    buckets, same repro files (supervised runs add only the possibility of
    [runner/hang] under a wall-clock timeout — the one deliberately
    non-deterministic escape hatch, off by default). *)

type config = {
  seed : int;
  iterations : int;
  oracle : Oracle.config;
  profile : Gen_mut.profile;
  corpus_dir : string option;
      (** where fresh repros go; also scanned for known fingerprints. *)
  known : string list;
      (** extra fingerprint strings to treat as already-triaged. *)
  shrink : bool;
  shrink_checks : int;  (** oracle evaluations the shrinker may spend. *)
  isolate : bool;       (** run each case in a supervised child process. *)
  timeout_seconds : float option;  (** per-case kill when isolated. *)
}

val default_config : config
(** seed 0, 100 iterations, default oracle and profile, no corpus, shrink
    on (400 checks), not isolated, no timeout. *)

type bucket = {
  fingerprint : Fingerprint.t;
  count : int;           (** failing cases in this bucket. *)
  first_seed : int;      (** case seed of the first exhibit. *)
  info : string;         (** the first exhibit's human-readable detail. *)
  fresh : bool;
  repro_path : string option;  (** written iff fresh and a corpus is set. *)
  shrunk_gates : int option;   (** gate count of the written reproducer. *)
  replay_deterministic : bool option;
      (** the shrunk repro's oracle run, executed twice, produced
          identical fingerprint lists; [None] when not replayable
          in-process (runner/* buckets). *)
}

type report = {
  cases : int;
  failing_cases : int;
  buckets : bucket list;  (** in {!Fingerprint.compare} order. *)
  fresh : int;            (** buckets with [fresh = true]. *)
}

val case_seeds : seed:int -> n:int -> int array
(** The derived per-case seeds, exposed so tests (and [--replay-case])
    can regenerate any single case. *)

val run : ?progress:(int -> unit) -> config -> report
(** [progress] is called with each completed 0-based case index. *)

type replay_outcome = {
  repro : Corpus.repro;
  observed : Fingerprint.t list;
  reproduced : bool;      (** stored fingerprint is among [observed]. *)
  deterministic : bool;   (** two back-to-back runs agreed exactly. *)
}

val replay : string -> (replay_outcome, Minflo_robust.Diag.error) result
(** Load a repro file and re-run its oracle twice. *)
