(** The differential fuzzing oracle: one netlist through the whole stack.

    [run config nl] pushes a valid netlist through every layer the tool
    chain trusts — print/reparse round-trip, lint, delay-model extraction,
    a full TILOS + D/W sizing run per configured solver, post-phase
    invariant checks, cross-solver differential comparison of the final
    areas, and an LP-level three-solver differential (network simplex /
    SSP / cost scaling) on the D-phase displacement problem with an
    independent {!Minflo_lint.Audit} of each certificate — and reports
    every anomaly as a fingerprinted failure.

    The oracle never raises and is {b bit-deterministic}: it is a pure
    function of [(config, netlist)]. All engine budgets are expressed in
    iterations and pivots — never wall-clock seconds — which is what makes
    [minflo replay] exact. An unmet delay target is {e not} a failure
    (tight specs are legitimately infeasible); only structural anomalies
    (crashes, typed diagnostics, invariant/audit violations, solver
    disagreement, fired fault sites) are.

    Fault injection: arming [fault_site] (any member of
    {!Minflo_robust.Fault.all_points}) makes the oracle plant the same
    fault the CLI's [--inject-fault] does — [Fail] at the engine sites,
    certificate corruption at the [audit.*] sites — and flag the site as a
    [fault-injected] failure when it actually fired. The sizing engine
    deliberately {e recovers} from injected phase failures (trust-region
    retry), so detection keys on {!Minflo_robust.Fault.fired}, not on the
    run's outcome. *)

type config = {
  target_factor : float;    (** delay target as a fraction of Dmin. *)
  dw_iterations : int;      (** D/W pass cap per engine leg. *)
  budget_iterations : int;  (** run-budget iteration ceiling (TILOS + D/W). *)
  budget_pivots : int;      (** run-budget pivot ceiling per engine leg. *)
  solvers : Minflo_runner.Job.solver list;  (** engine legs to run. *)
  differential : bool;      (** enable the LP-level 3-solver stage. *)
  tolerance : float;        (** relative area tolerance between engine legs. *)
  fault_site : string option;
  fault_seed : int;
}

val default_config : config
(** factor 0.6, 12 D/W passes, 4000 iterations, 2,000,000 pivots,
    legs [`Simplex] and [`Ssp], differential on, tolerance 0.02,
    no fault. *)

type failure = {
  fingerprint : Fingerprint.t;
  info : string;  (** human-readable one-liner; not part of the identity. *)
}

(** Plain data (Marshal-safe across the supervisor's process boundary). *)
type outcome = {
  failures : failure list;  (** in detection order; empty = clean. *)
  gates : int;
  met : bool;               (** first engine leg met the target. *)
  area : float;             (** first engine leg's final area. *)
}

val fingerprints : outcome -> Fingerprint.t list
(** Deduplicated, in first-detection order. *)

val run : config -> Minflo_netlist.Netlist.t -> outcome
