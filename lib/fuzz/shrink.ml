module Netlist = Minflo_netlist.Netlist
module Raw = Minflo_netlist.Raw
module Gate = Minflo_netlist.Gate

let measure nl =
  let fanins = ref 0 in
  Netlist.iter_gates nl (fun v ->
      fanins := !fanins + List.length (Netlist.fanins nl v));
  ( Netlist.gate_count nl,
    !fanins,
    List.length (Netlist.outputs nl),
    Netlist.input_count nl )

(* ---------- editable view (same idea as Mutate's) ---------- *)

type view = {
  name : string;
  inputs : string list;
  outputs : string list;
  gates : Raw.gate_decl array;  (* creation order = topological *)
}

let view_of nl =
  let raw = Raw.of_netlist nl in
  { name = raw.Raw.circuit;
    inputs = List.map fst raw.Raw.inputs;
    outputs = List.map fst raw.Raw.outputs;
    gates = Array.of_list raw.Raw.gates }

let rebuild v =
  let sig_list = List.map (fun n -> (n, Raw.no_loc)) in
  let raw =
    { Raw.file = None;
      circuit = v.name;
      inputs = sig_list v.inputs;
      outputs = sig_list v.outputs;
      gates = Array.to_list v.gates }
  in
  match Raw.elaborate raw with Ok nl -> Some nl | Error _ -> None

let dedupe xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

(* the view with the gates at [drop] removed; each removed gate's output is
   substituted by its first fanin (chains resolve because fanins always
   point at earlier declarations) *)
let without v drop =
  let n = Array.length v.gates in
  let dropped = Array.make n false in
  List.iter (fun i -> if i >= 0 && i < n then dropped.(i) <- true) drop;
  let subst = Hashtbl.create 16 in
  Array.iteri
    (fun i g ->
      if dropped.(i) then
        match g.Raw.g_fanins with
        | f :: _ when f <> g.Raw.g_name -> Hashtbl.replace subst g.Raw.g_name f
        | _ -> ())
    v.gates;
  let rec resolve name =
    match Hashtbl.find_opt subst name with
    | Some next -> resolve next
    | None -> name
  in
  let kept = ref [] in
  Array.iteri
    (fun i g ->
      if not dropped.(i) then
        kept :=
          { g with Raw.g_fanins = List.map resolve g.Raw.g_fanins } :: !kept)
    v.gates;
  { v with
    gates = Array.of_list (List.rev !kept);
    outputs = dedupe (List.map resolve v.outputs) }

let take k xs = List.filteri (fun i _ -> i < k) xs

(* ---------- the reducer ---------- *)

let shrink ?(max_checks = 1000) ~keep nl =
  let checks = ref 0 in
  let best = ref nl in
  let try_view v =
    if !checks >= max_checks then false
    else
      match rebuild v with
      | None -> false
      | Some cand ->
        incr checks;
        if keep cand then begin
          best := cand;
          true
        end
        else false
  in
  (* ddmin over the gate list: try dropping complements of k chunks,
     halving chunk size on failure, coarsening after success *)
  let gate_pass () =
    let progress = ref false in
    let chunks = ref 2 in
    let running = ref true in
    while !running && !checks < max_checks do
      let v = view_of !best in
      let n = Array.length v.gates in
      if n <= 1 then running := false
      else begin
        let k = min !chunks n in
        let size = (n + k - 1) / k in
        let found = ref false in
        let ci = ref 0 in
        while (not !found) && (!ci * size < n) && !checks < max_checks do
          let lo = !ci * size in
          let hi = min n (lo + size) in
          let drop = List.init (hi - lo) (fun j -> lo + j) in
          if try_view (without v drop) then begin
            found := true;
            progress := true
          end;
          incr ci
        done;
        if !found then chunks := max 2 (!chunks - 1)
        else if k >= n then running := false
        else chunks := min n (2 * k)
      end
    done;
    !progress
  in
  (* cut each gate's fanin list toward its kind's minimum arity *)
  let fanin_pass () =
    let progress = ref false in
    let again = ref true in
    while !again && !checks < max_checks do
      again := false;
      let v = view_of !best in
      let n = Array.length v.gates in
      let i = ref 0 in
      while (not !again) && !i < n && !checks < max_checks do
        let g = v.gates.(!i) in
        let arity = List.length g.Raw.g_fanins in
        let m = Gate.min_arity g.Raw.g_kind in
        if arity > m then begin
          let candidates = dedupe [ m; arity - 1 ] in
          List.iter
            (fun k ->
              if not !again then begin
                let gates = Array.copy v.gates in
                gates.(!i) <- { g with Raw.g_fanins = take k g.Raw.g_fanins };
                if try_view { v with gates } then begin
                  again := true;
                  progress := true
                end
              end)
            candidates
        end;
        incr i
      done
    done;
    !progress
  in
  (* drop surplus primary outputs, one at a time, keeping at least one *)
  let output_pass () =
    let progress = ref false in
    let again = ref true in
    while !again && !checks < max_checks do
      again := false;
      let v = view_of !best in
      let n = List.length v.outputs in
      if n > 1 then begin
        let i = ref (n - 1) in
        while (not !again) && !i >= 0 && !checks < max_checks do
          let outputs = List.filteri (fun j _ -> j <> !i) v.outputs in
          if try_view { v with outputs } then begin
            again := true;
            progress := true
          end;
          decr i
        done
      end
    done;
    !progress
  in
  (* prune primary inputs nothing reads *)
  let input_pass () =
    let v = view_of !best in
    let read = Hashtbl.create 64 in
    Array.iter
      (fun g -> List.iter (fun f -> Hashtbl.replace read f ()) g.Raw.g_fanins)
      v.gates;
    List.iter (fun o -> Hashtbl.replace read o ()) v.outputs;
    let unused = List.filter (fun i -> not (Hashtbl.mem read i)) v.inputs in
    if unused = [] then false
    else begin
      let keep_inputs = List.filter (Hashtbl.mem read) v.inputs in
      if keep_inputs <> [] && try_view { v with inputs = keep_inputs } then
        true
      else
        (* all-at-once rejected (or would empty the interface): one by one *)
        List.fold_left
          (fun acc dead ->
            let v = view_of !best in
            let inputs = List.filter (fun i -> i <> dead) v.inputs in
            if inputs <> [] && try_view { v with inputs } then true else acc)
          false unused
    end
  in
  let rec fixpoint () =
    let p1 = gate_pass () in
    let p2 = fanin_pass () in
    let p3 = output_pass () in
    let p4 = input_pass () in
    if (p1 || p2 || p3 || p4) && !checks < max_checks then fixpoint ()
  in
  fixpoint ();
  !best
