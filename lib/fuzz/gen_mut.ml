module Rng = Minflo_util.Rng
module Netlist = Minflo_netlist.Netlist
module Raw = Minflo_netlist.Raw
module Gate = Minflo_netlist.Gate
module Mutate = Minflo_netlist.Mutate
module Generators = Minflo_netlist.Generators

type profile = {
  max_gates : int;
  max_inputs : int;
  max_outputs : int;
  mutation_rounds : int;
}

let default_profile =
  { max_gates = 40; max_inputs = 8; max_outputs = 5; mutation_rounds = 4 }

(* boundary shapes are hand-built raw netlists; a failure to elaborate one
   is a bug in this module, not a finding *)
let build ~name ~inputs ~outputs ~gates =
  let sig_list = List.map (fun n -> (n, Raw.no_loc)) in
  let raw =
    { Raw.file = None;
      circuit = name;
      inputs = sig_list inputs;
      outputs = sig_list outputs;
      gates }
  in
  match Raw.elaborate raw with
  | Ok nl -> nl
  | Error e -> Minflo_robust.Diag.fail e

let decl name kind fanins =
  { Raw.g_name = name; g_kind = kind; g_fanins = fanins; g_loc = Raw.no_loc }

let single_gate () =
  build ~name:"fz_single" ~inputs:[ "a"; "b" ] ~outputs:[ "g" ]
    ~gates:[ decl "g" Gate.Nand [ "a"; "b" ] ]

let bare_wire () =
  build ~name:"fz_wire" ~inputs:[ "a" ] ~outputs:[ "g" ]
    ~gates:[ decl "g" Gate.Buf [ "a" ] ]

let inverter_chain rng =
  let depth = 48 + Rng.int rng 100 in
  let name i = Printf.sprintf "n%d" i in
  let gates =
    List.init depth (fun i ->
        decl (name i) Gate.Not [ (if i = 0 then "a" else name (i - 1)) ])
  in
  build ~name:"fz_chain" ~inputs:[ "a" ] ~outputs:[ name (depth - 1) ] ~gates

let wide_gate rng =
  let width = 8 + Rng.int rng 24 in
  let ins = List.init width (Printf.sprintf "i%d") in
  build ~name:"fz_wide" ~inputs:ins ~outputs:[ "g" ]
    ~gates:[ decl "g" Gate.And ins ]

let boundary rng =
  match Rng.int rng 4 with
  | 0 -> single_gate ()
  | 1 -> bare_wire ()
  | 2 -> inverter_chain rng
  | _ -> wide_gate rng

let random_case rng profile =
  let gates = 3 + Rng.int rng (max 1 (profile.max_gates - 2)) in
  let inputs = 2 + Rng.int rng (max 1 (profile.max_inputs - 1)) in
  let outputs = 1 + Rng.int rng (max 1 profile.max_outputs) in
  let dag_seed = Rng.int rng 1000000007 in
  let nl = Generators.random_dag ~gates ~inputs ~outputs ~seed:dag_seed () in
  let rounds = Rng.int rng (profile.mutation_rounds + 1) in
  if rounds = 0 then nl
  else Mutate.mutate ~seed:(Rng.int rng 1000000007) ~rounds nl

let case ?(profile = default_profile) ~seed () =
  let rng = Rng.create seed in
  (* one case in eight is a boundary shape *)
  if Rng.int rng 8 = 0 then boundary rng else random_case rng profile
