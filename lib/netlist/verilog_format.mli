(** Reader and writer for gate-level structural Verilog.

    The subset every ISCAS85 distribution and most academic netlists use:
    one module, [input]/[output]/[wire] declarations, and primitive gate
    instantiations with the output as the first terminal:

    {v module c17 (N1, N2, N3, N6, N7, N22, N23);
         input  N1, N2, N3, N6, N7;
         output N22, N23;
         wire   N10, N11, N16, N19;
         nand NAND2_1 (N10, N1, N3);
         ...
       endmodule v}

    Instance names are optional; [//] and [/* */] comments are handled;
    multiple declarations per keyword and statements spanning lines are
    fine. Behavioral constructs ([assign], [always], ...) are rejected with
    a located error. *)

val parse_raw_string :
  ?name:string -> string -> (Raw.t, Minflo_robust.Diag.error) result
(** Syntactic phase only: declarations with source locations, no name
    resolution. Semantically malformed circuits (cycles, duplicate or
    undefined signals) parse fine here — the linter consumes this form. *)

val parse_raw_file : string -> (Raw.t, Minflo_robust.Diag.error) result

val parse_string :
  ?name:string -> string -> (Netlist.t, Minflo_robust.Diag.error) result
(** The netlist takes the module's name unless [name] is given. Malformed or
    unsupported input yields [Error (Parse_error _)] with 1-based line and
    column numbers. Equivalent to {!parse_raw_string} then {!Raw.elaborate}. *)

val parse_file : string -> (Netlist.t, Minflo_robust.Diag.error) result
(** Unreadable files yield [Error (Io_error _)]; parse failures carry the
    file name. *)

val parse_string_exn : ?name:string -> string -> Netlist.t
(** @raise Minflo_robust.Diag.Error_exn instead of returning [Error]. *)

val parse_file_exn : string -> Netlist.t
(** @raise Minflo_robust.Diag.Error_exn instead of returning [Error]. *)

val to_string : Netlist.t -> string
(** Structural Verilog; identifiers unsuitable for Verilog are escaped with
    a [n_] prefix scheme so the output always re-parses. *)

val write_file : string -> Netlist.t -> unit
