module Rng = Minflo_util.Rng

type op = Splice | Swap_kind | Rewire | Deep_chain | Widen | Dup_output

let all_ops = [ Splice; Swap_kind; Rewire; Deep_chain; Widen; Dup_output ]

let op_name = function
  | Splice -> "splice"
  | Swap_kind -> "swap-kind"
  | Rewire -> "rewire"
  | Deep_chain -> "deep-chain"
  | Widen -> "widen"
  | Dup_output -> "dup-output"

(* ---------- editable view ---------- *)

(* Mutations edit the raw declaration list and re-elaborate. [Raw.of_netlist]
   lists gates in creation order, which is a topological order, so "signals
   declared before index i" is exactly the set a gate at position i may read
   without creating a cycle. *)

type view = {
  name : string;
  inputs : string list;
  mutable outputs : string list;
  gates : Raw.gate_decl array;  (* edited in place; splices rebuild *)
}

let view_of nl =
  let raw = Raw.of_netlist nl in
  { name = raw.Raw.circuit;
    inputs = List.map fst raw.Raw.inputs;
    outputs = List.map fst raw.Raw.outputs;
    gates = Array.of_list raw.Raw.gates }

let decl name kind fanins =
  { Raw.g_name = name; g_kind = kind; g_fanins = fanins; g_loc = Raw.no_loc }

let rebuild ?(extra = []) v =
  let raw =
    { Raw.file = None;
      circuit = v.name;
      inputs = List.map (fun nm -> (nm, Raw.no_loc)) v.inputs;
      outputs = List.map (fun nm -> (nm, Raw.no_loc)) v.outputs;
      gates = Array.to_list v.gates @ extra }
  in
  match Raw.elaborate raw with Ok nl -> Some nl | Error _ -> None

let fresh_name =
  (* names unique against everything already declared *)
  let exists v nm =
    List.mem nm v.inputs
    || Array.exists (fun g -> g.Raw.g_name = nm) v.gates
  in
  fun v tag ->
    let rec go k =
      let nm = Printf.sprintf "mut_%s%d" tag k in
      if exists v nm then go (k + 1) else nm
    in
    go 0

(* signals a gate at index [i] may legally read: inputs plus outputs of
   gates declared strictly before it *)
let signals_before v i =
  let acc = ref (List.rev v.inputs) in
  for j = 0 to i - 1 do
    acc := v.gates.(j).Raw.g_name :: !acc
  done;
  Array.of_list (List.rev !acc)

let all_signals v = signals_before v (Array.length v.gates)

let replace_nth xs n y = List.mapi (fun i x -> if i = n then y else x) xs

(* ---------- operations ---------- *)

let splice rng v =
  let n = Array.length v.gates in
  if n = 0 then None
  else begin
    let i = Rng.int rng n in
    let g = v.gates.(i) in
    let p = Rng.int rng (List.length g.Raw.g_fanins) in
    let src = List.nth g.Raw.g_fanins p in
    let kind = if Rng.bool rng then Gate.Buf else Gate.Not in
    let nm = fresh_name v "sp" in
    v.gates.(i) <- { g with Raw.g_fanins = replace_nth g.Raw.g_fanins p nm };
    (* declare the spliced gate before its reader; order elsewhere unchanged *)
    let gates =
      Array.to_list (Array.sub v.gates 0 i)
      @ [ decl nm kind [ src ] ]
      @ Array.to_list (Array.sub v.gates i (n - i))
    in
    rebuild { v with gates = Array.of_list gates }
  end

let swap_kind rng v =
  let n = Array.length v.gates in
  if n = 0 then None
  else begin
    let i = Rng.int rng n in
    let g = v.gates.(i) in
    let arity = List.length g.Raw.g_fanins in
    let candidates =
      List.filter
        (fun k ->
          k <> g.Raw.g_kind
          && arity >= Gate.min_arity k
          && match Gate.max_arity k with None -> true | Some m -> arity <= m)
        Gate.all
    in
    match candidates with
    | [] -> None
    | _ ->
      let k = Rng.pick rng (Array.of_list candidates) in
      v.gates.(i) <- { g with Raw.g_kind = k };
      rebuild v
  end

let rewire rng v =
  let n = Array.length v.gates in
  if n = 0 then None
  else begin
    let i = Rng.int rng n in
    let g = v.gates.(i) in
    let pool = signals_before v i in
    if Array.length pool = 0 then None
    else begin
      let p = Rng.int rng (List.length g.Raw.g_fanins) in
      let src = Rng.pick rng pool in
      v.gates.(i) <- { g with Raw.g_fanins = replace_nth g.Raw.g_fanins p src };
      rebuild v
    end
  end

let deep_chain rng v =
  let pool = all_signals v in
  if Array.length pool = 0 then None
  else begin
    let src = Rng.pick rng pool in
    let depth = 16 + Rng.int rng 49 in
    let chain = ref [] in
    let prev = ref src in
    for k = 0 to depth - 1 do
      let nm = fresh_name v (Printf.sprintf "ch%d_" k) in
      chain := decl nm Gate.Not [ !prev ] :: !chain;
      prev := nm
    done;
    v.outputs <- v.outputs @ [ !prev ];
    rebuild ~extra:(List.rev !chain) v
  end

let widen rng v =
  let n = Array.length v.gates in
  if n = 0 then None
  else begin
    let i = Rng.int rng n in
    let g = v.gates.(i) in
    if Gate.max_arity g.Raw.g_kind <> None then None
    else begin
      let pool = signals_before v i in
      if Array.length pool = 0 then None
      else begin
        let extra = 1 + Rng.int rng 4 in
        let added = List.init extra (fun _ -> Rng.pick rng pool) in
        v.gates.(i) <- { g with Raw.g_fanins = g.Raw.g_fanins @ added };
        rebuild v
      end
    end
  end

let dup_output rng v =
  let internal =
    Array.to_list v.gates
    |> List.filter_map (fun g ->
           if List.mem g.Raw.g_name v.outputs then None else Some g.Raw.g_name)
  in
  match internal with
  | [] -> None
  | _ ->
    v.outputs <- v.outputs @ [ Rng.pick rng (Array.of_list internal) ];
    rebuild v

let apply rng op nl =
  let v = view_of nl in
  match op with
  | Splice -> splice rng v
  | Swap_kind -> swap_kind rng v
  | Rewire -> rewire rng v
  | Deep_chain -> deep_chain rng v
  | Widen -> widen rng v
  | Dup_output -> dup_output rng v

let mutate ?(ops = all_ops) ~seed ~rounds nl =
  let rng = Rng.create seed in
  let ops = Array.of_list ops in
  let cur = ref nl in
  for _ = 1 to rounds do
    match apply rng (Rng.pick rng ops) !cur with
    | Some nl' -> cur := nl'
    | None -> ()
  done;
  !cur
