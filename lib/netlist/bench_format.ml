module Diag = Minflo_robust.Diag

(* internal located failure; wrapped into [Diag.Parse_error] at the API
   boundary so the file name can be attached *)
exception Located of int * int * string

let fail line col fmt =
  Printf.ksprintf (fun message -> raise (Located (line, col, message))) fmt

(* reject pathologically long names before they travel any further *)
let check_token line col s =
  if String.length s > Raw.max_token_length then
    fail line col "token of %d bytes exceeds the %d-byte limit"
      (String.length s) Raw.max_token_length;
  s

type statement =
  | St_input of string
  | St_output of string
  | St_gate of string * Gate.kind * string list

let is_space c = c = ' ' || c = '\t' || c = '\r'

let strip s =
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

(* "NAME ( a , b )" -> (NAME, [a; b]) *)
let parse_call line col s =
  match String.index_opt s '(' with
  | None -> fail line col "expected '(' in %S" s
  | Some i ->
    let fname = strip (String.sub s 0 i) in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match String.rindex_opt rest ')' with
    | None -> fail line col "missing ')' in %S" s
    | Some j ->
      let args = String.sub rest 0 j in
      let tail = strip (String.sub rest (j + 1) (String.length rest - j - 1)) in
      if tail <> "" then fail line col "trailing characters %S" tail;
      let parts = String.split_on_char ',' args |> List.map strip in
      let parts = List.filter (fun p -> p <> "") parts in
      (check_token line col fname,
       List.map (fun p -> check_token line col p) parts))

let parse_line lineno raw =
  let s =
    match String.index_opt raw '#' with
    | Some i -> strip (String.sub raw 0 i)
    | None -> strip raw
  in
  if s = "" then None
  else begin
    (* 1-based column of the statement's first character *)
    let col =
      let n = String.length raw in
      let i = ref 0 in
      while !i < n && is_space raw.[!i] do incr i done;
      !i + 1
    in
    let loc = { Raw.line = lineno; col } in
    match String.index_opt s '=' with
    | Some i ->
      let lhs = strip (String.sub s 0 i) in
      let rhs = strip (String.sub s (i + 1) (String.length s - i - 1)) in
      if lhs = "" then fail lineno col "empty gate name";
      let lhs = check_token lineno col lhs in
      let fname, args = parse_call lineno col rhs in
      (match Gate.of_string fname with
      | Some k -> Some (loc, St_gate (lhs, k, args))
      | None ->
        if String.uppercase_ascii fname = "DFF" then
          fail lineno col
            "sequential element DFF is not supported (combinational sizing only)"
        else fail lineno col "unknown gate type %S" fname)
    | None ->
      let fname, args = parse_call lineno col s in
      (match (String.uppercase_ascii fname, args) with
      | "INPUT", [ a ] -> Some (loc, St_input a)
      | "OUTPUT", [ a ] -> Some (loc, St_output a)
      | ("INPUT" | "OUTPUT"), _ ->
        fail lineno col "%s takes exactly one signal" fname
      | _ -> fail lineno col "expected INPUT/OUTPUT/assignment, got %S" s)
  end

let parse_raw_internal ?file ?name text : Raw.t =
  let lines = String.split_on_char '\n' text in
  let name =
    match name with
    | Some n -> n
    | None -> (
      (* recover the name our own writer puts on the first line ("# <name>"),
         so parse (to_string nl) preserves it and printing is a fixpoint;
         anything that doesn't look like a bare identifier (e.g. a prose
         header in a foreign file) falls back to the generic name *)
      match lines with
      | first :: _ when String.length first > 1 && first.[0] = '#' ->
        let cand = strip (String.sub first 1 (String.length first - 1)) in
        if cand <> "" && not (String.contains cand ' ') then cand else "bench"
      | _ -> "bench")
  in
  let statements =
    List.mapi (fun i l -> parse_line (i + 1) l) lines |> List.filter_map Fun.id
  in
  let pick f = List.filter_map f statements in
  { Raw.file;
    circuit = name;
    inputs =
      pick (function loc, St_input nm -> Some (nm, loc) | _ -> None);
    outputs =
      pick (function loc, St_output nm -> Some (nm, loc) | _ -> None);
    gates =
      pick (function
        | loc, St_gate (nm, k, args) ->
          Some { Raw.g_name = nm; g_kind = k; g_fanins = args; g_loc = loc }
        | _ -> None) }

let located ?file body =
  match body () with
  | v -> Ok v
  | exception Located (line, col, msg) ->
    Error (Diag.Parse_error { file; line; col; msg })

let read_file path =
  match open_in path with
  | exception Sys_error msg -> Error (Diag.Io_error { file = path; msg })
  | ic ->
    Ok
      (Fun.protect
         ~finally:(fun () -> close_in ic)
         (fun () -> really_input_string ic (in_channel_length ic)))

let parse_raw_string ?name text =
  located (fun () -> parse_raw_internal ?name text)

let parse_raw_file path =
  match read_file path with
  | Error _ as e -> e
  | Ok text ->
    let base = Filename.remove_extension (Filename.basename path) in
    located ~file:path (fun () -> parse_raw_internal ~file:path ~name:base text)

let parse_string ?name text =
  Result.join (Result.map Raw.elaborate (parse_raw_string ?name text))

let parse_file path =
  Result.join (Result.map Raw.elaborate (parse_raw_file path))

let parse_string_exn ?name text =
  match parse_string ?name text with Ok nl -> nl | Error e -> Diag.fail e

let parse_file_exn path =
  match parse_file path with Ok nl -> nl | Error e -> Diag.fail e

let to_string nl =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Netlist.name nl));
  Buffer.add_string buf
    (Printf.sprintf "# %d inputs, %d outputs, %d gates\n"
       (Netlist.input_count nl)
       (List.length (Netlist.outputs nl))
       (Netlist.gate_count nl));
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (Netlist.node_name nl v)))
    (Netlist.inputs nl);
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (Netlist.node_name nl v)))
    (Netlist.outputs nl);
  Netlist.iter_gates nl (fun v ->
      match Netlist.kind nl v with
      | Gate k ->
        Buffer.add_string buf
          (Printf.sprintf "%s = %s(%s)\n" (Netlist.node_name nl v) (Gate.to_string k)
             (String.concat ", " (List.map (Netlist.node_name nl) (Netlist.fanins nl v))))
      | Input -> ());
  Buffer.contents buf

let write_file path nl =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string nl))
