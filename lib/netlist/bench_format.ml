module Diag = Minflo_robust.Diag

(* internal located failure; wrapped into [Diag.Parse_error] at the API
   boundary so the file name can be attached *)
exception Located of int * string

let fail line fmt = Printf.ksprintf (fun message -> raise (Located (line, message))) fmt

type statement =
  | St_input of string
  | St_output of string
  | St_gate of string * Gate.kind * string list

let is_space c = c = ' ' || c = '\t' || c = '\r'

let strip s =
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

(* "NAME ( a , b )" -> (NAME, [a; b]) *)
let parse_call line s =
  match String.index_opt s '(' with
  | None -> fail line "expected '(' in %S" s
  | Some i ->
    let fname = strip (String.sub s 0 i) in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match String.rindex_opt rest ')' with
    | None -> fail line "missing ')' in %S" s
    | Some j ->
      let args = String.sub rest 0 j in
      let tail = strip (String.sub rest (j + 1) (String.length rest - j - 1)) in
      if tail <> "" then fail line "trailing characters %S" tail;
      let parts = String.split_on_char ',' args |> List.map strip in
      let parts = List.filter (fun p -> p <> "") parts in
      (fname, parts))

let parse_line lineno raw =
  let s =
    match String.index_opt raw '#' with
    | Some i -> strip (String.sub raw 0 i)
    | None -> strip raw
  in
  if s = "" then None
  else begin
    match String.index_opt s '=' with
    | Some i ->
      let lhs = strip (String.sub s 0 i) in
      let rhs = strip (String.sub s (i + 1) (String.length s - i - 1)) in
      if lhs = "" then fail lineno "empty gate name";
      let fname, args = parse_call lineno rhs in
      (match Gate.of_string fname with
      | Some k -> Some (St_gate (lhs, k, args))
      | None ->
        if String.uppercase_ascii fname = "DFF" then
          fail lineno "sequential element DFF is not supported (combinational sizing only)"
        else fail lineno "unknown gate type %S" fname)
    | None ->
      let fname, args = parse_call lineno s in
      (match (String.uppercase_ascii fname, args) with
      | "INPUT", [ a ] -> Some (St_input a)
      | "OUTPUT", [ a ] -> Some (St_output a)
      | ("INPUT" | "OUTPUT"), _ -> fail lineno "%s takes exactly one signal" fname
      | _ -> fail lineno "expected INPUT/OUTPUT/assignment, got %S" s)
  end

let parse_internal ?name text =
  let lines = String.split_on_char '\n' text in
  let name =
    match name with
    | Some n -> n
    | None -> (
      (* recover the name our own writer puts on the first line ("# <name>"),
         so parse (to_string nl) preserves it and printing is a fixpoint;
         anything that doesn't look like a bare identifier (e.g. a prose
         header in a foreign file) falls back to the generic name *)
      match lines with
      | first :: _ when String.length first > 1 && first.[0] = '#' ->
        let cand = strip (String.sub first 1 (String.length first - 1)) in
        if cand <> "" && not (String.contains cand ' ') then cand else "bench"
      | _ -> "bench")
  in
  let statements =
    List.filteri (fun _ _ -> true) lines
    |> List.mapi (fun i l -> (i + 1, parse_line (i + 1) l))
    |> List.filter_map (fun (i, s) -> Option.map (fun s -> (i, s)) s)
  in
  let nl = Netlist.create ~name () in
  (* pass 1: declare inputs *)
  List.iter
    (fun (line, st) ->
      match st with
      | St_input nm ->
        if Netlist.find nl nm <> None then fail line "duplicate INPUT(%s)" nm
        else ignore (Netlist.add_input nl nm)
      | _ -> ())
    statements;
  (* pass 2: add gates in dependency order (iterate until fixpoint to allow
     textual forward references) *)
  let gates =
    List.filter_map
      (fun (line, st) ->
        match st with St_gate (nm, k, args) -> Some (line, nm, k, args) | _ -> None)
      statements
  in
  let remaining = ref gates in
  let progress = ref true in
  while !remaining <> [] && !progress do
    progress := false;
    remaining :=
      List.filter
        (fun (line, nm, k, args) ->
          let resolved = List.map (Netlist.find nl) args in
          if List.for_all Option.is_some resolved then begin
            (try ignore (Netlist.add_gate nl nm k (List.map Option.get resolved))
             with Invalid_argument m -> fail line "%s" m);
            progress := true;
            false
          end
          else true)
        !remaining
  done;
  (match !remaining with
  | (line, nm, _, args) :: _ ->
    let missing =
      List.filter (fun a -> Netlist.find nl a = None) args |> String.concat ", "
    in
    fail line "gate %S has undefined or cyclic fanins: %s" nm missing
  | [] -> ());
  (* pass 3: outputs *)
  List.iter
    (fun (line, st) ->
      match st with
      | St_output nm -> (
        match Netlist.find nl nm with
        | Some v -> Netlist.mark_output nl v
        | None -> fail line "OUTPUT(%s) refers to an undefined signal" nm)
      | _ -> ())
    statements;
  (try Netlist.validate nl
   with Invalid_argument m -> fail 0 "%s" m);
  nl

let located ?file body =
  match body () with
  | nl -> Ok nl
  | exception Located (line, msg) -> Error (Diag.Parse_error { file; line; msg })

let parse_string ?name text = located (fun () -> parse_internal ?name text)

let parse_file path =
  match open_in path with
  | exception Sys_error msg -> Error (Diag.Io_error { file = path; msg })
  | ic ->
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let base = Filename.remove_extension (Filename.basename path) in
    located ~file:path (fun () -> parse_internal ~name:base text)

let parse_string_exn ?name text =
  match parse_string ?name text with Ok nl -> nl | Error e -> Diag.fail e

let parse_file_exn path =
  match parse_file path with Ok nl -> nl | Error e -> Diag.fail e

let to_string nl =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Netlist.name nl));
  Buffer.add_string buf
    (Printf.sprintf "# %d inputs, %d outputs, %d gates\n"
       (Netlist.input_count nl)
       (List.length (Netlist.outputs nl))
       (Netlist.gate_count nl));
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (Netlist.node_name nl v)))
    (Netlist.inputs nl);
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (Netlist.node_name nl v)))
    (Netlist.outputs nl);
  Netlist.iter_gates nl (fun v ->
      match Netlist.kind nl v with
      | Gate k ->
        Buffer.add_string buf
          (Printf.sprintf "%s = %s(%s)\n" (Netlist.node_name nl v) (Gate.to_string k)
             (String.concat ", " (List.map (Netlist.node_name nl) (Netlist.fanins nl v))))
      | Input -> ());
  Buffer.contents buf

let write_file path nl =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string nl))
