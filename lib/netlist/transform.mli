(** Structural netlist transformations. *)

val sweep_dead : Netlist.t -> Netlist.t
(** Drop every gate from which no primary output is reachable — exactly the
    set the linter reports as MF005 ([Minflo_lint.Lint.dead_gates]). Primary
    inputs are interface and are always kept. The result passes
    {!Netlist.validate}; on an already-valid netlist this is a structural
    no-op (same gates, names, and connectivity, hence identical area and
    delay). *)

val expand_xor : Netlist.t -> Netlist.t
(** Replace every XOR/XNOR gate by a 2-input NAND network (4 NANDs per
    2-input XOR stage, plus an inverter for XNOR). This is precisely the
    relationship between the real c499 and c1355 benchmarks; we use it the
    same way to derive the c1355 stand-in. N-ary XORs are expanded as
    left-to-right chains. *)

val to_nand_inv : Netlist.t -> Netlist.t
(** Map the whole netlist onto {NAND2, NOT}: AND/OR/NOR are rewritten with
    De Morgan identities, wide gates become balanced NAND/NOT trees, and
    XOR/XNOR use {!expand_xor}'s pattern. Functional equivalence is covered
    by the property tests. *)
