module Rng = Minflo_util.Rng

type style = [ `Compact | `Nand ]

(* Node names must be unique; derive them from the node counter. *)
let fresh nl prefix = Printf.sprintf "%s%d" prefix (Netlist.node_count nl)

let gate nl prefix kind fanins = Netlist.add_gate nl (fresh nl prefix) kind fanins

let nand2 nl a b = gate nl "n" Gate.Nand [ a; b ]

(* ---------- style-aware primitives ---------- *)

let xor2 style nl a b =
  match style with
  | `Compact -> gate nl "x" Gate.Xor [ a; b ]
  | `Nand ->
    (* a xor b = NAND(NAND(a, NAND(a,b)), NAND(b, NAND(a,b))) *)
    let ab = nand2 nl a b in
    let l = nand2 nl a ab in
    let r = nand2 nl b ab in
    nand2 nl l r

let not1 nl a = gate nl "i" Gate.Not [ a ]

(* (sum, carry) of a half adder *)
let half_adder style nl a b =
  match style with
  | `Compact ->
    let s = gate nl "hs" Gate.Xor [ a; b ] in
    let c = gate nl "hc" Gate.And [ a; b ] in
    (s, c)
  | `Nand ->
    let ab = nand2 nl a b in
    let l = nand2 nl a ab in
    let r = nand2 nl b ab in
    let s = nand2 nl l r in
    let c = not1 nl ab in
    (s, c)

(* (sum, carry) of a full adder *)
let full_adder style nl a b cin =
  match style with
  | `Compact ->
    let p = gate nl "fp" Gate.Xor [ a; b ] in
    let s = gate nl "fs" Gate.Xor [ p; cin ] in
    let g = gate nl "fg" Gate.And [ a; b ] in
    let t = gate nl "ft" Gate.And [ p; cin ] in
    let c = gate nl "fc" Gate.Or [ g; t ] in
    (s, c)
  | `Nand ->
    (* the classic 9-NAND full adder *)
    let s1 = nand2 nl a b in
    let s2 = nand2 nl a s1 in
    let s3 = nand2 nl b s1 in
    let hs = nand2 nl s2 s3 in
    let t1 = nand2 nl hs cin in
    let t2 = nand2 nl hs t1 in
    let t3 = nand2 nl cin t1 in
    let s = nand2 nl t2 t3 in
    let c = nand2 nl s1 t1 in
    (s, c)

let xor_reduce style nl nodes =
  (* balanced tree keeps the depth logarithmic *)
  let rec reduce = function
    | [] -> invalid_arg "xor_reduce: empty"
    | [ x ] -> x
    | nodes ->
      let rec pair = function
        | a :: b :: rest -> xor2 style nl a b :: pair rest
        | leftover -> leftover
      in
      reduce (pair nodes)
  in
  reduce nodes

(* ---------- adders ---------- *)

let ripple_carry_adder ?(style = `Compact) ~bits () =
  if bits < 1 then invalid_arg "ripple_carry_adder: bits must be >= 1";
  let nl =
    Netlist.create ~name:(Printf.sprintf "adder%d%s" bits
                            (match style with `Compact -> "" | `Nand -> "_nand")) ()
  in
  let a = Array.init bits (fun i -> Netlist.add_input nl (Printf.sprintf "a%d" i)) in
  let b = Array.init bits (fun i -> Netlist.add_input nl (Printf.sprintf "b%d" i)) in
  let cin = Netlist.add_input nl "cin" in
  let carry = ref cin in
  for i = 0 to bits - 1 do
    let s, c = full_adder style nl a.(i) b.(i) !carry in
    Netlist.mark_output nl s;
    carry := c
  done;
  Netlist.mark_output nl !carry;
  Netlist.validate nl;
  nl

let kogge_stone_adder ?(style = `Compact) ~bits () =
  if bits < 1 then invalid_arg "kogge_stone_adder: bits must be >= 1";
  let n = bits in
  let nl =
    Netlist.create
      ~name:(Printf.sprintf "ks%d%s" n
               (match style with `Compact -> "" | `Nand -> "_nand")) ()
  in
  let a = Array.init n (fun i -> Netlist.add_input nl (Printf.sprintf "a%d" i)) in
  let b = Array.init n (fun i -> Netlist.add_input nl (Printf.sprintf "b%d" i)) in
  let cin = Netlist.add_input nl "cin" in
  (* generate/propagate, then distance-doubling prefix combines *)
  let p0 = Array.init n (fun i -> xor2 style nl a.(i) b.(i)) in
  let g = Array.map Fun.id (Array.init n (fun i -> gate nl "g" Gate.And [ a.(i); b.(i) ])) in
  let p = Array.copy p0 in
  let d = ref 1 in
  while !d < n do
    let step = !d in
    let ng = Array.copy g and np = Array.copy p in
    for i = n - 1 downto step do
      let t = gate nl "kt" Gate.And [ p.(i); g.(i - step) ] in
      ng.(i) <- gate nl "kg" Gate.Or [ g.(i); t ];
      np.(i) <- gate nl "kp" Gate.And [ p.(i); p.(i - step) ]
    done;
    Array.blit ng 0 g 0 n;
    Array.blit np 0 p 0 n;
    d := !d * 2
  done;
  (* carries: c_0 = cin; c_{i+1} = G_i OR (P_i AND cin) *)
  let carry = Array.make (n + 1) cin in
  for i = 0 to n - 1 do
    let t = gate nl "ct" Gate.And [ p.(i); cin ] in
    carry.(i + 1) <- gate nl "c" Gate.Or [ g.(i); t ]
  done;
  for i = 0 to n - 1 do
    let s = xor2 style nl p0.(i) carry.(i) in
    Netlist.mark_output nl s
  done;
  Netlist.mark_output nl carry.(n);
  Netlist.validate nl;
  nl

(* ---------- array multiplier (shift-add rows, the c6288 structure) ----- *)

let array_multiplier ?(style = `Compact) ~bits () =
  if bits < 2 then invalid_arg "array_multiplier: bits must be >= 2";
  let n = bits in
  let nl =
    Netlist.create ~name:(Printf.sprintf "mult%d%s" n
                            (match style with `Compact -> "" | `Nand -> "_nand")) ()
  in
  let a = Array.init n (fun i -> Netlist.add_input nl (Printf.sprintf "a%d" i)) in
  let b = Array.init n (fun i -> Netlist.add_input nl (Printf.sprintf "b%d" i)) in
  let pp i j = gate nl "pp" Gate.And [ a.(i); b.(j) ] in
  (* row 0 *)
  let row0 = Array.init n (fun j -> pp 0 j) in
  Netlist.mark_output nl row0.(0);
  (* cur.(k) holds bit (i + k) of the running sum, k = 1 .. n-1;
     top holds bit (i + n - 1) carry from the previous row when present *)
  let cur = ref (Array.sub row0 1 (n - 1)) in
  let top = ref None in
  for i = 1 to n - 1 do
    let row = Array.init n (fun j -> pp i j) in
    let result = Array.make n row.(0) in
    (* bottom position: no carry-in yet *)
    let s0, c0 = half_adder style nl !cur.(0) row.(0) in
    result.(0) <- s0;
    let carry = ref c0 in
    for j = 1 to n - 2 do
      let s, c = full_adder style nl !cur.(j) row.(j) !carry in
      result.(j) <- s;
      carry := c
    done;
    (* top position: previous row's carry-out participates when it exists *)
    (match !top with
    | Some t ->
      let s, c = full_adder style nl t row.(n - 1) !carry in
      result.(n - 1) <- s;
      top := Some c
    | None ->
      let s, c = half_adder style nl row.(n - 1) !carry in
      result.(n - 1) <- s;
      top := Some c);
    Netlist.mark_output nl result.(0);
    cur := Array.sub result 1 (n - 1)
  done;
  (* remaining high-order bits *)
  Array.iter (fun v -> Netlist.mark_output nl v) !cur;
  (match !top with Some t -> Netlist.mark_output nl t | None -> assert false);
  Netlist.validate nl;
  nl

(* ---------- parity / SEC ---------- *)

let parity_tree ?(style = `Compact) ~width () =
  if width < 2 then invalid_arg "parity_tree: width must be >= 2";
  let nl = Netlist.create ~name:(Printf.sprintf "parity%d" width) () in
  let xs =
    List.init width (fun i -> Netlist.add_input nl (Printf.sprintf "x%d" i))
  in
  let p = xor_reduce style nl xs in
  let np = not1 nl p in
  Netlist.mark_output nl p;
  Netlist.mark_output nl np;
  Netlist.validate nl;
  nl

let sec_circuit ?(style = `Compact) ~data_bits () =
  if data_bits < 4 then invalid_arg "sec_circuit: data_bits must be >= 4";
  let d = data_bits in
  (* Each data bit gets a distinct weight-2 check code; the smallest check
     count whose weight-2 code space holds [d] bits also guarantees every
     check participates in some group. Distinct nonzero codes make the
     circuit a true single-error corrector (d = 32 gives 9 checks — 41
     inputs, matching the real c499). *)
  let nchecks =
    let rec search c = if c * (c - 1) / 2 >= d then c else search (c + 1) in
    search 4
  in
  let nl = Netlist.create ~name:(Printf.sprintf "sec%d" d) () in
  let data = Array.init d (fun j -> Netlist.add_input nl (Printf.sprintf "d%d" j)) in
  let chk = Array.init nchecks (fun k -> Netlist.add_input nl (Printf.sprintf "c%d" k)) in
  let codes = Sec_codes.weight2 ~checks:nchecks ~count:d in
  let member j k = (codes.(j) lsr k) land 1 = 1 in
  let syndrome =
    Array.init nchecks (fun k ->
        let group = List.filter (fun j -> member j k) (List.init d Fun.id) in
        assert (group <> []);
        xor_reduce style nl (chk.(k) :: List.map (fun j -> data.(j)) group))
  in
  let nsyndrome = Array.map (fun s -> not1 nl s) syndrome in
  Array.iteri
    (fun j dj ->
      let pattern =
        List.init nchecks (fun k -> if member j k then syndrome.(k) else nsyndrome.(k))
      in
      let matchj = gate nl "m" Gate.And pattern in
      let out = xor2 style nl dj matchj in
      Netlist.mark_output nl out)
    data;
  Netlist.validate nl;
  nl

(* ---------- ALU ---------- *)

let alu ?(style = `Compact) ~width () =
  if width < 1 then invalid_arg "alu: width must be >= 1";
  let nl = Netlist.create ~name:(Printf.sprintf "alu%d" width) () in
  let a = Array.init width (fun i -> Netlist.add_input nl (Printf.sprintf "a%d" i)) in
  let b = Array.init width (fun i -> Netlist.add_input nl (Printf.sprintf "b%d" i)) in
  let cin = Netlist.add_input nl "cin" in
  let op0 = Netlist.add_input nl "op0" in
  let op1 = Netlist.add_input nl "op1" in
  let nop0 = not1 nl op0 in
  let nop1 = not1 nl op1 in
  let carry = ref cin in
  let outs =
    Array.init width (fun i ->
        let sum, c = full_adder style nl a.(i) b.(i) !carry in
        carry := c;
        let land_ = gate nl "la" Gate.And [ a.(i); b.(i) ] in
        let lor_ = gate nl "lo" Gate.Or [ a.(i); b.(i) ] in
        let lxor_ = xor2 style nl a.(i) b.(i) in
        (* 4-way one-hot mux on (op1, op0) *)
        let m0 = gate nl "m" Gate.And [ sum; nop0; nop1 ] in
        let m1 = gate nl "m" Gate.And [ land_; op0; nop1 ] in
        let m2 = gate nl "m" Gate.And [ lor_; nop0; op1 ] in
        let m3 = gate nl "m" Gate.And [ lxor_; op0; op1 ] in
        let out = gate nl "o" Gate.Or [ m0; m1; m2; m3 ] in
        Netlist.mark_output nl out;
        out)
  in
  Netlist.mark_output nl !carry;
  let zero =
    if width = 1 then gate nl "z" Gate.Not [ outs.(0) ]
    else gate nl "z" Gate.Nor (Array.to_list outs)
  in
  Netlist.mark_output nl zero;
  Netlist.validate nl;
  nl

(* ---------- priority logic (c432-style interrupt controller) ---------- *)

let priority_logic ~channels () =
  if channels < 2 then invalid_arg "priority_logic: channels must be >= 2";
  let nl = Netlist.create ~name:(Printf.sprintf "prio%d" channels) () in
  let req =
    Array.init channels (fun i -> Netlist.add_input nl (Printf.sprintf "r%d" i))
  in
  let ngroups = (channels + 2) / 3 in
  let en = Array.init ngroups (fun gi -> Netlist.add_input nl (Printf.sprintf "e%d" gi)) in
  (* active request = request AND its group enable *)
  let act = Array.init channels (fun i -> gate nl "a" Gate.And [ req.(i); en.(i / 3) ]) in
  (* blocking chain: higher index = higher priority (like c432's channels) *)
  let grant = Array.make channels act.(0) in
  let any_above = ref None in
  for i = channels - 1 downto 0 do
    (match !any_above with
    | None -> grant.(i) <- act.(i)
    | Some blk ->
      let nblk = not1 nl blk in
      grant.(i) <- gate nl "g" Gate.And [ act.(i); nblk ]);
    any_above :=
      Some
        (match !any_above with
        | None -> act.(i)
        | Some blk -> gate nl "ab" Gate.Or [ act.(i); blk ])
  done;
  (* encoded grant index: OR of grants whose index has bit k set *)
  let bits = int_of_float (ceil (log (float_of_int channels) /. log 2.0)) in
  for k = 0 to bits - 1 do
    let members =
      List.filter (fun i -> (i lsr k) land 1 = 1) (List.init channels Fun.id)
    in
    match members with
    | [] -> ()
    | [ i ] ->
      let b = gate nl "enc" Gate.Buf [ grant.(i) ] in
      Netlist.mark_output nl b
    | _ ->
      let e = gate nl "enc" Gate.Or (List.map (fun i -> grant.(i)) members) in
      Netlist.mark_output nl e
  done;
  (match !any_above with
  | Some valid -> Netlist.mark_output nl valid
  | None -> assert false);
  (* per-group acknowledge lines, NOR-style like the real controller *)
  for gi = 0 to ngroups - 1 do
    let members =
      List.filter (fun i -> i / 3 = gi) (List.init channels Fun.id)
    in
    match List.map (fun i -> grant.(i)) members with
    | [] -> ()
    | [ g ] ->
      let ack = not1 nl g in
      Netlist.mark_output nl ack
    | gs ->
      let ack = gate nl "ack" Gate.Nor gs in
      Netlist.mark_output nl ack
  done;
  Netlist.validate nl;
  nl

(* ---------- mux tree ---------- *)

let mux_tree ~select_bits () =
  if select_bits < 1 then invalid_arg "mux_tree: select_bits must be >= 1";
  let ways = 1 lsl select_bits in
  let nl = Netlist.create ~name:(Printf.sprintf "mux%d" ways) () in
  let data = Array.init ways (fun i -> Netlist.add_input nl (Printf.sprintf "d%d" i)) in
  let sel = Array.init select_bits (fun k -> Netlist.add_input nl (Printf.sprintf "s%d" k)) in
  let nsel = Array.map (fun s -> not1 nl s) sel in
  (* fold one select bit at a time: 2:1 muxes built from NAND pairs *)
  let level = ref (Array.to_list data) in
  for k = 0 to select_bits - 1 do
    let rec fold = function
      | a :: b :: rest ->
        let na = nand2 nl a nsel.(k) in
        let nb = nand2 nl b sel.(k) in
        nand2 nl na nb :: fold rest
      | [ x ] -> [ x ]
      | [] -> []
    in
    level := fold !level
  done;
  (match !level with
  | [ out ] -> Netlist.mark_output nl out
  | _ -> assert false);
  Netlist.validate nl;
  nl

(* ---------- comparator ---------- *)

let comparator ~width () =
  if width < 1 then invalid_arg "comparator: width must be >= 1";
  let nl = Netlist.create ~name:(Printf.sprintf "cmp%d" width) () in
  let a = Array.init width (fun i -> Netlist.add_input nl (Printf.sprintf "a%d" i)) in
  let b = Array.init width (fun i -> Netlist.add_input nl (Printf.sprintf "b%d" i)) in
  (* eq = AND of XNORs; lt by ripple borrow: borrow_{i+1} driven msb-first *)
  let eqs = Array.init width (fun i -> gate nl "eq" Gate.Xnor [ a.(i); b.(i) ]) in
  let eq =
    if width = 1 then gate nl "EQ" Gate.Buf [ eqs.(0) ]
    else gate nl "EQ" Gate.And (Array.to_list eqs)
  in
  Netlist.mark_output nl eq;
  (* lt: scan from msb: lt = OR_i (NOT a_i AND b_i AND eq_{msb..i+1}) *)
  let terms = ref [] in
  let prefix_eq = ref None in
  for i = width - 1 downto 0 do
    let na = not1 nl a.(i) in
    let base = gate nl "lt" Gate.And [ na; b.(i) ] in
    let term =
      match !prefix_eq with
      | None -> base
      | Some pe -> gate nl "lt" Gate.And [ base; pe ]
    in
    terms := term :: !terms;
    (* the prefix over bit 0 is never consumed; building it would leave a
       dead gate behind *)
    if i > 0 then
      prefix_eq :=
        Some
          (match !prefix_eq with
          | None -> eqs.(i)
          | Some pe -> gate nl "pe" Gate.And [ pe; eqs.(i) ])
  done;
  let lt =
    match !terms with
    | [ t ] -> gate nl "LT" Gate.Buf [ t ]
    | ts -> gate nl "LT" Gate.Or ts
  in
  Netlist.mark_output nl lt;
  Netlist.validate nl;
  nl

(* ---------- random logic ---------- *)

let random_dag ~gates ~inputs ~outputs ~seed () =
  if inputs < 1 || gates < 1 then invalid_arg "random_dag: need inputs and gates";
  let rng = Rng.create seed in
  let nl = Netlist.create ~name:(Printf.sprintf "rand%d_s%d" gates seed) () in
  let pis = Array.init inputs (fun i -> Netlist.add_input nl (Printf.sprintf "pi%d" i)) in
  (* every input is handed out before random picks start, so none dangles *)
  let unused = Queue.create () in
  Array.iter (fun v -> Queue.add v unused) pis;
  let kinds =
    [| Gate.Nand; Gate.Nand; Gate.Nor; Gate.And; Gate.Or; Gate.Not; Gate.Xor |]
  in
  (* locality-biased source pick: prefer recent nodes to mimic levelized
     structure; occasionally reach far back to create reconvergence *)
  let pick_src () =
    if not (Queue.is_empty unused) then Queue.pop unused
    else begin
      let n = Netlist.node_count nl in
      if Rng.int rng 4 = 0 then Rng.int rng n
      else begin
        let window = max 1 (n / 4) in
        n - 1 - Rng.int rng window
      end
    end
  in
  for _ = 1 to gates do
    let k = Rng.pick rng kinds in
    let arity =
      match k with
      | Gate.Not -> 1
      | Gate.Nand | Gate.Nor | Gate.And | Gate.Or | Gate.Xor -> 2 + Rng.int rng 2
      | Gate.Buf -> 1
      | Gate.Xnor -> 2
    in
    let fanins = List.init arity (fun _ -> pick_src ()) in
    ignore (gate nl "rg" k fanins)
  done;
  (* every sink becomes an output so no gate is dead *)
  let sinks = ref [] in
  Netlist.iter_gates nl (fun v -> if Netlist.fanout_degree nl v = 0 then sinks := v :: !sinks);
  List.iter (fun v -> Netlist.mark_output nl v) !sinks;
  (* honor the requested output count as a minimum by promoting random gates *)
  let have = List.length !sinks in
  if have < outputs then begin
    let candidates = ref [] in
    Netlist.iter_gates nl (fun v -> if not (Netlist.is_output nl v) then candidates := v :: !candidates);
    let cand = Array.of_list !candidates in
    Rng.shuffle rng cand;
    Array.iteri (fun i v -> if i < outputs - have then Netlist.mark_output nl v) cand
  end;
  Netlist.validate nl;
  nl

(* ---------- c17 ---------- *)

let c17 () =
  let nl = Netlist.create ~name:"c17" () in
  let i1 = Netlist.add_input nl "1" in
  let i2 = Netlist.add_input nl "2" in
  let i3 = Netlist.add_input nl "3" in
  let i6 = Netlist.add_input nl "6" in
  let i7 = Netlist.add_input nl "7" in
  let g10 = Netlist.add_gate nl "10" Gate.Nand [ i1; i3 ] in
  let g11 = Netlist.add_gate nl "11" Gate.Nand [ i3; i6 ] in
  let g16 = Netlist.add_gate nl "16" Gate.Nand [ i2; g11 ] in
  let g19 = Netlist.add_gate nl "19" Gate.Nand [ g11; i7 ] in
  let g22 = Netlist.add_gate nl "22" Gate.Nand [ g10; g16 ] in
  let g23 = Netlist.add_gate nl "23" Gate.Nand [ g16; g19 ] in
  Netlist.mark_output nl g22;
  Netlist.mark_output nl g23;
  ignore g19;
  Netlist.validate nl;
  nl
