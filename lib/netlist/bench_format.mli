(** Reader and writer for the ISCAS85 / ISCAS89 [.bench] netlist format.

    The format the original benchmark suite ships in:

    {v # comment
       INPUT(G1)
       OUTPUT(G22)
       G10 = NAND(G1, G3) v}

    Gates may be declared before use textually; a two-pass parse resolves
    forward references as long as the circuit is acyclic. Flip-flop ([DFF])
    declarations are rejected — this tool sizes combinational logic. *)

val parse_raw_string :
  ?name:string -> string -> (Raw.t, Minflo_robust.Diag.error) result
(** Syntactic phase only: statements with source locations, no name
    resolution. Semantically malformed circuits (cycles, duplicate or
    undefined signals) parse fine here — the linter consumes this form. *)

val parse_raw_file : string -> (Raw.t, Minflo_robust.Diag.error) result

val parse_string :
  ?name:string -> string -> (Netlist.t, Minflo_robust.Diag.error) result
(** [Error (Parse_error _)] with a 1-based line number on malformed input.
    A successful result is validated. Equivalent to {!parse_raw_string}
    followed by {!Raw.elaborate}. *)

val parse_file : string -> (Netlist.t, Minflo_robust.Diag.error) result
(** Netlist named after the file's basename. Unreadable files yield
    [Error (Io_error _)]; parse failures carry the file name. *)

val parse_string_exn : ?name:string -> string -> Netlist.t
(** @raise Minflo_robust.Diag.Error_exn instead of returning [Error]. *)

val parse_file_exn : string -> Netlist.t
(** @raise Minflo_robust.Diag.Error_exn instead of returning [Error]. *)

val to_string : Netlist.t -> string
(** Render in [.bench] syntax; [parse_string (to_string nl)] is structurally
    identical to [nl]. *)

val write_file : string -> Netlist.t -> unit
