module Rng = Minflo_util.Rng

let copy_into ~prefix src dst =
  let map = Array.make (Netlist.node_count src) (-1) in
  Netlist.iter_nodes src (fun v ->
      let nm = prefix ^ Netlist.node_name src v in
      let id =
        match Netlist.kind src v with
        | Netlist.Input -> Netlist.add_input dst nm
        | Netlist.Gate k ->
          Netlist.add_gate dst nm k (List.map (fun u -> map.(u)) (Netlist.fanins src v))
      in
      map.(v) <- id);
  List.iter (fun v -> Netlist.mark_output dst map.(v)) (Netlist.outputs src);
  map

let merge ~name parts =
  if parts = [] then invalid_arg "Compose.merge: no parts";
  let nl = Netlist.create ~name () in
  List.iteri (fun k part -> ignore (copy_into ~prefix:(Printf.sprintf "u%d_" k) part nl)) parts;
  Netlist.validate nl;
  nl

let pad_random nl ~target_gates ~seed ?(extra_inputs = 0) () =
  let deficit = target_gates - Netlist.gate_count nl in
  if deficit <= 0 then nl
  else begin
    let rng = Rng.create seed in
    let out = Netlist.create ~name:(Netlist.name nl) () in
    ignore (copy_into ~prefix:"" nl out);
    let base_count = Netlist.node_count out in
    (* the fresh inputs are handed out first, so none is left dangling *)
    let fresh = Queue.create () in
    for i = 0 to extra_inputs - 1 do
      Queue.add (Netlist.add_input out (Printf.sprintf "xin%d" i)) fresh
    done;
    (* p taps + (p-1) XOR collectors (+1 optional NOT) = deficit gates *)
    let p = max 1 ((deficit + 1) / 2) in
    let needs_extra_not = 2 * p - 1 < deficit in
    let kinds = [| Gate.Nand; Gate.Nor; Gate.And; Gate.Or; Gate.Xor; Gate.Xnor |] in
    let pick () =
      if not (Queue.is_empty fresh) then Queue.pop fresh
      else Rng.int rng (Netlist.node_count out)
    in
    let taps =
      List.init p (fun i ->
          let k = Rng.pick rng kinds in
          let x = pick () and y = pick () in
          let x, y = if x = y then (x, (y + 1) mod base_count) else (x, y) in
          Netlist.add_gate out (Printf.sprintf "pad%d" i) k [ x; y ])
    in
    (* random merge order: depth stays logarithmic w.h.p. but path lengths
       are skewed, so the padding does not create large families of
       exactly-tied critical paths (which would make greedy sizing stall) *)
    let tree nodes =
      let pool = Array.of_list nodes in
      let len = ref (Array.length pool) in
      while !len > 1 do
        let i = Rng.int rng !len in
        let j0 = Rng.int rng (!len - 1) in
        let j = if j0 >= i then j0 + 1 else j0 in
        let merged =
          Netlist.add_gate out
            (Printf.sprintf "padx%d" (Netlist.node_count out))
            Gate.Xor [ pool.(i); pool.(j) ]
        in
        (* replace i with the merge, remove j by swapping the tail in *)
        pool.(i) <- merged;
        pool.(j) <- pool.(!len - 1);
        decr len
      done;
      pool.(0)
    in
    let collector = tree taps in
    let final =
      if needs_extra_not then
        Netlist.add_gate out (Printf.sprintf "padn%d" (Netlist.node_count out)) Gate.Not [ collector ]
      else collector
    in
    Netlist.mark_output out final;
    Netlist.validate out;
    out
  end
