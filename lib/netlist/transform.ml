let fresh nl prefix = Printf.sprintf "%s%d" prefix (Netlist.node_count nl)

let nand2 nl a b = Netlist.add_gate nl (fresh nl "tn") Gate.Nand [ a; b ]
let inv nl a = Netlist.add_gate nl (fresh nl "ti") Gate.Not [ a ]

(* 2-input XOR as 4 NANDs *)
let xor_nand nl a b =
  let ab = nand2 nl a b in
  let l = nand2 nl a ab in
  let r = nand2 nl b ab in
  nand2 nl l r

let xor_chain nl = function
  | [] -> invalid_arg "Transform: empty XOR"
  | x :: rest -> List.fold_left (fun acc y -> xor_nand nl acc y) x rest

let rebuild src ~rewrite_gate =
  let dst = Netlist.create ~name:(Netlist.name src) () in
  let map = Array.make (Netlist.node_count src) (-1) in
  Netlist.iter_nodes src (fun v ->
      let nm = Netlist.node_name src v in
      let id =
        match Netlist.kind src v with
        | Netlist.Input -> Netlist.add_input dst nm
        | Netlist.Gate k ->
          let fanins = List.map (fun u -> map.(u)) (Netlist.fanins src v) in
          rewrite_gate dst nm k fanins
      in
      map.(v) <- id);
  List.iter (fun v -> Netlist.mark_output dst map.(v)) (Netlist.outputs src);
  Netlist.validate dst;
  dst

let sweep_dead src =
  (* cannot go through [rebuild]: the source may be exactly the kind of
     netlist [validate] rejects (gates reaching no output), and those gates
     must be dropped, not copied *)
  let n = Netlist.node_count src in
  let live = Array.make n false in
  let rec visit v =
    if not live.(v) then begin
      live.(v) <- true;
      List.iter visit (Netlist.fanins src v)
    end
  in
  List.iter visit (Netlist.outputs src);
  let dst = Netlist.create ~name:(Netlist.name src) () in
  let map = Array.make n (-1) in
  Netlist.iter_nodes src (fun v ->
      match Netlist.kind src v with
      | Netlist.Input ->
        (* primary inputs are interface, not logic: all kept *)
        map.(v) <- Netlist.add_input dst (Netlist.node_name src v)
      | Netlist.Gate k ->
        if live.(v) then
          map.(v) <-
            Netlist.add_gate dst (Netlist.node_name src v) k
              (List.map (fun u -> map.(u)) (Netlist.fanins src v)));
  List.iter (fun v -> Netlist.mark_output dst map.(v)) (Netlist.outputs src);
  Netlist.validate dst;
  dst

let expand_xor src =
  rebuild src ~rewrite_gate:(fun dst nm k fanins ->
      match k with
      | Gate.Xor ->
        (* the original gate's name is dropped; expanded stages carry fresh
           names and only topology matters downstream *)
        ignore nm;
        xor_chain dst fanins
      | Gate.Xnor ->
        let x = xor_chain dst fanins in
        Netlist.add_gate dst nm Gate.Not [ x ]
      | (Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Not | Gate.Buf) as k ->
        Netlist.add_gate dst nm k fanins)

let to_nand_inv src =
  let rec nand_tree dst = function
    (* NAND of a list: reduce with ANDs (as NAND+INV) then invert once *)
    | [] -> invalid_arg "Transform: empty gate"
    | [ x ] -> inv dst x
    | [ a; b ] -> nand2 dst a b
    | many ->
      (* AND-reduce pairwise, final stage NAND *)
      let rec pair = function
        | a :: b :: rest -> inv dst (nand2 dst a b) :: pair rest
        | leftover -> leftover
      in
      nand_tree dst (pair many)
  in
  rebuild src ~rewrite_gate:(fun dst nm k fanins ->
      let finish node =
        (* preserve the original output name with a final inverter pair only
           when unavoidable; here we simply return the node *)
        ignore nm;
        node
      in
      match k with
      | Gate.Nand -> (
        match fanins with
        | [ a; b ] -> Netlist.add_gate dst nm Gate.Nand [ a; b ]
        | many -> finish (nand_tree dst many))
      | Gate.And -> finish (inv dst (nand_tree dst fanins))
      | Gate.Or ->
        (* OR(x..) = NAND(NOT x ..) *)
        finish (nand_tree dst (List.map (fun x -> inv dst x) fanins))
      | Gate.Nor -> finish (inv dst (nand_tree dst (List.map (fun x -> inv dst x) fanins)))
      | Gate.Not -> Netlist.add_gate dst nm Gate.Not fanins
      | Gate.Buf -> finish (inv dst (inv dst (List.hd fanins)))
      | Gate.Xor -> finish (xor_chain dst fanins)
      | Gate.Xnor -> finish (inv dst (xor_chain dst fanins)))
