module Diag = Minflo_robust.Diag

(* internal located failure; wrapped into [Diag.Parse_error] at the API
   boundary so the file name can be attached. Carries line and column. *)
exception Located of int * int * string

let fail_at (loc : Raw.loc) fmt =
  Printf.ksprintf
    (fun message -> raise (Located (loc.line, loc.col, message)))
    fmt

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Located (line, 0, message))) fmt

(* ---------- lexer ---------- *)

type token = Ident of string | Punct of char

(* every token carries its 1-based (line, column) start *)
type ltoken = token * Raw.loc

let tokenize text : ltoken list =
  let n = String.length text in
  let tokens = ref [] in
  let line = ref 1 in
  let bol = ref 0 in
  (* index of the first byte of the current line *)
  let i = ref 0 in
  let here () = { Raw.line = !line; col = !i - !bol + 1 } in
  let newline () =
    incr line;
    bol := !i + 1
  in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '$' || c = '.'
  in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      newline ();
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      while !i < n && text.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while !i < n && not !closed do
        if text.[!i] = '\n' then newline ();
        if !i + 1 < n && text.[!i] = '*' && text.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then fail !line "unterminated block comment"
    end
    else if c = '\\' then begin
      (* escaped identifier: backslash to next whitespace *)
      let loc = here () in
      let start = !i + 1 in
      i := start;
      while !i < n && text.[!i] <> ' ' && text.[!i] <> '\t' && text.[!i] <> '\n' do
        incr i
      done;
      if !i - start > Raw.max_token_length then
        fail_at loc "token of %d bytes exceeds the %d-byte limit" (!i - start)
          Raw.max_token_length;
      tokens := (Ident (String.sub text start (!i - start)), loc) :: !tokens
    end
    else if is_ident_char c then begin
      let loc = here () in
      let start = !i in
      while !i < n && is_ident_char text.[!i] do incr i done;
      if !i - start > Raw.max_token_length then
        fail_at loc "token of %d bytes exceeds the %d-byte limit" (!i - start)
          Raw.max_token_length;
      tokens := (Ident (String.sub text start (!i - start)), loc) :: !tokens
    end
    else if c = '(' || c = ')' || c = ',' || c = ';' then begin
      tokens := (Punct c, here ()) :: !tokens;
      incr i
    end
    else fail_at (here ()) "unexpected character %C" c
  done;
  List.rev !tokens

(* ---------- parser ---------- *)

type statement =
  | Decl of [ `Input | `Output | `Wire ] * (string * Raw.loc) list
  | Inst of Gate.kind * (string * Raw.loc) list * Raw.loc

let split_statements tokens =
  (* statements are token runs terminated by ';'; the module header is the
     run from "module" to its ';' *)
  let rec go acc current = function
    | [] ->
      (* 'endmodule' carries no ';' *)
      (match List.rev current with
      | [] | [ (Ident "endmodule", _) ] -> ()
      | (Ident w, loc) :: _ -> fail_at loc "missing ';' after %S" w
      | (Punct c, loc) :: _ -> fail_at loc "missing ';' after %C" c);
      List.rev acc
    | (Punct ';', _) :: rest -> go (List.rev current :: acc) [] rest
    | tok :: rest -> go acc (tok :: current) rest
  in
  go [] [] tokens

let idents_of ~loc tokens =
  List.filter_map
    (function
      | Ident s, l -> Some (s, (l : Raw.loc))
      | Punct (',' | '(' | ')'), _ -> None
      | Punct c, (l : Raw.loc) ->
        fail_at
          (if l.line > loc.Raw.line then l else loc)
          "unexpected %C in declaration" c)
    tokens

let parse_statement st =
  match st with
  | (Ident "input", loc) :: rest -> Some (Decl (`Input, idents_of ~loc rest))
  | (Ident "output", loc) :: rest -> Some (Decl (`Output, idents_of ~loc rest))
  | (Ident "wire", loc) :: rest -> Some (Decl (`Wire, idents_of ~loc rest))
  | (Ident "endmodule", _) :: _ -> None
  | (Ident kw, loc) :: rest -> (
    match Gate.of_string kw with
    | Some kind ->
      (* optional instance name before '(' *)
      let rest =
        match rest with
        | (Ident _, _) :: ((Punct '(', _) :: _ as r) -> r
        | r -> r
      in
      let terminals = idents_of ~loc rest in
      Some (Inst (kind, terminals, loc))
    | None ->
      (match kw with
      | "assign" | "always" | "reg" | "initial" | "parameter" ->
        fail_at loc
          "behavioral construct %S is not supported (structural netlists only)"
          kw
      | _ -> fail_at loc "unknown primitive or keyword %S" kw))
  | (Punct c, loc) :: _ -> fail_at loc "unexpected %C at statement start" c
  | [] -> None

let parse_raw_internal ?file ?name text : Raw.t =
  let tokens = tokenize text in
  (* module header *)
  let module_name, body =
    match tokens with
    | (Ident "module", loc) :: (Ident mname, _) :: rest ->
      (* skip the port list through its ';' *)
      let rec skip = function
        | (Punct ';', _) :: rest -> rest
        | _ :: rest -> skip rest
        | [] -> fail_at loc "module header missing ';'"
      in
      (mname, skip rest)
    | (_, loc) :: _ -> fail_at loc "expected 'module'"
    | [] -> fail 1 "empty input"
  in
  let statements = List.filter_map parse_statement (split_statements body) in
  let pick f = List.concat_map f statements in
  { Raw.file;
    circuit = Option.value ~default:module_name name;
    inputs = pick (function Decl (`Input, names) -> names | _ -> []);
    outputs = pick (function Decl (`Output, names) -> names | _ -> []);
    gates =
      pick (function
        | Inst (kind, terminals, loc) -> (
          match terminals with
          | (out, _) :: ins when ins <> [] ->
            [ { Raw.g_name = out;
                g_kind = kind;
                g_fanins = List.map fst ins;
                g_loc = loc } ]
          | _ -> fail_at loc "gate needs an output and at least one input")
        | Decl _ -> []) }

let located ?file body =
  match body () with
  | v -> Ok v
  | exception Located (line, col, msg) ->
    Error (Diag.Parse_error { file; line; col; msg })

let read_file path =
  match open_in path with
  | exception Sys_error msg -> Error (Diag.Io_error { file = path; msg })
  | ic ->
    Ok
      (Fun.protect
         ~finally:(fun () -> close_in ic)
         (fun () -> really_input_string ic (in_channel_length ic)))

let parse_raw_string ?name text =
  located (fun () -> parse_raw_internal ?name text)

let parse_raw_file path =
  match read_file path with
  | Error _ as e -> e
  | Ok text ->
    let name = Filename.remove_extension (Filename.basename path) in
    located ~file:path (fun () -> parse_raw_internal ~file:path ~name text)

let parse_string ?name text =
  Result.join (Result.map Raw.elaborate (parse_raw_string ?name text))

let parse_file path =
  Result.join (Result.map Raw.elaborate (parse_raw_file path))

let parse_string_exn ?name text =
  match parse_string ?name text with Ok nl -> nl | Error e -> Diag.fail e

let parse_file_exn path =
  match parse_file path with Ok nl -> nl | Error e -> Diag.fail e

(* ---------- writer ---------- *)

let keywords =
  [ "module"; "endmodule"; "input"; "output"; "wire"; "assign"; "always";
    "reg"; "initial"; "parameter"; "and"; "nand"; "or"; "nor"; "not"; "buf";
    "xor"; "xnor" ]

let legal_ident s =
  s <> ""
  && (let c = s.[0] in (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '_' || c = '$')
       s
  && not (List.mem s keywords)

let sanitize s = if legal_ident s then s else "n_" ^ String.map (fun c ->
    if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    then c else '_') s

let gate_primitive = function
  | Gate.And -> "and"
  | Gate.Nand -> "nand"
  | Gate.Or -> "or"
  | Gate.Nor -> "nor"
  | Gate.Not -> "not"
  | Gate.Buf -> "buf"
  | Gate.Xor -> "xor"
  | Gate.Xnor -> "xnor"

let to_string nl =
  let buf = Buffer.create 4096 in
  let name v = sanitize (Netlist.node_name nl v) in
  (* sanitized names must stay unique; disambiguate clashes with the id *)
  let seen = Hashtbl.create 256 in
  let uniq = Hashtbl.create 256 in
  Netlist.iter_nodes nl (fun v ->
      let base = name v in
      let final =
        if Hashtbl.mem seen base then Printf.sprintf "%s_%d" base v else base
      in
      Hashtbl.add seen final ();
      Hashtbl.add uniq v final);
  let name v = Hashtbl.find uniq v in
  let inputs = List.map name (Netlist.inputs nl) in
  let outputs = List.map name (Netlist.outputs nl) in
  let ports = inputs @ outputs in
  Buffer.add_string buf
    (Printf.sprintf "// %s: %d gates\nmodule %s (%s);\n" (Netlist.name nl)
       (Netlist.gate_count nl)
       (sanitize (Netlist.name nl))
       (String.concat ", " ports));
  Buffer.add_string buf (Printf.sprintf "  input %s;\n" (String.concat ", " inputs));
  Buffer.add_string buf (Printf.sprintf "  output %s;\n" (String.concat ", " outputs));
  let wires = ref [] in
  Netlist.iter_gates nl (fun v ->
      if not (Netlist.is_output nl v) then wires := name v :: !wires);
  if !wires <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  wire %s;\n" (String.concat ", " (List.rev !wires)));
  Netlist.iter_gates nl (fun v ->
      match Netlist.kind nl v with
      | Netlist.Gate k ->
        Buffer.add_string buf
          (Printf.sprintf "  %s g%d (%s);\n" (gate_primitive k) v
             (String.concat ", " (name v :: List.map name (Netlist.fanins nl v))))
      | Netlist.Input -> ());
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file path nl =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string nl))
