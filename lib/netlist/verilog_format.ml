module Diag = Minflo_robust.Diag

(* internal located failure; wrapped into [Diag.Parse_error] at the API
   boundary so the file name can be attached *)
exception Located of int * string

let fail line fmt = Printf.ksprintf (fun message -> raise (Located (line, message))) fmt

(* ---------- lexer ---------- *)

type token = Ident of string | Punct of char

let tokenize text =
  (* returns (token, line) list with comments stripped *)
  let n = String.length text in
  let tokens = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '$' || c = '.'
  in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      while !i < n && text.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while !i < n && not !closed do
        if text.[!i] = '\n' then incr line;
        if !i + 1 < n && text.[!i] = '*' && text.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then fail !line "unterminated block comment"
    end
    else if c = '\\' then begin
      (* escaped identifier: backslash to next whitespace *)
      let start = !i + 1 in
      i := start;
      while !i < n && text.[!i] <> ' ' && text.[!i] <> '\t' && text.[!i] <> '\n' do
        incr i
      done;
      tokens := (Ident (String.sub text start (!i - start)), !line) :: !tokens
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do incr i done;
      tokens := (Ident (String.sub text start (!i - start)), !line) :: !tokens
    end
    else if c = '(' || c = ')' || c = ',' || c = ';' then begin
      tokens := (Punct c, !line) :: !tokens;
      incr i
    end
    else fail !line "unexpected character %C" c
  done;
  List.rev !tokens

(* ---------- parser ---------- *)

type statement =
  | Decl of [ `Input | `Output | `Wire ] * string list
  | Inst of Gate.kind * string list * int (* terminals, line *)

let split_statements tokens =
  (* statements are token runs terminated by ';'; the module header is the
     run from "module" to its ';' *)
  let rec go acc current = function
    | [] ->
      (* 'endmodule' carries no ';' *)
      (match List.rev current with
      | [] | [ (Ident "endmodule", _) ] -> ()
      | (Ident w, line) :: _ -> fail line "missing ';' after %S" w
      | (Punct c, line) :: _ -> fail line "missing ';' after %C" c);
      List.rev acc
    | (Punct ';', _) :: rest -> go (List.rev current :: acc) [] rest
    | tok :: rest -> go acc (tok :: current) rest
  in
  go [] [] tokens

let idents_of ~line tokens =
  List.filter_map
    (function
      | Ident s, _ -> Some s
      | Punct (',' | '(' | ')'), _ -> None
      | Punct c, l -> fail (max line l) "unexpected %C in declaration" c)
    tokens

let parse_statement st =
  match st with
  | (Ident "input", line) :: rest -> Some (Decl (`Input, idents_of ~line rest))
  | (Ident "output", line) :: rest -> Some (Decl (`Output, idents_of ~line rest))
  | (Ident "wire", line) :: rest -> Some (Decl (`Wire, idents_of ~line rest))
  | (Ident "endmodule", _) :: _ -> None
  | (Ident kw, line) :: rest -> (
    match Gate.of_string kw with
    | Some kind ->
      (* optional instance name before '(' *)
      let rest =
        match rest with
        | (Ident _, _) :: ((Punct '(', _) :: _ as r) -> r
        | r -> r
      in
      let terminals = idents_of ~line rest in
      Some (Inst (kind, terminals, line))
    | None ->
      (match kw with
      | "assign" | "always" | "reg" | "initial" | "parameter" ->
        fail line "behavioral construct %S is not supported (structural netlists only)" kw
      | _ -> fail line "unknown primitive or keyword %S" kw))
  | (Punct c, line) :: _ -> fail line "unexpected %C at statement start" c
  | [] -> None

let parse_internal ?name text =
  let tokens = tokenize text in
  (* module header *)
  let module_name, body =
    match tokens with
    | (Ident "module", line) :: (Ident mname, _) :: rest ->
      (* skip the port list through its ';' *)
      let rec skip = function
        | (Punct ';', _) :: rest -> rest
        | _ :: rest -> skip rest
        | [] -> fail line "module header missing ';'"
      in
      (mname, skip rest)
    | (_, line) :: _ -> fail line "expected 'module'"
    | [] -> fail 1 "empty input"
  in
  let statements = List.filter_map parse_statement (split_statements body) in
  let nl = Netlist.create ~name:(Option.value ~default:module_name name) () in
  (* declare inputs *)
  List.iter
    (function
      | Decl (`Input, names) ->
        List.iter (fun nm -> ignore (Netlist.add_input nl nm)) names
      | _ -> ())
    statements;
  (* add gates with forward-reference resolution, as in Bench_format *)
  let gates =
    List.filter_map
      (function
        | Inst (kind, terminals, line) -> (
          match terminals with
          | out :: ins when ins <> [] -> Some (line, out, kind, ins)
          | _ -> fail line "gate needs an output and at least one input")
        | Decl _ -> None)
      statements
  in
  let remaining = ref gates in
  let progress = ref true in
  while !remaining <> [] && !progress do
    progress := false;
    remaining :=
      List.filter
        (fun (line, out, kind, ins) ->
          let resolved = List.map (Netlist.find nl) ins in
          if List.for_all Option.is_some resolved then begin
            (try ignore (Netlist.add_gate nl out kind (List.map Option.get resolved))
             with Invalid_argument m -> fail line "%s" m);
            progress := true;
            false
          end
          else true)
        !remaining
  done;
  (match !remaining with
  | (line, out, _, ins) :: _ ->
    let missing = List.filter (fun a -> Netlist.find nl a = None) ins in
    fail line "gate %S has undefined or cyclic inputs: %s" out
      (String.concat ", " missing)
  | [] -> ());
  (* outputs *)
  List.iter
    (function
      | Decl (`Output, names) ->
        List.iter
          (fun nm ->
            match Netlist.find nl nm with
            | Some v -> Netlist.mark_output nl v
            | None -> fail 0 "output %S is never driven" nm)
          names
      | _ -> ())
    statements;
  (try Netlist.validate nl with Invalid_argument m -> fail 0 "%s" m);
  nl

let located ?file body =
  match body () with
  | nl -> Ok nl
  | exception Located (line, msg) -> Error (Diag.Parse_error { file; line; msg })

let parse_string ?name text = located (fun () -> parse_internal ?name text)

let parse_file path =
  match open_in path with
  | exception Sys_error msg -> Error (Diag.Io_error { file = path; msg })
  | ic ->
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let name = Filename.remove_extension (Filename.basename path) in
    located ~file:path (fun () -> parse_internal ~name text)

let parse_string_exn ?name text =
  match parse_string ?name text with Ok nl -> nl | Error e -> Diag.fail e

let parse_file_exn path =
  match parse_file path with Ok nl -> nl | Error e -> Diag.fail e

(* ---------- writer ---------- *)

let keywords =
  [ "module"; "endmodule"; "input"; "output"; "wire"; "assign"; "always";
    "reg"; "initial"; "parameter"; "and"; "nand"; "or"; "nor"; "not"; "buf";
    "xor"; "xnor" ]

let legal_ident s =
  s <> ""
  && (let c = s.[0] in (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '_' || c = '$')
       s
  && not (List.mem s keywords)

let sanitize s = if legal_ident s then s else "n_" ^ String.map (fun c ->
    if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    then c else '_') s

let gate_primitive = function
  | Gate.And -> "and"
  | Gate.Nand -> "nand"
  | Gate.Or -> "or"
  | Gate.Nor -> "nor"
  | Gate.Not -> "not"
  | Gate.Buf -> "buf"
  | Gate.Xor -> "xor"
  | Gate.Xnor -> "xnor"

let to_string nl =
  let buf = Buffer.create 4096 in
  let name v = sanitize (Netlist.node_name nl v) in
  (* sanitized names must stay unique; disambiguate clashes with the id *)
  let seen = Hashtbl.create 256 in
  let uniq = Hashtbl.create 256 in
  Netlist.iter_nodes nl (fun v ->
      let base = name v in
      let final =
        if Hashtbl.mem seen base then Printf.sprintf "%s_%d" base v else base
      in
      Hashtbl.add seen final ();
      Hashtbl.add uniq v final);
  let name v = Hashtbl.find uniq v in
  let inputs = List.map name (Netlist.inputs nl) in
  let outputs = List.map name (Netlist.outputs nl) in
  let ports = inputs @ outputs in
  Buffer.add_string buf
    (Printf.sprintf "// %s: %d gates\nmodule %s (%s);\n" (Netlist.name nl)
       (Netlist.gate_count nl)
       (sanitize (Netlist.name nl))
       (String.concat ", " ports));
  Buffer.add_string buf (Printf.sprintf "  input %s;\n" (String.concat ", " inputs));
  Buffer.add_string buf (Printf.sprintf "  output %s;\n" (String.concat ", " outputs));
  let wires = ref [] in
  Netlist.iter_gates nl (fun v ->
      if not (Netlist.is_output nl v) then wires := name v :: !wires);
  if !wires <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  wire %s;\n" (String.concat ", " (List.rev !wires)));
  Netlist.iter_gates nl (fun v ->
      match Netlist.kind nl v with
      | Netlist.Gate k ->
        Buffer.add_string buf
          (Printf.sprintf "  %s g%d (%s);\n" (gate_primitive k) v
             (String.concat ", " (name v :: List.map name (Netlist.fanins nl v))))
      | Netlist.Input -> ());
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file path nl =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string nl))
