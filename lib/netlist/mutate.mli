(** Structural netlist mutations for the fuzzing harness.

    Each operation takes a valid netlist and produces a structurally
    different valid netlist — functional equivalence is deliberately {e not}
    preserved; the point is to reach circuit shapes the parametric
    generators never emit (reconvergent rewires, spliced buffers on critical
    edges, degenerate fanin stacks, deep inverter chains, multiply-marked
    outputs). Everything is drawn from a caller-supplied
    {!Minflo_util.Rng.t}, so a mutation trail replays exactly from a seed.

    Mutations are implemented as edits on the {!Raw} declaration list
    followed by re-elaboration: an edit that cannot produce a valid netlist
    (arity violation, accidental cycle) is discarded, never returned. *)

type op =
  | Splice       (** interpose a fresh BUF/NOT pair on one fanin edge. *)
  | Swap_kind    (** change one gate's kind, respecting its arity. *)
  | Rewire       (** redirect one fanin to an earlier signal (reconvergence). *)
  | Deep_chain   (** grow an inverter chain off a signal into a new output. *)
  | Widen        (** add extra fanins to an n-ary gate (stack-depth stress). *)
  | Dup_output   (** mark an internal gate as an additional primary output. *)

val all_ops : op list

val op_name : op -> string

val apply : Minflo_util.Rng.t -> op -> Netlist.t -> Netlist.t option
(** One mutation. [None] when the operation does not apply to this netlist
    (e.g. {!Swap_kind} on a netlist with no gates) or the edited netlist
    failed re-elaboration; the input is never modified. *)

val mutate :
  ?ops:op list -> seed:int -> rounds:int -> Netlist.t -> Netlist.t
(** [rounds] random operations drawn from [ops] (default {!all_ops}),
    deterministically from [seed]; inapplicable draws are skipped. The
    result is always valid; with [rounds = 0] it is the input netlist. *)
