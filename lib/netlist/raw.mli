(** Raw (pre-elaboration) netlists with source locations.

    Both netlist readers ({!Bench_format}, {!Verilog_format}) first produce
    this representation: the declarations exactly as written, each with its
    source position, before any name resolution. It exists for two reasons:

    - {!elaborate} centralizes the semantic phase both parsers used to
      duplicate — input declaration, fixpoint resolution of textual forward
      references, output marking, validation — with every failure reported
      as a located [Parse_error];
    - the static analyzer ([Minflo_lint.Lint]) runs on this form, because a
      malformed circuit (combinational cycle, multi-driven net, undriven
      signal) by definition cannot be represented as a {!Netlist.t}, which
      is a DAG by construction. Lint findings point at real source lines.

    A raw netlist makes no semantic promises: names may be duplicated,
    undefined or cyclic. *)

type loc = { line : int; col : int }
(** 1-based source position; 0 means unknown (e.g. {!of_netlist}). *)

val no_loc : loc

val pp_loc : Format.formatter -> loc -> unit

type gate_decl = {
  g_name : string;    (** the driven signal *)
  g_kind : Gate.kind;
  g_fanins : string list;
  g_loc : loc;
}

type t = {
  file : string option;
  circuit : string;                (** circuit / module name *)
  inputs : (string * loc) list;    (** declaration order *)
  outputs : (string * loc) list;
  gates : gate_decl list;
}

val max_token_length : int
(** Longest name/identifier either parser accepts (1024 bytes). Longer
    tokens — fuzz inputs, corrupted files — are rejected with a located
    [Parse_error] (an MF000 finding through the linter) at the point of
    lexing, before they can reach elaboration or a report. *)

val of_netlist : Netlist.t -> t
(** View an in-memory netlist as a raw netlist (locations unknown). Lets
    the linter run on generated circuits. *)

val elaborate : t -> (Netlist.t, Minflo_robust.Diag.error) result
(** Build and validate the netlist: declare inputs, resolve gates to a
    topological construction order (textual forward references are fine as
    long as the circuit is acyclic), mark outputs, {!Netlist.validate}.
    Every failure — duplicate name, undefined or cyclic fanin, arity
    violation, missing interface — is a located [Parse_error] carrying
    [file]. *)

val signal_names : t -> string list
(** Every distinct signal mentioned anywhere (inputs, outputs, gate outputs
    and fanins), in first-mention order. *)
