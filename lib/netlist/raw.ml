module Diag = Minflo_robust.Diag

type loc = { line : int; col : int }

let no_loc = { line = 0; col = 0 }

let pp_loc fmt l =
  if l.col > 0 then Format.fprintf fmt "%d:%d" l.line l.col
  else Format.fprintf fmt "%d" l.line

type gate_decl = {
  g_name : string;
  g_kind : Gate.kind;
  g_fanins : string list;
  g_loc : loc;
}

type t = {
  file : string option;
  circuit : string;
  inputs : (string * loc) list;
  outputs : (string * loc) list;
  gates : gate_decl list;
}

let of_netlist nl =
  let inputs =
    List.map (fun v -> (Netlist.node_name nl v, no_loc)) (Netlist.inputs nl)
  in
  let outputs =
    List.map (fun v -> (Netlist.node_name nl v, no_loc)) (Netlist.outputs nl)
  in
  let gates = ref [] in
  Netlist.iter_gates nl (fun v ->
      match Netlist.kind nl v with
      | Netlist.Gate k ->
        gates :=
          { g_name = Netlist.node_name nl v;
            g_kind = k;
            g_fanins = List.map (Netlist.node_name nl) (Netlist.fanins nl v);
            g_loc = no_loc }
          :: !gates
      | Netlist.Input -> ());
  { file = None;
    circuit = Netlist.name nl;
    inputs;
    outputs;
    gates = List.rev !gates }

let signal_names t =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let touch nm =
    if not (Hashtbl.mem seen nm) then begin
      Hashtbl.add seen nm ();
      acc := nm :: !acc
    end
  in
  List.iter (fun (nm, _) -> touch nm) t.inputs;
  List.iter
    (fun g ->
      touch g.g_name;
      List.iter touch g.g_fanins)
    t.gates;
  List.iter (fun (nm, _) -> touch nm) t.outputs;
  List.rev !acc

(* ---------- elaboration ---------- *)

exception Fail of Diag.error

let elaborate t =
  let fail loc fmt =
    Printf.ksprintf
      (fun msg ->
        raise
          (Fail
             (Diag.Parse_error
                { file = t.file; line = loc.line; col = loc.col; msg })))
      fmt
  in
  try
    let nl = Netlist.create ~name:t.circuit () in
    (* pass 1: inputs, in declaration order *)
    List.iter
      (fun (nm, loc) ->
        if Netlist.find nl nm <> None then fail loc "duplicate INPUT(%s)" nm
        else ignore (Netlist.add_input nl nm))
      t.inputs;
    (* pass 2: gates, iterated to a fixpoint so textual forward references
       resolve; what remains is undefined or cyclic *)
    let remaining = ref t.gates in
    let progress = ref true in
    while !remaining <> [] && !progress do
      progress := false;
      remaining :=
        List.filter
          (fun g ->
            let resolved = List.map (Netlist.find nl) g.g_fanins in
            if List.for_all Option.is_some resolved then begin
              (try
                 ignore
                   (Netlist.add_gate nl g.g_name g.g_kind
                      (List.map Option.get resolved))
               with Invalid_argument m -> fail g.g_loc "%s" m);
              progress := true;
              false
            end
            else true)
          !remaining
    done;
    (match !remaining with
    | g :: _ ->
      let missing =
        List.filter (fun a -> Netlist.find nl a = None) g.g_fanins
        |> String.concat ", "
      in
      fail g.g_loc "gate %S has undefined or cyclic fanins: %s" g.g_name missing
    | [] -> ());
    (* pass 3: outputs *)
    List.iter
      (fun (nm, loc) ->
        match Netlist.find nl nm with
        | Some v -> Netlist.mark_output nl v
        | None -> fail loc "OUTPUT(%s) refers to an undefined signal" nm)
      t.outputs;
    (try Netlist.validate nl
     with Invalid_argument m -> fail { line = 1; col = 0 } "%s" m);
    Ok nl
  with Fail e -> Error e
