module Diag = Minflo_robust.Diag

type loc = { line : int; col : int }

let no_loc = { line = 0; col = 0 }

let pp_loc fmt l =
  if l.col > 0 then Format.fprintf fmt "%d:%d" l.line l.col
  else Format.fprintf fmt "%d" l.line

type gate_decl = {
  g_name : string;
  g_kind : Gate.kind;
  g_fanins : string list;
  g_loc : loc;
}

type t = {
  file : string option;
  circuit : string;
  inputs : (string * loc) list;
  outputs : (string * loc) list;
  gates : gate_decl list;
}

let of_netlist nl =
  let inputs =
    List.map (fun v -> (Netlist.node_name nl v, no_loc)) (Netlist.inputs nl)
  in
  let outputs =
    List.map (fun v -> (Netlist.node_name nl v, no_loc)) (Netlist.outputs nl)
  in
  let gates = ref [] in
  Netlist.iter_gates nl (fun v ->
      match Netlist.kind nl v with
      | Netlist.Gate k ->
        gates :=
          { g_name = Netlist.node_name nl v;
            g_kind = k;
            g_fanins = List.map (Netlist.node_name nl) (Netlist.fanins nl v);
            g_loc = no_loc }
          :: !gates
      | Netlist.Input -> ());
  { file = None;
    circuit = Netlist.name nl;
    inputs;
    outputs;
    gates = List.rev !gates }

let signal_names t =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let touch nm =
    if not (Hashtbl.mem seen nm) then begin
      Hashtbl.add seen nm ();
      acc := nm :: !acc
    end
  in
  List.iter (fun (nm, _) -> touch nm) t.inputs;
  List.iter
    (fun g ->
      touch g.g_name;
      List.iter touch g.g_fanins)
    t.gates;
  List.iter (fun (nm, _) -> touch nm) t.outputs;
  List.rev !acc

(* ---------- token hygiene ---------- *)

(* Both parsers enforce this before a name can reach elaboration: a
   pathological input (fuzzers, corrupted files) with a multi-megabyte
   "identifier" is reported as a located parse error (surfacing as an
   MF000 finding through the linter) instead of being carried through the
   whole pipeline. Generous: real benchmark names are tens of bytes. *)
let max_token_length = 1024

(* ---------- elaboration ---------- *)

exception Fail of Diag.error

let elaborate t =
  let fail loc fmt =
    Printf.ksprintf
      (fun msg ->
        raise
          (Fail
             (Diag.Parse_error
                { file = t.file; line = loc.line; col = loc.col; msg })))
      fmt
  in
  try
    let nl = Netlist.create ~name:t.circuit () in
    (* pass 1: inputs, in declaration order *)
    List.iter
      (fun (nm, loc) ->
        if Netlist.find nl nm <> None then fail loc "duplicate INPUT(%s)" nm
        else ignore (Netlist.add_input nl nm))
      t.inputs;
    (* pass 2: gates. Textual forward references are legal, so gates are
       resolved with a worklist: each gate counts its not-yet-defined fanin
       names and is parked on them; defining a signal releases its waiters.
       Ready gates are consumed in declaration order with wrap-around (the
       smallest ready index after the last one added, else the smallest
       overall), which reproduces the old sweep-until-fixpoint node
       numbering exactly — in particular a topologically-ordered file (the
       printer's own output) elaborates in declaration order, keeping
       print → parse → print a fixpoint. Resolution is
       O((gates + fanins) log gates) and heap-allocated: a 10k-deep chain
       declared in reverse elaborates in one pass instead of 10k quadratic
       sweeps, and nothing recurses on netlist depth. *)
    let module IS = Set.Make (Int) in
    let gates = Array.of_list t.gates in
    let n = Array.length gates in
    let added = Array.make n false in
    let unresolved = Array.make n 0 in
    let waiting : (string, int list ref) Hashtbl.t = Hashtbl.create (n + 1) in
    let ready = ref IS.empty in
    Array.iteri
      (fun i g ->
        let missing =
          List.filter (fun f -> Netlist.find nl f = None) g.g_fanins
          |> List.sort_uniq String.compare
        in
        unresolved.(i) <- List.length missing;
        if missing = [] then ready := IS.add i !ready
        else
          List.iter
            (fun f ->
              match Hashtbl.find_opt waiting f with
              | Some l -> l := i :: !l
              | None -> Hashtbl.add waiting f (ref [ i ]))
            missing)
      gates;
    let pos = ref (-1) in
    while not (IS.is_empty !ready) do
      let i =
        match IS.find_first_opt (fun x -> x > !pos) !ready with
        | Some i -> i
        | None -> IS.min_elt !ready (* new sweep *)
      in
      ready := IS.remove i !ready;
      pos := i;
      let g = gates.(i) in
      let resolved =
        List.map (fun f -> Option.get (Netlist.find nl f)) g.g_fanins
      in
      (try ignore (Netlist.add_gate nl g.g_name g.g_kind resolved)
       with Invalid_argument m -> fail g.g_loc "%s" m);
      added.(i) <- true;
      match Hashtbl.find_opt waiting g.g_name with
      | Some l ->
        List.iter
          (fun j ->
            unresolved.(j) <- unresolved.(j) - 1;
            if unresolved.(j) = 0 then ready := IS.add j !ready)
          !l;
        Hashtbl.remove waiting g.g_name
      | None -> ()
    done;
    (* whatever was never released is undefined or cyclic; report the first
       such gate in declaration order, like the old fixpoint did *)
    Array.iteri
      (fun i g ->
        if not added.(i) then begin
          let missing =
            List.filter (fun a -> Netlist.find nl a = None) g.g_fanins
            |> String.concat ", "
          in
          fail g.g_loc "gate %S has undefined or cyclic fanins: %s" g.g_name
            missing
        end)
      gates;
    (* pass 3: outputs *)
    List.iter
      (fun (nm, loc) ->
        match Netlist.find nl nm with
        | Some v -> Netlist.mark_output nl v
        | None -> fail loc "OUTPUT(%s) refers to an undefined signal" nm)
      t.outputs;
    (try Netlist.validate nl
     with Invalid_argument m -> fail { line = 1; col = 0 } "%s" m);
    Ok nl
  with Fail e -> Error e
