(** Strongly connected components (Tarjan's algorithm).

    The netlist linter uses this to not merely detect a combinational cycle
    but to report its member gates: every SCC with more than one node — or
    with a self-loop — is a cycle in the signal graph. Iterative
    implementation, so deep circuits cannot blow the OCaml stack. *)

val components : Digraph.t -> int array * int
(** [components g] is [(comp, count)]: [comp.(v)] is the id of [v]'s
    strongly connected component, with ids in reverse topological order of
    the condensation (a component's successors have strictly smaller ids).
    [count] is the number of components. *)

val groups : Digraph.t -> Digraph.node list list
(** The components as node lists (each in discovery order), topologically
    ordered by the condensation. Singleton components are included. *)

val cyclic_groups : Digraph.t -> Digraph.node list list
(** Only the components that contain a cycle: size > 1, or a single node
    with a self-loop. *)
