(* Tarjan's SCC algorithm, iterative (explicit work stack): index/lowlink
   discovery with a component stack. Component ids are assigned in the order
   components are completed, which for Tarjan is reverse topological order
   of the condensation. *)

let components g =
  let n = Digraph.node_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* work items: (node, remaining successor list). *)
  let work = ref [] in
  let push_node v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    work := (v, ref (Digraph.succ g v)) :: !work
  in
  let rec drain () =
    match !work with
    | [] -> ()
    | (v, succs) :: rest -> (
      match !succs with
      | w :: more ->
        succs := more;
        if index.(w) = -1 then push_node w
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w);
        drain ()
      | [] ->
        if lowlink.(v) = index.(v) then begin
          (* pop the component *)
          let rec pop () =
            match !stack with
            | [] -> ()
            | w :: tl ->
              stack := tl;
              on_stack.(w) <- false;
              comp.(w) <- !next_comp;
              if w <> v then pop ()
          in
          pop ();
          incr next_comp
        end;
        work := rest;
        (match rest with
        | (u, _) :: _ -> lowlink.(u) <- min lowlink.(u) lowlink.(v)
        | [] -> ());
        drain ())
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then begin
      push_node v;
      drain ()
    end
  done;
  (comp, !next_comp)

let groups g =
  let comp, count = components g in
  let buckets = Array.make count [] in
  (* iterate in reverse id order so each bucket ends up in discovery order *)
  for v = Digraph.node_count g - 1 downto 0 do
    buckets.(comp.(v)) <- v :: buckets.(comp.(v))
  done;
  (* component ids are reverse topological; emit topological order *)
  List.init count (fun i -> buckets.(count - 1 - i))

let cyclic_groups g =
  let has_self_loop v = List.mem v (Digraph.succ g v) in
  List.filter
    (function
      | [] -> false
      | [ v ] -> has_self_loop v
      | _ :: _ :: _ -> true)
    (groups g)
