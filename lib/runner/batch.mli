(** The crash-safe batch runner: checkpointed, supervised, differential.

    [run] executes a grid of sizing {!Job.t}s through the {!Supervisor}
    (per-job process isolation, hard timeouts, retry with backoff,
    quarantine), journaling every lifecycle event to
    [<checkpoint-dir>/journal.jsonl] as it happens. With a checkpoint
    directory configured, each job writes a {!Checkpoint} after every D/W
    pass; with [resume] set, a re-run of the same grid

    - skips jobs the journal already records as complete ([job-ok]), and
    - restarts interrupted jobs from their last checkpoint — validated
      against the circuit hash, target and solver — with their budget
      meters restored, producing the same final sizing, bit for bit, as
      an uninterrupted run.

    A job that trips its run budget keeps its checkpoint and fails with
    the typed [Budget_exhausted]: re-running with [resume] and a larger
    budget continues it instead of starting over.

    With [differential] set, every job whose primary leg succeeds is
    re-run under an independent solver ({!Differential.counterpart});
    area disagreement beyond [diff_tolerance] is reported as a typed
    [Differential_mismatch] and journaled. *)

type config = {
  checkpoint_dir : string option;
      (** holds per-job [.ckpt] files and [journal.jsonl]; [None] disables
          checkpointing, journaling and resume. *)
  resume : bool;
  supervise : Supervisor.config;
  differential : bool;
  diff_tolerance : float;
  engine : Minflo_sizing.Minflotransit.options;
      (** base engine options; [solver] is overridden per job. *)
  fault_seed : int option;  (** recorded in checkpoints for bookkeeping. *)
  make_fault : Job.t -> Minflo_robust.Fault.t option;
      (** builds the fault plan for one attempt of one job, called inside
          the child so each attempt gets fresh fire counts (and may target
          specific jobs). Default: no plan. *)
  preflight : bool;
      (** lint every distinct circuit before forking anything (default
          [true]). A parse error or any Error-severity finding is
          structural — it would fail identically on every attempt — so the
          job is quarantined immediately: zero attempts, no retries, no
          backoff, journaled as [job-lint-quarantined]. *)
}

val default_config : config

type job_report = {
  job : Job.t;
  outcome : (Job.outcome, Minflo_robust.Diag.error) result option;
      (** [None]: skipped — the journal already records this job complete. *)
  attempts : int;
  quarantined : bool;
  differential : (unit, Minflo_robust.Diag.error) result option;
      (** [None] unless differential mode ran a secondary leg for this job. *)
}

type summary = {
  reports : job_report list;  (** in the submitted job order. *)
  ok : int;
  failed : int;
  skipped : int;
  mismatches : int;  (** differential verdicts that are [Error _]. *)
}

val run_job :
  ?emit:Supervisor.emit ->
  ?exhausted_ok:bool ->
  config ->
  Job.t ->
  (Job.outcome, Minflo_robust.Diag.error) result
(** One job, in the calling process: load the circuit, seed with TILOS,
    refine with checkpointing after every pass (resuming from a validated
    checkpoint when configured). [emit] (from the supervisor) receives a
    [job-checkpoint] event per D/W pass and one final [job-perf] event
    carrying the {!Minflo_robust.Perf} counters the job spent.
    [exhausted_ok] (default [false]) turns a budget trip on a
    target-meeting sizing into a success carrying the best feasible
    solution (its [stop] field records the trip; the checkpoint is kept so
    a resubmission with a larger budget resumes) — the serve daemon's
    per-request budget semantics. Exposed for tests; {!run} is the
    supervised entry point. *)

val run :
  ?config:config -> Job.t list -> (summary, Minflo_robust.Diag.error) result
(** [Error _] only for batch-level failures (unusable checkpoint directory
    or journal); per-job failures are reported inside the summary. *)
