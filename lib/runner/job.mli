(** Batch job descriptions.

    A job is one cell of the paper's evaluation grid: a circuit, a delay
    target expressed as a fraction of the minimum-size delay, and the
    D-phase solver to run it with. Jobs have stable string ids (used as
    checkpoint file names and journal keys) and a deterministic ordering,
    so a resumed batch enumerates exactly the same work as the original. *)

type solver = [ `Auto | `Simplex | `Ssp | `Bellman_ford ]

type t = {
  circuit : string;  (** suite name or path to a [.bench] / [.v] file. *)
  factor : float;    (** delay target as a fraction of Dmin. *)
  solver : solver;
}

val id : t -> string
(** Stable id, e.g. ["c432@0.500/simplex"]. Unique within a batch grid. *)

val file_slug : t -> string
(** {!id} with every character outside [[A-Za-z0-9._-]] replaced by ['-']:
    safe as a file name inside the checkpoint directory. *)

val solver_name : solver -> string

val solver_of_string : string -> solver option
(** Accepts the CLI spellings ["auto"], ["simplex"], ["ssp"], ["bf"] /
    ["bellman-ford"]. *)

val cross :
  circuits:string list -> factors:float list -> solvers:solver list -> t list
(** The full evaluation grid, circuits-major, in deterministic order. *)

val load_circuit : string -> (Minflo_netlist.Netlist.t, Minflo_robust.Diag.error) result
(** Resolve a circuit spec exactly like the CLI: an existing [.v] or
    [.bench] file path, the embedded [c17], or an {!Minflo_netlist.Iscas85}
    suite name. *)

val load_raw : string -> (Minflo_netlist.Raw.t, Minflo_robust.Diag.error) result
(** Same spec resolution, but stop before elaboration: files are parsed to
    their raw form (with source locations, no name resolution), built-in
    circuits go through {!Minflo_netlist.Raw.of_netlist}. This is what the
    batch pre-flight lint gate runs on. *)

(** Plain-data result of a completed sizing job — free of closures and
    abstract types so it can cross the child-process boundary via
    [Marshal]. *)
type outcome = {
  job : t;
  area : float;          (** final area (absolute units). *)
  area_ratio : float;    (** final area over the minimum-size area. *)
  cp : float;            (** final critical path. *)
  target : float;        (** absolute delay target ([factor *. dmin]). *)
  met : bool;
  iterations : int;
  saving_pct : float;    (** area saving over the TILOS seed. *)
  stop : string;         (** rendered {!Minflo_sizing.Minflotransit.stop_reason}. *)
  resumed : bool;        (** this outcome continued from a checkpoint. *)
  perf : Minflo_robust.Perf.counters;
      (** solver work this job spent (process-global counters diffed across
          the run) — lets a supervising parent accumulate worker effort. *)
}
