module Diag = Minflo_robust.Diag
module Fallback = Minflo_robust.Fallback
module Io = Minflo_robust.Io
module Mono = Minflo_robust.Mono

type config = {
  parallel : int;
  timeout_seconds : float option;
  retries : int;
  backoff_base : float;
  isolate : bool;
  watchdog_seconds : float option;
}

let default_config =
  { parallel = 1;
    timeout_seconds = None;
    retries = 2;
    backoff_base = 0.5;
    isolate = true;
    watchdog_seconds = None }

type 'a outcome = {
  verdict : ('a, Diag.error) result;
  attempts : int;
  quarantined : bool;
}

(* transient = worth retrying on a clean process: environmental failures
   (timeout, crash) and the solver failures a re-run could dodge. *)
let transient = function
  | Diag.Job_timeout _ | Diag.Job_crashed _ -> true
  | e -> Fallback.retryable e

(* an identical typed solver error on consecutive attempts is deterministic
   in practice — quarantine instead of burning the remaining retries.
   Timeouts and crashes are environmental and keep their full budget. *)
let repeats_deterministically prev e =
  match (prev, e) with
  | Some p, e -> (
    match e with
    | Diag.Job_timeout _ | Diag.Job_crashed _ -> false
    | _ -> Diag.error_code p = Diag.error_code e)
  | None, _ -> false

(* ---------- one attempt in a forked child ---------- *)

let write_result file (r : ('a, Diag.error) result) =
  let oc = open_out_bin file in
  Marshal.to_channel oc r [];
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  close_out oc

let read_result file : ('a, Diag.error) result option =
  match open_in_bin file with
  | exception Sys_error _ -> None
  | ic ->
    let r = try Some (Marshal.from_channel ic) with _ -> None in
    close_in_noerr ic;
    r

type emit = ?fields:(string * string) list -> string -> unit

type running = {
  id : string;
  pid : int;
  result_file : string;
  deadline : float option;
  mutable killed : bool;
  mutable cancelled : bool;
  mutable watchdogged : bool;
  (* liveness: bumped whenever the worker's pipe yields bytes — heartbeats
     count exactly like real events, so the watchdog only fires on true
     silence (a wedged runtime, a SIGSTOP, a livelock with signals lost) *)
  mutable last_activity : float;
  (* worker -> parent journal-event pipe: the child writes one
     US-separated record per event, the parent is the only process that
     ever touches journal.jsonl (single-writer crash safety) *)
  pipe_r : Unix.file_descr;
  pipe_buf : Buffer.t;
}

(* Pipe protocol: one newline-terminated record per event,
   name \x1f key1 \x1f value1 \x1f key2 \x1f value2 ...
   Values are pre-rendered JSON (Journal.field_str etc.), whose escaping already
   keeps control characters — newline and \x1f included — out of the raw
   bytes; a record that would still contain either is dropped rather than
   corrupting the framing. *)
let render_emit_record name fields =
  let parts = name :: List.concat_map (fun (k, v) -> [ k; v ]) fields in
  if
    List.for_all
      (fun s -> not (String.exists (fun c -> c = '\n' || c = '\x1f') s))
      parts
  then Some (String.concat "\x1f" parts ^ "\n")
  else None

let parse_emit_record line =
  match String.split_on_char '\x1f' line with
  | [] | [ "" ] -> None
  | name :: rest ->
    let rec pairs = function
      | k :: v :: tl -> (k, v) :: pairs tl
      | _ -> []
    in
    Some (name, pairs rest)

(* liveness-only pipe record; the parent bumps [last_activity] and drops
   it instead of journaling *)
let heartbeat_record = "job-heartbeat\n"

let spawn ~timeout ~watchdog id thunk =
  let result_file = Filename.temp_file "minflo-job-" ".result" in
  let pr, pw = Unix.pipe () in
  (* avoid duplicated buffered output in the child *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (* the parent may have drain/seal handlers on SIGTERM/SIGINT that touch
       the journal; a worker inheriting them would become a second journal
       writer the moment someone signals the process group. Reset to the
       default disposition before any user code runs. *)
    (try Sys.set_signal Sys.sigterm Sys.Signal_default
     with Invalid_argument _ | Sys_error _ -> ());
    (try Sys.set_signal Sys.sigint Sys.Signal_default
     with Invalid_argument _ | Sys_error _ -> ());
    Unix.close pr;
    (* heartbeat: a SIGALRM interval timer writes one liveness record per
       tick, independent of job structure — a worker deep in a long solver
       phase (or asleep in artificial latency) still proves it is alive.
       [Unix.sleepf] resumes after EINTR, so the timer never shortens a
       sleep; pipe writes below PIPE_BUF are atomic, so heartbeat records
       never interleave with event records. *)
    (match watchdog with
    | Some w ->
      let interval = Float.max 0.02 (w /. 4.0) in
      (try
         Sys.set_signal Sys.sigalrm
           (Sys.Signal_handle
              (fun _ ->
                try
                  ignore
                    (Io.write_substring_retry pw heartbeat_record 0
                       (String.length heartbeat_record))
                with Unix.Unix_error _ -> ()));
         ignore
           (Unix.setitimer Unix.ITIMER_REAL
              { Unix.it_interval = interval; it_value = interval })
       with Invalid_argument _ | Sys_error _ | Unix.Unix_error _ -> ())
    | None -> ());
    let emit ?(fields = []) name =
      match render_emit_record name fields with
      | None -> ()
      | Some line -> (
        (* EINTR-retrying: the SIGALRM heartbeat must not tear an event
           record mid-write *)
        try Io.really_write_substring pw line
        with Unix.Unix_error _ -> ())
    in
    let r =
      try thunk emit with
      | Diag.Error_exn e -> Error e
      | exn -> Error (Diag.Internal (Printexc.to_string exn))
    in
    (try write_result result_file r with _ -> ());
    (* _exit: never run the parent's at_exit handlers in the child *)
    Unix._exit 0
  | pid ->
    (* the parent closes the write end immediately, so once this child
       exits the pipe reaches EOF — no other process can hold it open
       (children only ever inherit read ends of earlier pipes) *)
    Unix.close pw;
    Unix.set_nonblock pr;
    { id;
      pid;
      result_file;
      deadline = Option.map (fun s -> Mono.now () +. s) timeout;
      killed = false;
      cancelled = false;
      watchdogged = false;
      last_activity = Mono.now ();
      pipe_r = pr;
      pipe_buf = Buffer.create 256 }

let reap_verdict cfg (r : running) status : ('a, Diag.error) result =
  let cleanup v =
    (try Sys.remove r.result_file with Sys_error _ -> ());
    v
  in
  if r.cancelled then
    cleanup (Error (Diag.Job_crashed { job = r.id; detail = "cancelled" }))
  else if r.watchdogged then
    (* transient by construction: a clean re-run gets a fresh heartbeat *)
    cleanup
      (Error
         (Diag.Job_crashed
            { job = r.id;
              detail =
                Printf.sprintf "watchdog: no heartbeat for %g seconds"
                  (Option.value cfg.watchdog_seconds ~default:0.0) }))
  else if r.killed then
    cleanup
      (Error
         (Diag.Job_timeout
            { job = r.id;
              seconds = Option.value cfg.timeout_seconds ~default:0.0 }))
  else
    match status with
    | Unix.WEXITED 0 -> (
      match read_result r.result_file with
      | Some v -> cleanup v
      | None ->
        cleanup
          (Error
             (Diag.Job_crashed
                { job = r.id; detail = "result file missing or unreadable" })))
    | Unix.WEXITED code ->
      cleanup
        (Error
           (Diag.Job_crashed
              { job = r.id; detail = Printf.sprintf "exit code %d" code }))
    | Unix.WSIGNALED sg | Unix.WSTOPPED sg ->
      cleanup
        (Error
           (Diag.Job_crashed
              { job = r.id; detail = Printf.sprintf "killed by signal %d" sg }))

(* ---------- the incremental pool ---------- *)

type 'a task = {
  t_id : string;
  thunk : emit -> ('a, Diag.error) result;
  mutable attempts : int;
  mutable ready_at : float;  (* backoff gate; monotonic seconds *)
  mutable last_error : Diag.error option;
}

type 'a pool = {
  cfg : config;
  journal : Journal.t option;
  on_done : (string -> 'a outcome -> unit) option;
  pending : 'a task Queue.t;
  mutable delayed : 'a task list;
  mutable running : (running * 'a task) list;
  mutable finished : (string * 'a outcome) list;  (* reversed; drained by step *)
}

let journal_event journal ?job ?error ?fields name =
  match journal with
  | Some j -> Journal.event j ?job ?error ?fields name
  | None -> ()

(* journal the complete records accumulated in [r]'s pipe buffer, keeping
   any trailing partial record for the next drain *)
let flush_pipe_lines journal r =
  let s = Buffer.contents r.pipe_buf in
  match String.rindex_opt s '\n' with
  | None -> ()
  | Some last ->
    Buffer.clear r.pipe_buf;
    Buffer.add_substring r.pipe_buf s (last + 1) (String.length s - last - 1);
    List.iter
      (fun line ->
        if line <> "" then
          match parse_emit_record line with
          | Some ("job-heartbeat", _) -> () (* liveness only, never journaled *)
          | Some (name, fields) -> journal_event journal ~job:r.id ~fields name
          | None -> ())
      (String.split_on_char '\n' (String.sub s 0 last))

(* read whatever the worker has written so far (non-blocking); called on
   every poll so a chatty worker can never fill the pipe and stall *)
let drain_pipe journal r =
  let bytes = Bytes.create 4096 in
  let rec go () =
    match Io.read_retry r.pipe_r bytes 0 4096 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes r.pipe_buf bytes 0 n;
      r.last_activity <- Mono.now ();
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ();
  flush_pipe_lines journal r

(* final drain once the child has exited: the write end is closed, so the
   read loop runs to EOF — every event the worker emitted lands in the
   journal BEFORE the verdict event, making within-job order deterministic
   regardless of the parallelism level *)
let close_pipe journal r =
  drain_pipe journal r;
  (try Unix.close r.pipe_r with Unix.Unix_error _ -> ())

let pool_create ?(config = default_config) ?journal ?on_done () =
  { cfg = { config with parallel = max 1 config.parallel };
    journal;
    on_done;
    pending = Queue.create ();
    delayed = [];
    running = [];
    finished = [] }

let pool_submit p ~id thunk =
  Queue.add
    { t_id = id; thunk; attempts = 0; ready_at = 0.0; last_error = None }
    p.pending

let finish p task (verdict : ('a, Diag.error) result) ~quarantined =
  let outcome = { verdict; attempts = task.attempts; quarantined } in
  p.finished <- (task.t_id, outcome) :: p.finished;
  match p.on_done with Some f -> f task.t_id outcome | None -> ()

(* route one attempt's failure: retry, quarantine, or final failure. A
   cancelled worker's verdict bypasses the retry logic entirely. *)
let handle_failure p task e =
  let deterministic =
    (not (transient e)) || repeats_deterministically task.last_error e
  in
  if deterministic then begin
    journal_event p.journal ~job:task.t_id ~error:e
      ~fields:[ Journal.field_int "attempts" task.attempts ]
      "job-quarantined";
    finish p task (Error e) ~quarantined:true
  end
  else if task.attempts > p.cfg.retries then begin
    journal_event p.journal ~job:task.t_id ~error:e
      ~fields:[ Journal.field_int "attempts" task.attempts ]
      "job-failed";
    finish p task (Error e) ~quarantined:false
  end
  else begin
    let delay =
      p.cfg.backoff_base *. (2.0 ** float_of_int (task.attempts - 1))
    in
    journal_event p.journal ~job:task.t_id ~error:e
      ~fields:
        [ Journal.field_int "attempt" task.attempts;
          Journal.field_float "backoff_seconds" delay ]
      "job-retry";
    task.last_error <- Some e;
    task.ready_at <- Mono.now () +. delay;
    p.delayed <- task :: p.delayed
  end

let handle_result p task ~cancelled (verdict : ('a, Diag.error) result) =
  match verdict with
  | Ok _ -> finish p task verdict ~quarantined:false
  | Error _ when cancelled -> finish p task verdict ~quarantined:false
  | Error e -> handle_failure p task e

let spawn_task p task =
  task.attempts <- task.attempts + 1;
  let r =
    spawn ~timeout:p.cfg.timeout_seconds ~watchdog:p.cfg.watchdog_seconds
      task.t_id task.thunk
  in
  (* pid in the journal lets an operator (or a chaos test) target the live
     worker; [Journal.canonical] strips it as volatile *)
  journal_event p.journal ~job:task.t_id
    ~fields:
      [ Journal.field_int "attempt" task.attempts;
        Journal.field_int "pid" r.pid ]
    "job-spawn";
  p.running <- (r, task) :: p.running

let next_ready p =
  let now = Mono.now () in
  match Queue.take_opt p.pending with
  | Some t -> Some t
  | None -> (
    match List.partition (fun t -> t.ready_at <= now) p.delayed with
    | ready :: rest_ready, rest ->
      p.delayed <- rest_ready @ rest;
      Some ready
    | [], _ -> None)

let poll_running p =
  let still = ref [] in
  List.iter
    (fun ((r, task) as entry) ->
      (* hard timeout: SIGKILL, reap on a later poll *)
      (match r.deadline with
      | Some d when (not r.killed) && (not r.cancelled) && Mono.now () > d ->
        journal_event p.journal ~job:r.id
          ~fields:
            [ Journal.field_float "timeout_seconds"
                (Option.value p.cfg.timeout_seconds ~default:0.0) ]
          "job-timeout";
        (try Unix.kill r.pid Sys.sigkill with Unix.Unix_error _ -> ());
        r.killed <- true
      | _ -> ());
      (* watchdog: a worker silent past its deadline — no events, no
         heartbeats — is wedged (SIGSTOP, livelock, lost in a non-OCaml
         call). Kill it; the verdict routes through the transient retry
         path, so the job is requeued on a clean process. *)
      (match p.cfg.watchdog_seconds with
      | Some w
        when (not r.killed)
             && (not r.cancelled)
             && (not r.watchdogged)
             && Mono.now () -. r.last_activity > w ->
        journal_event p.journal ~job:r.id
          ~fields:
            [ Journal.field_float "silent_seconds"
                (Mono.now () -. r.last_activity) ]
          "job-watchdog-kill";
        (try Unix.kill r.pid Sys.sigkill with Unix.Unix_error _ -> ());
        r.watchdogged <- true
      | _ -> ());
      match Unix.waitpid [ Unix.WNOHANG ] r.pid with
      | 0, _ ->
        drain_pipe p.journal r;
        still := entry :: !still
      | _, status ->
        close_pipe p.journal r;
        handle_result p task ~cancelled:r.cancelled
          (reap_verdict p.cfg r status)
      | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
        close_pipe p.journal r;
        handle_result p task ~cancelled:r.cancelled
          (Error (Diag.Job_crashed { job = r.id; detail = "lost child" })))
    p.running;
  p.running <- !still

let pool_step p =
  let rec fill () =
    if List.length p.running < p.cfg.parallel then
      match next_ready p with
      | Some t ->
        spawn_task p t;
        fill ()
      | None -> ()
  in
  fill ();
  if p.running <> [] then poll_running p;
  let done_now = List.rev p.finished in
  p.finished <- [];
  done_now

let pool_cancel p id =
  (* pending: drop it from the queue *)
  let found = ref false in
  let keep = Queue.create () in
  Queue.iter
    (fun t ->
      if t.t_id = id && not !found then found := true else Queue.add t keep)
    p.pending;
  if !found then begin
    Queue.clear p.pending;
    Queue.transfer keep p.pending;
    `Cancelled_pending
  end
  else if
    (* delayed (awaiting a retry slot): drop it *)
    List.exists (fun t -> t.t_id = id) p.delayed
  then begin
    p.delayed <- List.filter (fun t -> t.t_id <> id) p.delayed;
    `Cancelled_pending
  end
  else
    match List.find_opt (fun (r, _) -> r.id = id) p.running with
    | Some (r, _) ->
      r.cancelled <- true;
      (try Unix.kill r.pid Sys.sigkill with Unix.Unix_error _ -> ());
      `Killed_running
    | None -> `Not_found

let pool_running_count p = List.length p.running

let pool_queued_count p = Queue.length p.pending + List.length p.delayed

let pool_load p = pool_running_count p + pool_queued_count p

let pool_idle p = pool_load p = 0

(* ---------- batch scheduling on top of the pool ---------- *)

let run_all_tasks ?(config = default_config) ?journal ?on_done tasks =
  let cfg = { config with parallel = max 1 config.parallel } in
  let order = List.map fst tasks in
  let results : (string, 'a outcome) Hashtbl.t =
    Hashtbl.create (List.length tasks)
  in
  let record id outcome =
    Hashtbl.replace results id outcome;
    match on_done with Some f -> f id outcome | None -> ()
  in
  if not cfg.isolate then begin
    (* in-process: sequential, with the same retry/quarantine routing as
       the pool, minus forking. Reuses the pool's failure router on a
       fork-free pool so the journal events and quarantine decisions are
       byte-identical to the isolated mode's. *)
    let p = pool_create ~config:cfg ?journal ?on_done:None () in
    List.iter
      (fun (t_id, thunk) ->
        Queue.add
          { t_id; thunk; attempts = 0; ready_at = 0.0; last_error = None }
          p.pending)
      tasks;
    let run_in_process task =
      task.attempts <- task.attempts + 1;
      journal_event journal ~job:task.t_id
        ~fields:[ Journal.field_int "attempt" task.attempts ]
        "job-spawn";
      (* no pipe needed: the worker IS the journal owner's process *)
      let emit ?fields name =
        journal_event journal ~job:task.t_id ?fields name
      in
      let v =
        try task.thunk emit with
        | Diag.Error_exn e -> Error e
        | exn -> Error (Diag.Internal (Printexc.to_string exn))
      in
      handle_result p task ~cancelled:false v
    in
    let rec drain () =
      match next_ready p with
      | Some t ->
        run_in_process t;
        List.iter (fun (id, o) -> record id o) (List.rev p.finished);
        p.finished <- [];
        drain ()
      | None ->
        if p.delayed <> [] then begin
          Unix.sleepf 0.01;
          drain ()
        end
    in
    drain ()
  end
  else begin
    let p = pool_create ~config:cfg ?journal ?on_done:(Some record) () in
    List.iter (fun (id, thunk) -> pool_submit p ~id thunk) tasks;
    let rec loop () =
      ignore (pool_step p);
      if not (pool_idle p) then begin
        if p.running <> [] || p.delayed <> [] then Unix.sleepf 0.01;
        loop ()
      end
    in
    loop ()
  end;
  List.map
    (fun id ->
      match Hashtbl.find_opt results id with
      | Some o -> (id, o)
      | None ->
        ( id,
          { verdict =
              Error (Diag.Internal ("supervisor lost track of job " ^ id));
            attempts = 0;
            quarantined = false } ))
    order

let run_all ?config ?journal ?on_done tasks =
  run_all_tasks ?config ?journal ?on_done
    (List.map (fun (id, thunk) -> (id, fun (_ : emit) -> thunk ())) tasks)
