module Diag = Minflo_robust.Diag
module Netlist = Minflo_netlist.Netlist
module Bench_format = Minflo_netlist.Bench_format
module Verilog_format = Minflo_netlist.Verilog_format
module Generators = Minflo_netlist.Generators
module Iscas85 = Minflo_netlist.Iscas85

type solver = [ `Auto | `Simplex | `Ssp | `Bellman_ford ]

type t = { circuit : string; factor : float; solver : solver }

let solver_name = function
  | `Auto -> "auto"
  | `Simplex -> "simplex"
  | `Ssp -> "ssp"
  | `Bellman_ford -> "bellman-ford"

let solver_of_string = function
  | "auto" -> Some `Auto
  | "simplex" -> Some `Simplex
  | "ssp" -> Some `Ssp
  | "bf" | "bellman-ford" -> Some `Bellman_ford
  | _ -> None

let id j = Printf.sprintf "%s@%.3f/%s" j.circuit j.factor (solver_name j.solver)

let file_slug j =
  String.map
    (fun c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '-')
    (id j)

let cross ~circuits ~factors ~solvers =
  List.concat_map
    (fun circuit ->
      List.concat_map
        (fun factor ->
          List.map (fun solver -> { circuit; factor; solver }) solvers)
        factors)
    circuits

let load_raw spec : (Minflo_netlist.Raw.t, Diag.error) result =
  if Sys.file_exists spec then
    if Filename.check_suffix spec ".v" then Verilog_format.parse_raw_file spec
    else Bench_format.parse_raw_file spec
  else if spec = "c17" then Ok (Minflo_netlist.Raw.of_netlist (Generators.c17 ()))
  else
    match Iscas85.find_info spec with
    | Some _ -> Ok (Minflo_netlist.Raw.of_netlist (Iscas85.circuit spec))
    | None ->
      Error
        (Diag.Unknown_circuit
           { name = spec;
             known =
               "c17"
               :: List.map (fun (i : Iscas85.info) -> i.name) Iscas85.suite })

let load_circuit spec : (Netlist.t, Diag.error) result =
  if Sys.file_exists spec then
    if Filename.check_suffix spec ".v" then Verilog_format.parse_file spec
    else Bench_format.parse_file spec
  else if spec = "c17" then Ok (Generators.c17 ())
  else
    match Iscas85.find_info spec with
    | Some _ -> Ok (Iscas85.circuit spec)
    | None ->
      Error
        (Diag.Unknown_circuit
           { name = spec;
             known =
               "c17"
               :: List.map (fun (i : Iscas85.info) -> i.name) Iscas85.suite })

type outcome = {
  job : t;
  area : float;
  area_ratio : float;
  cp : float;
  target : float;
  met : bool;
  iterations : int;
  saving_pct : float;
  stop : string;
  resumed : bool;
  perf : Minflo_robust.Perf.counters;
}
