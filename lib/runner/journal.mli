(** Crash-safe append-only JSONL journal of batch events.

    Every job event the supervisor observes — start, attempt, retry,
    success, quarantine, timeout, differential verdict — is one JSON
    object per line, appended, flushed and fsynced before the runner
    proceeds, so the journal is a faithful prefix of the run even after a
    SIGKILL. Typed errors are embedded verbatim with
    {!Minflo_robust.Diag.to_json}, so scripts can key on the same stable
    [code] fields the CLI exit codes are derived from.

    The journal doubles as the batch's completion record: on [--resume],
    {!completed} scans an existing journal and returns the jobs that
    already finished, which the runner then skips. A line truncated by a
    crash mid-write is ignored by the scanner. *)

type t

val open_append : string -> (t, Minflo_robust.Diag.error) result
(** Open (creating if needed) for appending. Takes the single-writer lock,
    seals a torn final line, then garbage-collects stale [*.tmp] files
    anywhere under the journal's directory (orphans of a crash
    mid-[atomic_replace]) and journals a ["tmp-swept"] event naming them. *)

val path : t -> string

val event :
  t ->
  ?job:string ->
  ?error:Minflo_robust.Diag.error ->
  ?fields:(string * string) list ->
  string ->
  unit
(** [event t ~job ~error ~fields name] appends one line
    [{"event": name, "t": seconds, "job": …, …fields, "error": {…}}] and
    fsyncs it. [fields] values must already be rendered JSON (use
    {!field_str} / {!field_float} / {!field_int}). Write failures are
    silent — journaling must never kill the run it documents — but the
    typed error is remembered (see {!last_error}). All bytes go through the
    instrumented {!Minflo_robust.Io} layer, so [io.*] fault sites and the
    torture harness's crash boundaries apply. *)

val event_checked :
  t ->
  ?job:string ->
  ?error:Minflo_robust.Diag.error ->
  ?fields:(string * string) list ->
  string ->
  (unit, Minflo_robust.Diag.error) result
(** Like {!event}, but reports the write/fsync failure to the caller —
    for paths where the append is load-bearing (the serve daemon's
    "accepted means recoverable" promise: the acceptance line must be
    durable before the client hears [accepted]). *)

val last_error : t -> Minflo_robust.Diag.error option
(** The most recent append failure swallowed by {!event} ([None] when every
    append so far landed). *)

val field_str : string -> string -> string * string
val field_float : string -> float -> string * string
val field_int : string -> int -> string * string
val field_bool : string -> bool -> string * string

val close : t -> unit

val completed : string -> (string, float) Hashtbl.t
(** [completed path] scans the journal for ["job-ok"] events and returns
    job id -> final area. Missing file means an empty table; malformed or
    truncated lines are skipped. *)

val canonical : string -> string list
(** The journal's lines in canonical form: volatile fields ([seq], [t],
    [backoff_seconds], [pid]) removed, truncated lines dropped, and lines stably
    sorted by their [job] field (lines without one first, in original
    order). Two runs of the same batch are equivalent iff their canonical
    journals are equal — in particular, [-j N] reorders events {e between}
    jobs but never within one, so the canonical journal of a parallel run
    is bit-identical to the sequential run's. The test-suite and the batch
    differential rely on exactly this. *)

val scan : string -> (string * string) list
(** [scan path] returns every complete event line as [(event, line)], in
    journal order; truncated lines are dropped. Use {!find_field} to pull
    individual fields back out of a line. Missing file means an empty
    list. This is the serve daemon's recovery substrate: accepted-but-
    unfinished jobs are exactly those with an acceptance event and no
    terminal event. *)

val find_field : string -> string -> string option
(** [find_field line key] extracts [key]'s value from a line this module
    wrote: quoted strings are unescaped, bare tokens returned verbatim.
    Not a general JSON parser — it only reads back {!event}'s output. *)
