module Diag = Minflo_robust.Diag
module Io = Minflo_robust.Io
module Mono = Minflo_robust.Mono

type t = {
  path : string;
  fd : Unix.file_descr;
  t0 : float;
  mutable seq : int;
  mutable last_error : Diag.error option;
}

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)

let jfloat v =
  if Float.is_finite v then Printf.sprintf "%.17g" v
  else jstr (Printf.sprintf "%h" v)

let field_str k v = (k, jstr v)
let field_float k v = (k, jfloat v)
let field_int k v = (k, string_of_int v)
let field_bool k v = (k, string_of_bool v)

let path t = t.path

let last_error t = t.last_error

let event_checked t ?job ?error ?(fields = []) name =
  t.seq <- t.seq + 1;
  let parts =
    [ ("event", jstr name);
      ("seq", string_of_int t.seq);
      ("t", Printf.sprintf "%.3f" (Mono.now () -. t.t0)) ]
    @ (match job with Some j -> [ ("job", jstr j) ] | None -> [])
    @ fields
    @ (match error with
      | Some e ->
        [ ("code", jstr (Diag.error_code e)); ("error", Diag.to_json e) ]
      | None -> [])
  in
  let line =
    Printf.sprintf "{%s}"
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s: %s" (jstr k) v) parts))
  in
  let r =
    match Io.write_all t.fd ~path:t.path (line ^ "\n") with
    | Ok () -> Io.fsync t.fd ~path:t.path
    | Error _ as e -> e
  in
  (match r with Error e -> t.last_error <- Some e | Ok () -> ());
  r

(* a journaling failure must never kill the run it documents; the typed
   error is remembered in [last_error] for callers that check afterwards *)
let event t ?job ?error ?fields name =
  ignore (event_checked t ?job ?error ?fields name)

let open_append path =
  try
    let fd =
      Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    (* Advisory whole-file lock: the journal's crash-safety story assumes a
       single writer, so a second live minflo instance pointed at the same
       run directory must fail fast with a typed diagnostic instead of
       interleaving (and thereby corrupting) event lines. The lock is a
       POSIX record lock: it dies with the process, so a SIGKILLed daemon
       never wedges its run directory, and a restarted one takes over
       cleanly. *)
    let locked =
      try
        ignore (Unix.lseek fd 0 Unix.SEEK_SET);
        Unix.lockf fd Unix.F_TLOCK 0;
        true
      with
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES | Unix.EWOULDBLOCK), _, _)
        ->
        false
      | Unix.Unix_error _ ->
        (* a filesystem without lock support (some network mounts) must not
           make journaling unusable; fall back to lockless appends there *)
        true
    in
    if not locked then begin
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise (Diag.Error_exn (Diag.Journal_locked { file = path }))
    end;
    (* A crash mid-write can leave the file without a final newline. If we
       appended straight after such a torn line, the next event would glue
       onto it and the scanner would drop both (worse, [find_field] would
       read the torn line's fields). Terminate the torn line first; the
       scanner already skips lines without a closing brace. *)
    (try
       let len = Unix.lseek fd 0 Unix.SEEK_END in
       if len > 0 then begin
         ignore (Unix.lseek fd (len - 1) Unix.SEEK_SET);
         let b = Bytes.create 1 in
         if Io.read_retry fd b 0 1 = 1 && Bytes.get b 0 <> '\n' then
           ignore (Io.write_substring_retry fd "\n" 0 1)
       end
     with Unix.Unix_error _ -> ());
    (* GC the orphans a crash mid-[Io.atomic_replace] leaves behind
       (checkpoint/result [.tmp] files anywhere under the run directory).
       Done after taking the single-writer lock, so a live instance's
       in-flight temp file is never swept from under it. *)
    let swept = Io.sweep_tmp ~recurse:true (Filename.dirname path) in
    let t = { path; fd; t0 = Mono.now (); seq = 0; last_error = None } in
    if swept <> [] then
      event t
        ~fields:
          [ field_int "count" (List.length swept);
            ( "files",
              Printf.sprintf "[%s]"
                (String.concat ", " (List.map jstr swept)) ) ]
        "tmp-swept";
    Ok t
  with
  | Unix.Unix_error (e, _, _) ->
    Error (Diag.Io_error { file = path; msg = Unix.error_message e })
  | Diag.Error_exn e -> Error e

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* ---------- scanning (our own lines only; tolerant of truncation) ---------- *)

(* Minimal field extraction from a line this module wrote: find ["key": and
   read either a quoted string or a bare token. Not a general JSON parser —
   it only needs to read back the writer above. *)
let find_field line key =
  let pat = Printf.sprintf "\"%s\": " key in
  let ll = String.length line and lp = String.length pat in
  let rec search i =
    if i + lp > ll then None
    else if String.sub line i lp = pat then Some (i + lp)
    else search (i + 1)
  in
  match search 0 with
  | None -> None
  | Some start ->
    if start >= ll then None
    else if line.[start] = '"' then begin
      let buf = Buffer.create 16 in
      let rec go i =
        if i >= ll then None
        else
          match line.[i] with
          | '\\' when i + 1 < ll ->
            Buffer.add_char buf line.[i + 1];
            go (i + 2)
          | '"' -> Some (Buffer.contents buf)
          | c ->
            Buffer.add_char buf c;
            go (i + 1)
      in
      go (start + 1)
    end
    else begin
      let stop = ref start in
      while
        !stop < ll && (match line.[!stop] with ',' | '}' -> false | _ -> true)
      do
        incr stop
      done;
      Some (String.trim (String.sub line start (!stop - start)))
    end

(* ---------- canonicalization ---------- *)

(* Split the inside of one written object into its top-level "key": value
   segments. Values can nest objects/arrays (embedded Diag errors) and
   contain commas inside strings, so track string state and bracket depth.
   Only needs to read back what [event] above wrote. *)
let top_level_parts inner =
  let parts = ref [] and buf = Buffer.create 64 in
  let depth = ref 0 and in_str = ref false and esc = ref false in
  String.iter
    (fun c ->
      if !esc then begin
        esc := false;
        Buffer.add_char buf c
      end
      else
        match c with
        | '\\' when !in_str ->
          esc := true;
          Buffer.add_char buf c
        | '"' ->
          in_str := not !in_str;
          Buffer.add_char buf c
        | ('{' | '[') when not !in_str ->
          incr depth;
          Buffer.add_char buf c
        | ('}' | ']') when not !in_str ->
          decr depth;
          Buffer.add_char buf c
        | ',' when (not !in_str) && !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
        | c -> Buffer.add_char buf c)
    inner;
  if Buffer.length buf > 0 then parts := Buffer.contents buf :: !parts;
  List.rev_map String.trim !parts

(* A line is structurally complete iff it is one balanced JSON object:
   starts '{', ends '}', every brace/bracket closed, no string left open.
   A crash can tear a line anywhere — including right after an embedded
   error object's '}' — so the trailing-brace test alone is not enough. *)
let complete_line line =
  let n = String.length line in
  if n < 2 || line.[0] <> '{' || line.[n - 1] <> '}' then false
  else begin
    let depth = ref 0 and in_str = ref false and esc = ref false in
    let ok = ref true in
    String.iter
      (fun c ->
        if !esc then esc := false
        else
          match c with
          | '\\' when !in_str -> esc := true
          | '"' -> in_str := not !in_str
          | ('{' | '[') when not !in_str -> incr depth
          | ('}' | ']') when not !in_str ->
            decr depth;
            if !depth < 0 then ok := false
          | _ -> ())
      line;
    !ok && !depth = 0 && not !in_str
  end

let volatile_keys =
  [ "\"seq\":"; "\"t\":"; "\"backoff_seconds\":"; "\"pid\":" ]

let strip_volatile line =
  let n = String.length line in
  if n < 2 || line.[0] <> '{' || line.[n - 1] <> '}' then line
  else begin
    let keep part =
      not
        (List.exists
           (fun k ->
             String.length part >= String.length k
             && String.sub part 0 (String.length k) = k)
           volatile_keys)
    in
    let parts =
      List.filter keep (top_level_parts (String.sub line 1 (n - 2)))
    in
    "{" ^ String.concat ", " parts ^ "}"
  end

let canonical path =
  let lines = ref [] in
  (match open_in path with
  | exception Sys_error _ -> ()
  | ic ->
    (try
       while true do
         let line = input_line ic in
         if complete_line line then lines := strip_volatile line :: !lines
       done
     with End_of_file -> ());
    close_in_noerr ic);
  let keyed =
    List.rev_map
      (fun line ->
        (Option.value ~default:"" (find_field line "job"), line))
      !lines
  in
  (* stable sort on the job id: within one job the order events were
     journaled in is preserved (and is deterministic — see Supervisor's
     pipe drain); lines without a job field sort first in original order *)
  List.map snd (List.stable_sort (fun (a, _) (b, _) -> compare a b) keyed)

let completed path =
  let table = Hashtbl.create 64 in
  (match open_in path with
  | exception Sys_error _ -> ()
  | ic ->
    (try
       while true do
         let line = input_line ic in
         (* a line truncated by a crash mid-write is never complete *)
         if complete_line line then
           match find_field line "event" with
           | Some "job-ok" -> (
             match (find_field line "job", find_field line "area") with
             | Some job, Some area -> (
               match float_of_string_opt area with
               | Some a -> Hashtbl.replace table job a
               | None -> ())
             | _ -> ())
           | _ -> ()
       done
     with End_of_file -> ());
    close_in_noerr ic);
  table

(* ---------- generic scan (the serve daemon's recovery hook) ---------- *)

let scan path =
  let lines = ref [] in
  (match open_in path with
  | exception Sys_error _ -> ()
  | ic ->
    (try
       while true do
         let line = input_line ic in
         (* a line truncated by a crash mid-write is never complete *)
         if complete_line line then
           match find_field line "event" with
           | Some ev -> lines := (ev, line) :: !lines
           | None -> ()
       done
     with End_of_file -> ());
    close_in_noerr ic);
  List.rev !lines
