module Diag = Minflo_robust.Diag
module Mono = Minflo_robust.Mono

type t = {
  path : string;
  oc : out_channel;
  fd : Unix.file_descr;
  t0 : float;
  mutable seq : int;
}

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)

let jfloat v =
  if Float.is_finite v then Printf.sprintf "%.17g" v
  else jstr (Printf.sprintf "%h" v)

let field_str k v = (k, jstr v)
let field_float k v = (k, jfloat v)
let field_int k v = (k, string_of_int v)
let field_bool k v = (k, string_of_bool v)

let open_append path =
  try
    let fd =
      Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    (* A crash mid-write can leave the file without a final newline. If we
       appended straight after such a torn line, the next event would glue
       onto it and the scanner would drop both (worse, [find_field] would
       read the torn line's fields). Terminate the torn line first; the
       scanner already skips lines without a closing brace. *)
    (try
       let len = Unix.lseek fd 0 Unix.SEEK_END in
       if len > 0 then begin
         ignore (Unix.lseek fd (len - 1) Unix.SEEK_SET);
         let b = Bytes.create 1 in
         if Unix.read fd b 0 1 = 1 && Bytes.get b 0 <> '\n' then
           ignore (Unix.write_substring fd "\n" 0 1)
       end
     with Unix.Unix_error _ -> ());
    Ok
      { path; oc = Unix.out_channel_of_descr fd; fd; t0 = Mono.now (); seq = 0 }
  with Unix.Unix_error (e, _, _) ->
    Error (Diag.Io_error { file = path; msg = Unix.error_message e })

let path t = t.path

let event t ?job ?error ?(fields = []) name =
  t.seq <- t.seq + 1;
  let parts =
    [ ("event", jstr name);
      ("seq", string_of_int t.seq);
      ("t", Printf.sprintf "%.3f" (Mono.now () -. t.t0)) ]
    @ (match job with Some j -> [ ("job", jstr j) ] | None -> [])
    @ fields
    @ (match error with
      | Some e ->
        [ ("code", jstr (Diag.error_code e)); ("error", Diag.to_json e) ]
      | None -> [])
  in
  let line =
    Printf.sprintf "{%s}"
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s: %s" (jstr k) v) parts))
  in
  (* a journaling failure must never kill the run it documents *)
  try
    output_string t.oc (line ^ "\n");
    flush t.oc;
    Unix.fsync t.fd
  with Sys_error _ | Unix.Unix_error _ -> ()

let close t = try close_out t.oc with Sys_error _ -> ()

(* ---------- scanning (our own lines only; tolerant of truncation) ---------- *)

(* Minimal field extraction from a line this module wrote: find ["key": and
   read either a quoted string or a bare token. Not a general JSON parser —
   it only needs to read back the writer above. *)
let find_field line key =
  let pat = Printf.sprintf "\"%s\": " key in
  let ll = String.length line and lp = String.length pat in
  let rec search i =
    if i + lp > ll then None
    else if String.sub line i lp = pat then Some (i + lp)
    else search (i + 1)
  in
  match search 0 with
  | None -> None
  | Some start ->
    if start >= ll then None
    else if line.[start] = '"' then begin
      let buf = Buffer.create 16 in
      let rec go i =
        if i >= ll then None
        else
          match line.[i] with
          | '\\' when i + 1 < ll ->
            Buffer.add_char buf line.[i + 1];
            go (i + 2)
          | '"' -> Some (Buffer.contents buf)
          | c ->
            Buffer.add_char buf c;
            go (i + 1)
      in
      go (start + 1)
    end
    else begin
      let stop = ref start in
      while
        !stop < ll && (match line.[!stop] with ',' | '}' -> false | _ -> true)
      do
        incr stop
      done;
      Some (String.trim (String.sub line start (!stop - start)))
    end

let completed path =
  let table = Hashtbl.create 64 in
  (match open_in path with
  | exception Sys_error _ -> ()
  | ic ->
    (try
       while true do
         let line = input_line ic in
         let n = String.length line in
         (* a line truncated by a crash mid-write has no closing brace *)
         if n > 0 && line.[0] = '{' && line.[n - 1] = '}' then
           match find_field line "event" with
           | Some "job-ok" -> (
             match (find_field line "job", find_field line "area") with
             | Some job, Some area -> (
               match float_of_string_opt area with
               | Some a -> Hashtbl.replace table job a
               | None -> ())
             | _ -> ())
           | _ -> ()
       done
     with End_of_file -> ());
    close_in_noerr ic);
  table
