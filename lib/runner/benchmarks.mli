(** The deterministic benchmark suite behind [minflo bench].

    Each experiment runs the full engine (TILOS seed + D/W refinement) on
    one ISCAS-85 circuit in one mode — [cold] (fresh flow solve per
    D-phase) or [warm] (basis reuse across D-phases) — and records the
    final area plus the {!Minflo_robust.Perf} counters spent. Counters are
    pure functions of the inputs, so a checked-in baseline
    ([BENCH_pr5.json]) can be compared {e exactly} on every CI run; wall
    time is recorded for human eyes and never compared. *)

type experiment = {
  circuit : string;
  mode : string;  (** ["cold"] or ["warm"]. *)
  target_factor : float;
  area : float;
  met : bool;
  iterations : int;
  counters : Minflo_robust.Perf.counters;
  wall_seconds : float;  (** volatile; excluded from {!check}. *)
}

val schema : string

val suite : ?quick:bool -> unit -> experiment list
(** Runs the benchmark grid: cold and warm legs for each circuit —
    [c432, c880] when [quick] (the CI smoke set), plus [c1908, c6288] in
    the full run. Order is deterministic. *)

val to_json : experiment -> string
(** One experiment as a single-line JSON object. *)

val render : experiment list -> string
(** The full baseline document: a [schema] header and one experiment per
    line (so diffs and the baseline check stay line-oriented). *)

val check : baseline:string -> experiment list -> (unit, string list) result
(** [check ~baseline experiments] compares this run against the checked-in
    baseline file, field-exact on everything {e except} wall time.
    Experiments are matched by (circuit, mode), so a [--quick] run checks
    cleanly against the full baseline; an experiment with no baseline entry
    is itself a divergence. [Error] carries one human-readable line per
    divergence. *)

val pivot_reduction : experiment list -> circuit:string -> float option
(** Percent reduction in simplex pivots of the warm leg vs the cold leg
    for one circuit; [None] if either leg is missing. *)
