(** The deterministic benchmark suite behind [minflo bench].

    Each experiment runs the full engine (TILOS seed + D/W refinement) on
    one circuit in one mode — [cold] (fresh flow solve per D-phase) or
    [warm] (basis reuse across D-phases) — and records the final area, the
    {!Minflo_robust.Perf} counters spent, and the number of findings the
    independent {!Minflo_lint.Audit} raised against the flow certificates
    of the accepted steps (0 on a healthy engine). Counters and audit
    counts are pure functions of the inputs, so a checked-in baseline
    ([BENCH_pr10.json]) can be compared {e exactly} on every CI run; wall
    time is recorded for human eyes and never compared.

    Two grids exist: the ISCAS-85 grid ({!suite}, cold + warm legs, the
    trajectory-stability tracker since [BENCH_pr5.json]) and the synthetic
    scaling grid ({!scale_suite}, warm legs on 5k-50k-vertex generated
    circuits — ripple adders, array multipliers, a layered random DAG). *)

type experiment = {
  circuit : string;
  mode : string;  (** ["cold"] or ["warm"]. *)
  target_factor : float;
  gates : int;  (** delay-model vertex count. *)
  area : float;
  met : bool;
  iterations : int;
  audit_findings : int;
      (** total {!Minflo_lint.Audit} findings over every accepted step's
          flow certificate; 0 means every certificate audited clean. *)
  counters : Minflo_robust.Perf.counters;
  wall_seconds : float;  (** volatile; excluded from {!check}. *)
}

val schema : string

val suite : ?quick:bool -> unit -> experiment list
(** Runs the ISCAS benchmark grid: cold and warm legs for each circuit —
    [c432, c880] when [quick] (the CI smoke set), plus [c1908, c6288] in
    the full run. Order is deterministic. *)

val scale_suite : ?quick:bool -> unit -> experiment list
(** Runs the synthetic scaling grid (warm legs only): [rca1024, mul32]
    when [quick] (the CI scale-smoke set), plus [rca4096, mul64, dag50k]
    in the full run. All generators are deterministic, so every non-wall
    field is baseline-exact. *)

val to_json : experiment -> string
(** One experiment as a single-line JSON object. *)

val render : experiment list -> string
(** The full baseline document: a [schema] header and one experiment per
    line (so diffs and the baseline check stay line-oriented). *)

val check : baseline:string -> experiment list -> (unit, string list) result
(** [check ~baseline experiments] compares this run against the checked-in
    baseline file, field-exact on everything {e except} wall time.
    Experiments are matched by (circuit, mode), so a [--quick] run checks
    cleanly against the full baseline; an experiment with no baseline entry
    is itself a divergence. [Error] carries one human-readable line per
    divergence. *)

val pivot_reduction : experiment list -> circuit:string -> float option
(** Percent reduction in simplex pivots of the warm leg vs the cold leg
    for one circuit; [None] if either leg is missing. *)
