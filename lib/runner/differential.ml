module Diag = Minflo_robust.Diag

let counterpart = function
  | `Simplex | `Auto | `Bellman_ford -> `Ssp
  | `Ssp -> `Simplex

let default_tolerance = 0.02

let compare_outcomes ~tolerance ~job_id
    ~(a : Job.outcome) ~(b : Job.outcome) =
  let sa = Job.solver_name a.job.solver and sb = Job.solver_name b.job.solver in
  let gap =
    abs_float (a.area -. b.area) /. max 1e-12 (max (abs_float a.area) (abs_float b.area))
  in
  if a.met <> b.met || gap > tolerance then
    Error
      (Diag.Differential_mismatch
         { job = job_id;
           solver_a = sa;
           solver_b = sb;
           value_a = a.area;
           value_b = b.area;
           tolerance })
  else Ok ()
