(** Versioned, crash-safe on-disk checkpoints for sizing runs.

    A checkpoint freezes a {!Minflo_sizing.Minflotransit.snapshot} (the
    complete D/W loop state) together with everything needed to validate
    and restart the run: a format version, a structural hash of the
    circuit, the absolute delay target, the solver, the TILOS seed the
    refinement started from, the run-budget meters, and the fault-plan
    seed. Floats are written as C99 hex literals ([%h]), so a round trip
    through the file is bit-exact — the foundation of the resume-equals-
    uninterrupted guarantee.

    Writes are atomic: the file is written to a [.tmp] sibling, fsynced,
    and renamed over the destination, so a crash mid-checkpoint leaves the
    previous checkpoint intact. Loads validate magic, version and circuit
    hash and return a typed {!Minflo_robust.Diag.Checkpoint_invalid} on
    any mismatch — a stale or foreign checkpoint can never silently seed a
    resume. *)

type t = {
  circuit : string;        (** circuit spec the run was started with. *)
  circuit_hash : int64;    (** {!hash_netlist} of that circuit. *)
  target : float;          (** absolute delay target. *)
  solver : string;         (** solver name ({!Job.solver_name}). *)
  fault_seed : int option; (** seed the run's fault plan was built from. *)
  snapshot : Minflo_sizing.Minflotransit.snapshot;
  tilos : Minflo_sizing.Tilos.result;  (** the seed the loop refines. *)
  budget_iterations : int;
  budget_pivots : int;
  budget_elapsed : float;  (** seconds of budgeted wall clock consumed. *)
}

val version : int
(** Current format version. Files written by other versions are rejected
    (see DESIGN.md for the versioning rules). *)

val hash_netlist : Minflo_netlist.Netlist.t -> int64
(** FNV-1a over the canonical [.bench] rendering: stable across processes
    and builds, sensitive to any structural change. *)

val hex_float : float -> string
(** Bit-exact float spelling: C99 hex ([%h]) for finite values and
    infinities, ["nan:<16 hex digits>"] for nans (whose sign and payload
    [%h] would collapse to the three bytes ["nan"]). Inverse of
    {!parse_hex_float}. Also used by the fuzz corpus format. *)

val parse_hex_float : string -> float option
(** Reads everything {!hex_float} writes (plus ordinary decimal floats);
    the round trip is bit-identical, nan payloads included. *)

val save : string -> t -> (unit, Minflo_robust.Diag.error) result
(** [save path ck] atomically replaces [path]. [Io_error] on failure. *)

val load : string -> (t, Minflo_robust.Diag.error) result
(** [Checkpoint_invalid] when the file is missing a field, truncated, has
    the wrong magic or version; [Io_error] when unreadable. The circuit
    hash is {e not} checked here — pair with {!validate}. *)

val validate :
  file:string -> t -> circuit_hash:int64 -> target:float -> solver:string ->
  (unit, Minflo_robust.Diag.error) result
(** Rejects (as [Checkpoint_invalid], carrying [file]) a checkpoint whose
    circuit hash, target or solver does not match the run being resumed. *)
