module Diag = Minflo_robust.Diag
module Perf = Minflo_robust.Perf
module Tech = Minflo_tech.Tech
module Sweep = Minflo_sizing.Sweep
module Minflotransit = Minflo_sizing.Minflotransit

type experiment = {
  circuit : string;
  mode : string;
  target_factor : float;
  area : float;
  met : bool;
  iterations : int;
  counters : Perf.counters;
  wall_seconds : float;
}

let schema = "minflo-bench/1"
let quick_circuits = [ "c432"; "c880" ]
let full_circuits = [ "c432"; "c880"; "c1908"; "c6288" ]
let target_factor = 0.6

let run_one ~circuit ~warm =
  let nl = Minflo_netlist.Iscas85.circuit circuit in
  let model = Minflo_tech.Model_cache.model ~tech:Tech.default_130nm nl in
  let target = target_factor *. Sweep.dmin model in
  let options =
    { Minflotransit.default_options with
      Minflotransit.warm_start = warm;
      canonical_duals = true }
  in
  let before = Perf.snapshot () in
  let result, wall =
    Perf.timed (fun () -> Minflotransit.optimize ~options model ~target)
  in
  { circuit;
    mode = (if warm then "warm" else "cold");
    target_factor;
    area = result.Minflotransit.area;
    met = result.Minflotransit.met;
    iterations = result.Minflotransit.iterations;
    counters = Perf.(diff before (snapshot ()));
    wall_seconds = wall }

let suite ?(quick = false) () =
  let circuits = if quick then quick_circuits else full_circuits in
  List.concat_map
    (fun c -> [ run_one ~circuit:c ~warm:false; run_one ~circuit:c ~warm:true ])
    circuits

(* ---------- rendering ---------- *)

(* The stable part of one experiment: everything that is a pure function of
   the inputs. Wall time is appended separately and never compared. *)
let stable_json e =
  let counters =
    String.concat ", "
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v)
         (Perf.to_fields e.counters))
  in
  Printf.sprintf
    "{\"circuit\": \"%s\", \"mode\": \"%s\", \"target_factor\": %.3f, \
     \"area\": %.9f, \"met\": %b, \"iterations\": %d, %s"
    e.circuit e.mode e.target_factor e.area e.met e.iterations counters

let to_json e =
  Printf.sprintf "%s, \"wall_seconds\": %.3f}" (stable_json e) e.wall_seconds

let render experiments =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "{\"schema\": \"%s\",\n" schema);
  Buffer.add_string buf " \"experiments\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf "  ";
      Buffer.add_string buf (to_json e);
      if i < List.length experiments - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    experiments;
  Buffer.add_string buf " ]}\n";
  Buffer.contents buf

(* ---------- baseline check ---------- *)

(* Reduce a rendered experiment line to its stable prefix: everything up to
   the volatile ["wall_seconds"] field. Works on both freshly rendered
   lines and baseline-file lines, so the comparison is string-exact. *)
let stable_prefix line =
  let pat = ", \"wall_seconds\":" in
  let ll = String.length line and lp = String.length pat in
  let rec search i =
    if i + lp > ll then line
    else if String.sub line i lp = pat then String.sub line 0 i
    else search (i + 1)
  in
  search 0

let baseline_lines path =
  match open_in path with
  | exception Sys_error msg -> Error (Diag.Io_error { file = path; msg })
  | ic ->
    let lines = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if String.length line > 0 && line.[0] = '{' then begin
           let line =
             if line.[String.length line - 1] = ',' then
               String.sub line 0 (String.length line - 1)
             else line
           in
           (* skip the header object; experiment lines carry "circuit" *)
           let is_experiment =
             let pat = "\"circuit\":" in
             let ll = String.length line and lp = String.length pat in
             let rec go i =
               if i + lp > ll then false
               else String.sub line i lp = pat || go (i + 1)
             in
             go 0
           in
           if is_experiment then lines := stable_prefix line :: !lines
         end
       done
     with End_of_file -> ());
    close_in_noerr ic;
    Ok (List.rev !lines)

let check ~baseline experiments =
  match baseline_lines baseline with
  | Error e -> Error [ Diag.to_string e ]
  | Ok base ->
    (* Experiments are keyed by (circuit, mode): every experiment this run
       produced must match its baseline entry exactly. Baseline entries the
       run did not exercise are fine — that is what lets the CI smoke job
       run the quick grid against the full checked-in baseline. *)
    let diffs =
      List.concat_map
        (fun e ->
          let key =
            Printf.sprintf "{\"circuit\": \"%s\", \"mode\": \"%s\"," e.circuit
              e.mode
          in
          let starts_with p s =
            String.length s >= String.length p
            && String.sub s 0 (String.length p) = p
          in
          let f = stable_prefix (to_json e) in
          match List.find_opt (starts_with key) base with
          | None ->
            [ Printf.sprintf "no baseline entry for %s/%s" e.circuit e.mode ]
          | Some b when b <> f ->
            [ Printf.sprintf "baseline: %s}\n     run: %s}" b f ]
          | Some _ -> [])
        experiments
    in
    if diffs = [] then Ok () else Error diffs

(* ---------- the headline metric ---------- *)

let pivot_reduction experiments ~circuit =
  let find mode =
    List.find_opt (fun e -> e.circuit = circuit && e.mode = mode) experiments
  in
  match (find "cold", find "warm") with
  | Some c, Some w when c.counters.Perf.pivots > 0 ->
    Some
      (100.
      *. float_of_int (c.counters.Perf.pivots - w.counters.Perf.pivots)
      /. float_of_int c.counters.Perf.pivots)
  | _ -> None
