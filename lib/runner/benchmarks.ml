module Diag = Minflo_robust.Diag
module Perf = Minflo_robust.Perf
module Tech = Minflo_tech.Tech
module Delay_model = Minflo_tech.Delay_model
module Generators = Minflo_netlist.Generators
module Sweep = Minflo_sizing.Sweep
module Dphase = Minflo_sizing.Dphase
module Minflotransit = Minflo_sizing.Minflotransit

type experiment = {
  circuit : string;
  mode : string;
  target_factor : float;
  gates : int;
  area : float;
  met : bool;
  iterations : int;
  audit_findings : int;
  counters : Perf.counters;
  wall_seconds : float;
}

let schema = "minflo-bench/2"
let quick_circuits = [ "c432"; "c880" ]
let full_circuits = [ "c432"; "c880"; "c1908"; "c6288" ]
let target_factor = 0.6

let run_netlist ~circuit ~nl ~warm =
  let model = Minflo_tech.Model_cache.model ~tech:Tech.default_130nm nl in
  let target = target_factor *. Sweep.dmin model in
  let options =
    { Minflotransit.default_options with
      Minflotransit.warm_start = warm;
      canonical_duals = true }
  in
  (* every accepted step's flow certificate is audited from first
     principles (MF101-MF105) as it is emitted — the observer sees the
     exact solution the engine acted on, and nothing is retained, so even
     the 50k-gate scale runs audit in O(arcs) extra memory. The audit does
     not tick perf counters, so [counters] stay a pure function of the
     sizing inputs. *)
  let audit_findings = ref 0 in
  let on_step (s : Minflotransit.step) =
    match s.Minflotransit.step_certificate with
    | Some (c : Dphase.certificate) ->
      audit_findings :=
        !audit_findings + List.length (Minflo_lint.Audit.check c.problem c.solution)
    | None -> ()
  in
  let before = Perf.snapshot () in
  let result, wall =
    Perf.timed (fun () -> Minflotransit.optimize ~options ~on_step model ~target)
  in
  { circuit;
    mode = (if warm then "warm" else "cold");
    target_factor;
    gates = Delay_model.num_vertices model;
    area = result.Minflotransit.area;
    met = result.Minflotransit.met;
    iterations = result.Minflotransit.iterations;
    audit_findings = !audit_findings;
    counters = Perf.(diff before (snapshot ()));
    wall_seconds = wall }

let run_one ~circuit ~warm =
  run_netlist ~circuit ~nl:(Minflo_netlist.Iscas85.circuit circuit) ~warm

let suite ?(quick = false) () =
  let circuits = if quick then quick_circuits else full_circuits in
  List.concat_map
    (fun c -> [ run_one ~circuit:c ~warm:false; run_one ~circuit:c ~warm:true ])
    circuits

(* ---------- the scaling grid ---------- *)

(* Synthetic circuits well past the ISCAS-85 sizes (c6288 is ~2.4k
   vertices): ripple adders for depth, array multipliers for the
   c6288-style reconvergent structure, and a layered random DAG for bulk.
   All generators are deterministic, so counters stay baseline-exact. *)
let scale_circuits =
  [ ("rca1024", fun () -> Generators.ripple_carry_adder ~bits:1024 ());
    ("rca4096", fun () -> Generators.ripple_carry_adder ~bits:4096 ());
    ("mul32", fun () -> Generators.array_multiplier ~bits:32 ());
    ("mul64", fun () -> Generators.array_multiplier ~bits:64 ());
    ( "dag50k",
      fun () ->
        Generators.random_dag ~gates:50_000 ~inputs:64 ~outputs:32 ~seed:7 () )
  ]

let scale_quick_names = [ "rca1024"; "mul32" ]

let scale_suite ?(quick = false) () =
  let selected =
    if quick then
      List.filter (fun (n, _) -> List.mem n scale_quick_names) scale_circuits
    else scale_circuits
  in
  (* warm legs only: the scaling story is the steady-state engine; the
     cold-vs-warm contrast is already tracked by the ISCAS grid *)
  List.map (fun (name, gen) -> run_netlist ~circuit:name ~nl:(gen ()) ~warm:true)
    selected

(* ---------- rendering ---------- *)

(* The stable part of one experiment: everything that is a pure function of
   the inputs. Wall time is appended separately and never compared. *)
let stable_json e =
  let counters =
    String.concat ", "
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\": %d" k v)
         (Perf.to_fields e.counters))
  in
  Printf.sprintf
    "{\"circuit\": \"%s\", \"mode\": \"%s\", \"target_factor\": %.3f, \
     \"gates\": %d, \"area\": %.9f, \"met\": %b, \"iterations\": %d, \
     \"audit_findings\": %d, %s"
    e.circuit e.mode e.target_factor e.gates e.area e.met e.iterations
    e.audit_findings counters

let to_json e =
  Printf.sprintf "%s, \"wall_seconds\": %.3f}" (stable_json e) e.wall_seconds

let render experiments =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "{\"schema\": \"%s\",\n" schema);
  Buffer.add_string buf " \"experiments\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf "  ";
      Buffer.add_string buf (to_json e);
      if i < List.length experiments - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    experiments;
  Buffer.add_string buf " ]}\n";
  Buffer.contents buf

(* ---------- baseline check ---------- *)

(* Reduce a rendered experiment line to its stable prefix: everything up to
   the volatile ["wall_seconds"] field. Works on both freshly rendered
   lines and baseline-file lines, so the comparison is string-exact. *)
let stable_prefix line =
  let pat = ", \"wall_seconds\":" in
  let ll = String.length line and lp = String.length pat in
  let rec search i =
    if i + lp > ll then line
    else if String.sub line i lp = pat then String.sub line 0 i
    else search (i + 1)
  in
  search 0

let baseline_lines path =
  match open_in path with
  | exception Sys_error msg -> Error (Diag.Io_error { file = path; msg })
  | ic ->
    let lines = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if String.length line > 0 && line.[0] = '{' then begin
           let line =
             if line.[String.length line - 1] = ',' then
               String.sub line 0 (String.length line - 1)
             else line
           in
           (* skip the header object; experiment lines carry "circuit" *)
           let is_experiment =
             let pat = "\"circuit\":" in
             let ll = String.length line and lp = String.length pat in
             let rec go i =
               if i + lp > ll then false
               else String.sub line i lp = pat || go (i + 1)
             in
             go 0
           in
           if is_experiment then lines := stable_prefix line :: !lines
         end
       done
     with End_of_file -> ());
    close_in_noerr ic;
    Ok (List.rev !lines)

let check ~baseline experiments =
  match baseline_lines baseline with
  | Error e -> Error [ Diag.to_string e ]
  | Ok base ->
    (* Experiments are keyed by (circuit, mode): every experiment this run
       produced must match its baseline entry exactly. Baseline entries the
       run did not exercise are fine — that is what lets the CI smoke job
       run the quick grid against the full checked-in baseline. *)
    let diffs =
      List.concat_map
        (fun e ->
          let key =
            Printf.sprintf "{\"circuit\": \"%s\", \"mode\": \"%s\"," e.circuit
              e.mode
          in
          let starts_with p s =
            String.length s >= String.length p
            && String.sub s 0 (String.length p) = p
          in
          let f = stable_prefix (to_json e) in
          match List.find_opt (starts_with key) base with
          | None ->
            [ Printf.sprintf "no baseline entry for %s/%s" e.circuit e.mode ]
          | Some b when b <> f ->
            [ Printf.sprintf "baseline: %s}\n     run: %s}" b f ]
          | Some _ -> [])
        experiments
    in
    if diffs = [] then Ok () else Error diffs

(* ---------- the headline metric ---------- *)

let pivot_reduction experiments ~circuit =
  let find mode =
    List.find_opt (fun e -> e.circuit = circuit && e.mode = mode) experiments
  in
  match (find "cold", find "warm") with
  | Some c, Some w when c.counters.Perf.pivots > 0 ->
    Some
      (100.
      *. float_of_int (c.counters.Perf.pivots - w.counters.Perf.pivots)
      /. float_of_int c.counters.Perf.pivots)
  | _ -> None
