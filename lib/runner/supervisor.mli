(** Supervised execution of batch tasks in isolated child processes.

    Each task runs in a forked child with a hard wall-clock timeout; a
    hang, crash (segfault, OOM-kill, SIGKILL) or typed failure in one job
    can never take down the batch or corrupt another job's state. The
    supervisor classifies failures:

    - {e transient} — timeouts, crashes, and the retryable solver errors
      of {!Minflo_robust.Fallback.retryable} — are retried with
      exponential backoff, up to the configured retry budget;
    - {e deterministic} — structural errors (unmet target, parse errors,
      infeasible budgets, …), or a typed solver error repeating with the
      same code on consecutive attempts — quarantine the job immediately:
      it is reported failed and never retried, so a poisoned input cannot
      consume the batch's time.

    Results cross the process boundary via [Marshal] on a per-job scratch
    file, so task thunks must return plain data (no closures, no abstract
    handles). Tasks run to completion in submission order subject to the
    parallelism cap; the returned list is in submission order. *)

type config = {
  parallel : int;                  (** concurrent children (default 1). *)
  timeout_seconds : float option;  (** per-attempt hard kill (SIGKILL). *)
  retries : int;                   (** extra attempts for transient failures. *)
  backoff_base : float;            (** first retry delay, seconds; doubles. *)
  isolate : bool;
      (** [false] runs thunks in-process (no fork, no timeout enforcement)
          — retained for tests and debugging; retry/quarantine logic is
          identical. *)
}

val default_config : config
(** [parallel = 1; timeout_seconds = None; retries = 2;
    backoff_base = 0.5; isolate = true]. *)

type 'a outcome = {
  verdict : ('a, Minflo_robust.Diag.error) result;
  attempts : int;       (** attempts actually made (>= 1). *)
  quarantined : bool;   (** failed deterministically; retries withheld. *)
}

type emit = ?fields:(string * string) list -> string -> unit
(** A worker's channel for journal events. Field values must be
    pre-rendered JSON ({!Journal.field_str} and friends). In isolated mode
    the event crosses a dedicated worker->parent pipe and the {e parent}
    appends it (the journal stays single-writer, so its crash-safety
    guarantees survive any parallelism level); in-process mode appends
    directly. Events carry the task's id as their [job] field. All events
    a worker emitted are journaled before the task's verdict event, so
    within-job event order is deterministic regardless of [parallel]. *)

val run_all :
  ?config:config ->
  ?journal:Journal.t ->
  ?on_done:(string -> 'a outcome -> unit) ->
  (string * (unit -> ('a, Minflo_robust.Diag.error) result)) list ->
  (string * 'a outcome) list
(** [run_all tasks] supervises every [(id, thunk)] and returns the
    outcomes in submission order. Lifecycle events ([job-spawn],
    [job-retry], [job-timeout], [job-crashed], [job-quarantined],
    [job-failed]) are appended to [journal] as they happen. [on_done] runs
    in the parent the moment a task reaches its final outcome (success,
    quarantine or retry exhaustion) — the batch layer uses it to journal
    completions crash-safely as they happen, not when the batch ends. *)

val run_all_tasks :
  ?config:config ->
  ?journal:Journal.t ->
  ?on_done:(string -> 'a outcome -> unit) ->
  (string * (emit -> ('a, Minflo_robust.Diag.error) result)) list ->
  (string * 'a outcome) list
(** Like {!run_all}, but each thunk receives an {!emit} through which the
    worker can add its own events (checkpoint progress, perf counters) to
    the batch journal from inside the child process. *)
