(** Supervised execution of batch tasks in isolated child processes.

    Each task runs in a forked child with a hard wall-clock timeout; a
    hang, crash (segfault, OOM-kill, SIGKILL) or typed failure in one job
    can never take down the batch or corrupt another job's state. The
    supervisor classifies failures:

    - {e transient} — timeouts, crashes, and the retryable solver errors
      of {!Minflo_robust.Fallback.retryable} — are retried with
      exponential backoff, up to the configured retry budget;
    - {e deterministic} — structural errors (unmet target, parse errors,
      infeasible budgets, …), or a typed solver error repeating with the
      same code on consecutive attempts — quarantine the job immediately:
      it is reported failed and never retried, so a poisoned input cannot
      consume the batch's time.

    Results cross the process boundary via [Marshal] on a per-job scratch
    file, so task thunks must return plain data (no closures, no abstract
    handles). Tasks run to completion in submission order subject to the
    parallelism cap; the returned list is in submission order. *)

type config = {
  parallel : int;                  (** concurrent children (default 1). *)
  timeout_seconds : float option;  (** per-attempt hard kill (SIGKILL). *)
  retries : int;                   (** extra attempts for transient failures. *)
  backoff_base : float;            (** first retry delay, seconds; doubles. *)
  isolate : bool;
      (** [false] runs thunks in-process (no fork, no timeout enforcement)
          — retained for tests and debugging; retry/quarantine logic is
          identical. *)
  watchdog_seconds : float option;
      (** Liveness deadline (isolated mode only). Each worker carries a
          SIGALRM heartbeat timer writing a liveness record to its event
          pipe every [watchdog/4] seconds; a worker whose pipe stays
          silent — no events, no heartbeats — for longer than this is
          SIGKILLed ([job-watchdog-kill] journaled) and the job requeued
          through the ordinary transient-retry path. Catches wedged
          workers (SIGSTOP, livelock, a hang in a non-OCaml call) long
          before the absolute [timeout_seconds] would. [None] disables. *)
}

val default_config : config
(** [parallel = 1; timeout_seconds = None; retries = 2;
    backoff_base = 0.5; isolate = true; watchdog_seconds = None]. *)

type 'a outcome = {
  verdict : ('a, Minflo_robust.Diag.error) result;
  attempts : int;       (** attempts actually made (>= 1). *)
  quarantined : bool;   (** failed deterministically; retries withheld. *)
}

type emit = ?fields:(string * string) list -> string -> unit
(** A worker's channel for journal events. Field values must be
    pre-rendered JSON ({!Journal.field_str} and friends). In isolated mode
    the event crosses a dedicated worker->parent pipe and the {e parent}
    appends it (the journal stays single-writer, so its crash-safety
    guarantees survive any parallelism level); in-process mode appends
    directly. Events carry the task's id as their [job] field. All events
    a worker emitted are journaled before the task's verdict event, so
    within-job event order is deterministic regardless of [parallel]. *)

val run_all :
  ?config:config ->
  ?journal:Journal.t ->
  ?on_done:(string -> 'a outcome -> unit) ->
  (string * (unit -> ('a, Minflo_robust.Diag.error) result)) list ->
  (string * 'a outcome) list
(** [run_all tasks] supervises every [(id, thunk)] and returns the
    outcomes in submission order. Lifecycle events ([job-spawn],
    [job-retry], [job-timeout], [job-crashed], [job-quarantined],
    [job-failed]) are appended to [journal] as they happen. [on_done] runs
    in the parent the moment a task reaches its final outcome (success,
    quarantine or retry exhaustion) — the batch layer uses it to journal
    completions crash-safely as they happen, not when the batch ends. *)

val run_all_tasks :
  ?config:config ->
  ?journal:Journal.t ->
  ?on_done:(string -> 'a outcome -> unit) ->
  (string * (emit -> ('a, Minflo_robust.Diag.error) result)) list ->
  (string * 'a outcome) list
(** Like {!run_all}, but each thunk receives an {!emit} through which the
    worker can add its own events (checkpoint progress, perf counters) to
    the batch journal from inside the child process. *)

(** {1 Incremental pool}

    The batch entry points above block until every task finishes. A
    long-running daemon instead needs to feed tasks in as they arrive and
    harvest outcomes between [select] wake-ups; [pool_step] does one
    non-blocking scheduling round (spawn into free slots, SIGKILL
    overdue workers, reap exited ones, drain worker event pipes) and
    returns whatever finished since the last call. Retry, backoff,
    quarantine and journaling semantics are identical to {!run_all_tasks}
    — that function is itself implemented on the pool. *)

type 'a pool

val pool_create :
  ?config:config ->
  ?journal:Journal.t ->
  ?on_done:(string -> 'a outcome -> unit) ->
  unit ->
  'a pool
(** An empty pool. [on_done] fires in the submitting process the moment a
    task reaches a final outcome (also reported by the next {!pool_step}).
    Workers forked by the pool reset SIGTERM/SIGINT to their default
    disposition, so a daemon's drain/seal handlers never run — and never
    touch the journal — inside a child. *)

val pool_submit :
  'a pool ->
  id:string ->
  (emit -> ('a, Minflo_robust.Diag.error) result) ->
  unit
(** Enqueue a task; it starts on a later {!pool_step} when a slot frees
    up. Ids are the caller's concern — submitting a duplicate id yields
    two independent tasks. *)

val pool_step : 'a pool -> (string * 'a outcome) list
(** One non-blocking scheduling round; returns tasks that reached a final
    outcome during this call, in completion order. Call it regularly
    (e.g. on every [select] timeout): timeout enforcement and retry
    backoff both advance only inside [pool_step]. *)

val pool_cancel :
  'a pool -> string -> [ `Cancelled_pending | `Killed_running | `Not_found ]
(** Cancel a task by id. A task still queued (or awaiting a retry slot)
    is silently dropped and never reported by {!pool_step}. A running
    task's worker is SIGKILLed; the task then finishes — without retry —
    with [Error (Job_crashed {detail = "cancelled"})] on a later
    {!pool_step}. *)

val pool_running_count : 'a pool -> int
val pool_queued_count : 'a pool -> int
(** Queued = submitted-but-unstarted plus retries awaiting backoff. *)

val pool_load : 'a pool -> int
(** [pool_running_count + pool_queued_count]. *)

val pool_idle : 'a pool -> bool
(** [pool_load = 0]: every submitted task has reached a final outcome. *)
