module Diag = Minflo_robust.Diag
module Io = Minflo_robust.Io
module Minflotransit = Minflo_sizing.Minflotransit
module Tilos = Minflo_sizing.Tilos
module Bench_format = Minflo_netlist.Bench_format

type t = {
  circuit : string;
  circuit_hash : int64;
  target : float;
  solver : string;
  fault_seed : int option;
  snapshot : Minflotransit.snapshot;
  tilos : Tilos.result;
  budget_iterations : int;
  budget_pivots : int;
  budget_elapsed : float;
}

let version = 1

let magic = "minflo-checkpoint"

(* ---------- circuit hashing ---------- *)

(* FNV-1a 64-bit over the canonical .bench rendering: cheap, stable across
   processes (unlike Hashtbl.hash on boxed data), and any structural edit
   to the netlist changes the text. Shared with the model cache so a
   checkpoint's circuit binding and the cache key agree by construction. *)
let hash_netlist = Minflo_tech.Model_cache.hash_netlist

(* ---------- rendering ---------- *)

(* %h renders floats as C99 hex literals: bit-exact through
   float_of_string, which is what makes resume bit-identical. The one gap
   is nan: %h collapses every nan to the three bytes "nan", losing sign
   and payload, so nans are spelled "nan:<bits>" and parsed back
   bit-for-bit. Infinities round-trip through %h as written. *)
let hex_float f =
  if Float.is_nan f then Printf.sprintf "nan:%016Lx" (Int64.bits_of_float f)
  else Printf.sprintf "%h" f

let parse_hex_float s =
  if String.length s > 4 && String.sub s 0 4 = "nan:" then
    Option.map Int64.float_of_bits
      (Int64.of_string_opt ("0x" ^ String.sub s 4 (String.length s - 4)))
  else float_of_string_opt s

let render ck =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let floats a =
    String.concat " " (Array.to_list (Array.map hex_float a))
  in
  line "%s %d" magic version;
  line "circuit %s" ck.circuit;
  line "circuit-hash %016Lx" ck.circuit_hash;
  line "target %s" (hex_float ck.target);
  line "solver %s" ck.solver;
  line "fault-seed %s"
    (match ck.fault_seed with Some s -> string_of_int s | None -> "-");
  let s = ck.snapshot in
  line "iter %d" s.Minflotransit.snap_iter;
  line "eta %s" (hex_float s.snap_eta);
  line "area %s" (hex_float s.snap_area);
  line "osc-area %s" (hex_float s.snap_osc_area);
  line "osc-repeats %d" s.snap_osc_repeats;
  line "solver-used %s"
    (match s.snap_solver with Some name -> name | None -> "-");
  line "budget-iterations %d" ck.budget_iterations;
  line "budget-pivots %d" ck.budget_pivots;
  line "budget-elapsed %s" (hex_float ck.budget_elapsed);
  line "tilos-met %b" ck.tilos.Tilos.met;
  line "tilos-bumps %d" ck.tilos.bumps;
  line "tilos-cp %s" (hex_float ck.tilos.final_cp);
  line "tilos-area %s" (hex_float ck.tilos.area);
  line "sizes %d %s" (Array.length s.snap_sizes) (floats s.snap_sizes);
  line "tilos-sizes %d %s" (Array.length ck.tilos.sizes) (floats ck.tilos.sizes);
  line "end";
  Buffer.contents b

(* ---------- atomic save ---------- *)

(* write-tmp + fsync + rename + dir-fsync, via the instrumented layer: a
   torn checkpoint can never shadow a good one, and the io.* fault sites
   (ENOSPC, torn rename, crash boundaries) apply to every save *)
let save path ck = Io.atomic_replace path (render ck)

(* ---------- load ---------- *)

let invalid file reason = Error (Diag.Checkpoint_invalid { file; reason })

let load path =
  match
    Result.map
      (fun content ->
        (* render terminates every line with '\n'; drop the trailing empty
           segment so a well-formed file parses to exactly its lines *)
        match List.rev (String.split_on_char '\n' content) with
        | "" :: rest -> List.rev rest
        | lines -> List.rev lines)
      (Io.read_file path)
  with
  | Error e -> Error e
  | Ok [] -> invalid path "empty file"
  | Ok (header :: rest) -> (
    let fields = Hashtbl.create 32 in
    List.iter
      (fun l ->
        match String.index_opt l ' ' with
        | Some i ->
          Hashtbl.replace fields (String.sub l 0 i)
            (String.sub l (i + 1) (String.length l - i - 1))
        | None -> Hashtbl.replace fields l "")
      rest;
    let field k =
      match Hashtbl.find_opt fields k with
      | Some v -> Ok v
      | None -> invalid path (Printf.sprintf "missing field %S" k)
    in
    let ( let* ) = Result.bind in
    let num kind conv k =
      let* v = field k in
      match conv v with
      | Some x -> Ok x
      | None -> invalid path (Printf.sprintf "field %S is not %s: %S" k kind v)
    in
    let int_field = num "an integer" int_of_string_opt in
    let float_field = num "a float" parse_hex_float in
    let floats_field k =
      let* v = field k in
      match String.split_on_char ' ' v |> List.filter (fun s -> s <> "") with
      | [] -> invalid path (Printf.sprintf "field %S is empty" k)
      | n :: xs -> (
        match int_of_string_opt n with
        | None -> invalid path (Printf.sprintf "field %S has no length" k)
        | Some n ->
          let parsed = List.filter_map parse_hex_float xs in
          if List.length parsed <> n || List.length xs <> n then
            invalid path
              (Printf.sprintf "field %S: expected %d values" k n)
          else Ok (Array.of_list parsed))
    in
    match String.split_on_char ' ' header with
    | [ m; v ] when m = magic -> (
      match int_of_string_opt v with
      | Some v when v = version ->
        if not (Hashtbl.mem fields "end") then
          invalid path "truncated (no end marker)"
        else
          let* circuit = field "circuit" in
          let* hash_hex = field "circuit-hash" in
          let* circuit_hash =
            match Int64.of_string_opt ("0x" ^ hash_hex) with
            | Some h -> Ok h
            | None -> invalid path "malformed circuit-hash"
          in
          let* target = float_field "target" in
          let* solver = field "solver" in
          let* fault_seed_s = field "fault-seed" in
          let* fault_seed =
            if fault_seed_s = "-" then Ok None
            else
              match int_of_string_opt fault_seed_s with
              | Some s -> Ok (Some s)
              | None -> invalid path "malformed fault-seed"
          in
          let* snap_iter = int_field "iter" in
          let* snap_eta = float_field "eta" in
          let* snap_area = float_field "area" in
          let* snap_osc_area = float_field "osc-area" in
          let* snap_osc_repeats = int_field "osc-repeats" in
          let* solver_used = field "solver-used" in
          let* budget_iterations = int_field "budget-iterations" in
          let* budget_pivots = int_field "budget-pivots" in
          let* budget_elapsed = float_field "budget-elapsed" in
          let* tilos_met = field "tilos-met" in
          let* tilos_met =
            match bool_of_string_opt tilos_met with
            | Some b -> Ok b
            | None -> invalid path "malformed tilos-met"
          in
          let* tilos_bumps = int_field "tilos-bumps" in
          let* tilos_cp = float_field "tilos-cp" in
          let* tilos_area = float_field "tilos-area" in
          let* snap_sizes = floats_field "sizes" in
          let* tilos_sizes = floats_field "tilos-sizes" in
          Ok
            { circuit;
              circuit_hash;
              target;
              solver;
              fault_seed;
              snapshot =
                { Minflotransit.snap_iter;
                  snap_sizes;
                  snap_area;
                  snap_eta;
                  snap_osc_area;
                  snap_osc_repeats;
                  snap_solver =
                    (if solver_used = "-" then None else Some solver_used) };
              tilos =
                { Tilos.sizes = tilos_sizes;
                  met = tilos_met;
                  bumps = tilos_bumps;
                  final_cp = tilos_cp;
                  area = tilos_area };
              budget_iterations;
              budget_pivots;
              budget_elapsed }
      | Some v ->
        invalid path
          (Printf.sprintf "format version %d (this build reads %d)" v version)
      | None -> invalid path "malformed version")
    | _ -> invalid path "not a minflo checkpoint (bad magic)")

let validate ~file ck ~circuit_hash ~target ~solver =
  if ck.circuit_hash <> circuit_hash then
    Error
      (Diag.Checkpoint_invalid
         { file;
           reason =
             Printf.sprintf
               "circuit hash mismatch: checkpoint %016Lx, run %016Lx — the \
                circuit changed since the checkpoint was written"
               ck.circuit_hash circuit_hash })
  else if Int64.bits_of_float ck.target <> Int64.bits_of_float target then
    Error
      (Diag.Checkpoint_invalid
         { file;
           reason =
             Printf.sprintf "target mismatch: checkpoint %g, run %g" ck.target
               target })
  else if ck.solver <> solver then
    Error
      (Diag.Checkpoint_invalid
         { file;
           reason =
             Printf.sprintf "solver mismatch: checkpoint %s, run %s" ck.solver
               solver })
  else Ok ()
