(** Cross-solver differential verification of sizing jobs.

    The flow substrate ships three structurally independent MCF solvers;
    the paper's evaluation only ever exercises one at a time. Differential
    mode runs a job twice — once with its own solver, once with an
    independent counterpart — and compares the final areas: agreement
    within tolerance is strong evidence neither solver silently corrupted
    the run, and disagreement beyond it becomes a typed
    {!Minflo_robust.Diag.Differential_mismatch} diagnostic with a stable
    code that tests, scripts and the journal can key on.

    The comparison is on {e final area}, not intermediate LP objectives:
    exact solvers may pick different optimal bases (degenerate ties), so
    iterates can differ while the converged areas agree tightly. *)

val counterpart : Job.solver -> Job.solver
(** The independent solver to cross-check against: [`Ssp] for runs whose
    primary path is the network simplex ([`Simplex], [`Auto]) and for
    [`Bellman_ford]; [`Simplex] for [`Ssp]. *)

val default_tolerance : float
(** Relative area tolerance (0.02): generous enough for tie-breaking
    divergence between exact solvers, tight enough to flag a corrupted
    run (a poisoned solver typically degrades the area by far more). *)

val compare_outcomes :
  tolerance:float ->
  job_id:string ->
  a:Job.outcome ->
  b:Job.outcome ->
  (unit, Minflo_robust.Diag.error) result
(** [Error (Differential_mismatch _)] when the relative area gap exceeds
    [tolerance] or the two legs disagree on whether the target was met. *)
