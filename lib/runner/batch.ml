module Diag = Minflo_robust.Diag
module Budget = Minflo_robust.Budget
module Tech = Minflo_tech.Tech
module Tilos = Minflo_sizing.Tilos
module Minflotransit = Minflo_sizing.Minflotransit
module Sweep = Minflo_sizing.Sweep

type config = {
  checkpoint_dir : string option;
  resume : bool;
  supervise : Supervisor.config;
  differential : bool;
  diff_tolerance : float;
  engine : Minflotransit.options;
  fault_seed : int option;
  make_fault : Job.t -> Minflo_robust.Fault.t option;
  preflight : bool;
}

let default_config =
  { checkpoint_dir = None;
    resume = false;
    supervise = Supervisor.default_config;
    differential = false;
    diff_tolerance = Differential.default_tolerance;
    engine = Minflotransit.default_options;
    fault_seed = None;
    make_fault = (fun _ -> None);
    preflight = true }

type job_report = {
  job : Job.t;
  outcome : (Job.outcome, Diag.error) result option;
  attempts : int;
  quarantined : bool;
  differential : (unit, Diag.error) result option;
}

type summary = {
  reports : job_report list;
  ok : int;
  failed : int;
  skipped : int;
  mismatches : int;
}

let rec mkdirs dir =
  if Sys.file_exists dir then
    if Sys.is_directory dir then Ok ()
    else Error (Diag.Io_error { file = dir; msg = "exists and is not a directory" })
  else
    match mkdirs (Filename.dirname dir) with
    | Error _ as e -> e
    | Ok () -> (
      try
        Unix.mkdir dir 0o755;
        Ok ()
      with
      | Unix.Unix_error (Unix.EEXIST, _, _) -> Ok ()
      | Unix.Unix_error (e, _, _) ->
        Error (Diag.Io_error { file = dir; msg = Unix.error_message e }))

let checkpoint_path cfg job =
  Option.map
    (fun dir -> Filename.concat dir (Job.file_slug job ^ ".ckpt"))
    cfg.checkpoint_dir

(* ---------- one job, in the calling process ---------- *)

let run_job ?(emit : Supervisor.emit option) ?(exhausted_ok = false) cfg
    (job : Job.t) : (Job.outcome, Diag.error) result =
  let emit_event ?fields name =
    match emit with Some e -> e ?fields name | None -> ()
  in
  let perf0 = Minflo_robust.Perf.snapshot () in
  let emit_perf () =
    let spent = Minflo_robust.Perf.(diff perf0 (snapshot ())) in
    emit_event
      ~fields:
        (List.map
           (fun (k, v) -> Journal.field_int k v)
           (Minflo_robust.Perf.to_fields spent))
      "job-perf"
  in
  let result =
  match Job.load_circuit job.circuit with
  | Error _ as e -> e
  | Ok nl -> (
    let model = Minflo_tech.Model_cache.model ~tech:Tech.default_130nm nl in
    let d0 = Sweep.dmin model in
    let a0 = Sweep.min_area model in
    let target = job.factor *. d0 in
    let hash = Checkpoint.hash_netlist nl in
    let solver_name = Job.solver_name job.solver in
    let options = { cfg.engine with Minflotransit.solver = job.solver } in
    let ckpt = checkpoint_path cfg job in
    let fault = cfg.make_fault job in
    let save_checkpoint budget tilos snap =
      emit_event
        ~fields:
          [ Journal.field_int "iter" snap.Minflotransit.snap_iter;
            Journal.field_float "area" snap.Minflotransit.snap_area;
            Journal.field_float "eta" snap.Minflotransit.snap_eta ]
        "job-checkpoint";
      match ckpt with
      | None -> ()
      | Some path -> (
        (* a failed checkpoint write must not kill a healthy run; the disk
           still has the last good one thanks to atomic replace — but the
           failure is journaled so a later resume-from-stale surprise is
           explicable *)
        match
          (Checkpoint.save path
             { Checkpoint.circuit = job.circuit;
               circuit_hash = hash;
               target;
               solver = solver_name;
               fault_seed = cfg.fault_seed;
               snapshot = snap;
               tilos;
               budget_iterations = Budget.iterations budget;
               budget_pivots = Budget.pivots budget;
               budget_elapsed = Budget.elapsed budget })
        with
        | Ok () -> ()
        | Error e ->
          emit_event
            ~fields:
              [ Journal.field_str "code" (Diag.error_code e);
                Journal.field_str "detail" (Diag.to_string e) ]
            "job-checkpoint-failed")
    in
    let finish ~resumed (r : Minflotransit.result) =
      (* [exhausted_ok]: a serving parent would rather have the best
         feasible sizing found before the budget tripped than a bare
         error — the engine guarantees every iterate is feasible, so if
         the seed met the target the exhausted result still does. *)
      if r.budget_exhausted && not (exhausted_ok && r.met) then
        (* keep the checkpoint: --resume with a larger budget continues *)
        match r.stop with
        | Minflotransit.Stop_budget e -> Error e
        | _ ->
          Error
            (Diag.Budget_exhausted
               { resource = "unknown"; spent = 0.0; limit = 0.0 })
      else begin
        (match ckpt with
        | Some p when not r.budget_exhausted -> (
          try Sys.remove p with Sys_error _ -> ())
        | _ -> ());
        Ok
          { Job.job;
            area = r.area;
            area_ratio = r.area /. a0;
            cp = r.cp;
            target;
            met = r.met;
            iterations = r.iterations;
            saving_pct = r.area_saving_pct;
            stop = Minflotransit.stop_reason_to_string r.stop;
            resumed;
            perf = Minflo_robust.Perf.(diff perf0 (snapshot ())) }
      end
    in
    let resume_state =
      if not cfg.resume then Ok None
      else
        match ckpt with
        | Some path when Sys.file_exists path -> (
          match Checkpoint.load path with
          | Error _ as e -> e
          | Ok ck -> (
            match
              Checkpoint.validate ~file:path ck ~circuit_hash:hash ~target
                ~solver:solver_name
            with
            | Error _ as e -> e
            | Ok () -> Ok (Some ck)))
        | _ -> Ok None
    in
    match resume_state with
    | Error _ as e -> e
    | Ok (Some ck) ->
      let budget =
        Budget.resume options.limits ~elapsed:ck.budget_elapsed
          ~iterations:ck.budget_iterations ~pivots:ck.budget_pivots
      in
      finish ~resumed:true
        (Minflotransit.refine_with ?fault
           ~on_iteration:(save_checkpoint budget ck.tilos)
           ~resume:ck.snapshot ~budget ~options model ~target
           ~init:ck.tilos.sizes ~tilos:ck.tilos)
    | Ok None -> (
      let budget = Budget.start options.limits in
      let tilos = Tilos.size ~bump:options.tilos_bump ~budget model ~target in
      match Budget.check budget with
      | Some e -> Error e (* tripped inside TILOS: nothing to checkpoint *)
      | None ->
        if not tilos.met then
          Error (Diag.Unmet_target { target; achieved = tilos.final_cp })
        else
          finish ~resumed:false
            (Minflotransit.refine_with ?fault
               ~on_iteration:(save_checkpoint budget tilos)
               ~budget ~options model ~target ~init:tilos.sizes ~tilos)))
  in
  emit_perf ();
  result

(* ---------- the batch ---------- *)

let journal_path dir = Filename.concat dir "journal.jsonl"

let run ?(config = default_config) jobs =
  let journal =
    match config.checkpoint_dir with
    | None -> Ok None
    | Some dir -> (
      match mkdirs dir with
      | Error _ as e -> e
      | Ok () -> (
        match Journal.open_append (journal_path dir) with
        | Error _ as e -> e
        | Ok j -> Ok (Some j)))
  in
  match journal with
  | Error e -> Error e
  | Ok journal ->
    (* Seal on SIGTERM/SIGINT: a batch killed by an operator (or a CI
       timeout) must leave a journal that says so — one [run-interrupted]
       event, then a clean close — instead of just stopping mid-file.
       Checkpoints on disk stay valid, so [--resume] picks up from here.
       Workers forked by the supervisor reset these handlers to the
       default disposition, so only the journal-owning parent ever
       seals. *)
    let restore_signals =
      match journal with
      | None -> fun () -> ()
      | Some jr ->
        let seal name code _ =
          Journal.event jr
            ~fields:[ Journal.field_str "signal" name ]
            "run-interrupted";
          Journal.close jr;
          exit code
        in
        let old =
          List.filter_map
            (fun (sg, name, code) ->
              try
                Some (sg, Sys.signal sg (Sys.Signal_handle (seal name code)))
              with Invalid_argument _ | Sys_error _ -> None)
            [ (Sys.sigterm, "SIGTERM", 143); (Sys.sigint, "SIGINT", 130) ]
        in
        fun () ->
          List.iter
            (fun (sg, behavior) ->
              try Sys.set_signal sg behavior
              with Invalid_argument _ | Sys_error _ -> ())
            old
    in
    let done_areas =
      match (config.resume, config.checkpoint_dir) with
      | true, Some dir -> Journal.completed (journal_path dir)
      | _ -> Hashtbl.create 1
    in
    let to_run =
      List.filter (fun j -> not (Hashtbl.mem done_areas (Job.id j))) jobs
    in
    (match journal with
    | Some jr ->
      Journal.event jr
        ~fields:
          [ Journal.field_int "jobs" (List.length jobs);
            Journal.field_int "skipped" (List.length jobs - List.length to_run);
            Journal.field_bool "resume" config.resume;
            Journal.field_bool "differential" config.differential ]
        "batch-start"
    | None -> ());
    (* pre-flight lint gate: a parse or lint error is structural — the
       circuit will fail identically on every attempt — so such jobs are
       quarantined here, before any process is forked, with no retries and
       no backoff. One check per distinct circuit spec, not per job. *)
    let lint_verdicts = Hashtbl.create 8 in
    let lint_error spec =
      match Hashtbl.find_opt lint_verdicts spec with
      | Some v -> v
      | None ->
        let v =
          if not config.preflight then None
          else
            match Job.load_raw spec with
            | Error e -> Some e
            | Ok raw -> (
              let findings = Minflo_lint.Lint.check raw in
              match
                List.find_opt
                  (fun (f : Minflo_lint.Finding.t) ->
                    f.rule.severity = Minflo_lint.Rule.Error)
                  findings
              with
              | Some f -> Some (Minflo_lint.Finding.to_diag f)
              | None -> None)
        in
        Hashtbl.replace lint_verdicts spec v;
        v
    in
    let gated, to_run =
      List.partition (fun j -> lint_error j.Job.circuit <> None) to_run
    in
    let outcome_by_id = Hashtbl.create 16 in
    List.iter
      (fun j ->
        let e = Option.get (lint_error j.Job.circuit) in
        let id = Job.id j in
        (match journal with
        | Some jr -> Journal.event jr ~job:id ~error:e "job-lint-quarantined"
        | None -> ());
        Hashtbl.replace outcome_by_id id
          { Supervisor.verdict = Error e; attempts = 0; quarantined = true })
      gated;
    (* interval-bound gate: a delay target below the circuit's static
       floor (MF201) fails identically under every solver, so those jobs
       are quarantined with a witness path instead of burning attempts.
       One model build per distinct circuit; one float compare per job.
       The model/dmin recipe must mirror [run_job]'s exactly, or the gate
       would judge a different target than the job would run. *)
    let bounds_by_spec = Hashtbl.create 8 in
    let bounds_error (j : Job.t) =
      if not config.preflight then None
      else begin
        let per_circuit =
          match Hashtbl.find_opt bounds_by_spec j.Job.circuit with
          | Some v -> v
          | None ->
            let v =
              match Job.load_circuit j.Job.circuit with
              | Error _ -> None (* already quarantined by the lint gate *)
              | Ok nl ->
                let model =
                  Minflo_tech.Model_cache.model ~tech:Tech.default_130nm nl
                in
                Some (model, Sweep.dmin model, Minflo_lint.Bounds.compute model)
            in
            Hashtbl.replace bounds_by_spec j.Job.circuit v;
            v
        in
        match per_circuit with
        | None -> None
        | Some (model, dmin, b) ->
          Minflo_lint.Bounds.infeasible_target_error model b
            ~target:(j.Job.factor *. dmin)
      end
    in
    let gated_bounds, to_run =
      List.partition (fun j -> bounds_error j <> None) to_run
    in
    List.iter
      (fun j ->
        let e = Option.get (bounds_error j) in
        let id = Job.id j in
        (match journal with
        | Some jr -> Journal.event jr ~job:id ~error:e "job-bounds-quarantined"
        | None -> ());
        Hashtbl.replace outcome_by_id id
          { Supervisor.verdict = Error e; attempts = 0; quarantined = true })
      gated_bounds;
    let on_done id (o : Job.outcome Supervisor.outcome) =
      match (o.Supervisor.verdict, journal) with
      | Ok oc, Some jr ->
        Journal.event jr ~job:id
          ~fields:
            [ Journal.field_float "area" oc.Job.area;
              Journal.field_float "area_ratio" oc.Job.area_ratio;
              Journal.field_bool "met" oc.Job.met;
              Journal.field_int "iterations" oc.Job.iterations;
              Journal.field_bool "resumed" oc.Job.resumed ]
          "job-ok"
      | _ -> ()
    in
    let outcomes =
      Supervisor.run_all_tasks ~config:config.supervise ?journal ~on_done
        (List.map (fun j -> (Job.id j, fun emit -> run_job ~emit config j)) to_run)
    in
    List.iter (fun (id, o) -> Hashtbl.replace outcome_by_id id o) outcomes;
    (* differential legs: re-run each successful job under an independent
       solver. No checkpoints for these — they are verification only, and a
       secondary leg must never collide with a primary job's state. *)
    let diff_by_id = Hashtbl.create 16 in
    if config.differential then begin
      let succeeded =
        List.filter_map
          (fun j ->
            let id = Job.id j in
            match Hashtbl.find_opt outcome_by_id id with
            | Some { Supervisor.verdict = Ok oc; _ } -> Some (j, id, oc)
            | _ -> None)
          to_run
      in
      let diff_cfg =
        { config with
          checkpoint_dir = None;
          resume = false;
          differential = false }
      in
      let secondary =
        Supervisor.run_all_tasks ~config:config.supervise ?journal
          (List.map
             (fun (j, id, _) ->
               let sj = { j with Job.solver = Differential.counterpart j.Job.solver } in
               ("diff:" ^ id, fun emit -> run_job ~emit diff_cfg sj))
             succeeded)
      in
      List.iter2
        (fun (_, id, primary) (_, so) ->
          let verdict =
            match so.Supervisor.verdict with
            | Error _ as e -> e
            | Ok b ->
              Differential.compare_outcomes ~tolerance:config.diff_tolerance
                ~job_id:id ~a:primary ~b
          in
          (match (verdict, journal) with
          | Ok (), Some jr -> Journal.event jr ~job:id "diff-ok"
          | Error e, Some jr -> Journal.event jr ~job:id ~error:e "diff-fail"
          | _, None -> ());
          Hashtbl.replace diff_by_id id verdict)
        succeeded secondary
    end;
    let reports =
      List.map
        (fun j ->
          let id = Job.id j in
          match Hashtbl.find_opt outcome_by_id id with
          | None ->
            { job = j;
              outcome = None;
              attempts = 0;
              quarantined = false;
              differential = None }
          | Some o ->
            { job = j;
              outcome = Some o.Supervisor.verdict;
              attempts = o.Supervisor.attempts;
              quarantined = o.Supervisor.quarantined;
              differential = Hashtbl.find_opt diff_by_id id })
        jobs
    in
    let count p = List.length (List.filter p reports) in
    let summary =
      { reports;
        ok = count (fun r -> match r.outcome with Some (Ok _) -> true | _ -> false);
        failed =
          count (fun r -> match r.outcome with Some (Error _) -> true | _ -> false);
        skipped = count (fun r -> r.outcome = None);
        mismatches =
          count (fun r ->
              match r.differential with Some (Error _) -> true | _ -> false) }
    in
    (match journal with
    | Some jr ->
      Journal.event jr
        ~fields:
          [ Journal.field_int "ok" summary.ok;
            Journal.field_int "failed" summary.failed;
            Journal.field_int "skipped" summary.skipped;
            Journal.field_int "mismatches" summary.mismatches ]
        "batch-end";
      Journal.close jr
    | None -> ());
    restore_signals ();
    Ok summary
