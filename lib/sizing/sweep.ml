module Delay_model = Minflo_tech.Delay_model
module Sta = Minflo_timing.Sta
module Mono = Minflo_robust.Mono

type point = {
  factor : float;
  target : float;
  tilos_area_ratio : float;
  minflo_area_ratio : float;
  saving_pct : float;
  tilos_met : bool;
  minflo_met : bool;
  iterations : int;
  tilos_seconds : float;
  minflo_extra_seconds : float;
}

let dmin model =
  let x = Delay_model.uniform_sizes model model.Delay_model.min_size in
  Sta.critical_path_only model ~delays:(Delay_model.delays model x)

let min_area model =
  Delay_model.area model (Delay_model.uniform_sizes model model.Delay_model.min_size)

let at_factor ?(options = Minflotransit.default_options) model ~factor =
  let d0 = dmin model in
  let a0 = min_area model in
  let target = factor *. d0 in
  let t0 = Mono.now () in
  let tilos = Tilos.size ~bump:options.tilos_bump model ~target in
  let t1 = Mono.now () in
  let refined =
    if tilos.met then
      Some (Minflotransit.refine_from ~options model ~target ~init:tilos.sizes ~tilos)
    else None
  in
  let t2 = Mono.now () in
  match refined with
  | None ->
    { factor; target;
      tilos_area_ratio = nan;
      minflo_area_ratio = nan;
      saving_pct = nan;
      tilos_met = false;
      minflo_met = false;
      iterations = 0;
      tilos_seconds = t1 -. t0;
      minflo_extra_seconds = 0.0 }
  | Some r ->
    { factor; target;
      tilos_area_ratio = tilos.area /. a0;
      minflo_area_ratio = r.area /. a0;
      saving_pct = r.area_saving_pct;
      tilos_met = true;
      minflo_met = r.met;
      iterations = r.iterations;
      tilos_seconds = t1 -. t0;
      minflo_extra_seconds = t2 -. t1 }

let curve ?options model ~factors =
  List.map (fun factor -> at_factor ?options model ~factor) factors
