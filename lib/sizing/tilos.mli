(** The TILOS baseline [1, 15]: sensitivity-guided greedy upsizing.

    Starting from minimum sizes, repeatedly pick the critical-path vertex
    whose upsizing by the bump factor buys the most local path-delay
    reduction per unit of added area, and bump it — until the target delay
    is met or no critical vertex helps. The paper seeds MINFLOTRANSIT with
    a TILOS solution (bump 1.1) and reports TILOS as the baseline that
    MINFLOTRANSIT's area savings are measured against. *)

type result = {
  sizes : float array;
  met : bool;           (** target delay achieved *)
  bumps : int;          (** upsizing steps taken *)
  final_cp : float;
  area : float;
}

val size :
  ?bump:float (* default 1.1, as in Section 3 *) ->
  ?max_bumps:int ->
  ?budget:Minflo_robust.Budget.t (* each bump ticks it; exhaustion stops the
                                    greedy with the best-so-far sizing *) ->
  ?init:float array (* resume from an existing sizing instead of minimum *) ->
  Minflo_tech.Delay_model.t ->
  target:float ->
  result

val minimum_delay : ?bump:float -> ?max_bumps:int -> Minflo_tech.Delay_model.t -> float
(** The smallest circuit delay TILOS can reach (sizes unbounded greedy):
    used to sanity-check that a delay spec is achievable at all. *)
