(** The D-phase: delay-budget redistribution by min-cost flow (Eq. 10).

    Sizes are held fixed. Slack is materialized as FSDUs by delay balancing,
    then redistributed by an FSDU displacement [r] chosen to maximize
    [sum_i C_i (r(Dmy(i)) - r(i))] — the first-order area decrease — subject
    to per-vertex bounds on the delay change and non-negativity of every
    displaced FSDU. The LP is a difference-constraint system, i.e. the dual
    of a min-cost network flow; it is integerized by scaling (the paper's
    power-of-10 trick) and solved with the network simplex, whose optimal
    node potentials are exactly [r]. *)

type solver = [ `Simplex | `Ssp | `Bellman_ford ]
(** [`Simplex] and [`Ssp] are exact; [`Bellman_ford] is the feasibility
    repair of {!Minflo_flow.Diff_lp.solve} — the last rung of the fallback
    chain, trading optimality of the step for guaranteed progress. *)

val solver_name : solver -> string
(** ["simplex"], ["ssp"], ["bellman-ford"]; also the suffix of the fault
    site ["dphase.<name>"]. *)

type options = {
  eta : float;
      (** trust region: [MAXdD(i) = eta * delay(i)], [MINdD(i)] symmetric
          but floored above the intrinsic delay (Theorem 3's small-step
          requirement). *)
  scale : float;  (** delay integerization factor (units per time unit). *)
  solver : solver;
  balance_mode : [ `Alap | `Asap ];
      (** which balanced configuration seeds the displacement; Theorem 1
          says the optimum is the same, making this a pure ablation knob. *)
  canonical_duals : bool;
      (** replace the solver's optimal duals with
          {!Minflo_flow.Mcf.canonical_potentials} so the step taken is
          independent of solver and starting basis. Off by default (the
          historical behavior); forced on by the engine whenever warm starts
          are enabled, since a warm solve may otherwise land on a different
          vertex of the optimal dual face than a cold one. *)
}

val default_options : options

type outcome = {
  budgets : float array;   (** new per-vertex delay budgets. *)
  delta : float array;     (** [dD_i = budgets_i - delays_i]. *)
  objective : float;       (** predicted first-order area decrease. *)
  lp_objective : int;
      (** the exact optimum of the integerized LP — identical across
          solvers even when integer ties make [objective] differ in the
          last float digits. *)
}

type certificate = {
  problem : Minflo_flow.Mcf.problem;
  solution : Minflo_flow.Mcf.solution;
}
(** The LP-duality evidence behind one D-phase step: the displacement
    min-cost-flow problem and the solution whose potentials became the
    displacement labels. {!Minflo_lint.Audit.check}-able as is; recorded in
    proof-carrying traces and re-verified by [minflo audit-run]. *)

val displacement_problem :
  ?options:options ->
  Minflo_tech.Delay_model.t ->
  sizes:float array ->
  delays:float array ->
  deadline:float ->
  (Minflo_flow.Mcf.problem, Minflo_robust.Diag.error) result
(** The displacement LP of Eq. 10 as its dual min-cost-flow problem, without
    solving it. This is the real-workload substrate for [minflo audit-cert]:
    solve it with any {!Minflo_flow.Mcf} solver and hand problem + solution
    to the certificate auditor. Fails like {!solve} does on an unsafe
    starting point ([Unsafe_timing]). *)

val solve :
  ?options:options ->
  ?budget:Minflo_robust.Budget.t ->
  ?warm:Minflo_flow.Diff_lp.warm ->
  ?fault:Minflo_robust.Fault.t ->
  ?checks:Minflo_robust.Check.t ->
  ?certificate:certificate option ref ->
  Minflo_tech.Delay_model.t ->
  sizes:float array ->
  delays:float array ->
  deadline:float ->
  (outcome, Minflo_robust.Diag.error) result
(** Typed failures: [Unsafe_timing] when the circuit misses the deadline
    going in; [Budget_exhausted] when [budget] trips inside the flow solver;
    [Solver_diverged] when the returned duals violate the LP's own
    constraints (which deterministic solvers only do under fault injection);
    [Internal] for states the theory rules out.

    [fault] is consulted at site ["dphase.<solver>"]: [Fail e] returns
    [Error e] without solving, [Perturb mag] corrupts one dual value of the
    flow solution by [mag * scale] units so the divergence detector (and the
    [checks] oracle) have something real to catch.

    [checks] records the ["dphase.mcf-optimality.<solver>"] and
    ["dphase.fsdu-nonnegative"] invariants instead of trusting the theory
    silently.

    [certificate], when supplied, receives a copy of the flow problem and
    solution actually used (after canonicalization and any [Perturb]
    fault). [`Bellman_ford] produces no certificate — the feasibility
    repair never constructs a flow solution — so the cell is left
    untouched on that rung. *)
