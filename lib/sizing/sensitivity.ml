module Delay_model = Minflo_tech.Delay_model
module Arena = Minflo_timing.Arena

let weights model ~sizes ~delays =
  let n = Delay_model.num_vertices model in
  (* the reverse coefficient index ([loader] rows: the (i, a_ij) with i
     loading j) and the elimination blocks come precomputed from the arena;
     loader rows iterate in the exact order the historical cons-built lists
     did, keeping the float accumulation bit-identical *)
  let arena = Arena.of_model model in
  let diag i =
    let d = delays.(i) -. model.Delay_model.a_self.(i) in
    if d <= 1e-12 then
      invalid_arg
        (Printf.sprintf "Sensitivity.weights: delay at vertex %d not above intrinsic" i);
    d
  in
  let y = Array.make n 0.0 in
  let blocks = Arena.blocks arena in
  (* forward elimination order: y_j needs y_i of upstream references, which
     live in earlier blocks; in-block mutual references iterate locally *)
  Array.iter
    (fun block ->
      let stable = ref false in
      let rounds = ref 0 in
      while (not !stable) && !rounds < 500 do
        stable := true;
        incr rounds;
        Array.iter
          (fun j ->
            let acc = ref model.Delay_model.area_weight.(j) in
            for c = arena.Arena.loader_off.(j)
                to arena.Arena.loader_off.(j + 1) - 1 do
              acc := !acc +. (arena.Arena.loader_a.(c) *. y.(arena.Arena.loader_k.(c)))
            done;
            let ny = !acc /. diag j in
            if abs_float (ny -. y.(j)) > 1e-12 *. (1.0 +. abs_float ny) then begin
              y.(j) <- ny;
              stable := false
            end)
          block
      done)
    blocks;
  Array.init n (fun i -> y.(i) *. sizes.(i))
