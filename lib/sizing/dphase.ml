module Delay_model = Minflo_tech.Delay_model
module Arena = Minflo_timing.Arena
module Balance = Minflo_timing.Balance
module Sta = Minflo_timing.Sta
module Diff_lp = Minflo_flow.Diff_lp
module Mcf = Minflo_flow.Mcf
module Diag = Minflo_robust.Diag
module Budget = Minflo_robust.Budget
module Check = Minflo_robust.Check
module Fault = Minflo_robust.Fault

type solver = [ `Simplex | `Ssp | `Bellman_ford ]

let solver_name = function
  | `Simplex -> "simplex"
  | `Ssp -> "ssp"
  | `Bellman_ford -> "bellman-ford"

type options = {
  eta : float;
  scale : float;
  solver : solver;
  balance_mode : [ `Alap | `Asap ];
  canonical_duals : bool;
}

let default_options =
  { eta = 0.5;
    scale = 1.0e4;
    solver = `Simplex;
    balance_mode = `Alap;
    canonical_duals = false }

type outcome = {
  budgets : float array;
  delta : float array;
  objective : float;
  lp_objective : int;
}

type certificate = { problem : Mcf.problem; solution : Mcf.solution }

(* the displacement LP plus the variable maps needed to read a solution
   back out of its duals *)
type lp_build = {
  lp : Diff_lp.t;
  r : int array;
  rdmy : int array;
  weights : float array;
}

let build_lp ?(options = default_options) model ~sizes ~delays ~deadline =
  let n = Delay_model.num_vertices model in
  let arena = Arena.of_model model in
  let sta = Sta.analyze model ~delays ~deadline in
  if not (Sta.is_safe ~eps:1e-6 sta) then
    Error (Diag.Unsafe_timing { cp = sta.critical_path; deadline })
  else begin
    (* the safety probe IS the analysis the balancer needs — hand it over
       instead of paying a second full sweep per D-phase *)
    let bal =
      Balance.balance ~mode:options.balance_mode ~sta model ~delays ~deadline
    in
    let weights = Sensitivity.weights model ~sizes ~delays in
    (* integerization *)
    let s = options.scale in
    let iw =
      let wmax = Array.fold_left max 1e-30 weights in
      (* supplies are kept small so cost*flow stays far from overflow *)
      let ws = 1.0e3 /. wmax in
      Array.map (fun c -> max 1 (int_of_float (Float.round (c *. ws)))) weights
    in
    (* constraint right-hand sides round DOWN (and never below 0): the
       feasible region only shrinks, so integerization can make the step
       smaller but never lets a budget exceed the true slack *)
    let q x = max 0 (int_of_float (floor (x *. s))) in
    let lp =
      Diff_lp.create ~vars_hint:((2 * n) + 1)
        ~cons_hint:((2 * n) + arena.Arena.m + n)
        ()
    in
    let r = Array.init n (fun _ -> Diff_lp.var lp) in
    let rdmy = Array.init n (fun _ -> Diff_lp.var lp) in
    let ground = Diff_lp.var lp in
    (* trust-region bounds on the per-vertex delay change *)
    for i = 0 to n - 1 do
      let max_dd = options.eta *. delays.(i) in
      let head_room = delays.(i) -. (1.02 *. model.Delay_model.a_self.(i)) -. 1e-9 in
      let min_dd = -.min (options.eta *. delays.(i)) (max 0.0 head_room) in
      (* r(Dmy i) - r(i) <= MAXdD  and  r(i) - r(Dmy i) <= -MINdD *)
      Diff_lp.add_le lp rdmy.(i) r.(i) (q max_dd);
      Diff_lp.add_le lp r.(i) rdmy.(i) (q (-.min_dd));
      Diff_lp.add_objective lp rdmy.(i) iw.(i);
      Diff_lp.add_objective lp r.(i) (-iw.(i))
    done;
    (* causality: displaced FSDUs on real edges stay non-negative *)
    for e = 0 to arena.Arena.m - 1 do
      let i = arena.Arena.edge_src.(e) and j = arena.Arena.edge_dst.(e) in
      (* FSDU_e + r(j) - r(Dmy i) >= 0 *)
      Diff_lp.add_le lp rdmy.(i) r.(j) (q bal.edge_fsdu.(e))
    done;
    (* virtual input edges (ground -> source) and output edges
       (sink -> ground), with ground pinned: Corollary 1 *)
    for i = 0 to n - 1 do
      if Arena.is_source arena i then
        Diff_lp.add_le lp ground r.(i) (q bal.source_fsdu.(i));
      if model.Delay_model.is_sink.(i) then
        Diff_lp.add_le lp rdmy.(i) ground (q bal.sink_fsdu.(i))
    done;
    Ok { lp; r; rdmy; weights }
  end

let displacement_problem ?options model ~sizes ~delays ~deadline =
  Result.map
    (fun b -> Diff_lp.to_problem b.lp)
    (build_lp ?options model ~sizes ~delays ~deadline)

let solve ?(options = default_options) ?budget ?warm ?fault ?checks
    ?certificate model ~sizes ~delays ~deadline =
  match build_lp ~options model ~sizes ~delays ~deadline with
  | Error e -> Error e
  | Ok { lp; r; rdmy; weights } ->
    let n = Delay_model.num_vertices model in
    let s = options.scale in
    let sname = solver_name options.solver in
    let site = "dphase." ^ sname in
    match Option.bind fault (fun f -> Fault.fire f ~site) with
    | Some (Fault.Fail e) -> Error e
    | (None | Some (Fault.Perturb _)) as fired ->
      let perturb =
        match fired with Some (Fault.Perturb m) -> Some m | _ -> None
      in
      let on_solution p (sol : Mcf.solution) =
        (* a Perturb fault pushes one dual value past its trust-region bound:
           exactly the symptom of a solver that stopped short of optimality *)
        (match perturb with
        | Some mag when n > 0 && sol.status = Mcf.Optimal ->
          sol.potential.(rdmy.(0)) <-
            sol.potential.(rdmy.(0)) + max 1 (int_of_float (mag *. s))
        | _ -> ());
        (match checks with
        | Some c when sol.status = Mcf.Optimal ->
          Check.record c ("dphase.mcf-optimality." ^ sname)
            (Result.map_error Diag.to_string (Mcf.check_optimality p sol))
        | _ -> ());
        (* snapshot for the proof-carrying trace: exactly the (possibly
           perturbed) certificate the engine is about to act on. Copied —
           the solver owns and may reuse these arrays. *)
        match certificate with
        | Some cell ->
          cell :=
            Some
              { problem = p;
                solution =
                  { sol with
                    flow = Array.copy sol.flow;
                    potential = Array.copy sol.potential } }
        | None -> ()
      in
      (match
         Diff_lp.solve ~solver:options.solver ?budget ?warm
           ~canonical:options.canonical_duals ~on_solution lp
       with
      | Diff_lp.Infeasible_lp ->
        Error
          (Diag.Internal
             "Dphase: displacement LP infeasible — balanced FSDUs violated (bug)")
      | Diff_lp.Unbounded_lp ->
        Error
          (Diag.Internal
             "Dphase: displacement LP unbounded — trust region missing (bug)")
      | Diff_lp.Aborted_lp ->
        Error
          (match budget with
          | Some b -> (
            match Budget.check b with
            | Some e -> e
            | None ->
              Diag.Budget_exhausted
                { resource = "pivots";
                  spent = float_of_int (Budget.pivots b);
                  limit = float_of_int (Budget.pivots b) })
          | None -> Diag.Internal "Dphase: solver aborted without a budget")
      | Diff_lp.Solution { values; objective = lp_objective } ->
        let assignment = Result.map ignore (Diff_lp.check_assignment lp values) in
        (match checks with
        | Some c -> Check.record c "dphase.fsdu-nonnegative" assignment
        | None -> ());
        (match assignment with
        | Error _ ->
          (* the returned duals violate the very constraints the solver was
             given: it diverged (or was made to look like it did) *)
          Error
            (Diag.Solver_diverged
               { solver = sname;
                 iters =
                   (match budget with Some b -> Budget.pivots b | None -> 0) })
        | Ok () ->
          let delta =
            Array.init n (fun i ->
                float_of_int (values.(rdmy.(i)) - values.(r.(i))) /. s)
          in
          let budgets = Array.init n (fun i -> delays.(i) +. delta.(i)) in
          let objective =
            Array.fold_left ( +. ) 0.0
              (Array.init n (fun i -> weights.(i) *. delta.(i)))
          in
          if not (Float.is_finite objective) then
            Error (Diag.Numeric { what = "dphase.objective"; value = objective })
          else Ok { budgets; delta; objective; lp_objective }))
