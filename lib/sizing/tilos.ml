module Delay_model = Minflo_tech.Delay_model
module Arena = Minflo_timing.Arena
module Sta = Minflo_timing.Sta
module Inc = Minflo_timing.Incremental

type result = {
  sizes : float array;
  met : bool;
  bumps : int;
  final_cp : float;
  area : float;
}

(* Local sensitivity of bumping vertex i: the change in the delay of the
   critical path segment through i — i's own delay drops, the critical
   fanin's delay grows because its load grows — per unit of added area.
   This is the classic TILOS figure of merit.

   Fanins come from the arena's CSR rows — shared with the incremental
   engine, zero per-call allocation, and in exactly [Digraph.pred] order so
   the strict-[>] best-fanin tie-break is unchanged. *)
let sensitivity model eng bump (arena : Arena.t) i =
  let old_xi = Inc.size eng i in
  let new_xi = min (old_xi *. bump) model.Delay_model.max_size in
  if new_xi <= old_xi then neg_infinity
  else begin
    let d_new =
      (* delay of i with the larger size: only the 1/x_i part shrinks.
         Coefficients come from the arena's flat CSR (same row order as
         [a_coeffs], so the float sum is bit-identical). *)
      let acc = ref model.Delay_model.b.(i) in
      for c = arena.Arena.coeff_off.(i) to arena.Arena.coeff_off.(i + 1) - 1 do
        acc := !acc +. (arena.Arena.coeff_a.(c) *. Inc.size eng (arena.Arena.coeff_j.(c)))
      done;
      model.Delay_model.a_self.(i) +. (!acc /. new_xi)
    in
    let own_gain = Inc.delay eng i -. d_new in
    (* critical fanin k: the one realizing AT(i); its delay grows by
       a_ki * (new_xi - old_xi) / x_k *)
    let best = ref (-1) and best_f = ref neg_infinity in
    for c = arena.Arena.fanin_off.(i) to arena.Arena.fanin_off.(i + 1) - 1 do
      let k = arena.Arena.fanin.(c) in
      let f = Inc.finish eng k in
      if f > !best_f then begin
        best_f := f;
        best := k
      end
    done;
    let fanin_penalty =
      if !best < 0 then 0.0
      else begin
        let k = !best in
        let a_ki = ref 0.0 in
        for c = arena.Arena.coeff_off.(k) to arena.Arena.coeff_off.(k + 1) - 1 do
          if arena.Arena.coeff_j.(c) = i then a_ki := !a_ki +. arena.Arena.coeff_a.(c)
        done;
        !a_ki *. (new_xi -. old_xi) /. Inc.size eng k
      end
    in
    let darea = model.Delay_model.area_weight.(i) *. (new_xi -. old_xi) in
    (own_gain -. fanin_penalty) /. darea
  end

let size ?(bump = 1.1) ?(max_bumps = 2_000_000) ?budget ?init model ~target =
  let n = Delay_model.num_vertices model in
  let start =
    match init with
    | None -> Delay_model.uniform_sizes model model.Delay_model.min_size
    | Some x0 ->
      if Array.length x0 <> n then invalid_arg "Tilos.size: wrong init length";
      Array.map
        (fun v -> min model.Delay_model.max_size (max model.Delay_model.min_size v))
        x0
  in
  let eng = Inc.create model ~sizes:start in
  let arena = Arena.of_model model in
  let bumps = ref 0 in
  let finished = ref false in
  let met = ref false in
  while not !finished do
    if Inc.critical_path eng <= target then begin
      met := true;
      finished := true
    end
    else if !bumps >= max_bumps then finished := true
    else if
      match budget with
      | Some b -> not (Minflo_robust.Budget.tick_pivot b)
      | None -> false
    then
      (* run budget exhausted: stop bumping and return the best-so-far
         sizing with [met] reporting honestly *)
      finished := true
    else begin
      (* candidates: vertices on a maximal-finish path, via the incremental
         engine's tight-edge backtrace *)
      let crit = Inc.critical_set ~eps_rel:1e-7 eng in
      let best = ref (-1) and best_s = ref 0.0 in
      List.iter
        (fun i ->
          let s = sensitivity model eng bump arena i in
          if s > !best_s then begin
            best_s := s;
            best := i
          end)
        crit;
      (* The local estimate can be blind when parallel paths tie or loads
         are shared; before giving up, evaluate candidates exactly (trial
         bump, measure total sink violation, roll back) and take the best
         strict decrease — a global merit that still makes progress when
         the max itself is pinned by a tied path. *)
      if !best < 0 then begin
        let base = Inc.total_violation eng ~target in
        let best_v = ref base in
        List.iter
          (fun i ->
            let old_xi = Inc.size eng i in
            let new_xi = min (old_xi *. bump) model.Delay_model.max_size in
            if new_xi > old_xi then begin
              Inc.set_size eng i new_xi;
              let v = Inc.total_violation eng ~target in
              Inc.set_size eng i old_xi;
              if v < !best_v -. 1e-9 then begin
                best_v := v;
                best := i
              end
            end)
          crit
      end;
      if !best < 0 then
        (* no critical vertex improves the path: greedy is stuck *)
        finished := true
      else begin
        Inc.set_size eng !best (min (Inc.size eng !best *. bump) model.Delay_model.max_size);
        Minflo_robust.Perf.tick_bump ();
        incr bumps
      end
    end
  done;
  let x = Inc.sizes eng in
  (* the engine's delays are bit-identical to [Delay_model.delays model x]
     (exact incremental maintenance) — skip the O(E) recompute and take the
     final CP through the cheap arrival-only path *)
  { sizes = x;
    met = !met;
    bumps = !bumps;
    final_cp = Sta.critical_path_only model ~delays:(Inc.all_delays eng);
    area = Delay_model.area model x }

let minimum_delay ?(bump = 1.1) ?(max_bumps = 2_000_000) model =
  (* drive the target to zero: TILOS stops when no bump helps; the CP
     reached is (greedily) minimal *)
  (size ~bump ~max_bumps model ~target:0.0).final_cp
