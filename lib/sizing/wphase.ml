module Delay_model = Minflo_tech.Delay_model
module Arena = Minflo_timing.Arena
module Diag = Minflo_robust.Diag

type result = {
  sizes : float array;
  feasible : bool;
  violated : int list;
  sweeps : int;
}

let solve ?fault model ~budgets =
  let n = Delay_model.num_vertices model in
  match Option.bind fault (fun f -> Minflo_robust.Fault.fire f ~site:"wphase") with
  | Some (Minflo_robust.Fault.Fail e) -> Error e
  | (Some (Minflo_robust.Fault.Perturb _) | None) as fired ->
  let perturb =
    match fired with Some (Minflo_robust.Fault.Perturb m) -> Some m | _ -> None
  in
  if Array.length budgets <> n then
    Error (Diag.Internal "Wphase: wrong budget vector length")
  else begin
    let bad = ref None in
    Array.iteri
      (fun i d ->
        if d <= model.Delay_model.a_self.(i) +. 1e-12 && !bad = None then
          bad :=
            Some
              (Diag.Infeasible_budget
                 { vertex = i;
                   label = model.Delay_model.labels.(i);
                   budget = d;
                   intrinsic = model.Delay_model.a_self.(i) }))
      budgets;
    match !bad with
    | Some e -> Error e
    | None ->
      let arena = Arena.of_model model in
      let blocks = Arena.blocks arena in
      let x = Array.make n model.Delay_model.min_size in
      let required i =
        let acc = ref model.Delay_model.b.(i) in
        for c = arena.Arena.coeff_off.(i) to arena.Arena.coeff_off.(i + 1) - 1
        do
          acc := !acc +. (arena.Arena.coeff_a.(c) *. x.(arena.Arena.coeff_j.(c)))
        done;
        !acc /. (budgets.(i) -. model.Delay_model.a_self.(i))
      in
      let tol = 1e-9 in
      let sweeps = ref 0 in
      (* one pass over the blocks in reverse elimination order: every x_j a
         vertex depends on lives in a later block and is already final.
         Within a block only the changed cone re-propagates: a vertex is
         re-evaluated only while [dirty] — set when one of the in-block
         sizes it loads moved since its last evaluation. Skipped
         evaluations are provably no-ops ([required i] never reads [x.(i)];
         unchanged inputs reproduce the unchanged quotient), so the sizes
         are bit-identical to the historical evaluate-everything fixpoint
         while the work is O(changed) per round. A single-vertex block —
         every vertex, under gate sizing — needs exactly one evaluation. *)
      let dirty = Array.make n false in
      let member = Array.make n (-1) in
      for bi = Array.length blocks - 1 downto 0 do
        let block = blocks.(bi) in
        if Array.length block = 1 then begin
          let i = block.(0) in
          let r = required i in
          let nx =
            min model.Delay_model.max_size (max model.Delay_model.min_size r)
          in
          if nx > x.(i) +. tol then x.(i) <- nx;
          sweeps := max !sweeps 1
        end
        else begin
          Array.iter
            (fun i ->
              member.(i) <- bi;
              dirty.(i) <- true)
            block;
          let local = ref true in
          let rounds = ref 0 in
          while !local && !rounds < 500 do
            local := false;
            incr rounds;
            Array.iter
              (fun i ->
                if dirty.(i) then begin
                  dirty.(i) <- false;
                  let r = required i in
                  let nx =
                    min model.Delay_model.max_size
                      (max model.Delay_model.min_size r)
                  in
                  if nx > x.(i) +. tol then begin
                    x.(i) <- nx;
                    local := true;
                    for c = arena.Arena.loader_off.(i)
                        to arena.Arena.loader_off.(i + 1) - 1 do
                      let k = arena.Arena.loader_k.(c) in
                      if member.(k) = bi then dirty.(k) <- true
                    done
                  end
                end)
              block
          done;
          sweeps := max !sweeps !rounds
        end
      done;
      let violated = ref [] in
      Array.iteri
        (fun i _ ->
          if required i > x.(i) +. 1e-6 then violated := i :: !violated)
        x;
      (* a Perturb fault silently shrinks one size AFTER the feasibility
         verdict — the stale verdict is exactly what the post-phase
         invariant checks exist to catch *)
      (match perturb with
      | Some mag when n > 0 ->
        x.(0) <- max model.Delay_model.min_size (x.(0) /. (1.0 +. abs_float mag))
      | _ -> ());
      Ok { sizes = x; feasible = !violated = []; violated = List.rev !violated; sweeps = !sweeps }
  end
