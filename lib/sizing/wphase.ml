module Delay_model = Minflo_tech.Delay_model
module Diag = Minflo_robust.Diag

type result = {
  sizes : float array;
  feasible : bool;
  violated : int list;
  sweeps : int;
}

let solve ?fault model ~budgets =
  let n = Delay_model.num_vertices model in
  match Option.bind fault (fun f -> Minflo_robust.Fault.fire f ~site:"wphase") with
  | Some (Minflo_robust.Fault.Fail e) -> Error e
  | (Some (Minflo_robust.Fault.Perturb _) | None) as fired ->
  let perturb =
    match fired with Some (Minflo_robust.Fault.Perturb m) -> Some m | _ -> None
  in
  if Array.length budgets <> n then
    Error (Diag.Internal "Wphase: wrong budget vector length")
  else begin
    let bad = ref None in
    Array.iteri
      (fun i d ->
        if d <= model.Delay_model.a_self.(i) +. 1e-12 && !bad = None then
          bad :=
            Some
              (Diag.Infeasible_budget
                 { vertex = i;
                   label = model.Delay_model.labels.(i);
                   budget = d;
                   intrinsic = model.Delay_model.a_self.(i) }))
      budgets;
    match !bad with
    | Some e -> Error e
    | None ->
      let blocks = Delay_model.elimination_blocks model in
      let x = Array.make n model.Delay_model.min_size in
      let required i =
        let acc = ref model.Delay_model.b.(i) in
        Array.iter
          (fun (j, a) -> acc := !acc +. (a *. x.(j)))
          model.Delay_model.a_coeffs.(i);
        !acc /. (budgets.(i) -. model.Delay_model.a_self.(i))
      in
      let tol = 1e-9 in
      let sweeps = ref 0 in
      (* one pass over the blocks in reverse elimination order: every x_j a
         vertex depends on lives in a later block and is already final;
         within a block the inner loop iterates the local fixpoint (needed
         only for parallel transistor networks) *)
      for bi = Array.length blocks - 1 downto 0 do
        let block = blocks.(bi) in
        let local = ref true in
        let rounds = ref 0 in
        while !local && !rounds < 500 do
          local := false;
          incr rounds;
          Array.iter
            (fun i ->
              let r = required i in
              let nx =
                min model.Delay_model.max_size (max model.Delay_model.min_size r)
              in
              if nx > x.(i) +. tol then begin
                x.(i) <- nx;
                local := true
              end)
            block
        done;
        sweeps := max !sweeps !rounds
      done;
      let violated = ref [] in
      Array.iteri
        (fun i _ ->
          if required i > x.(i) +. 1e-6 then violated := i :: !violated)
        x;
      (* a Perturb fault silently shrinks one size AFTER the feasibility
         verdict — the stale verdict is exactly what the post-phase
         invariant checks exist to catch *)
      (match perturb with
      | Some mag when n > 0 ->
        x.(0) <- max model.Delay_model.min_size (x.(0) /. (1.0 +. abs_float mag))
      | _ -> ());
      Ok { sizes = x; feasible = !violated = []; violated = List.rev !violated; sweeps = !sweeps }
  end
