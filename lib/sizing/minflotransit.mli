(** MINFLOTRANSIT: the complete iterative-relaxation sizing tool
    (Section 2.4).

    1. Seed with a TILOS solution meeting the delay target.
    2. Alternate D-phase (redistribute delay budgets by min-cost flow) and
       W-phase (minimum sizes for those budgets) — each iteration is
       feasible and the area is non-increasing.
    3. Stop when the area improvement becomes negligible.

    The trust region [eta] bounds each D-phase's delay changes (Theorem 3's
    small-step condition); when an iteration fails to improve, [eta]
    shrinks geometrically before giving up.

    {b Resilience.} The driver is hardened through [minflo_robust]: run
    budgets ({!options.limits}) bound wall clock, D/W iterations and flow
    pivots — on exhaustion the best feasible sizing so far is returned,
    flagged, never an exception; the [`Auto] solver degrades
    simplex → SSP → Bellman-Ford feasibility repair on retryable failures
    ({!Minflo_robust.Fallback}); oscillating rejected candidates terminate
    the run with a typed reason; and optional fault injection / invariant
    recording make every one of these paths testable. *)

type options = {
  eta0 : float;          (** initial trust region (default 0.5). *)
  eta_shrink : float;    (** multiplicative shrink on stall (default 0.5). *)
  eta_min : float;       (** stop once eta falls below this (default 1e-3). *)
  max_iterations : int;  (** hard cap (default 100; paper: "a few tens"). *)
  rel_tol : float;       (** relative area improvement considered negligible. *)
  solver : [ `Auto | `Simplex | `Ssp | `Bellman_ford ];
      (** [`Auto] = fallback chain simplex → ssp → bellman-ford; a concrete
          solver pins a 1-rung chain (default [`Simplex]). *)
  tilos_bump : float;
  limits : Minflo_robust.Budget.limits;
      (** run budget for the whole optimization (default {!Minflo_robust.Budget.no_limits}). *)
  osc_tol : float;
      (** areas of rejected candidates within this relative tolerance count
          as "the same" for oscillation detection. *)
  osc_window : int;
      (** consecutive same-area rejections that trigger
          {!Stop_oscillation} (default 3). *)
  warm_start : bool;
      (** reuse flow-solver state (spanning-tree basis for the simplex,
          Johnson potentials for SSP) across D-phase solves, so iteration
          [k+1] starts from iteration [k]'s optimal basis instead of the
          all-artificial one. Implies [canonical_duals], which is what makes
          the warm trajectory — every iterate, every area, the final sizing
          — bit-identical to the cold one (verified by the test-suite and
          the fuzz oracle). Default [false]: the historical single-solve
          behavior, and the mode used whenever checkpoints may be resumed
          (warm state is in-memory only and not part of a {!snapshot}). *)
  canonical_duals : bool;
      (** make every D-phase step independent of solver/basis by
          canonicalizing the LP duals ({!Minflo_flow.Mcf.canonical_potentials});
          forced on by [warm_start]. Default [false]. *)
}

val default_options : options

type iteration = {
  iter : int;
  area : float;
  cp : float;
  eta : float;
  predicted_gain : float;  (** D-phase first-order objective. *)
  solver : string;         (** fallback rung that produced this step. *)
}

(** One accepted D/W pass as recorded in a proof-carrying trace
    ({!Minflo_lint.Trace}): every claim the engine makes about the step —
    the accepted sizing, its area and critical path, the D-phase delay
    budgets the W-phase met — together with the min-cost-flow certificate
    that justified the displacement. [step_certificate] is [None] exactly
    when the step came from the Bellman-Ford feasibility rung, which
    produces no flow solution. Delivered through the [?on_step] hook;
    unlike {!iteration} (a summary for humans), a [step] carries enough to
    re-verify the pass from scratch. *)
type step = {
  step_iter : int;
  step_solver : string;
  step_eta : float;            (** trust region the D-phase ran with. *)
  step_area : float;           (** claimed area of [step_sizes]. *)
  step_cp : float;             (** claimed critical path of [step_sizes]. *)
  step_predicted : float;      (** D-phase first-order predicted gain. *)
  step_sizes : float array;
  step_budgets : float array;  (** D-phase budgets; the W-phase fixpoint
                                   claim is [delay <= budget] per vertex. *)
  step_certificate : Dphase.certificate option;
}

type stop_reason =
  | Stop_converged        (** trust region exhausted / no further gain. *)
  | Stop_max_iterations
  | Stop_budget of Minflo_robust.Diag.error
      (** a run budget tripped; carries the typed [Budget_exhausted]. *)
  | Stop_oscillation of { area : float; repeats : int }
      (** rejected candidates cycled on the same area. *)

(** {1 Checkpointable loop state}

    A {!snapshot} is the complete state of the D/W refinement loop at the
    bottom of one pass: sizes, best area, trust region, iteration counter
    and the oscillation detector. Because both phases are deterministic
    functions of that state, restarting from a snapshot (via the [?resume]
    argument of {!refine_with}) replays the remaining passes exactly — the
    final sizing is bit-identical to the uninterrupted run. The batch
    runner ([Minflo_runner.Checkpoint]) serializes snapshots to disk after
    every pass, which is what makes [--resume] after a crash, SIGKILL or
    budget trip lossless. *)
type snapshot = {
  snap_iter : int;              (** accepted-iteration counter. *)
  snap_sizes : float array;     (** current (best) sizing. *)
  snap_area : float;            (** area of [snap_sizes]. *)
  snap_eta : float;             (** current trust region. *)
  snap_osc_area : float;        (** oscillation detector: last rejected area. *)
  snap_osc_repeats : int;       (** oscillation detector: repeat count. *)
  snap_solver : string option;  (** rung of the last accepted D-phase. *)
}

val stop_reason_to_string : stop_reason -> string

type result = {
  sizes : float array;
  area : float;
  cp : float;
  met : bool;
  iterations : int;
  trace : iteration list;        (** per accepted iteration. *)
  tilos : Tilos.result;          (** the seed solution. *)
  area_saving_pct : float;       (** area saving over the TILOS seed, %. *)
  stop : stop_reason;
  solver_used : string option;
      (** rung of the most recent accepted D-phase ([None] if none). *)
  budget_exhausted : bool;
      (** the run ended on (or after tripping) a run budget; [sizes] is the
          best feasible solution found before that. *)
}

val optimize :
  ?options:options ->
  ?fault:Minflo_robust.Fault.t ->
  ?log:Minflo_robust.Diag.log ->
  ?checks:Minflo_robust.Check.t ->
  ?on_iteration:(snapshot -> unit) ->
  ?on_step:(step -> unit) ->
  Minflo_tech.Delay_model.t ->
  target:float ->
  result
(** Runs TILOS then the D/W iteration. [met = false] when even TILOS cannot
    reach the target (the returned sizes are then the TILOS attempt). The
    run budget covers TILOS bumps and the refinement together. [fault],
    [log] and [checks] are optional observers: fault plans fire at the
    instrumented sites, the log collects a severity-tagged event trail, and
    checks accumulate post-phase invariant findings ([--check] in the CLI). *)

val refine :
  ?options:options ->
  ?fault:Minflo_robust.Fault.t ->
  ?log:Minflo_robust.Diag.log ->
  ?checks:Minflo_robust.Check.t ->
  Minflo_tech.Delay_model.t ->
  target:float ->
  init:float array ->
  result
(** The D/W iteration from a caller-supplied feasible sizing. *)

val refine_from :
  ?options:options ->
  ?fault:Minflo_robust.Fault.t ->
  ?log:Minflo_robust.Diag.log ->
  ?checks:Minflo_robust.Check.t ->
  ?on_iteration:(snapshot -> unit) ->
  ?on_step:(step -> unit) ->
  Minflo_tech.Delay_model.t ->
  target:float ->
  init:float array ->
  tilos:Tilos.result ->
  result
(** Like {!refine} but records the given TILOS result as the baseline that
    [area_saving_pct] is measured against. *)

val refine_with :
  ?fault:Minflo_robust.Fault.t ->
  ?log:Minflo_robust.Diag.log ->
  ?checks:Minflo_robust.Check.t ->
  ?on_iteration:(snapshot -> unit) ->
  ?on_step:(step -> unit) ->
  ?resume:snapshot ->
  budget:Minflo_robust.Budget.t ->
  ?options:options ->
  Minflo_tech.Delay_model.t ->
  target:float ->
  init:float array ->
  tilos:Tilos.result ->
  result
(** The underlying refinement loop with every hook exposed: a
    caller-supplied [budget] meter (use {!Minflo_robust.Budget.resume} to
    restore checkpointed meters), [on_iteration] called with a {!snapshot}
    at the bottom of every pass that will be followed by another, and
    [resume] to restart the loop from a snapshot instead of [init]
    (in which case [init] is ignored). Resuming from the last snapshot of
    an interrupted run and letting it converge produces the same final
    sizing, bit for bit, as the uninterrupted run.

    [on_step] is the proof-carrying-trace hook: called once per {e
    accepted} iteration with the full {!step} evidence. Certificate capture
    in the D-phase is only enabled while a hook is installed, so runs
    without one pay nothing. *)
