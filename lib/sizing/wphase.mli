(** The W-phase: minimum sizes meeting fixed delay budgets (Section 2.3.2).

    With budgets [d_i] fixed, the constraints

    {v x_i >= (b_i + sum_{j<>i} a_ij x_j) / (d_i - a_ii),   min <= x_i <= max v}

    form a Simple Monotonic Program: right-hand sides are monotone
    increasing in the other sizes, so the least fixpoint exists and
    simultaneously minimizes every [x_i] — hence any positively-weighted
    area objective. We compute it by relaxation sweeps over the blocks in
    reverse elimination order; on a strictly triangular instance (gate
    sizing) one sweep is exact, matching the paper's [O(|V||E|)] bound. *)

type result = {
  sizes : float array;
  feasible : bool;
      (** false when some budget forces a size above [max_size] (sizes are
          then clamped and the corresponding delays exceed their budgets) *)
  violated : int list;  (** vertices whose budget could not be met *)
  sweeps : int;
}

val solve :
  ?fault:Minflo_robust.Fault.t ->
  Minflo_tech.Delay_model.t ->
  budgets:float array ->
  (result, Minflo_robust.Diag.error) Stdlib.result
(** [Error (Infeasible_budget _)] when some budget is at or below the
    intrinsic delay [a_ii] (no size can achieve it).

    [fault] is consulted at site ["wphase"]: [Fail e] returns [Error e];
    [Perturb mag] shrinks one size after the feasibility verdict was
    computed, so the verdict is a lie that only a post-phase invariant
    check (or the driver's own STA) can expose. *)
