module Delay_model = Minflo_tech.Delay_model
module Sta = Minflo_timing.Sta
module Diag = Minflo_robust.Diag
module Budget = Minflo_robust.Budget
module Fallback = Minflo_robust.Fallback
module Check = Minflo_robust.Check
module Fault = Minflo_robust.Fault

let log_src = Logs.Src.create "minflotransit" ~doc:"MINFLOTRANSIT driver"

module Log = (val Logs.src_log log_src)

type options = {
  eta0 : float;
  eta_shrink : float;
  eta_min : float;
  max_iterations : int;
  rel_tol : float;
  solver : [ `Auto | `Simplex | `Ssp | `Bellman_ford ];
  tilos_bump : float;
  limits : Budget.limits;
  osc_tol : float;
  osc_window : int;
  warm_start : bool;
  canonical_duals : bool;
}

let default_options =
  { eta0 = 0.5;
    eta_shrink = 0.5;
    eta_min = 1e-3;
    max_iterations = 100;
    rel_tol = 1e-4;
    solver = `Simplex;
    tilos_bump = 1.1;
    limits = Budget.no_limits;
    osc_tol = 1e-9;
    osc_window = 3;
    warm_start = false;
    canonical_duals = false }

type iteration = {
  iter : int;
  area : float;
  cp : float;
  eta : float;
  predicted_gain : float;
  solver : string;
}

(* everything the proof-carrying trace records about one accepted D/W pass:
   the claims (area, cp, budgets) plus the evidence (the flow certificate
   whose potentials were the displacement). *)
type step = {
  step_iter : int;
  step_solver : string;
  step_eta : float;
  step_area : float;
  step_cp : float;
  step_predicted : float;
  step_sizes : float array;
  step_budgets : float array;
  step_certificate : Dphase.certificate option;
}

type stop_reason =
  | Stop_converged
  | Stop_max_iterations
  | Stop_budget of Diag.error
  | Stop_oscillation of { area : float; repeats : int }

(* Full loop state at the bottom of one D/W pass: everything the refinement
   loop reads. Restarting the loop from a snapshot replays the remaining
   passes exactly (the phases are deterministic in [sizes] and [eta]), which
   is what makes checkpoint/resume bit-identical to an uninterrupted run. *)
type snapshot = {
  snap_iter : int;
  snap_sizes : float array;
  snap_area : float;
  snap_eta : float;
  snap_osc_area : float;
  snap_osc_repeats : int;
  snap_solver : string option;
}

type result = {
  sizes : float array;
  area : float;
  cp : float;
  met : bool;
  iterations : int;
  trace : iteration list;
  tilos : Tilos.result;
  area_saving_pct : float;
  stop : stop_reason;
  solver_used : string option;
  budget_exhausted : bool;
}

let stop_reason_to_string = function
  | Stop_converged -> "converged"
  | Stop_max_iterations -> "max-iterations"
  | Stop_budget e -> "budget: " ^ Diag.to_string e
  | Stop_oscillation { area; repeats } ->
    Printf.sprintf "oscillation: area %g repeated %d times" area repeats

let dlog log severity fmt =
  Printf.ksprintf
    (fun msg ->
      match log with
      | Some l -> Diag.log l severity ~source:"minflotransit" msg
      | None -> ())
    fmt

(* The D-phase as a fallback chain: `Auto degrades simplex -> ssp ->
   bellman-ford on retryable failures; a pinned solver is a 1-rung chain. *)
let dphase_rungs = function
  | `Auto -> [ `Simplex; `Ssp; `Bellman_ford ]
  | (`Simplex | `Ssp | `Bellman_ford) as s -> [ s ]

let emit_step on_step ~iter ~rung ~eta ~area ~cp ~predicted ~sizes ~budgets
    ~cert =
  match on_step with
  | None -> ()
  | Some f ->
    f
      { step_iter = iter;
        step_solver = rung;
        step_eta = eta;
        step_area = area;
        step_cp = cp;
        step_predicted = predicted;
        step_sizes = Array.copy sizes;
        step_budgets = Array.copy budgets;
        step_certificate = cert }

let refine_with ?fault ?log ?checks ?on_iteration ?on_step ?resume ~budget
    ?(options = default_options) model ~target ~init ~tilos =
  let x =
    ref
      (match resume with
      | Some s -> Array.copy s.snap_sizes
      | None -> Array.copy init)
  in
  let area =
    ref
      (match resume with
      | Some s -> s.snap_area
      | None -> Delay_model.area model !x)
  in
  let eta = ref (match resume with Some s -> s.snap_eta | None -> options.eta0) in
  let trace = ref [] in
  let iters = ref (match resume with Some s -> s.snap_iter | None -> 0) in
  let continue = ref true in
  let stop = ref Stop_converged in
  let solver_used =
    ref (match resume with Some s -> s.snap_solver | None -> None)
  in
  (* oscillation: consecutive REJECTED candidates landing on the same area.
     Accepted iterations require a strict decrease and cannot cycle. *)
  let osc_area = ref (match resume with Some s -> s.snap_osc_area | None -> nan) in
  let osc_repeats =
    ref (match resume with Some s -> s.snap_osc_repeats | None -> 0)
  in
  (* one warm context for the whole refinement: the displacement LP keeps
     its constraint-graph shape across iterations (and across trust-region
     retries), which is exactly the reuse condition of the flow solvers.
     Warm starts force canonical duals — without them a warm solve may pick
     a different vertex of the optimal dual face than a cold one and the
     trajectories would drift apart. *)
  let warm = if options.warm_start then Some (Minflo_flow.Diff_lp.make_warm ()) else None in
  let canonical = options.canonical_duals || options.warm_start in
  while !continue && !eta >= options.eta_min do
    if !iters >= options.max_iterations then begin
      stop := Stop_max_iterations;
      continue := false
    end
    else
      match Budget.check budget with
      | Some e ->
        dlog log Diag.Warning "run budget exhausted: %s" (Diag.to_string e);
        stop := Stop_budget e;
        continue := false
      | None ->
        Budget.tick_iteration budget;
        let delays = Delay_model.delays model !x in
        let eta_used = !eta in
        (* one cell per pass, cleared per rung: a rung that wrote a
           certificate and then failed must not leak it into the trace of
           the rung that actually succeeded *)
        let cert = ref None in
        let attempt solver () =
          let dopts =
            { Dphase.default_options with
              eta = !eta;
              solver;
              canonical_duals = canonical }
          in
          cert := None;
          Dphase.solve ~options:dopts ~budget ?warm ?fault ?checks
            ?certificate:(if on_step = None then None else Some cert)
            model ~sizes:!x ~delays ~deadline:target
        in
        let rungs =
          List.map
            (fun s ->
              { Fallback.name = Dphase.solver_name s; attempt = attempt s })
            (dphase_rungs options.solver)
        in
        let step =
          match Fallback.run ?log rungs with
          | Error e -> Error e
          | Ok { value = dres; rung; failures } ->
            List.iter
              (fun (name, e) ->
                Log.warn (fun m ->
                    m "D-phase solver %s failed: %s" name (Diag.to_string e)))
              failures;
            (match Wphase.solve ?fault model ~budgets:dres.budgets with
            | Error e -> Error e
            | Ok wres ->
              (match checks with
              | Some c ->
                Check.record c "wphase.sizes-in-bounds"
                  (let bad = ref None in
                   Array.iteri
                     (fun i v ->
                       if
                         (not (Float.is_finite v))
                         || v < model.Delay_model.min_size -. 1e-9
                         || v > model.Delay_model.max_size +. 1e-9
                       then
                         if !bad = None then
                           bad := Some (Printf.sprintf "size %g at vertex %d" v i))
                     wres.sizes;
                   match !bad with Some d -> Error d | None -> Ok ())
              | None -> ());
              if not wres.feasible then Ok None
              else begin
                let delays' = Delay_model.delays model wres.sizes in
                let cp' = Sta.critical_path_only model ~delays:delays' in
                (match checks with
                | Some c ->
                  Check.record c "wphase.budgets-met"
                    (let bad = ref None in
                     Array.iteri
                       (fun i d ->
                         let b = dres.budgets.(i) in
                         (* tolerance must scale with the budget: delays
                            run ~1e5 in ps-like units, where a bare 1e-6
                            absolute slack is below float rounding *)
                         if d > b +. 1e-6 +. 1e-9 *. Float.abs b
                            && !bad = None
                         then
                           bad :=
                             Some
                               (Printf.sprintf
                                  "vertex %d delay %g exceeds budget %g" i d b))
                       delays';
                     match !bad with Some d -> Error d | None -> Ok ())
                | None -> ());
                if cp' > target *. (1.0 +. 1e-9) then Ok None
                else
                  Ok
                    (Some
                       ( wres.sizes,
                         Delay_model.area model wres.sizes,
                         cp',
                         dres.objective,
                         rung,
                         dres.budgets ))
              end)
        in
        (match step with
        | Error e ->
          (* typed phase failure: keep the best-so-far sizing. A budget
             failure ends the run with its reason; anything else shrinks
             the trust region and retries, like a rejected candidate. *)
          (match e with
          | Diag.Budget_exhausted _ ->
            stop := Stop_budget e;
            continue := false
          | _ ->
            dlog log Diag.Warning "iteration failed: %s" (Diag.to_string e);
            Log.warn (fun m -> m "iteration failed: %s" (Diag.to_string e));
            eta := !eta *. options.eta_shrink)
        | Ok (Some (x', area', cp', predicted, rung, budgets'))
          when area' < !area *. (1.0 -. options.rel_tol) ->
          incr iters;
          x := x';
          area := area';
          osc_repeats := 0;
          solver_used := Some rung;
          trace :=
            { iter = !iters;
              area = area';
              cp = cp';
              eta = !eta;
              predicted_gain = predicted;
              solver = rung }
            :: !trace;
          emit_step on_step ~iter:!iters ~rung ~eta:eta_used ~area:area'
            ~cp:cp' ~predicted ~sizes:x' ~budgets:budgets' ~cert:!cert;
          dlog log Diag.Info "iter %d: area %.1f cp %.4g eta %.3g via %s"
            !iters area' cp' !eta rung;
          Log.debug (fun m ->
              m "iter %d: area %.1f cp %.4g eta %.3g" !iters area' cp' !eta)
        | Ok (Some (x', area', cp', predicted, rung, budgets'))
          when area' < !area ->
          (* small improvement: take it, then tighten the trust region *)
          incr iters;
          x := x';
          area := area';
          osc_repeats := 0;
          solver_used := Some rung;
          eta := !eta *. options.eta_shrink;
          trace :=
            { iter = !iters;
              area = area';
              cp = cp';
              eta = !eta;
              predicted_gain = 0.0;
              solver = rung }
            :: !trace;
          emit_step on_step ~iter:!iters ~rung ~eta:eta_used ~area:area'
            ~cp:cp' ~predicted ~sizes:x' ~budgets:budgets' ~cert:!cert;
          if !eta < options.eta_min then continue := false
        | Ok rejected ->
          (* no improvement at this trust region *)
          (match rejected with
          | Some (_, area', _, _, _, _) ->
            if
              Float.is_finite !osc_area
              && abs_float (area' -. !osc_area)
                 <= options.osc_tol *. max 1.0 (abs_float area')
            then incr osc_repeats
            else begin
              osc_area := area';
              osc_repeats := 1
            end;
            if !osc_repeats >= options.osc_window then begin
              dlog log Diag.Warning
                "oscillation: rejected area %g seen %d consecutive times"
                area' !osc_repeats;
              stop := Stop_oscillation { area = area'; repeats = !osc_repeats };
              continue := false
            end
          | None -> ());
          if !continue then eta := !eta *. options.eta_shrink);
        (* checkpoint hook: the loop state at the bottom of this pass is a
           valid resume point — replaying from it is bit-identical. Skipped
           once the run has decided to stop (the final state is the result,
           not a resume point). *)
        (match on_iteration with
        | Some f when !continue ->
          f
            { snap_iter = !iters;
              snap_sizes = Array.copy !x;
              snap_area = !area;
              snap_eta = !eta;
              snap_osc_area = !osc_area;
              snap_osc_repeats = !osc_repeats;
              snap_solver = !solver_used }
        | _ -> ())
  done;
  let delays = Delay_model.delays model !x in
  let cp = Sta.critical_path_only model ~delays in
  let tilos_area = (tilos : Tilos.result).area in
  let budget_exhausted =
    (match !stop with Stop_budget _ -> true | _ -> false)
    || Budget.exhausted budget
  in
  { sizes = !x;
    area = !area;
    cp;
    met = cp <= target *. (1.0 +. 1e-9);
    iterations = !iters;
    trace = List.rev !trace;
    tilos;
    area_saving_pct =
      (if tilos_area > 0.0 then 100.0 *. (tilos_area -. !area) /. tilos_area
       else 0.0);
    stop = !stop;
    solver_used = !solver_used;
    budget_exhausted }

let refine_from ?(options = default_options) ?fault ?log ?checks ?on_iteration
    ?on_step model ~target ~init ~tilos =
  let budget = Budget.start options.limits in
  refine_with ?fault ?log ?checks ?on_iteration ?on_step ~budget ~options model
    ~target ~init ~tilos

let optimize ?(options = default_options) ?fault ?log ?checks ?on_iteration
    ?on_step model ~target =
  let budget = Budget.start options.limits in
  let tilos = Tilos.size ~bump:options.tilos_bump ~budget model ~target in
  if not tilos.met then
    { sizes = tilos.sizes;
      area = tilos.area;
      cp = tilos.final_cp;
      met = false;
      iterations = 0;
      trace = [];
      tilos;
      area_saving_pct = 0.0;
      stop =
        (match Budget.check budget with
        | Some e -> Stop_budget e
        | None -> Stop_converged);
      solver_used = None;
      budget_exhausted = Budget.exhausted budget }
  else refine_with ?fault ?log ?checks ?on_iteration ?on_step ~budget ~options
      model ~target ~init:tilos.sizes ~tilos

let refine ?(options = default_options) ?fault ?log ?checks model ~target ~init =
  let delays = Delay_model.delays model init in
  let cp = Sta.critical_path_only model ~delays in
  let pseudo_tilos =
    { Tilos.sizes = init;
      met = cp <= target *. (1.0 +. 1e-9);
      bumps = 0;
      final_cp = cp;
      area = Delay_model.area model init }
  in
  refine_from ~options ?fault ?log ?checks model ~target ~init ~tilos:pseudo_tilos
