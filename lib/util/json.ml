type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string

(* ---------- printing ---------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* shortest representation that round-trips: the daemon's bit-identical
   recovery guarantee rides on numbers surviving
   print -> parse -> print unchanged *)
let num_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else if Float.is_finite v then begin
    let s = Printf.sprintf "%.15g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v
  end
  else "null" (* nan/inf are not JSON; the protocol never produces them *)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> Buffer.add_string buf (num_to_string v)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'
  | Raw s -> Buffer.add_string buf s

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Bad of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 't' -> Buffer.add_char buf '\t'
             | 'r' -> Buffer.add_char buf '\r'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape"
               else begin
                 let hex = String.sub s (!pos + 1) 4 in
                 (match int_of_string_opt ("0x" ^ hex) with
                 | None -> fail "bad \\u escape"
                 | Some code when code < 0x80 ->
                   Buffer.add_char buf (Char.chr code)
                 | Some code ->
                   (* re-encode the BMP code point as UTF-8; enough for a
                      line protocol whose strings are circuit names *)
                   if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                   end);
                 pos := !pos + 4
               end
             | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> numchar c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        let rec more () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items := parse_value () :: !items;
            more ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        more ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          (k, parse_value ())
        in
        let fields = ref [ field () ] in
        let rec more () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields := field () :: !fields;
            more ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        more ();
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_num = function Num v -> Some v | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let to_int = function
  | Num v when Float.is_integer v && Float.abs v < 1e15 ->
    Some (int_of_float v)
  | _ -> None

let str_field key j = Option.bind (member key j) to_str
let num_field key j = Option.bind (member key j) to_num
let int_field key j = Option.bind (member key j) to_int
let bool_field key j = Option.bind (member key j) to_bool
