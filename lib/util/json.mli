(** Minimal JSON: one value type, parser and printer, no dependencies.

    Originally the serve wire protocol's private JSON; now shared
    project-wide (the toolchain deliberately has no JSON dependency).
    Newline-delimited consumers — the serve protocol, the engine trace
    files audited by [minflo audit-run] — all speak this dialect: objects,
    arrays, strings, finite numbers, bools and null, one value per line.

    Numbers print in the shortest form that parses back to the identical
    float — the daemon's bit-identical replay guarantees ride on values
    surviving print/parse round trips. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string
      (** printer-only escape hatch: splices a pre-rendered JSON fragment
          (e.g. {!Minflo_robust.Diag.to_json} output) verbatim. The parser
          never produces it. *)

val parse : string -> (t, string) result
(** Strict parse of one complete value; [Error] carries a message with a
    byte offset. Rejects trailing garbage. *)

val to_string : t -> string
(** One line, no trailing newline. [Num nan] and infinities render as
    [null] (the protocol never produces them). *)

(** {1 Accessors} — each returns [None] on a missing key or wrong shape. *)

val member : string -> t -> t option
val to_str : t -> string option
val to_num : t -> float option
val to_int : t -> int option
val to_bool : t -> bool option
val str_field : string -> t -> string option
val num_field : string -> t -> float option
val int_field : string -> t -> int option
val bool_field : string -> t -> bool option
