(** A bounded FIFO with a high-water mark — the daemon's admission queue.

    Backpressure is explicit: a full queue rejects at {!push} time and the
    daemon turns that into a typed [overloaded] response, instead of
    accepting unbounded work and letting latency (or memory) blow up
    silently. *)

type 'a t

val create : capacity:int -> 'a t

val push : 'a t -> 'a -> (unit, [ `Full of int ]) result
(** [Error (`Full depth)] when the queue already holds [capacity] items. *)

val push_force : 'a t -> 'a -> unit
(** Enqueue even past capacity — only for journal recovery, where the
    items were already admitted by a previous daemon life and must not be
    dropped. *)

val pop : 'a t -> 'a option
val length : 'a t -> int
val capacity : 'a t -> int
val is_empty : 'a t -> bool

val peak : 'a t -> int
(** Highest depth ever observed (reported by the [stats] op). *)
