(** Deterministic load generator for the serve daemon.

    Drives a configurable mix through one connection: well-formed sizing
    jobs (with optional artificial [sleep_seconds] latency, to make
    overload and drain windows reproducible), jobs the lint gate must
    reject, and jobs with a deliberately tiny run budget (exercising the
    best-feasible-on-exhaustion path). Then polls every accepted job to a
    terminal state and returns a JSON summary — counts of accepted /
    overloaded / draining / lint-rejected submissions and of terminal
    states, p50/p99 submit-to-terminal latency percentiles (observed at
    [poll_interval] granularity), plus the daemon's own [stats] response.
    The CI serve-smoke job asserts on this summary.

    All traffic goes through a retrying {!Client.session}, so a run
    pointed through the chaos proxy rides out injected connection drops,
    stalls and torn lines — the summary then measures {e end-to-end}
    resilience, not one lucky connection. An id accepted twice (a retried
    submit whose first send did land) is counted once. *)

type config = {
  endpoint : Transport.endpoint;
  retry : Client.retry;
  circuits : string list;
  factor : float;
  solver : Minflo_runner.Job.solver;
  count : int;
  sleep_seconds : float;
  lint_bad : int;
  tiny_budget : int;
  poll_interval : float;
  deadline_seconds : float;
}

val default_config : config

val run : config -> (Json.t, Minflo_robust.Diag.error) result
(** [Error] only on transport failure that survived the retry budget, or
    on the polling deadline; rejections by the daemon are data, counted
    in the summary. *)
