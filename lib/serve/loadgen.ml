module Diag = Minflo_robust.Diag
module Job = Minflo_runner.Job
module Stats = Minflo_util.Stats

type config = {
  endpoint : Transport.endpoint;
  retry : Client.retry;
  circuits : string list;
  factor : float;
  solver : Job.solver;
  count : int;           (* well-formed sizing jobs *)
  sleep_seconds : float; (* artificial latency per job *)
  lint_bad : int;        (* jobs that must be rejected by the lint gate *)
  tiny_budget : int;     (* jobs with a 1-iteration budget (best-feasible path) *)
  poll_interval : float;
  deadline_seconds : float;
}

let default_config =
  { endpoint = Transport.Unix_sock "minflo.sock";
    retry = Client.default_retry;
    circuits = [ "c17" ];
    factor = 1.3;
    solver = `Simplex;
    count = 4;
    sleep_seconds = 0.0;
    lint_bad = 0;
    tiny_budget = 0;
    poll_interval = 0.05;
    deadline_seconds = 300.0 }

let submit_spec cfg i : Protocol.submit =
  let circuit =
    List.nth cfg.circuits (i mod max 1 (List.length cfg.circuits))
  in
  (* distinct delay targets keep the job keys distinct *)
  { Protocol.circuit;
    factor = cfg.factor +. (0.002 *. float_of_int (i / List.length cfg.circuits));
    solver = cfg.solver;
    max_seconds = None;
    max_iterations = None;
    max_pivots = None;
    sleep_seconds = cfg.sleep_seconds }

let run (cfg : config) : (Json.t, Diag.error) result =
  let session = Client.session ~retry:cfg.retry cfg.endpoint in
  let accepted = ref [] in
  (* submit->terminal latency per accepted id; observed at poll
     granularity, so [poll_interval] bounds the measurement error *)
  let submit_time : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let latencies = ref [] in
  let overloaded = ref 0 in
  let draining = ref 0 in
  let lint_rejected = ref 0 in
  let other_rejected = ref 0 in
  let resubmitted = ref 0 in
  let failure = ref None in
  let submit spec ~expect_lint =
    match
      Client.rpc session (Protocol.request_to_json (Protocol.Submit spec))
    with
    | Error e -> failure := Some e
    | Ok response -> (
      match (Json.bool_field "ok" response, Json.str_field "code" response)
      with
      | Some true, _ ->
        if Json.bool_field "resubmitted" response = Some true then
          incr resubmitted;
        (match Json.str_field "id" response with
        | Some id ->
          (* a retried submit whose first send did reach the daemon comes
             back [resubmitted]; the id must still count once, and its
             clock starts at the first acceptance *)
          if not (List.mem id !accepted) then begin
            accepted := id :: !accepted;
            Hashtbl.replace submit_time id (Minflo_robust.Mono.now ())
          end
        | None -> ())
      | _, Some "overloaded" -> incr overloaded
      | _, Some "draining" -> incr draining
      | _, Some _ when expect_lint -> incr lint_rejected
      | _, _ -> incr other_rejected)
  in
  for i = 0 to cfg.count - 1 do
    if !failure = None then submit (submit_spec cfg i) ~expect_lint:false
  done;
  for i = 0 to cfg.lint_bad - 1 do
    if !failure = None then
      submit
        { (submit_spec cfg i) with
          Protocol.circuit = Printf.sprintf "no-such-circuit-%d" i }
        ~expect_lint:true
  done;
  for i = 0 to cfg.tiny_budget - 1 do
    if !failure = None then
      submit
        { (submit_spec cfg (cfg.count + i)) with
          Protocol.max_iterations = Some 1 }
        ~expect_lint:false
  done;
  match !failure with
  | Some e ->
    Client.close_session session;
    Error e
  | None -> (
    (* poll every accepted job to a terminal state *)
    let deadline = Minflo_robust.Mono.now () +. cfg.deadline_seconds in
    let terminal = Hashtbl.create 16 in
    let rec poll () =
      let open_jobs =
        List.filter (fun id -> not (Hashtbl.mem terminal id)) !accepted
      in
      if open_jobs = [] then Ok ()
      else if Minflo_robust.Mono.now () > deadline then
        Error
          (Diag.Internal
             (Printf.sprintf "loadgen: %d jobs still pending at deadline"
                (List.length open_jobs)))
      else begin
        List.iter
          (fun id ->
            match
              Client.rpc session
                (Protocol.request_to_json (Protocol.Status id))
            with
            | Error e -> failure := Some e
            | Ok response -> (
              match Json.str_field "state" response with
              | Some (("done" | "failed" | "cancelled") as st) ->
                Hashtbl.replace terminal id st;
                (match Hashtbl.find_opt submit_time id with
                | Some t0 ->
                  latencies := (Minflo_robust.Mono.now () -. t0) :: !latencies
                | None -> ())
              | _ -> ()))
          open_jobs;
        match !failure with
        | Some e -> Error e
        | None ->
          Unix.sleepf cfg.poll_interval;
          poll ()
      end
    in
    match poll () with
    | Error e ->
      Client.close_session session;
      Error e
    | Ok () -> (
      let count st =
        Hashtbl.fold
          (fun _ s acc -> if s = st then acc + 1 else acc)
          terminal 0
      in
      let latency_percentile p =
        match !latencies with
        | [] -> 0.0
        | l -> Stats.percentile (Array.of_list l) p
      in
      let stats =
        Client.rpc session (Protocol.request_to_json Protocol.Stats)
      in
      Client.close_session session;
      match stats with
      | Error _ as e -> e
      | Ok stats ->
        Ok
          (Json.Obj
             [ ( "submitted",
                 Json.Num
                   (float_of_int
                      (cfg.count + cfg.lint_bad + cfg.tiny_budget)) );
               ( "accepted",
                 Json.Num (float_of_int (List.length !accepted)) );
               ("resubmitted", Json.Num (float_of_int !resubmitted));
               ("overloaded", Json.Num (float_of_int !overloaded));
               ("draining", Json.Num (float_of_int !draining));
               ("lint_rejected", Json.Num (float_of_int !lint_rejected));
               ("other_rejected", Json.Num (float_of_int !other_rejected));
               ("done", Json.Num (float_of_int (count "done")));
               ("failed", Json.Num (float_of_int (count "failed")));
               ("cancelled", Json.Num (float_of_int (count "cancelled")));
               ("latency_p50_seconds", Json.Num (latency_percentile 50.0));
               ("latency_p99_seconds", Json.Num (latency_percentile 99.0));
               ("stats", stats) ])))
