(** The sizing-as-a-service daemon.

    [run] listens on a unix socket — and, with [tcp] set, a TCP endpoint
    too — for newline-delimited JSON requests
    ({!Protocol}) and schedules accepted sizing jobs across forked workers
    ({!Minflo_runner.Supervisor}'s pool — per-attempt hard timeouts,
    exponential-backoff retry of transient failures, quarantine of
    deterministic ones). The parent process is the only journal writer and
    the only scheduler; workers inherit the delay-model cache
    copy-on-write.

    Robustness contract:

    - {b admission control}: a bounded queue; a full queue answers
      [overloaded] (typed, with depth and limit) instead of accepting
      unbounded work. Rejections tick {!Minflo_robust.Perf} counters.
    - {b idempotency / result cache}: a job's key
      ({!Protocol.job_key}) identifies its work; resubmitting a served key
      is answered from the in-memory result cache with zero solves. The
      cache is LRU under [cache_bytes]; an eviction under memory pressure
      costs a journal re-read on the next query, never the answer.
    - {b connection deadlines}: client descriptors are nonblocking with
      buffered writes; a peer stalled mid-request or ignoring its
      response past [io_timeout_seconds] is disconnected, so a half-open
      or wedged connection can never stall the accept loop or leak a
      descriptor.
    - {b worker watchdog}: a forked worker heartbeats over its event
      pipe; one silent past [watchdog_seconds] (wedged, SIGSTOPped,
      livelocked) is SIGKILLed and its job retried like any other
      transient crash.
    - {b crash recovery}: every accepted job is journaled ([serve-accepted],
      fsynced) before the client hears "accepted"; terminal states are
      journaled too ([job-result] carries the full result, round-tripping
      bit-identically). A daemon restarted on the same run directory
      replays the journal: finished jobs restock the result cache,
      accepted-but-unfinished ones are requeued and — thanks to the batch
      layer's checkpoints — resume to bit-identical results.
    - {b single instance}: the journal's advisory lock makes a second
      daemon on the same run directory fail fast with [journal-locked].
    - {b degraded mode}: a failed journal write (disk full, I/O error)
      flips the daemon read-only instead of killing it: new admissions
      are answered with a typed [storage-error] rejection carrying the
      underlying diagnostic, while cached results, queries and in-flight
      work keep being served. [health] reports [degraded]; [stats]
      carries a [degraded] flag. Nothing is ever queued whose acceptance
      could not be made durable.
    - {b graceful drain}: SIGTERM/SIGINT (or the [drain] op) stops
      admission, finishes or checkpoints in-flight work, seals the journal
      and exits. SIGKILL is the tested worst case: recovery handles it.

    Per-request budgets map to {!Minflo_robust.Budget} limits; a budget
    that trips on a target-meeting sizing returns that best feasible
    result (flagged via its [stop] field) rather than an error. *)

type config = {
  socket_path : string;
  tcp : string option;
      (** also listen on this ["HOST:PORT"] (port [0] lets the kernel
          pick; the actual endpoint is journaled in [serve-start]'s
          [tcp] field). [None]: unix socket only. *)
  run_dir : string;        (** journal, checkpoints, recovery state. *)
  parallel : int;          (** concurrent forked workers. *)
  queue_capacity : int;    (** admission queue bound. *)
  timeout_seconds : float option;  (** per-attempt hard kill. *)
  watchdog_seconds : float option;
      (** worker liveness deadline ({!Minflo_runner.Supervisor}): a
          worker whose event pipe stays silent this long is SIGKILLed
          and its job requeued. [None] disables. *)
  io_timeout_seconds : float;
      (** per-connection deadline: a peer stalled mid-request or not
          reading its response this long is disconnected. Parked
          [result --wait] connections (no pending bytes either way) are
          exempt. *)
  cache_bytes : int;
      (** result-cache byte budget; LRU eviction past it (evicted
          results remain answerable from the journal). *)
  retries : int;
  backoff_base : float;
  preflight : bool;        (** lint gate at admission. *)
}

val default_config : config
(** [socket_path = "minflo.sock"; tcp = None; run_dir = "minflo-serve";
    parallel = 2; queue_capacity = 16; timeout_seconds = Some 300.;
    watchdog_seconds = Some 60.; io_timeout_seconds = 30.;
    cache_bytes = 64 MiB; retries = 2; backoff_base = 0.5;
    preflight = true]. *)

val recovery_snapshot : string -> (string * string) list
(** [recovery_snapshot journal_path] replays a serve journal exactly as a
    restarting daemon would and returns, in acceptance order, each job key
    with the state the daemon would reconstruct for it ([accepted],
    [running], [done], [failed], [cancelled]). Used by the torture harness
    to assert that a journal surviving an injected crash still recovers to
    a coherent table. *)

val run : ?config:config -> unit -> (unit, Minflo_robust.Diag.error) result
(** Run the daemon until drained. Returns [Error Journal_locked] if
    another live daemon owns the run directory, [Error (Io_error _)] if
    the socket is in use; otherwise blocks until a drain completes and
    returns [Ok ()]. *)
