(** The sizing-as-a-service daemon.

    [run] listens on a unix socket for newline-delimited JSON requests
    ({!Protocol}) and schedules accepted sizing jobs across forked workers
    ({!Minflo_runner.Supervisor}'s pool — per-attempt hard timeouts,
    exponential-backoff retry of transient failures, quarantine of
    deterministic ones). The parent process is the only journal writer and
    the only scheduler; workers inherit the delay-model cache
    copy-on-write.

    Robustness contract:

    - {b admission control}: a bounded queue; a full queue answers
      [overloaded] (typed, with depth and limit) instead of accepting
      unbounded work. Rejections tick {!Minflo_robust.Perf} counters.
    - {b idempotency / result cache}: a job's key
      ({!Protocol.job_key}) identifies its work; resubmitting a served key
      is answered from the in-memory result cache with zero solves.
    - {b crash recovery}: every accepted job is journaled ([serve-accepted],
      fsynced) before the client hears "accepted"; terminal states are
      journaled too ([job-result] carries the full result, round-tripping
      bit-identically). A daemon restarted on the same run directory
      replays the journal: finished jobs restock the result cache,
      accepted-but-unfinished ones are requeued and — thanks to the batch
      layer's checkpoints — resume to bit-identical results.
    - {b single instance}: the journal's advisory lock makes a second
      daemon on the same run directory fail fast with [journal-locked].
    - {b graceful drain}: SIGTERM/SIGINT (or the [drain] op) stops
      admission, finishes or checkpoints in-flight work, seals the journal
      and exits. SIGKILL is the tested worst case: recovery handles it.

    Per-request budgets map to {!Minflo_robust.Budget} limits; a budget
    that trips on a target-meeting sizing returns that best feasible
    result (flagged via its [stop] field) rather than an error. *)

type config = {
  socket_path : string;
  run_dir : string;        (** journal, checkpoints, recovery state. *)
  parallel : int;          (** concurrent forked workers. *)
  queue_capacity : int;    (** admission queue bound. *)
  timeout_seconds : float option;  (** per-attempt hard kill. *)
  retries : int;
  backoff_base : float;
  preflight : bool;        (** lint gate at admission. *)
}

val default_config : config
(** [socket_path = "minflo.sock"; run_dir = "minflo-serve"; parallel = 2;
    queue_capacity = 16; timeout_seconds = Some 300.; retries = 2;
    backoff_base = 0.5; preflight = true]. *)

val run : ?config:config -> unit -> (unit, Minflo_robust.Diag.error) result
(** Run the daemon until drained. Returns [Error Journal_locked] if
    another live daemon owns the run directory, [Error (Io_error _)] if
    the socket is in use; otherwise blocks until a drain completes and
    returns [Ok ()]. *)
