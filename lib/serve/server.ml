module Diag = Minflo_robust.Diag
module Io = Minflo_robust.Io
module Perf = Minflo_robust.Perf
module Mono = Minflo_robust.Mono
module Budget = Minflo_robust.Budget
module Job = Minflo_runner.Job
module Batch = Minflo_runner.Batch
module Journal = Minflo_runner.Journal
module Supervisor = Minflo_runner.Supervisor
module Minflotransit = Minflo_sizing.Minflotransit

type config = {
  socket_path : string;
  tcp : string option;
  run_dir : string;
  parallel : int;
  queue_capacity : int;
  timeout_seconds : float option;
  watchdog_seconds : float option;
  io_timeout_seconds : float;
  cache_bytes : int;
  retries : int;
  backoff_base : float;
  preflight : bool;
}

let default_config =
  { socket_path = "minflo.sock";
    tcp = None;
    run_dir = "minflo-serve";
    parallel = 2;
    queue_capacity = 16;
    timeout_seconds = Some 300.0;
    watchdog_seconds = Some 60.0;
    io_timeout_seconds = 30.0;
    cache_bytes = 64 * 1024 * 1024;
    retries = 2;
    backoff_base = 0.5;
    preflight = true }

(* ---------- job table ---------- *)

type failure = {
  f_code : string;
  f_message : string;
  f_raw : string;  (* pre-rendered JSON error object *)
  f_quarantined : bool;
}

(* [Done] carries no payload: the rendered result fields live in the
   byte-budgeted {!Result_cache}, with the journal as the durable copy a
   query falls back to after an eviction *)
type state =
  | Queued
  | Running
  | Done
  | Failed of failure
  | Cancelled

type entry = {
  key : string;
  spec : Protocol.submit;
  mutable state : state;
  mutable cancelling : bool;
}

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed _ -> "failed"
  | Cancelled -> "cancelled"

let slug key =
  String.map
    (fun c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '-')
    key

let rec mkdirs dir =
  if Sys.file_exists dir then ()
  else begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let outcome_fields key (spec : Protocol.submit) (o : Job.outcome) =
  [ ("id", Json.Str key);
    ("state", Json.Str "done");
    ("circuit", Json.Str spec.circuit);
    ("factor", Json.Num spec.factor);
    ("solver", Json.Str (Job.solver_name spec.solver));
    ("area", Json.Num o.area);
    ("area_ratio", Json.Num o.area_ratio);
    ("cp", Json.Num o.cp);
    ("target", Json.Num o.target);
    ("met", Json.Bool o.met);
    ("iterations", Json.Num (float_of_int o.iterations));
    ("saving_pct", Json.Num o.saving_pct);
    ("stop", Json.Str o.stop);
    ("resumed", Json.Bool o.resumed) ]

let journal_result jr key (o : Job.outcome) =
  Journal.event_checked jr ~job:key
    ~fields:
      [ Journal.field_float "area" o.area;
        Journal.field_float "area_ratio" o.area_ratio;
        Journal.field_float "cp" o.cp;
        Journal.field_float "target" o.target;
        Journal.field_bool "met" o.met;
        Journal.field_int "iterations" o.iterations;
        Journal.field_float "saving_pct" o.saving_pct;
        Journal.field_str "stop" o.stop;
        Journal.field_bool "resumed" o.resumed ]
    "job-result"

(* the [error] object is always the last field [Journal.event] writes, so
   the raw JSON between its key and the line's closing brace is the whole
   (possibly nested) object *)
let extract_raw_error line =
  let pat = "\"error\": " in
  let ll = String.length line and lp = String.length pat in
  let rec search i =
    if i + lp > ll then None
    else if String.sub line i lp = pat then Some (i + lp)
    else search (i + 1)
  in
  match search 0 with
  | Some start when ll > start + 1 -> String.sub line start (ll - start - 1)
  | _ -> "{}"

(* ---------- recovery: rebuild the job table from a previous life ---------- *)

let recover_submit line : Protocol.submit option =
  match
    ( Journal.find_field line "circuit",
      Option.bind (Journal.find_field line "factor") float_of_string_opt,
      Option.bind (Journal.find_field line "solver") Job.solver_of_string )
  with
  | Some circuit, Some factor, Some solver ->
    let num key = Option.bind (Journal.find_field line key) float_of_string_opt in
    let int key = Option.bind (Journal.find_field line key) int_of_string_opt in
    Some
      { Protocol.circuit;
        factor;
        solver;
        max_seconds = num "max_seconds";
        max_iterations = int "max_iterations";
        max_pivots = int "max_pivots";
        sleep_seconds = Option.value (num "sleep_seconds") ~default:0.0 }
  | _ -> None

let recover_done_fields key spec line =
  let num k = Option.bind (Journal.find_field line k) float_of_string_opt in
  let bool k = Option.bind (Journal.find_field line k) bool_of_string_opt in
  match
    ( num "area",
      num "area_ratio",
      num "cp",
      num "target",
      bool "met",
      num "saving_pct",
      Option.bind (Journal.find_field line "iterations") int_of_string_opt,
      Journal.find_field line "stop",
      bool "resumed" )
  with
  | ( Some area,
      Some area_ratio,
      Some cp,
      Some target,
      Some met,
      Some saving_pct,
      Some iterations,
      Some stop,
      Some resumed ) ->
    Some
      (outcome_fields key spec
         { Job.job =
             { Job.circuit = spec.Protocol.circuit;
               factor = spec.Protocol.factor;
               solver = spec.Protocol.solver };
           area;
           area_ratio;
           cp;
           target;
           met;
           iterations;
           saving_pct;
           stop;
           resumed;
           perf = Perf.zero () })
  | _ -> None

(* replay the journal of a previous daemon life: accepted jobs reappear in
   the table, terminal ones with their exact recorded result (numbers
   round-trip bit-identically through the journal), unfinished ones as
   [Queued] for requeueing. Recovered result fields come back separately
   so the caller can restock its cache up to the byte budget. *)
let recover_table journal_path =
  let table : (string, entry) Hashtbl.t = Hashtbl.create 64 in
  let results : (string, (string * Json.t) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun (event, line) ->
      match Journal.find_field line "job" with
      | None -> ()
      | Some key -> (
        match event with
        | "serve-accepted" -> (
          match recover_submit line with
          | None -> ()
          | Some spec -> (
            match Hashtbl.find_opt table key with
            | Some e ->
              (* resubmission after cancel: back to the queue *)
              if e.state = Cancelled then e.state <- Queued
            | None ->
              Hashtbl.replace table key
                { key; spec; state = Queued; cancelling = false };
              order := key :: !order))
        | "job-result" -> (
          match Hashtbl.find_opt table key with
          | Some e -> (
            match recover_done_fields key e.spec line with
            | Some fields ->
              e.state <- Done;
              Hashtbl.replace results key fields
            | None -> ())
          | None -> ())
        | "job-failed" | "job-quarantined" | "job-lint-quarantined"
        | "job-infeasible-quarantined" -> (
          match Hashtbl.find_opt table key with
          | Some e ->
            let code =
              Option.value (Journal.find_field line "code") ~default:"internal"
            in
            e.state <-
              Failed
                { f_code = code;
                  f_message = code;
                  f_raw = extract_raw_error line;
                  f_quarantined = event <> "job-failed" }
          | None -> ())
        | "job-cancelled" -> (
          match Hashtbl.find_opt table key with
          | Some e -> e.state <- Cancelled
          | None -> ())
        | _ -> ()))
    (Journal.scan journal_path);
  (table, List.rev !order, results)

(* what a restarted daemon would reconstruct from this journal, as
   [(job key, state name)] in acceptance order — the torture harness
   diffs it across simulated crash points *)
let recovery_snapshot journal_path =
  let table, order, _ = recover_table journal_path in
  List.filter_map
    (fun key ->
      Option.map (fun e -> (key, state_name e.state)) (Hashtbl.find_opt table key))
    order

(* ---------- the worker thunk ---------- *)

let worker_thunk cfg (spec : Protocol.submit) (emit : Supervisor.emit) =
  if spec.sleep_seconds > 0.0 then Unix.sleepf spec.sleep_seconds;
  let key = Protocol.job_key spec in
  (* per-key checkpoint directory: jobs that share a circuit but differ in
     budget must never resume from each other's state *)
  let ckpt_dir =
    Filename.concat (Filename.concat cfg.run_dir "checkpoints") (slug key)
  in
  let limits =
    Budget.limits ?wall_seconds:spec.max_seconds
      ?max_iterations:spec.max_iterations ?max_pivots:spec.max_pivots ()
  in
  let bcfg =
    { Batch.default_config with
      Batch.checkpoint_dir = Some ckpt_dir;
      resume = true;
      preflight = false (* gated at admission, in the parent *);
      engine =
        { Minflotransit.default_options with
          Minflotransit.limits;
          (* warm bases across D-phase solves; the warm trajectory is
             bit-identical to the cold one, so checkpoint resume (which
             replays cold from the snapshot) stays exact *)
          warm_start = true;
          canonical_duals = true } }
  in
  Batch.run_job ~emit ~exhausted_ok:true bcfg
    { Job.circuit = spec.circuit; factor = spec.factor; solver = spec.solver }

(* ---------- client bookkeeping ---------- *)

(* Connections are nonblocking with a per-direction buffer, and anything
   left half-done — a partial request line in [rbuf], an unflushed
   response in [wbuf] — is subject to the I/O deadline. A parked
   [result --wait] connection has both buffers empty, so it can wait as
   long as it likes; a peer that stalls mid-request or stops reading its
   response gets reaped and can never wedge the accept loop. *)
type client = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  wbuf : Buffer.t;
  mutable alive : bool;
  mutable last_activity : float;
}

let flush_client client =
  let s = Buffer.contents client.wbuf in
  let n = String.length s in
  if n > 0 then begin
    let rec go off =
      if off >= n then off
      else
        match Unix.write_substring client.fd s off (n - off) with
        | 0 -> off
        | written ->
          client.last_activity <- Mono.now ();
          go (off + written)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
          off
        | exception Unix.Unix_error _ ->
          client.alive <- false;
          n
    in
    let off = go 0 in
    Buffer.clear client.wbuf;
    if client.alive && off < n then
      Buffer.add_substring client.wbuf s off (n - off)
  end

let send client json =
  if client.alive then begin
    Buffer.add_string client.wbuf (Json.to_string json ^ "\n");
    flush_client client
  end

(* ---------- the daemon ---------- *)

let unknown_job id =
  Json.Obj
    [ ("ok", Json.Bool false);
      ("code", Json.Str "unknown-job");
      ("id", Json.Str id) ]

let run ?(config = default_config) () : (unit, Diag.error) result =
  let cfg =
    { config with
      parallel = max 1 config.parallel;
      cache_bytes = max 0 config.cache_bytes }
  in
  mkdirs cfg.run_dir;
  let journal_path = Filename.concat cfg.run_dir "journal.jsonl" in
  (* replay the previous life's journal BEFORE taking the append lock:
     POSIX record locks die when the process closes *any* descriptor for
     the file, so a scan after [open_append] would silently release the
     single-instance lock *)
  let table, order, recovered = recover_table journal_path in
  match Journal.open_append journal_path with
  | Error e -> Error e (* Journal_locked: another live daemon owns this dir *)
  | Ok jr -> (
    (* stale socket from a SIGKILLed life: nobody is listening, remove it;
       a live listener means a config clash (same socket, different run
       dir — the journal lock would have caught the same run dir) *)
    let socket_check =
      if not (Sys.file_exists cfg.socket_path) then Ok ()
      else begin
        let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Unix.connect probe (Unix.ADDR_UNIX cfg.socket_path) with
        | () ->
          (try Unix.close probe with Unix.Unix_error _ -> ());
          Error
            (Diag.Io_error
               { file = cfg.socket_path;
                 msg = "socket already in use by a live daemon" })
        | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
          ->
          (try Unix.close probe with Unix.Unix_error _ -> ());
          (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
          Ok ()
        | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close probe with Unix.Unix_error _ -> ());
          Error
            (Diag.Io_error
               { file = cfg.socket_path; msg = Unix.error_message e })
      end
    in
    match socket_check with
    | Error e ->
      Journal.close jr;
      Error e
    | Ok () -> (
      let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
      Unix.listen listen_fd 64;
      let tcp_setup =
        match cfg.tcp with
        | None -> Ok None
        | Some spec -> (
          match Transport.parse spec with
          | Error msg -> Error (Diag.Io_error { file = spec; msg })
          | Ok (Transport.Unix_sock _) ->
            Error
              (Diag.Io_error { file = spec; msg = "--tcp expects HOST:PORT" })
          | Ok ep -> (
            match Transport.listen ep with
            | Error e -> Error e
            | Ok (fd, actual) -> Ok (Some (fd, actual))))
      in
      match tcp_setup with
      | Error e ->
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
        Journal.close jr;
        Error e
      | Ok tcp_listen ->
      let listen_fds =
        listen_fd :: (match tcp_listen with Some (fd, _) -> [ fd ] | None -> [])
      in
      let old_pipe =
        try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
        with Invalid_argument _ | Sys_error _ -> None
      in
      let t0 = Mono.now () in
      Journal.event jr
        ~fields:
          ([ Journal.field_str "socket" cfg.socket_path;
             Journal.field_int "parallel" cfg.parallel;
             Journal.field_int "queue_capacity" cfg.queue_capacity;
             Journal.field_int "cache_bytes" cfg.cache_bytes;
             Journal.field_int "pid" (Unix.getpid ()) ]
          @
          (* journal the *actual* TCP endpoint: with port 0 this is how
             anyone — tests included — learns which port the kernel gave *)
          match tcp_listen with
          | Some (_, actual) ->
            [ Journal.field_str "tcp" (Transport.to_string actual) ]
          | None -> [])
        "serve-start";
      let cache : (string * Json.t) list Result_cache.t =
        Result_cache.create ~budget_bytes:cfg.cache_bytes
      in
      let cache_put key fields =
        let rendered =
          Json.to_string (Json.Obj (("ok", Json.Bool true) :: fields))
        in
        Result_cache.put cache key fields ~bytes:(String.length rendered)
      in
      (* recovery: accepted-but-unfinished jobs from a previous life go
         back on the queue; finished ones restock the result cache, the
         budget deciding how many stay resident (oldest evict first) *)
      let admission : string Bounded_queue.t =
        Bounded_queue.create ~capacity:cfg.queue_capacity
      in
      let requeued = ref 0 and cached = ref 0 in
      List.iter
        (fun key ->
          match Hashtbl.find_opt table key with
          | Some e when e.state = Queued ->
            mkdirs
              (Filename.concat
                 (Filename.concat cfg.run_dir "checkpoints")
                 (slug key));
            Bounded_queue.push_force admission key;
            incr requeued
          | Some { state = Done; _ } ->
            (match Hashtbl.find_opt recovered key with
            | Some fields -> cache_put key fields
            | None -> ());
            incr cached
          | _ -> ())
        order;
      if order <> [] then
        Journal.event jr
          ~fields:
            [ Journal.field_int "jobs" (List.length order);
              Journal.field_int "requeued" !requeued;
              Journal.field_int "cached" !cached ]
          "serve-recovered";
      let pool : Job.outcome Supervisor.pool =
        Supervisor.pool_create
          ~config:
            { Supervisor.parallel = cfg.parallel;
              timeout_seconds = cfg.timeout_seconds;
              retries = cfg.retries;
              backoff_base = cfg.backoff_base;
              isolate = true;
              watchdog_seconds = cfg.watchdog_seconds }
          ~journal:jr ()
      in
      let clients : client list ref = ref [] in
      let waiters : (string, client list) Hashtbl.t = Hashtbl.create 8 in
      let worker_perf = ref (Perf.zero ()) in
      let draining = ref false in
      (* Read-only degraded mode: entered on the first storage failure in a
         load-bearing journal write (acceptance or result). A daemon that
         cannot journal can no longer promise "accepted means recoverable",
         so new admissions are refused with a typed [storage-error]
         rejection — but reads (status/result/stats/health, cache hits) and
         in-flight jobs keep being served instead of the daemon dying. *)
      let degraded : Diag.error option ref = ref None in
      let storage_error e =
        Json.Obj
          [ ("ok", Json.Bool false);
            ("code", Json.Str "storage-error");
            ("message", Json.Str (Diag.to_string e));
            ("error", Json.Raw (Diag.to_json e)) ]
      in
      let enter_degraded e =
        if !degraded = None then begin
          degraded := Some e;
          (* best-effort: the journal is likely the broken thing *)
          Journal.event jr ~error:e "serve-degraded"
        end
      in
      let drain_signal = ref false in
      let old_term =
        try
          Some
            (Sys.signal Sys.sigterm
               (Sys.Signal_handle (fun _ -> drain_signal := true)))
        with Invalid_argument _ | Sys_error _ -> None
      in
      let old_int =
        try
          Some
            (Sys.signal Sys.sigint
               (Sys.Signal_handle (fun _ -> drain_signal := true)))
        with Invalid_argument _ | Sys_error _ -> None
      in
      let start_drain reason =
        if not !draining then begin
          draining := true;
          Journal.event jr
            ~fields:[ Journal.field_str "reason" reason ]
            "serve-drain-start"
        end
      in
      (* a [Done] entry's fields come from the cache, or — after an
         eviction under memory pressure — from the journal, which holds
         every result ever produced; a journal hit re-warms the cache *)
      let done_fields entry =
        match Result_cache.find cache entry.key with
        | Some fields -> Some fields
        | None ->
          let found = ref None in
          List.iter
            (fun (event, line) ->
              if
                event = "job-result"
                && Journal.find_field line "job" = Some entry.key
              then
                match recover_done_fields entry.key entry.spec line with
                | Some fields -> found := Some fields
                | None -> ())
            (Journal.scan journal_path);
          (match !found with
          | Some fields -> cache_put entry.key fields
          | None -> ());
          !found
      in
      let render_terminal entry =
        match entry.state with
        | Done -> (
          match done_fields entry with
          | Some fields -> Json.Obj (("ok", Json.Bool true) :: fields)
          | None ->
            (* [job-result] is journaled (and fsynced) before the state
               flips to [Done], so this means the store broke that
               promise: the line was lost, torn, or the journal was
               truncated behind our back *)
            Protocol.error_response ~fields:[ ("id", Json.Str entry.key) ]
              (Diag.Storage_corrupt
                 { file = journal_path;
                   detail =
                     "job is recorded as done but its result is in neither \
                      cache nor journal" }))
        | Failed f ->
          Json.Obj
            [ ("ok", Json.Bool false);
              ("id", Json.Str entry.key);
              ("state", Json.Str "failed");
              ("code", Json.Str f.f_code);
              ("message", Json.Str f.f_message);
              ("error", Json.Raw f.f_raw);
              ("quarantined", Json.Bool f.f_quarantined) ]
        | Cancelled ->
          Json.Obj
            [ ("ok", Json.Bool false);
              ("id", Json.Str entry.key);
              ("state", Json.Str "cancelled");
              ("code", Json.Str "cancelled") ]
        | Queued | Running ->
          Json.Obj
            [ ("ok", Json.Bool false);
              ("id", Json.Str entry.key);
              ("state", Json.Str (state_name entry.state));
              ("code", Json.Str "pending") ]
      in
      let notify_waiters entry =
        match Hashtbl.find_opt waiters entry.key with
        | None -> ()
        | Some parked ->
          Hashtbl.remove waiters entry.key;
          let response = render_terminal entry in
          List.iter (fun c -> if c.alive then send c response) parked
      in
      let handle_finished (key, (o : Job.outcome Supervisor.outcome)) =
        match Hashtbl.find_opt table key with
        | None -> ()
        | Some entry ->
          (match o.Supervisor.verdict with
          | Ok oc ->
            worker_perf := Perf.add !worker_perf oc.Job.perf;
            (match journal_result jr key oc with
            | Ok () -> ()
            | Error e ->
              (* the result is served from cache for this life, but a
                 restart would lose it: stop admitting work we cannot
                 promise to recover *)
              enter_degraded e);
            cache_put key (outcome_fields key entry.spec oc);
            entry.state <- Done
          | Error _ when entry.cancelling ->
            Journal.event jr ~job:key "job-cancelled";
            entry.state <- Cancelled
          | Error e ->
            (* the pool already journaled job-failed / job-quarantined *)
            entry.state <-
              Failed
                { f_code = Diag.error_code e;
                  f_message = Diag.to_string e;
                  f_raw = Diag.to_json e;
                  f_quarantined = o.Supervisor.quarantined });
          notify_waiters entry
      in
      (* a forked worker inherits the listening socket and every client
         connection; if the daemon is later SIGKILLed, those inherited
         descriptors would keep the dead daemon's socket answering
         connects and wedge the restart's stale-socket probe — drop them
         first thing in the child *)
      let close_inherited_fds () =
        List.iter
          (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          listen_fds;
        List.iter
          (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
          !clients
      in
      let rec promote () =
        if Supervisor.pool_load pool < cfg.parallel then
          match Bounded_queue.pop admission with
          | None -> ()
          | Some key ->
            (match Hashtbl.find_opt table key with
            | Some entry when entry.state = Queued ->
              entry.state <- Running;
              Supervisor.pool_submit pool ~id:key (fun emit ->
                  close_inherited_fds ();
                  worker_thunk cfg entry.spec emit)
            | _ -> () (* cancelled while queued: skip *));
            promote ()
      in
      let lint_error spec =
        if not cfg.preflight then None
        else
          match Job.load_raw spec with
          | Error e -> Some e
          | Ok raw -> (
            let findings = Minflo_lint.Lint.check raw in
            match
              List.find_opt
                (fun (f : Minflo_lint.Finding.t) ->
                  f.rule.severity = Minflo_lint.Rule.Error)
                findings
            with
            | Some f -> Some (Minflo_lint.Finding.to_diag f)
            | None -> None)
      in
      (* MF201 admission gate: the interval-bound delay floor of a circuit
         is a static property, so a factor below it is rejected here with a
         typed error and a witness path — no worker, no solver. Memoized
         per circuit spec; the factor check itself is a float compare. *)
      let bounds_cache = Hashtbl.create 7 in
      let bounds_error (s : Protocol.submit) =
        if not cfg.preflight then None
        else
          match
            match Hashtbl.find_opt bounds_cache s.Protocol.circuit with
            | Some v -> v
            | None ->
              let v =
                match Job.load_circuit s.Protocol.circuit with
                | Error _ -> None (* load errors surface below, unchanged *)
                | Ok nl ->
                  let model = Minflo_tech.Model_cache.model nl in
                  Some
                    ( model,
                      Minflo_sizing.Sweep.dmin model,
                      Minflo_lint.Bounds.compute model )
              in
              Hashtbl.replace bounds_cache s.Protocol.circuit v;
              v
          with
          | None -> None
          | Some (model, dmin, bounds) ->
            Minflo_lint.Bounds.infeasible_target_error model bounds
              ~target:(s.Protocol.factor *. dmin)
      in
      (* "accepted means recoverable": the acceptance line must be durable
         before the client hears [accepted], so this write is checked and a
         failure refuses the admission (and flips to degraded mode) *)
      let journal_accepted key (s : Protocol.submit) =
        Journal.event_checked jr ~job:key
          ~fields:
            ([ Journal.field_str "circuit" s.circuit;
               Journal.field_float "factor" s.factor;
               Journal.field_str "solver" (Job.solver_name s.solver) ]
            @ (match s.max_seconds with
              | Some v -> [ Journal.field_float "max_seconds" v ]
              | None -> [])
            @ (match s.max_iterations with
              | Some v -> [ Journal.field_int "max_iterations" v ]
              | None -> [])
            @ (match s.max_pivots with
              | Some v -> [ Journal.field_int "max_pivots" v ]
              | None -> [])
            @
            if s.sleep_seconds > 0.0 then
              [ Journal.field_float "sleep_seconds" s.sleep_seconds ]
            else [])
          "serve-accepted"
      in
      let handle_submit (s : Protocol.submit) =
        let key = Protocol.job_key s in
        let existing = Hashtbl.find_opt table key in
        match existing with
        | Some ({ state = Done; _ } as entry) ->
          (* the result cache: same work, zero solves (an evicted entry
             is answered from the journal and re-warmed) *)
          Perf.tick_cache_hit ();
          Json.Obj
            (match render_terminal entry with
            | Json.Obj fields -> fields @ [ ("resubmitted", Json.Bool true) ]
            | _ -> assert false)
        | Some ({ state = Queued | Running | Failed _; _ } as entry) ->
          Protocol.ok
            [ ("id", Json.Str key);
              ("state", Json.Str (state_name entry.state));
              ("resubmitted", Json.Bool true) ]
        | (None | Some { state = Cancelled; _ }) when !degraded <> None ->
          Perf.tick_rejection ();
          (match !degraded with
          | Some e -> storage_error e
          | None -> assert false)
        | (None | Some { state = Cancelled; _ }) when !draining ->
          Perf.tick_rejection ();
          Protocol.error_response Diag.Draining
        | (None | Some { state = Cancelled; _ })
          when Bounded_queue.length admission >= Bounded_queue.capacity admission
          ->
          Perf.tick_rejection ();
          Protocol.error_response
            (Diag.Overloaded
               { depth = Bounded_queue.length admission;
                 limit = Bounded_queue.capacity admission })
        | None | Some { state = Cancelled; _ } -> (
          match lint_error s.circuit with
          | Some e ->
            (* structural reject, but still an accepted-and-recorded job:
               status/result queries answer from the table, and a restart
               reconstructs the same terminal state *)
            Perf.tick_rejection ();
            (match journal_accepted key s with
            | Error se ->
              enter_degraded se;
              storage_error se
            | Ok () ->
              Journal.event jr ~job:key ~error:e "job-lint-quarantined";
              let entry =
                { key;
                  spec = s;
                  state =
                    Failed
                      { f_code = Diag.error_code e;
                        f_message = Diag.to_string e;
                        f_raw = Diag.to_json e;
                        f_quarantined = true };
                  cancelling = false }
              in
              Hashtbl.replace table key entry;
              Protocol.error_response ~fields:[ ("id", Json.Str key) ] e)
          | None ->
            match bounds_error s with
            | Some e ->
              (* statically infeasible target: same accepted-and-recorded
                 terminal shape as a lint quarantine, so status queries and
                 restarts behave identically *)
              Perf.tick_rejection ();
              (match journal_accepted key s with
              | Error se ->
                enter_degraded se;
                storage_error se
              | Ok () ->
                Journal.event jr ~job:key ~error:e
                  "job-infeasible-quarantined";
                let entry =
                  { key;
                    spec = s;
                    state =
                      Failed
                        { f_code = Diag.error_code e;
                          f_message = Diag.to_string e;
                          f_raw = Diag.to_json e;
                          f_quarantined = true };
                    cancelling = false }
                in
                Hashtbl.replace table key entry;
                Protocol.error_response ~fields:[ ("id", Json.Str key) ] e)
            | None -> (
            match Job.load_circuit s.circuit with
            | Error e ->
              Perf.tick_rejection ();
              Protocol.error_response e
            | Ok nl ->
              (* build (or reuse) the delay model in the parent: workers
                 inherit it copy-on-write, and repeats hit the cache *)
              ignore (Minflo_tech.Model_cache.model nl);
              mkdirs
                (Filename.concat
                   (Filename.concat cfg.run_dir "checkpoints")
                   (slug key));
              match journal_accepted key s with
              | Error se ->
                (* nothing durable, so nothing is queued: a restart could
                   not reconstruct this job, and the client was never told
                   [accepted] *)
                Perf.tick_rejection ();
                enter_degraded se;
                storage_error se
              | Ok () ->
                (match existing with
                | Some entry ->
                  entry.state <- Queued;
                  entry.cancelling <- false
                | None ->
                  Hashtbl.replace table key
                    { key; spec = s; state = Queued; cancelling = false });
                (match Bounded_queue.push admission key with
                | Ok () -> ()
                | Error (`Full _) ->
                  (* capacity was checked above; unreachable single-threaded *)
                  Bounded_queue.push_force admission key);
                Protocol.ok
                  [ ("id", Json.Str key);
                    ("state", Json.Str "queued");
                    ("position", Json.Num (float_of_int (Bounded_queue.length admission))) ]))
      in
      let handle_cancel id =
        match Hashtbl.find_opt table id with
        | None -> unknown_job id
        | Some entry -> (
          match entry.state with
          | Queued ->
            entry.state <- Cancelled;
            Journal.event jr ~job:id "job-cancelled";
            notify_waiters entry;
            Protocol.ok
              [ ("id", Json.Str id); ("cancelled", Json.Str "pending") ]
          | Running -> (
            entry.cancelling <- true;
            match Supervisor.pool_cancel pool id with
            | `Cancelled_pending ->
              entry.state <- Cancelled;
              Journal.event jr ~job:id "job-cancelled";
              notify_waiters entry;
              Protocol.ok
                [ ("id", Json.Str id); ("cancelled", Json.Str "pending") ]
            | `Killed_running ->
              (* terminal state lands via pool_step -> handle_finished *)
              Protocol.ok
                [ ("id", Json.Str id); ("cancelled", Json.Str "running") ]
            | `Not_found ->
              entry.state <- Cancelled;
              Journal.event jr ~job:id "job-cancelled";
              notify_waiters entry;
              Protocol.ok
                [ ("id", Json.Str id); ("cancelled", Json.Str "pending") ])
          | Done | Failed _ | Cancelled ->
            Json.Obj
              [ ("ok", Json.Bool false);
                ("code", Json.Str "already-terminal");
                ("id", Json.Str id);
                ("state", Json.Str (state_name entry.state)) ])
      in
      let job_counts () =
        let q = ref 0 and r = ref 0 and d = ref 0 and f = ref 0 and c = ref 0 in
        Hashtbl.iter
          (fun _ e ->
            match e.state with
            | Queued -> incr q
            | Running -> incr r
            | Done -> incr d
            | Failed _ -> incr f
            | Cancelled -> incr c)
          table;
        (!q, !r, !d, !f, !c)
      in
      let handle_stats () =
        let q, r, d, f, c = job_counts () in
        let counters = Perf.add (Perf.snapshot ()) !worker_perf in
        Protocol.ok
          [ ("pid", Json.Num (float_of_int (Unix.getpid ())));
            ("uptime_seconds", Json.Num (Mono.now () -. t0));
            ("draining", Json.Bool !draining);
            ("degraded", Json.Bool (!degraded <> None));
            ( "jobs",
              Json.Obj
                [ ("queued", Json.Num (float_of_int q));
                  ("running", Json.Num (float_of_int r));
                  ("done", Json.Num (float_of_int d));
                  ("failed", Json.Num (float_of_int f));
                  ("cancelled", Json.Num (float_of_int c)) ] );
            ( "queue",
              Json.Obj
                [ ( "depth",
                    Json.Num (float_of_int (Bounded_queue.length admission)) );
                  ( "capacity",
                    Json.Num (float_of_int (Bounded_queue.capacity admission))
                  );
                  ("peak", Json.Num (float_of_int (Bounded_queue.peak admission)))
                ] );
            ( "cache",
              Json.Obj
                [ ( "entries",
                    Json.Num (float_of_int (Result_cache.entries cache)) );
                  ("bytes", Json.Num (float_of_int (Result_cache.bytes cache)));
                  ( "budget",
                    Json.Num (float_of_int (Result_cache.budget cache)) );
                  ( "evictions",
                    Json.Num (float_of_int (Result_cache.evictions cache)) )
                ] );
            ( "counters",
              Json.Obj
                (List.map
                   (fun (k, v) -> (k, Json.Num (float_of_int v)))
                   (Perf.to_fields counters)) ) ]
      in
      let handle_health () =
        let _, r, _, _, _ = job_counts () in
        Protocol.ok
          [ ( "status",
              Json.Str
                (if !degraded <> None then "degraded"
                 else if !draining then "draining"
                 else "ok") );
            ("pid", Json.Num (float_of_int (Unix.getpid ())));
            ( "in_flight",
              Json.Num
                (float_of_int (r + Bounded_queue.length admission)) ) ]
      in
      (* returns [None] when the client was parked (result --wait) *)
      let handle_request client req : Json.t option =
        match req with
        | Protocol.Submit s -> Some (handle_submit s)
        | Protocol.Status id -> (
          match Hashtbl.find_opt table id with
          | None -> Some (unknown_job id)
          | Some entry ->
            Some
              (Protocol.ok
                 [ ("id", Json.Str id);
                   ("state", Json.Str (state_name entry.state)) ]))
        | Protocol.Result { id; wait } -> (
          match Hashtbl.find_opt table id with
          | None -> Some (unknown_job id)
          | Some entry -> (
            match entry.state with
            | Done | Failed _ | Cancelled -> Some (render_terminal entry)
            | Queued | Running ->
              if wait then begin
                Hashtbl.replace waiters id
                  (client
                  :: Option.value (Hashtbl.find_opt waiters id) ~default:[]);
                None
              end
              else Some (render_terminal entry)))
        | Protocol.Cancel id -> Some (handle_cancel id)
        | Protocol.Stats -> Some (handle_stats ())
        | Protocol.Health -> Some (handle_health ())
        | Protocol.Drain ->
          start_drain "request";
          Some (Protocol.ok [ ("draining", Json.Bool true) ])
      in
      let process_line client line =
        if String.trim line <> "" then
          let response =
            match Json.parse line with
            | Error msg -> Some (Protocol.bad_request msg)
            | Ok j -> (
              match Protocol.request_of_json j with
              | Error msg -> Some (Protocol.bad_request msg)
              | Ok req -> handle_request client req)
          in
          match response with Some r -> send client r | None -> ()
      in
      let read_client client =
        let bytes = Bytes.create 4096 in
        (* EINTR-retrying: a SIGCHLD from a finishing worker mid-read must
           not be mistaken for a dead client *)
        (match Io.read_retry client.fd bytes 0 4096 with
        | 0 -> client.alive <- false
        | n ->
          client.last_activity <- Mono.now ();
          Buffer.add_subbytes client.rbuf bytes 0 n
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
          ()
        | exception Unix.Unix_error _ -> client.alive <- false);
        if Buffer.length client.rbuf > 1_000_000 then begin
          send client (Protocol.bad_request "request line too long");
          client.alive <- false
        end;
        let s = Buffer.contents client.rbuf in
        match String.rindex_opt s '\n' with
        | None -> ()
        | Some last ->
          Buffer.clear client.rbuf;
          Buffer.add_substring client.rbuf s (last + 1)
            (String.length s - last - 1);
          List.iter
            (fun line -> if client.alive then process_line client line)
            (String.split_on_char '\n' (String.sub s 0 last))
      in
      let accept_clients lfd =
        match Unix.accept lfd with
        | fd, _ ->
          Unix.set_nonblock fd;
          Transport.set_nodelay fd;
          clients :=
            { fd;
              rbuf = Buffer.create 256;
              wbuf = Buffer.create 256;
              alive = true;
              last_activity = Mono.now () }
            :: !clients
        | exception Unix.Unix_error _ -> ()
      in
      let reap_clients () =
        let dead, live = List.partition (fun c -> not c.alive) !clients in
        clients := live;
        List.iter
          (fun c ->
            (try Unix.close c.fd with Unix.Unix_error _ -> ());
            (* forget any parked waits from this connection *)
            Hashtbl.iter
              (fun key parked ->
                if List.memq c parked then
                  Hashtbl.replace waiters key
                    (List.filter (fun w -> not (w == c)) parked))
              (Hashtbl.copy waiters))
          dead
      in
      let rec loop () =
        let fds = listen_fds @ List.map (fun c -> c.fd) !clients in
        let wfds =
          List.filter_map
            (fun c ->
              if c.alive && Buffer.length c.wbuf > 0 then Some c.fd else None)
            !clients
        in
        let readable, writable =
          match Unix.select fds wfds [] 0.05 with
          | r, w, _ -> (r, w)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
        in
        List.iter
          (fun lfd -> if List.mem lfd readable then accept_clients lfd)
          listen_fds;
        List.iter
          (fun c -> if List.mem c.fd readable then read_client c)
          !clients;
        List.iter
          (fun c -> if List.mem c.fd writable then flush_client c)
          !clients;
        (* the I/O deadline: any connection with half-done work — a
           partial request line buffered, or a response the peer is not
           reading — is reaped once it stalls past the deadline. A parked
           [result --wait] has both buffers empty and is exempt. *)
        let now = Mono.now () in
        List.iter
          (fun c ->
            if
              c.alive
              && (Buffer.length c.rbuf > 0 || Buffer.length c.wbuf > 0)
              && now -. c.last_activity > cfg.io_timeout_seconds
            then c.alive <- false)
          !clients;
        List.iter handle_finished (Supervisor.pool_step pool);
        promote ();
        reap_clients ();
        if !drain_signal then start_drain "signal";
        if
          !draining
          && Bounded_queue.is_empty admission
          && Supervisor.pool_idle pool
        then ()
        else loop ()
      in
      loop ();
      let _, _, d, f, c = job_counts () in
      Journal.event jr
        ~fields:
          [ Journal.field_int "done" d;
            Journal.field_int "failed" f;
            Journal.field_int "cancelled" c ]
        "serve-drain-complete";
      Journal.close jr;
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        !clients;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        listen_fds;
      (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
      (match old_pipe with
      | Some b -> (
        try Sys.set_signal Sys.sigpipe b
        with Invalid_argument _ | Sys_error _ -> ())
      | None -> ());
      (match old_term with
      | Some b -> (
        try Sys.set_signal Sys.sigterm b
        with Invalid_argument _ | Sys_error _ -> ())
      | None -> ());
      (match old_int with
      | Some b -> (
        try Sys.set_signal Sys.sigint b
        with Invalid_argument _ | Sys_error _ -> ())
      | None -> ());
      Ok ()))
