(** Where the daemon listens and clients connect: a unix socket for
    same-host work, TCP for multi-host serving. One abstraction so the
    server, the client, the load generator and the chaos proxy all accept
    either transport through a single flag syntax.

    TCP connections get [TCP_NODELAY] (the protocol is one-line
    request/response; Nagle would tax every exchange) and deadline
    support, so a stalled or half-open peer produces a typed
    {!Minflo_robust.Diag.Net_timeout} instead of an unbounded hang. *)

type endpoint =
  | Unix_sock of string  (** filesystem path of a unix-domain socket. *)
  | Tcp of string * int  (** host (name or literal address) and port. *)

val parse : string -> (endpoint, string) result
(** ["HOST:PORT"] is TCP; ["unix:PATH"] — or any string whose last
    colon-suffix is not a port number, including plain paths — is a unix
    socket. Port [0] is allowed for TCP: the kernel picks, and the daemon
    journals the port it got. *)

val to_string : endpoint -> string
(** The display form diagnostics carry: [PATH] or [HOST:PORT]. *)

val listen :
  ?backlog:int ->
  endpoint ->
  (Unix.file_descr * endpoint, Minflo_robust.Diag.error) result
(** Bind and listen. The returned endpoint is the {e actual} one — for
    TCP port [0] it carries the kernel-assigned port. Unix-socket callers
    handle stale-file cleanup themselves before calling. *)

val connect :
  ?timeout:float ->
  endpoint ->
  (Unix.file_descr, Minflo_robust.Diag.error) result
(** Connect, optionally bounded by [timeout] seconds (nonblocking connect
    + select, so an unreachable host cannot wedge the caller). A peer
    actively refusing — or a missing socket file — is the typed
    [Connect_refused]; a deadline expiry is [Net_timeout]. *)

val set_nodelay : Unix.file_descr -> unit
(** [TCP_NODELAY] (best-effort; silently a no-op on unix sockets). *)

val set_io_timeout : Unix.file_descr -> float -> unit
(** Arm kernel read/write deadlines ([SO_RCVTIMEO]/[SO_SNDTIMEO]) on a
    connected descriptor; a blocked read then fails with [EAGAIN], which
    the client layer maps to [Net_timeout]. Best-effort (a no-op where
    unsupported). *)
