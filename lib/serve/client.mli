(** Client side of the serve protocol, with the resilience layer every
    caller ([minflo client], [minflo loadgen], the tests) goes through:
    bounded retries with exponential backoff and seeded jitter, per-op
    deadlines, and typed network failures — a dead daemon, a stalled
    peer, or a torn response line can never hang a caller forever or
    surface as a parse crash.

    Retrying is safe because every protocol op is idempotent: [submit]
    dedupes on the job key (a resend of an accepted job answers
    [resubmitted]), the query ops are reads, and [cancel] is stable once
    terminal. A {e response the daemon produced} — even a typed rejection
    like [overloaded] — is never retried: it is an answer. Only transport
    failures are: [connect-refused], [net-timeout], [torn-response], and
    untyped I/O errors. *)

(** {1 One connection} *)

type conn

val connect :
  ?timeout:float ->
  Transport.endpoint ->
  (conn, Minflo_robust.Diag.error) result
(** Dial; [timeout] bounds the connect {e and} arms kernel read/write
    deadlines on the connection, so every later {!request} on it is
    bounded too. *)

val request : conn -> Json.t -> (Json.t, Minflo_robust.Diag.error) result
(** Send one request, await its one-line response. Failure modes:
    [Net_timeout] past the deadline, [Torn_response] when the connection
    closes mid-line or the line does not parse, [Io_error] otherwise.
    With [{"op":"result", "wait":true}] this blocks (up to the deadline)
    while the daemon parks the connection. *)

val close : conn -> unit

(** {1 Retrying sessions} *)

type retry = {
  attempts : int;          (** total tries, [>= 1]. *)
  backoff_base : float;    (** first retry delay, seconds; doubles. *)
  timeout : float option;  (** per-attempt connect + I/O deadline. *)
  seed : int;              (** jitter stream — replays exactly. *)
}

val default_retry : retry
(** [attempts = 3; backoff_base = 0.1; timeout = Some 30.0; seed = 0]. *)

type session

val session : ?retry:retry -> Transport.endpoint -> session
(** A lazily-connected session. Connections are dialed on first use and
    redialed after any failure (the old connection's state is unknowable
    — half a response may be in flight — so it is always dropped). *)

val rpc : session -> Json.t -> (Json.t, Minflo_robust.Diag.error) result
(** {!request} with the session's retry policy. Delay before retry [k]
    is [backoff_base * 2^(k-1)], jittered multiplicatively in
    [\[0.5, 1.5)] from the seeded stream. The final error reports how
    many attempts were made where the type carries it. *)

val close_session : session -> unit

val one_shot :
  ?retry:retry ->
  endpoint:Transport.endpoint ->
  Json.t ->
  (Json.t, Minflo_robust.Diag.error) result
(** [session], one {!rpc}, [close_session]. *)
