(** Client side of the serve protocol: blocking request/response over the
    daemon's unix socket. One JSON value per line in each direction. *)

type conn

val connect : string -> (conn, Minflo_robust.Diag.error) result

val request : conn -> Json.t -> (Json.t, Minflo_robust.Diag.error) result
(** Send one request, block until its response line. With
    [{"op":"result", "wait":true}] this blocks until the job is terminal
    — the daemon parks the connection. *)

val one_shot : socket:string -> Json.t -> (Json.t, Minflo_robust.Diag.error) result
(** Connect, {!request}, close. *)

val close : conn -> unit
