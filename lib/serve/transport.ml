module Diag = Minflo_robust.Diag

type endpoint =
  | Unix_sock of string
  | Tcp of string * int

let to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let parse s =
  if s = "" then Error "empty endpoint"
  else if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    let path = String.sub s 5 (String.length s - 5) in
    if path = "" then Error "empty unix socket path" else Ok (Unix_sock path)
  else
    (* HOST:PORT iff the text after the last colon is a port number;
       anything else (including bare names with no colon) is a socket
       path, so existing --socket values keep meaning what they meant *)
    match String.rindex_opt s ':' with
    | None -> Ok (Unix_sock s)
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 65535 && host <> "" -> Ok (Tcp (host, p))
      | Some _ -> Error (Printf.sprintf "port out of range in %S" s)
      | None -> Ok (Unix_sock s))

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 ->
      Ok addrs.(0)
    | _ -> Error (Diag.Io_error { file = host; msg = "cannot resolve host" })
    | exception Not_found ->
      Error (Diag.Io_error { file = host; msg = "cannot resolve host" }))

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Nagle would add up to 40ms to every one-line request/response
   exchange; the protocol is strictly request/response so there is
   nothing to coalesce *)
let set_nodelay fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let listen ?(backlog = 64) endpoint :
    (Unix.file_descr * endpoint, Diag.error) result =
  match endpoint with
  | Unix_sock path -> (
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd backlog
    with
    | () -> Ok (fd, endpoint)
    | exception Unix.Unix_error (e, _, _) ->
      close_quietly fd;
      Error (Diag.Io_error { file = path; msg = Unix.error_message e }))
  | Tcp (host, port) -> (
    match resolve host with
    | Error _ as e -> e
    | Ok addr -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (addr, port));
        Unix.listen fd backlog;
        (* port 0 asks the kernel to pick: report what it picked, so a
           test (or an operator scraping the journal) can find the
           daemon without racing it for a port number *)
        Unix.getsockname fd
      with
      | Unix.ADDR_INET (bound, actual) ->
        Ok (fd, Tcp (Unix.string_of_inet_addr bound, actual))
      | Unix.ADDR_UNIX _ -> Ok (fd, endpoint)
      | exception Unix.Unix_error (e, _, _) ->
        close_quietly fd;
        Error
          (Diag.Io_error
             { file = to_string endpoint; msg = Unix.error_message e })))

let refused endpoint =
  Diag.Connect_refused { endpoint = to_string endpoint; attempts = 1 }

(* a peer (or a chaos proxy) hard-closing mid-exchange must surface as
   EPIPE — a retryable [Io_error] — not as a fatal SIGPIPE; the daemon
   ignores the signal for itself, dialing callers need the same *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

let connect ?timeout endpoint : (Unix.file_descr, Diag.error) result =
  Lazy.force ignore_sigpipe;
  let name = to_string endpoint in
  let domain, addr =
    match endpoint with
    | Unix_sock path -> (Unix.PF_UNIX, Ok (Unix.ADDR_UNIX path))
    | Tcp (host, port) ->
      ( Unix.PF_INET,
        Result.map (fun a -> Unix.ADDR_INET (a, port)) (resolve host) )
  in
  match addr with
  | Error _ as e -> e
  | Ok addr -> (
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    let finish_ok () =
      set_nodelay fd;
      Ok fd
    in
    let fail e =
      close_quietly fd;
      Error e
    in
    match timeout with
    | None -> (
      match Unix.connect fd addr with
      | () -> finish_ok ()
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        fail (refused endpoint)
      | exception Unix.Unix_error (e, _, _) ->
        fail (Diag.Io_error { file = name; msg = Unix.error_message e }))
    | Some seconds -> (
      (* nonblocking connect + select: a peer that accepts SYNs but never
         completes the handshake (or a dead routed host) cannot hold the
         client past its deadline *)
      Unix.set_nonblock fd;
      let pending =
        match Unix.connect fd addr with
        | () -> Ok false
        | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> Ok true
        | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
          ->
          Error (refused endpoint)
        | exception Unix.Unix_error (e, _, _) ->
          Error (Diag.Io_error { file = name; msg = Unix.error_message e })
      in
      match pending with
      | Error e -> fail e
      | Ok false ->
        Unix.clear_nonblock fd;
        finish_ok ()
      | Ok true -> (
        match Unix.select [] [ fd ] [] seconds with
        | _, [], _ ->
          fail (Diag.Net_timeout { endpoint = name; op = "connect"; seconds })
        | _ -> (
          match Unix.getsockopt_error fd with
          | None ->
            Unix.clear_nonblock fd;
            finish_ok ()
          | Some (Unix.ECONNREFUSED | Unix.ENOENT) -> fail (refused endpoint)
          | Some e ->
            fail (Diag.Io_error { file = name; msg = Unix.error_message e }))
        | exception Unix.Unix_error (e, _, _) ->
          fail (Diag.Io_error { file = name; msg = Unix.error_message e }))))

let set_io_timeout fd seconds =
  try
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO seconds
  with Unix.Unix_error _ | Invalid_argument _ -> ()
