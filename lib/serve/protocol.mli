(** The serve wire protocol: newline-delimited JSON requests/responses.

    Every request is one JSON object on one line with an ["op"] field;
    every response is one JSON object on one line with an ["ok"] bool.
    Failures carry a typed {!Minflo_robust.Diag} error: a stable ["code"],
    a human ["message"], and the structured ["error"] object — so clients
    can branch on [overloaded] vs [draining] vs [lint] without parsing
    prose. *)

type submit = {
  circuit : string;       (** suite name or path, as in {!Minflo_runner.Job}. *)
  factor : float;         (** delay target as a fraction of Dmin. *)
  solver : Minflo_runner.Job.solver;
  max_seconds : float option;    (** per-request run budget: wall clock. *)
  max_iterations : int option;   (** per-request run budget: D/W passes. *)
  max_pivots : int option;       (** per-request run budget: flow pivots. *)
  sleep_seconds : float;
      (** artificial pre-solve latency (load testing; default 0). *)
}

type request =
  | Submit of submit
  | Status of string          (** one job's lifecycle state. *)
  | Result of { id : string; wait : bool }
      (** final result; [wait] parks the connection until terminal. *)
  | Cancel of string
  | Stats                     (** queue depth, perf counters, job counts. *)
  | Health                    (** liveness/readiness probe. *)
  | Drain
      (** stop admitting, finish in-flight work, seal the journal, exit. *)

val job_key : submit -> string
(** The job's identity — {!Minflo_runner.Job.id} plus a suffix for any
    custom budget or sleep. Submitting the same key twice is idempotent:
    the daemon answers the second from its result cache. *)

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result

val ok : (string * Json.t) list -> Json.t
(** [{"ok": true, ...fields}]. *)

val error_response :
  ?fields:(string * Json.t) list -> Minflo_robust.Diag.error -> Json.t
(** [{"ok": false, "code": ..., "message": ..., "error": {...}}]. *)

val bad_request : string -> Json.t
(** Protocol-level failure (unparsable line, unknown op): code
    ["bad-request"]. *)
