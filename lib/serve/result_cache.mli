(** The daemon's in-memory result cache, bounded by a byte budget.

    Terminal results are journaled before they are cached, so the cache
    is purely an accelerator: when memory pressure evicts an entry (least
    recently used first), a later query for that key re-reads the result
    from the journal and re-warms the cache — idempotent resubmission
    stays correct at any budget, including zero.

    Every eviction ticks {!Minflo_robust.Perf.tick_eviction} and the
    cache's own counter (reported by the daemon's [stats] op), so a
    budget that is too small for the working set is visible, not
    silent. *)

type 'a t

val create : budget_bytes:int -> 'a t

val put : 'a t -> string -> 'a -> bytes:int -> unit
(** Insert (or replace) as most-recently-used, accounted at [bytes] —
    the rendered wire size of the stored response — then evict from the
    cold end until resident bytes fit the budget again. A single entry
    larger than the whole budget is evicted immediately. *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit becomes most-recently-used. *)

val remove : 'a t -> string -> unit

val bytes : 'a t -> int
(** Resident total; [<= budget] always. *)

val entries : 'a t -> int
val budget : 'a t -> int

val evictions : 'a t -> int
(** Entries dropped under pressure so far. *)
