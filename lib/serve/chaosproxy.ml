module Diag = Minflo_robust.Diag
module Fault = Minflo_robust.Fault
module Mono = Minflo_robust.Mono

type fault_arm = {
  site : string;
  count : int option;
  prob : float option;
}

type config = {
  listen : Transport.endpoint;
  upstream : Transport.endpoint;
  faults : fault_arm list;
  seed : int;
  delay_seconds : float;
  connect_timeout : float;
  report_path : string option;
}

let default_config =
  { listen = Transport.Tcp ("127.0.0.1", 0);
    upstream = Transport.Unix_sock "minflo.sock";
    faults = [];
    seed = 0;
    delay_seconds = 0.2;
    connect_timeout = 5.0;
    report_path = None }

(* One proxied connection: a client descriptor and its dedicated upstream
   descriptor, with a line buffer per direction. Forwarding is
   line-oriented so every fault lands on a whole protocol unit: a request
   can be stalled, a response delayed, torn mid-line, or the connection
   dropped at accept — exactly the failure taxonomy clients must absorb. *)
type pair = {
  cfd : Unix.file_descr;
  ufd : Unix.file_descr;
  c2u : Buffer.t;   (* bytes from the client, not yet split into lines *)
  u2c : Buffer.t;
  mutable alive : bool;
}

(* a line waiting out an injected stall/delay before it is forwarded *)
type pending = {
  release : float;
  dest : [ `Upstream | `Client ];
  pair : pair;
  line : string;    (* includes the trailing newline *)
  torn : bool;      (* forward only half, skip the newline, then drop *)
}

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let kill_pair p =
  if p.alive then begin
    p.alive <- false;
    close_quietly p.cfd;
    close_quietly p.ufd
  end

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> ()
  in
  go 0

let deliver (p : pending) =
  if p.pair.alive then
    if p.torn then begin
      (* half the line, no newline, then a hard close: the client sees a
         torn response and must answer with the typed diagnostic *)
      let keep = String.length p.line / 2 in
      write_all p.pair.cfd (String.sub p.line 0 keep);
      kill_pair p.pair
    end
    else
      write_all
        (match p.dest with `Upstream -> p.pair.ufd | `Client -> p.pair.cfd)
        p.line

let report_json plan =
  let fields =
    List.map
      (fun site ->
        Printf.sprintf "\"%s\": %d" site (Fault.fired plan ~site))
      (Fault.sites plan)
  in
  "{" ^ String.concat ", " fields ^ "}"

let run ?(config = default_config) () : (unit, Diag.error) result =
  let cfg = config in
  let plan = Fault.create ~seed:cfg.seed () in
  List.iter
    (fun { site; count; prob } ->
      Fault.arm plan ~site ?count ?prob (Fault.Perturb 0.0))
    cfg.faults;
  match Transport.listen cfg.listen with
  | Error e -> Error e
  | Ok (lfd, actual) ->
    (* the chosen endpoint on stdout: with port 0, this is how the test
       harness (or operator) finds the proxy *)
    print_endline (Transport.to_string actual);
    (try flush stdout with Sys_error _ -> ());
    let old_pipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ | Sys_error _ -> None
    in
    let stop = ref false in
    let install sg =
      try Some (Sys.signal sg (Sys.Signal_handle (fun _ -> stop := true)))
      with Invalid_argument _ | Sys_error _ -> None
    in
    let old_term = install Sys.sigterm in
    let old_int = install Sys.sigint in
    let pairs : pair list ref = ref [] in
    let queue : pending list ref = ref [] in
    let fire site = Fault.fire plan ~site <> None in
    let accept_one () =
      match Unix.accept lfd with
      | cfd, _ ->
        if fire "net.accept-drop" then close_quietly cfd
        else (
          match Transport.connect ~timeout:cfg.connect_timeout cfg.upstream with
          | Error _ ->
            (* upstream down: drop the client; its retry layer redials *)
            close_quietly cfd
          | Ok ufd ->
            pairs :=
              { cfd;
                ufd;
                c2u = Buffer.create 256;
                u2c = Buffer.create 256;
                alive = true }
              :: !pairs)
      | exception Unix.Unix_error _ -> ()
    in
    (* split [buf] into complete lines, leaving the partial tail *)
    let take_lines buf =
      let s = Buffer.contents buf in
      match String.rindex_opt s '\n' with
      | None -> []
      | Some last ->
        Buffer.clear buf;
        Buffer.add_substring buf s (last + 1) (String.length s - last - 1);
        List.map
          (fun l -> l ^ "\n")
          (String.split_on_char '\n' (String.sub s 0 last))
    in
    let forward p line ~dest =
      let now = Mono.now () in
      match dest with
      | `Upstream ->
        if fire "net.read-stall" then
          queue :=
            { release = now +. cfg.delay_seconds;
              dest;
              pair = p;
              line;
              torn = false }
            :: !queue
        else deliver { release = now; dest; pair = p; line; torn = false }
      | `Client ->
        if fire "net.torn-write" then
          deliver { release = now; dest; pair = p; line; torn = true }
        else if fire "net.delayed-response" then
          queue :=
            { release = now +. cfg.delay_seconds;
              dest;
              pair = p;
              line;
              torn = false }
            :: !queue
        else deliver { release = now; dest; pair = p; line; torn = false }
    in
    let pump p fd buf ~dest =
      let bytes = Bytes.create 4096 in
      match Unix.read fd bytes 0 4096 with
      | 0 ->
        (* one side closed: flush nothing further, tear the pair down —
           any queued lines for it are dropped by [deliver]'s guard *)
        kill_pair p
      | n ->
        Buffer.add_subbytes buf bytes 0 n;
        List.iter (fun line -> forward p line ~dest) (take_lines buf)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> kill_pair p
    in
    while not !stop do
      let fds =
        lfd
        :: List.concat_map
             (fun p -> if p.alive then [ p.cfd; p.ufd ] else [])
             !pairs
      in
      let readable =
        match Unix.select fds [] [] 0.02 with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      if List.mem lfd readable then accept_one ();
      List.iter
        (fun p ->
          if p.alive && List.mem p.cfd readable then
            pump p p.cfd p.c2u ~dest:`Upstream;
          if p.alive && List.mem p.ufd readable then
            pump p p.ufd p.u2c ~dest:`Client)
        !pairs;
      (* release anything whose injected delay has elapsed *)
      let now = Mono.now () in
      let due, later = List.partition (fun q -> q.release <= now) !queue in
      queue := later;
      (* deliveries in arrival order: the queue is a LIFO accumulator *)
      List.iter deliver (List.rev due);
      pairs := List.filter (fun p -> p.alive) !pairs
    done;
    List.iter kill_pair !pairs;
    close_quietly lfd;
    (match cfg.listen with
    | Transport.Unix_sock path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
    | Transport.Tcp _ -> ());
    (match cfg.report_path with
    | Some path -> (
      try
        let oc = open_out path in
        output_string oc (report_json plan ^ "\n");
        close_out oc
      with Sys_error _ -> ())
    | None -> ());
    let restore sg old =
      match old with
      | Some b -> (
        try Sys.set_signal sg b with Invalid_argument _ | Sys_error _ -> ())
      | None -> ()
    in
    restore Sys.sigpipe old_pipe;
    restore Sys.sigterm old_term;
    restore Sys.sigint old_int;
    Ok ()
