module Perf = Minflo_robust.Perf

(* Intrusive doubly-linked LRU list threaded through the hash table's
   entries: find/put/evict are all O(1), and byte accounting is exact
   because the caller hands us the rendered size of what it stores. *)
type 'a node = {
  nkey : string;
  value : 'a;
  size : int;
  mutable prev : 'a node option;  (* toward most-recent *)
  mutable next : 'a node option;  (* toward least-recent *)
}

type 'a t = {
  budget : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used *)
  mutable bytes : int;
  mutable evictions : int;
}

let create ~budget_bytes =
  { budget = max 0 budget_bytes;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    bytes = 0;
    evictions = 0 }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let drop t n =
  unlink t n;
  Hashtbl.remove t.table n.nkey;
  t.bytes <- t.bytes - n.size

let evict_to_budget t =
  while t.bytes > t.budget do
    match t.tail with
    | None -> t.bytes <- 0 (* unreachable: bytes > 0 implies a tail *)
    | Some lru ->
      drop t lru;
      t.evictions <- t.evictions + 1;
      Perf.tick_eviction ()
  done

let put t key value ~bytes =
  (match Hashtbl.find_opt t.table key with
  | Some old -> drop t old
  | None -> ());
  let n = { nkey = key; value; size = max 0 bytes; prev = None; next = None } in
  Hashtbl.replace t.table key n;
  push_front t n;
  t.bytes <- t.bytes + n.size;
  (* an entry bigger than the whole budget is evicted straight away (the
     journal still holds it); the resident set never exceeds the budget *)
  evict_to_budget t

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some n ->
    unlink t n;
    push_front t n;
    Some n.value

let remove t key =
  match Hashtbl.find_opt t.table key with
  | Some n -> drop t n
  | None -> ()

let bytes t = t.bytes
let entries t = Hashtbl.length t.table
let budget t = t.budget
let evictions t = t.evictions
