type 'a t = {
  q : 'a Queue.t;
  capacity : int;
  mutable peak : int;
}

let create ~capacity = { q = Queue.create (); capacity = max 0 capacity; peak = 0 }

let length t = Queue.length t.q

let capacity t = t.capacity

let peak t = t.peak

let note_depth t =
  let d = Queue.length t.q in
  if d > t.peak then t.peak <- d

let push t x =
  if Queue.length t.q >= t.capacity then Error (`Full (Queue.length t.q))
  else begin
    Queue.add x t.q;
    note_depth t;
    Ok ()
  end

let push_force t x =
  Queue.add x t.q;
  note_depth t

let pop t = Queue.take_opt t.q

let is_empty t = Queue.is_empty t.q
