module Diag = Minflo_robust.Diag

type conn = { fd : Unix.file_descr; buf : Buffer.t }

let connect socket_path : (conn, Diag.error) result =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | () -> Ok { fd; buf = Buffer.create 256 }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Diag.Io_error { file = socket_path; msg = Unix.error_message e })

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let read_line conn : (string, Diag.error) result =
  let rec take () =
    let s = Buffer.contents conn.buf in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear conn.buf;
      Buffer.add_substring conn.buf s (i + 1) (String.length s - i - 1);
      Ok (String.sub s 0 i)
    | None -> (
      let bytes = Bytes.create 4096 in
      match Unix.read conn.fd bytes 0 4096 with
      | 0 ->
        Error
          (Diag.Io_error
             { file = "daemon socket"; msg = "connection closed by daemon" })
      | n ->
        Buffer.add_subbytes conn.buf bytes 0 n;
        take ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> take ()
      | exception Unix.Unix_error (e, _, _) ->
        Error
          (Diag.Io_error { file = "daemon socket"; msg = Unix.error_message e }))
  in
  take ()

let request conn (j : Json.t) : (Json.t, Diag.error) result =
  let line = Json.to_string j ^ "\n" in
  let n = String.length line in
  let rec write_all off =
    if off >= n then Ok ()
    else
      match Unix.write_substring conn.fd line off (n - off) with
      | written -> write_all (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
      | exception Unix.Unix_error (e, _, _) ->
        Error
          (Diag.Io_error { file = "daemon socket"; msg = Unix.error_message e })
  in
  match write_all 0 with
  | Error _ as e -> e
  | Ok () -> (
    match read_line conn with
    | Error _ as e -> e
    | Ok line -> (
      match Json.parse line with
      | Ok j -> Ok j
      | Error msg ->
        Error
          (Diag.Io_error
             { file = "daemon socket"; msg = "bad response: " ^ msg })))

let one_shot ~socket (j : Json.t) : (Json.t, Diag.error) result =
  match connect socket with
  | Error _ as e -> e
  | Ok conn ->
    let r = request conn j in
    close conn;
    r
