module Diag = Minflo_robust.Diag
module Rng = Minflo_util.Rng

(* ---------- one connection ---------- *)

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  endpoint : Transport.endpoint;
  timeout : float option;
}

let connect ?timeout endpoint : (conn, Diag.error) result =
  match Transport.connect ?timeout endpoint with
  | Error _ as e -> e
  | Ok fd ->
    (match timeout with
    | Some s -> Transport.set_io_timeout fd s
    | None -> ());
    Ok { fd; buf = Buffer.create 256; endpoint; timeout }

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let name conn = Transport.to_string conn.endpoint

let timed_out conn op =
  Diag.Net_timeout
    { endpoint = name conn;
      op;
      seconds = Option.value conn.timeout ~default:0.0 }

(* A response must be one complete JSON line. EOF mid-line — the peer (or
   a fault between us) closed after writing part of a line — is the typed
   torn-response, never a parse crash; so is a complete line that does
   not parse, since a line we cannot decode and a line we never fully
   received are the same event to the caller: the answer is unusable and
   the request is safe to resend (every op is idempotent). *)
let read_line conn : (string, Diag.error) result =
  let rec take () =
    let s = Buffer.contents conn.buf in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear conn.buf;
      Buffer.add_substring conn.buf s (i + 1) (String.length s - i - 1);
      Ok (String.sub s 0 i)
    | None -> (
      let bytes = Bytes.create 4096 in
      match Unix.read conn.fd bytes 0 4096 with
      | 0 ->
        if Buffer.length conn.buf > 0 then
          Error
            (Diag.Torn_response
               { endpoint = name conn; bytes = Buffer.length conn.buf })
        else
          Error
            (Diag.Io_error
               { file = name conn; msg = "connection closed by daemon" })
      | n ->
        Buffer.add_subbytes conn.buf bytes 0 n;
        take ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> take ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (* SO_RCVTIMEO expired: the peer is up but silent *)
        Error (timed_out conn "response")
      | exception Unix.Unix_error (e, _, _) ->
        Error (Diag.Io_error { file = name conn; msg = Unix.error_message e }))
  in
  take ()

let request conn (j : Json.t) : (Json.t, Diag.error) result =
  let line = Json.to_string j ^ "\n" in
  let n = String.length line in
  let rec write_all off =
    if off >= n then Ok ()
    else
      match Unix.write_substring conn.fd line off (n - off) with
      | written -> write_all (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Error (timed_out conn "write")
      | exception Unix.Unix_error (e, _, _) ->
        Error (Diag.Io_error { file = name conn; msg = Unix.error_message e })
  in
  match write_all 0 with
  | Error _ as e -> e
  | Ok () -> (
    match read_line conn with
    | Error _ as e -> e
    | Ok line -> (
      match Json.parse line with
      | Ok j -> Ok j
      | Error _ ->
        Error
          (Diag.Torn_response
             { endpoint = name conn; bytes = String.length line })))

(* ---------- retrying sessions ---------- *)

type retry = {
  attempts : int;
  backoff_base : float;
  timeout : float option;
  seed : int;
}

let default_retry =
  { attempts = 3; backoff_base = 0.1; timeout = Some 30.0; seed = 0 }

type session = {
  s_endpoint : Transport.endpoint;
  s_retry : retry;
  rng : Rng.t;
  mutable conn : conn option;
}

let session ?(retry = default_retry) endpoint =
  { s_endpoint = endpoint;
    s_retry = { retry with attempts = max 1 retry.attempts };
    rng = Rng.create retry.seed;
    conn = None }

let close_session s =
  match s.conn with
  | Some c ->
    close c;
    s.conn <- None
  | None -> ()

(* Every protocol op is idempotent (submit dedupes on the job key;
   status/result/stats are reads; cancel of a cancelled job is terminal
   either way), so any transport-level failure is safe to resend. What is
   NOT retryable is a response the daemon actually produced — including a
   typed rejection like [overloaded]: that is an answer, not a failure. *)
let retryable = function
  | Diag.Connect_refused _ | Diag.Net_timeout _ | Diag.Torn_response _
  | Diag.Io_error _ ->
    true
  | _ -> false

(* exponential backoff with multiplicative jitter in [0.5, 1.5): retries
   from many clients hitting one recovering daemon decorrelate, and the
   sequence still replays exactly from the session's seed *)
let backoff s k =
  let base = s.s_retry.backoff_base *. (2.0 ** float_of_int (k - 1)) in
  base *. (0.5 +. Rng.float s.rng 1.0)

let finalize ~attempts = function
  | Diag.Connect_refused { endpoint; _ } ->
    Diag.Connect_refused { endpoint; attempts }
  | e -> e

let rpc s (j : Json.t) : (Json.t, Diag.error) result =
  let rec attempt k =
    let outcome =
      match s.conn with
      | Some c -> request c j
      | None -> (
        match connect ?timeout:s.s_retry.timeout s.s_endpoint with
        | Error e -> Error e
        | Ok c ->
          s.conn <- Some c;
          request c j)
    in
    match outcome with
    | Ok r -> Ok r
    | Error e ->
      (* the connection is in an unknown state after any failure: half a
         response may be buffered, or the fd may be dead — drop it and
         let the retry dial fresh *)
      close_session s;
      if retryable e && k < s.s_retry.attempts then begin
        Unix.sleepf (backoff s k);
        attempt (k + 1)
      end
      else Error (finalize ~attempts:k e)
  in
  attempt 1

let one_shot ?retry ~endpoint (j : Json.t) : (Json.t, Diag.error) result =
  let s = session ?retry endpoint in
  let r = rpc s j in
  close_session s;
  r
