(* The serve protocol's JSON dialect now lives in [Minflo_util.Json] so the
   trace auditor ([Minflo_lint.Trace]) can parse the same format without a
   dependency cycle; this module re-exports it under its historical name. *)
include Minflo_util.Json
