module Job = Minflo_runner.Job
module Diag = Minflo_robust.Diag

type submit = {
  circuit : string;
  factor : float;
  solver : Job.solver;
  max_seconds : float option;
  max_iterations : int option;
  max_pivots : int option;
  sleep_seconds : float;
}

type request =
  | Submit of submit
  | Status of string
  | Result of { id : string; wait : bool }
  | Cancel of string
  | Stats
  | Health
  | Drain

(* The job key doubles as the idempotency token: a resubmission of the
   same work (same circuit/target/solver AND same run budget) is answered
   from the daemon's result cache instead of re-solving. A custom budget
   or load-test sleep changes what "the same work" means, so it lands in
   the key as a suffix. *)
let job_key (s : submit) =
  let base =
    Job.id { Job.circuit = s.circuit; factor = s.factor; solver = s.solver }
  in
  let extras =
    List.filter_map
      (fun x -> x)
      [ Option.map (fun v -> Printf.sprintf "s=%.17g" v) s.max_seconds;
        Option.map (fun v -> Printf.sprintf "it=%d" v) s.max_iterations;
        Option.map (fun v -> Printf.sprintf "pv=%d" v) s.max_pivots;
        (if s.sleep_seconds > 0.0 then
           Some (Printf.sprintf "zz=%.17g" s.sleep_seconds)
         else None) ]
  in
  if extras = [] then base else base ^ "#" ^ String.concat "," extras

(* ---------- request encoding (the client side) ---------- *)

let submit_to_json (s : submit) =
  Json.Obj
    ([ ("op", Json.Str "submit");
       ("circuit", Json.Str s.circuit);
       ("factor", Json.Num s.factor);
       ("solver", Json.Str (Job.solver_name s.solver)) ]
    @ (match s.max_seconds with
      | Some v -> [ ("max_seconds", Json.Num v) ]
      | None -> [])
    @ (match s.max_iterations with
      | Some v -> [ ("max_iterations", Json.Num (float_of_int v)) ]
      | None -> [])
    @ (match s.max_pivots with
      | Some v -> [ ("max_pivots", Json.Num (float_of_int v)) ]
      | None -> [])
    @
    if s.sleep_seconds > 0.0 then
      [ ("sleep_seconds", Json.Num s.sleep_seconds) ]
    else [])

let request_to_json = function
  | Submit s -> submit_to_json s
  | Status id -> Json.Obj [ ("op", Json.Str "status"); ("id", Json.Str id) ]
  | Result { id; wait } ->
    Json.Obj
      [ ("op", Json.Str "result");
        ("id", Json.Str id);
        ("wait", Json.Bool wait) ]
  | Cancel id -> Json.Obj [ ("op", Json.Str "cancel"); ("id", Json.Str id) ]
  | Stats -> Json.Obj [ ("op", Json.Str "stats") ]
  | Health -> Json.Obj [ ("op", Json.Str "health") ]
  | Drain -> Json.Obj [ ("op", Json.Str "drain") ]

(* ---------- request decoding (the server side) ---------- *)

let decode_submit j =
  match Json.str_field "circuit" j with
  | None -> Error "submit: missing \"circuit\""
  | Some circuit -> (
    match Json.num_field "factor" j with
    | None -> Error "submit: missing or non-numeric \"factor\""
    | Some factor when not (Float.is_finite factor) || factor <= 0.0 ->
      Error "submit: \"factor\" must be a positive finite number"
    | Some factor -> (
      let solver_name =
        Option.value (Json.str_field "solver" j) ~default:"auto"
      in
      match Job.solver_of_string solver_name with
      | None -> Error (Printf.sprintf "submit: unknown solver %S" solver_name)
      | Some solver ->
        let pos_num key =
          match Json.num_field key j with
          | Some v when Float.is_finite v && v > 0.0 -> Some v
          | _ -> None
        in
        let pos_int key =
          match Json.int_field key j with
          | Some v when v > 0 -> Some v
          | _ -> None
        in
        Ok
          (Submit
             { circuit;
               factor;
               solver;
               max_seconds = pos_num "max_seconds";
               max_iterations = pos_int "max_iterations";
               max_pivots = pos_int "max_pivots";
               sleep_seconds =
                 Option.value (pos_num "sleep_seconds") ~default:0.0 })))

let with_id j k =
  match Json.str_field "id" j with
  | Some id when id <> "" -> Ok (k id)
  | _ -> Error "missing \"id\""

let request_of_json j =
  match Json.str_field "op" j with
  | None -> Error "missing \"op\""
  | Some "submit" -> decode_submit j
  | Some "status" -> with_id j (fun id -> Status id)
  | Some "result" ->
    with_id j (fun id ->
        Result
          { id; wait = Option.value (Json.bool_field "wait" j) ~default:false })
  | Some "cancel" -> with_id j (fun id -> Cancel id)
  | Some "stats" -> Ok Stats
  | Some "health" -> Ok Health
  | Some "drain" -> Ok Drain
  | Some op -> Error (Printf.sprintf "unknown op %S" op)

(* ---------- response builders ---------- *)

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)

let error_response ?(fields = []) (e : Diag.error) =
  Json.Obj
    ([ ("ok", Json.Bool false);
       ("code", Json.Str (Diag.error_code e));
       ("message", Json.Str (Diag.to_string e));
       ("error", Json.Raw (Diag.to_json e)) ]
    @ fields)

let bad_request msg =
  Json.Obj
    [ ("ok", Json.Bool false);
      ("code", Json.Str "bad-request");
      ("message", Json.Str msg) ]
