(** A deterministic network-fault proxy for end-to-end chaos tests.

    Sits between real clients and a real daemon, forwarding the protocol
    line by line, and injects the transport failures of
    {!Minflo_robust.Fault}'s [net.*] catalog on a seeded plan — so a
    chaos run replays exactly from its seed:

    - [net.accept-drop] — accept the client, close immediately (the
      classic refused/reset connect);
    - [net.read-stall] — hold a request line for [delay_seconds] before
      forwarding (exercises server-side connection deadlines and
      client-side response timeouts);
    - [net.torn-write] — forward half of a response line, no newline,
      then hard-close (the client must produce the typed
      [torn-response], never a parse crash);
    - [net.delayed-response] — hold a response line for
      [delay_seconds].

    The proxy itself holds no protocol state beyond line buffers, so
    whatever it does, correctness remains the daemon's (journal) and the
    client's (retry/idempotency) problem — which is the point: a loadgen
    run through the proxy must still end with every accepted job
    resolved, bit-identical to a fault-free run.

    Prints its actual listening endpoint (port [0] resolved) on stdout,
    runs until SIGTERM/SIGINT, then writes a JSON report of per-site
    fired counts to [report_path]. *)

type fault_arm = {
  site : string;        (** a [net.*] member of {!Minflo_robust.Fault.all_points}. *)
  count : int option;   (** fire at most this many times (default: every visit). *)
  prob : float option;  (** per-visit firing probability (default 1.0). *)
}

type config = {
  listen : Transport.endpoint;
  upstream : Transport.endpoint;
  faults : fault_arm list;
  seed : int;              (** drives probabilistic firing; replays exactly. *)
  delay_seconds : float;   (** stall/delay duration per injected hold. *)
  connect_timeout : float; (** upstream dial deadline per connection. *)
  report_path : string option;
}

val default_config : config
(** Listens on [127.0.0.1:0], upstream [minflo.sock], no faults armed,
    [seed = 0; delay_seconds = 0.2; connect_timeout = 5.0]. *)

val run : ?config:config -> unit -> (unit, Minflo_robust.Diag.error) result
(** Blocks until signalled. [Error] only if the listen endpoint cannot be
    bound. *)
