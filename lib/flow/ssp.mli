(** Successive-shortest-paths min-cost flow (cross-check solver).

    Bellman-Ford establishes initial potentials (handling negative arc
    costs); augmentations then run Dijkstra on reduced costs with Johnson
    potentials. Asymptotically [O(U * m log n)] with [U] the number of
    augmentations (at most one per supply node here, as arcs are mostly
    uncapacitated) — slower than {!Network_simplex} but completely
    independent of it, which makes it a strong oracle in property tests. *)

val solve : ?budget:Minflo_robust.Budget.t -> Mcf.problem -> Mcf.solution
(** Each augmentation (and each negative-cycle-cancellation round) ticks
    [budget]; on exhaustion the result has status [Aborted]. *)

val has_unbounded_negative_cycle : Mcf.problem -> bool
(** Whether the network contains a negative-cost cycle whose capacity is
    effectively unbounded (every arc at {!Mcf.infinite_capacity} scale) —
    the condition under which the minimum cost diverges. Shared by the
    solvers that do not detect this natively. *)

(** {1 Warm starts}

    Across solves that keep the network shape, the Johnson potentials of the
    previous optimum usually remain valid for the next problem (the D-phase
    LP has non-negative costs and mostly uncapacitated arcs). A {!state}
    retains them; when an O(m) reduced-cost check confirms validity, the
    next solve skips both the negative-cycle cancellation and the
    Bellman-Ford initialization and goes straight to Dijkstra
    augmentation. *)

type state
(** Reusable solver state. Never shared across concurrently running
    solves. *)

val make_state : unit -> state
val drop : state -> unit
val is_warm : state -> bool

val solve_warm :
  ?budget:Minflo_robust.Budget.t -> state -> Mcf.problem -> Mcf.solution
(** Like {!solve}, but seeds the potentials from [state] when the network
    shape matches the previous call and the retained potentials are still
    valid; otherwise falls back to the cold initialization. The state is
    kept after [Optimal] outcomes and dropped otherwise. *)
