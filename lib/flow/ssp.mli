(** Successive-shortest-paths min-cost flow (cross-check solver).

    Bellman-Ford establishes initial potentials (handling negative arc
    costs); augmentations then run Dijkstra on reduced costs with Johnson
    potentials. Asymptotically [O(U * m log n)] with [U] the number of
    augmentations (at most one per supply node here, as arcs are mostly
    uncapacitated) — slower than {!Network_simplex} but completely
    independent of it, which makes it a strong oracle in property tests. *)

val solve : ?budget:Minflo_robust.Budget.t -> Mcf.problem -> Mcf.solution
(** Each augmentation (and each negative-cycle-cancellation round) ticks
    [budget]; on exhaustion the result has status [Aborted]. *)

val has_unbounded_negative_cycle : Mcf.problem -> bool
(** Whether the network contains a negative-cost cycle whose capacity is
    effectively unbounded (every arc at {!Mcf.infinite_capacity} scale) —
    the condition under which the minimum cost diverges. Shared by the
    solvers that do not detect this natively. *)
