(* Primal network simplex with:
   - artificial root node and big-M artificial arcs as the initial (strongly
     feasible) spanning tree;
   - block search for the entering arc;
   - Cunningham's rule for the leaving arc (last blocking arc met when the
     cycle is traversed in its own orientation starting at the apex), which
     keeps the tree strongly feasible and prevents cycling;
   - explicit child lists (first_child / next_sib / prev_sib), so re-hanging
     a subtree and refreshing its depths/potentials costs O(subtree);
   - an optional reusable [state]: across calls that keep the network shape
     (same nodes, same arc endpoints) the optimal spanning-tree basis of the
     previous solve seeds the next one, so a solve after a small cost/supply
     change needs only the pivots that repair optimality, not the full climb
     out of the artificial basis.

   All arithmetic is on OCaml ints; capacities are clamped to
   Mcf.infinite_capacity so sums cannot overflow 63-bit ints. *)

module Perf = Minflo_robust.Perf

let state_tree = 0
let state_lower = 1
let state_upper = -1

type t = {
  n : int;             (* real nodes; root is node n *)
  m_real : int;
  m : int;             (* m_real + n artificial arcs *)
  src : int array;
  dst : int array;
  cap : int array;
  cost : int array;
  flow : int array;
  state : int array;
  (* tree structure, indexed by node (0..n, root = n) *)
  parent : int array;
  parc : int array;    (* arc to parent, -1 for root *)
  depth : int array;
  pi : int array;
  first_child : int array;
  next_sib : int array;
  prev_sib : int array;
  mutable scan_pos : int; (* block-search cursor *)
  block_size : int;
  (* preallocated pivot scratch: the two tree paths of the current cycle
     (walk order: entering-endpoint first, apex-side last) and a DFS stack
     for subtree refreshes. Depth is at most n+1, so n+1 slots suffice. *)
  ts_arc : int array;
  ts_inc : bool array;
  ts_below : int array;
  hs_arc : int array;
  hs_inc : bool array;
  hs_below : int array;
  dfs_stack : int array;
}

let create (p : Mcf.problem) =
  let n = p.num_nodes in
  let m_real = Array.length p.arcs in
  let m = m_real + n in
  let src = Array.make m 0 and dst = Array.make m 0 in
  let cap = Array.make m 0 and cost = Array.make m 0 in
  let flow = Array.make m 0 and state = Array.make m state_lower in
  let max_cost = ref 1 in
  Array.iteri
    (fun i (a : Mcf.arc) ->
      src.(i) <- a.src;
      dst.(i) <- a.dst;
      cap.(i) <- min a.cap Mcf.infinite_capacity;
      cost.(i) <- a.cost;
      if abs a.cost > !max_cost then max_cost := abs a.cost)
    p.arcs;
  (* big-M: strictly dominates any simple-path cost through real arcs *)
  let big_m = ((n + 1) * !max_cost) + 1 in
  let parent = Array.make (n + 1) (-1) in
  let parc = Array.make (n + 1) (-1) in
  let depth = Array.make (n + 1) 0 in
  let pi = Array.make (n + 1) 0 in
  let first_child = Array.make (n + 1) (-1) in
  let next_sib = Array.make (n + 1) (-1) in
  let prev_sib = Array.make (n + 1) (-1) in
  let root = n in
  for v = 0 to n - 1 do
    let a = m_real + v in
    let b = p.supply.(v) in
    if b >= 0 then begin
      (* arc v -> root carrying the supply (points toward the root, so a
         zero-flow artificial arc keeps the tree strongly feasible) *)
      src.(a) <- v;
      dst.(a) <- root;
      flow.(a) <- b;
      pi.(v) <- big_m
      (* reduced cost 0: cost - pi(v) + pi(root) = big_m - big_m + 0 *)
    end
    else begin
      src.(a) <- root;
      dst.(a) <- v;
      flow.(a) <- -b;
      pi.(v) <- -big_m
    end;
    cap.(a) <- Mcf.infinite_capacity;
    cost.(a) <- big_m;
    state.(a) <- state_tree;
    parent.(v) <- root;
    parc.(v) <- a;
    depth.(v) <- 1;
    (* push onto root's child list *)
    let h = first_child.(root) in
    next_sib.(v) <- h;
    if h <> -1 then prev_sib.(h) <- v;
    first_child.(root) <- v
  done;
  { n; m_real; m; src; dst; cap; cost; flow; state; parent; parc; depth; pi;
    first_child; next_sib; prev_sib; scan_pos = 0;
    block_size = max 64 (1 + int_of_float (sqrt (float_of_int m)));
    ts_arc = Array.make (n + 1) 0;
    ts_inc = Array.make (n + 1) false;
    ts_below = Array.make (n + 1) 0;
    hs_arc = Array.make (n + 1) 0;
    hs_inc = Array.make (n + 1) false;
    hs_below = Array.make (n + 1) 0;
    dfs_stack = Array.make (n + 1) 0 }

let reduced_cost t a = t.cost.(a) - t.pi.(t.src.(a)) + t.pi.(t.dst.(a))

(* Entering arc: best violation within a block of arcs, scanning cyclically.
   [left_in_block] counts down to the block boundary (same boundaries as the
   historical [checked mod block_size] test, minus the division per arc). *)
let find_entering t =
  let best = ref (-1) and best_viol = ref 0 in
  let checked = ref 0 in
  let left_in_block = ref t.block_size in
  let pos = ref t.scan_pos in
  let continue = ref true in
  while !continue && !checked < t.m do
    let a = !pos in
    let s = t.state.(a) in
    if s <> state_tree then begin
      let rc = reduced_cost t a in
      let viol = if s = state_lower then -rc else rc in
      if viol > !best_viol then begin
        best_viol := viol;
        best := a
      end
    end;
    incr checked;
    pos := if a + 1 = t.m then 0 else a + 1;
    decr left_in_block;
    if !left_in_block = 0 then
      if !best >= 0 then continue := false else left_in_block := t.block_size
  done;
  t.scan_pos <- !pos;
  !best

let detach t v =
  let p = t.prev_sib.(v) and nx = t.next_sib.(v) in
  if p = -1 then t.first_child.(t.parent.(v)) <- nx else t.next_sib.(p) <- nx;
  if nx <> -1 then t.prev_sib.(nx) <- p;
  t.prev_sib.(v) <- -1;
  t.next_sib.(v) <- -1

let attach t v par =
  let h = t.first_child.(par) in
  t.next_sib.(v) <- h;
  t.prev_sib.(v) <- -1;
  if h <> -1 then t.prev_sib.(h) <- v;
  t.first_child.(par) <- v;
  t.parent.(v) <- par

(* Refresh depth and potential of the subtree rooted at [q] (its parent data
   must already be correct). Iterative DFS over child lists, on the
   preallocated stack (a tree on n+1 nodes never overflows it). *)
let refresh_subtree t q =
  let stack = t.dfs_stack in
  stack.(0) <- q;
  let top = ref 1 in
  while !top > 0 do
    decr top;
    let v = stack.(!top) in
    let par = t.parent.(v) in
    let a = t.parc.(v) in
    t.depth.(v) <- t.depth.(par) + 1;
    t.pi.(v) <-
      (if t.dst.(a) = v then t.pi.(par) - t.cost.(a)
       else t.pi.(par) + t.cost.(a));
    let c = ref t.first_child.(v) in
    while !c <> -1 do
      stack.(!top) <- !c;
      incr top;
      c := t.next_sib.(!c)
    done
  done

(* Pivot-path variant: a pivot re-hangs a subtree without touching any arc
   cost, so every potential inside it moves by the SAME offset (tree arcs
   pin relative potentials, whichever end is the parent). Depths still need
   the parent chase; potentials just add [dpi] — exactly the ints
   [refresh_subtree] would recompute, one read instead of three. *)
let shift_subtree t q dpi =
  let stack = t.dfs_stack in
  stack.(0) <- q;
  let top = ref 1 in
  while !top > 0 do
    decr top;
    let v = stack.(!top) in
    t.depth.(v) <- t.depth.(t.parent.(v)) + 1;
    t.pi.(v) <- t.pi.(v) + dpi;
    let c = ref t.first_child.(v) in
    while !c <> -1 do
      stack.(!top) <- !c;
      incr top;
      c := t.next_sib.(!c)
    done
  done

exception Unbounded_exn

exception Aborted_exn

(* Pivot from the current (strongly feasible) basis to optimality.

   The cycle lives in the preallocated [ts_*]/[hs_*] scratch, filled in walk
   order (entering-arc endpoint first). Cycle orientation starts at the
   apex: tail side reversed (apex -> tail), then the entering arc, then the
   head side in fill order (head -> apex) — the same sequence the historical
   list-based code produced, so the Cunningham last-blocking-arc choice (and
   with it the whole pivot trajectory) is unchanged. *)
let run_pivots ?budget t =
  let tick () =
    Perf.tick_pivot ();
    match budget with
    | None -> ()
    | Some b -> if not (Minflo_robust.Budget.tick_pivot b) then raise Aborted_exn
  in
  let continue = ref true in
  while !continue do
    let e = find_entering t in
    if e < 0 then continue := false
    else begin
      tick ();
      (* push direction: along the arc when at lower bound, against when
         at upper bound *)
      let s = t.state.(e) in
      let tail = if s = state_lower then t.src.(e) else t.dst.(e) in
      let head = if s = state_lower then t.dst.(e) else t.src.(e) in
      (* walk up to the apex, collecting both paths *)
      let ts_len = ref 0 and hs_len = ref 0 in
      let push_t a inc below =
        t.ts_arc.(!ts_len) <- a;
        t.ts_inc.(!ts_len) <- inc;
        t.ts_below.(!ts_len) <- below;
        incr ts_len
      and push_h a inc below =
        t.hs_arc.(!hs_len) <- a;
        t.hs_inc.(!hs_len) <- inc;
        t.hs_below.(!hs_len) <- below;
        incr hs_len
      in
      let u = ref tail and v = ref head in
      while t.depth.(!u) > t.depth.(!v) do
        let a = t.parc.(!u) in
        (* cycle orientation crosses a as parent(u) -> u on the tail
           side: increases flow iff the arc points down to u *)
        push_t a (t.dst.(a) = !u) !u;
        u := t.parent.(!u)
      done;
      while t.depth.(!v) > t.depth.(!u) do
        let a = t.parc.(!v) in
        (* head side is traversed v -> parent(v): increases flow iff the
           arc points up from v *)
        push_h a (t.src.(a) = !v) !v;
        v := t.parent.(!v)
      done;
      while !u <> !v do
        let a = t.parc.(!u) in
        push_t a (t.dst.(a) = !u) !u;
        u := t.parent.(!u);
        let b = t.parc.(!v) in
        push_h b (t.src.(b) = !v) !v;
        v := t.parent.(!v)
      done;
      let residual a inc = if inc then t.cap.(a) - t.flow.(a) else t.flow.(a) in
      let e_inc = s = state_lower in
      let delta = ref (residual e e_inc) in
      for k = 0 to !ts_len - 1 do
        let r = residual t.ts_arc.(k) t.ts_inc.(k) in
        if r < !delta then delta := r
      done;
      for k = 0 to !hs_len - 1 do
        let r = residual t.hs_arc.(k) t.hs_inc.(k) in
        if r < !delta then delta := r
      done;
      let delta = !delta in
      if delta >= Mcf.infinite_capacity / 2 then raise Unbounded_exn;
      (* Cunningham: last blocking arc in cycle orientation. Side 0 = tail
         path, 1 = entering, 2 = head path; one pass in orientation order
         keeps the last residual = delta match (read before that arc's flow
         moves — each distinct arc appears once in the cycle) and pushes the
         flow change in the same visit, reproducing the historical
         scan-then-apply exactly. Adding [delta = 0] is a no-op, so the
         update needs no guard. *)
      let lv_side = ref 1 and lv_arc = ref e and lv_below = ref (-1) in
      for k = !ts_len - 1 downto 0 do
        let a = t.ts_arc.(k) and inc = t.ts_inc.(k) in
        if residual a inc = delta then begin
          lv_side := 0;
          lv_arc := a;
          lv_below := t.ts_below.(k)
        end;
        t.flow.(a) <- (if inc then t.flow.(a) + delta else t.flow.(a) - delta)
      done;
      if residual e e_inc = delta then begin
        lv_side := 1;
        lv_arc := e;
        lv_below := -1
      end;
      t.flow.(e) <- (if e_inc then t.flow.(e) + delta else t.flow.(e) - delta);
      for k = 0 to !hs_len - 1 do
        let a = t.hs_arc.(k) and inc = t.hs_inc.(k) in
        if residual a inc = delta then begin
          lv_side := 2;
          lv_arc := a;
          lv_below := t.hs_below.(k)
        end;
        t.flow.(a) <- (if inc then t.flow.(a) + delta else t.flow.(a) - delta)
      done;
      if !lv_side = 1 || !lv_arc = e then
        (* the entering arc itself blocks: it moves bound-to-bound *)
        t.state.(e) <- -s
      else begin
        (* the subtree under [lv_below] is cut; the entering-arc endpoint
           inside it is [tail] if the leaving arc is on the tail side *)
        let on_tail_side = !lv_side = 0 in
        let lv_arc = !lv_arc and lv_below = !lv_below in
        let q = if on_tail_side then tail else head in
        let pnode = if on_tail_side then head else tail in
        (* leaving arc becomes nonbasic *)
        t.state.(lv_arc) <-
          (if t.flow.(lv_arc) = 0 then state_lower else state_upper);
        t.state.(e) <- state_tree;
        (* re-root the cut subtree at q, hanging it from pnode via e *)
        let cur = ref q in
        let new_parent = ref pnode and new_parc = ref e in
        let stop = lv_below in
        let finished = ref false in
        while not !finished do
          let c = !cur in
          let old_parent = t.parent.(c) and old_parc = t.parc.(c) in
          detach t c;
          attach t c !new_parent;
          t.parc.(c) <- !new_parc;
          if c = stop then finished := true
          else begin
            new_parent := c;
            new_parc := old_parc;
            cur := old_parent
          end
        done;
        (* no cost changed, so the re-hung subtree's potentials shift
           uniformly by the entering arc's potential discontinuity at q *)
        let dpi =
          (if t.dst.(e) = q then t.pi.(pnode) - t.cost.(e)
           else t.pi.(pnode) + t.cost.(e))
          - t.pi.(q)
        in
        shift_subtree t q dpi
      end
    end
  done

let solution_of t p : Mcf.solution =
  (* optimality reached; check artificial arcs *)
  let infeasible = ref false in
  for a = t.m_real to t.m - 1 do
    if t.flow.(a) > 0 then infeasible := true
  done;
  let flow = Array.sub t.flow 0 t.m_real in
  let potential = Array.sub t.pi 0 t.n in
  if !infeasible then { status = Infeasible; flow; potential; objective = 0 }
  else { status = Optimal; flow; potential; objective = Mcf.flow_cost p flow }

let run ?budget t p : Mcf.solution =
  try
    run_pivots ?budget t;
    solution_of t p
  with
  | Unbounded_exn ->
    { status = Unbounded;
      flow = Array.make t.m_real 0;
      potential = Array.sub t.pi 0 t.n;
      objective = 0 }
  | Aborted_exn ->
    { status = Aborted;
      flow = Array.make t.m_real 0;
      potential = Array.sub t.pi 0 t.n;
      objective = 0 }

let unbalanced p : Mcf.solution =
  { status = Infeasible;
    flow = Array.make (Array.length p.Mcf.arcs) 0;
    potential = Array.make p.Mcf.num_nodes 0;
    objective = 0 }

let solve ?budget (p : Mcf.problem) : Mcf.solution =
  Mcf.validate p;
  if not (Mcf.is_balanced p) then unbalanced p
  else begin
    Perf.tick_cold_start ();
    run ?budget (create p) p
  end

(* ---------- warm starts ---------- *)

type state = { mutable basis : t option }

let make_state () = { basis = None }
let drop st = st.basis <- None
let is_warm st = st.basis <> None

(* The basis can be reused iff the network shape is unchanged: same node
   count, same arc count, same endpoints arc by arc. Costs, capacities and
   supplies are free to change. *)
let compatible t (p : Mcf.problem) =
  t.n = p.num_nodes
  && t.m_real = Array.length p.arcs
  &&
  let ok = ref true in
  Array.iteri
    (fun i (a : Mcf.arc) ->
      if t.src.(i) <> a.src || t.dst.(i) <> a.dst then ok := false)
    p.arcs;
  !ok

(* Re-seed the retained spanning tree with new costs/capacities/supplies.

   Invariants restored here (see DESIGN §8):
   - cost change: the tree and all flows stay primal feasible as they are;
     only the potentials are stale, so they are recomputed from the root
     over the (re-costed) tree arcs.
   - supply/capacity change: nonbasic arcs stay pinned at their bounds, so
     the tree flows are uniquely determined by leaf-to-root accumulation of
     node excess. A tree arc whose required flow would leave [0, cap] — or
     would be only weakly feasible (zero flow pointing leafward, at-cap flow
     pointing rootward, either of which would break Cunningham's
     anti-cycling guarantee) — is cut, and the node below it is re-hung
     directly on the root via its own artificial arc, re-oriented along the
     excess it must carry. The result is a strongly feasible basis whatever
     the new data; big-M pivots then drive any artificial flow back out. *)
let rewarm t (p : Mcf.problem) =
  let n = t.n and m_real = t.m_real in
  let root = n in
  let max_cost = ref 1 in
  Array.iteri
    (fun i (a : Mcf.arc) ->
      t.cost.(i) <- a.cost;
      t.cap.(i) <- min a.cap Mcf.infinite_capacity;
      if abs a.cost > !max_cost then max_cost := abs a.cost)
    p.arcs;
  (* refresh big-M against the new cost range *)
  let big_m = ((n + 1) * !max_cost) + 1 in
  for a = m_real to t.m - 1 do
    t.cost.(a) <- big_m
  done;
  (* pin nonbasic arcs to their bounds under the new capacities *)
  for a = 0 to t.m - 1 do
    if t.state.(a) = state_upper then begin
      if t.cap.(a) >= Mcf.infinite_capacity then begin
        t.state.(a) <- state_lower;
        t.flow.(a) <- 0
      end
      else t.flow.(a) <- t.cap.(a)
    end
    else if t.state.(a) = state_lower then t.flow.(a) <- 0
  done;
  (* node excess once nonbasic flows are pinned *)
  let need = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    need.(v) <- p.supply.(v)
  done;
  for a = 0 to t.m - 1 do
    if t.state.(a) <> state_tree && t.flow.(a) > 0 then begin
      need.(t.src.(a)) <- need.(t.src.(a)) - t.flow.(a);
      need.(t.dst.(a)) <- need.(t.dst.(a)) + t.flow.(a)
    end
  done;
  (* children-before-parents order = reverse of a root-first preorder *)
  let order = Array.make n 0 in
  let len = ref 0 in
  let stack = ref [ root ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      if v <> root then begin
        order.(!len) <- v;
        incr len
      end;
      let c = ref t.first_child.(v) in
      while !c <> -1 do
        stack := !c :: !stack;
        c := t.next_sib.(!c)
      done
  done;
  for k = !len - 1 downto 0 do
    let v = order.(k) in
    let a = t.parc.(v) in
    let par = t.parent.(v) in
    let e = need.(v) in
    let upward = t.src.(a) = v in
    let f = if upward then e else -e in
    let strongly_feasible =
      f >= 0 && f <= t.cap.(a)
      && (upward || f > 0)
      && ((not upward) || f < t.cap.(a))
    in
    if strongly_feasible then begin
      t.flow.(a) <- f;
      need.(par) <- need.(par) + e
    end
    else begin
      (* cut [a]; re-hang v on its own artificial arc, which (unlike real
         arcs) we may freely re-orient: it is internal bookkeeping and never
         part of the returned solution *)
      let aa = m_real + v in
      if a <> aa then begin
        t.state.(a) <- state_lower;
        t.flow.(a) <- 0;
        t.state.(aa) <- state_tree;
        detach t v;
        attach t v root;
        t.parc.(v) <- aa
      end;
      if e >= 0 then begin
        t.src.(aa) <- v;
        t.dst.(aa) <- root;
        t.flow.(aa) <- e
      end
      else begin
        t.src.(aa) <- root;
        t.dst.(aa) <- v;
        t.flow.(aa) <- -e
      end
    end
  done;
  (* depths and potentials from scratch: subtrees moved and costs changed *)
  let c = ref t.first_child.(root) in
  while !c <> -1 do
    refresh_subtree t !c;
    c := t.next_sib.(!c)
  done;
  t.scan_pos <- 0

let solve_warm ?budget (st : state) (p : Mcf.problem) : Mcf.solution =
  Mcf.validate p;
  if not (Mcf.is_balanced p) then begin
    st.basis <- None;
    unbalanced p
  end
  else begin
    let t =
      match st.basis with
      | Some t when compatible t p ->
        Perf.tick_warm_start ();
        rewarm t p;
        t
      | _ ->
        Perf.tick_cold_start ();
        create p
    in
    let sol = run ?budget t p in
    (* only an optimal basis is worth keeping: after Aborted the tree is
       mid-pivot but consistent — still reusable — whereas Infeasible and
       Unbounded leave nothing to warm-start from *)
    st.basis <- (match sol.status with Optimal | Aborted -> Some t | _ -> None);
    sol
  end
