(* Primal network simplex with:
   - artificial root node and big-M artificial arcs as the initial (strongly
     feasible) spanning tree;
   - block search for the entering arc;
   - Cunningham's rule for the leaving arc (last blocking arc met when the
     cycle is traversed in its own orientation starting at the apex), which
     keeps the tree strongly feasible and prevents cycling;
   - explicit child lists (first_child / next_sib / prev_sib), so re-hanging
     a subtree and refreshing its depths/potentials costs O(subtree).

   All arithmetic is on OCaml ints; capacities are clamped to
   Mcf.infinite_capacity so sums cannot overflow 63-bit ints. *)

let state_tree = 0
let state_lower = 1
let state_upper = -1

type t = {
  n : int;             (* real nodes; root is node n *)
  m_real : int;
  m : int;             (* m_real + n artificial arcs *)
  src : int array;
  dst : int array;
  cap : int array;
  cost : int array;
  flow : int array;
  state : int array;
  (* tree structure, indexed by node (0..n, root = n) *)
  parent : int array;
  parc : int array;    (* arc to parent, -1 for root *)
  depth : int array;
  pi : int array;
  first_child : int array;
  next_sib : int array;
  prev_sib : int array;
  mutable scan_pos : int; (* block-search cursor *)
  block_size : int;
}

let create (p : Mcf.problem) =
  let n = p.num_nodes in
  let m_real = Array.length p.arcs in
  let m = m_real + n in
  let src = Array.make m 0 and dst = Array.make m 0 in
  let cap = Array.make m 0 and cost = Array.make m 0 in
  let flow = Array.make m 0 and state = Array.make m state_lower in
  let max_cost = ref 1 in
  Array.iteri
    (fun i (a : Mcf.arc) ->
      src.(i) <- a.src;
      dst.(i) <- a.dst;
      cap.(i) <- min a.cap Mcf.infinite_capacity;
      cost.(i) <- a.cost;
      if abs a.cost > !max_cost then max_cost := abs a.cost)
    p.arcs;
  (* big-M: strictly dominates any simple-path cost through real arcs *)
  let big_m = ((n + 1) * !max_cost) + 1 in
  let parent = Array.make (n + 1) (-1) in
  let parc = Array.make (n + 1) (-1) in
  let depth = Array.make (n + 1) 0 in
  let pi = Array.make (n + 1) 0 in
  let first_child = Array.make (n + 1) (-1) in
  let next_sib = Array.make (n + 1) (-1) in
  let prev_sib = Array.make (n + 1) (-1) in
  let root = n in
  for v = 0 to n - 1 do
    let a = m_real + v in
    let b = p.supply.(v) in
    if b >= 0 then begin
      (* arc v -> root carrying the supply (points toward the root, so a
         zero-flow artificial arc keeps the tree strongly feasible) *)
      src.(a) <- v;
      dst.(a) <- root;
      flow.(a) <- b;
      pi.(v) <- big_m
      (* reduced cost 0: cost - pi(v) + pi(root) = big_m - big_m + 0 *)
    end
    else begin
      src.(a) <- root;
      dst.(a) <- v;
      flow.(a) <- -b;
      pi.(v) <- -big_m
    end;
    cap.(a) <- Mcf.infinite_capacity;
    cost.(a) <- big_m;
    state.(a) <- state_tree;
    parent.(v) <- root;
    parc.(v) <- a;
    depth.(v) <- 1;
    (* push onto root's child list *)
    let h = first_child.(root) in
    next_sib.(v) <- h;
    if h <> -1 then prev_sib.(h) <- v;
    first_child.(root) <- v
  done;
  { n; m_real; m; src; dst; cap; cost; flow; state; parent; parc; depth; pi;
    first_child; next_sib; prev_sib; scan_pos = 0;
    block_size = max 64 (1 + int_of_float (sqrt (float_of_int m))) }

let reduced_cost t a = t.cost.(a) - t.pi.(t.src.(a)) + t.pi.(t.dst.(a))

(* Entering arc: best violation within a block of arcs, scanning cyclically. *)
let find_entering t =
  let best = ref (-1) and best_viol = ref 0 in
  let checked = ref 0 in
  let pos = ref t.scan_pos in
  let continue = ref true in
  while !continue && !checked < t.m do
    let a = !pos in
    let s = t.state.(a) in
    if s <> state_tree then begin
      let rc = reduced_cost t a in
      let viol = if s = state_lower then -rc else rc in
      if viol > !best_viol then begin
        best_viol := viol;
        best := a
      end
    end;
    incr checked;
    pos := if a + 1 = t.m then 0 else a + 1;
    if !checked mod t.block_size = 0 && !best >= 0 then continue := false
  done;
  t.scan_pos <- !pos;
  !best

let detach t v =
  let p = t.prev_sib.(v) and nx = t.next_sib.(v) in
  if p = -1 then t.first_child.(t.parent.(v)) <- nx else t.next_sib.(p) <- nx;
  if nx <> -1 then t.prev_sib.(nx) <- p;
  t.prev_sib.(v) <- -1;
  t.next_sib.(v) <- -1

let attach t v par =
  let h = t.first_child.(par) in
  t.next_sib.(v) <- h;
  t.prev_sib.(v) <- -1;
  if h <> -1 then t.prev_sib.(h) <- v;
  t.first_child.(par) <- v;
  t.parent.(v) <- par

(* Refresh depth and potential of the subtree rooted at [q] (its parent data
   must already be correct). Iterative DFS over child lists. *)
let refresh_subtree t q =
  let stack = ref [ q ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      let par = t.parent.(v) in
      let a = t.parc.(v) in
      t.depth.(v) <- t.depth.(par) + 1;
      t.pi.(v) <-
        (if t.dst.(a) = v then t.pi.(par) - t.cost.(a)
         else t.pi.(par) + t.cost.(a));
      let c = ref t.first_child.(v) in
      while !c <> -1 do
        stack := !c :: !stack;
        c := t.next_sib.(!c)
      done
  done

exception Unbounded_exn

type cycle_arc = { arc : int; increase : bool; below : int }
(* [below]: the tree node whose parent-arc this is (-1 for the entering arc);
   used to identify the subtree cut off when this arc leaves. *)

exception Aborted_exn

let solve ?budget (p : Mcf.problem) : Mcf.solution =
  Mcf.validate p;
  let tick () =
    match budget with
    | None -> ()
    | Some b -> if not (Minflo_robust.Budget.tick_pivot b) then raise Aborted_exn
  in
  if not (Mcf.is_balanced p) then
    { status = Infeasible;
      flow = Array.make (Array.length p.arcs) 0;
      potential = Array.make p.num_nodes 0;
      objective = 0 }
  else begin
    let t = create p in
    (try
       let continue = ref true in
       while !continue do
         let e = find_entering t in
         if e < 0 then continue := false
         else begin
           tick ();
           (* push direction: along the arc when at lower bound, against when
              at upper bound *)
           let s = t.state.(e) in
           let tail = if s = state_lower then t.src.(e) else t.dst.(e) in
           let head = if s = state_lower then t.dst.(e) else t.src.(e) in
           (* walk up to the apex, collecting both paths *)
           let tside = ref [] and hside = ref [] in
           let u = ref tail and v = ref head in
           while t.depth.(!u) > t.depth.(!v) do
             let a = t.parc.(!u) in
             (* cycle orientation crosses a as parent(u) -> u on the tail
                side: increases flow iff the arc points down to u *)
             tside := { arc = a; increase = t.dst.(a) = !u; below = !u } :: !tside;
             u := t.parent.(!u)
           done;
           while t.depth.(!v) > t.depth.(!u) do
             let a = t.parc.(!v) in
             (* head side is traversed v -> parent(v): increases flow iff the
                arc points up from v *)
             hside := { arc = a; increase = t.src.(a) = !v; below = !v } :: !hside;
             v := t.parent.(!v)
           done;
           while !u <> !v do
             let a = t.parc.(!u) in
             tside := { arc = a; increase = t.dst.(a) = !u; below = !u } :: !tside;
             u := t.parent.(!u);
             let b = t.parc.(!v) in
             hside := { arc = b; increase = t.src.(b) = !v; below = !v } :: !hside;
             v := t.parent.(!v)
           done;
           (* cycle in orientation starting at the apex:
              apex -> tail (tside, already apex-first), entering arc,
              head -> apex (hside collected head-first, so reverse) *)
           let entering =
             { arc = e; increase = s = state_lower; below = -1 }
           in
           let cycle = !tside @ (entering :: List.rev !hside) in
           let residual ca =
             if ca.increase then t.cap.(ca.arc) - t.flow.(ca.arc)
             else t.flow.(ca.arc)
           in
           let delta = List.fold_left (fun d ca -> min d (residual ca)) max_int cycle in
           if delta >= Mcf.infinite_capacity / 2 then raise Unbounded_exn;
           (* Cunningham: last blocking arc in cycle orientation *)
           let leaving = ref entering in
           List.iter (fun ca -> if residual ca = delta then leaving := ca) cycle;
           if delta > 0 then
             List.iter
               (fun ca ->
                 t.flow.(ca.arc) <-
                   (if ca.increase then t.flow.(ca.arc) + delta
                    else t.flow.(ca.arc) - delta))
               cycle;
           if !leaving == entering || !leaving.arc = e then
             (* the entering arc itself blocks: it moves bound-to-bound *)
             t.state.(e) <- -s
           else begin
             let lv = !leaving in
             (* the subtree under [lv.below] is cut; find the entering-arc
                endpoint inside it: it is [tail] if lv is on the tail side *)
             let on_tail_side =
               List.exists (fun ca -> ca.arc = lv.arc) !tside
             in
             let q = if on_tail_side then tail else head in
             let pnode = if on_tail_side then head else tail in
             (* leaving arc becomes nonbasic *)
             t.state.(lv.arc) <-
               (if t.flow.(lv.arc) = 0 then state_lower else state_upper);
             t.state.(e) <- state_tree;
             (* re-root the cut subtree at q, hanging it from pnode via e *)
             let cur = ref q in
             let new_parent = ref pnode and new_parc = ref e in
             let stop = lv.below in
             let finished = ref false in
             while not !finished do
               let c = !cur in
               let old_parent = t.parent.(c) and old_parc = t.parc.(c) in
               detach t c;
               attach t c !new_parent;
               t.parc.(c) <- !new_parc;
               if c = stop then finished := true
               else begin
                 new_parent := c;
                 new_parc := old_parc;
                 cur := old_parent
               end
             done;
             refresh_subtree t q
           end
         end
       done;
       (* optimality reached; check artificial arcs *)
       let infeasible = ref false in
       for a = t.m_real to t.m - 1 do
         if t.flow.(a) > 0 then infeasible := true
       done;
       let flow = Array.sub t.flow 0 t.m_real in
       let potential = Array.sub t.pi 0 t.n in
       if !infeasible then
         { status = Infeasible; flow; potential; objective = 0 }
       else
         { status = Optimal; flow; potential; objective = Mcf.flow_cost p flow }
     with
    | Unbounded_exn ->
      { status = Unbounded;
        flow = Array.make t.m_real 0;
        potential = Array.sub t.pi 0 t.n;
        objective = 0 }
    | Aborted_exn ->
      { status = Aborted;
        flow = Array.make t.m_real 0;
        potential = Array.sub t.pi 0 t.n;
        objective = 0 })
  end
