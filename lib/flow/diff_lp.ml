module Vec = Minflo_util.Vec

type var = int

type t = {
  mutable nvars : int;
  con_x : int Vec.t;
  con_y : int Vec.t;
  con_w : int Vec.t;
  obj : (int, int) Hashtbl.t; (* var -> coefficient *)
}

let create ?(vars_hint = 16) ?(cons_hint = 64) () =
  { nvars = 0;
    con_x = Vec.create ~capacity:cons_hint ~dummy:0 ();
    con_y = Vec.create ~capacity:cons_hint ~dummy:0 ();
    con_w = Vec.create ~capacity:cons_hint ~dummy:0 ();
    obj = Hashtbl.create (max 64 vars_hint) }

let var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  v

let num_vars t = t.nvars

let check_var t v =
  if v < 0 || v >= t.nvars then invalid_arg "Diff_lp: unknown variable"

let add_le t x y w =
  check_var t x;
  check_var t y;
  ignore (Vec.push t.con_x x);
  ignore (Vec.push t.con_y y);
  ignore (Vec.push t.con_w w)

let add_objective t x c =
  check_var t x;
  let cur = Option.value ~default:0 (Hashtbl.find_opt t.obj x) in
  Hashtbl.replace t.obj x (cur + c)

type outcome =
  | Solution of { values : int array; objective : int }
  | Infeasible_lp
  | Unbounded_lp
  | Aborted_lp

let objective_value t values =
  Hashtbl.fold (fun v c acc -> acc + (c * values.(v))) t.obj 0

let check_assignment t values =
  if Array.length values <> t.nvars then Error "wrong assignment length"
  else begin
    let bad = ref None in
    for i = 0 to Vec.length t.con_x - 1 do
      let x = Vec.get t.con_x i and y = Vec.get t.con_y i and w = Vec.get t.con_w i in
      if values.(x) - values.(y) > w then
        bad :=
          Some
            (Printf.sprintf "constraint %d violated: v%d - v%d = %d > %d" i x y
               (values.(x) - values.(y))
               w)
    done;
    match !bad with Some e -> Error e | None -> Ok (objective_value t values)
  end

let to_problem t : Mcf.problem =
  let m = Vec.length t.con_x in
  let arcs =
    Array.init m (fun i ->
        { Mcf.src = Vec.get t.con_x i;
          dst = Vec.get t.con_y i;
          cap = Mcf.infinite_capacity;
          cost = Vec.get t.con_w i })
  in
  let supply = Array.make t.nvars 0 in
  Hashtbl.iter (fun v c -> supply.(v) <- supply.(v) + c) t.obj;
  { num_nodes = t.nvars; arcs; supply }

(* Feasibility repair: [x - y <= w] is satisfied by shortest-path distances
   over the reversed arc [y -> x] with weight [w] (then dist(x) <= dist(y) + w
   by the relaxation invariant). Running from all sources keeps every value
   finite. The assignment is feasible but generally suboptimal — this is the
   last rung of the solver fallback chain, not a replacement for the flow
   solvers. *)
let solve_by_feasibility t =
  let m = Vec.length t.con_x in
  let g =
    { Bellman_ford.num_nodes = t.nvars;
      arc_src = Array.init m (fun i -> Vec.get t.con_y i);
      arc_dst = Array.init m (fun i -> Vec.get t.con_x i);
      arc_weight = Array.init m (fun i -> Vec.get t.con_w i) }
  in
  match Bellman_ford.run_all g with
  | Negative_cycle _ -> Infeasible_lp
  | Distances values -> Solution { values; objective = objective_value t values }

type warm = {
  ws_simplex : Network_simplex.state;
  ws_ssp : Ssp.state;
}

let make_warm () =
  { ws_simplex = Network_simplex.make_state (); ws_ssp = Ssp.make_state () }

let drop_warm w =
  Network_simplex.drop w.ws_simplex;
  Ssp.drop w.ws_ssp

let solve ?(solver = `Simplex) ?budget ?warm ?(canonical = false) ?on_solution t =
  (* The dual LP [max b.pi : pi(u) - pi(v) <= w] is bounded iff the flow
     problem is feasible, and feasible iff the constraint graph has no
     negative cycle; MCF statuses map accordingly. *)
  if Hashtbl.fold (fun _ c acc -> acc + c) t.obj 0 <> 0 then
    (* supplies would not balance; the LP is unbounded along the all-ones
       direction unless the coefficients cancel *)
    Unbounded_lp
  else
    match solver with
    | `Bellman_ford -> solve_by_feasibility t
    | (`Simplex | `Ssp) as s ->
      let p = to_problem t in
      let sol =
        match (s, warm) with
        | `Simplex, Some w -> Network_simplex.solve_warm ?budget w.ws_simplex p
        | `Simplex, None -> Network_simplex.solve ?budget p
        | `Ssp, Some w -> Ssp.solve_warm ?budget w.ws_ssp p
        | `Ssp, None -> Ssp.solve ?budget p
      in
      (* canonicalize BEFORE the observer so fault-injection perturbations
         land on the final values and divergence checks still bite *)
      let sol =
        if canonical && sol.status = Optimal then
          { sol with potential = Mcf.canonical_potentials p sol }
        else sol
      in
      (match on_solution with None -> () | Some f -> f p sol);
      (match sol.status with
      | Optimal ->
        let values = Array.sub sol.potential 0 t.nvars in
        Solution { values; objective = objective_value t values }
      | Infeasible -> Unbounded_lp
      | Unbounded -> Infeasible_lp
      | Aborted -> Aborted_lp)
