(* Goldberg-Tarjan cost scaling with push/relabel phases.

   Costs are multiplied by (n+1); a flow that is eps-optimal for eps < 1 in
   the scaled costs is exactly optimal in the originals. Each phase halves
   eps: arcs with negative reduced cost are saturated (creating excesses),
   then push/relabel restores a flow. A final Bellman-Ford on the residual
   graph of the optimal flow produces the integer dual certificate. *)

let entry_arc e = e lsr 1
let entry_forward e = e land 1 = 0

type t = {
  p : Mcf.problem;
  n : int;
  m : int;
  flow : int array;
  scaled_cost : int array; (* per arc, cost * (n+1) *)
  pi : int array;
  excess : int array;
  adj_start : int array;
  adj_entry : int array;
  current : int array; (* current-arc pointer per node (index into adj) *)
}

let residual t e =
  let a = entry_arc e in
  if entry_forward e then t.p.arcs.(a).cap - t.flow.(a) else t.flow.(a)

let entry_cost t e =
  let a = entry_arc e in
  if entry_forward e then t.scaled_cost.(a) else -t.scaled_cost.(a)

let entry_dst t e =
  let a = t.p.arcs.(entry_arc e) in
  if entry_forward e then a.dst else a.src

let build (p : Mcf.problem) =
  let n = p.num_nodes and m = Array.length p.arcs in
  let deg = Array.make (n + 1) 0 in
  Array.iter
    (fun (a : Mcf.arc) ->
      deg.(a.src) <- deg.(a.src) + 1;
      deg.(a.dst) <- deg.(a.dst) + 1)
    p.arcs;
  let adj_start = Array.make (n + 1) 0 in
  for v = 1 to n do
    adj_start.(v) <- adj_start.(v - 1) + deg.(v - 1)
  done;
  let cursor = Array.copy adj_start in
  let adj_entry = Array.make (2 * m) 0 in
  Array.iteri
    (fun i (a : Mcf.arc) ->
      adj_entry.(cursor.(a.src)) <- 2 * i;
      cursor.(a.src) <- cursor.(a.src) + 1;
      adj_entry.(cursor.(a.dst)) <- (2 * i) + 1;
      cursor.(a.dst) <- cursor.(a.dst) + 1)
    p.arcs;
  { p;
    n;
    m;
    flow = Array.make m 0;
    scaled_cost = Array.map (fun (a : Mcf.arc) -> a.cost * (n + 1)) p.arcs;
    pi = Array.make n 0;
    excess = Array.make n 0;
    adj_start;
    adj_entry;
    current = Array.copy adj_start }

(* feasibility: route supplies with a max flow *)
let initial_feasible_flow t =
  let n = t.n in
  let d = Dinic.create ~num_nodes:(n + 2) in
  let source = n and sink = n + 1 in
  let ids = Array.map (fun (a : Mcf.arc) -> Dinic.add_edge d ~src:a.src ~dst:a.dst ~cap:a.cap) t.p.arcs in
  let total = ref 0 in
  Array.iteri
    (fun v b ->
      if b > 0 then begin
        total := !total + b;
        ignore (Dinic.add_edge d ~src:source ~dst:v ~cap:b)
      end
      else if b < 0 then ignore (Dinic.add_edge d ~src:v ~dst:sink ~cap:(-b)))
    t.p.supply;
  if Dinic.max_flow d ~source ~sink <> !total then false
  else begin
    Array.iteri (fun i id -> t.flow.(i) <- Dinic.flow_on d id) ids;
    true
  end

let rc t e =
  let u = (let a = t.p.arcs.(entry_arc e) in if entry_forward e then a.src else a.dst) in
  entry_cost t e - t.pi.(u) + t.pi.(entry_dst t e)

exception Aborted_exn

let tick budget =
  match budget with
  | None -> ()
  | Some b -> if not (Minflo_robust.Budget.tick_pivot b) then raise Aborted_exn

let refine ?budget t eps =
  (* saturate all residual arcs with negative reduced cost *)
  for e = 0 to (2 * t.m) - 1 do
    if residual t e > 0 && rc t e < 0 then begin
      let r = residual t e in
      let a = entry_arc e in
      let arc = t.p.arcs.(a) in
      let u, v =
        if entry_forward e then (arc.src, arc.dst) else (arc.dst, arc.src)
      in
      t.flow.(a) <- (if entry_forward e then t.flow.(a) + r else t.flow.(a) - r);
      t.excess.(u) <- t.excess.(u) - r;
      t.excess.(v) <- t.excess.(v) + r
    end
  done;
  (* push/relabel the excesses back *)
  let active = Queue.create () in
  let in_queue = Array.make t.n false in
  for v = 0 to t.n - 1 do
    t.current.(v) <- t.adj_start.(v);
    if t.excess.(v) > 0 then begin
      Queue.add v active;
      in_queue.(v) <- true
    end
  done;
  while not (Queue.is_empty active) do
    tick budget;
    let u = Queue.pop active in
    in_queue.(u) <- false;
    let continue = ref true in
    while t.excess.(u) > 0 && !continue do
      if t.current.(u) >= t.adj_start.(u + 1) then begin
        (* relabel: lowest potential that re-admits some residual arc *)
        let best = ref max_int in
        for k = t.adj_start.(u) to t.adj_start.(u + 1) - 1 do
          let e = t.adj_entry.(k) in
          if residual t e > 0 then
            best := min !best (t.pi.(entry_dst t e) + entry_cost t e)
        done;
        if !best = max_int then
          (* isolated excess: cannot happen on a feasible start *)
          continue := false
        else begin
          Minflo_robust.Perf.tick_relabel ();
          t.pi.(u) <- !best + eps;
          t.current.(u) <- t.adj_start.(u)
        end
      end
      else begin
        let e = t.adj_entry.(t.current.(u)) in
        if residual t e > 0 && rc t e < 0 then begin
          let delta = min t.excess.(u) (residual t e) in
          let a = entry_arc e in
          let v = entry_dst t e in
          t.flow.(a) <-
            (if entry_forward e then t.flow.(a) + delta else t.flow.(a) - delta);
          t.excess.(u) <- t.excess.(u) - delta;
          t.excess.(v) <- t.excess.(v) + delta;
          if t.excess.(v) > 0 && (not in_queue.(v)) && v <> u then begin
            Queue.add v active;
            in_queue.(v) <- true
          end
        end
        else t.current.(u) <- t.current.(u) + 1
      end
    done;
    if t.excess.(u) > 0 && !continue then begin
      (* relabelled but queue discipline sent us here: re-enqueue *)
      Queue.add u active;
      in_queue.(u) <- true
    end
  done

(* dual certificate: shortest distances over the optimal residual graph *)
let certificate t =
  let srcs = ref [] and dsts = ref [] and ws = ref [] in
  for e = 0 to (2 * t.m) - 1 do
    if residual t e > 0 then begin
      let a = t.p.arcs.(entry_arc e) in
      let u, v = if entry_forward e then (a.src, a.dst) else (a.dst, a.src) in
      srcs := u :: !srcs;
      dsts := v :: !dsts;
      ws := (if entry_forward e then a.cost else -a.cost) :: !ws
    end
  done;
  match
    Bellman_ford.run_all
      { num_nodes = t.n;
        arc_src = Array.of_list !srcs;
        arc_dst = Array.of_list !dsts;
        arc_weight = Array.of_list !ws }
  with
  | Distances d -> Array.map (fun x -> -x) d
  | Negative_cycle _ -> assert false (* the flow would not be optimal *)

let solve ?budget (p : Mcf.problem) : Mcf.solution =
  Mcf.validate p;
  let m = Array.length p.arcs in
  let fail status =
    { Mcf.status;
      flow = Array.make m 0;
      potential = Array.make p.num_nodes 0;
      objective = 0 }
  in
  if not (Mcf.is_balanced p) then fail Infeasible
  else if Ssp.has_unbounded_negative_cycle p then fail Unbounded
  else begin
    try
      (* Clamp uncapacitated arcs to (total supply + total finite capacity
         + 1). Some minimal optimal flow fits: its path flows sum to the
         total supply, and every cycle in its decomposition rides on at
         least one finite arc (an all-infinite negative cycle was rejected
         above, and positive/zero-cost cycles are removable), so cycle flow
         through any arc is bounded by the finite capacities. The spare
         unit of headroom means no clamped arc is ever saturated, making
         the clamped problem's dual certificate valid for the original.
         Without this, the refine step saturates "infinite" arcs and the
         push/relabel phase must drain ~10^17 units of artificial excess. *)
      let total_supply =
        Array.fold_left (fun acc b -> if b > 0 then acc + b else acc) 0 p.supply
      in
      let finite_cap =
        Array.fold_left
          (fun acc (a : Mcf.arc) ->
            if a.cap < Mcf.infinite_capacity then acc + a.cap else acc)
          0 p.arcs
      in
      let bound = total_supply + finite_cap + 1 in
      let p =
        if bound <= 0 (* overflowed: give up on clamping *) then p
        else
          { p with
            arcs =
              Array.map
                (fun (a : Mcf.arc) -> { a with cap = min a.cap bound })
                p.arcs }
      in
      let t = build p in
      if not (initial_feasible_flow t) then fail Infeasible
      else begin
        let cmax =
          Array.fold_left (fun acc c -> max acc (abs c)) 1 t.scaled_cost
        in
        let eps = ref cmax in
        while !eps >= 1 do
          refine ?budget t !eps;
          eps := !eps / 2
        done;
        let potential = certificate t in
        { status = Optimal;
          flow = Array.copy t.flow;
          potential;
          objective = Mcf.flow_cost p t.flow }
      end
    with Aborted_exn -> fail Aborted
  end
