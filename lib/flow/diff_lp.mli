(** Linear programs over difference constraints, solved by min-cost-flow
    duality.

    The D-phase optimization of the paper (Eq. 10) has the shape

    {v maximize   sum_v objective(v) * pi(v)
      subject to  pi(u) - pi(v) <= w(u, v)         for each constraint v}

    which is precisely the LP dual of a min-cost flow: each constraint
    becomes an arc [u -> v] with cost [w]; each variable becomes a node with
    supply [objective(v)]. Solving the flow with {!Network_simplex} yields
    optimal node potentials — the optimal [pi] of this LP.

    Variables are created with {!var}; all weights are integers (the caller
    integerizes real-valued slacks by scaling, as in the paper). *)

type t

type var = int

val create : ?vars_hint:int -> ?cons_hint:int -> unit -> t
(** The hints pre-size the constraint vectors and the objective table —
    the D-phase rebuilds this LP every refinement iteration for a network
    whose shape it already knows, so sizing up front keeps per-iteration
    allocation at O(problem) with no growth doublings. *)

val var : t -> var
(** A fresh variable, initially with objective coefficient 0. *)

val num_vars : t -> int

val add_le : t -> var -> var -> int -> unit
(** [add_le lp x y w] adds the constraint [x - y <= w]. *)

val add_objective : t -> var -> int -> unit
(** [add_objective lp x c] adds [c * x] to the maximization objective
    (cumulative). *)

val to_problem : t -> Mcf.problem
(** The dual min-cost-flow problem: one node per variable, one arc [x -> y]
    with cost [w] (and unbounded capacity) per constraint [x - y <= w], and
    supplies from the objective coefficients. Any MCF solver's optimal node
    potentials on this problem are an optimal LP assignment — this is what
    [minflo audit-cert] feeds the certificate auditor. *)

type outcome =
  | Solution of { values : int array; objective : int }
      (** Optimal variable assignment (one value per variable, in creation
          order) and the optimal objective value. With the [`Bellman_ford]
          solver the assignment is feasible but not necessarily optimal. *)
  | Infeasible_lp
      (** The constraints contain a negative cycle. *)
  | Unbounded_lp
      (** The objective can grow without bound (the dual flow problem is
          infeasible). *)
  | Aborted_lp
      (** A run budget ({!Minflo_robust.Budget}) was exhausted mid-solve. *)

type warm
(** Reusable warm-start state covering both exact solvers (each keeps its
    own: a spanning-tree basis for [`Simplex], Johnson potentials for
    [`Ssp]). Never share one [warm] across concurrently running solves. *)

val make_warm : unit -> warm
(** Fresh warm state; the first solve through it is a cold start. *)

val drop_warm : warm -> unit
(** Forget all retained solver state. *)

val solve :
  ?solver:[ `Simplex | `Ssp | `Bellman_ford ] ->
  ?budget:Minflo_robust.Budget.t ->
  ?warm:warm ->
  ?canonical:bool ->
  ?on_solution:(Mcf.problem -> Mcf.solution -> unit) ->
  t ->
  outcome
(** [`Simplex] (default) and [`Ssp] solve the dual flow problem exactly.
    [`Bellman_ford] skips the flow solve and returns a merely {e feasible}
    assignment by shortest-path repair over the reversed constraint graph —
    the last rung of the {!Minflo_robust.Fallback} chain. [budget] is
    threaded into the flow solver's pivot loop.

    [warm] lets consecutive solves over the same constraint-graph shape
    reuse solver state (see {!Network_simplex.solve_warm},
    {!Ssp.solve_warm}); ignored by [`Bellman_ford].

    [canonical] replaces the optimal potentials with
    {!Mcf.canonical_potentials} before anything observes them, so the
    returned assignment is independent of solver and starting basis —
    required when warm-started runs must reproduce cold runs bit-for-bit.

    [on_solution] observes (and may perturb, for fault injection) the flow
    solution — after canonicalization, so perturbations land on the final
    values — before it is mapped back to LP values; it is not called by
    [`Bellman_ford]. *)

val check_assignment : t -> int array -> (int, string) result
(** Verifies all constraints under the assignment; on success returns the
    objective value. Test-suite oracle. *)
