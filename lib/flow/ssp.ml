module Heap = Minflo_util.Heap
module Perf = Minflo_robust.Perf

(* Residual representation: arc [a] of the problem yields a forward entry
   (residual cap - flow, cost) and a backward entry (residual flow, -cost).
   Entries are encoded as [2a] (forward) and [2a+1] (backward). *)

type t = {
  p : Mcf.problem;
  flow : int array;
  excess : int array;
  pot : int array; (* Johnson potentials, dist convention *)
  (* CSR adjacency over residual entries *)
  adj_start : int array;
  adj_entry : int array;
}

let entry_arc e = e lsr 1
let entry_forward e = e land 1 = 0

let residual t e =
  let a = entry_arc e in
  if entry_forward e then t.p.arcs.(a).cap - t.flow.(a) else t.flow.(a)

let entry_cost t e =
  let a = entry_arc e in
  if entry_forward e then t.p.arcs.(a).cost else -t.p.arcs.(a).cost

let entry_src t e =
  let a = t.p.arcs.(entry_arc e) in
  if entry_forward e then a.src else a.dst

let entry_dst t e =
  let a = t.p.arcs.(entry_arc e) in
  if entry_forward e then a.dst else a.src

let build (p : Mcf.problem) =
  let n = p.num_nodes and m = Array.length p.arcs in
  let deg = Array.make (n + 1) 0 in
  Array.iter
    (fun (a : Mcf.arc) ->
      deg.(a.src) <- deg.(a.src) + 1;
      deg.(a.dst) <- deg.(a.dst) + 1)
    p.arcs;
  let adj_start = Array.make (n + 1) 0 in
  for v = 1 to n do
    adj_start.(v) <- adj_start.(v - 1) + deg.(v - 1)
  done;
  let cursor = Array.copy adj_start in
  let adj_entry = Array.make (2 * m) 0 in
  Array.iteri
    (fun i (a : Mcf.arc) ->
      adj_entry.(cursor.(a.src)) <- 2 * i;
      cursor.(a.src) <- cursor.(a.src) + 1;
      adj_entry.(cursor.(a.dst)) <- (2 * i) + 1;
      cursor.(a.dst) <- cursor.(a.dst) + 1)
    p.arcs;
  { p;
    flow = Array.make m 0;
    excess = Array.copy p.supply;
    pot = Array.make n 0;
    adj_start;
    adj_entry }

exception Aborted_exn

let tick budget =
  match budget with
  | None -> ()
  | Some b -> if not (Minflo_robust.Budget.tick_pivot b) then raise Aborted_exn

(* Cancel negative-cost residual cycles with Bellman-Ford (Klein). Needed so
   Dijkstra-based augmentation is sound on inputs with negative arc costs.
   Returns [false] when a negative cycle of unbounded capacity is found. *)
let cancel_negative_cycles ?budget t =
  let bounded = ref true in
  let continue = ref true in
  while !continue && !bounded do
    tick budget;
    Perf.tick_relabel ();
    let srcs = ref [] and dsts = ref [] and ws = ref [] and ids = ref [] in
    for e = (2 * Array.length t.p.arcs) - 1 downto 0 do
      if residual t e > 0 then begin
        srcs := entry_src t e :: !srcs;
        dsts := entry_dst t e :: !dsts;
        ws := entry_cost t e :: !ws;
        ids := e :: !ids
      end
    done;
    let g =
      { Bellman_ford.num_nodes = t.p.num_nodes;
        arc_src = Array.of_list !srcs;
        arc_dst = Array.of_list !dsts;
        arc_weight = Array.of_list !ws }
    in
    let id_of = Array.of_list !ids in
    match Bellman_ford.run_all g with
    | Distances _ -> continue := false
    | Negative_cycle arcs ->
      let entries = List.map (fun a -> id_of.(a)) arcs in
      let delta =
        List.fold_left (fun d e -> min d (residual t e)) max_int entries
      in
      if delta >= Mcf.infinite_capacity / 2 then bounded := false
      else
        List.iter
          (fun e ->
            let a = entry_arc e in
            t.flow.(a) <-
              (if entry_forward e then t.flow.(a) + delta else t.flow.(a) - delta))
          entries
  done;
  !bounded

let has_unbounded_negative_cycle p =
  Mcf.validate p;
  not (cancel_negative_cycles (build p))

exception Found_deficit of int

(* One Dijkstra from [s] over reduced costs; returns the reached deficit node
   and the predecessor-entry array, or None if no deficit is reachable. *)
let dijkstra t s dist pred =
  Array.fill dist 0 (Array.length dist) max_int;
  Array.fill pred 0 (Array.length pred) (-1);
  let heap = Heap.create () in
  dist.(s) <- 0;
  Heap.push heap ~key:0 s;
  let final = Minflo_util.Bitset.create t.p.num_nodes in
  let target = ref (-1) in
  (try
     let continue = ref true in
     while !continue do
       match Heap.pop_min heap with
       | None -> continue := false
       | Some (d, u) ->
         if not (Minflo_util.Bitset.mem final u) then begin
           Minflo_util.Bitset.add final u;
           if t.excess.(u) < 0 then raise (Found_deficit u);
           for k = t.adj_start.(u) to t.adj_start.(u + 1) - 1 do
             let e = t.adj_entry.(k) in
             if entry_src t e = u && residual t e > 0 then begin
               let v = entry_dst t e in
               let rc = entry_cost t e + t.pot.(u) - t.pot.(v) in
               let nd = d + rc in
               if nd < dist.(v) then begin
                 dist.(v) <- nd;
                 pred.(v) <- e;
                 Heap.push heap ~key:nd v
               end
             end
           done
         end
     done
   with Found_deficit u -> target := u);
  if !target < 0 then None else Some (!target, final)

let fail_solution (p : Mcf.problem) status =
  { Mcf.status;
    flow = Array.make (Array.length p.arcs) 0;
    potential = Array.make p.num_nodes 0;
    objective = 0 }

(* Bellman-Ford over the current residual graph (which must be free of
   negative cycles) to establish valid Johnson potentials. *)
let init_potentials t =
  Perf.tick_relabel ();
  let m = Array.length t.p.arcs in
  let srcs = ref [] and dsts = ref [] and ws = ref [] in
  for e = 0 to (2 * m) - 1 do
    if residual t e > 0 then begin
      srcs := entry_src t e :: !srcs;
      dsts := entry_dst t e :: !dsts;
      ws := entry_cost t e :: !ws
    end
  done;
  match
    Bellman_ford.run_all
      { num_nodes = t.p.num_nodes;
        arc_src = Array.of_list !srcs;
        arc_dst = Array.of_list !dsts;
        arc_weight = Array.of_list !ws }
  with
  | Distances d -> Array.blit d 0 t.pot 0 t.p.num_nodes
  | Negative_cycle _ -> assert false

(* The augmentation loop proper. Requires: t.pot is a valid potential for
   the current residual graph (all residual reduced costs non-negative). *)
let augment ?budget t : Mcf.solution =
  let p = t.p in
  let dist = Array.make p.num_nodes max_int in
  let pred = Array.make p.num_nodes (-1) in
  let infeasible = ref false in
  let continue = ref true in
  while !continue && not !infeasible do
    match Array.to_seq t.excess |> Seq.zip (Seq.ints 0)
          |> Seq.find (fun (_, e) -> e > 0) with
    | None -> continue := false
    | Some (s, _) -> (
      tick budget;
      match dijkstra t s dist pred with
      | None -> infeasible := true
      | Some (target, final) ->
        (* potentials update (Johnson) *)
        Perf.tick_relabel ();
        let dt = dist.(target) in
        for v = 0 to p.num_nodes - 1 do
          if Minflo_util.Bitset.mem final v then t.pot.(v) <- t.pot.(v) + dist.(v)
          else if dist.(v) < max_int then
            t.pot.(v) <- t.pot.(v) + min dist.(v) dt
          else t.pot.(v) <- t.pot.(v) + dt
        done;
        (* bottleneck along the path *)
        let delta = ref (min t.excess.(s) (-t.excess.(target))) in
        let v = ref target in
        while !v <> s do
          let e = pred.(!v) in
          delta := min !delta (residual t e);
          v := entry_src t e
        done;
        let v = ref target in
        while !v <> s do
          let e = pred.(!v) in
          let a = entry_arc e in
          t.flow.(a) <-
            (if entry_forward e then t.flow.(a) + !delta
             else t.flow.(a) - !delta);
          v := entry_src t e
        done;
        t.excess.(s) <- t.excess.(s) - !delta;
        t.excess.(target) <- t.excess.(target) + !delta)
  done;
  if !infeasible then fail_solution p Infeasible
  else
    { status = Optimal;
      flow = Array.copy t.flow;
      potential = Array.map (fun x -> -x) t.pot;
      objective = Mcf.flow_cost p t.flow }

let solve ?budget (p : Mcf.problem) : Mcf.solution =
  Mcf.validate p;
  if not (Mcf.is_balanced p) then fail_solution p Infeasible
  else begin
    Perf.tick_cold_start ();
    try
      let t = build p in
      if not (cancel_negative_cycles ?budget t) then fail_solution p Unbounded
      else begin
        init_potentials t;
        augment ?budget t
      end
    with Aborted_exn -> fail_solution p Aborted
  end

(* ---------- warm starts ---------- *)

type state = { mutable cache : t option }

let make_state () = { cache = None }
let drop st = st.cache <- None
let is_warm st = st.cache <> None

let compatible t (p : Mcf.problem) =
  t.p.num_nodes = p.num_nodes
  && Array.length t.p.arcs = Array.length p.arcs
  &&
  let ok = ref true in
  Array.iteri
    (fun i (a : Mcf.arc) ->
      let b = t.p.arcs.(i) in
      if b.src <> a.src || b.dst <> a.dst then ok := false)
    p.arcs;
  !ok

(* With zero flow, the only residual entries are the forward ones with
   positive capacity, so the retained potentials are valid iff every such
   arc has non-negative reduced cost under the new costs — an O(m) check
   that decides whether the Bellman-Ford initialization (and negative-cycle
   cancellation) can be skipped entirely. *)
let pot_valid t =
  let ok = ref true in
  Array.iter
    (fun (a : Mcf.arc) ->
      if a.cap > 0 && a.cost + t.pot.(a.src) - t.pot.(a.dst) < 0 then ok := false)
    t.p.arcs;
  !ok

let solve_warm ?budget (st : state) (p : Mcf.problem) : Mcf.solution =
  Mcf.validate p;
  if not (Mcf.is_balanced p) then begin
    st.cache <- None;
    fail_solution p Infeasible
  end
  else begin
    let t, warm =
      match st.cache with
      | Some old when compatible old p ->
        (* reuse the adjacency and working arrays; restart the flow from
           zero but keep the potentials from the previous optimum *)
        let t = { old with p } in
        Array.fill t.flow 0 (Array.length t.flow) 0;
        Array.blit p.supply 0 t.excess 0 p.num_nodes;
        if pot_valid t then begin
          Perf.tick_warm_start ();
          (t, true)
        end
        else begin
          Perf.tick_cold_start ();
          (t, false)
        end
      | _ ->
        Perf.tick_cold_start ();
        (build p, false)
    in
    let sol =
      try
        if warm then augment ?budget t
        else if not (cancel_negative_cycles ?budget t) then
          fail_solution p Unbounded
        else begin
          init_potentials t;
          augment ?budget t
        end
      with Aborted_exn -> fail_solution p Aborted
    in
    st.cache <- (if sol.status = Optimal then Some t else None);
    sol
  end
