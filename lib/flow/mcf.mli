(** Minimum-cost flow problems.

    A problem is a directed network with integer arc capacities and costs and
    integer node supplies (positive = source, negative = sink). A feasible
    flow satisfies [0 <= flow a <= cap a] on every arc and, at every node,
    [outflow - inflow = supply]. The objective is to minimize
    [sum (cost a * flow a)].

    This is the substrate for the paper's D-phase: the FSDU-displacement LP
    (Eq. 10) is the LP dual of such a problem, and the optimal node
    potentials of the flow solution are exactly the displacement labels [r].

    Costs are plain [int]s (the D-phase integerizes real delays by scaling,
    Section 2.3.1); use {!val-infinite_capacity} for uncapacitated arcs. *)

type arc = { src : int; dst : int; cap : int; cost : int }

type problem = {
  num_nodes : int;
  arcs : arc array;
  supply : int array; (* length num_nodes *)
}

val infinite_capacity : int
(** A capacity treated as unbounded; large but safe against overflow. *)

type status =
  | Optimal
  | Infeasible  (** Supplies cannot be routed within the capacities. *)
  | Unbounded   (** A negative-cost cycle of unbounded capacity exists. *)
  | Aborted
      (** A run budget ({!Minflo_robust.Budget}) was exhausted mid-solve;
          the flow is partial and must not be used. *)

type solution = {
  status : status;
  flow : int array;      (** per-arc flow; meaningful when [Optimal]. *)
  potential : int array; (** optimal dual (node potentials), root-normalized. *)
  objective : int;       (** total cost of the returned flow. *)
}

val validate : problem -> unit
(** Checks array lengths, node indices, non-negative capacities.
    @raise Invalid_argument when malformed. *)

val is_balanced : problem -> bool
(** Whether supplies sum to zero (necessary for feasibility). *)

val check_feasible_flow :
  problem -> int array -> (unit, Minflo_robust.Diag.error) result
(** Verifies capacity and conservation constraints of a candidate flow;
    failures are typed [Invariant] diagnostics. *)

val flow_cost : problem -> int array -> int

val check_optimality :
  problem -> solution -> (unit, Minflo_robust.Diag.error) result
(** Verifies complementary slackness of [solution.flow] against
    [solution.potential]: reduced cost >= 0 on arcs below capacity and <= 0
    on arcs above zero flow. Used heavily by the test-suite. *)

val canonical_potentials : problem -> solution -> int array
(** The componentwise-maximal optimal dual with every potential capped at 0
    — a canonical representative of the optimal dual face, independent of
    which optimal basis the solver ended on. Warm-started and cold-started
    solves (and different solvers) therefore return bit-identical duals
    after canonicalization, which is what lets the warm-started engine
    reproduce the cold engine's trajectory exactly. One Dijkstra over the
    complementary-slackness constraint graph, using [solution.potential] as
    the Johnson reweighting. If [solution] is not an [Optimal] certificate
    (fault injection, solver bug), the raw potentials are returned
    unchanged so downstream divergence detectors still see the defect. *)

type decomposition = {
  paths : (int list * int) list;
      (** arc-id sequences from a supply node to a demand node, with the
          amount carried. *)
  cycles : (int list * int) list;
}

val decompose : problem -> int array -> decomposition
(** Flow decomposition: any feasible flow splits into at most [m] paths and
    cycles whose superposition reproduces it exactly (checked by the
    test-suite). Useful for explaining a D-phase solution as concrete slack
    transfers. @raise Invalid_argument if the flow is not feasible. *)
