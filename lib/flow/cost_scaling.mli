(** Cost-scaling minimum-cost flow (Goldberg-Tarjan).

    The third, again independent, solver in the flow substrate: epsilon-
    optimality refined by halving, with push/relabel inside each phase.
    Strongly polynomial-ish in practice ([O(n^2 m log nC)] worst case) and
    structurally unlike both the network simplex and SSP, which makes the
    three-way agreement property test a powerful oracle.

    Returned potentials are scaled internally by [n]; they are rounded to a
    consistent integer dual on exit and certified by
    {!Mcf.check_optimality} in the tests. *)

val solve : ?budget:Minflo_robust.Budget.t -> Mcf.problem -> Mcf.solution
(** Each push/relabel step ticks [budget]; on exhaustion the result has
    status [Aborted]. *)
