module Diag = Minflo_robust.Diag

type arc = { src : int; dst : int; cap : int; cost : int }

type problem = { num_nodes : int; arcs : arc array; supply : int array }

let infinite_capacity = max_int / 8

type status = Optimal | Infeasible | Unbounded | Aborted

type solution = {
  status : status;
  flow : int array;
  potential : int array;
  objective : int;
}

let validate p =
  if p.num_nodes < 0 then invalid_arg "Mcf: negative node count";
  if Array.length p.supply <> p.num_nodes then
    invalid_arg "Mcf: supply length mismatch";
  Array.iteri
    (fun i a ->
      if a.src < 0 || a.src >= p.num_nodes || a.dst < 0 || a.dst >= p.num_nodes
      then invalid_arg (Printf.sprintf "Mcf: arc %d has bad endpoints" i);
      if a.cap < 0 then invalid_arg (Printf.sprintf "Mcf: arc %d has cap < 0" i))
    p.arcs

let is_balanced p = Array.fold_left ( + ) 0 p.supply = 0

(* internal string-detail version; the public API wraps the detail into a
   typed [Diag.Invariant] *)
let feasibility_detail p flow =
  if Array.length flow <> Array.length p.arcs then Error "flow length mismatch"
  else begin
    let excess = Array.copy p.supply in
    let err = ref None in
    Array.iteri
      (fun i a ->
        let f = flow.(i) in
        if f < 0 || f > a.cap then
          err := Some (Printf.sprintf "arc %d flow %d out of [0,%d]" i f a.cap);
        excess.(a.src) <- excess.(a.src) - f;
        excess.(a.dst) <- excess.(a.dst) + f)
      p.arcs;
    match !err with
    | Some e -> Error e
    | None -> (
      match Array.to_seq excess |> Seq.zip (Seq.ints 0)
            |> Seq.find (fun (_, e) -> e <> 0) with
      | Some (v, e) -> Error (Printf.sprintf "node %d has nonzero excess %d" v e)
      | None -> Ok ())
  end

let check_feasible_flow p flow =
  Result.map_error
    (fun detail -> Diag.Invariant { what = "flow-conservation"; detail })
    (feasibility_detail p flow)

let flow_cost p flow =
  let total = ref 0 in
  Array.iteri (fun i a -> total := !total + (a.cost * flow.(i))) p.arcs;
  !total

type decomposition = {
  paths : (int list * int) list;
  cycles : (int list * int) list;
}

let decompose p flow =
  (match feasibility_detail p flow with
  | Error e -> invalid_arg ("Mcf.decompose: " ^ e)
  | Ok () -> ());
  let remaining = Array.copy flow in
  (* per-node list of outgoing arcs that still carry flow *)
  let out = Array.make p.num_nodes [] in
  Array.iteri
    (fun i (a : arc) -> if remaining.(i) > 0 then out.(a.src) <- i :: out.(a.src))
    p.arcs;
  let next_out v =
    let rec clean = function
      | [] -> None
      | a :: rest ->
        if remaining.(a) > 0 then begin
          out.(v) <- a :: rest;
          Some a
        end
        else clean rest
    in
    clean out.(v)
  in
  let paths = ref [] and cycles = ref [] in
  (* walk forward from [start] until stuck (demand absorbed) or a node
     repeats (cycle found) *)
  let rec extract start =
    let visited_at = Hashtbl.create 16 in
    let rec walk v acc =
      match Hashtbl.find_opt visited_at v with
      | Some k ->
        (* cycle: the arcs from position k onward *)
        let arcs = List.rev acc in
        let cycle = List.filteri (fun i _ -> i >= k) arcs in
        let amount = List.fold_left (fun m a -> min m remaining.(a)) max_int cycle in
        List.iter (fun a -> remaining.(a) <- remaining.(a) - amount) cycle;
        cycles := (cycle, amount) :: !cycles;
        (* anything before the cycle is re-walked later *)
        ()
      | None -> (
        Hashtbl.add visited_at v (List.length acc);
        match next_out v with
        | Some a -> walk p.arcs.(a).dst (a :: acc)
        | None ->
          (* stuck: if we travelled, this is a path ending at a demand *)
          if acc <> [] then begin
            let arcs = List.rev acc in
            let amount =
              List.fold_left (fun m a -> min m remaining.(a)) max_int arcs
            in
            let amount = min amount p.supply.(start) in
            List.iter (fun a -> remaining.(a) <- remaining.(a) - amount) arcs;
            paths := (arcs, amount) :: !paths
          end)
    in
    walk start [];
    (* keep pulling from this source while it still has flow to push *)
    match next_out start with
    | Some _ when supply_left start > 0 -> extract start
    | _ -> ()
  and supply_left v =
    let used =
      List.fold_left (fun acc (arcs, amt) ->
          match arcs with
          | first :: _ when p.arcs.(first).src = v -> acc + amt
          | _ -> acc)
        0 !paths
    in
    p.supply.(v) - used
  in
  for v = 0 to p.num_nodes - 1 do
    if p.supply.(v) > 0 then extract v
  done;
  (* leftovers are pure circulations *)
  for v = 0 to p.num_nodes - 1 do
    let rec drain () =
      match next_out v with
      | Some _ -> (
        let visited_at = Hashtbl.create 16 in
        let rec walk u acc =
          match Hashtbl.find_opt visited_at u with
          | Some k ->
            let arcs = List.rev acc in
            let cycle = List.filteri (fun i _ -> i >= k) arcs in
            let amount =
              List.fold_left (fun m a -> min m remaining.(a)) max_int cycle
            in
            List.iter (fun a -> remaining.(a) <- remaining.(a) - amount) cycle;
            cycles := (cycle, amount) :: !cycles
          | None -> (
            Hashtbl.add visited_at u (List.length acc);
            match next_out u with
            | Some a -> walk p.arcs.(a).dst (a :: acc)
            | None ->
              (* leftover chain that is not a cycle (can arise when a path
                 extraction was capped by its source's supply): emit it as a
                 path so superposition still reproduces the flow *)
              if acc <> [] then begin
                let arcs = List.rev acc in
                let amount =
                  List.fold_left (fun m a -> min m remaining.(a)) max_int arcs
                in
                List.iter (fun a -> remaining.(a) <- remaining.(a) - amount) arcs;
                paths := (arcs, amount) :: !paths
              end)
        in
        walk v [];
        drain ())
      | None -> ()
    in
    drain ()
  done;
  { paths = List.rev !paths; cycles = List.rev !cycles }

(* The optimal dual face of the LP is { pi : pi feasible, complementary
   slack with f } for ANY optimal flow f — complementary slackness with one
   optimal primal plus dual feasibility already forces optimality, and every
   optimal dual is slack-complementary with every optimal primal. Solutions
   of a difference-constraint system are closed under componentwise max, so
   capping every potential at 0 leaves a unique componentwise-maximal
   element of that face. Computing it is a shortest-path problem from a
   virtual source s with a 0-weight arc to every node:

     f(a) < cap(a):  pi(u) - pi(v) <= cost(a)   => edge v -> u, weight cost
     f(a) > 0:       pi(v) - pi(u) <= -cost(a)  => edge u -> v, weight -cost

   The input potentials are themselves a valid Johnson reweighting (reduced
   weights are exactly +-reduced-cost, non-negative at optimality), so one
   Dijkstra suffices. The point: the result does not depend on which optimal
   basis the solver happened to end on, so warm- and cold-started solves
   return bit-identical duals. *)
let canonical_potentials p (sol : solution) =
  let n = p.num_nodes in
  if n = 0 || sol.status <> Optimal then Array.copy sol.potential
  else begin
    let h = sol.potential in
    let hs = Array.fold_left max h.(0) h in
    (* adjacency in CSR form; up to 2 entries per arc *)
    let deg = Array.make n 0 in
    let live = ref true in
    Array.iteri
      (fun i (a : arc) ->
        let rc = a.cost - h.(a.src) + h.(a.dst) in
        if sol.flow.(i) < a.cap then begin
          deg.(a.dst) <- deg.(a.dst) + 1;
          if rc < 0 then live := false
        end;
        if sol.flow.(i) > 0 then begin
          deg.(a.src) <- deg.(a.src) + 1;
          if rc > 0 then live := false
        end)
      p.arcs;
    if not !live then
      (* the certificate is not actually optimal (possible only under fault
         injection / a solver bug): canonicalization would silently repair
         it, so hand the raw potentials to the downstream detectors *)
      Array.copy sol.potential
    else begin
      let start = Array.make (n + 1) 0 in
      for v = 1 to n do
        start.(v) <- start.(v - 1) + deg.(v - 1)
      done;
      let cursor = Array.copy start in
      let m2 = start.(n) in
      let eto = Array.make m2 0 and ew = Array.make m2 0 in
      Array.iteri
        (fun i (a : arc) ->
          if sol.flow.(i) < a.cap then begin
            eto.(cursor.(a.dst)) <- a.src;
            ew.(cursor.(a.dst)) <- a.cost;
            cursor.(a.dst) <- cursor.(a.dst) + 1
          end;
          if sol.flow.(i) > 0 then begin
            eto.(cursor.(a.src)) <- a.dst;
            ew.(cursor.(a.src)) <- -a.cost;
            cursor.(a.src) <- cursor.(a.src) + 1
          end)
        p.arcs;
      (* Dijkstra over reduced weights w'(x,y) = w + h(x) - h(y), every node
         seeded through the virtual source's 0-weight arc *)
      let dist = Array.make n max_int in
      let final = Array.make n false in
      let heap = Minflo_util.Heap.create () in
      for v = 0 to n - 1 do
        dist.(v) <- hs - h.(v);
        Minflo_util.Heap.push heap ~key:dist.(v) v
      done;
      let continue = ref true in
      while !continue do
        match Minflo_util.Heap.pop_min heap with
        | None -> continue := false
        | Some (d, u) ->
          if not final.(u) then begin
            final.(u) <- true;
            for k = start.(u) to start.(u + 1) - 1 do
              let v = eto.(k) in
              let nd = d + ew.(k) + h.(u) - h.(v) in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                Minflo_util.Heap.push heap ~key:nd v
              end
            done
          end
      done;
      Array.init n (fun v -> dist.(v) - hs + h.(v))
    end
  end

let check_optimality p sol =
  match feasibility_detail p sol.flow with
  | Error detail ->
    Error
      (Diag.Invariant
         { what = "flow-conservation"; detail })
  | Ok () ->
    let err = ref None in
    Array.iteri
      (fun i a ->
        let rc = a.cost - sol.potential.(a.src) + sol.potential.(a.dst) in
        if sol.flow.(i) < a.cap && rc < 0 then
          err := Some (Printf.sprintf "arc %d below cap with reduced cost %d" i rc);
        if sol.flow.(i) > 0 && rc > 0 then
          err := Some (Printf.sprintf "arc %d above 0 with reduced cost %d" i rc))
      p.arcs;
    match !err with
    | Some detail -> Error (Diag.Invariant { what = "reduced-cost-optimality"; detail })
    | None -> Ok ()
