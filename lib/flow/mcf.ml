module Diag = Minflo_robust.Diag

type arc = { src : int; dst : int; cap : int; cost : int }

type problem = { num_nodes : int; arcs : arc array; supply : int array }

let infinite_capacity = max_int / 8

type status = Optimal | Infeasible | Unbounded | Aborted

type solution = {
  status : status;
  flow : int array;
  potential : int array;
  objective : int;
}

let validate p =
  if p.num_nodes < 0 then invalid_arg "Mcf: negative node count";
  if Array.length p.supply <> p.num_nodes then
    invalid_arg "Mcf: supply length mismatch";
  Array.iteri
    (fun i a ->
      if a.src < 0 || a.src >= p.num_nodes || a.dst < 0 || a.dst >= p.num_nodes
      then invalid_arg (Printf.sprintf "Mcf: arc %d has bad endpoints" i);
      if a.cap < 0 then invalid_arg (Printf.sprintf "Mcf: arc %d has cap < 0" i))
    p.arcs

let is_balanced p = Array.fold_left ( + ) 0 p.supply = 0

(* internal string-detail version; the public API wraps the detail into a
   typed [Diag.Invariant] *)
let feasibility_detail p flow =
  if Array.length flow <> Array.length p.arcs then Error "flow length mismatch"
  else begin
    let excess = Array.copy p.supply in
    let err = ref None in
    Array.iteri
      (fun i a ->
        let f = flow.(i) in
        if f < 0 || f > a.cap then
          err := Some (Printf.sprintf "arc %d flow %d out of [0,%d]" i f a.cap);
        excess.(a.src) <- excess.(a.src) - f;
        excess.(a.dst) <- excess.(a.dst) + f)
      p.arcs;
    match !err with
    | Some e -> Error e
    | None -> (
      match Array.to_seq excess |> Seq.zip (Seq.ints 0)
            |> Seq.find (fun (_, e) -> e <> 0) with
      | Some (v, e) -> Error (Printf.sprintf "node %d has nonzero excess %d" v e)
      | None -> Ok ())
  end

let check_feasible_flow p flow =
  Result.map_error
    (fun detail -> Diag.Invariant { what = "flow-conservation"; detail })
    (feasibility_detail p flow)

let flow_cost p flow =
  let total = ref 0 in
  Array.iteri (fun i a -> total := !total + (a.cost * flow.(i))) p.arcs;
  !total

type decomposition = {
  paths : (int list * int) list;
  cycles : (int list * int) list;
}

let decompose p flow =
  (match feasibility_detail p flow with
  | Error e -> invalid_arg ("Mcf.decompose: " ^ e)
  | Ok () -> ());
  let remaining = Array.copy flow in
  (* per-node list of outgoing arcs that still carry flow *)
  let out = Array.make p.num_nodes [] in
  Array.iteri
    (fun i (a : arc) -> if remaining.(i) > 0 then out.(a.src) <- i :: out.(a.src))
    p.arcs;
  let next_out v =
    let rec clean = function
      | [] -> None
      | a :: rest ->
        if remaining.(a) > 0 then begin
          out.(v) <- a :: rest;
          Some a
        end
        else clean rest
    in
    clean out.(v)
  in
  let paths = ref [] and cycles = ref [] in
  (* walk forward from [start] until stuck (demand absorbed) or a node
     repeats (cycle found) *)
  let rec extract start =
    let visited_at = Hashtbl.create 16 in
    let rec walk v acc =
      match Hashtbl.find_opt visited_at v with
      | Some k ->
        (* cycle: the arcs from position k onward *)
        let arcs = List.rev acc in
        let cycle = List.filteri (fun i _ -> i >= k) arcs in
        let amount = List.fold_left (fun m a -> min m remaining.(a)) max_int cycle in
        List.iter (fun a -> remaining.(a) <- remaining.(a) - amount) cycle;
        cycles := (cycle, amount) :: !cycles;
        (* anything before the cycle is re-walked later *)
        ()
      | None -> (
        Hashtbl.add visited_at v (List.length acc);
        match next_out v with
        | Some a -> walk p.arcs.(a).dst (a :: acc)
        | None ->
          (* stuck: if we travelled, this is a path ending at a demand *)
          if acc <> [] then begin
            let arcs = List.rev acc in
            let amount =
              List.fold_left (fun m a -> min m remaining.(a)) max_int arcs
            in
            let amount = min amount p.supply.(start) in
            List.iter (fun a -> remaining.(a) <- remaining.(a) - amount) arcs;
            paths := (arcs, amount) :: !paths
          end)
    in
    walk start [];
    (* keep pulling from this source while it still has flow to push *)
    match next_out start with
    | Some _ when supply_left start > 0 -> extract start
    | _ -> ()
  and supply_left v =
    let used =
      List.fold_left (fun acc (arcs, amt) ->
          match arcs with
          | first :: _ when p.arcs.(first).src = v -> acc + amt
          | _ -> acc)
        0 !paths
    in
    p.supply.(v) - used
  in
  for v = 0 to p.num_nodes - 1 do
    if p.supply.(v) > 0 then extract v
  done;
  (* leftovers are pure circulations *)
  for v = 0 to p.num_nodes - 1 do
    let rec drain () =
      match next_out v with
      | Some _ -> (
        let visited_at = Hashtbl.create 16 in
        let rec walk u acc =
          match Hashtbl.find_opt visited_at u with
          | Some k ->
            let arcs = List.rev acc in
            let cycle = List.filteri (fun i _ -> i >= k) arcs in
            let amount =
              List.fold_left (fun m a -> min m remaining.(a)) max_int cycle
            in
            List.iter (fun a -> remaining.(a) <- remaining.(a) - amount) cycle;
            cycles := (cycle, amount) :: !cycles
          | None -> (
            Hashtbl.add visited_at u (List.length acc);
            match next_out u with
            | Some a -> walk p.arcs.(a).dst (a :: acc)
            | None ->
              (* leftover chain that is not a cycle (can arise when a path
                 extraction was capped by its source's supply): emit it as a
                 path so superposition still reproduces the flow *)
              if acc <> [] then begin
                let arcs = List.rev acc in
                let amount =
                  List.fold_left (fun m a -> min m remaining.(a)) max_int arcs
                in
                List.iter (fun a -> remaining.(a) <- remaining.(a) - amount) arcs;
                paths := (arcs, amount) :: !paths
              end)
        in
        walk v [];
        drain ())
      | None -> ()
    in
    drain ()
  done;
  { paths = List.rev !paths; cycles = List.rev !cycles }

let check_optimality p sol =
  match feasibility_detail p sol.flow with
  | Error detail ->
    Error
      (Diag.Invariant
         { what = "flow-conservation"; detail })
  | Ok () ->
    let err = ref None in
    Array.iteri
      (fun i a ->
        let rc = a.cost - sol.potential.(a.src) + sol.potential.(a.dst) in
        if sol.flow.(i) < a.cap && rc < 0 then
          err := Some (Printf.sprintf "arc %d below cap with reduced cost %d" i rc);
        if sol.flow.(i) > 0 && rc > 0 then
          err := Some (Printf.sprintf "arc %d above 0 with reduced cost %d" i rc))
      p.arcs;
    match !err with
    | Some detail -> Error (Diag.Invariant { what = "reduced-cost-optimality"; detail })
    | None -> Ok ()
