(** Network simplex solver for minimum-cost flow.

    The primal network simplex method on a strongly feasible spanning tree
    (Cunningham's leaving-arc rule) with a block pivot-search rule, in the
    style of Goldberg-Grigoriadis-Tarjan [9] / AMO ch. 11. Integer costs and
    capacities; artificial big-M arcs provide the initial basis, so the
    network need not be connected.

    This is the production solver used by the D-phase. Complexity is
    polynomial in practice (near-linear on the shallow, sparse constraint
    graphs produced by circuit DAGs). *)

val solve : ?budget:Minflo_robust.Budget.t -> Mcf.problem -> Mcf.solution
(** Returns an optimal flow and optimal node potentials. The potentials are
    normalized so that the internal root has potential 0; they form a
    feasible, complementary-slack dual certificate (see
    {!Mcf.check_optimality}). [Infeasible] if supplies cannot be routed,
    [Unbounded] if a negative-cost cycle with unbounded capacity exists.
    Every pivot ticks [budget]; on exhaustion the solve stops immediately
    with status [Aborted]. *)

(** {1 Warm starts}

    The engine's D-phase solves a sequence of problems over one fixed
    network shape — only costs, capacities and supplies move between
    iterations. A {!state} retains the optimal spanning-tree basis of the
    previous solve; the next solve re-seeds it with the new data, repairs it
    back to strong feasibility (cut-and-reattach through the artificial
    arcs; see DESIGN §8), and resumes pivoting from there instead of
    climbing out of the all-artificial basis again. Certificates are
    unchanged in kind: the returned potentials are still feasible and
    complementary-slack, they may just sit on a different vertex of the
    optimal dual face than a cold solve's (use {!Mcf.canonical_potentials}
    when bit-identical duals matter). *)

type state
(** Reusable solver state. Never shared across concurrently running
    solves. *)

val make_state : unit -> state
(** A fresh, empty state: the first solve through it is a cold start. *)

val drop : state -> unit
(** Forget the retained basis; the next solve is a cold start. *)

val is_warm : state -> bool
(** Whether a retained basis is present. *)

val solve_warm :
  ?budget:Minflo_robust.Budget.t -> state -> Mcf.problem -> Mcf.solution
(** Like {!solve}, but reuses the basis in [state] when the network shape
    (node count, arc count, arc endpoints) matches the previous call;
    otherwise falls back to a cold start and repopulates the state. The
    state is kept after [Optimal] and [Aborted] outcomes and dropped after
    [Infeasible] / [Unbounded]. Warm and cold solves return the same
    optimal objective; the flow/potential vectors may differ within the
    optimal face when the optimum is degenerate. *)
