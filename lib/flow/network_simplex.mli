(** Network simplex solver for minimum-cost flow.

    The primal network simplex method on a strongly feasible spanning tree
    (Cunningham's leaving-arc rule) with a block pivot-search rule, in the
    style of Goldberg-Grigoriadis-Tarjan [9] / AMO ch. 11. Integer costs and
    capacities; artificial big-M arcs provide the initial basis, so the
    network need not be connected.

    This is the production solver used by the D-phase. Complexity is
    polynomial in practice (near-linear on the shallow, sparse constraint
    graphs produced by circuit DAGs). *)

val solve : ?budget:Minflo_robust.Budget.t -> Mcf.problem -> Mcf.solution
(** Returns an optimal flow and optimal node potentials. The potentials are
    normalized so that the internal root has potential 0; they form a
    feasible, complementary-slack dual certificate (see
    {!Mcf.check_optimality}). [Infeasible] if supplies cannot be routed,
    [Unbounded] if a negative-cost cycle with unbounded capacity exists.
    Every pivot ticks [budget]; on exhaustion the solve stops immediately
    with status [Aborted]. *)
