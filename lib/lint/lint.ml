module Raw = Minflo_netlist.Raw
module Gate = Minflo_netlist.Gate
module Digraph = Minflo_graph.Digraph
module Scc = Minflo_graph.Scc
module Tech = Minflo_tech.Tech

type config = { fanout_bound : int option; tech : Tech.t option }

let default_config = { fanout_bound = None; tech = Some Tech.default_130nm }

(* resolved view of a raw netlist: signals as dense ints *)
type view = {
  raw : Raw.t;
  names : string array;
  index : (string, int) Hashtbl.t;
  driver : Raw.gate_decl option array;
      (** the first gate driving each signal, if any *)
  input_decl : Raw.loc option array;
      (** first INPUT declaration of each signal, if any *)
  fanout : int array;  (** gate-fanin references per signal *)
}

let view_of raw =
  let names = Array.of_list (Raw.signal_names raw) in
  let index = Hashtbl.create (Array.length names * 2) in
  Array.iteri (fun i nm -> Hashtbl.replace index nm i) names;
  let n = Array.length names in
  let driver = Array.make n None in
  let input_decl = Array.make n None in
  let fanout = Array.make n 0 in
  List.iter
    (fun (nm, loc) ->
      let i = Hashtbl.find index nm in
      if input_decl.(i) = None then input_decl.(i) <- Some loc)
    raw.Raw.inputs;
  List.iter
    (fun (g : Raw.gate_decl) ->
      let i = Hashtbl.find index g.g_name in
      if driver.(i) = None then driver.(i) <- Some g;
      List.iter
        (fun f -> fanout.(Hashtbl.find index f) <- fanout.(Hashtbl.find index f) + 1)
        g.g_fanins)
    raw.Raw.gates;
  { raw; names; index; driver; input_decl; fanout }

let idx v nm = Hashtbl.find v.index nm

let mk v ?(loc = Raw.no_loc) ?related rule fmt =
  Printf.ksprintf
    (fun message -> Finding.make ~file:v.raw.Raw.file ~loc ?related rule message)
    fmt

(* ---------- interface & declaration passes ---------- *)

let check_interface v acc =
  let acc =
    if v.raw.Raw.inputs = [] then
      mk v ~loc:{ line = 1; col = 0 } Rule.mf009_empty_interface
        "circuit %S declares no primary inputs" v.raw.Raw.circuit
      :: acc
    else acc
  in
  if v.raw.Raw.outputs = [] then
    mk v ~loc:{ line = 1; col = 0 } Rule.mf009_empty_interface
      "circuit %S declares no primary outputs" v.raw.Raw.circuit
    :: acc
  else acc

let check_duplicate_inputs v acc =
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc (nm, loc) ->
      if Hashtbl.mem seen nm then
        mk v ~loc ~related:[ nm ] Rule.mf006_duplicate_decl
          "signal %S is declared INPUT more than once" nm
        :: acc
      else begin
        Hashtbl.add seen nm ();
        acc
      end)
    acc v.raw.Raw.inputs

let check_multi_driven v acc =
  (* count gate drivers per signal; also flag input-declared signals that a
     gate drives. Duplicate INPUT declarations are MF006, not repeated here. *)
  let gate_drivers = Hashtbl.create 16 in
  let acc =
    List.fold_left
      (fun acc (g : Raw.gate_decl) ->
        let prev = Option.value ~default:0 (Hashtbl.find_opt gate_drivers g.g_name) in
        Hashtbl.replace gate_drivers g.g_name (prev + 1);
        if prev > 0 then
          mk v ~loc:g.g_loc ~related:[ g.g_name ] Rule.mf002_multi_driven
            "signal %S is driven by %d gates" g.g_name (prev + 1)
          :: acc
        else acc)
      acc v.raw.Raw.gates
  in
  List.fold_left
    (fun acc (g : Raw.gate_decl) ->
      let i = idx v g.g_name in
      match (v.input_decl.(i), v.driver.(i)) with
      | Some _, Some first when first == g ->
        mk v ~loc:g.g_loc ~related:[ g.g_name ] Rule.mf002_multi_driven
          "signal %S is a primary input but is also driven by a gate" g.g_name
        :: acc
      | _ -> acc)
    acc v.raw.Raw.gates

let check_undriven v acc =
  let reported = Hashtbl.create 16 in
  let undriven nm =
    let i = idx v nm in
    v.input_decl.(i) = None && v.driver.(i) = None && not (Hashtbl.mem reported nm)
  in
  let acc =
    List.fold_left
      (fun acc (g : Raw.gate_decl) ->
        List.fold_left
          (fun acc f ->
            if undriven f then begin
              Hashtbl.add reported f ();
              mk v ~loc:g.g_loc ~related:[ f ] Rule.mf003_undriven
                "gate %S reads signal %S, which nothing drives" g.g_name f
              :: acc
            end
            else acc)
          acc g.g_fanins)
      acc v.raw.Raw.gates
  in
  List.fold_left
    (fun acc (nm, loc) ->
      if undriven nm then begin
        Hashtbl.add reported nm ();
        mk v ~loc ~related:[ nm ] Rule.mf003_undriven
          "OUTPUT(%s) refers to a signal nothing drives" nm
        :: acc
      end
      else acc)
    acc v.raw.Raw.outputs

(* ---------- cycle pass ---------- *)

let check_cycles v acc =
  let g = Digraph.create ~nodes_hint:(Array.length v.names) () in
  ignore (Digraph.add_nodes g (Array.length v.names));
  List.iter
    (fun (gd : Raw.gate_decl) ->
      let dst = idx v gd.g_name in
      List.iter (fun f -> ignore (Digraph.add_edge g (idx v f) dst)) gd.g_fanins)
    v.raw.Raw.gates;
  List.fold_left
    (fun acc cycle ->
      (* name the members by their driver gates, ordered by source line *)
      let members =
        List.filter_map
          (fun node ->
            match v.driver.(node) with
            | Some gd -> Some (gd.Raw.g_loc, v.names.(node))
            | None -> Some (Raw.no_loc, v.names.(node)))
          cycle
        |> List.sort compare
      in
      let loc =
        match members with (l, _) :: _ when l <> Raw.no_loc -> l | _ -> Raw.no_loc
      in
      let names = List.map snd members in
      mk v ~loc ~related:names Rule.mf001_cycle
        "combinational cycle through %d gate(s): %s" (List.length names)
        (String.concat " -> " (names @ [ List.hd names ]))
      :: acc)
    acc (Scc.cyclic_groups g)

(* ---------- liveness pass ---------- *)

(* signals from which some primary output is transitively needed: walk
   backward from the outputs through each signal's driver gate *)
let live_signals v =
  let n = Array.length v.names in
  let live = Array.make n false in
  let rec visit i =
    if not live.(i) then begin
      live.(i) <- true;
      match v.driver.(i) with
      | Some gd -> List.iter (fun f -> visit (idx v f)) gd.Raw.g_fanins
      | None -> ()
    end
  in
  List.iter
    (fun (nm, _) -> match Hashtbl.find_opt v.index nm with
      | Some i -> visit i
      | None -> ())
    v.raw.Raw.outputs;
  live

let dead_gates_of v =
  let live = live_signals v in
  (* one entry per distinct dead driven signal, first-driver order *)
  List.filter_map
    (fun (g : Raw.gate_decl) ->
      let i = idx v g.g_name in
      let is_first = match v.driver.(i) with Some d -> d == g | None -> false in
      if (not live.(i)) && is_first then Some g else None)
    v.raw.Raw.gates

let check_dead v acc =
  List.fold_left
    (fun acc (g : Raw.gate_decl) ->
      mk v ~loc:g.Raw.g_loc ~related:[ g.Raw.g_name ] Rule.mf005_dead_gate
        "gate %S reaches no primary output" g.Raw.g_name
      :: acc)
    acc (dead_gates_of v)

let check_dangling_inputs v acc =
  let live = live_signals v in
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc (nm, loc) ->
      let i = idx v nm in
      if Hashtbl.mem seen nm then acc
      else begin
        Hashtbl.add seen nm ();
        if v.fanout.(i) = 0 && not live.(i) then
          mk v ~loc ~related:[ nm ] Rule.mf004_dangling_input
            "primary input %S drives nothing" nm
          :: acc
        else acc
      end)
    acc v.raw.Raw.inputs

(* ---------- configurable passes ---------- *)

let check_fanout v bound acc =
  Array.to_seqi v.fanout
  |> Seq.fold_left
       (fun acc (i, fo) ->
         if fo > bound then
           let loc =
             match (v.driver.(i), v.input_decl.(i)) with
             | Some gd, _ -> gd.Raw.g_loc
             | None, Some l -> l
             | None, None -> Raw.no_loc
           in
           mk v ~loc ~related:[ v.names.(i) ] Rule.mf007_fanout_bound
             "signal %S fans out to %d gate pins (bound %d)" v.names.(i) fo
             bound
           :: acc
         else acc)
       acc

let stacked_kind = function
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor -> true
  | Gate.Not | Gate.Buf | Gate.Xor | Gate.Xnor -> false

let check_tech v (tech : Tech.t) acc =
  List.fold_left
    (fun acc (g : Raw.gate_decl) ->
      let arity = List.length g.g_fanins in
      if stacked_kind g.g_kind && arity > tech.max_stack then
        mk v ~loc:g.g_loc ~related:[ g.g_name ] Rule.mf008_tech_coverage
          "%d-input %s %S needs a series stack deeper than %s supports (max \
           %d)"
          arity (Gate.to_string g.g_kind) g.g_name tech.name tech.max_stack
        :: acc
      else acc)
    acc v.raw.Raw.gates

let check_arity v acc =
  List.fold_left
    (fun acc (g : Raw.gate_decl) ->
      let arity = List.length g.g_fanins in
      let lo = Gate.min_arity g.g_kind in
      if arity < lo then
        mk v ~loc:g.g_loc ~related:[ g.g_name ] Rule.mf010_bad_arity
          "%s %S needs at least %d fanin(s), has %d" (Gate.to_string g.g_kind)
          g.g_name lo arity
        :: acc
      else
        match Gate.max_arity g.g_kind with
        | Some hi when arity > hi ->
          mk v ~loc:g.g_loc ~related:[ g.g_name ] Rule.mf010_bad_arity
            "%s %S takes at most %d fanin(s), has %d" (Gate.to_string g.g_kind)
            g.g_name hi arity
          :: acc
        | _ -> acc)
    acc v.raw.Raw.gates

(* ---------- driver ---------- *)

let check ?(config = default_config) raw =
  let v = view_of raw in
  let acc = [] in
  let acc = check_interface v acc in
  let acc = check_duplicate_inputs v acc in
  let acc = check_multi_driven v acc in
  let acc = check_undriven v acc in
  let acc = check_cycles v acc in
  let acc = check_dead v acc in
  let acc = check_dangling_inputs v acc in
  let acc = check_arity v acc in
  let acc =
    match config.fanout_bound with
    | Some b -> check_fanout v b acc
    | None -> acc
  in
  let acc =
    match config.tech with
    | Some t -> Bounds.check_tech t @ check_tech v t acc
    | None -> acc
  in
  List.sort Finding.compare acc

let dead_gates raw =
  List.map (fun (g : Raw.gate_decl) -> g.g_name) (dead_gates_of (view_of raw))
