(** Human-readable rendering of findings and exit-code policy. *)

val pp_finding : Format.formatter -> Finding.t -> unit
(** [file:line:col: severity MF001 (slug): message]. Location segments are
    omitted when unknown. *)

val render : Finding.t list -> string
(** One finding per line, followed by a [N error(s), M warning(s)] summary
    line. Empty input renders as ["no findings\n"]. *)

val exit_code : ?fail_on:Rule.severity -> Finding.t list -> int
(** Map findings to the CLI exit-code convention: [0] when nothing reaches
    the [fail_on] threshold (default [Error]), [2] — the "bad input" code —
    otherwise. [--strict] mode is [~fail_on:Warning]. *)
