(** Independent audit of a min-cost-flow certificate.

    Given any solver's {!Minflo_flow.Mcf.solution}, re-verifies from first
    principles — no second solve — that the solution actually proves what it
    claims:

    - MF101: every arc's flow is within [0, cap];
    - MF102: every node conserves flow against its supply;
    - MF103: complementary slackness of the flow against the returned node
      potentials. With reduced cost [rc a = cost a - pi (src a) + pi (dst a)],
      optimality requires [flow a < cap a => rc a >= 0] and
      [flow a > 0 => rc a <= 0]. Feasible flow + feasible potentials +
      slackness is a complete optimality certificate (LP duality), which is
      exactly why the D-phase can trust its displacement labels;
    - MF104: the reported objective equals [sum (cost a * flow a)];
    - MF105: the status is not [Optimal] (the other checks are then
      vacuous and are skipped).

    The runtime {!Minflo_flow.Mcf.check_optimality} answers pass/fail for
    internal assertions; this module produces per-violation {!Finding}s for
    reporting, with arc and node indices in [related]. *)

val check : Minflo_flow.Mcf.problem -> Minflo_flow.Mcf.solution -> Finding.t list
(** Empty list: the certificate is valid. Findings are capped at 32 per rule
    (a corrupted certificate can violate thousands of constraints); a
    closing finding under the same rule reports how many were truncated. *)

val capped : Rule.t -> (string * string list) list -> Finding.t list
(** [(message, related)] pairs as findings under one rule, truncated at 32
    with a closing count — shared by the bound analyzer and trace auditor,
    whose per-gate / per-arc findings have the same flooding problem. *)
