type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

type t = { id : string; severity : severity; name : string; summary : string }

let mf000_syntax =
  { id = "MF000";
    severity = Error;
    name = "syntax-error";
    summary = "The file could not be parsed as a .bench or Verilog netlist." }

let mf001_cycle =
  { id = "MF001";
    severity = Error;
    name = "combinational-cycle";
    summary =
      "Gates form a combinational feedback loop; static timing is undefined." }

let mf002_multi_driven =
  { id = "MF002";
    severity = Error;
    name = "multi-driven-net";
    summary = "A signal is driven by more than one gate, or by a gate and a \
               primary input." }

let mf003_undriven =
  { id = "MF003";
    severity = Error;
    name = "undriven-net";
    summary = "A signal is used as a fanin or output but is neither a primary \
               input nor driven by any gate." }

let mf004_dangling_input =
  { id = "MF004";
    severity = Warning;
    name = "dangling-input";
    summary = "A primary input drives nothing and is not an output." }

let mf005_dead_gate =
  { id = "MF005";
    severity = Warning;
    name = "dead-gate";
    summary = "No primary output is reachable from this gate; it cannot \
               affect the circuit function." }

let mf006_duplicate_decl =
  { id = "MF006";
    severity = Error;
    name = "duplicate-declaration";
    summary = "The same signal is declared as a primary input more than once." }

let mf007_fanout_bound =
  { id = "MF007";
    severity = Warning;
    name = "fanout-bound";
    summary = "A signal's fanout exceeds the configured bound." }

let mf008_tech_coverage =
  { id = "MF008";
    severity = Error;
    name = "tech-coverage";
    summary = "Gate arity exceeds the technology's widest series transistor \
               stack; no cell exists for it." }

let mf009_empty_interface =
  { id = "MF009";
    severity = Error;
    name = "empty-interface";
    summary = "The circuit declares no primary inputs or no primary outputs." }

let mf010_bad_arity =
  { id = "MF010";
    severity = Error;
    name = "bad-arity";
    summary = "A gate has too few or too many fanins for its kind." }

let mf101_flow_bounds =
  { id = "MF101";
    severity = Error;
    name = "flow-capacity";
    summary = "An arc's flow is negative or exceeds its capacity." }

let mf102_conservation =
  { id = "MF102";
    severity = Error;
    name = "flow-conservation";
    summary = "A node's net outflow does not equal its supply." }

let mf103_slackness =
  { id = "MF103";
    severity = Error;
    name = "complementary-slackness";
    summary = "The flow and the node potentials violate complementary \
               slackness; the certificate does not prove optimality." }

let mf104_objective =
  { id = "MF104";
    severity = Error;
    name = "objective-mismatch";
    summary = "The reported objective differs from the cost of the returned \
               flow." }

let mf105_not_optimal =
  { id = "MF105";
    severity = Warning;
    name = "non-optimal-status";
    summary = "The solver did not report Optimal; the certificate checks are \
               vacuous." }

let mf201_infeasible_target =
  { id = "MF201";
    severity = Error;
    name = "infeasible-target";
    summary = "The delay target is below the interval-bound lower bound on \
               the circuit delay; no sizing can meet it." }

let mf202_pinned_gate =
  { id = "MF202";
    severity = Info;
    name = "pinned-gate";
    summary = "Every feasible sizing holds this gate at (or within tolerance \
               of) its best-case configuration: the target leaves it no \
               sizing freedom." }

let mf203_slack_irrelevant =
  { id = "MF203";
    severity = Info;
    name = "slack-irrelevant-gate";
    summary = "Every path through this gate meets the target even at the \
               worst-case sizing; it can be frozen at minimum size." }

let mf204_tech_non_monotone =
  { id = "MF204";
    severity = Warning;
    name = "tech-non-monotone";
    summary = "A gate-model entry is non-positive or decreases as the arity \
               grows; the monotonicity the bound analysis (and TILOS) relies \
               on does not hold." }

let mf210_trace_malformed =
  { id = "MF210";
    severity = Error;
    name = "trace-malformed";
    summary = "An engine trace record is missing, truncated, out of order, \
               or not valid JSON." }

let mf211_trace_claim =
  { id = "MF211";
    severity = Error;
    name = "trace-claim-mismatch";
    summary = "A claimed area, delay or objective in the trace differs from \
               its independent recomputation from the recorded sizes." }

let mf212_trace_budget =
  { id = "MF212";
    severity = Error;
    name = "trace-budget-violation";
    summary = "The recorded W-phase sizes do not meet the recorded D-phase \
               delay budgets within tolerance." }

let mf213_trace_progress =
  { id = "MF213";
    severity = Error;
    name = "trace-nonmonotone-progress";
    summary = "The engine claims monotone area descent but a recorded \
               iteration does not improve on its predecessor." }

let mf214_trace_final =
  { id = "MF214";
    severity = Error;
    name = "trace-infeasible-final";
    summary = "The final sizing fails an independent STA against the target, \
               is out of bounds, or contradicts the recorded run." }

let mf215_trace_lp =
  { id = "MF215";
    severity = Error;
    name = "trace-lp-mismatch";
    summary = "A recorded displacement LP differs from the one independently \
               rebuilt from the circuit at the recorded sizes (tampered \
               costs, arcs or supplies)." }

let all =
  [ mf000_syntax; mf001_cycle; mf002_multi_driven; mf003_undriven;
    mf004_dangling_input; mf005_dead_gate; mf006_duplicate_decl;
    mf007_fanout_bound; mf008_tech_coverage; mf009_empty_interface;
    mf010_bad_arity; mf101_flow_bounds; mf102_conservation; mf103_slackness;
    mf104_objective; mf105_not_optimal; mf201_infeasible_target;
    mf202_pinned_gate; mf203_slack_irrelevant; mf204_tech_non_monotone;
    mf210_trace_malformed; mf211_trace_claim; mf212_trace_budget;
    mf213_trace_progress; mf214_trace_final; mf215_trace_lp ]

let find id = List.find_opt (fun r -> r.id = id) all
