type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

type t = { id : string; severity : severity; name : string; summary : string }

let mf000_syntax =
  { id = "MF000";
    severity = Error;
    name = "syntax-error";
    summary = "The file could not be parsed as a .bench or Verilog netlist." }

let mf001_cycle =
  { id = "MF001";
    severity = Error;
    name = "combinational-cycle";
    summary =
      "Gates form a combinational feedback loop; static timing is undefined." }

let mf002_multi_driven =
  { id = "MF002";
    severity = Error;
    name = "multi-driven-net";
    summary = "A signal is driven by more than one gate, or by a gate and a \
               primary input." }

let mf003_undriven =
  { id = "MF003";
    severity = Error;
    name = "undriven-net";
    summary = "A signal is used as a fanin or output but is neither a primary \
               input nor driven by any gate." }

let mf004_dangling_input =
  { id = "MF004";
    severity = Warning;
    name = "dangling-input";
    summary = "A primary input drives nothing and is not an output." }

let mf005_dead_gate =
  { id = "MF005";
    severity = Warning;
    name = "dead-gate";
    summary = "No primary output is reachable from this gate; it cannot \
               affect the circuit function." }

let mf006_duplicate_decl =
  { id = "MF006";
    severity = Error;
    name = "duplicate-declaration";
    summary = "The same signal is declared as a primary input more than once." }

let mf007_fanout_bound =
  { id = "MF007";
    severity = Warning;
    name = "fanout-bound";
    summary = "A signal's fanout exceeds the configured bound." }

let mf008_tech_coverage =
  { id = "MF008";
    severity = Error;
    name = "tech-coverage";
    summary = "Gate arity exceeds the technology's widest series transistor \
               stack; no cell exists for it." }

let mf009_empty_interface =
  { id = "MF009";
    severity = Error;
    name = "empty-interface";
    summary = "The circuit declares no primary inputs or no primary outputs." }

let mf010_bad_arity =
  { id = "MF010";
    severity = Error;
    name = "bad-arity";
    summary = "A gate has too few or too many fanins for its kind." }

let mf101_flow_bounds =
  { id = "MF101";
    severity = Error;
    name = "flow-capacity";
    summary = "An arc's flow is negative or exceeds its capacity." }

let mf102_conservation =
  { id = "MF102";
    severity = Error;
    name = "flow-conservation";
    summary = "A node's net outflow does not equal its supply." }

let mf103_slackness =
  { id = "MF103";
    severity = Error;
    name = "complementary-slackness";
    summary = "The flow and the node potentials violate complementary \
               slackness; the certificate does not prove optimality." }

let mf104_objective =
  { id = "MF104";
    severity = Error;
    name = "objective-mismatch";
    summary = "The reported objective differs from the cost of the returned \
               flow." }

let mf105_not_optimal =
  { id = "MF105";
    severity = Warning;
    name = "non-optimal-status";
    summary = "The solver did not report Optimal; the certificate checks are \
               vacuous." }

let all =
  [ mf000_syntax; mf001_cycle; mf002_multi_driven; mf003_undriven;
    mf004_dangling_input; mf005_dead_gate; mf006_duplicate_decl;
    mf007_fanout_bound; mf008_tech_coverage; mf009_empty_interface;
    mf010_bad_arity; mf101_flow_bounds; mf102_conservation; mf103_slackness;
    mf104_objective; mf105_not_optimal ]

let find id = List.find_opt (fun r -> r.id = id) all
