module Json = Minflo_util.Json
module Diag = Minflo_robust.Diag
module Io = Minflo_robust.Io
module Delay_model = Minflo_tech.Delay_model
module Sta = Minflo_timing.Sta
module Mcf = Minflo_flow.Mcf
module Dphase = Minflo_sizing.Dphase
module Tilos = Minflo_sizing.Tilos
module Engine = Minflo_sizing.Minflotransit

let version = 1

(* ---------- writer ---------- *)

type writer = {
  sink : Io.sink;
  model : Delay_model.t;
  target : float;
  mutable w_error : Diag.error option;
}

let jfloats a = Json.List (Array.to_list (Array.map (fun f -> Json.Num f) a))
let jints a = Json.List (Array.to_list (Array.map (fun i -> Json.Num (float_of_int i)) a))

let status_to_string = function
  | Mcf.Optimal -> "optimal"
  | Mcf.Infeasible -> "infeasible"
  | Mcf.Unbounded -> "unbounded"
  | Mcf.Aborted -> "aborted"

let status_of_string = function
  | "optimal" -> Some Mcf.Optimal
  | "infeasible" -> Some Mcf.Infeasible
  | "unbounded" -> Some Mcf.Unbounded
  | "aborted" -> Some Mcf.Aborted
  | _ -> None

(* [Mcf.infinite_capacity] is [max_int / 8], far beyond exact float range;
   a JSON number would come back changed and every capacity comparison
   would be noise. The wire encodes it as -1. *)
let jcap c = Json.Num (if c >= Mcf.infinite_capacity then -1.0 else float_of_int c)
let cap_of_float f = if f < 0.0 then Mcf.infinite_capacity else int_of_float f

let jlp (c : Dphase.certificate) =
  let p = c.problem and s = c.solution in
  Json.Obj
    [ ("num_nodes", Json.Num (float_of_int p.Mcf.num_nodes));
      ( "arcs",
        Json.List
          (Array.to_list
             (Array.map
                (fun (a : Mcf.arc) ->
                  Json.List
                    [ Json.Num (float_of_int a.src);
                      Json.Num (float_of_int a.dst);
                      jcap a.cap;
                      Json.Num (float_of_int a.cost) ])
                p.Mcf.arcs)) );
      ("supply", jints p.Mcf.supply);
      ("status", Json.Str (status_to_string s.Mcf.status));
      ("flow", jints s.Mcf.flow);
      ("potential", jints s.Mcf.potential);
      ("objective", Json.Num (float_of_int s.Mcf.objective)) ]

(* The first storage failure sticks and silences the rest: a trace that
   cannot be completed is worthless to the auditor, so there is no point
   hammering a full disk once per step — the engine run proceeds, and the
   caller checks [error] when it finishes. *)
let emit w v =
  if w.w_error = None then
    match Io.sink_write_line w.sink (Json.to_string v) with
    | Ok () -> ()
    | Error e -> w.w_error <- Some e

let error w = w.w_error

let create sink (model : Delay_model.t) ~circuit ~target =
  let w = { sink; model; target; w_error = None } in
  emit w
    (Json.Obj
       [ ("record", Json.Str "header");
         ("version", Json.Num (float_of_int version));
         ("circuit", Json.Str circuit);
         ("n", Json.Num (float_of_int (Delay_model.num_vertices model)));
         ("target", Json.Num target);
         ("min_size", Json.Num model.Delay_model.min_size);
         ("max_size", Json.Num model.Delay_model.max_size) ]);
  w

let record_tilos w (t : Tilos.result) =
  emit w
    (Json.Obj
       [ ("record", Json.Str "tilos");
         ("area", Json.Num t.Tilos.area);
         ("cp", Json.Num t.Tilos.final_cp);
         ("met", Json.Bool t.Tilos.met);
         ("bumps", Json.Num (float_of_int t.Tilos.bumps));
         ("sizes", jfloats t.Tilos.sizes) ])

let record_step w (s : Engine.step) =
  let base =
    [ ("record", Json.Str "step");
      ("iter", Json.Num (float_of_int s.Engine.step_iter));
      ("solver", Json.Str s.Engine.step_solver);
      ("eta", Json.Num s.Engine.step_eta);
      ("area", Json.Num s.Engine.step_area);
      ("cp", Json.Num s.Engine.step_cp);
      ("predicted", Json.Num s.Engine.step_predicted);
      ("sizes", jfloats s.Engine.step_sizes);
      ("budgets", jfloats s.Engine.step_budgets) ]
  in
  let lp =
    match s.Engine.step_certificate with
    | Some c -> [ ("lp", jlp c) ]
    | None -> []
  in
  emit w (Json.Obj (base @ lp))

let record_result w (r : Engine.result) =
  emit w
    (Json.Obj
       [ ("record", Json.Str "final");
         ("area", Json.Num r.Engine.area);
         ("cp", Json.Num r.Engine.cp);
         ("met", Json.Bool r.Engine.met);
         ("iterations", Json.Num (float_of_int r.Engine.iterations));
         ("stop", Json.Str (Engine.stop_reason_to_string r.Engine.stop));
         ("sizes", jfloats r.Engine.sizes) ])

(* ---------- auditor ---------- *)

(* The auditor trusts nothing but the circuit model it was handed: every
   claimed number is recomputed from the recorded sizes, every recorded LP
   is rebuilt from scratch at the preceding sizing, every flow certificate
   goes through the same first-principles checks as [minflo audit-cert].
   Any single tampered field therefore surfaces as a typed finding:

   - structural damage (bad JSON, wrong order, wrong lengths)  -> MF210
   - area / delay / feasibility claims vs. recomputation        -> MF211
   - W-phase budgets not met by the recorded sizes              -> MF212
   - area not strictly decreasing across accepted steps         -> MF213
   - final record infeasible or contradicting the run           -> MF214
   - recorded LP differing from the independent rebuild         -> MF215
   - flow certificate invalid (bounds/conservation/slackness)   -> MF101+ *)

type acc = { mutable per_rule : (Rule.t * (string * string list) list) list }

let add acc rule ?(related = []) msg =
  let cur = try List.assq rule acc.per_rule with Not_found -> [] in
  acc.per_rule <-
    (rule, (msg, related) :: cur) :: List.remove_assq rule acc.per_rule

let rel_close ?(tol = 1e-9) a b =
  Float.abs (a -. b) <= tol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let floats_field key j =
  match Json.member key j with
  | Some (Json.List l) ->
    let ok = ref true in
    let a =
      Array.of_list
        (List.map
           (fun v ->
             match Json.to_num v with
             | Some f -> f
             | None ->
               ok := false;
               nan)
           l)
    in
    if !ok then Some a else None
  | _ -> None

let ints_field key j =
  match Json.member key j with
  | Some (Json.List l) ->
    let ok = ref true in
    let a =
      Array.of_list
        (List.map
           (fun v ->
             match Json.to_int v with
             | Some i -> i
             | None ->
               ok := false;
               0)
           l)
    in
    if !ok then Some a else None
  | _ -> None

let parse_lp j =
  let open Json in
  match
    ( int_field "num_nodes" j,
      member "arcs" j,
      ints_field "supply" j,
      Option.bind (str_field "status" j) status_of_string,
      ints_field "flow" j,
      ints_field "potential" j,
      int_field "objective" j )
  with
  | ( Some num_nodes,
      Some (List arcs),
      Some supply,
      Some status,
      Some flow,
      Some potential,
      Some objective ) ->
    let ok = ref true in
    let arcs =
      Array.of_list
        (List.map
           (fun a ->
             match a with
             | List [ s; d; c; w ] -> (
               match (to_int s, to_int d, to_num c, to_int w) with
               | Some src, Some dst, Some cap, Some cost ->
                 { Mcf.src; dst; cap = cap_of_float cap; cost }
               | _ ->
                 ok := false;
                 { Mcf.src = 0; dst = 0; cap = 0; cost = 0 })
             | _ ->
               ok := false;
               { Mcf.src = 0; dst = 0; cap = 0; cost = 0 })
           arcs)
    in
    if not !ok then None
    else
      Some
        ( { Mcf.num_nodes; arcs; supply },
          { Mcf.status; flow; potential; objective } )
  | _ -> None

let lp_mismatch (recorded : Mcf.problem) (rebuilt : Mcf.problem) =
  if recorded.Mcf.num_nodes <> rebuilt.Mcf.num_nodes then
    Some
      (Printf.sprintf "recorded %d LP nodes, independent rebuild has %d"
         recorded.Mcf.num_nodes rebuilt.Mcf.num_nodes)
  else if Array.length recorded.Mcf.arcs <> Array.length rebuilt.Mcf.arcs then
    Some
      (Printf.sprintf "recorded %d LP arcs, independent rebuild has %d"
         (Array.length recorded.Mcf.arcs)
         (Array.length rebuilt.Mcf.arcs))
  else if recorded.Mcf.supply <> rebuilt.Mcf.supply then
    Some "recorded LP supplies differ from the independent rebuild"
  else begin
    let bad = ref None in
    Array.iteri
      (fun k (a : Mcf.arc) ->
        let b = rebuilt.Mcf.arcs.(k) in
        if !bad = None && (a.src <> b.src || a.dst <> b.dst) then
          bad := Some (Printf.sprintf "arc %d endpoints differ from rebuild" k);
        if !bad = None && a.cap <> b.cap then
          bad :=
            Some
              (Printf.sprintf "arc %d capacity %d, rebuild says %d" k a.cap
                 b.cap);
        if !bad = None && a.cost <> b.cost then
          bad :=
            Some
              (Printf.sprintf "arc %d cost %d, rebuild says %d" k a.cost b.cost))
      recorded.Mcf.arcs;
    !bad
  end

let audit (model : Delay_model.t) ~target content =
  let acc = { per_rule = [] } in
  let flow_findings = ref [] in
  let n = Delay_model.num_vertices model in
  let lines =
    List.filteri
      (fun _ l -> String.trim l <> "")
      (String.split_on_char '\n' content)
  in
  let records =
    List.mapi
      (fun k l ->
        match Json.parse l with
        | Ok j -> Some (k + 1, j)
        | Error e ->
          add acc Rule.mf210_trace_malformed
            (Printf.sprintf "line %d: not valid JSON (%s)" (k + 1) e);
          None)
      lines
  in
  let records = List.filter_map Fun.id records in
  let kind j = Option.value ~default:"?" (Json.str_field "record" j) in
  (match records with
  | [] -> add acc Rule.mf210_trace_malformed "trace is empty"
  | (ln, header) :: rest ->
    (* header *)
    if kind header <> "header" then
      add acc Rule.mf210_trace_malformed
        (Printf.sprintf "line %d: expected the header record first, got %S" ln
           (kind header))
    else begin
      (match Json.int_field "version" header with
      | Some v when v = version -> ()
      | v ->
        add acc Rule.mf210_trace_malformed
          (Printf.sprintf "header: unsupported trace version %s"
             (match v with Some v -> string_of_int v | None -> "<missing>")));
      (match Json.int_field "n" header with
      | Some hn when hn = n -> ()
      | hn ->
        add acc Rule.mf210_trace_malformed
          (Printf.sprintf
             "header: trace is for a %s-vertex circuit, the given circuit \
              has %d vertices"
             (match hn with Some v -> string_of_int v | None -> "?")
             n));
      match Json.num_field "target" header with
      | Some ht when rel_close ht target -> ()
      | ht ->
        add acc Rule.mf210_trace_malformed
          (Printf.sprintf
             "header: trace targets %s, the audit was asked to verify \
              target %g"
             (match ht with Some v -> Printf.sprintf "%g" v | None -> "?")
             target)
    end;
    (* tilos seed *)
    let prev = ref None in
    (* (sizes, area) of the last verified waypoint *)
    let steps_seen = ref 0 in
    let final_seen = ref None in
    let check_claims rule ~what ~related j =
      (* shared by tilos / step / final: recompute every claim from the
         recorded sizes and compare *)
      match floats_field "sizes" j with
      | None ->
        add acc Rule.mf210_trace_malformed
          (Printf.sprintf "%s: missing or non-numeric sizes array" what);
        None
      | Some sizes when Array.length sizes <> n ->
        add acc Rule.mf210_trace_malformed
          (Printf.sprintf "%s: sizes has %d entries, circuit has %d vertices"
             what (Array.length sizes) n);
        None
      | Some sizes ->
        let oob = ref false in
        Array.iter
          (fun v ->
            if
              (not (Float.is_finite v))
              || v < model.Delay_model.min_size -. 1e-9
              || v > model.Delay_model.max_size +. 1e-9
            then oob := true)
          sizes;
        if !oob then
          add acc rule ~related
            (Printf.sprintf "%s: recorded sizes leave the [%g, %g] size box"
               what model.Delay_model.min_size model.Delay_model.max_size);
        let delays = Delay_model.delays model sizes in
        let area = Delay_model.area model sizes in
        let cp = Sta.critical_path_only model ~delays in
        (match Json.num_field "area" j with
        | Some a when rel_close a area -> ()
        | a ->
          add acc rule ~related
            (Printf.sprintf
               "%s: claims area %s but the recorded sizes have area %.17g"
               what
               (match a with
               | Some v -> Printf.sprintf "%.17g" v
               | None -> "<missing>")
               area));
        (match Json.num_field "cp" j with
        | Some c when rel_close c cp -> ()
        | c ->
          add acc rule ~related
            (Printf.sprintf
               "%s: claims critical path %s but the recorded sizes give %.17g"
               what
               (match c with
               | Some v -> Printf.sprintf "%.17g" v
               | None -> "<missing>")
               cp));
        (match Json.bool_field "met" j with
        | None -> ()
        | Some m ->
          let really = cp <= target *. (1.0 +. 1e-9) in
          if m && not really then
            add acc rule ~related
              (Printf.sprintf
                 "%s: claims the target %g is met but the recorded sizes \
                  give critical path %.17g"
                 what target cp));
        Some (sizes, delays, area, cp)
    in
    List.iter
      (fun (ln, j) ->
        match kind j with
        | "header" ->
          add acc Rule.mf210_trace_malformed
            (Printf.sprintf "line %d: duplicate header" ln)
        | "tilos" ->
          if !prev <> None || !steps_seen > 0 then
            add acc Rule.mf210_trace_malformed
              (Printf.sprintf "line %d: tilos record after the seed position"
                 ln)
          else begin
            match
              check_claims Rule.mf211_trace_claim ~what:"tilos" ~related:[] j
            with
            | Some (sizes, _, area, _) -> prev := Some (sizes, area)
            | None -> ()
          end
        | "step" -> (
          if !final_seen <> None then
            add acc Rule.mf210_trace_malformed
              (Printf.sprintf "line %d: step after the final record" ln);
          incr steps_seen;
          let what = Printf.sprintf "step %d" !steps_seen in
          (match Json.int_field "iter" j with
          | Some it when it = !steps_seen -> ()
          | it ->
            add acc Rule.mf210_trace_malformed
              (Printf.sprintf "%s: iter is %s, expected %d" what
                 (match it with
                 | Some v -> string_of_int v
                 | None -> "<missing>")
                 !steps_seen));
          match
            check_claims Rule.mf211_trace_claim ~what ~related:[] j
          with
          | None -> ()
          | Some (sizes, delays, area, _) ->
            (* W-phase fixpoint claim: every recorded delay budget is met *)
            (match floats_field "budgets" j with
            | None ->
              add acc Rule.mf210_trace_malformed
                (Printf.sprintf "%s: missing or non-numeric budgets array"
                   what)
            | Some budgets when Array.length budgets <> n ->
              add acc Rule.mf210_trace_malformed
                (Printf.sprintf "%s: budgets has %d entries, expected %d" what
                   (Array.length budgets) n)
            | Some budgets ->
              Array.iteri
                (fun i d ->
                  let b = budgets.(i) in
                  if d > b +. 1e-6 +. 1e-9 *. Float.abs b then
                    add acc Rule.mf212_trace_budget
                      ~related:[ model.Delay_model.labels.(i) ]
                      (Printf.sprintf
                         "%s: vertex %s delay %.17g exceeds its recorded \
                          budget %.17g"
                         what model.Delay_model.labels.(i) d b))
                delays);
            (* monotone progress against the previous waypoint *)
            (match !prev with
            | Some (prev_sizes, prev_area) ->
              if not (area < prev_area) then
                add acc Rule.mf213_trace_progress
                  (Printf.sprintf
                     "%s: area %.17g does not improve on the previous %.17g"
                     what area prev_area);
              (* the LP certificate, re-verified and re-built *)
              let solver =
                Option.value ~default:"?" (Json.str_field "solver" j)
              in
              (match (Json.member "lp" j, solver) with
              | None, "bellman-ford" ->
                (* the feasibility rung has no certificate by design *)
                ()
              | None, _ ->
                add acc Rule.mf210_trace_malformed
                  (Printf.sprintf
                     "%s: solver %s must carry an LP certificate" what solver)
              | Some lp_json, _ -> (
                match parse_lp lp_json with
                | None ->
                  add acc Rule.mf210_trace_malformed
                    (Printf.sprintf "%s: malformed LP certificate" what)
                | Some (problem, solution) ->
                  List.iter
                    (fun (f : Finding.t) ->
                      flow_findings :=
                        { f with
                          message = Printf.sprintf "%s: %s" what f.message }
                        :: !flow_findings)
                    (Audit.check problem solution);
                  let eta =
                    Option.value ~default:0.5 (Json.num_field "eta" j)
                  in
                  let dopts = { Dphase.default_options with eta } in
                  (match
                     Dphase.displacement_problem ~options:dopts model
                       ~sizes:prev_sizes
                       ~delays:(Delay_model.delays model prev_sizes)
                       ~deadline:target
                   with
                  | Error e ->
                    add acc Rule.mf215_trace_lp
                      (Printf.sprintf
                         "%s: the displacement LP cannot even be rebuilt at \
                          the preceding sizes: %s"
                         what (Minflo_robust.Diag.to_string e))
                  | Ok rebuilt -> (
                    match lp_mismatch problem rebuilt with
                    | Some msg ->
                      add acc Rule.mf215_trace_lp
                        (Printf.sprintf "%s: %s" what msg)
                    | None -> ()))))
            | None ->
              add acc Rule.mf210_trace_malformed
                (Printf.sprintf "%s: appears before the tilos seed" what));
            prev := Some (sizes, area))
        | "final" ->
          if !final_seen <> None then
            add acc Rule.mf210_trace_malformed
              (Printf.sprintf "line %d: duplicate final record" ln)
          else begin
            (match Json.int_field "iterations" j with
            | Some k when k = !steps_seen -> ()
            | k ->
              add acc Rule.mf214_trace_final
                (Printf.sprintf
                   "final: claims %s iterations but the trace records %d \
                    accepted steps"
                   (match k with
                   | Some v -> string_of_int v
                   | None -> "<missing>")
                   !steps_seen));
            match
              check_claims Rule.mf214_trace_final ~what:"final" ~related:[] j
            with
            | None -> final_seen := Some None
            | Some (sizes, _, _, _) ->
              (match !prev with
              | Some (prev_sizes, _) when sizes <> prev_sizes ->
                add acc Rule.mf214_trace_final
                  "final: sizes differ from the last recorded waypoint"
              | _ -> ());
              final_seen := Some (Some sizes)
          end
        | other ->
          add acc Rule.mf210_trace_malformed
            (Printf.sprintf "line %d: unknown record kind %S" ln other))
      rest;
    if !final_seen = None then
      add acc Rule.mf210_trace_malformed
        "trace ends without a final record (truncated run?)");
  List.concat_map
    (fun (rule, items) -> Audit.capped rule (List.rev items))
    (List.rev acc.per_rule)
  @ List.rev !flow_findings

let audit_file model ~target path =
  Result.map (audit model ~target) (Io.read_file path)
