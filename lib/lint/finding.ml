module Raw = Minflo_netlist.Raw
module Diag = Minflo_robust.Diag

type t = {
  rule : Rule.t;
  file : string option;
  loc : Raw.loc;
  message : string;
  related : string list;
}

let make ?(file = None) ?(loc = Raw.no_loc) ?(related = []) rule message =
  { rule; file; loc; message; related }

let compare a b =
  let c = Stdlib.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.loc.line b.loc.line in
    if c <> 0 then c
    else
      let c = Int.compare a.loc.col b.loc.col in
      if c <> 0 then c else String.compare a.rule.id b.rule.id

let to_diag t =
  Diag.Lint_error
    { rule = t.rule.id; file = t.file; line = t.loc.line; msg = t.message }

let worst findings =
  List.fold_left
    (fun acc f ->
      match acc with
      | None -> Some f.rule.severity
      | Some s ->
        if Rule.severity_rank f.rule.severity > Rule.severity_rank s then
          Some f.rule.severity
        else acc)
    None findings

let exceeds ~fail_on findings =
  match worst findings with
  | None -> false
  | Some s -> Rule.severity_rank s >= Rule.severity_rank fail_on
