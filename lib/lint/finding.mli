(** A single diagnostic produced by {!Lint} or {!Audit}. *)

type t = {
  rule : Rule.t;
  file : string option;
  loc : Minflo_netlist.Raw.loc;  (** {!Minflo_netlist.Raw.no_loc} if unknown *)
  message : string;
  related : string list;
      (** the signals/gates involved — e.g. every member of a reported
          cycle — so callers can act on them without parsing [message] *)
}

val make :
  ?file:string option ->
  ?loc:Minflo_netlist.Raw.loc ->
  ?related:string list ->
  Rule.t ->
  string ->
  t

val compare : t -> t -> int
(** Stable report order: file, then line, then column, then rule id. *)

val to_diag : t -> Minflo_robust.Diag.error
(** As a typed [Lint_error] for the existing error/exit-code machinery. *)

val worst : t list -> Rule.severity option
(** Highest severity present, [None] on an empty list. *)

val exceeds : fail_on:Rule.severity -> t list -> bool
(** Whether any finding is at or above the threshold. *)
