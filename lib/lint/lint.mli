(** Multi-pass static analysis of raw (pre-elaboration) netlists.

    Runs on {!Minflo_netlist.Raw.t} — the form both parsers produce before
    name resolution — because the defects worth reporting (combinational
    cycles, multi-driven nets, undriven signals) cannot exist in an
    elaborated {!Minflo_netlist.Netlist.t}, which is a DAG by construction.
    Generated circuits can be linted through
    {!Minflo_netlist.Raw.of_netlist}.

    Passes and their rules:
    - MF001 combinational cycles (Tarjan SCC over the signal graph; each
      finding names every member of the cycle)
    - MF002 multi-driven nets, MF003 undriven nets, MF006 duplicate input
      declarations
    - MF004 dangling primary inputs
    - MF005 dead gates (no primary output reachable)
    - MF007 fanout bound (opt-in via {!config})
    - MF008 technology coverage (gate arity vs. {!Minflo_tech.Tech.t}
      [max_stack])
    - MF009 empty interface, MF010 gate arity
    - MF204 technology-model monotonicity ({!Bounds.check_tech}, run
      whenever a technology is configured)

    The target-dependent interval-bound rules (MF201–MF203) need a delay
    target and an elaborated model, so they live in {!Bounds.check} and are
    wired in by the CLI, the server admission gate and the batch
    preflight rather than here. *)

type config = {
  fanout_bound : int option;
      (** warn (MF007) when a signal's gate-fanin count exceeds this;
          [None] disables the pass *)
  tech : Minflo_tech.Tech.t option;
      (** technology for the MF008 coverage pass; [None] disables it *)
}

val default_config : config
(** No fanout bound; MF008 against {!Minflo_tech.Tech.default_130nm}. *)

val check : ?config:config -> Minflo_netlist.Raw.t -> Finding.t list
(** All findings, in {!Finding.compare} order. An empty list means the
    netlist is lint-clean. *)

val dead_gates : Minflo_netlist.Raw.t -> string list
(** The output signals of gates from which no primary output is reachable —
    exactly the set MF005 reports, and exactly what
    {!Minflo_netlist.Transform.sweep_dead} removes. *)
