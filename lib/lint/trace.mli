(** Proof-carrying engine traces and their independent auditor (MF21x).

    A trace is newline-delimited JSON describing one MINFLOTRANSIT run:

    - a [header] record (schema version, circuit name, vertex count,
      delay target, size box);
    - a [tilos] record with the seed sizing and its claimed area/delay;
    - one [step] record per {e accepted} D/W iteration — the accepted
      sizes, the claimed area and critical path, the D-phase delay budgets
      the W-phase reports meeting, and (for the exact solvers) the full
      min-cost-flow certificate: the displacement LP's nodes, arcs and
      supplies plus the flow, potentials and objective the engine acted on;
    - a closing [final] record mirroring the run's result.

    The auditor replays the whole file against nothing but the circuit
    model: every claim is recomputed from the recorded sizes, every LP is
    rebuilt from scratch at the preceding sizing via
    {!Minflo_sizing.Dphase.displacement_problem}, and every flow
    certificate goes through the first-principles {!Audit.check}. A single
    tampered field — one arc cost, one flow value, one claimed area —
    surfaces as a typed finding: MF210 structural damage, MF211 claim
    mismatches, MF212 budget violations, MF213 non-monotone progress,
    MF214 final-record infeasibility, MF215 LP-rebuild mismatches, and
    MF101–MF105 for invalid flow certificates.

    Capacities equal to {!Minflo_flow.Mcf.infinite_capacity} are encoded
    as [-1] on the wire: the sentinel survives the float round trip that
    [max_int / 8] would not. *)

val version : int
(** Current schema version, written into (and demanded of) the header. *)

(** {1 Writing} *)

type writer

val create :
  Minflo_robust.Io.sink ->
  Minflo_tech.Delay_model.t ->
  circuit:string ->
  target:float ->
  writer
(** Emits the header immediately. Records are written line-at-a-time
    through the instrumented {!Minflo_robust.Io} layer, so an interrupted
    run leaves a valid (truncated) prefix that the auditor reports as MF210
    rather than garbage, and the [io.*] fault sites apply to every record. *)

val record_tilos : writer -> Minflo_sizing.Tilos.result -> unit

val record_step : writer -> Minflo_sizing.Minflotransit.step -> unit
(** Pass as the engine's [?on_step] hook (partially applied). *)

val record_result : writer -> Minflo_sizing.Minflotransit.result -> unit

val error : writer -> Minflo_robust.Diag.error option
(** The first storage failure any record hit ([None] if all landed). Once
    set, further records are silently skipped: trace emission fails the
    [--trace] flag, never the sizing run it documents — the CLI reports
    this error (and exits nonzero) only after printing the run's results. *)

(** {1 Auditing} *)

val audit : Minflo_tech.Delay_model.t -> target:float -> string -> Finding.t list
(** [audit model ~target content] replays a complete trace (the raw file
    content) and returns every discrepancy. An empty list means the trace
    is machine-checked: the run really did produce a monotone sequence of
    feasible sizings with valid flow certificates, ending in a sizing that
    independently meets (or honestly misses) the target. [target] is the
    deadline the auditor expects; a header targeting anything else is
    rejected as MF210 — auditing someone else's trace proves nothing. *)

val audit_file :
  Minflo_tech.Delay_model.t ->
  target:float ->
  string ->
  (Finding.t list, Minflo_robust.Diag.error) result
(** {!audit} on a file path; an unreadable file is a typed
    {!Minflo_robust.Diag.Io_error}, not an exception. *)
