module Raw = Minflo_netlist.Raw

let pp_finding fmt (f : Finding.t) =
  (match f.file with
  | Some file when f.loc.Raw.line > 0 ->
    if f.loc.Raw.col > 0 then
      Format.fprintf fmt "%s:%d:%d: " file f.loc.Raw.line f.loc.Raw.col
    else Format.fprintf fmt "%s:%d: " file f.loc.Raw.line
  | Some file -> Format.fprintf fmt "%s: " file
  | None when f.loc.Raw.line > 0 -> Format.fprintf fmt "line %d: " f.loc.Raw.line
  | None -> ());
  Format.fprintf fmt "%s %s (%s): %s"
    (Rule.severity_to_string f.rule.severity)
    f.rule.id f.rule.name f.message

let render findings =
  if findings = [] then "no findings\n"
  else begin
    let buf = Buffer.create 1024 in
    let count sev =
      List.length (List.filter (fun (f : Finding.t) -> f.rule.severity = sev) findings)
    in
    List.iter
      (fun f -> Buffer.add_string buf (Format.asprintf "%a\n" pp_finding f))
      findings;
    let errors = count Rule.Error and warnings = count Rule.Warning in
    Buffer.add_string buf
      (Printf.sprintf "%d error(s), %d warning(s), %d finding(s) total\n" errors
         warnings (List.length findings));
    Buffer.contents buf
  end

let exit_code ?(fail_on = Rule.Error) findings =
  if Finding.exceeds ~fail_on findings then 2 else 0
