(** Pre-solve interval bound analysis over the timing DAG (MF20x rules).

    The Elmore decomposition [delay_i = a_self + (b + sum a_ij x_j) / x_i]
    with non-negative coefficients is componentwise monotone: decreasing in
    the gate's own size, increasing in every fanout size. Evaluating it at
    the corners of the size box therefore yields, for every vertex, an
    interval \[[d_lo], [d_hi]\] that contains the vertex delay under {e
    every} feasible sizing. Two forward and two backward topological sweeps
    propagate these to arrival-time, downstream-tail and circuit-delay
    bounds — a few array passes, no LP and no TILOS seed.

    Soundness: for any sizing [x] within bounds, [cp_lo <= CP(x) <= cp_hi].
    So a target below [cp_lo] is statically infeasible (MF201, with a
    witness critical path under best-case delays); a gate whose best-case
    through-path delay already reaches the target has no sizing freedom
    (MF202); a gate whose worst-case through-path delay still clears the
    target is slack-irrelevant and can be frozen at minimum size (MF203).
    The monotonicity itself is checked against the technology by probing
    {!Minflo_tech.Gate_model.of_gate} across arities (MF204). *)

type t = {
  d_lo : float array;    (** per-vertex delay lower bound *)
  d_hi : float array;    (** per-vertex delay upper bound *)
  at_lo : float array;   (** arrival-time lower bound (input convention) *)
  at_hi : float array;   (** arrival-time upper bound *)
  tail_lo : float array; (** longest downstream continuation, lower bound *)
  tail_hi : float array; (** longest downstream continuation, upper bound *)
  cp_lo : float;         (** circuit-delay lower bound over the size box *)
  cp_hi : float;         (** circuit-delay upper bound over the size box *)
}

val compute : Minflo_tech.Delay_model.t -> t
(** Four linear sweeps in topological order. *)

val through_lo : t -> int -> float
(** [at_lo + d_lo + tail_lo]: lower bound on the longest path through the
    vertex, over all feasible sizings. *)

val through_hi : t -> int -> float

val witness_path : Minflo_tech.Delay_model.t -> t -> int list
(** The critical path under best-case ([d_lo]) delays, source to finishing
    vertex — the certificate that [cp_lo] is actually achieved by a path. *)

val infeasible : ?eps:float -> t -> target:float -> bool
(** [target < cp_lo * (1 - eps)] — no sizing whatsoever can meet the
    target. [eps] (default 1e-9) absorbs float noise so the check has no
    false positives. *)

val infeasible_target_error :
  ?eps:float ->
  Minflo_tech.Delay_model.t ->
  t ->
  target:float ->
  Minflo_robust.Diag.error option
(** [Some (Infeasible_target ...)] with the witness path's labels when
    {!infeasible}; the typed form the serve admission gate and the batch
    preflight journal. *)

val pinned : ?eps:float -> Minflo_tech.Delay_model.t -> t -> target:float -> int list
(** Vertices with [through_lo >= target * (1 - eps)] (default 1e-6). *)

val irrelevant :
  ?margin:float -> Minflo_tech.Delay_model.t -> t -> target:float -> int list
(** Vertices with [through_hi <= target * (1 - margin)] (default 0.05). *)

type config = {
  eps : float;           (** MF201 tolerance *)
  pin_eps : float;       (** MF202 tolerance *)
  freeze_margin : float; (** MF203 margin *)
}

val default_config : config

val check :
  ?config:config -> Minflo_tech.Delay_model.t -> target:float -> Finding.t list
(** The finding-producing entry point. MF201 short-circuits MF202/MF203 — a
    statically infeasible target makes per-gate freedom analysis vacuous.
    Per-gate findings are capped at 32 per rule with a truncation summary. *)

val check_tech : Minflo_tech.Tech.t -> Finding.t list
(** MF204: probe every gate kind at every arity [1 .. max_stack] and demand
    positive, arity-monotone model entries. *)
