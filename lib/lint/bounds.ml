module Digraph = Minflo_graph.Digraph
module Topo = Minflo_graph.Topo
module Delay_model = Minflo_tech.Delay_model
module Tech = Minflo_tech.Tech
module Gate_model = Minflo_tech.Gate_model
module Gate = Minflo_netlist.Gate
module Diag = Minflo_robust.Diag

(* Per-vertex achievable-delay intervals from the componentwise monotonicity
   of the Elmore decomposition: delay_i = a_ii + (b_i + sum a_ij x_j) / x_i
   with all coefficients non-negative is decreasing in the own size x_i and
   increasing in every fanout size x_j, so over the size box
   [min_size, max_size]^n

     d_lo(i) = a_ii + (b_i + sum a_ij * min) / max   <=  delay_i(x)
     d_hi(i) = a_ii + (b_i + sum a_ij * max) / min   >=  delay_i(x)

   hold for every sizing x. The bounds are a box around the achievable set,
   not the set itself (d_lo(i) wants x_i = max while d_lo(j) for a fanin j
   wants x_i = min), which is exactly what makes them sound one-sided:
   arrival sweeps under d_lo bound every sizing's arrival times from below,
   and under d_hi from above. No LP, no TILOS — two forward and two
   backward array sweeps in topological order. *)

type t = {
  d_lo : float array;
  d_hi : float array;
  at_lo : float array;
  at_hi : float array;
  tail_lo : float array;
  tail_hi : float array;
  cp_lo : float;
  cp_hi : float;
}

let compute (model : Delay_model.t) =
  let g = model.Delay_model.graph in
  let n = Delay_model.num_vertices model in
  let order = Topo.sort g in
  let d_lo = Array.make n 0.0 and d_hi = Array.make n 0.0 in
  let xmin = model.Delay_model.min_size
  and xmax = model.Delay_model.max_size in
  for i = 0 to n - 1 do
    let cmin = ref model.Delay_model.b.(i)
    and cmax = ref model.Delay_model.b.(i) in
    Array.iter
      (fun (_, a) ->
        cmin := !cmin +. (a *. xmin);
        cmax := !cmax +. (a *. xmax))
      model.Delay_model.a_coeffs.(i);
    d_lo.(i) <- model.Delay_model.a_self.(i) +. (!cmin /. xmax);
    d_hi.(i) <- model.Delay_model.a_self.(i) +. (!cmax /. xmin)
  done;
  (* forward: arrival bounds, following the Sta convention (AT at the input
     of a vertex, 0 at sources) *)
  let at_lo = Array.make n 0.0 and at_hi = Array.make n 0.0 in
  Array.iter
    (fun i ->
      let rl = at_lo.(i) +. d_lo.(i) and rh = at_hi.(i) +. d_hi.(i) in
      List.iter
        (fun j ->
          if rl > at_lo.(j) then at_lo.(j) <- rl;
          if rh > at_hi.(j) then at_hi.(j) <- rh)
        (Digraph.succ g i))
    order;
  (* backward: longest downstream continuation after the vertex's own delay
     (0 at every vertex, since the circuit delay is max_i AT(i) + delay(i)) *)
  let tail_lo = Array.make n 0.0 and tail_hi = Array.make n 0.0 in
  for k = n - 1 downto 0 do
    let i = order.(k) in
    List.iter
      (fun j ->
        let tl = d_lo.(j) +. tail_lo.(j) and th = d_hi.(j) +. tail_hi.(j) in
        if tl > tail_lo.(i) then tail_lo.(i) <- tl;
        if th > tail_hi.(i) then tail_hi.(i) <- th)
      (Digraph.succ g i)
  done;
  let cp_lo = ref 0.0 and cp_hi = ref 0.0 in
  for i = 0 to n - 1 do
    if at_lo.(i) +. d_lo.(i) > !cp_lo then cp_lo := at_lo.(i) +. d_lo.(i);
    if at_hi.(i) +. d_hi.(i) > !cp_hi then cp_hi := at_hi.(i) +. d_hi.(i)
  done;
  { d_lo; d_hi; at_lo; at_hi; tail_lo; tail_hi; cp_lo = !cp_lo;
    cp_hi = !cp_hi }

let through_lo t i = t.at_lo.(i) +. t.d_lo.(i) +. t.tail_lo.(i)
let through_hi t i = t.at_hi.(i) +. t.d_hi.(i) +. t.tail_hi.(i)

let witness_path (model : Delay_model.t) t =
  let g = model.Delay_model.graph in
  let finish = ref 0 and best = ref neg_infinity in
  Array.iteri
    (fun i a ->
      let f = a +. t.d_lo.(i) in
      if f > !best then begin
        best := f;
        finish := i
      end)
    t.at_lo;
  let rec back i acc =
    let acc = i :: acc in
    if t.at_lo.(i) = 0.0 && Digraph.in_degree g i = 0 then acc
    else begin
      let pick =
        List.fold_left
          (fun best_j j ->
            match best_j with
            | Some bj
              when t.at_lo.(bj) +. t.d_lo.(bj) >= t.at_lo.(j) +. t.d_lo.(j) ->
              best_j
            | _ -> Some j)
          None (Digraph.pred g i)
      in
      match pick with None -> acc | Some j -> back j acc
    end
  in
  back !finish []

let infeasible ?(eps = 1e-9) t ~target = target < t.cp_lo *. (1.0 -. eps)

let infeasible_target_error ?eps (model : Delay_model.t) t ~target =
  if not (infeasible ?eps t ~target) then None
  else
    Some
      (Diag.Infeasible_target
         { target;
           lower_bound = t.cp_lo;
           witness =
             List.map
               (fun i -> model.Delay_model.labels.(i))
               (witness_path model t) })

let pinned ?(eps = 1e-6) (model : Delay_model.t) t ~target =
  let acc = ref [] in
  for i = Delay_model.num_vertices model - 1 downto 0 do
    if through_lo t i >= target *. (1.0 -. eps) then acc := i :: !acc
  done;
  !acc

let irrelevant ?(margin = 0.05) (model : Delay_model.t) t ~target =
  let acc = ref [] in
  for i = Delay_model.num_vertices model - 1 downto 0 do
    if through_hi t i <= target *. (1.0 -. margin) then acc := i :: !acc
  done;
  !acc

(* ---------- findings ---------- *)

type config = { eps : float; pin_eps : float; freeze_margin : float }

let default_config = { eps = 1e-9; pin_eps = 1e-6; freeze_margin = 0.05 }

let render_path (model : Delay_model.t) path =
  let labels = List.map (fun i -> model.Delay_model.labels.(i)) path in
  let k = List.length labels in
  if k <= 8 then String.concat " -> " labels
  else
    let front = List.filteri (fun i _ -> i < 4) labels in
    let back = List.filteri (fun i _ -> i >= k - 3) labels in
    String.concat " -> " front
    ^ Printf.sprintf " -> ... (%d more) -> " (k - 7)
    ^ String.concat " -> " back

let check ?(config = default_config) (model : Delay_model.t) ~target =
  let t = compute model in
  if infeasible ~eps:config.eps t ~target then begin
    let path = witness_path model t in
    [ Finding.make
        ~related:(List.map (fun i -> model.Delay_model.labels.(i)) path)
        Rule.mf201_infeasible_target
        (Printf.sprintf
           "target %.4g is below the interval-bound delay floor %.4g; even \
            with every gate at its best-case size the path %s takes %.4g"
           target t.cp_lo (render_path model path) t.cp_lo) ]
  end
  else begin
    let label i = model.Delay_model.labels.(i) in
    let pinned_findings =
      List.map
        (fun i ->
          ( Printf.sprintf
              "%s is pinned: its best-case through-path delay %.4g already \
               consumes the target %.4g (slack %.3g)"
              (label i) (through_lo t i) target
              (target -. through_lo t i),
            [ label i ] ))
        (pinned ~eps:config.pin_eps model t ~target)
    in
    let irrelevant_findings =
      List.map
        (fun i ->
          ( Printf.sprintf
              "%s is slack-irrelevant: its worst-case through-path delay \
               %.4g clears the target %.4g by more than %.0f%%; freezing it \
               at minimum size cannot violate timing"
              (label i) (through_hi t i) target
              (100.0 *. config.freeze_margin),
            [ label i ] ))
        (irrelevant ~margin:config.freeze_margin model t ~target)
    in
    Audit.capped Rule.mf202_pinned_gate pinned_findings
    @ Audit.capped Rule.mf203_slack_irrelevant irrelevant_findings
  end

(* ---------- MF204: tech-model monotonicity ---------- *)

let all_kinds =
  [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Not; Gate.Buf; Gate.Xor;
    Gate.Xnor ]

let check_tech (tech : Tech.t) =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun m -> problems := (m, []) :: !problems) fmt in
  List.iter
    (fun kind ->
      let name = Gate.to_string kind in
      let prev = ref None in
      for arity = 1 to max 1 tech.Tech.max_stack do
        let gm = Gate_model.of_gate tech kind ~arity in
        if not (gm.Gate_model.r_drive > 0.0) then
          note "%s/%d: drive resistance %g is not positive" name arity
            gm.Gate_model.r_drive;
        if not (gm.Gate_model.c_input > 0.0) then
          note "%s/%d: input capacitance %g is not positive" name arity
            gm.Gate_model.c_input;
        if gm.Gate_model.c_parasitic < 0.0 then
          note "%s/%d: parasitic capacitance %g is negative" name arity
            gm.Gate_model.c_parasitic;
        if gm.Gate_model.transistors <= 0 then
          note "%s/%d: transistor count %d is not positive" name arity
            gm.Gate_model.transistors;
        (match !prev with
        | Some (p : Gate_model.t) ->
          (* wider series stacks cannot drive harder or shrink: a decreasing
             entry breaks the "upsizing helps, downsizing saves area"
             monotonicity every analysis here leans on *)
          if gm.Gate_model.r_drive < p.Gate_model.r_drive *. (1.0 -. 1e-9) then
            note "%s/%d: drive resistance %g decreases from %g at arity %d"
              name arity gm.Gate_model.r_drive p.Gate_model.r_drive (arity - 1);
          if gm.Gate_model.c_parasitic < p.Gate_model.c_parasitic -. 1e-12 then
            note "%s/%d: parasitic capacitance %g decreases from %g" name
              arity gm.Gate_model.c_parasitic p.Gate_model.c_parasitic;
          if gm.Gate_model.transistors < p.Gate_model.transistors then
            note "%s/%d: transistor count %d decreases from %d" name arity
              gm.Gate_model.transistors p.Gate_model.transistors
        | None -> ());
        prev := Some gm
      done)
    all_kinds;
  Audit.capped Rule.mf204_tech_non_monotone (List.rev !problems)
