module Mcf = Minflo_flow.Mcf

let cap_per_rule = 32

(* collect violations of one rule; past [cap_per_rule] they are summarized
   in a single closing finding so a garbage certificate stays readable *)
let capped rule violations =
  let n = List.length violations in
  if n <= cap_per_rule then
    List.map (fun (msg, related) -> Finding.make ~related rule msg) violations
  else
    let kept = List.filteri (fun i _ -> i < cap_per_rule) violations in
    List.map (fun (msg, related) -> Finding.make ~related rule msg) kept
    @ [ Finding.make rule
          (Printf.sprintf "... and %d more %s violations (truncated)"
             (n - cap_per_rule) rule.Rule.name) ]

let check (p : Mcf.problem) (s : Mcf.solution) =
  if s.status <> Mcf.Optimal then
    [ Finding.make Rule.mf105_not_optimal
        (Printf.sprintf
           "solver status is %s, not Optimal; there is no certificate to audit"
           (match s.status with
           | Mcf.Optimal -> "Optimal"
           | Mcf.Infeasible -> "Infeasible"
           | Mcf.Unbounded -> "Unbounded"
           | Mcf.Aborted -> "Aborted")) ]
  else begin
    let m = Array.length p.arcs in
    let shape_problems = ref [] in
    if Array.length s.flow <> m then
      shape_problems :=
        ( Printf.sprintf "flow array has %d entries for %d arcs"
            (Array.length s.flow) m,
          [] )
        :: !shape_problems;
    if Array.length s.potential <> p.num_nodes then
      shape_problems :=
        ( Printf.sprintf "potential array has %d entries for %d nodes"
            (Array.length s.potential) p.num_nodes,
          [] )
        :: !shape_problems;
    if !shape_problems <> [] then capped Rule.mf101_flow_bounds !shape_problems
    else begin
      (* MF101: arc bounds *)
      let bounds = ref [] in
      Array.iteri
        (fun a (arc : Mcf.arc) ->
          let f = s.flow.(a) in
          if f < 0 || f > arc.cap then
            bounds :=
              ( Printf.sprintf "arc %d (%d -> %d): flow %d outside [0, %d]" a
                  arc.src arc.dst f arc.cap,
                [ Printf.sprintf "arc:%d" a ] )
              :: !bounds)
        p.arcs;
      (* MF102: conservation *)
      let net = Array.make p.num_nodes 0 in
      Array.iteri
        (fun a (arc : Mcf.arc) ->
          net.(arc.src) <- net.(arc.src) + s.flow.(a);
          net.(arc.dst) <- net.(arc.dst) - s.flow.(a))
        p.arcs;
      let conservation = ref [] in
      Array.iteri
        (fun v supply ->
          if net.(v) <> supply then
            conservation :=
              ( Printf.sprintf
                  "node %d: net outflow %d but supply %d (imbalance %d)" v
                  net.(v) supply
                  (net.(v) - supply),
                [ Printf.sprintf "node:%d" v ] )
              :: !conservation)
        p.supply;
      (* MF103: complementary slackness against the returned potentials *)
      let slackness = ref [] in
      Array.iteri
        (fun a (arc : Mcf.arc) ->
          let rc = arc.cost - s.potential.(arc.src) + s.potential.(arc.dst) in
          let f = s.flow.(a) in
          if f < arc.cap && rc < 0 then
            slackness :=
              ( Printf.sprintf
                  "arc %d (%d -> %d): reduced cost %d < 0 with residual \
                   capacity %d"
                  a arc.src arc.dst rc (arc.cap - f),
                [ Printf.sprintf "arc:%d" a ] )
              :: !slackness
          else if f > 0 && rc > 0 then
            slackness :=
              ( Printf.sprintf
                  "arc %d (%d -> %d): reduced cost %d > 0 with positive flow \
                   %d"
                  a arc.src arc.dst rc f,
                [ Printf.sprintf "arc:%d" a ] )
              :: !slackness)
        p.arcs;
      (* MF104: objective *)
      let objective =
        let total = ref 0 in
        Array.iteri (fun a (arc : Mcf.arc) -> total := !total + (arc.cost * s.flow.(a))) p.arcs;
        if !total <> s.objective then
          [ ( Printf.sprintf "reported objective %d but the flow costs %d"
                s.objective !total,
              [] ) ]
        else []
      in
      capped Rule.mf101_flow_bounds (List.rev !bounds)
      @ capped Rule.mf102_conservation (List.rev !conservation)
      @ capped Rule.mf103_slackness (List.rev !slackness)
      @ capped Rule.mf104_objective objective
    end
  end
