(** SARIF 2.1.0 output.

    Renders findings as a Static Analysis Results Interchange Format log —
    the schema GitHub code scanning ingests — with one [run], the full rule
    catalog in [tool.driver.rules], and one [result] per finding with
    [ruleId], [ruleIndex], [level], and a [physicalLocation] when the
    finding has a source position. *)

val render : ?tool_version:string -> Finding.t list -> string
(** A complete SARIF 2.1.0 JSON document (UTF-8, trailing newline). *)
