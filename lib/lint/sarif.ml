module Raw = Minflo_netlist.Raw

(* minimal JSON document builder; enough for SARIF, no external deps *)
type json =
  | Str of string
  | Int of int
  | Arr of json list
  | Obj of (string * json) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_buffer buf json =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent = function
    | Str s -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (escape s))
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          go (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          Buffer.add_string buf (Printf.sprintf "\"%s\": " (escape k));
          go (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'
  in
  go 0 json

let schema_uri =
  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

let rule_index =
  let tbl = Hashtbl.create 32 in
  List.iteri (fun i (r : Rule.t) -> Hashtbl.replace tbl r.id i) Rule.all;
  fun (r : Rule.t) -> Hashtbl.find tbl r.id

let rule_json (r : Rule.t) =
  Obj
    [ ("id", Str r.id);
      ("name", Str r.name);
      ("shortDescription", Obj [ ("text", Str r.summary) ]);
      ( "defaultConfiguration",
        Obj [ ("level", Str (Rule.sarif_level r.severity)) ] ) ]

let result_json (f : Finding.t) =
  let location =
    match f.file with
    | None -> []
    | Some file ->
      let physical =
        ("artifactLocation", Obj [ ("uri", Str file) ])
        ::
        (if f.loc.Raw.line > 0 then
           [ ( "region",
               Obj
                 (("startLine", Int f.loc.Raw.line)
                 ::
                 (if f.loc.Raw.col > 0 then
                    [ ("startColumn", Int f.loc.Raw.col) ]
                  else [])) ) ]
         else [])
      in
      [ ("locations", Arr [ Obj [ ("physicalLocation", Obj physical) ] ]) ]
  in
  let properties =
    if f.related = [] then []
    else
      [ ( "properties",
          Obj [ ("related", Arr (List.map (fun s -> Str s) f.related)) ] ) ]
  in
  Obj
    ([ ("ruleId", Str f.rule.id);
       ("ruleIndex", Int (rule_index f.rule));
       ("level", Str (Rule.sarif_level f.rule.severity));
       ("message", Obj [ ("text", Str f.message) ]) ]
    @ location @ properties)

let render ?(tool_version = "0.1.0") findings =
  let doc =
    Obj
      [ ("$schema", Str schema_uri);
        ("version", Str "2.1.0");
        ( "runs",
          Arr
            [ Obj
                [ ( "tool",
                    Obj
                      [ ( "driver",
                          Obj
                            [ ("name", Str "minflo-lint");
                              ("version", Str tool_version);
                              ( "informationUri",
                                Str "https://github.com/minflo/minflo" );
                              ("rules", Arr (List.map rule_json Rule.all)) ] )
                      ] );
                  ("results", Arr (List.map result_json findings)) ] ] ) ]
  in
  let buf = Buffer.create 4096 in
  to_buffer buf doc;
  Buffer.add_char buf '\n';
  Buffer.contents buf
