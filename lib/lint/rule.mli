(** The lint rule catalog.

    Every finding the analyzer ({!Lint}) or the certificate auditor
    ({!Audit}) can produce carries one of these rules. Ids are stable — they
    appear in SARIF output, in [--fail-on] configuration, and in the README
    rule table — so renumbering is a breaking change.

    MF0xx rules are netlist structure; MF1xx rules are flow-certificate
    audits; MF20x rules are interval-bound analysis ({!Bounds}); MF21x
    rules are engine-trace audits ({!Trace}). *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string
(** ["error" | "warning" | "info"]. *)

val severity_of_string : string -> severity option

val severity_rank : severity -> int
(** [Error] = 2, [Warning] = 1, [Info] = 0; higher is worse. *)

val sarif_level : severity -> string
(** SARIF [level] values: ["error" | "warning" | "note"]. *)

type t = {
  id : string;        (** stable, e.g. ["MF001"] *)
  severity : severity;
  name : string;      (** short kebab-case slug, e.g. ["combinational-cycle"] *)
  summary : string;   (** one-line description for the catalog *)
}

val mf000_syntax : t
val mf001_cycle : t
val mf002_multi_driven : t
val mf003_undriven : t
val mf004_dangling_input : t
val mf005_dead_gate : t
val mf006_duplicate_decl : t
val mf007_fanout_bound : t
val mf008_tech_coverage : t
val mf009_empty_interface : t
val mf010_bad_arity : t

val mf101_flow_bounds : t
val mf102_conservation : t
val mf103_slackness : t
val mf104_objective : t
val mf105_not_optimal : t

val mf201_infeasible_target : t
val mf202_pinned_gate : t
val mf203_slack_irrelevant : t
val mf204_tech_non_monotone : t

val mf210_trace_malformed : t
val mf211_trace_claim : t
val mf212_trace_budget : t
val mf213_trace_progress : t
val mf214_trace_final : t
val mf215_trace_lp : t

val all : t list
(** The full catalog, in id order. *)

val find : string -> t option
(** Look a rule up by id (case-sensitive). *)
