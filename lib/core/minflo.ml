(** MINFLOTRANSIT — min-cost-flow based transistor sizing.

    This is the single-module facade over the library stack. A typical
    session:

    {[
      let nl = Minflo.Iscas85.circuit "c432" in
      let model = Minflo.Elmore.of_netlist Minflo.Tech.default_130nm nl in
      let dmin = Minflo.Sweep.dmin model in
      let result = Minflo.Minflotransit.optimize model ~target:(0.5 *. dmin) in
      Printf.printf "area saving over TILOS: %.1f%%\n" result.area_saving_pct
    ]}

    Layers (each also usable as its own library):
    - {!Netlist}, {!Gate}, {!Bench_format}, {!Generators}, {!Iscas85},
      {!Compose}, {!Transform} — gate-level circuits
      ([minflo_netlist]);
    - {!Tech}, {!Gate_model}, {!Elmore}, {!Transistor}, {!Delay_model} —
      electrical models at gate or transistor granularity ([minflo_tech]);
    - {!Sta}, {!Balance} — timing analysis and FSDU delay balancing
      ([minflo_timing]);
    - {!Mcf}, {!Network_simplex}, {!Ssp}, {!Dinic}, {!Diff_lp},
      {!Bellman_ford} — the network-flow substrate ([minflo_flow]);
    - {!Tilos}, {!Wphase}, {!Dphase}, {!Sensitivity}, {!Minflotransit},
      {!Sweep} — the sizing engines ([minflo_sizing]);
    - {!Lint}, {!Bounds}, {!Audit}, {!Trace}, {!Sarif}, {!Lint_report} —
      the static analyzer, interval bound analysis, flow-certificate
      auditor and proof-carrying trace auditor ([minflo_lint]);
    - {!Job}, {!Checkpoint}, {!Journal}, {!Supervisor}, {!Differential},
      {!Batch} — the crash-safe batch runner ([minflo_runner]);
    - {!Serve}, {!Serve_protocol}, {!Serve_transport}, {!Serve_client},
      {!Loadgen}, {!Chaosproxy} — the sizing-as-a-service daemon, its
      retrying clients and the network chaos proxy ([minflo_serve]);
    - {!Fingerprint}, {!Gen_mut}, {!Oracle}, {!Shrink}, {!Corpus},
      {!Campaign} — the differential fuzzing harness ([minflo_fuzz]). *)

(* util *)
module Vec = Minflo_util.Vec
module Heap = Minflo_util.Heap
module Rng = Minflo_util.Rng
module Stats = Minflo_util.Stats
module Table = Minflo_util.Table
module Bitset = Minflo_util.Bitset
module Union_find = Minflo_util.Union_find

(* resilience: structured diagnostics, run budgets, solver fallback,
   post-phase invariant checks, deterministic fault injection *)
module Diag = Minflo_robust.Diag
module Budget = Minflo_robust.Budget
module Fallback = Minflo_robust.Fallback
module Invariants = Minflo_robust.Check
module Fault = Minflo_robust.Fault
module Io = Minflo_robust.Io
module Torture = Minflo_robust.Torture
module Perf = Minflo_robust.Perf

(* graph *)
module Digraph = Minflo_graph.Digraph
module Topo = Minflo_graph.Topo
module Traverse = Minflo_graph.Traverse
module Dot = Minflo_graph.Dot

(* flow *)
module Mcf = Minflo_flow.Mcf
module Network_simplex = Minflo_flow.Network_simplex
module Ssp = Minflo_flow.Ssp
module Cost_scaling = Minflo_flow.Cost_scaling
module Dinic = Minflo_flow.Dinic
module Bellman_ford = Minflo_flow.Bellman_ford
module Diff_lp = Minflo_flow.Diff_lp

(* netlist *)
module Gate = Minflo_netlist.Gate
module Netlist = Minflo_netlist.Netlist
module Raw = Minflo_netlist.Raw
module Bench_format = Minflo_netlist.Bench_format
module Verilog_format = Minflo_netlist.Verilog_format
module Generators = Minflo_netlist.Generators
module Compose = Minflo_netlist.Compose
module Transform = Minflo_netlist.Transform
module Iscas85 = Minflo_netlist.Iscas85

(* bdd *)
module Bdd = Minflo_bdd.Bdd
module Check = Minflo_bdd.Check

(* aig *)
module Aig = Minflo_aig.Aig

(* sat *)
module Sat = Minflo_sat.Sat
module Cnf = Minflo_sat.Cnf

(* tech *)
module Tech = Minflo_tech.Tech
module Gate_model = Minflo_tech.Gate_model
module Liberty = Minflo_tech.Liberty
module Delay_model = Minflo_tech.Delay_model
module Elmore = Minflo_tech.Elmore
module Transistor = Minflo_tech.Transistor
module Model_cache = Minflo_tech.Model_cache

(* timing *)
module Arena = Minflo_timing.Arena
module Sta = Minflo_timing.Sta
module Incremental = Minflo_timing.Incremental
module Balance = Minflo_timing.Balance

(* power estimation (the low-power motivation of [13]) *)
module Activity = Minflo_power.Activity
module Power = Minflo_power.Power

(* interconnect buffering (the physical counterpart of [13]) *)
module Van_ginneken = Minflo_buffering.Van_ginneken

(* retiming (the D-phase machinery's original application) *)
module Retiming = Minflo_retiming.Retiming

(* sizing *)
module Tilos = Minflo_sizing.Tilos
module Wphase = Minflo_sizing.Wphase
module Dphase = Minflo_sizing.Dphase
module Sensitivity = Minflo_sizing.Sensitivity
module Lagrangian = Minflo_sizing.Lagrangian
module Discrete = Minflo_sizing.Discrete
module Optimality = Minflo_sizing.Optimality
module Minflotransit = Minflo_sizing.Minflotransit
module Sweep = Minflo_sizing.Sweep

(* static analysis: netlist linter, interval bound analysis,
   flow-certificate auditor and proof-carrying trace auditor *)
module Lint_rule = Minflo_lint.Rule
module Lint_finding = Minflo_lint.Finding
module Lint = Minflo_lint.Lint
module Bounds = Minflo_lint.Bounds
module Audit = Minflo_lint.Audit
module Trace = Minflo_lint.Trace
module Sarif = Minflo_lint.Sarif
module Lint_report = Minflo_lint.Report

(* batch runner: crash-safe checkpoint/resume, per-job process isolation,
   cross-solver differential verification *)
module Job = Minflo_runner.Job
module Checkpoint = Minflo_runner.Checkpoint
module Journal = Minflo_runner.Journal
module Supervisor = Minflo_runner.Supervisor
module Differential = Minflo_runner.Differential
module Batch = Minflo_runner.Batch
module Benchmarks = Minflo_runner.Benchmarks

(* sizing-as-a-service daemon: admission control, crash recovery,
   graceful drain, health probes over unix sockets and TCP, retrying
   clients, byte-budgeted result cache, network chaos proxy *)
module Serve_json = Minflo_serve.Json
module Serve_protocol = Minflo_serve.Protocol
module Serve = Minflo_serve.Server
module Serve_transport = Minflo_serve.Transport
module Serve_client = Minflo_serve.Client
module Serve_result_cache = Minflo_serve.Result_cache
module Loadgen = Minflo_serve.Loadgen
module Chaosproxy = Minflo_serve.Chaosproxy

(* differential fuzzing harness: seeded campaigns, failure fingerprints,
   delta-debugging shrinker, deterministic replay corpus *)
module Mutate = Minflo_netlist.Mutate
module Fingerprint = Minflo_fuzz.Fingerprint
module Gen_mut = Minflo_fuzz.Gen_mut
module Oracle = Minflo_fuzz.Oracle
module Shrink = Minflo_fuzz.Shrink
module Corpus = Minflo_fuzz.Corpus
module Campaign = Minflo_fuzz.Campaign
