module Vec = Minflo_util.Vec

type node = int

type edge = { esrc : int; edst : int; mutable regs : int }

type t = {
  gname : string;
  delays : float Vec.t;
  names : string Vec.t;
  edges : edge Vec.t;
}

let create ?(name = "seq") () =
  { gname = name;
    delays = Vec.create ~dummy:0.0 ();
    names = Vec.create ~dummy:"" ();
    edges = Vec.create ~dummy:{ esrc = 0; edst = 0; regs = 0 } () }

let add_node t ?(delay = 1.0) name =
  if delay < 0.0 then invalid_arg "Retiming.add_node: negative delay";
  let id = Vec.push t.delays delay in
  ignore (Vec.push t.names name);
  id

let add_edge t u v ~registers =
  if registers < 0 then invalid_arg "Retiming.add_edge: negative registers";
  let n = Vec.length t.delays in
  if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Retiming.add_edge: bad node";
  ignore (Vec.push t.edges { esrc = u; edst = v; regs = registers })

let node_count t = Vec.length t.delays
let edge_count t = Vec.length t.edges

let total_registers t = Vec.fold (fun acc e -> acc + e.regs) 0 t.edges

let delay t v = Vec.get t.delays v

(* longest register-free combinational path; raises if the zero-register
   subgraph is cyclic *)
let clock_period_opt t =
  let n = node_count t in
  let g = Minflo_graph.Digraph.create ~nodes_hint:n () in
  if n > 0 then ignore (Minflo_graph.Digraph.add_nodes g n);
  Vec.iter
    (fun e -> if e.regs = 0 then ignore (Minflo_graph.Digraph.add_edge g e.esrc e.edst))
    t.edges;
  match Minflo_graph.Topo.sort_opt g with
  | None -> None
  | Some _ ->
    let dist = Minflo_graph.Topo.longest_path_to g ~weight:(delay t) in
    Some (Array.fold_left max 0.0 dist)

let validate t =
  match clock_period_opt t with
  | None -> invalid_arg "Retiming.validate: a cycle carries no register"
  | Some _ -> ()

let clock_period t =
  match clock_period_opt t with
  | Some p -> p
  | None -> invalid_arg "Retiming.clock_period: a cycle carries no register"

(* W(u,v): minimum registers over u->v paths; D(u,v): maximum total delay
   over minimum-register u->v paths (Leiserson-Saxe, computed by
   Floyd-Warshall over the lexicographic weight (w, -d)). *)
let wd_matrices t =
  let n = node_count t in
  let inf = max_int / 4 in
  let w = Array.make_matrix n n inf in
  let d = Array.make_matrix n n neg_infinity in
  for v = 0 to n - 1 do
    w.(v).(v) <- 0;
    d.(v).(v) <- delay t v
  done;
  Vec.iter
    (fun e ->
      (* weight of an edge for the pair metric: registers; delay of the
         path collects vertex delays *)
      let cand_w = e.regs and cand_d = delay t e.esrc +. delay t e.edst in
      if e.esrc <> e.edst then begin
        if cand_w < w.(e.esrc).(e.edst)
           || (cand_w = w.(e.esrc).(e.edst) && cand_d > d.(e.esrc).(e.edst))
        then begin
          w.(e.esrc).(e.edst) <- cand_w;
          d.(e.esrc).(e.edst) <- cand_d
        end
      end)
    t.edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if w.(i).(k) < inf then
        for j = 0 to n - 1 do
          if w.(k).(j) < inf then begin
            let nw = w.(i).(k) + w.(k).(j) in
            (* vertex k counted once *)
            let nd = d.(i).(k) +. d.(k).(j) -. delay t k in
            if nw < w.(i).(j) || (nw = w.(i).(j) && nd > d.(i).(j)) then begin
              w.(i).(j) <- nw;
              d.(i).(j) <- nd
            end
          end
        done
    done
  done;
  (w, d)

(* difference constraints for a target period; [strict] pairs come from
   D(u,v) > period *)
let constraints t (w, d) ~period =
  let n = node_count t in
  let cons = ref [] in
  (* legality: r(u) - r(v) <= w(e) *)
  Vec.iter (fun e -> cons := (e.esrc, e.edst, e.regs) :: !cons) t.edges;
  let inf = max_int / 4 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if w.(u).(v) < inf && d.(u).(v) > period +. 1e-9 then
        cons := (u, v, w.(u).(v) - 1) :: !cons
    done
  done;
  !cons

let solve_constraints n cons =
  (* feasible assignment via Bellman-Ford: r(u) - r(v) <= c becomes an arc
     v -> u of weight c; distances from a virtual all-source give r *)
  let arcs = Array.of_list cons in
  let g =
    { Minflo_flow.Bellman_ford.num_nodes = n;
      arc_src = Array.map (fun (_, v, _) -> v) arcs;
      arc_dst = Array.map (fun (u, _, _) -> u) arcs;
      arc_weight = Array.map (fun (_, _, c) -> c) arcs }
  in
  match Minflo_flow.Bellman_ford.run_all g with
  | Distances dist -> Ok (Array.map (fun x -> if x >= Minflo_flow.Bellman_ford.unreachable then 0 else x) dist)
  | Negative_cycle _ -> Error "period infeasible: negative constraint cycle"

let feasible t ~period =
  let wd = wd_matrices t in
  match solve_constraints (node_count t) (constraints t wd ~period) with
  | Ok _ -> true
  | Error _ -> false

let retime t ~period =
  let wd = wd_matrices t in
  solve_constraints (node_count t) (constraints t wd ~period)

let min_registers t ~period =
  let wd = wd_matrices t in
  let cons = constraints t wd ~period in
  (* minimize sum_e (w(e) + r(dst) - r(src))  =  const + sum_v r(v) *
     (indeg(v) - outdeg(v)): a Diff_lp with the MAXIMIZATION objective
     negated *)
  let lp = Minflo_flow.Diff_lp.create () in
  let n = node_count t in
  let vars = Array.init n (fun _ -> Minflo_flow.Diff_lp.var lp) in
  List.iter (fun (u, v, c) -> Minflo_flow.Diff_lp.add_le lp vars.(u) vars.(v) c) cons;
  let coeff = Array.make n 0 in
  Vec.iter
    (fun e ->
      coeff.(e.edst) <- coeff.(e.edst) + 1;
      coeff.(e.esrc) <- coeff.(e.esrc) - 1)
    t.edges;
  Array.iteri
    (fun v c -> if c <> 0 then Minflo_flow.Diff_lp.add_objective lp vars.(v) (-c))
    coeff;
  match Minflo_flow.Diff_lp.solve lp with
  | Solution { values; _ } -> Ok values
  | Infeasible_lp -> Error "period infeasible"
  | Unbounded_lp -> Error "register objective unbounded (graph not strongly constrained)"
  | Aborted_lp -> Error "retiming LP aborted (run budget exhausted)"

let apply t r =
  if Array.length r <> node_count t then invalid_arg "Retiming.apply: wrong r length";
  let out = create ~name:t.gname () in
  Vec.iteri (fun v d -> ignore (add_node out ~delay:d (Vec.get t.names v))) t.delays;
  Vec.iter
    (fun e ->
      let regs = e.regs + r.(e.edst) - r.(e.esrc) in
      if regs < 0 then
        invalid_arg
          (Printf.sprintf "Retiming.apply: edge %d->%d would carry %d registers"
             e.esrc e.edst regs);
      add_edge out e.esrc e.edst ~registers:regs)
    t.edges;
  out

let min_period ?(epsilon = 1e-6) t =
  validate t;
  (* candidate periods are entries of D; binary search over the sorted
     distinct values *)
  let _, d = wd_matrices t in
  let n = node_count t in
  let values = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if d.(u).(v) > neg_infinity then values := d.(u).(v) :: !values
    done
  done;
  let sorted = List.sort_uniq compare !values in
  let arr = Array.of_list sorted in
  let lo = ref 0 and hi = ref (Array.length arr - 1) in
  (* the largest D is always feasible *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if feasible t ~period:arr.(mid) then hi := mid else lo := mid + 1
  done;
  ignore epsilon;
  arr.(!lo)
