(** Process-wide cache of Elmore delay models, keyed by circuit content.

    Building a {!Delay_model.t} walks the whole netlist and allocates the
    coefficient tables; the bench harness, the batch runner's pre-flight and
    the parameter sweep all repeatedly build models for the {e same}
    circuits. This cache shares one build per (technology, circuit) pair.

    The key is content-based — FNV-1a 64 over the canonical [.bench]
    rendering, the same hash the batch checkpoints use to bind a checkpoint
    to its circuit — so two structurally identical netlists loaded through
    different paths share an entry, and any structural edit misses. *)

val fnv1a64 : string -> int64
(** FNV-1a 64-bit. Stable across processes (unlike [Hashtbl.hash] on boxed
    data); the hash used by batch checkpoints and this cache. *)

val hash_netlist : Minflo_netlist.Netlist.t -> int64
(** [fnv1a64] of the canonical [.bench] rendering. *)

val model : ?tech:Tech.t -> Minflo_netlist.Netlist.t -> Delay_model.t
(** The Elmore model of [nl] under [tech] (default {!Tech.default_130nm}),
    built on first request and shared afterwards. The returned model is
    shared mutable-free data — safe to use from any number of readers. *)

val clear : unit -> unit
(** Drop every cached model (tests; memory-sensitive long runs). *)

val stats : unit -> int * int
(** [(hits, misses)] since start / last {!clear}. *)
