let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let hash_netlist nl = fnv1a64 (Minflo_netlist.Bench_format.to_string nl)

let table : (string * int64, Delay_model.t) Hashtbl.t = Hashtbl.create 16
let hits = ref 0
let misses = ref 0

let model ?(tech = Tech.default_130nm) nl =
  let key = (tech.Tech.name, hash_netlist nl) in
  match Hashtbl.find_opt table key with
  | Some m ->
    incr hits;
    Minflo_robust.Perf.tick_cache_hit ();
    m
  | None ->
    incr misses;
    Minflo_robust.Perf.tick_cache_miss ();
    let m = Elmore.of_netlist tech nl in
    Hashtbl.add table key m;
    m

let clear () =
  Hashtbl.reset table;
  hits := 0;
  misses := 0

let stats () = (!hits, !misses)
