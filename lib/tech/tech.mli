(** Technology parameters.

    The paper simulates with 0.13 um parameters from an SRC report we cannot
    redistribute; {!default_130nm} carries representative unit-transistor
    values instead. Only the products R*C enter the Elmore model, so the
    area/delay trade-off *shape* — everything Table 1 and Figure 7 compare —
    is invariant to the absolute calibration (see DESIGN.md).

    Conventions: transistor sizes are multiples of the minimum channel
    width; resistances are for a unit-width device and scale as [r / x];
    capacitances are per unit width and scale as [c * x]. *)

type t = {
  name : string;
  r_n : float;      (** unit NMOS on-resistance (ohm) *)
  r_p : float;      (** unit PMOS on-resistance (ohm) *)
  c_gate : float;   (** gate capacitance per unit width (fF) *)
  c_drain : float;  (** drain/source junction capacitance per unit width (fF) *)
  c_wire : float;   (** wire capacitance charged per fanout branch (fF) *)
  c_load : float;   (** fixed capacitive load on each primary output (fF) *)
  p_ratio : float;  (** PMOS/NMOS width ratio used inside gates *)
  r_wire : float;
      (** resistance of a minimum-width wire segment (one per driven pin);
          widening a wire by [x] divides this and multiplies [c_wire]. *)
  wire_area : float;
      (** area cost per unit of wire width per driven pin (for the
          simultaneous wire-sizing mode of Section 2.1). *)
  min_size : float;
  max_size : float;
  max_stack : int;
      (** widest series transistor stack the gate model will realize; a
          NAND/NOR/AND/OR whose arity exceeds it has no cell in this
          technology (linter rule MF008). *)
}

val default_130nm : t

val scaled : ?r:float -> ?c:float -> t -> t
(** Scale resistances by [r] and capacitances by [c] (ablation studies). *)
