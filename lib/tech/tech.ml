type t = {
  name : string;
  r_n : float;
  r_p : float;
  c_gate : float;
  c_drain : float;
  c_wire : float;
  c_load : float;
  p_ratio : float;
  r_wire : float;
  wire_area : float;
  min_size : float;
  max_size : float;
  max_stack : int;
}

(* Representative 0.13 um-class values: a minimum NMOS around 8.5 kohm, PMOS
   roughly 2x weaker, ~1.5 fF/um of gate, junctions a bit under half the
   gate cap, short local wires, and output pads presenting a few gate-loads. *)
let default_130nm =
  { name = "generic-130nm";
    r_n = 8500.0;
    r_p = 17000.0;
    c_gate = 1.2;
    c_drain = 0.6;
    c_wire = 9.0;
    c_load = 40.0;
    p_ratio = 2.0;
    r_wire = 400.0;
    wire_area = 0.3;
    min_size = 1.0;
    max_size = 1024.0;
    max_stack = 32 }

let scaled ?(r = 1.0) ?(c = 1.0) t =
  { t with
    name = Printf.sprintf "%s-r%.2f-c%.2f" t.name r c;
    r_n = t.r_n *. r;
    r_p = t.r_p *. r;
    c_gate = t.c_gate *. c;
    c_drain = t.c_drain *. c;
    c_wire = t.c_wire *. c;
    c_load = t.c_load *. c;
    r_wire = t.r_wire *. r }
