type mode = Clean | Torn

let mode_to_string = function Clean -> "clean" | Torn -> "torn"

type outcome =
  | Crashed
  | Crash_swallowed
  | Never_fired
  | Errored of string

type sim = {
  sim_boundary : int;
  sim_mode : mode;
  sim_outcome : outcome;
  sim_violations : string list;
}

type report = { total_boundaries : int; sims : sim list }

let crash_points r =
  List.length
    (List.filter
       (fun s ->
         match s.sim_outcome with
         | Crashed | Crash_swallowed -> true
         | Never_fired | Errored _ -> false)
       r.sims)

let violations r =
  List.concat_map (fun s -> List.map (fun v -> (s, v)) s.sim_violations) r.sims

(* Child exit-code protocol: the parent cannot see the child's exception,
   only how it died, so the wrapper encodes the interesting cases. *)
let exit_crashed = 77
let exit_swallowed = 78
let exit_errored = 76

let rec waitpid_retry pid =
  try Unix.waitpid [] pid
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let silence_child () =
  match Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | null ->
    (try Unix.dup2 null Unix.stdout with Unix.Unix_error _ -> ());
    (try Unix.dup2 null Unix.stderr with Unix.Unix_error _ -> ());
    (try Unix.close null with Unix.Unix_error _ -> ())

let child_body ~seed ~quiet ~boundary ~mode workload =
  if quiet then silence_child ();
  Io.reset ();
  let plan = Fault.create ~seed () in
  let action =
    match mode with
    | Clean -> Fault.Fail (Diag.Fault_injected { site = "io.crash-after-write" })
    | Torn -> Fault.Perturb 0.5
  in
  Fault.arm plan ~site:"io.crash-after-write" ~after:(boundary - 1) ~count:1
    action;
  Io.set_fault (Some plan);
  let code =
    match workload () with
    | () -> if Io.crashed () then exit_swallowed else 0
    | exception Io.Simulated_crash _ -> exit_crashed
    | exception exn ->
      if Io.crashed () then exit_swallowed
      else begin
        prerr_endline (Printexc.to_string exn);
        exit_errored
      end
  in
  Unix._exit code

let classify status =
  match status with
  | Unix.WEXITED c when c = exit_crashed -> Crashed
  | Unix.WEXITED c when c = exit_swallowed -> Crash_swallowed
  | Unix.WEXITED 0 -> Never_fired
  | Unix.WEXITED c -> Errored (Printf.sprintf "child exited %d" c)
  | Unix.WSIGNALED s -> Errored (Printf.sprintf "child killed by signal %d" s)
  | Unix.WSTOPPED s -> Errored (Printf.sprintf "child stopped by signal %d" s)

let select_boundaries ~total ~modes ~max_sims =
  let all = List.init total (fun i -> i + 1) in
  match max_sims with
  | None -> all
  | Some cap ->
    let per_mode = max 1 (cap / max 1 (List.length modes)) in
    if total <= per_mode then all
    else begin
      (* stride evenly so early (journal-open, first appends) and late
         (final checkpoint, seals) boundaries are both covered. *)
      let stride = float_of_int total /. float_of_int per_mode in
      List.init per_mode (fun i ->
          min total (1 + int_of_float (float_of_int i *. stride)))
      |> List.sort_uniq compare
    end

let run ?(seed = 0) ?(modes = [ Clean; Torn ]) ?max_sims ?(quiet_child = true)
    ?progress ~setup ~workload ~verify () =
  (* phase 1: count the workload's write boundaries, fault-free *)
  Io.set_fault None;
  Io.reset ();
  setup ();
  (match workload () with
  | () -> ()
  | exception Diag.Error_exn e -> Diag.fail e
  | exception exn ->
    Diag.fail
      (Diag.Internal
         (Printf.sprintf "torture: fault-free workload failed: %s"
            (Printexc.to_string exn))));
  let total = Io.boundaries () in
  if total = 0 then
    Error (Diag.Internal "torture: workload crossed no write boundaries")
  else begin
    let ks = select_boundaries ~total ~modes ~max_sims in
    let sims_planned = List.length ks * List.length modes in
    let done_ = ref 0 in
    let sims =
      List.concat_map
        (fun k ->
          List.map
            (fun m ->
              setup ();
              flush stdout;
              flush stderr;
              let sim_outcome =
                match Unix.fork () with
                | 0 -> child_body ~seed ~quiet:quiet_child ~boundary:k ~mode:m workload
                | pid ->
                  let _, status = waitpid_retry pid in
                  classify status
              in
              Io.set_fault None;
              Io.reset ();
              let harness_violations =
                match sim_outcome with
                | Crashed | Crash_swallowed -> []
                | Never_fired ->
                  [ Printf.sprintf
                      "boundary %d never reached on replay (workload \
                       non-deterministic?)"
                      k ]
                | Errored msg ->
                  [ Printf.sprintf "child died outside the crash protocol: %s" msg ]
              in
              let sim_violations =
                harness_violations @ verify ~boundary:k ~mode:m
              in
              incr done_;
              (match progress with
              | Some f -> f !done_ sims_planned
              | None -> ());
              { sim_boundary = k; sim_mode = m; sim_outcome; sim_violations })
            modes)
        ks
    in
    Ok { total_boundaries = total; sims }
  end

let run ?seed ?modes ?max_sims ?quiet_child ?progress ~setup ~workload ~verify
    () =
  try run ?seed ?modes ?max_sims ?quiet_child ?progress ~setup ~workload
      ~verify ()
  with Diag.Error_exn e -> Error e
