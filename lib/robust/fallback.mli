(** Solver fallback chains.

    A rung is a named attempt at producing a value; {!run} tries the rungs in
    order and returns the first success together with which rung produced it
    and the typed failures of every rung tried before it. Only failures that
    a *different* solver could plausibly avoid are retried (divergence,
    numeric trouble, injected faults); structural failures — an infeasible
    budget, an exhausted run budget, a bug — abort the chain immediately so
    they are never masked by a weaker solver. *)

type 'a rung = { name : string; attempt : unit -> ('a, Diag.error) result }

type 'a success = {
  value : 'a;
  rung : string;  (** name of the rung that succeeded. *)
  failures : (string * Diag.error) list;
      (** rungs tried and failed before it, in order. *)
}

val retryable : Diag.error -> bool
(** [Solver_diverged], [Numeric] and [Fault_injected] are retryable;
    everything else aborts the chain. *)

val run :
  ?log:Diag.log ->
  ?retry_on:(Diag.error -> bool) ->
  'a rung list ->
  ('a success, Diag.error) result
(** [Error] carries the last failure when every rung fails (or the first
    non-retryable one). Each failed rung is logged at [Warning] severity when
    a [log] is supplied. @raise Invalid_argument on an empty chain. *)
