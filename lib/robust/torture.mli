(** Crash-point torture harness.

    Enumerates every write boundary a workload crosses (counted by the
    instrumented {!Io} layer), then replays the workload once per boundary
    with a simulated process death pinned exactly there — in {e clean} mode
    (the write at the boundary completes, then the process dies) and in
    {e torn} mode (only a prefix of the write lands) — and asks the caller's
    [verify] to check the recovery invariants against the frozen on-disk
    state: the journal seals or truncates to a valid prefix, a resumed run
    is bit-identical to an uninterrupted one, surviving traces still audit
    clean, and no stale [.tmp] file is ever loaded.

    Each simulation runs the workload in a {e forked child}: the crash
    ({!Io.Simulated_crash}) unwinds — or is swallowed by a catch-all, in
    which case the frozen {!Io} layer keeps the disk state pinned anyway —
    and the child exits with a code classifying what happened, so leaked
    fds, advisory journal locks and half-unwound state die with the process
    instead of polluting the next simulation. [setup] and [verify] run in
    the parent, fault-free.

    The harness is workload-agnostic (this library sits below the runner and
    serve layers); the concrete batch+trace+serve-journal workload lives in
    the [minflo torture] subcommand. *)

type mode = Clean | Torn

val mode_to_string : mode -> string

type outcome =
  | Crashed  (** the child died at the boundary, as scheduled (exit 77). *)
  | Crash_swallowed
      (** a catch-all handler absorbed the crash exception, but the frozen
          {!Io} layer kept the disk state pinned at the boundary (exit 78).
          Recovery invariants are still checked; the swallowing itself is
          reported so over-broad handlers are visible. *)
  | Never_fired
      (** the workload completed without reaching the boundary — only
          possible if the replay diverged from the counted run; always a
          violation. *)
  | Errored of string  (** the child died some other way (exit 76/signal). *)

type sim = {
  sim_boundary : int;  (** 1-based write boundary the crash was pinned to. *)
  sim_mode : mode;
  sim_outcome : outcome;
  sim_violations : string list;
      (** [verify]'s findings for this crash point, plus harness-detected
          divergence ({!Never_fired}, {!Errored}). Empty = invariants held. *)
}

type report = {
  total_boundaries : int;  (** write boundaries in the fault-free run. *)
  sims : sim list;
}

val crash_points : report -> int
(** Simulations where the crash actually took effect ({!Crashed} or
    {!Crash_swallowed}) — the "distinct crash points exercised" count. *)

val violations : report -> (sim * string) list
(** Every violation, flattened, in simulation order. *)

val run :
  ?seed:int ->
  ?modes:mode list ->
  ?max_sims:int ->
  ?quiet_child:bool ->
  ?progress:(int -> int -> unit) ->
  setup:(unit -> unit) ->
  workload:(unit -> unit) ->
  verify:(boundary:int -> mode:mode -> string list) ->
  unit ->
  (report, Diag.error) result
(** [run ~setup ~workload ~verify ()]:

    + [setup ()]; run [workload] once fault-free in-process to count its
      write boundaries (a workload that fails or crosses no boundary is an
      error);
    + for each selected boundary [k] and each mode in [modes] (default
      [[Clean; Torn]]): [setup ()], fork, arm [io.crash-after-write] at
      boundary [k] in the child, run [workload] to its death, then run
      [verify ~boundary:k ~mode] in the parent against the on-disk wreckage.

    [setup] must restore the state directory to the same initial condition
    every time (the boundary numbering relies on the workload being
    deterministic from that state). [max_sims] caps the total number of
    simulations by striding evenly over the boundary range (default: all).
    [quiet_child] (default true) redirects the child's stdout/stderr to
    /dev/null. [progress] is called as [progress done total] after each
    simulation. [seed] seeds each child's fault plan. *)
