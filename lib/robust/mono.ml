external now : unit -> float = "minflo_mono_now"

let elapsed_since t0 = now () -. t0
