module Rng = Minflo_util.Rng

type action =
  | Fail of Diag.error
  | Perturb of float

type armed = {
  action : action;
  mutable skip : int;
  mutable remaining : int;
  prob : float;
  mutable fired : int;
}

type t = { rng : Rng.t; table : (string, armed) Hashtbl.t }

let create ?(seed = 0) () = { rng = Rng.create seed; table = Hashtbl.create 8 }

let arm t ~site ?(count = max_int) ?(prob = 1.0) ?(after = 0) action =
  Hashtbl.replace t.table site
    { action; skip = after; remaining = count; prob; fired = 0 }

let fire t ~site =
  match Hashtbl.find_opt t.table site with
  | None -> None
  | Some a ->
    if a.skip > 0 then begin
      a.skip <- a.skip - 1;
      None
    end
    else if a.remaining <= 0 then None
    else if a.prob < 1.0 && Rng.float t.rng 1.0 >= a.prob then None
    else begin
      a.remaining <- a.remaining - 1;
      a.fired <- a.fired + 1;
      Some a.action
    end

let fired t ~site =
  match Hashtbl.find_opt t.table site with None -> 0 | Some a -> a.fired

let sites t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare

(* The catalog of every instrumented site in the tree. Each entry names a
   [fire] call somewhere in the engine or the audit pipeline; the fuzz
   campaign sweeps this list and the reachability of every entry is
   asserted by the test-suite, so a renamed or removed call site fails a
   test instead of silently orphaning the catalog. *)
let all_points =
  [ "audit.cost-scaling";
    "audit.simplex";
    "audit.ssp";
    "dphase.bellman-ford";
    "dphase.simplex";
    "dphase.ssp";
    "io.crash-after-write";
    "io.eio-read";
    "io.enospc";
    "io.fsync-lost";
    "io.short-write";
    "io.torn-rename";
    "net.accept-drop";
    "net.delayed-response";
    "net.read-stall";
    "net.torn-write";
    "wphase" ]

let is_known_point site = List.mem site all_points
