(** Deterministic performance counters for the flow/sizing hot paths.

    A single ambient set of monotonically increasing counters, ticked from
    the inner loops of the solvers and engines:

    - [pivots]: network-simplex basis exchanges;
    - [relabels]: potential-update rounds (SSP Johnson updates, cost-scaling
      relabels, Bellman-Ford passes);
    - [sweeps]: full forward/backward STA passes over the timing graph;
    - [bumps]: TILOS size bumps;
    - [warm_starts] / [cold_starts]: how often a flow solve could reuse a
      previous basis / had to rebuild it from scratch;
    - [cache_hits] / [cache_misses]: shared-state reuse across requests —
      the {!Minflo_tech.Model_cache} delay-model cache and the serve
      daemon's result cache both tick these;
    - [rejections]: admission-control rejections (bounded-queue overload,
      drain refusals, pre-flight lint gating) by the serve daemon;
    - [evictions]: result-cache entries dropped under the daemon's memory
      byte budget (LRU; the journal still holds every evicted result);
    - [incr_updates]: vertices re-propagated by the incremental timing
      engine's worklist ({!Minflo_timing.Incremental}) — the incremental
      counterpart of a [sweeps] tick, which touches every vertex;
    - [full_sweeps_avoided]: times a full STA pass was skipped because
      incremental propagation settled the change, or an already-computed
      analysis was reused (the D-phase handing its safety-probe STA to the
      FSDU balancer).

    Unlike wall time, every one of these is a pure function of the inputs,
    so two identical runs produce identical counters — the property the
    bench baseline ([BENCH_pr10.json]) and the CI bench-smoke job rely on.
    Wall time is measured separately via {!Mono} and never compared.

    The counters are process-global on purpose: threading a record through
    every solver call would put an argument on the hottest paths for a
    debug-observability feature. Readers that need a per-region view take a
    {!snapshot} before and {!diff} after. *)

type counters = {
  mutable pivots : int;
  mutable relabels : int;
  mutable sweeps : int;
  mutable bumps : int;
  mutable warm_starts : int;
  mutable cold_starts : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable rejections : int;
  mutable evictions : int;
  mutable incr_updates : int;
  mutable full_sweeps_avoided : int;
}

val zero : unit -> counters
(** A fresh all-zero counter record (not the ambient one). *)

val current : counters
(** The ambient process-global counters. Mutated by the [tick_*] family. *)

val reset : unit -> unit
(** Zeroes {!current}. *)

val snapshot : unit -> counters
(** A copy of {!current} at this instant. *)

val diff : counters -> counters -> counters
(** [diff before after] — counters spent between two snapshots. *)

val add : counters -> counters -> counters
val equal : counters -> counters -> bool

val tick_pivot : unit -> unit
val tick_relabel : unit -> unit
val tick_sweep : unit -> unit
val tick_bump : unit -> unit
val tick_warm_start : unit -> unit
val tick_cold_start : unit -> unit
val tick_cache_hit : unit -> unit
val tick_cache_miss : unit -> unit
val tick_rejection : unit -> unit
val tick_eviction : unit -> unit
val tick_incr_update : unit -> unit
val tick_full_sweep_avoided : unit -> unit

val to_fields : counters -> (string * int) list
(** [(name, value)] pairs in a fixed order — the serialization used by the
    journal ([job-perf] events) and the bench JSON. *)

val pp : Format.formatter -> counters -> unit

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f] and returns its result with the elapsed monotonic
    wall time in seconds ({!Mono}). *)
