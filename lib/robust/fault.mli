(** Deterministic fault injection.

    A fault plan is a set of armed sites; the engine asks {!fire} at each
    site it passes (["dphase.simplex"], ["wphase"], …) and reacts to the
    returned action — failing the phase with a typed error, or perturbing a
    solver result so the invariant checks have something to catch. Plans are
    seeded through {!Minflo_util.Rng}, so probabilistic faults replay
    identically from a seed, and tests can prove that every fallback rung and
    budget path is actually exercised.

    A site that was never armed never fires; production runs simply pass no
    plan. *)

type action =
  | Fail of Diag.error  (** the site reports this error instead of running. *)
  | Perturb of float    (** corrupt the site's numeric result by this much. *)

type t

val create : ?seed:int -> unit -> t
(** An empty plan (no armed sites). [seed] drives probabilistic firing;
    default 0. *)

val arm :
  t -> site:string -> ?count:int -> ?prob:float -> ?after:int -> action -> unit
(** Arm [site]. The fault fires at most [count] times (default: every
    visit), each visit independently with probability [prob] (default 1.0,
    drawn from the plan's seeded generator), skipping the first [after]
    visits entirely (default 0; [~after:(k-1) ~count:1] fires exactly at the
    k-th visit — how the torture harness pins a crash to one write
    boundary). Re-arming a site replaces its previous setting. *)

val fire : t -> site:string -> action option
(** Called by the engine at an instrumented site; [Some action] when the
    fault fires now (and consumes one of its [count]). *)

val fired : t -> site:string -> int
(** How many times the site has fired so far — test assertions key on it. *)

val sites : t -> string list
(** Armed sites, sorted. *)

val all_points : string list
(** The catalog of every instrumented injection site in the tree, sorted:
    the D-phase solver rungs (["dphase.simplex"], ["dphase.ssp"],
    ["dphase.bellman-ford"]), the W-phase (["wphase"]), the
    certificate-audit corruption points (["audit.simplex"], ["audit.ssp"],
    ["audit.cost-scaling"]), the network sites the chaos proxy
    interposes between a client and a daemon (["net.accept-drop"],
    ["net.read-stall"], ["net.torn-write"], ["net.delayed-response"]), and
    the storage sites the instrumented {!Io} layer interposes under every
    durable-state writer (["io.enospc"], ["io.eio-read"],
    ["io.short-write"], ["io.fsync-lost"], ["io.torn-rename"], and
    ["io.crash-after-write"], the crash-point the torture harness sweeps).
    [minflo fuzz --list-faults] prints it, the CLI validates every
    [--inject-fault] argument against it, and the fuzz campaign sweeps the
    engine/audit entries. *)

val is_known_point : string -> bool
(** Membership in {!all_points}. *)
