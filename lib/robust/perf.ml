type counters = {
  mutable pivots : int;
  mutable relabels : int;
  mutable sweeps : int;
  mutable bumps : int;
  mutable warm_starts : int;
  mutable cold_starts : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable rejections : int;
  mutable evictions : int;
  mutable incr_updates : int;
  mutable full_sweeps_avoided : int;
}

let zero () =
  { pivots = 0;
    relabels = 0;
    sweeps = 0;
    bumps = 0;
    warm_starts = 0;
    cold_starts = 0;
    cache_hits = 0;
    cache_misses = 0;
    rejections = 0;
    evictions = 0;
    incr_updates = 0;
    full_sweeps_avoided = 0 }

let current = zero ()

let reset () =
  current.pivots <- 0;
  current.relabels <- 0;
  current.sweeps <- 0;
  current.bumps <- 0;
  current.warm_starts <- 0;
  current.cold_starts <- 0;
  current.cache_hits <- 0;
  current.cache_misses <- 0;
  current.rejections <- 0;
  current.evictions <- 0;
  current.incr_updates <- 0;
  current.full_sweeps_avoided <- 0

let snapshot () =
  { pivots = current.pivots;
    relabels = current.relabels;
    sweeps = current.sweeps;
    bumps = current.bumps;
    warm_starts = current.warm_starts;
    cold_starts = current.cold_starts;
    cache_hits = current.cache_hits;
    cache_misses = current.cache_misses;
    rejections = current.rejections;
    evictions = current.evictions;
    incr_updates = current.incr_updates;
    full_sweeps_avoided = current.full_sweeps_avoided }

let diff before after =
  { pivots = after.pivots - before.pivots;
    relabels = after.relabels - before.relabels;
    sweeps = after.sweeps - before.sweeps;
    bumps = after.bumps - before.bumps;
    warm_starts = after.warm_starts - before.warm_starts;
    cold_starts = after.cold_starts - before.cold_starts;
    cache_hits = after.cache_hits - before.cache_hits;
    cache_misses = after.cache_misses - before.cache_misses;
    rejections = after.rejections - before.rejections;
    evictions = after.evictions - before.evictions;
    incr_updates = after.incr_updates - before.incr_updates;
    full_sweeps_avoided = after.full_sweeps_avoided - before.full_sweeps_avoided }

let add a b =
  { pivots = a.pivots + b.pivots;
    relabels = a.relabels + b.relabels;
    sweeps = a.sweeps + b.sweeps;
    bumps = a.bumps + b.bumps;
    warm_starts = a.warm_starts + b.warm_starts;
    cold_starts = a.cold_starts + b.cold_starts;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_misses = a.cache_misses + b.cache_misses;
    rejections = a.rejections + b.rejections;
    evictions = a.evictions + b.evictions;
    incr_updates = a.incr_updates + b.incr_updates;
    full_sweeps_avoided = a.full_sweeps_avoided + b.full_sweeps_avoided }

let equal a b =
  a.pivots = b.pivots && a.relabels = b.relabels && a.sweeps = b.sweeps
  && a.bumps = b.bumps
  && a.warm_starts = b.warm_starts
  && a.cold_starts = b.cold_starts
  && a.cache_hits = b.cache_hits
  && a.cache_misses = b.cache_misses
  && a.rejections = b.rejections
  && a.evictions = b.evictions
  && a.incr_updates = b.incr_updates
  && a.full_sweeps_avoided = b.full_sweeps_avoided

let tick_pivot () = current.pivots <- current.pivots + 1
let tick_relabel () = current.relabels <- current.relabels + 1
let tick_sweep () = current.sweeps <- current.sweeps + 1
let tick_bump () = current.bumps <- current.bumps + 1
let tick_warm_start () = current.warm_starts <- current.warm_starts + 1
let tick_cold_start () = current.cold_starts <- current.cold_starts + 1
let tick_cache_hit () = current.cache_hits <- current.cache_hits + 1
let tick_cache_miss () = current.cache_misses <- current.cache_misses + 1
let tick_rejection () = current.rejections <- current.rejections + 1
let tick_eviction () = current.evictions <- current.evictions + 1
let tick_incr_update () = current.incr_updates <- current.incr_updates + 1

let tick_full_sweep_avoided () =
  current.full_sweeps_avoided <- current.full_sweeps_avoided + 1

let to_fields c =
  [ ("pivots", c.pivots);
    ("relabels", c.relabels);
    ("sweeps", c.sweeps);
    ("bumps", c.bumps);
    ("warm_starts", c.warm_starts);
    ("cold_starts", c.cold_starts);
    ("cache_hits", c.cache_hits);
    ("cache_misses", c.cache_misses);
    ("rejections", c.rejections);
    ("evictions", c.evictions);
    ("incr_updates", c.incr_updates);
    ("full_sweeps_avoided", c.full_sweeps_avoided) ]

let pp fmt c =
  Format.fprintf fmt "@[<h>";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%s=%d" k v)
    (to_fields c);
  Format.fprintf fmt "@]"

let timed f =
  let t0 = Mono.now () in
  let v = f () in
  (v, Mono.now () -. t0)
