exception Simulated_crash of { site : string; boundary : int }

(* The crash must unwind through every best-effort [try … with Sys_error _
   | Unix.Unix_error _ -> ()] guard in the writers, so it is its own
   exception; and because some supervisor paths catch [exn] wholesale, the
   [frozen] flag below keeps the disk state honest even when the exception
   itself is swallowed: once crashed, every instrumented call re-raises. *)

let plan : Fault.t option ref = ref None
let boundary = ref 0
let frozen = ref false

let set_fault p = plan := p
let fault () = !plan
let boundaries () = !boundary
let crashed () = !frozen

let reset () =
  boundary := 0;
  frozen := false

let fire site = match !plan with None -> None | Some f -> Fault.fire f ~site

let crash_check () =
  if !frozen then raise (Simulated_crash { site = "io.crash-after-write"; boundary = !boundary })

(* ---------- EINTR-retrying primitives ---------- *)

let rec read_retry fd buf off len =
  try Unix.read fd buf off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd buf off len

let rec write_retry fd buf off len =
  try Unix.write fd buf off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> write_retry fd buf off len

let rec write_substring_retry fd s off len =
  try Unix.write_substring fd s off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> write_substring_retry fd s off len

let really_write_substring fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + write_substring_retry fd s !off (len - !off)
  done

(* ---------- instrumented operations ---------- *)

let io_error path exn_or_msg =
  Diag.Io_error { file = path; msg = exn_or_msg }

let of_unix_error path op = function
  | Unix.ENOSPC -> Diag.Disk_full { file = path }
  | e -> io_error path (Printf.sprintf "%s: %s" op (Unix.error_message e))

(* Write [sub]-many bytes of [s] (EINTR/short-write looping), typed. *)
let write_prefix fd ~path s sub =
  let off = ref 0 in
  let err = ref None in
  while !err = None && !off < sub do
    match write_substring_retry fd s !off (sub - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error (e, _, _) -> err := Some (of_unix_error path "write" e)
  done;
  match !err with None -> Ok () | Some e -> Error e

let write_all fd ~path s =
  crash_check ();
  incr boundary;
  let len = String.length s in
  match fire "io.crash-after-write" with
  | Some action ->
    let wrote =
      match action with
      | Fault.Fail _ -> len
      | Fault.Perturb frac ->
        let frac = Float.max 0.0 (Float.min 1.0 frac) in
        int_of_float (frac *. float_of_int len)
    in
    ignore (write_prefix fd ~path s wrote);
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    frozen := true;
    raise (Simulated_crash { site = "io.crash-after-write"; boundary = !boundary })
  | None -> (
    match fire "io.enospc" with
    | Some _ -> Error (Diag.Disk_full { file = path })
    | None -> (
      match fire "io.short-write" with
      | Some _ ->
        let wrote = len / 2 in
        (match write_prefix fd ~path s wrote with
        | Ok () ->
          Error
            (io_error path
               (Printf.sprintf "short write (injected): wrote %d of %d bytes"
                  wrote len))
        | Error e -> Error e)
      | None -> write_prefix fd ~path s len))

let fsync fd ~path =
  crash_check ();
  match fire "io.fsync-lost" with
  | Some _ -> Ok () (* claims durability it did not deliver *)
  | None -> (
    try Ok (Unix.fsync fd)
    with Unix.Unix_error (e, _, _) -> Error (of_unix_error path "fsync" e))

let read_file path =
  crash_check ();
  match fire "io.eio-read" with
  | Some _ -> Error (io_error path "read: injected I/O error (EIO)")
  | None -> (
    match Unix.openfile path [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error (e, _, _) -> Error (of_unix_error path "open" e)
    | fd ->
      let buf = Buffer.create 8192 in
      let chunk = Bytes.create 65536 in
      let rec loop () =
        match read_retry fd chunk 0 (Bytes.length chunk) with
        | 0 -> Ok (Buffer.contents buf)
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          loop ()
        | exception Unix.Unix_error (e, _, _) ->
          Error (of_unix_error path "read" e)
      in
      let r = loop () in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      r)

let open_for_write ?(append = false) path =
  let flags =
    [ Unix.O_WRONLY; Unix.O_CREAT; (if append then Unix.O_APPEND else Unix.O_TRUNC) ]
  in
  try Ok (Unix.openfile path flags 0o644)
  with Unix.Unix_error (e, _, _) -> Error (of_unix_error path "open" e)

let write_file path content =
  crash_check ();
  match open_for_write path with
  | Error e -> Error e
  | Ok fd ->
    let r = write_all fd ~path content in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    r

let unlink path =
  try Ok (Unix.unlink path)
  with
  | Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
  | Unix.Unix_error (e, _, _) -> Error (of_unix_error path "unlink" e)

let fsync_dir_best_effort dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let atomic_replace ?(fsync_dir = true) path content =
  crash_check ();
  let tmp = path ^ ".tmp" in
  let cleanup_tmp () = try Unix.unlink tmp with Unix.Unix_error _ -> () in
  match open_for_write tmp with
  | Error e -> Error e
  | Ok fd -> (
    let written =
      match write_all fd ~path:tmp content with
      | Ok () -> fsync fd ~path:tmp
      | Error _ as e -> e
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    match written with
    | Error e ->
      cleanup_tmp ();
      Error e
    | Ok () -> (
      match fire "io.torn-rename" with
      | Some _ ->
        (* the graceful twin of "crashed between write and rename": the
           temp file stays behind for the stale-tmp GC to find. *)
        Error
          (io_error path
             (Printf.sprintf "rename torn (injected): temp file left at %s" tmp))
      | None -> (
        (* the rename is its own crash boundary: Perturb-mode crashes
           before it (tmp orphaned), Fail-mode after it (replace landed,
           directory entry possibly unsynced). *)
        crash_check ();
        incr boundary;
        let renamed_before_crash =
          match fire "io.crash-after-write" with
          | Some (Fault.Fail _) ->
            (try Unix.rename tmp path with Unix.Unix_error _ -> ());
            frozen := true;
            true
          | Some (Fault.Perturb _) ->
            frozen := true;
            true
          | None -> false
        in
        if renamed_before_crash then
          raise
            (Simulated_crash { site = "io.crash-after-write"; boundary = !boundary });
        match Unix.rename tmp path with
        | () ->
          if fsync_dir then fsync_dir_best_effort (Filename.dirname path);
          Ok ()
        | exception Unix.Unix_error (e, _, _) ->
          cleanup_tmp ();
          Error (of_unix_error path "rename" e))))

let sweep_tmp ?(recurse = false) dir =
  let removed = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
      Array.iter
        (fun name ->
          let p = Filename.concat dir name in
          let is_dir = try Sys.is_directory p with Sys_error _ -> false in
          if Filename.check_suffix name ".tmp" && not is_dir then (
            match Unix.unlink p with
            | () -> removed := p :: !removed
            | exception Unix.Unix_error _ -> ())
          else if recurse && is_dir then walk p)
        entries
  in
  (try walk dir with Sys_error _ -> ());
  List.sort compare !removed

(* ---------- line sinks ---------- *)

type sink = { s_path : string; s_fd : Unix.file_descr; mutable s_closed : bool }

let create_sink ?(append = false) path =
  crash_check ();
  match open_for_write ~append path with
  | Error e -> Error e
  | Ok fd -> Ok { s_path = path; s_fd = fd; s_closed = false }

let sink_path s = s.s_path

let sink_write_line s line =
  if s.s_closed then Error (io_error s.s_path "write: sink is closed")
  else write_all s.s_fd ~path:s.s_path (line ^ "\n")

let sink_fsync s =
  if s.s_closed then Error (io_error s.s_path "fsync: sink is closed")
  else fsync s.s_fd ~path:s.s_path

let sink_close s =
  if not s.s_closed then begin
    s.s_closed <- true;
    try Unix.close s.s_fd with Unix.Unix_error _ -> ()
  end
