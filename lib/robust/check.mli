(** Post-phase invariant checking.

    The optimizer's phases come with mathematical guarantees (flow
    conservation and reduced-cost optimality of the MCF solution, FSDU
    non-negativity, the W-phase fixpoint meeting its budgets, sizes finite
    and within bounds). A {!t} accumulates the outcome of asserting each of
    them after the phase that establishes it, without aborting the run:
    failures become data — typed {!Diag.Invariant} errors a caller or the
    [--check] CLI flag can act on.

    {!run} guards the assertion body: an exception inside a check is itself
    recorded as a failed finding, never propagated. *)

type finding = { name : string; ok : bool; detail : string }

type t

val create : unit -> t

val run : t -> string -> (unit -> (unit, string) result) -> unit
(** [run t name body] records a finding named [name]; [Error detail] or any
    exception marks it failed. *)

val record : t -> string -> (unit, string) result -> unit
(** Like {!run} for an already-computed verdict. *)

val findings : t -> finding list
(** In execution order. *)

val ok : t -> bool
(** No failed findings (vacuously true when nothing ran). *)

val failures : t -> finding list

val first_failure : t -> Diag.error option
(** The first failed finding as an [Invariant] error. *)

val to_string : t -> string
(** One line per finding, [ok]/[FAIL] tagged. *)
