module Vec = Minflo_util.Vec

type finding = { name : string; ok : bool; detail : string }

type t = { findings : finding Vec.t }

let dummy = { name = ""; ok = true; detail = "" }

let create () = { findings = Vec.create ~dummy () }

let record t name verdict =
  let f =
    match verdict with
    | Ok () -> { name; ok = true; detail = "" }
    | Error detail -> { name; ok = false; detail }
  in
  ignore (Vec.push t.findings f)

let run t name body =
  let verdict =
    match body () with
    | v -> v
    | exception e -> Error (Printf.sprintf "check raised: %s" (Printexc.to_string e))
  in
  record t name verdict

let findings t = Vec.to_list t.findings

let ok t = not (Vec.exists (fun f -> not f.ok) t.findings)

let failures t = List.filter (fun f -> not f.ok) (findings t)

let first_failure t =
  match failures t with
  | [] -> None
  | f :: _ -> Some (Diag.Invariant { what = f.name; detail = f.detail })

let to_string t =
  findings t
  |> List.map (fun f ->
         if f.ok then Printf.sprintf "  ok   %s" f.name
         else Printf.sprintf "  FAIL %s: %s" f.name f.detail)
  |> String.concat "\n"
