type limits = {
  wall_seconds : float option;
  max_iterations : int option;
  max_pivots : int option;
}

let no_limits = { wall_seconds = None; max_iterations = None; max_pivots = None }

let limits ?wall_seconds ?max_iterations ?max_pivots () =
  { wall_seconds; max_iterations; max_pivots }

type t = {
  limits : limits;
  t0 : float;
  mutable iterations : int;
  mutable pivots : int;
  mutable tripped : Diag.error option;
}

let start limits =
  { limits; t0 = Mono.now (); iterations = 0; pivots = 0; tripped = None }

let resume limits ~elapsed ~iterations ~pivots =
  { limits;
    t0 = Mono.now () -. (max 0.0 elapsed);
    iterations = max 0 iterations;
    pivots = max 0 pivots;
    tripped = None }

let unlimited () = start no_limits

let wall_check_period = 1024

let elapsed t = Mono.now () -. t.t0

let check_wall t =
  match t.limits.wall_seconds with
  | None -> None
  | Some limit ->
    let spent = elapsed t in
    if spent > limit then
      Some (Diag.Budget_exhausted { resource = "wall-seconds"; spent; limit })
    else None

let check t =
  match t.tripped with
  | Some _ as e -> e
  | None ->
    let verdict =
      match t.limits.max_pivots with
      | Some limit when t.pivots > limit ->
        Some
          (Diag.Budget_exhausted
             { resource = "pivots"; spent = float_of_int t.pivots;
               limit = float_of_int limit })
      | _ -> (
        match t.limits.max_iterations with
        | Some limit when t.iterations >= limit ->
          Some
            (Diag.Budget_exhausted
               { resource = "iterations"; spent = float_of_int t.iterations;
                 limit = float_of_int limit })
        | _ -> check_wall t)
    in
    t.tripped <- verdict;
    verdict

let tick_pivot t =
  match t.tripped with
  | Some _ -> false
  | None ->
    t.pivots <- t.pivots + 1;
    (match t.limits.max_pivots with
    | Some limit when t.pivots > limit ->
      t.tripped <-
        Some
          (Diag.Budget_exhausted
             { resource = "pivots"; spent = float_of_int t.pivots;
               limit = float_of_int limit })
    | _ ->
      if t.pivots land (wall_check_period - 1) = 0 then t.tripped <- check_wall t);
    t.tripped = None

let tick_iteration t = t.iterations <- t.iterations + 1

let iterations t = t.iterations
let pivots t = t.pivots
let exhausted t = check t <> None
