(** Instrumented I/O for durable state.

    Every writer whose bytes must survive a crash — the batch journal, the
    versioned checkpoints, proof-carrying trace files, fuzz repro records and
    the serve daemon's journal/result paths — funnels its file operations
    through this module instead of calling [Unix]/[Stdlib] directly. That
    buys three things at one choke point:

    - {b typed failures}: a full disk surfaces as {!Diag.Disk_full}, any
      other OS refusal as {!Diag.Io_error}; no [Sys_error] or
      [Unix.Unix_error] escapes to kill a daemon;
    - {b deterministic fault injection}: the [io.*] sites in
      {!Fault.all_points} ([io.enospc], [io.eio-read], [io.short-write],
      [io.fsync-lost], [io.torn-rename], [io.crash-after-write]) are fired
      here, against the ambient plan installed with {!set_fault}, so tests
      can drive any writer into any storage failure without mocking the
      filesystem;
    - {b crash-point enumeration}: every durable write (and the rename
      inside {!atomic_replace}) is a numbered {e write boundary}; the
      torture harness ({!Torture}) arms [io.crash-after-write] at boundary
      [k] to simulate a process death exactly there, in clean (full write,
      then crash) or torn (prefix of the write, then crash) mode.

    The fault plan is ambient (process-global) because journal/checkpoint
    call sites never thread a {!Fault.t}; production runs simply never call
    {!set_fault}, so every operation is a thin EINTR-safe wrapper. *)

exception Simulated_crash of { site : string; boundary : int }
(** Raised when [io.crash-after-write] fires: the simulated process death.
    Deliberately NOT a {!Diag.Error_exn} and not a [Unix.Unix_error], so the
    best-effort [try … with] guards around journal appends cannot swallow it
    by accident. After it is raised once, the layer is {e frozen}: every
    further instrumented operation re-raises, so on-disk state stays exactly
    as it was at the crash point even if an intermediate handler catches the
    exception. *)

(** {1 Ambient fault plan and crash bookkeeping} *)

val set_fault : Fault.t option -> unit
(** Install (or clear, with [None]) the process-global fault plan consulted
    by every operation below. *)

val fault : unit -> Fault.t option

val boundaries : unit -> int
(** Write boundaries crossed since the last {!reset}: one per {!write_all}
    (however invoked — directly, via a {!sink}, {!write_file} or
    {!atomic_replace}) plus one per rename inside {!atomic_replace}. The
    torture harness counts a fault-free run, then sweeps [1..boundaries]. *)

val crashed : unit -> bool
(** [true] once {!Simulated_crash} has been raised (layer frozen). *)

val reset : unit -> unit
(** Zero the boundary counter and un-freeze the layer (testing only). *)

(** {1 EINTR-retrying primitives}

    Thin wrappers over [Unix.read]/[Unix.write] that retry on [EINTR] and
    otherwise re-raise — for non-durable fd loops (supervisor event pipes,
    socket reads, the journal's seal probe) where a stray [SIGCHLD]/[SIGALRM]
    mid-syscall must not tear a record. Not instrumented, no typing. *)

val read_retry : Unix.file_descr -> bytes -> int -> int -> int
val write_retry : Unix.file_descr -> bytes -> int -> int -> int
val write_substring_retry : Unix.file_descr -> string -> int -> int -> int

val really_write_substring : Unix.file_descr -> string -> unit
(** Loop {!write_substring_retry} until every byte is written (raises on
    any non-EINTR error). For pipes, not durable files. *)

(** {1 Instrumented operations} *)

val write_all : Unix.file_descr -> path:string -> string -> (unit, Diag.error) result
(** Write the whole string to [fd] (EINTR-safe, short-write looping),
    crossing one write boundary. Injection: [io.enospc] fails with
    {!Diag.Disk_full} before any byte; [io.short-write] writes a prefix and
    fails with {!Diag.Io_error}; [io.crash-after-write] completes the write
    ([Fail] action) or writes a [Perturb]-fraction prefix, then raises
    {!Simulated_crash}. A real [ENOSPC] maps to {!Diag.Disk_full}; any other
    [Unix_error] to {!Diag.Io_error}. *)

val fsync : Unix.file_descr -> path:string -> (unit, Diag.error) result
(** [Unix.fsync], typed. Injection: [io.fsync-lost] silently skips the real
    fsync and reports success — the write is claimed durable but is not
    (the crash harness then shows whether recovery tolerates it). *)

val read_file : string -> (string, Diag.error) result
(** Whole-file read, EINTR-safe. Injection: [io.eio-read] fails with
    {!Diag.Io_error} (a simulated medium error). A missing file is an
    {!Diag.Io_error} too — callers that treat absence as "no state yet"
    check [Sys.file_exists] first. *)

val write_file : string -> string -> (unit, Diag.error) result
(** Create/truncate + {!write_all} + close. Non-atomic — for report outputs
    ([-o] SARIF, audit JSON, bench results) where a torn file on crash is
    acceptable; durable state uses {!atomic_replace}. *)

val atomic_replace : ?fsync_dir:bool -> string -> string -> (unit, Diag.error) result
(** The full crash-safe replace dance: write [path ^ ".tmp"], fsync it,
    close, rename over [path], then fsync the containing directory
    (best-effort, on by default). The rename is its own write boundary, so
    the torture harness exercises "crashed between write and rename" (temp
    file left behind; the stale-tmp GC must sweep it, and recovery must
    never load it) and "crashed after rename, before dir fsync". Injection:
    [io.torn-rename] stops after the temp write and fails with
    {!Diag.Io_error}, leaving the [.tmp] in place — the graceful-error
    twin of that crash. On any failure before the rename the temp file is
    removed best-effort (except under [io.torn-rename]/crash, which model a
    process that never got the chance). *)

val unlink : string -> (unit, Diag.error) result
(** [Unix.unlink], typed; unlinking a missing file is [Ok ()]. *)

val sweep_tmp : ?recurse:bool -> string -> string list
(** Unlink every [*.tmp] file directly in the directory (and below it, with
    [~recurse:true]) — the orphans a crash mid-{!atomic_replace} leaves
    behind. Returns the paths removed, sorted; a missing directory is []. No
    injection (it runs on the recovery side). *)

(** {1 Line sinks}

    An append-only line writer over an instrumented fd — what the trace
    writer (and any JSONL emitter) uses so each line is a write boundary
    with typed failure. *)

type sink

val create_sink : ?append:bool -> string -> (sink, Diag.error) result
(** Open (create/truncate, or append with [~append:true]) [path]. *)

val sink_path : sink -> string

val sink_write_line : sink -> string -> (unit, Diag.error) result
(** Write [line ^ "\n"] via {!write_all}. *)

val sink_fsync : sink -> (unit, Diag.error) result

val sink_close : sink -> unit
(** Close (idempotent, best-effort). *)
