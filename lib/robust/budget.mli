(** Run budgets: explicit resource ceilings for an optimization run.

    MINFLOTRANSIT's relaxation loop and the flow solvers underneath it are
    iterative; on degenerate inputs they can run far past any useful point.
    A {!t} is a mutable meter the engine threads through every loop that can
    spin — the D/W iteration, the network-simplex/SSP pivot loops, TILOS
    bumping — so that a run is bounded by wall clock, by iterations, and by
    total solver pivots, whichever trips first. On exhaustion the engine
    returns its best feasible solution so far, flagged, rather than running
    unbounded or raising.

    Checks are designed for hot loops: pivot ticks are counter updates, and
    the wall clock is consulted only every {!wall_check_period} ticks. *)

type limits = {
  wall_seconds : float option;   (** wall-clock deadline for the whole run. *)
  max_iterations : int option;   (** outer iterations (D/W rounds, bumps). *)
  max_pivots : int option;       (** cumulative flow-solver pivots. *)
}

val no_limits : limits

val limits :
  ?wall_seconds:float -> ?max_iterations:int -> ?max_pivots:int -> unit -> limits

type t

val start : limits -> t
(** A fresh meter; the wall clock starts now. Time is read from the
    monotonic clock ({!Mono}), so system-clock jumps can neither trip nor
    extend a wall-second budget. *)

val resume : limits -> elapsed:float -> iterations:int -> pivots:int -> t
(** A meter continuing a checkpointed run: the wall clock is backdated by
    [elapsed] seconds and the counters restored, so the resumed run only
    has whatever headroom the interrupted run had left. The trip state is
    re-derived from the restored meters on the next {!check}. *)

val unlimited : unit -> t

val wall_check_period : int
(** Pivot ticks between wall-clock reads (power of two). *)

val tick_pivot : t -> bool
(** Count one solver pivot. [false] once any resource is exhausted — the
    solver should abort; the verdict is sticky and repeat calls stay
    [false]. *)

val tick_iteration : t -> unit
(** Count one outer iteration (does not itself trip the meter; pair with
    {!check}). *)

val iterations : t -> int
val pivots : t -> int
val elapsed : t -> float

val check : t -> Diag.error option
(** Re-reads every resource (including the wall clock) and returns the typed
    [Budget_exhausted] reason of the first exhausted one. *)

val exhausted : t -> bool
