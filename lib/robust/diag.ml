module Vec = Minflo_util.Vec

type severity = Debug | Info | Warning | Error

let severity_rank = function Debug -> 0 | Info -> 1 | Warning -> 2 | Error -> 3

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

type error =
  | Parse_error of { file : string option; line : int; col : int; msg : string }
  | Lint_error of { rule : string; file : string option; line : int; msg : string }
  | Unknown_circuit of { name : string; known : string list }
  | Io_error of { file : string; msg : string }
  | Disk_full of { file : string }
  | Storage_corrupt of { file : string; detail : string }
  | Infeasible_budget of {
      vertex : int;
      label : string;
      budget : float;
      intrinsic : float;
    }
  | Unsafe_timing of { cp : float; deadline : float }
  | Solver_diverged of { solver : string; iters : int }
  | Numeric of { what : string; value : float }
  | Budget_exhausted of { resource : string; spent : float; limit : float }
  | Oscillation of { area : float; repeats : int }
  | Unmet_target of { target : float; achieved : float }
  | Infeasible_target of {
      target : float;
      lower_bound : float;
      witness : string list;
    }
  | Invariant of { what : string; detail : string }
  | Fault_injected of { site : string }
  | Checkpoint_invalid of { file : string; reason : string }
  | Differential_mismatch of {
      job : string;
      solver_a : string;
      solver_b : string;
      value_a : float;
      value_b : float;
      tolerance : float;
    }
  | Job_timeout of { job : string; seconds : float }
  | Job_crashed of { job : string; detail : string }
  | Overloaded of { depth : int; limit : int }
  | Draining
  | Journal_locked of { file : string }
  | Connect_refused of { endpoint : string; attempts : int }
  | Net_timeout of { endpoint : string; op : string; seconds : float }
  | Torn_response of { endpoint : string; bytes : int }
  | Internal of string

exception Error_exn of error

let fail e = raise (Error_exn e)

let error_code = function
  | Parse_error _ -> "parse-error"
  | Lint_error _ -> "lint-error"
  | Unknown_circuit _ -> "unknown-circuit"
  | Io_error _ -> "io-error"
  | Disk_full _ -> "disk-full"
  | Storage_corrupt _ -> "storage-corrupt"
  | Infeasible_budget _ -> "infeasible-budget"
  | Unsafe_timing _ -> "unsafe-timing"
  | Solver_diverged _ -> "solver-diverged"
  | Numeric _ -> "numeric"
  | Budget_exhausted _ -> "budget-exhausted"
  | Oscillation _ -> "oscillation"
  | Unmet_target _ -> "unmet-target"
  | Infeasible_target _ -> "infeasible-target"
  | Invariant _ -> "invariant"
  | Fault_injected _ -> "fault-injected"
  | Checkpoint_invalid _ -> "checkpoint-invalid"
  | Differential_mismatch _ -> "differential-mismatch"
  | Job_timeout _ -> "job-timeout"
  | Job_crashed _ -> "job-crashed"
  | Overloaded _ -> "overloaded"
  | Draining -> "draining"
  | Journal_locked _ -> "journal-locked"
  | Connect_refused _ -> "connect-refused"
  | Net_timeout _ -> "net-timeout"
  | Torn_response _ -> "torn-response"
  | Internal _ -> "internal"

let location ?(file = None) ~line ~col () =
  match (file, col) with
  | Some f, c when c > 0 -> Printf.sprintf "%s:%d:%d" f line c
  | Some f, _ -> Printf.sprintf "%s:%d" f line
  | None, c when c > 0 -> Printf.sprintf "line %d, column %d" line c
  | None, _ -> Printf.sprintf "line %d" line

let to_string = function
  | Parse_error { file; line; col; msg } ->
    Printf.sprintf "parse error at %s: %s" (location ~file ~line ~col ()) msg
  | Lint_error { rule; file; line; msg } ->
    Printf.sprintf "lint rule %s at %s: %s" rule
      (location ~file ~line ~col:0 ())
      msg
  | Unknown_circuit { name; known } ->
    Printf.sprintf "unknown circuit %S: not a file, and not one of {%s}" name
      (String.concat ", " known)
  | Io_error { file; msg } -> Printf.sprintf "cannot read %s: %s" file msg
  | Disk_full { file } ->
    Printf.sprintf "disk full: cannot write %s (ENOSPC)" file
  | Storage_corrupt { file; detail } ->
    Printf.sprintf "storage corrupt: %s: %s" file detail
  | Infeasible_budget { vertex; label; budget; intrinsic } ->
    Printf.sprintf
      "infeasible budget %g at vertex %d (%s): at or below the intrinsic delay %g"
      budget vertex label intrinsic
  | Unsafe_timing { cp; deadline } ->
    Printf.sprintf "circuit unsafe: critical path %.4g exceeds deadline %.4g" cp
      deadline
  | Solver_diverged { solver; iters } ->
    Printf.sprintf "solver %s diverged after %d iterations" solver iters
  | Numeric { what; value } -> Printf.sprintf "numeric failure: %s = %g" what value
  | Budget_exhausted { resource; spent; limit } ->
    Printf.sprintf "run budget exhausted: %s %g of %g" resource spent limit
  | Oscillation { area; repeats } ->
    Printf.sprintf "oscillation: area %.6g revisited %d consecutive times" area
      repeats
  | Unmet_target { target; achieved } ->
    Printf.sprintf "delay target %.4g not met: best achievable %.4g" target
      achieved
  | Infeasible_target { target; lower_bound; witness } ->
    Printf.sprintf
      "delay target %.4g is statically infeasible: below the interval-bound \
       lower bound %.4g (witness path: %s)"
      target lower_bound
      (if witness = [] then "-" else String.concat " -> " witness)
  | Invariant { what; detail } ->
    Printf.sprintf "invariant %S violated: %s" what detail
  | Fault_injected { site } -> Printf.sprintf "injected fault at %s" site
  | Checkpoint_invalid { file; reason } ->
    Printf.sprintf "checkpoint %s is unusable: %s" file reason
  | Differential_mismatch { job; solver_a; solver_b; value_a; value_b; tolerance }
    ->
    Printf.sprintf
      "differential mismatch on %s: %s gives %.6g, %s gives %.6g (tolerance %g)"
      job solver_a value_a solver_b value_b tolerance
  | Job_timeout { job; seconds } ->
    Printf.sprintf "job %s timed out after %.3g seconds" job seconds
  | Job_crashed { job; detail } -> Printf.sprintf "job %s crashed: %s" job detail
  | Overloaded { depth; limit } ->
    Printf.sprintf
      "server overloaded: admission queue at %d of %d; retry later" depth limit
  | Draining -> "server draining: no new work is admitted"
  | Journal_locked { file } ->
    Printf.sprintf
      "journal %s is locked by another live minflo instance; refusing to \
       interleave writes"
      file
  | Connect_refused { endpoint; attempts } ->
    Printf.sprintf "cannot connect to %s (%d attempt%s); is the daemon up?"
      endpoint attempts
      (if attempts = 1 then "" else "s")
  | Net_timeout { endpoint; op; seconds } ->
    Printf.sprintf "network timeout: no %s from %s within %g seconds" op
      endpoint seconds
  | Torn_response { endpoint; bytes } ->
    Printf.sprintf
      "torn response from %s: connection closed mid-line (%d bytes of an \
       incomplete JSON line)"
      endpoint bytes
  | Internal msg -> Printf.sprintf "internal error: %s" msg

let pp ppf e = Format.pp_print_string ppf (to_string e)

(* ---------- hand-rolled JSON (no external dependency) ---------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)

let jfloat v =
  if Float.is_finite v then Printf.sprintf "%.17g" v else jstr (Printf.sprintf "%h" v)

let obj fields =
  let fields = List.map (fun (k, v) -> Printf.sprintf "%s: %s" (jstr k) v) fields in
  Printf.sprintf "{%s}" (String.concat ", " fields)

let to_json e =
  let code = ("code", jstr (error_code e)) in
  match e with
  | Parse_error { file; line; col; msg } ->
    obj
      [ code;
        ("file", match file with Some f -> jstr f | None -> "null");
        ("line", string_of_int line);
        ("col", string_of_int col);
        ("msg", jstr msg) ]
  | Lint_error { rule; file; line; msg } ->
    obj
      [ code;
        ("rule", jstr rule);
        ("file", match file with Some f -> jstr f | None -> "null");
        ("line", string_of_int line);
        ("msg", jstr msg) ]
  | Unknown_circuit { name; known } ->
    obj
      [ code;
        ("name", jstr name);
        ("known", Printf.sprintf "[%s]" (String.concat ", " (List.map jstr known)))
      ]
  | Io_error { file; msg } -> obj [ code; ("file", jstr file); ("msg", jstr msg) ]
  | Disk_full { file } -> obj [ code; ("file", jstr file) ]
  | Storage_corrupt { file; detail } ->
    obj [ code; ("file", jstr file); ("detail", jstr detail) ]
  | Infeasible_budget { vertex; label; budget; intrinsic } ->
    obj
      [ code;
        ("vertex", string_of_int vertex);
        ("label", jstr label);
        ("budget", jfloat budget);
        ("intrinsic", jfloat intrinsic) ]
  | Unsafe_timing { cp; deadline } ->
    obj [ code; ("cp", jfloat cp); ("deadline", jfloat deadline) ]
  | Solver_diverged { solver; iters } ->
    obj [ code; ("solver", jstr solver); ("iters", string_of_int iters) ]
  | Numeric { what; value } -> obj [ code; ("what", jstr what); ("value", jfloat value) ]
  | Budget_exhausted { resource; spent; limit } ->
    obj
      [ code; ("resource", jstr resource); ("spent", jfloat spent);
        ("limit", jfloat limit) ]
  | Oscillation { area; repeats } ->
    obj [ code; ("area", jfloat area); ("repeats", string_of_int repeats) ]
  | Unmet_target { target; achieved } ->
    obj [ code; ("target", jfloat target); ("achieved", jfloat achieved) ]
  | Infeasible_target { target; lower_bound; witness } ->
    obj
      [ code; ("target", jfloat target); ("lower_bound", jfloat lower_bound);
        ( "witness",
          Printf.sprintf "[%s]" (String.concat ", " (List.map jstr witness)) )
      ]
  | Invariant { what; detail } ->
    obj [ code; ("what", jstr what); ("detail", jstr detail) ]
  | Fault_injected { site } -> obj [ code; ("site", jstr site) ]
  | Checkpoint_invalid { file; reason } ->
    obj [ code; ("file", jstr file); ("reason", jstr reason) ]
  | Differential_mismatch { job; solver_a; solver_b; value_a; value_b; tolerance }
    ->
    obj
      [ code; ("job", jstr job); ("solver_a", jstr solver_a);
        ("solver_b", jstr solver_b); ("value_a", jfloat value_a);
        ("value_b", jfloat value_b); ("tolerance", jfloat tolerance) ]
  | Job_timeout { job; seconds } ->
    obj [ code; ("job", jstr job); ("seconds", jfloat seconds) ]
  | Job_crashed { job; detail } ->
    obj [ code; ("job", jstr job); ("detail", jstr detail) ]
  | Overloaded { depth; limit } ->
    obj [ code; ("depth", string_of_int depth); ("limit", string_of_int limit) ]
  | Draining -> obj [ code ]
  | Journal_locked { file } -> obj [ code; ("file", jstr file) ]
  | Connect_refused { endpoint; attempts } ->
    obj [ code; ("endpoint", jstr endpoint); ("attempts", string_of_int attempts) ]
  | Net_timeout { endpoint; op; seconds } ->
    obj
      [ code; ("endpoint", jstr endpoint); ("op", jstr op);
        ("seconds", jfloat seconds) ]
  | Torn_response { endpoint; bytes } ->
    obj [ code; ("endpoint", jstr endpoint); ("bytes", string_of_int bytes) ]
  | Internal msg -> obj [ code; ("msg", jstr msg) ]

(* ---------- event log ---------- *)

type event = { severity : severity; source : string; message : string }

type log = { events : event Vec.t }

let dummy_event = { severity = Debug; source = ""; message = "" }

let create_log () = { events = Vec.create ~dummy:dummy_event () }

let log t severity ~source message =
  ignore (Vec.push t.events { severity; source; message })

let logf t severity ~source fmt =
  Printf.ksprintf (fun message -> log t severity ~source message) fmt

let events t = Vec.to_list t.events

let events_above t sev =
  List.filter (fun e -> severity_rank e.severity >= severity_rank sev) (events t)

let max_severity t =
  if Vec.length t.events = 0 then None
  else
    Some
      (Vec.fold
         (fun acc e -> if severity_rank e.severity > severity_rank acc then e.severity else acc)
         Debug t.events)

let event_to_string e =
  Printf.sprintf "[%s] %s: %s" (severity_to_string e.severity) e.source e.message

let log_to_json t =
  let one e =
    obj
      [ ("severity", jstr (severity_to_string e.severity));
        ("source", jstr e.source);
        ("message", jstr e.message) ]
  in
  Printf.sprintf "[%s]" (String.concat ", " (List.map one (events t)))
