/* Monotonic clock stub for Minflo_robust.Mono.

   CLOCK_MONOTONIC where available (Linux, BSD, macOS >= 10.12); plain
   gettimeofday as a last resort so the library still builds on exotic
   platforms — there the jump-immunity guarantee is best-effort only. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value minflo_mono_now(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
  }
}
