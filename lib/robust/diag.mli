(** Structured diagnostics for the whole tool stack.

    Every failure mode a caller might want to react to programmatically is a
    constructor of {!error}; free-text [failwith]/[string] errors are reserved
    for genuine internal bugs ({!Internal}). The sizing engine, the flow
    solvers and the netlist parsers all report through this type, so the CLI
    can map any failure to a stable exit code and a rendered message, and
    tests can assert on the *kind* of failure rather than on message text.

    A {!log} is a severity-tagged event trail the engine threads through a
    run; it is cheap (a vector of records), deterministic, and renderable as
    text or JSON for post-mortem analysis. *)

type severity = Debug | Info | Warning | Error

val severity_rank : severity -> int
(** [Debug = 0] … [Error = 3]; total order for filtering. *)

val severity_to_string : severity -> string

type error =
  | Parse_error of { file : string option; line : int; col : int; msg : string }
      (** Malformed [.bench] / [.v] / liberty input, with source location
          ([col] is 1-based; 0 when the column is unknown). *)
  | Lint_error of { rule : string; file : string option; line : int; msg : string }
      (** A static-analysis finding of error severity (see
          [Minflo_lint.Rule] for the stable [rule] ids, ["MF001"]…). The
          batch pre-flight gate quarantines circuits with this error
          before forking a job. *)
  | Unknown_circuit of { name : string; known : string list }
      (** A circuit spec that is neither a file nor a suite entry. *)
  | Io_error of { file : string; msg : string }
      (** A file could not be read or written for an OS-level reason other
          than a full disk (EIO, EACCES, a vanished path, a short read, a
          torn rename). Durable-state writers ({!Io}) report this instead of
          letting [Unix.Unix_error]/[Sys_error] escape. *)
  | Disk_full of { file : string }
      (** A write to [file] failed with ENOSPC (or the injected
          [io.enospc] fault). Non-transient: batch quarantines the job,
          serve enters read-only degraded mode. *)
  | Storage_corrupt of { file : string; detail : string }
      (** Recovery state on disk is inconsistent with what the journal
          promised: a result recorded as done cannot be reconstructed, a
          stale temp file shadowed real state, or a recovered record fails
          re-validation. Distinct from {!Checkpoint_invalid} (a single
          unusable checkpoint file): this one means the *store* broke an
          invariant. *)
  | Infeasible_budget of {
      vertex : int;
      label : string;
      budget : float;
      intrinsic : float;
    }
      (** A delay budget at or below the intrinsic delay [a_ii]: no size can
          achieve it (the W-phase failure mode). *)
  | Unsafe_timing of { cp : float; deadline : float }
      (** The circuit misses the deadline before optimization even starts. *)
  | Solver_diverged of { solver : string; iters : int }
      (** A flow solver failed to reach optimality (stalled, cycled, or was
          defeated by degenerate pivots). *)
  | Numeric of { what : string; value : float }
      (** A non-finite or out-of-range number where a sane one was required. *)
  | Budget_exhausted of { resource : string; spent : float; limit : float }
      (** A run budget (wall clock, iterations, pivots) ran out. *)
  | Oscillation of { area : float; repeats : int }
      (** The D/W iteration cycled through the same area [repeats] times. *)
  | Unmet_target of { target : float; achieved : float }
      (** Optimization finished but the delay target was not reached. *)
  | Infeasible_target of {
      target : float;
      lower_bound : float;
      witness : string list;
    }
      (** The target is below the interval-bound lower bound on the circuit
          delay ({!Minflo_lint.Bounds}): provably unreachable by any sizing,
          detected before any solve. [witness] is the statically-critical
          path (vertex labels) whose best-case delay already exceeds the
          target. *)
  | Invariant of { what : string; detail : string }
      (** A post-phase invariant check failed (see {!Check}). *)
  | Fault_injected of { site : string }
      (** A deliberate test fault (see {!Fault}). *)
  | Checkpoint_invalid of { file : string; reason : string }
      (** A checkpoint that cannot seed a resume: wrong magic/version,
          truncated, or written for a different circuit (hash mismatch). *)
  | Differential_mismatch of {
      job : string;
      solver_a : string;
      solver_b : string;
      value_a : float;
      value_b : float;
      tolerance : float;
    }
      (** Two independent solvers disagreed on a job's result beyond
          tolerance — evidence of a solver bug (or an injected fault). *)
  | Job_timeout of { job : string; seconds : float }
      (** A supervised batch job exceeded its hard wall-clock timeout and
          was killed. Transient: the supervisor retries it. *)
  | Job_crashed of { job : string; detail : string }
      (** A supervised batch job died without reporting a result (signal,
          nonzero exit, unreadable result file). Transient. *)
  | Overloaded of { depth : int; limit : int }
      (** The serve daemon's bounded admission queue is full: the request
          was rejected outright (explicit backpressure) instead of being
          queued unboundedly. Safe for the client to retry later. *)
  | Draining
      (** The serve daemon received a drain request (or SIGTERM) and no
          longer admits work; in-flight jobs are being finished or
          checkpointed. *)
  | Journal_locked of { file : string }
      (** Another live minflo process holds the advisory lock on this run
          directory's journal; a second writer would interleave and corrupt
          it, so the open fails fast instead. *)
  | Connect_refused of { endpoint : string; attempts : int }
      (** No daemon is listening at [endpoint] (connection refused, or a
          missing unix socket), still true after [attempts] tries. Safe to
          retry once a daemon is up. *)
  | Net_timeout of { endpoint : string; op : string; seconds : float }
      (** A network deadline expired: the peer at [endpoint] produced no
          [op] (["connect"], ["response"], …) within [seconds]. Replaces
          hanging forever on a stalled or half-open connection. *)
  | Torn_response of { endpoint : string; bytes : int }
      (** The connection closed (or the line ended) before a complete JSON
          response line arrived — a daemon death or a torn write, never a
          parse crash. [bytes] is the length of the incomplete line. *)
  | Internal of string  (** A bug: a state the design rules out. *)

exception Error_exn of error
(** For contexts that cannot return a [result]; carries the typed error. *)

val fail : error -> 'a
(** [raise (Error_exn e)]. *)

val error_code : error -> string
(** Stable machine-readable tag, e.g. ["parse-error"], ["budget-exhausted"].
    Documented in the README's failure-mode table; tests and scripts key on
    it. *)

val to_string : error -> string

val pp : Format.formatter -> error -> unit

val to_json : error -> string
(** One-line JSON object [{"code": …, …}] with the constructor's fields. *)

(** {1 Event log} *)

type event = { severity : severity; source : string; message : string }

type log

val create_log : unit -> log

val log : log -> severity -> source:string -> string -> unit

val logf :
  log -> severity -> source:string -> ('a, unit, string, unit) format4 -> 'a

val events : log -> event list
(** In emission order. *)

val events_above : log -> severity -> event list

val max_severity : log -> severity option
(** [None] when the log is empty. *)

val event_to_string : event -> string

val log_to_json : log -> string
(** JSON array of event objects. *)
