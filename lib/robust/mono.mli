(** Monotonic wall clock.

    Run budgets and sweep timings must never be distorted by NTP
    adjustments, leap seconds, or an operator setting the system clock:
    a backwards jump under [Unix.gettimeofday] could extend a wall-clock
    budget indefinitely, and a forward jump could trip it spuriously.
    This module reads [clock_gettime(CLOCK_MONOTONIC)] through a tiny C
    stub (falling back to [gettimeofday] only on platforms without a
    monotonic clock), so elapsed-time arithmetic is immune to wall-clock
    jumps. *)

val now : unit -> float
(** Seconds since an arbitrary fixed origin (typically boot). Only
    differences of two readings are meaningful; never compare against
    calendar time. *)

val elapsed_since : float -> float
(** [elapsed_since t0] is [now () -. t0]. *)
