type 'a rung = { name : string; attempt : unit -> ('a, Diag.error) result }

type 'a success = {
  value : 'a;
  rung : string;
  failures : (string * Diag.error) list;
}

let retryable = function
  | Diag.Solver_diverged _ | Diag.Numeric _ | Diag.Fault_injected _ -> true
  | _ -> false

let run ?log ?(retry_on = retryable) rungs =
  if rungs = [] then invalid_arg "Fallback.run: empty chain";
  let note name e =
    match log with
    | None -> ()
    | Some l ->
      Diag.logf l Diag.Warning ~source:"fallback" "rung %s failed: %s" name
        (Diag.to_string e)
  in
  let rec go failures = function
    | [] -> assert false
    | [ last ] -> (
      match last.attempt () with
      | Ok value -> Ok { value; rung = last.name; failures = List.rev failures }
      | Error e ->
        note last.name e;
        Error e)
    | rung :: rest -> (
      match rung.attempt () with
      | Ok value -> Ok { value; rung = rung.name; failures = List.rev failures }
      | Error e ->
        note rung.name e;
        if retry_on e then go ((rung.name, e) :: failures) rest else Error e)
  in
  go [] rungs
