(* minflo — command-line front end for the MINFLOTRANSIT sizing library.

   Circuits are named either by an ISCAS85/adder suite entry (c432, c6288,
   adder32, ...) or by a path to a .bench / .v file.

   Failures exit with a stable code (see README "Failure modes & exit
   codes"): 0 success, 1 target/timing not met, 2 bad input (unknown
   circuit, parse error, I/O error), 3 internal error or failed invariant. *)

open Cmdliner
open Minflo

let exit_code_of_error (e : Diag.error) =
  match e with
  | Diag.Parse_error _ | Diag.Lint_error _ | Diag.Unknown_circuit _
  | Diag.Io_error _ | Diag.Disk_full _ | Diag.Storage_corrupt _
  | Diag.Checkpoint_invalid _ | Diag.Journal_locked _ -> 2
  | Diag.Unmet_target _ | Diag.Infeasible_target _ | Diag.Unsafe_timing _
  | Diag.Infeasible_budget _
  | Diag.Budget_exhausted _ | Diag.Oscillation _ | Diag.Job_timeout _
  | Diag.Overloaded _ | Diag.Draining | Diag.Connect_refused _
  | Diag.Net_timeout _ -> 1
  | Diag.Solver_diverged _ | Diag.Numeric _ | Diag.Invariant _
  | Diag.Fault_injected _ | Diag.Differential_mismatch _ | Diag.Job_crashed _
  | Diag.Torn_response _ | Diag.Internal _ -> 3

let load_circuit spec : (Netlist.t, Diag.error) result =
  if Sys.file_exists spec then begin
    if Filename.check_suffix spec ".v" then Verilog_format.parse_file spec
    else Bench_format.parse_file spec
  end
  else if spec = "c17" then Ok (Generators.c17 ())
  else
    match Iscas85.find_info spec with
    | Some _ -> Ok (Iscas85.circuit spec)
    | None ->
      Error
        (Diag.Unknown_circuit
           { name = spec;
             known =
               "c17"
               :: List.map (fun (i : Iscas85.info) -> i.name) Iscas85.suite })

(* raising variant for command bodies; the typed error is rendered and
   mapped to an exit code at the top level. *)
let circuit spec =
  match load_circuit spec with Ok nl -> nl | Error e -> Diag.fail e

let circuit_arg =
  let doc =
    "Circuit: a .bench/.v file path or a built-in suite name (c432 .. c7552, \
     adder32, adder256, plus c17)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let model_arg =
  let doc = "Sizing granularity: gate (default) or transistor." in
  Arg.(value & opt (enum [ ("gate", `Gate); ("transistor", `Transistor) ]) `Gate
       & info [ "granularity"; "g" ] ~doc)

let build_model granularity nl =
  let tech = Tech.default_130nm in
  match granularity with
  | `Gate -> Model_cache.model ~tech nl
  | `Transistor -> Transistor.of_netlist tech (Transform.to_nand_inv nl)

let factor_arg =
  let doc = "Delay target as a fraction of the minimum-size circuit delay." in
  Arg.(value & opt float 0.5 & info [ "factor"; "f" ] ~doc)

(* ---------- resilience options (size) ---------- *)

let solver_arg =
  let doc =
    "D-phase LP solver: $(b,auto) (fallback chain simplex, then SSP, then \
     Bellman-Ford feasibility repair), $(b,simplex), $(b,ssp) or $(b,bf)."
  in
  Arg.(value
       & opt
           (enum
              [ ("auto", `Auto); ("simplex", `Simplex); ("ssp", `Ssp);
                ("bf", `Bellman_ford) ])
           `Auto
       & info [ "solver" ] ~doc)

let check_arg =
  Arg.(value & flag
       & info [ "check" ]
           ~doc:"Verify post-phase invariants (flow conservation, \
                 reduced-cost optimality, FSDU non-negativity, W-phase \
                 budgets, size bounds) and report each finding; a failed \
                 invariant exits with code 3.")

let max_seconds_arg =
  Arg.(value & opt (some float) None
       & info [ "max-seconds" ] ~docv:"S"
           ~doc:"Wall-clock budget for the whole run; on exhaustion the best \
                 feasible sizing found so far is returned, flagged.")

let max_iterations_arg =
  Arg.(value & opt (some int) None
       & info [ "max-iterations" ] ~docv:"N"
           ~doc:"Budget on outer iterations (TILOS bumps + D/W rounds).")

let max_pivots_arg =
  Arg.(value & opt (some int) None
       & info [ "max-pivots" ] ~docv:"N"
           ~doc:"Budget on cumulative flow-solver pivots.")

let warm_start_arg =
  Arg.(value & flag
       & info [ "warm-start" ]
           ~doc:"Reuse flow-solver state (the simplex spanning-tree basis, \
                 the SSP potentials) across D-phase solves instead of \
                 rebuilding it each iteration. The trajectory — every \
                 iterate, the final sizing — is bit-identical to a cold \
                 run; only the pivot counts drop (see $(b,minflo bench)).")

(* every --inject-fault argument, on every subcommand, is validated against
   the catalog of instrumented sites at parse time *)
let fault_site_conv =
  let parse s =
    if Fault.is_known_point s then Ok s
    else
      Error
        (`Msg
           (Printf.sprintf "unknown fault site %S; known sites: %s" s
              (String.concat ", " Fault.all_points)))
  in
  Arg.conv (parse, Fmt.string)

let fault_arg =
  Arg.(value & opt_all fault_site_conv []
       & info [ "inject-fault" ] ~docv:"SITE"
           ~doc:"Inject a deterministic failure at an instrumented site \
                 (dphase.simplex, dphase.ssp, dphase.bellman-ford, wphase, \
                 io.enospc, io.torn-rename, ...); repeatable. Engine sites \
                 exercise the fallback chain and budget paths; io.* sites \
                 exercise the storage layer every durable writer goes \
                 through. See $(b,minflo fuzz --list-faults) for the full \
                 catalog.")

let fault_count_arg =
  Arg.(value & opt (some int) None
       & info [ "fault-count" ] ~docv:"N"
           ~doc:"Fire each injected site at most $(docv) times (default: \
                 every hit).")

let fault_after_arg =
  Arg.(value & opt int 0
       & info [ "fault-after" ] ~docv:"K"
           ~doc:"Skip the first $(docv) hits of each injected site before \
                 firing; with io.crash-after-write and --fault-count 1 this \
                 selects the exact write boundary the simulated crash lands \
                 on.")

(* Engine sites travel inside the per-run [Fault.t]; "io.*" sites arm the
   ambient storage layer instead, so every durable writer — journal,
   checkpoint, trace, corpus — sees them without threading a plan. *)
let is_io_site s = String.length s > 3 && String.sub s 0 3 = "io."

let make_fault_plan ?(seed = 0) ?count ?(after = 0) sites =
  let armed sites =
    let f = Fault.create ~seed () in
    List.iter
      (fun site ->
        Fault.arm f ~site ?count ~after
          (Fault.Fail (Diag.Fault_injected { site })))
      sites;
    f
  in
  let io_sites, engine_sites = List.partition is_io_site sites in
  (match io_sites with
  | [] -> ()
  | _ ->
    Io.reset ();
    Io.set_fault (Some (armed io_sites)));
  match engine_sites with [] -> None | _ -> Some (armed engine_sites)

(* ---------- gen ---------- *)

let gen_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write the netlist to $(docv) instead of stdout.")
  in
  let fmt_arg =
    Arg.(value
         & opt (enum [ ("bench", `Bench); ("verilog", `Verilog); ("dot", `Dot) ]) `Bench
         & info [ "format" ] ~doc:"Output format: bench, verilog or dot.")
  in
  let run name out fmt =
    let nl = circuit name in
    let text =
      match fmt with
      | `Bench -> Bench_format.to_string nl
      | `Verilog -> Verilog_format.to_string nl
      | `Dot ->
        Dot.to_dot ~name:"netlist" ~node_label:(Netlist.node_name nl)
          (Netlist.to_digraph nl)
    in
    match out with
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Fmt.pr "wrote %s (%d gates)@." path (Netlist.gate_count nl)
    | None -> print_string text
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Emit a built-in circuit (bench/verilog/dot).")
    Term.(const run $ circuit_arg $ out $ fmt_arg)

(* ---------- stats ---------- *)

let stats_cmd =
  let run name =
    let nl = circuit name in
    let s = Netlist.stats nl in
    Fmt.pr "%s: %a@." (Netlist.name nl) Netlist.pp_stats s
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print netlist statistics.")
    Term.(const run $ circuit_arg)

(* ---------- sta ---------- *)

let sta_cmd =
  let run name granularity factor =
    let nl = circuit name in
    let model = build_model granularity nl in
    let x = Delay_model.uniform_sizes model model.Delay_model.min_size in
    let delays = Delay_model.delays model x in
    let sta = Sta.analyze model ~delays ~deadline:(factor *. Sweep.dmin model) in
    Fmt.pr "vertices: %d@." (Delay_model.num_vertices model);
    Fmt.pr "minimum-size critical path: %.4g@." sta.critical_path;
    Fmt.pr "deadline (factor %.2f): %.4g -> %s@." factor sta.deadline
      (if Sta.is_safe sta then "SAFE" else "UNSAFE at minimum size");
    let path = Sta.worst_path model ~delays in
    Fmt.pr "critical path (%d vertices):@." (List.length path);
    List.iter
      (fun i ->
        Fmt.pr "  %-24s delay %.4g slack %.4g@." model.Delay_model.labels.(i)
          delays.(i) sta.slack.(i))
      path
  in
  Cmd.v
    (Cmd.info "sta" ~doc:"Static timing report at minimum sizes.")
    Term.(const run $ circuit_arg $ model_arg $ factor_arg)

(* ---------- size ---------- *)

let size_cmd =
  let tool =
    Arg.(value & opt (enum [ ("tilos", `Tilos); ("minflo", `Minflo) ]) `Minflo
         & info [ "tool" ] ~doc:"Sizing tool: the TILOS baseline or MINFLOTRANSIT.")
  in
  let dump =
    Arg.(value & flag & info [ "dump-sizes" ] ~doc:"Print every size variable.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a proof-carrying run trace (newline-delimited JSON) \
                   to $(docv): the TILOS seed, every accepted D/W iteration \
                   with its sizes, delay budgets and min-cost-flow \
                   certificate, and the final result. Verify it later with \
                   $(b,minflo audit-run).")
  in
  let run name granularity factor tool dump solver do_check max_seconds
      max_iterations max_pivots fault_sites fault_count fault_after warm_start
      trace_out =
    let nl = circuit name in
    let model = build_model granularity nl in
    let d0 = Sweep.dmin model in
    let a0 = Sweep.min_area model in
    let target = factor *. d0 in
    Fmt.pr "circuit %s: %d sized vertices, Dmin %.4g, target %.4g@."
      (Netlist.name nl) (Delay_model.num_vertices model) d0 target;
    (* interval bound analysis: a target below the static delay floor is
       rejected here, with a witness path, before any solver runs *)
    let bounds = Bounds.compute model in
    (match Bounds.infeasible_target_error model bounds ~target with
    | Some e -> Diag.fail e
    | None -> ());
    let checks = if do_check then Some (Invariants.create ()) else None in
    (* a storage failure writing the trace must fail the --trace flag, not
       the sizing: the run's results are printed first, then the error *)
    let trace_error = ref None in
    let sizes, area, cp, met =
      match tool with
      | `Tilos ->
        let r = Tilos.size model ~target in
        Fmt.pr "TILOS: %d bumps@." r.bumps;
        (r.sizes, r.area, r.final_cp, r.met)
      | `Minflo ->
        let limits =
          Budget.limits ?wall_seconds:max_seconds ?max_iterations ?max_pivots ()
        in
        let options =
          { Minflotransit.default_options with solver; limits; warm_start }
        in
        let fault =
          make_fault_plan ?count:fault_count ~after:fault_after fault_sites
        in
        let log = Diag.create_log () in
        (* steps arrive during the run but the trace file wants them after
           the tilos record (only available at the end), so buffer *)
        let steps = ref [] in
        let on_step =
          match trace_out with
          | Some _ -> Some (fun s -> steps := s :: !steps)
          | None -> None
        in
        let r =
          Minflotransit.optimize ~options ?fault ~log ?checks ?on_step model
            ~target
        in
        (match trace_out with
        | Some path -> (
          match Io.create_sink path with
          | Error e -> trace_error := Some e
          | Ok sink -> (
            let w = Trace.create sink model ~circuit:(Netlist.name nl) ~target in
            Trace.record_tilos w r.tilos;
            List.iter (Trace.record_step w) (List.rev !steps);
            Trace.record_result w r;
            Io.sink_close sink;
            match Trace.error w with
            | Some e -> trace_error := Some e
            | None ->
              Fmt.pr "trace: %d step records written to %s@."
                (List.length !steps) path))
        | None -> ());
        List.iter
          (fun ev -> Fmt.epr "%s@." (Diag.event_to_string ev))
          (Diag.events_above log Diag.Warning);
        Fmt.pr "TILOS seed: area ratio %.3f (%d bumps)@."
          (r.tilos.area /. a0) r.tilos.bumps;
        Fmt.pr "MINFLOTRANSIT: %d iterations, saving %.2f%% over TILOS@."
          r.iterations r.area_saving_pct;
        Fmt.pr "stop: %s@." (Minflotransit.stop_reason_to_string r.stop);
        (match r.solver_used with
        | Some s -> Fmt.pr "D-phase solver: %s@." s
        | None -> ());
        if r.budget_exhausted then
          Fmt.pr "run budget exhausted: returning best feasible sizing found@.";
        (r.sizes, r.area, r.cp, r.met)
    in
    Fmt.pr "met: %b  delay: %.4g (%.3f x Dmin)  area ratio: %.3f@." met cp
      (cp /. d0) (area /. a0);
    if dump then
      Array.iteri
        (fun i x -> Fmt.pr "  %-24s %.3f@." model.Delay_model.labels.(i) x)
        sizes;
    (match checks with
    | Some c ->
      Fmt.pr "invariants:@.%s@." (Invariants.to_string c);
      (match Invariants.first_failure c with
      | Some e -> Diag.fail e
      | None -> ())
    | None -> ());
    (match !trace_error with
    | Some e ->
      Fmt.epr "trace: %s@." (Diag.to_string e);
      if met then Diag.fail e
    | None -> ());
    if not met then Diag.fail (Diag.Unmet_target { target; achieved = cp })
  in
  Cmd.v
    (Cmd.info "size" ~doc:"Size a circuit for a delay target.")
    Term.(const run $ circuit_arg $ model_arg $ factor_arg $ tool $ dump
          $ solver_arg $ check_arg $ max_seconds_arg $ max_iterations_arg
          $ max_pivots_arg $ fault_arg $ fault_count_arg $ fault_after_arg
          $ warm_start_arg $ trace_arg)

(* ---------- sweep ---------- *)

let sweep_cmd =
  let factors =
    Arg.(value & opt (list float) [ 0.4; 0.5; 0.6; 0.8; 1.0 ]
         & info [ "factors" ] ~doc:"Comma-separated delay factors.")
  in
  let run name granularity factors =
    let nl = circuit name in
    let model = build_model granularity nl in
    let table =
      Table.create
        ~columns:
          [ ("factor", Table.Right); ("TILOS area", Table.Right);
            ("MINFLO area", Table.Right); ("saving %", Table.Right);
            ("iters", Table.Right) ]
    in
    List.iter
      (fun (p : Sweep.point) ->
        Table.add_row table
          [ Printf.sprintf "%.2f" p.factor;
            (if p.tilos_met then Printf.sprintf "%.3f" p.tilos_area_ratio else "unmet");
            (if p.tilos_met then Printf.sprintf "%.3f" p.minflo_area_ratio else "-");
            (if p.tilos_met then Printf.sprintf "%.1f" p.saving_pct else "-");
            string_of_int p.iterations ])
      (Sweep.curve model ~factors);
    Table.print table
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Area-delay trade-off curve (Figure 7 style).")
    Term.(const run $ circuit_arg $ model_arg $ factors)

(* ---------- verify ---------- *)

let verify_cmd =
  let second =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"CIRCUIT2"
         ~doc:"Second circuit to compare against.")
  in
  let engine =
    Arg.(value & opt (enum [ ("bdd", `Bdd); ("sat", `Sat) ]) `Bdd
         & info [ "engine" ]
             ~doc:"Proof engine: canonical BDDs (fast on moderate circuits) \
                   or a SAT miter (better on large, structurally similar \
                   pairs).")
  in
  let run a b engine =
    let nla = circuit a and nlb = circuit b in
    let fail_cex output_index counterexample =
      Fmt.pr "DIFFER at output #%d; counterexample:@." output_index;
      List.iter (fun (n, v) -> Fmt.pr "  %s = %b@." n v) counterexample;
      exit 1
    in
    match engine with
    | `Bdd -> (
      match Check.equivalent nla nlb with
      | Check.Equivalent -> Fmt.pr "EQUIVALENT: %s == %s (BDD proof)@." a b
      | Check.Inputs_mismatch (x, y) ->
        Fmt.pr "MISMATCH: %d vs %d primary inputs@." x y;
        exit 1
      | Check.Outputs_mismatch (x, y) ->
        Fmt.pr "MISMATCH: %d vs %d primary outputs@." x y;
        exit 1
      | Check.Differ { output_index; counterexample } ->
        fail_cex output_index counterexample)
    | `Sat -> (
      match Cnf.equivalent nla nlb with
      | Cnf.Equivalent -> Fmt.pr "EQUIVALENT: %s == %s (SAT miter)@." a b
      | Cnf.Interface_mismatch ->
        Fmt.pr "MISMATCH: different interfaces@.";
        exit 1
      | Cnf.Differ counterexample -> fail_cex 0 counterexample)
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Formally check two circuits for equivalence.")
    Term.(const run $ circuit_arg $ second $ engine)

(* ---------- convert ---------- *)

let convert_cmd =
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Destination file; format from the extension (.bench / .v / .dot).")
  in
  let run name out =
    let nl = circuit name in
    if Filename.check_suffix out ".v" then Verilog_format.write_file out nl
    else if Filename.check_suffix out ".dot" then
      Dot.write_file out (Netlist.to_digraph nl)
        ~node_label:(Netlist.node_name nl)
    else Bench_format.write_file out nl;
    Fmt.pr "wrote %s@." out
  in
  Cmd.v
    (Cmd.info "convert" ~doc:"Convert between netlist formats.")
    Term.(const run $ circuit_arg $ out)

(* ---------- strash ---------- *)

let strash_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write the optimized netlist (format from extension).")
  in
  let formal =
    Arg.(value & flag & info [ "formal" ]
         ~doc:"Discharge a SAT equivalence miter instead of the default \
               4096-vector simulation check (can be slow on large, \
               XOR-heavy circuits).")
  in
  let run name out formal =
    let nl = circuit name in
    let nl2 = Aig.strash_netlist nl in
    Fmt.pr "%s: %d gates -> %d AND/NOT nodes (structural hashing)@."
      (Netlist.name nl) (Netlist.gate_count nl) (Netlist.gate_count nl2);
    if formal then begin
      match Cnf.equivalent nl nl2 with
      | Cnf.Equivalent -> Fmt.pr "formally verified equivalent (SAT miter)@."
      | _ -> Diag.fail (Diag.Internal "strash changed the function")
    end
    else begin
      (* quick check; the AIG round trip is equivalence-preserving by
         construction and property-tested formally in the test-suite *)
      let rng = Rng.create 1 in
      let nin = Netlist.input_count nl in
      for _ = 1 to 4096 do
        let bits = Array.init nin (fun _ -> Rng.bool rng) in
        let va = Netlist.simulate nl bits and vb = Netlist.simulate nl2 bits in
        List.iter2
          (fun oa ob ->
            if va.(oa) <> vb.(ob) then
              Diag.fail (Diag.Internal "strash changed the function"))
          (Netlist.outputs nl) (Netlist.outputs nl2)
      done;
      Fmt.pr "simulation check passed (4096 vectors; use --formal for a proof)@."
    end;
    match out with
    | Some path ->
      if Filename.check_suffix path ".v" then Verilog_format.write_file path nl2
      else Bench_format.write_file path nl2;
      Fmt.pr "wrote %s@." path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "strash"
       ~doc:"Structurally hash a netlist through an AIG (and verify).")
    Term.(const run $ circuit_arg $ out $ formal)

(* ---------- batch ---------- *)

let batch_cmd =
  let circuits =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"CIRCUIT"
             ~doc:"Circuits to size (suite names or .bench/.v paths); the \
                   batch grid is every circuit at every factor with every \
                   solver.")
  in
  let factors =
    Arg.(value & opt (list float) [ 0.5 ]
         & info [ "factors" ] ~doc:"Comma-separated delay factors.")
  in
  let solvers =
    Arg.(value
         & opt
             (list
                (enum
                   [ ("auto", `Auto); ("simplex", `Simplex); ("ssp", `Ssp);
                     ("bf", `Bellman_ford) ]))
             [ `Auto ]
         & info [ "solvers" ] ~doc:"Comma-separated D-phase solvers.")
  in
  let checkpoint_dir =
    Arg.(value & opt (some string) None
         & info [ "checkpoint-dir" ] ~docv:"DIR"
             ~doc:"Directory for per-job checkpoints and the crash-safe \
                   journal ($(docv)/journal.jsonl). Without it there is no \
                   checkpointing, journaling or resume.")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Skip jobs the journal records as complete and restart \
                   interrupted jobs from their last validated checkpoint; \
                   the resumed results are bit-identical to an \
                   uninterrupted run.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Concurrent job processes.")
  in
  let retries =
    Arg.(value & opt int 2
         & info [ "retries" ] ~docv:"N"
             ~doc:"Extra attempts for transiently failing jobs (timeouts, \
                   crashes, retryable solver errors), with exponential \
                   backoff. Deterministic failures are quarantined instead.")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"S"
             ~doc:"Hard per-attempt wall-clock limit; a job past it is \
                   SIGKILLed and treated as a transient failure.")
  in
  let differential =
    Arg.(value & flag
         & info [ "differential" ]
             ~doc:"Re-run every successful job under an independent D-phase \
                   solver and flag area disagreement beyond the tolerance \
                   as a differential-mismatch diagnostic (exit code 3).")
  in
  let diff_tolerance =
    Arg.(value & opt float Differential.default_tolerance
         & info [ "diff-tolerance" ] ~docv:"T"
             ~doc:"Relative area tolerance for --differential.")
  in
  let no_isolate =
    Arg.(value & flag
         & info [ "no-isolate" ]
             ~doc:"Run jobs in-process instead of forked children (no \
                   timeout enforcement; for debugging).")
  in
  let fault_seed =
    Arg.(value & opt int 0
         & info [ "fault-seed" ] ~docv:"SEED"
             ~doc:"Seed for the --inject-fault plan (recorded in \
                   checkpoints).")
  in
  let no_preflight =
    Arg.(value & flag
         & info [ "no-preflight" ]
             ~doc:"Skip the pre-fork lint gate. By default every distinct \
                   circuit is linted first and jobs on circuits with parse \
                   errors or Error-severity findings are quarantined \
                   immediately, with zero attempts.")
  in
  let run circuits factors solvers checkpoint_dir resume jobs retries timeout
      differential diff_tolerance no_isolate max_seconds max_iterations
      max_pivots fault_sites fault_count fault_after fault_seed no_preflight
      warm_start =
    let grid = Job.cross ~circuits ~factors ~solvers in
    let limits =
      Budget.limits ?wall_seconds:max_seconds ?max_iterations ?max_pivots ()
    in
    (* arm io.* sites ambiently in the parent too, so the journal and
       checkpoint writers — not just forked job engines — see them *)
    ignore
      (make_fault_plan ~seed:fault_seed ?count:fault_count ~after:fault_after
         fault_sites);
    let config =
      { Batch.checkpoint_dir;
        resume;
        supervise =
          { Supervisor.default_config with
            parallel = jobs;
            retries;
            timeout_seconds = timeout;
            isolate = not no_isolate };
        differential;
        diff_tolerance;
        engine = { Minflotransit.default_options with limits; warm_start };
        fault_seed = (if fault_sites = [] then None else Some fault_seed);
        make_fault =
          (fun _ ->
            make_fault_plan ~seed:fault_seed ?count:fault_count
              ~after:fault_after fault_sites);
        preflight = not no_preflight }
    in
    match Batch.run ~config grid with
    | Error e -> Diag.fail e
    | Ok s ->
      let table =
        Table.create
          ~columns:
            [ ("job", Table.Left); ("status", Table.Left);
              ("area ratio", Table.Right); ("iters", Table.Right);
              ("attempts", Table.Right); ("differential", Table.Left) ]
      in
      List.iter
        (fun (r : Batch.job_report) ->
          let status, area, iters =
            match r.outcome with
            | None -> ("skipped (journal)", "-", "-")
            | Some (Ok o) ->
              ( (if o.Job.resumed then "ok (resumed)" else "ok"),
                Printf.sprintf "%.3f" o.Job.area_ratio,
                string_of_int o.Job.iterations )
            | Some (Error e) ->
              ( (if r.quarantined then "quarantined " else "failed ")
                ^ "[" ^ Diag.error_code e ^ "]",
                "-", "-" )
          in
          let diff =
            match r.differential with
            | None -> "-"
            | Some (Ok ()) -> "agree"
            | Some (Error e) -> "MISMATCH [" ^ Diag.error_code e ^ "]"
          in
          Table.add_row table
            [ Job.id r.job; status; area; iters;
              string_of_int r.attempts; diff ])
        s.reports;
      Table.print table;
      Fmt.pr "batch: %d ok, %d failed, %d skipped, %d differential mismatches@."
        s.ok s.failed s.skipped s.mismatches;
      (* exit with the worst per-job failure, same mapping as single runs *)
      let worst =
        List.fold_left
          (fun acc (r : Batch.job_report) ->
            let acc =
              match r.outcome with
              | Some (Error e) -> max acc (exit_code_of_error e)
              | _ -> acc
            in
            match r.differential with
            | Some (Error e) -> max acc (exit_code_of_error e)
            | _ -> acc)
          0 s.reports
      in
      if worst > 0 then exit worst
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Run a grid of sizing jobs under supervision: checkpoint/resume, \
             per-job isolation with retry and quarantine, optional \
             cross-solver differential verification.")
    Term.(const run $ circuits $ factors $ solvers $ checkpoint_dir $ resume
          $ jobs $ retries $ timeout $ differential $ diff_tolerance
          $ no_isolate $ max_seconds_arg $ max_iterations_arg $ max_pivots_arg
          $ fault_arg $ fault_count_arg $ fault_after_arg $ fault_seed
          $ no_preflight $ warm_start_arg)

(* ---------- bench ---------- *)

let bench_cmd =
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"Run the CI smoke subset (c432, c880) instead of the full \
                   grid (adds c1908, c6288). With --scale, also trims the \
                   scaling grid to rca1024 and mul32.")
  in
  let scale =
    Arg.(value & flag
         & info [ "scale" ]
             ~doc:"Also run the synthetic scaling grid: 1024/4096-bit \
                   ripple adders, 32x32/64x64 array multipliers and a \
                   50k-gate layered random DAG (warm legs, certificates \
                   audited). Deterministic, so the results are part of the \
                   checked-in baseline like the ISCAS grid.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the machine-readable baseline document (one \
                   experiment per line) instead of the table.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the JSON document to $(docv) instead of stdout \
                   (implies --json).")
  in
  let check =
    Arg.(value & opt (some string) None
         & info [ "check" ] ~docv:"BASELINE"
             ~doc:"Compare this run against a checked-in baseline JSON \
                   file. The comparison is exact on areas, iteration counts \
                   and every perf counter — wall time is excluded, it is \
                   the only non-deterministic field. Any divergence exits 3.")
  in
  let run quick scale json out check =
    Logs.set_level (Some Logs.Error);
    let experiments =
      Benchmarks.suite ~quick ()
      @ (if scale then Benchmarks.scale_suite ~quick () else [])
    in
    (if json || out <> None then begin
       let text = Benchmarks.render experiments in
       match out with
       | Some path ->
         let oc = open_out path in
         output_string oc text;
         close_out oc;
         Fmt.pr "wrote %s (%d experiments)@." path (List.length experiments)
       | None -> print_string text
     end
     else begin
       let table =
         Table.create
           ~columns:
             [ ("circuit", Table.Left); ("mode", Table.Left);
               ("gates", Table.Right); ("area", Table.Right);
               ("iters", Table.Right); ("pivots", Table.Right);
               ("sweeps", Table.Right); ("incr", Table.Right);
               ("audit", Table.Right); ("wall s", Table.Right) ]
       in
       List.iter
         (fun (e : Benchmarks.experiment) ->
           Table.add_row table
             [ e.circuit; e.mode;
               string_of_int e.gates;
               Printf.sprintf "%.3f" e.area;
               string_of_int e.iterations;
               string_of_int e.counters.Perf.pivots;
               string_of_int e.counters.Perf.sweeps;
               string_of_int e.counters.Perf.incr_updates;
               string_of_int e.audit_findings;
               Printf.sprintf "%.2f" e.wall_seconds ])
         experiments;
       Table.print table;
       List.iter
         (fun c ->
           match Benchmarks.pivot_reduction experiments ~circuit:c with
           | Some pct ->
             Fmt.pr "%s: warm start saves %.1f%% of simplex pivots@." c pct
           | None -> ())
         (List.sort_uniq compare
            (List.map (fun (e : Benchmarks.experiment) -> e.circuit)
               experiments))
     end);
    match check with
    | None -> ()
    | Some baseline -> (
      match Benchmarks.check ~baseline experiments with
      | Ok () -> Fmt.pr "bench: counters match baseline %s@." baseline
      | Error diffs ->
        List.iter (fun d -> Fmt.epr "bench diverges:@.%s@." d) diffs;
        Diag.fail
          (Diag.Invariant
             { what = "bench";
               detail =
                 Printf.sprintf "%d experiment(s) diverge from %s"
                   (List.length diffs) baseline }))
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run the deterministic benchmark suite: the full engine, cold \
             and warm, on ISCAS-85 circuits, reporting areas and the \
             deterministic perf counters (pivots, relabels, sweeps, bumps). \
             With --scale, adds the synthetic scaling grid (up to 50k \
             gates). With --check, a counter drifting from the checked-in \
             baseline exits 3 — the CI bench-smoke gate.")
    Term.(const run $ quick $ scale $ json $ out $ check)

(* ---------- power ---------- *)

let power_cmd =
  let run name factor =
    let nl = circuit name in
    let tech = Tech.default_130nm in
    let model = Elmore.of_netlist tech nl in
    let target = factor *. Sweep.dmin model in
    let r = Minflotransit.optimize model ~target in
    let act = Activity.estimate ~patterns:2048 ~seed:1 nl in
    let p_min = Power.min_size_baseline tech nl ~activity:act in
    let p_tilos = Power.dynamic tech nl ~activity:act ~sizes:r.tilos.sizes in
    let p_opt = Power.dynamic tech nl ~activity:act ~sizes:r.sizes in
    Fmt.pr "switching power, normalized to the minimum-size circuit:@.";
    Fmt.pr "  minimum size:  1.00x@.";
    Fmt.pr "  TILOS:         %.3fx@." (p_tilos.total /. p_min.total);
    Fmt.pr "  MINFLOTRANSIT: %.3fx (met=%b)@." (p_opt.total /. p_min.total) r.met
  in
  Cmd.v
    (Cmd.info "power" ~doc:"Switching-power report for a sized circuit.")
    Term.(const run $ circuit_arg $ factor_arg)

(* ---------- lint ---------- *)

let lint_cmd =
  let circuits =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"CIRCUIT"
             ~doc:"Circuits to lint: .bench/.v file paths or built-in suite \
                   names; repeatable.")
  in
  let format =
    Arg.(value & opt (enum [ ("text", `Text); ("sarif", `Sarif) ]) `Text
         & info [ "format" ]
             ~doc:"Report format: human-readable $(b,text) (default) or \
                   $(b,sarif) (SARIF 2.1.0 JSON, the schema GitHub code \
                   scanning ingests).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the report to $(docv) instead of stdout.")
  in
  let strict =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Fail (exit 2) on warnings too; shorthand for \
                   --fail-on=warning.")
  in
  let fail_on =
    Arg.(value
         & opt
             (enum
                [ ("error", Lint_rule.Error); ("warning", Lint_rule.Warning);
                  ("info", Lint_rule.Info) ])
             Lint_rule.Error
         & info [ "fail-on" ]
             ~doc:"Lowest severity that makes the exit code non-zero \
                   (default error).")
  in
  let max_fanout =
    Arg.(value & opt (some int) None
         & info [ "max-fanout" ] ~docv:"N"
             ~doc:"Enable the MF007 pass: warn when a signal fans out to \
                   more than $(docv) gate pins.")
  in
  let bounds_factor =
    Arg.(value & opt (some float) None
         & info [ "bounds-factor" ] ~docv:"F"
             ~doc:"Enable the interval-bound passes (MF201 statically \
                   infeasible target, MF202 pinned gates, MF203 \
                   slack-irrelevant gates): elaborate each clean circuit at \
                   gate granularity and analyze the achievable-delay \
                   intervals against a target of $(docv) times its \
                   minimum-size critical path.")
  in
  let run circuits format out strict fail_on max_fanout bounds_factor =
    let config = { Lint.default_config with fanout_bound = max_fanout } in
    let findings =
      List.concat_map
        (fun spec ->
          match Job.load_raw spec with
          | Ok raw ->
            let structural = Lint.check ~config raw in
            let bounds =
              (* the bound analysis needs an elaborated timing model, which
                 only exists for structurally clean netlists *)
              match bounds_factor with
              | Some f
                when not
                       (Lint_finding.exceeds ~fail_on:Lint_rule.Error
                          structural) -> (
                match load_circuit spec with
                | Ok nl ->
                  let model = build_model `Gate nl in
                  Bounds.check model ~target:(f *. Sweep.dmin model)
                | Error _ -> [])
              | _ -> []
            in
            structural @ bounds
          | Error (Diag.Parse_error { file; line; col; msg }) ->
            (* unparseable input is itself a finding, so a SARIF report (and
               the exit code) still covers the file *)
            [ Lint_finding.make ~file
                ~loc:{ Raw.line; col }
                Lint_rule.mf000_syntax msg ]
          | Error e -> Diag.fail e)
        circuits
    in
    let text =
      match format with
      | `Text -> Lint_report.render findings
      | `Sarif -> Sarif.render findings
    in
    (match out with
    | Some path -> (
      (* through the instrumented layer: a full disk is a typed disk-full
         diagnostic (exit 2), not a Sys_error backtrace *)
      match Io.write_file path text with
      | Ok () -> ()
      | Error e -> Diag.fail e)
    | None -> print_string text);
    let fail_on = if strict then Lint_rule.Warning else fail_on in
    let code = Lint_report.exit_code ~fail_on findings in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static analysis of netlists: combinational cycles (with their \
             member gates), multi-driven and undriven nets, dangling \
             inputs, dead logic, duplicate declarations, gate arity, \
             fanout bounds and technology coverage (rules MF000-MF010), \
             plus technology-model monotonicity (MF204) and — with \
             $(b,--bounds-factor) — the interval-bound passes: statically \
             infeasible delay targets with a witness critical path (MF201), \
             gates the target pins at their best case (MF202) and gates \
             whose worst case still meets it (MF203). Exit 2 at or above \
             the --fail-on severity.")
    Term.(const run $ circuits $ format $ out $ strict $ fail_on $ max_fanout
          $ bounds_factor)

(* ---------- audit-cert ---------- *)

let audit_cert_cmd =
  let solvers_arg =
    Arg.(value
         & opt
             (list
                (enum
                   [ ("simplex", `Simplex); ("ssp", `Ssp);
                     ("cost-scaling", `Cost_scaling) ]))
             [ `Simplex; `Ssp; `Cost_scaling ]
         & info [ "solvers" ]
             ~doc:"Comma-separated MCF solvers whose certificates to audit \
                   (default: all three).")
  in
  let audit_fault_arg =
    Arg.(value & opt_all fault_site_conv []
         & info [ "inject-fault" ] ~docv:"SITE"
             ~doc:"Corrupt the named solver's solution before auditing \
                   (audit.simplex, audit.ssp, audit.cost-scaling); \
                   repeatable. The audit must then fail — this is how the \
                   auditor itself is tested.")
  in
  let run name granularity factor solvers fault_sites =
    let nl = circuit name in
    let model = build_model granularity nl in
    let d0 = Sweep.dmin model in
    let target = factor *. d0 in
    (* a real D-phase workload: TILOS first, so the displacement LP is built
       at a feasible, representative operating point *)
    let tilos = Tilos.size model ~target in
    if not tilos.met then
      Diag.fail (Diag.Unmet_target { target; achieved = tilos.final_cp });
    let sizes = tilos.sizes in
    let delays = Delay_model.delays model sizes in
    let problem =
      match Dphase.displacement_problem model ~sizes ~delays ~deadline:target with
      | Ok p -> p
      | Error e -> Diag.fail e
    in
    (* unlike the engine's --inject-fault (which arms Fail to exercise the
       fallback chain), the audit sites arm Perturb: the point is a silently
       corrupted solution that only the auditor can catch *)
    let fault =
      match fault_sites with
      | [] -> None
      | sites ->
        let f = Fault.create ~seed:0 () in
        List.iter (fun site -> Fault.arm f ~site (Fault.Perturb 1.0)) sites;
        Some f
    in
    Fmt.pr "displacement LP for %s @@ %.2f: %d nodes, %d arcs@."
      (Netlist.name nl) factor problem.Mcf.num_nodes
      (Array.length problem.Mcf.arcs);
    let audit_one (tag, solve) =
      let sol = solve problem in
      (* a Perturb fault bumps one arc's flow: breaks conservation at its
         endpoints and leaves the stale objective behind *)
      (match Option.bind fault (fun f -> Fault.fire f ~site:("audit." ^ tag)) with
      | Some (Fault.Perturb mag) when Array.length sol.Mcf.flow > 0 ->
        sol.Mcf.flow.(0) <- sol.Mcf.flow.(0) + max 1 (int_of_float mag)
      | Some (Fault.Fail e) -> Diag.fail e
      | _ -> ());
      let findings = Audit.check problem sol in
      if findings = [] then begin
        Fmt.pr "%-14s certificate OK (objective %d)@." tag sol.Mcf.objective;
        false
      end
      else begin
        Fmt.pr "%-14s certificate REJECTED:@." tag;
        print_string (Lint_report.render findings);
        Lint_finding.exceeds ~fail_on:Lint_rule.Error findings
      end
    in
    let named = function
      | `Simplex -> ("simplex", Network_simplex.solve ?budget:None)
      | `Ssp -> ("ssp", Ssp.solve ?budget:None)
      | `Cost_scaling -> ("cost-scaling", Cost_scaling.solve ?budget:None)
    in
    let bad = List.filter audit_one (List.map named solvers) in
    if bad <> [] then
      Diag.fail
        (Diag.Invariant
           { what = "audit-cert";
             detail =
               Printf.sprintf "%d of %d certificates rejected" (List.length bad)
                 (List.length solvers) })
  in
  Cmd.v
    (Cmd.info "audit-cert"
       ~doc:"Independently audit min-cost-flow optimality certificates: \
             solve the circuit's D-phase displacement LP with each solver, \
             then re-verify flow bounds, conservation, complementary \
             slackness and the objective from first principles (rules \
             MF101-MF105) without a second solve. A rejected certificate \
             exits 3.")
    Term.(const run $ circuit_arg $ model_arg $ factor_arg $ solvers_arg
          $ audit_fault_arg)

(* ---------- audit-run ---------- *)

let audit_run_cmd =
  let trace_pos =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"TRACE"
             ~doc:"Trace file written by $(b,minflo size --trace).")
  in
  let format =
    Arg.(value & opt (enum [ ("text", `Text); ("sarif", `Sarif) ]) `Text
         & info [ "format" ]
             ~doc:"Report format: $(b,text) (default) or $(b,sarif).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Write the report to $(docv) instead of stdout.")
  in
  let run name granularity factor trace_path format out =
    let nl = circuit name in
    let model = build_model granularity nl in
    let target = factor *. Sweep.dmin model in
    if not (Sys.file_exists trace_path) then
      Diag.fail (Diag.Io_error { file = trace_path; msg = "no such file" });
    let findings =
      match Trace.audit_file model ~target trace_path with
      | Ok findings -> findings
      | Error e -> Diag.fail e
    in
    if findings = [] then
      Fmt.pr "trace OK: %s @@ factor %.2f verified against %s@." trace_path
        factor (Netlist.name nl)
    else begin
      let text =
        match format with
        | `Text -> Lint_report.render findings
        | `Sarif -> Sarif.render findings
      in
      match out with
      | Some path -> (
        match Io.write_file path text with
        | Ok () -> ()
        | Error e -> Diag.fail e)
      | None -> print_string text
    end;
    let code = Lint_report.exit_code ~fail_on:Lint_rule.Error findings in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "audit-run"
       ~doc:"Independently verify a proof-carrying engine trace (from \
             $(b,minflo size --trace)): recompute every claimed area and \
             delay from the recorded sizes, check the W-phase delay \
             budgets, demand monotone area progress, rebuild every D-phase \
             displacement LP from scratch and re-audit its min-cost-flow \
             certificate (rules MF210-MF215 plus MF101-MF105). Any \
             tampered field — one arc cost, one flow value, one claimed \
             area — is detected; findings exit 2.")
    Term.(const run $ circuit_arg $ model_arg $ factor_arg $ trace_pos
          $ format $ out)

(* ---------- fuzz ---------- *)

let fuzz_cmd =
  let seed_arg =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Campaign seed; the whole campaign is deterministic in it.")
  in
  let iterations_arg =
    Arg.(value & opt int 200
         & info [ "iterations"; "n" ] ~docv:"N" ~doc:"Cases to generate.")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Reproducer directory: fresh failures are shrunk and \
                   written here; fingerprints already present count as \
                   known.")
  in
  let list_faults_arg =
    Arg.(value & flag
         & info [ "list-faults" ]
             ~doc:"Print every instrumented fault-injection site and exit.")
  in
  let fuzz_fault_arg =
    Arg.(value & opt (some fault_site_conv) None
         & info [ "inject-fault" ] ~docv:"SITE"
             ~doc:"Arm this site in every case's oracle run; the campaign \
                   must then find (and shrink, and deterministically \
                   replay) the planted fault.")
  in
  let fault_seed_arg =
    Arg.(value & opt int 0
         & info [ "fault-seed" ] ~docv:"SEED"
             ~doc:"Seed for the injected fault plan.")
  in
  let factor_arg =
    Arg.(value & opt float 0.6
         & info [ "factor" ; "f" ] ~docv:"F"
             ~doc:"Delay target per case, as a fraction of its Dmin.")
  in
  let solvers_arg =
    Arg.(value
         & opt
             (list
                (enum
                   [ ("auto", `Auto); ("simplex", `Simplex); ("ssp", `Ssp);
                     ("bf", `Bellman_ford) ]))
             [ `Simplex; `Ssp ]
         & info [ "solvers" ]
             ~doc:"Comma-separated engine legs to run (and differentially \
                   compare) per case.")
  in
  let no_differential_arg =
    Arg.(value & flag
         & info [ "no-differential" ]
             ~doc:"Skip the LP-level three-solver differential and \
                   certificate-audit stage.")
  in
  let no_shrink_arg =
    Arg.(value & flag
         & info [ "no-shrink" ]
             ~doc:"Write fresh reproducers unshrunk.")
  in
  let shrink_checks_arg =
    Arg.(value & opt int 400
         & info [ "shrink-checks" ] ~docv:"N"
             ~doc:"Oracle evaluations the shrinker may spend per bucket.")
  in
  let isolate_arg =
    Arg.(value & flag
         & info [ "isolate" ]
             ~doc:"Run each case in a supervised forked child, so a hang \
                   or hard crash becomes a runner/hang or runner/crash \
                   bucket instead of killing the campaign.")
  in
  let timeout_arg =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"S"
             ~doc:"Per-case hard kill (seconds); only with --isolate.")
  in
  let max_gates_arg =
    Arg.(value & opt int 40
         & info [ "max-gates" ] ~docv:"N"
             ~doc:"Upper bound on generated random-DAG gate counts.")
  in
  let known_arg =
    Arg.(value & opt_all string []
         & info [ "known" ] ~docv:"FINGERPRINT"
             ~doc:"Treat this fingerprint as already triaged (repeatable).")
  in
  let known_from_arg =
    Arg.(value & opt_all string []
         & info [ "known-from" ] ~docv:"DIR"
             ~doc:"Treat every fingerprint stored in this reproducer \
                   directory as known, without writing new reproducers \
                   there (repeatable). Unlike $(b,--corpus), the \
                   directory is read-only.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No per-case progress.")
  in
  let run seed iterations corpus list_faults fault_site fault_seed factor
      solvers no_differential no_shrink shrink_checks isolate timeout
      max_gates known known_from quiet =
    if list_faults then List.iter print_endline Fault.all_points
    else begin
      (* engine-level warnings are expected noise when the oracle drives
         thousands of deliberately broken runs *)
      Logs.set_level (Some Logs.Error);
      let known =
        known
        @ List.concat_map
            (fun dir ->
              List.filter_map
                (fun path ->
                  match Corpus.load path with
                  | Ok r -> Some (Fingerprint.to_string r.Corpus.fingerprint)
                  | Error _ -> None)
                (Corpus.list dir))
            known_from
      in
      let cfg =
        { Campaign.seed;
          iterations;
          oracle =
            { Oracle.default_config with
              target_factor = factor;
              solvers;
              differential = not no_differential;
              fault_site;
              fault_seed };
          profile = { Gen_mut.default_profile with max_gates };
          corpus_dir = corpus;
          known;
          shrink = not no_shrink;
          shrink_checks;
          isolate;
          timeout_seconds = timeout }
      in
      let progress =
        if quiet then None
        else
          Some
            (fun i ->
              if (i + 1) mod 50 = 0 || i + 1 = iterations then
                Fmt.epr "fuzz: %d/%d cases@." (i + 1) iterations)
      in
      let report = Campaign.run ?progress cfg in
      Fmt.pr "campaign: %d cases, %d failing, %d buckets (%d fresh)@."
        report.Campaign.cases report.failing_cases
        (List.length report.buckets) report.fresh;
      List.iter
        (fun (b : Campaign.bucket) ->
          Fmt.pr "  %-52s x%-4d %s@."
            (Fingerprint.to_string b.fingerprint)
            b.count
            (if b.fresh then "FRESH" else "known");
          Fmt.pr "    first seed %d: %s@." b.first_seed b.info;
          (match b.shrunk_gates with
          | Some g -> Fmt.pr "    shrunk to %d gates@." g
          | None -> ());
          (match b.repro_path with
          | Some p -> Fmt.pr "    repro: %s@." p
          | None -> ());
          match b.replay_deterministic with
          | Some true -> Fmt.pr "    replay: deterministic@."
          | Some false -> Fmt.pr "    replay: NON-DETERMINISTIC@."
          | None -> ())
        report.buckets;
      if report.fresh > 0 then
        Diag.fail
          (Diag.Invariant
             { what = "fuzz";
               detail =
                 Printf.sprintf "%d fresh failure fingerprint(s)" report.fresh })
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing campaign: random mutated netlists pushed \
             through lint, TILOS seeding and the full D/W iteration under \
             budget, with cross-solver differential checks, certificate \
             audits and post-phase invariants as the oracle. Failures are \
             fingerprinted, bucketed, shrunk by delta debugging to a \
             minimal reproducer, and written to the corpus for \
             $(b,minflo replay). A fresh fingerprint exits 3.")
    Term.(const run $ seed_arg $ iterations_arg $ corpus_arg $ list_faults_arg
          $ fuzz_fault_arg $ fault_seed_arg $ factor_arg $ solvers_arg
          $ no_differential_arg $ no_shrink_arg $ shrink_checks_arg
          $ isolate_arg $ timeout_arg $ max_gates_arg $ known_arg
          $ known_from_arg $ quiet_arg)

(* ---------- replay ---------- *)

let replay_cmd =
  let paths_arg =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"REPRO"
             ~doc:"Reproducer files, or directories of them.")
  in
  let run paths =
    Logs.set_level (Some Logs.Error);
    let files =
      List.concat_map
        (fun p ->
          if Sys.file_exists p && Sys.is_directory p then Corpus.list p
          else [ p ])
        paths
    in
    if files = [] then
      Diag.fail
        (Diag.Io_error
           { file = String.concat " " paths; msg = "no .repro files found" });
    let bad = ref 0 in
    List.iter
      (fun f ->
        match Campaign.replay f with
        | Error e -> Diag.fail e
        | Ok r ->
          let ok = r.Campaign.reproduced && r.deterministic in
          if not ok then incr bad;
          Fmt.pr "%-56s %s@." (Filename.basename f)
            (if not r.reproduced then "NOT REPRODUCED"
             else if not r.deterministic then "NON-DETERMINISTIC"
             else "reproduced");
          if not r.reproduced then begin
            Fmt.pr "    expected: %s@."
              (Fingerprint.to_string r.repro.Corpus.fingerprint);
            if r.observed = [] then Fmt.pr "    observed: (clean run)@."
            else
              List.iter
                (fun fp ->
                  Fmt.pr "    observed: %s@." (Fingerprint.to_string fp))
                r.observed
          end)
      files;
    if !bad > 0 then
      Diag.fail
        (Diag.Invariant
           { what = "replay";
             detail =
               Printf.sprintf "%d of %d reproducer(s) did not reproduce"
                 !bad (List.length files) })
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-run stored reproducers bit-deterministically (the oracle's \
             budgets are iteration- and pivot-based, never wall clock) and \
             verify each still yields its stored failure fingerprint, \
             twice. A lost or flaky fingerprint exits 3; a malformed \
             reproducer exits 2.")
    Term.(const run $ paths_arg)

(* ---------- serve / client / loadgen / chaosproxy ---------- *)

let socket_arg =
  Arg.(value & opt string "minflo.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix socket the daemon listens on.")

let endpoint_conv =
  let parse s =
    match Serve_transport.parse s with
    | Ok e -> Ok e
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    (parse, fun ppf e -> Fmt.string ppf (Serve_transport.to_string e))

(* client-side endpoint selection: --tcp HOST:PORT wins over --socket *)
let client_endpoint socket tcp =
  match tcp with
  | Some e -> e
  | None -> Serve_transport.Unix_sock socket

let client_tcp_arg =
  Arg.(value & opt (some endpoint_conv) None
       & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"Connect over TCP instead of the unix socket.")

let retries_arg =
  Arg.(value & opt int 3
       & info [ "retries" ] ~docv:"N"
           ~doc:"Total connection/request attempts before giving up with a \
                 typed error; transport failures (connect-refused, \
                 net-timeout, torn-response) are retried with exponential \
                 backoff and jitter, daemon responses never are.")

let backoff_arg =
  Arg.(value & opt float 0.1
       & info [ "backoff" ] ~docv:"S"
           ~doc:"First retry delay in seconds; doubles per retry, jittered.")

let net_seed_arg =
  Arg.(value & opt int 0
       & info [ "retry-seed" ] ~docv:"N"
           ~doc:"Seed for the retry jitter stream (reproducible runs).")

let serve_cmd =
  let run_dir =
    Arg.(value & opt string "minflo-serve"
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Run directory: the crash-safe journal \
                   ($(docv)/journal.jsonl, advisory-locked so a second \
                   daemon on the same directory fails fast) and per-job \
                   checkpoints. Restarting on the same directory recovers \
                   accepted-but-unfinished jobs and the result cache from \
                   the journal.")
  in
  let jobs =
    Arg.(value & opt int 2
         & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Concurrent worker processes.")
  in
  let queue =
    Arg.(value & opt int 16
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission queue capacity; submissions beyond it are \
                   rejected with a typed $(b,overloaded) response instead \
                   of queueing unboundedly.")
  in
  let timeout =
    Arg.(value & opt (some float) (Some 300.0)
         & info [ "timeout" ] ~docv:"S"
             ~doc:"Hard per-attempt wall-clock limit for one job; a worker \
                   past it is SIGKILLed and the job retried as a transient \
                   failure.")
  in
  let retries =
    Arg.(value & opt int 2
         & info [ "retries" ] ~docv:"N"
             ~doc:"Extra attempts for transiently failing jobs (timeouts, \
                   worker crashes), with exponential backoff; deterministic \
                   failures are quarantined instead.")
  in
  let no_preflight =
    Arg.(value & flag
         & info [ "no-preflight" ]
             ~doc:"Skip the admission-time lint gate.")
  in
  let tcp =
    Arg.(value & opt (some string) None
         & info [ "tcp" ] ~docv:"HOST:PORT"
             ~doc:"Also listen on this TCP endpoint (port 0 lets the \
                   kernel pick; the actual address is journaled in the \
                   $(b,serve-start) event's $(b,tcp) field). The unix \
                   socket stays active either way.")
  in
  let io_timeout =
    Arg.(value & opt float 30.0
         & info [ "io-timeout" ] ~docv:"S"
             ~doc:"Per-connection read/write deadline: a peer stalled \
                   mid-request, or not reading its response, this long is \
                   disconnected. Parked $(b,result --wait) connections are \
                   exempt.")
  in
  let watchdog =
    Arg.(value & opt float 60.0
         & info [ "watchdog" ] ~docv:"S"
             ~doc:"Worker liveness deadline: a worker whose event pipe \
                   stays silent (no events, no heartbeats) this long is \
                   SIGKILLed and its job requeued as a transient failure. \
                   0 disables.")
  in
  let cache_bytes =
    Arg.(value & opt int (64 * 1024 * 1024)
         & info [ "cache-bytes" ] ~docv:"BYTES"
             ~doc:"Byte budget for the in-memory result cache; past it the \
                   least recently used results are evicted (still served \
                   from the journal, counted by the $(b,evictions) perf \
                   counter).")
  in
  let run socket tcp dir jobs queue timeout watchdog io_timeout cache_bytes
      retries no_preflight fault_sites fault_count fault_after =
    (* io.* sites arm the ambient storage layer under the daemon's journal
       writers — how the disk-smoke drives the degraded read-only mode *)
    ignore
      (make_fault_plan ?count:fault_count ~after:fault_after fault_sites);
    match
      Serve.run
        ~config:
          { Serve.socket_path = socket;
            tcp;
            run_dir = dir;
            parallel = jobs;
            queue_capacity = queue;
            timeout_seconds = timeout;
            watchdog_seconds = (if watchdog > 0.0 then Some watchdog else None);
            io_timeout_seconds = io_timeout;
            cache_bytes;
            retries;
            backoff_base = 0.5;
            preflight = not no_preflight }
        ()
    with
    | Ok () -> ()
    | Error e -> Diag.fail e
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the sizing daemon: accept jobs over a unix socket (and \
             optionally TCP), schedule them across supervised worker \
             processes with admission control, per-request budgets, a \
             worker liveness watchdog, per-connection I/O deadlines, \
             idempotent result caching under a byte budget, \
             journal-backed crash recovery and graceful drain on SIGTERM \
             (or the $(b,drain) op).")
    Term.(const run $ socket_arg $ tcp $ run_dir $ jobs $ queue $ timeout
          $ watchdog $ io_timeout $ cache_bytes $ retries $ no_preflight
          $ fault_arg $ fault_count_arg $ fault_after_arg)

(* map a daemon response to the CLI's stable exit codes *)
let client_exit_code response =
  if Serve_json.bool_field "ok" response = Some true then 0
  else
    match Serve_json.str_field "code" response with
    | Some ("bad-request" | "unknown-job") -> 2
    | Some ("internal" | "storage-error") -> 3
    | _ -> 1

let client_cmd =
  let action =
    Arg.(required
         & pos 0
             (some
                (enum
                   [ ("submit", `Submit); ("status", `Status);
                     ("result", `Result); ("cancel", `Cancel);
                     ("stats", `Stats); ("health", `Health);
                     ("drain", `Drain) ]))
             None
         & info [] ~docv:"ACTION"
             ~doc:"One of $(b,submit) CIRCUIT, $(b,status) JOB, \
                   $(b,result) JOB, $(b,cancel) JOB, $(b,stats), \
                   $(b,health), $(b,drain).")
  in
  let operand =
    Arg.(value & pos 1 (some string) None
         & info [] ~docv:"CIRCUIT|JOB"
             ~doc:"The circuit to submit, or the job id to query.")
  in
  let wait =
    Arg.(value & flag
         & info [ "wait" ]
             ~doc:"With $(b,result): block until the job is terminal.")
  in
  let sleep =
    Arg.(value & opt float 0.0
         & info [ "sleep" ] ~docv:"S"
             ~doc:"With $(b,submit): artificial pre-solve latency (load \
                   testing).")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"S"
             ~doc:"Per-attempt network deadline. A daemon that dies \
                   mid-$(b,--wait), or stalls, yields a typed \
                   $(b,net-timeout) error and exit code 1 instead of \
                   hanging forever. Default: 30s, except $(b,result \
                   --wait) which waits indefinitely unless this is set.")
  in
  let run socket tcp action operand factor solver max_seconds max_iterations
      max_pivots wait sleep timeout retries backoff retry_seed =
    let need what =
      match operand with
      | Some v -> v
      | None ->
        Fmt.epr "minflo client: this action requires a %s operand@." what;
        exit 2
    in
    let req =
      match action with
      | `Submit ->
        Serve_protocol.Submit
          { Serve_protocol.circuit = need "circuit";
            factor;
            solver;
            max_seconds;
            max_iterations;
            max_pivots;
            sleep_seconds = sleep }
      | `Status -> Serve_protocol.Status (need "job id")
      | `Result -> Serve_protocol.Result { id = need "job id"; wait }
      | `Cancel -> Serve_protocol.Cancel (need "job id")
      | `Stats -> Serve_protocol.Stats
      | `Health -> Serve_protocol.Health
      | `Drain -> Serve_protocol.Drain
    in
    let waiting = match req with Serve_protocol.Result r -> r.wait | _ -> false in
    let retry =
      { Serve_client.attempts =
          (* an explicit deadline on a blocking wait bounds the TOTAL
             wait, so it must not be multiplied by retries *)
          (if waiting && timeout <> None then 1 else max 1 retries);
        backoff_base = backoff;
        timeout =
          (match timeout with
          | Some t -> Some t
          | None -> if waiting then None else Some 30.0);
        seed = retry_seed }
    in
    match
      Serve_client.one_shot ~retry
        ~endpoint:(client_endpoint socket tcp)
        (Serve_protocol.request_to_json req)
    with
    | Error e -> Diag.fail e
    | Ok response ->
      print_endline (Serve_json.to_string response);
      let code = client_exit_code response in
      if code > 0 then exit code
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Talk to a running $(b,minflo serve) daemon over its unix \
             socket or TCP: submit jobs, query status and results \
             (optionally blocking), cancel, and probe \
             stats/health/drain. Transport failures are retried with \
             backoff, then reported typed: $(b,connect-refused) and \
             $(b,net-timeout) exit 1, $(b,torn-response) exits 3. Prints \
             the daemon's JSON response; exit code follows the response \
             ($(b,overloaded), $(b,draining) and pending map to 1, bad \
             input to 2, $(b,storage-error) — the daemon degraded \
             read-only after a failed journal write — to 3).")
    Term.(const run $ socket_arg $ client_tcp_arg $ action $ operand
          $ factor_arg $ solver_arg $ max_seconds_arg $ max_iterations_arg
          $ max_pivots_arg $ wait $ sleep $ timeout $ retries_arg
          $ backoff_arg $ net_seed_arg)

let loadgen_cmd =
  let circuits =
    Arg.(value & pos_all string [ "c17" ]
         & info [] ~docv:"CIRCUIT" ~doc:"Circuits to cycle through.")
  in
  let count =
    Arg.(value & opt int 4
         & info [ "count"; "n" ] ~docv:"N" ~doc:"Well-formed jobs to submit.")
  in
  let sleep =
    Arg.(value & opt float 0.0
         & info [ "sleep" ] ~docv:"S"
             ~doc:"Artificial per-job latency, to make overload and drain \
                   windows reproducible.")
  in
  let lint_bad =
    Arg.(value & opt int 0
         & info [ "lint-bad" ] ~docv:"N"
             ~doc:"Additional jobs the admission lint gate must reject.")
  in
  let tiny_budget =
    Arg.(value & opt int 0
         & info [ "tiny-budget" ] ~docv:"N"
             ~doc:"Additional jobs with a 1-iteration run budget \
                   (exercises best-feasible-on-exhaustion).")
  in
  let deadline =
    Arg.(value & opt float 300.0
         & info [ "deadline" ] ~docv:"S"
             ~doc:"Give up polling after this many seconds.")
  in
  let timeout =
    Arg.(value & opt float 30.0
         & info [ "timeout" ] ~docv:"S"
             ~doc:"Per-attempt network deadline for every request.")
  in
  let run socket tcp circuits factor solver count sleep lint_bad tiny_budget
      deadline timeout retries backoff retry_seed =
    match
      Loadgen.run
        { Loadgen.endpoint = client_endpoint socket tcp;
          retry =
            { Serve_client.attempts = max 1 retries;
              backoff_base = backoff;
              timeout = Some timeout;
              seed = retry_seed };
          circuits;
          factor;
          solver;
          count;
          sleep_seconds = sleep;
          lint_bad;
          tiny_budget;
          poll_interval = 0.05;
          deadline_seconds = deadline }
    with
    | Error e -> Diag.fail e
    | Ok summary -> print_endline (Serve_json.to_string summary)
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a deterministic job mix at a running daemon — \
             well-formed jobs, lint-rejected jobs, tiny-budget jobs — \
             poll everything to a terminal state and print a JSON summary \
             (accepted/overloaded/rejected counts, terminal states, \
             p50/p99 submit-to-terminal latency percentiles, and \
             the daemon's own stats). All traffic rides the retrying \
             client, so a run pointed through $(b,minflo chaosproxy) \
             measures end-to-end resilience. The CI serve-smoke and \
             chaos-smoke jobs assert on this output.")
    Term.(const run $ socket_arg $ client_tcp_arg $ circuits $ factor_arg
          $ solver_arg $ count $ sleep $ lint_bad $ tiny_budget $ deadline
          $ timeout $ retries_arg $ backoff_arg $ net_seed_arg)

let chaosproxy_cmd =
  let listen =
    Arg.(value & opt endpoint_conv (Serve_transport.Tcp ("127.0.0.1", 0))
         & info [ "listen" ] ~docv:"ENDPOINT"
             ~doc:"Where to accept clients: $(b,HOST:PORT) (port 0 lets \
                   the kernel pick) or $(b,unix:PATH). The actual \
                   endpoint is printed on stdout.")
  in
  let upstream =
    Arg.(value & opt endpoint_conv (Serve_transport.Unix_sock "minflo.sock")
         & info [ "upstream" ] ~docv:"ENDPOINT"
             ~doc:"The real daemon to forward to.")
  in
  let faults =
    Arg.(value & opt_all fault_site_conv []
         & info [ "inject-fault" ] ~docv:"SITE"
             ~doc:"Arm a network fault site ($(b,net.accept-drop), \
                   $(b,net.read-stall), $(b,net.torn-write), \
                   $(b,net.delayed-response)); repeatable. Validated \
                   against the same catalog as every other \
                   $(b,--inject-fault).")
  in
  let fault_count =
    Arg.(value & opt (some int) None
         & info [ "fault-count" ] ~docv:"N"
             ~doc:"Each armed site fires at most N times (default: every \
                   visit).")
  in
  let fault_prob =
    Arg.(value & opt (some float) None
         & info [ "fault-prob" ] ~docv:"P"
             ~doc:"Each visit fires with probability P, drawn from the \
                   seeded stream (default 1.0).")
  in
  let seed =
    Arg.(value & opt int 0
         & info [ "fault-seed" ] ~docv:"N"
             ~doc:"Seed for probabilistic firing; a chaos run replays \
                   exactly from its seed.")
  in
  let delay =
    Arg.(value & opt float 0.2
         & info [ "delay" ] ~docv:"S"
             ~doc:"Stall/delay duration injected by $(b,net.read-stall) \
                   and $(b,net.delayed-response).")
  in
  let report =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE"
             ~doc:"On exit, write a JSON object of per-site fired counts \
                   here — CI asserts the schedule actually fired.")
  in
  let run listen upstream faults fault_count fault_prob seed delay report =
    List.iter
      (fun site ->
        if not (String.length site > 4 && String.sub site 0 4 = "net.") then begin
          Fmt.epr
            "minflo chaosproxy: %s is not a network fault site (want net.*)@."
            site;
          exit 2
        end)
      faults;
    match
      Chaosproxy.run
        ~config:
          { Chaosproxy.listen;
            upstream;
            faults =
              List.map
                (fun site ->
                  { Chaosproxy.site; count = fault_count; prob = fault_prob })
                faults;
            seed;
            delay_seconds = delay;
            connect_timeout = 5.0;
            report_path = report }
        ()
    with
    | Ok () -> ()
    | Error e -> Diag.fail e
  in
  Cmd.v
    (Cmd.info "chaosproxy"
       ~doc:"Interpose deterministic network faults between real clients \
             and a real $(b,minflo serve) daemon: dropped accepts, \
             stalled requests, torn response lines, delayed responses — \
             each a seeded, replayable schedule. Runs until SIGTERM, \
             then writes the fired-count report. The end-to-end chaos \
             tests drive $(b,minflo loadgen) through this proxy and \
             assert every accepted job still resolves bit-identically to \
             a fault-free run.")
    Term.(const run $ listen $ upstream $ faults $ fault_count $ fault_prob
          $ seed $ delay $ report)

(* ---------- torture ---------- *)

(* The concrete crash-point torture workload: a checkpointed batch run, a
   proof-carrying trace, and a serve-style journal segment — every durable
   writer in the stack — driven through {!Torture.run}, which replays it
   once per write boundary with a simulated process death pinned there and
   then checks the recovery invariants against the wreckage. *)
let torture_cmd =
  let dir_arg =
    Arg.(value & opt (some string) None
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"State directory — destroyed and rebuilt before every \
                   simulation (default: a fresh directory under the system \
                   temp dir).")
  in
  let circuit_pos =
    Arg.(value & pos 0 string "c432"
         & info [] ~docv:"CIRCUIT"
             ~doc:"Circuit the workload sizes (default c432).")
  in
  let factors_arg =
    Arg.(value & opt (list float) [ 0.55; 0.6 ]
         & info [ "factors" ] ~docv:"F,F"
             ~doc:"Delay factors of the batch grid (one job per factor).")
  in
  let iters_arg =
    Arg.(value & opt int 20
         & info [ "max-iterations" ] ~docv:"N"
             ~doc:"Per-job iteration budget — bounds each simulation's \
                   runtime while still crossing checkpoint and trace \
                   boundaries.")
  in
  let max_points_arg =
    Arg.(value & opt int 0
         & info [ "max-crash-points" ] ~docv:"N"
             ~doc:"Cap the number of simulations, striding evenly over the \
                   boundary range (0 = every boundary in both modes).")
  in
  let min_points_arg =
    Arg.(value & opt int 50
         & info [ "min-crash-points" ] ~docv:"N"
             ~doc:"Fail (exit 3) unless at least $(docv) distinct crash \
                   points actually took effect — guards against the \
                   workload shrinking under the harness.")
  in
  let seed_arg =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"N" ~doc:"Fault-plan seed for each child.")
  in
  let run dir circuit_spec factors max_iterations max_points min_points seed =
    if factors = [] then
      Diag.fail (Diag.Invariant { what = "torture"; detail = "empty --factors" });
    let dir =
      match dir with
      | Some d -> d
      | None ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "minflo-torture-%d" (Unix.getpid ()))
    in
    let batch_dir = Filename.concat dir "batch" in
    let serve_dir = Filename.concat dir "serve" in
    let batch_journal = Filename.concat batch_dir "journal.jsonl" in
    let serve_journal = Filename.concat serve_dir "journal.jsonl" in
    let trace_path = Filename.concat dir "trace.jsonl" in
    let rec rm_rf path =
      match Unix.lstat path with
      | exception Unix.Unix_error _ -> ()
      | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter
          (fun n -> rm_rf (Filename.concat path n))
          (try Sys.readdir path with Sys_error _ -> [||]);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
      | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    in
    let rec mkdirs d =
      if not (Sys.file_exists d) then begin
        mkdirs (Filename.dirname d);
        try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
      end
    in
    let nl = circuit circuit_spec in
    let model = build_model `Gate nl in
    let trace_factor = List.hd factors in
    let trace_target = trace_factor *. Sweep.dmin model in
    let limits = Budget.limits ~max_iterations () in
    let grid =
      Job.cross ~circuits:[ circuit_spec ] ~factors ~solvers:[ `Simplex ]
    in
    (* in-process, sequential, no retries: every write the workload does
       happens in this (or the forked child's) process in a deterministic
       order, so boundary numbering is stable across replays *)
    let batch_config ~resume =
      { Batch.checkpoint_dir = Some batch_dir;
        resume;
        supervise =
          { Supervisor.default_config with
            parallel = 1;
            retries = 0;
            timeout_seconds = None;
            watchdog_seconds = None;
            isolate = false };
        differential = false;
        diff_tolerance = Differential.default_tolerance;
        engine = { Minflotransit.default_options with limits };
        fault_seed = None;
        make_fault = (fun _ -> None);
        preflight = false }
    in
    let run_batch ~resume = Batch.run ~config:(batch_config ~resume) grid in
    let serve_keys = [ "torture-done"; "torture-pending" ] in
    (* a serve-journal segment shaped exactly like the daemon's: two
       accepted jobs, one with a terminal result — so recovery must
       reconstruct one done and one requeued job from any crash prefix *)
    let write_serve_segment () =
      match Journal.open_append serve_journal with
      | Error e -> Diag.fail e
      | Ok jr ->
        List.iter
          (fun key ->
            Journal.event jr ~job:key
              ~fields:
                [ Journal.field_str "circuit" circuit_spec;
                  Journal.field_float "factor" trace_factor;
                  Journal.field_str "solver" "simplex" ]
              "serve-accepted")
          serve_keys;
        Journal.event jr ~job:"torture-done"
          ~fields:
            [ Journal.field_float "area" 42.0;
              Journal.field_float "area_ratio" 1.5;
              Journal.field_float "cp" trace_target;
              Journal.field_float "target" trace_target;
              Journal.field_bool "met" true;
              Journal.field_int "iterations" 3;
              Journal.field_float "saving_pct" 7.5;
              Journal.field_str "stop" "converged";
              Journal.field_bool "resumed" false ]
          "job-result";
        Journal.close jr
    in
    let write_trace () =
      let steps = ref [] in
      let r =
        Minflotransit.optimize
          ~options:{ Minflotransit.default_options with limits }
          ~on_step:(fun s -> steps := s :: !steps)
          model ~target:trace_target
      in
      match Io.create_sink trace_path with
      | Error e -> Diag.fail e
      | Ok sink -> (
        let w =
          Trace.create sink model ~circuit:(Netlist.name nl)
            ~target:trace_target
        in
        Trace.record_tilos w r.tilos;
        List.iter (Trace.record_step w) (List.rev !steps);
        Trace.record_result w r;
        Io.sink_close sink;
        match Trace.error w with Some e -> Diag.fail e | None -> ())
    in
    let setup () =
      rm_rf dir;
      mkdirs batch_dir;
      mkdirs serve_dir
    in
    let workload () =
      (match run_batch ~resume:false with
      | Ok _ -> ()
      | Error e -> Diag.fail e);
      write_trace ();
      write_serve_segment ()
    in
    (* fault-free baseline: the areas a resumed run must reproduce bit for
       bit, and a sanity check that the workload itself is healthy *)
    setup ();
    workload ();
    let baseline = Journal.completed batch_journal in
    if Hashtbl.length baseline <> List.length grid then
      Diag.fail
        (Diag.Invariant
           { what = "torture-baseline";
             detail =
               Printf.sprintf "%d of %d jobs completed fault-free"
                 (Hashtbl.length baseline) (List.length grid) });
    (match Trace.audit_file model ~target:trace_target trace_path with
    | Ok [] -> ()
    | Ok fs ->
      Diag.fail
        (Diag.Invariant
           { what = "torture-baseline";
             detail =
               Printf.sprintf "fault-free trace rejected: %s"
                 (Lint_report.render fs) })
    | Error e -> Diag.fail e);
    let verify ~boundary:_ ~mode:_ =
      let violations = ref [] in
      let add fmt =
        Printf.ksprintf (fun s -> violations := s :: !violations) fmt
      in
      (* every surviving journal line is a complete JSON record: a line
         torn by the crash must never parse as a (wrong) event *)
      List.iter
        (fun journal ->
          List.iter
            (fun (_event, line) ->
              match Serve_json.parse line with
              | Ok _ -> ()
              | Error msg ->
                add "%s: surviving line does not parse (%s): %s" journal msg
                  line)
            (Journal.scan journal))
        [ batch_journal; serve_journal ];
      (* checkpoints load or are rejected typed — never an exception, never
         a half-parse *)
      (match Sys.readdir batch_dir with
      | exception Sys_error _ -> ()
      | entries ->
        Array.iter
          (fun name ->
            if Filename.check_suffix name ".ckpt" then begin
              let p = Filename.concat batch_dir name in
              match Checkpoint.load p with
              | Ok _ | Error _ -> ()
              | exception e ->
                add "checkpoint %s: load raised %s" p (Printexc.to_string e)
            end)
          entries);
      (* a resumed run completes every job with the baseline's exact area *)
      (match run_batch ~resume:true with
      | Error e -> add "resume: batch failed: %s" (Diag.to_string e)
      | Ok s ->
        if s.Batch.failed > 0 then
          add "resume: %d jobs failed after crash" s.Batch.failed;
        let completed = Journal.completed batch_journal in
        Hashtbl.iter
          (fun id area ->
            match Hashtbl.find_opt completed id with
            | None -> add "resume: job %s missing from resumed journal" id
            | Some area' when area' <> area ->
              add "resume: job %s area drifted: %h <> %h" id area' area
            | Some _ -> ())
          baseline);
      (* reopening the serve journal sweeps its directory like a restarting
         daemon would; the batch reopen above already swept batch_dir *)
      (match Journal.open_append serve_journal with
      | Ok jr -> Journal.close jr
      | Error e -> add "serve journal reopen: %s" (Diag.to_string e));
      let rec find_tmp d =
        match Sys.readdir d with
        | exception Sys_error _ -> ()
        | entries ->
          Array.iter
            (fun name ->
              let p = Filename.concat d name in
              if try Sys.is_directory p with Sys_error _ -> false then
                find_tmp p
              else if Filename.check_suffix name ".tmp" then
                add "stale tmp survived journal reopen: %s" p)
            entries
      in
      find_tmp dir;
      (* a surviving trace prefix audits as (at worst) truncation damage,
         never as garbage or a wrong claim *)
      if Sys.file_exists trace_path then begin
        match Trace.audit_file model ~target:trace_target trace_path with
        | Error e -> add "trace: unreadable after crash: %s" (Diag.to_string e)
        | Ok fs ->
          List.iter
            (fun (f : Lint_finding.t) ->
              if f.rule.Lint_rule.id <> "MF210" then
                add "trace: unexpected finding %s after crash"
                  f.rule.Lint_rule.id)
            fs
      end;
      (* the serve journal recovers to a coherent job table *)
      List.iter
        (fun (key, state) ->
          if not (List.mem key serve_keys) then
            add "recovery: unknown job key %s" key;
          if not (List.mem state [ "queued"; "done" ]) then
            add "recovery: job %s in impossible state %s" key state)
        (Serve.recovery_snapshot serve_journal);
      List.rev !violations
    in
    let progress d t =
      if d mod 20 = 0 || d = t then Fmt.pr "torture: %d/%d simulations@." d t
    in
    let max_sims = if max_points <= 0 then None else Some max_points in
    let report =
      match
        Torture.run ~seed ?max_sims ~progress ~setup ~workload ~verify ()
      with
      | Ok r -> r
      | Error e -> Diag.fail e
    in
    rm_rf dir;
    let points = Torture.crash_points report in
    let violations = Torture.violations report in
    let swallowed =
      List.length
        (List.filter
           (fun s -> s.Torture.sim_outcome = Torture.Crash_swallowed)
           report.Torture.sims)
    in
    Fmt.pr
      "torture: %d write boundaries, %d simulations, %d crash points (%d \
       crash-swallowed), %d violations@."
      report.Torture.total_boundaries
      (List.length report.Torture.sims)
      points swallowed (List.length violations);
    List.iter
      (fun (s, v) ->
        Fmt.pr "VIOLATION [boundary %d, %s]: %s@." s.Torture.sim_boundary
          (Torture.mode_to_string s.Torture.sim_mode)
          v)
      violations;
    if violations <> [] then
      Diag.fail
        (Diag.Invariant
           { what = "torture";
             detail =
               Printf.sprintf "%d recovery invariant violations"
                 (List.length violations) });
    if points < min_points then
      Diag.fail
        (Diag.Invariant
           { what = "torture";
             detail =
               Printf.sprintf "only %d crash points exercised (need %d)"
                 points min_points })
  in
  Cmd.v
    (Cmd.info "torture"
       ~doc:"Crash-point torture of the persistence stack: run a \
             checkpointed batch + proof-carrying trace + serve-journal \
             workload once to enumerate every write boundary it crosses, \
             then replay it once per boundary with a simulated process \
             death pinned exactly there (clean and torn-write modes) and \
             assert the recovery invariants against the wreckage — the \
             journal seals or drops the torn line, a resumed run \
             reproduces the baseline areas bit for bit, checkpoints load \
             or are rejected typed, surviving traces audit as truncation \
             at worst, stale .tmp files are swept on reopen, and the \
             serve journal recovers a coherent job table. Any violation \
             exits 3.")
    Term.(const run $ dir_arg $ circuit_pos $ factors_arg $ iters_arg
          $ max_points_arg $ min_points_arg $ seed_arg)

let main_cmd =
  let doc = "MINFLOTRANSIT: min-cost-flow based transistor sizing" in
  Cmd.group (Cmd.info "minflo" ~version:"1.0.0" ~doc)
    [ gen_cmd; stats_cmd; sta_cmd; size_cmd; sweep_cmd; batch_cmd; bench_cmd;
      verify_cmd; convert_cmd; strash_cmd; power_cmd; lint_cmd; audit_cert_cmd;
      audit_run_cmd; fuzz_cmd; replay_cmd; serve_cmd; client_cmd; loadgen_cmd;
      chaosproxy_cmd; torture_cmd ]

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  match Cmd.eval ~catch:false main_cmd with
  | code -> exit code
  | exception Diag.Error_exn e ->
    Fmt.epr "minflo: error [%s]: %s@." (Diag.error_code e) (Diag.to_string e);
    exit (exit_code_of_error e)
