(* File-based workflow: how this tool is meant to be used on real netlists.

   1. emit a circuit as ISCAS85 .bench and as structural Verilog,
   2. read both back,
   3. *formally* verify (BDD equivalence) that nothing changed,
   4. size the circuit loaded from the file.

   Drop a real ISCAS85 .bench or gate-level .v next to this file and point
   the loader at it — everything downstream is identical.

   Run with: dune exec examples/file_workflow.exe *)

open Minflo

let () =
  let nl = Generators.alu ~width:4 () in
  let dir = Filename.get_temp_dir_name () in
  let bench_path = Filename.concat dir "alu4.bench" in
  let verilog_path = Filename.concat dir "alu4.v" in

  (* 1. write *)
  Bench_format.write_file bench_path nl;
  Verilog_format.write_file verilog_path nl;
  Printf.printf "wrote %s and %s\n" bench_path verilog_path;

  (* 2. read back *)
  let from_bench = Bench_format.parse_file_exn bench_path in
  let from_verilog = Verilog_format.parse_file_exn verilog_path in

  (* 3. formal equivalence via BDDs — not just simulation *)
  let verdict name other =
    match Check.equivalent nl other with
    | Check.Equivalent -> Printf.printf "%s: formally equivalent\n" name
    | Check.Differ { output_index; counterexample } ->
      Printf.printf "%s: DIFFERS at output %d under {%s}\n" name output_index
        (String.concat "; "
           (List.map (fun (n, b) -> Printf.sprintf "%s=%b" n b) counterexample));
      exit 1
    | Check.Inputs_mismatch (a, b) ->
      Printf.printf "%s: input arity %d vs %d\n" name a b;
      exit 1
    | Check.Outputs_mismatch (a, b) ->
      Printf.printf "%s: output arity %d vs %d\n" name a b;
      exit 1
  in
  verdict "bench round-trip" from_bench;
  verdict "verilog round-trip" from_verilog;

  (* 4. size the circuit that came from the file *)
  let model = Elmore.of_netlist Tech.default_130nm from_bench in
  let target = 0.5 *. Sweep.dmin model in
  let r = Minflotransit.optimize model ~target in
  Printf.printf
    "sized from file: met=%b, %d iterations, %.2f%% area saving over TILOS\n"
    r.met r.iterations r.area_saving_pct;
  Sys.remove bench_path;
  Sys.remove verilog_path
