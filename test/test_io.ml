(* Storage fault injection: every io.* site is provably reachable
   (fired-count > 0) through the instrumented Io layer, and every durable
   writer — journal append, checkpoint, trace record, corpus repro, report
   file — degrades into a typed diagnostic under it: no exception escapes,
   and no half-record ever parses back as a complete one. Plus a miniature
   synthetic crash-point torture run over a journal + atomic-replace
   workload. *)

module Diag = Minflo_robust.Diag
module Fault = Minflo_robust.Fault
module Io = Minflo_robust.Io
module Torture = Minflo_robust.Torture
module Journal = Minflo_runner.Journal
module Checkpoint = Minflo_runner.Checkpoint
module Trace = Minflo_lint.Trace
module Rule = Minflo_lint.Rule
module Finding = Minflo_lint.Finding
module Corpus = Minflo_fuzz.Corpus
module Fingerprint = Minflo_fuzz.Fingerprint
module Oracle = Minflo_fuzz.Oracle
module Generators = Minflo_netlist.Generators
module Tilos = Minflo_sizing.Tilos
module Minflotransit = Minflo_sizing.Minflotransit
module Elmore = Minflo_tech.Elmore
module Tech = Minflo_tech.Tech
module Json = Minflo_util.Json

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let fresh_dir name =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "minflo-io-%s-%d" name (Unix.getpid ()))
  in
  rm_rf d;
  Unix.mkdir d 0o755;
  d

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Arm [sites] on the ambient Io layer, run [f], always disarm — and hand
   back the plan so callers can assert fired counts. *)
let with_fault ?count ?(after = 0) sites f =
  let plan = Fault.create ~seed:0 () in
  List.iter
    (fun site ->
      Fault.arm plan ~site ?count ~after
        (Fault.Fail (Diag.Fault_injected { site })))
    sites;
  Io.reset ();
  Io.set_fault (Some plan);
  let r =
    Fun.protect
      ~finally:(fun () ->
        Io.set_fault None;
        Io.reset ())
      f
  in
  (r, plan)

let fired plan site = Fault.fired plan ~site

(* ---------- the six io.* sites, each through a real writer ---------- *)

let test_enospc_report () =
  let dir = fresh_dir "enospc" in
  let path = Filename.concat dir "report.sarif" in
  let r, plan =
    with_fault [ "io.enospc" ] (fun () -> Io.write_file path "{\"runs\": []}")
  in
  (match r with
  | Error (Diag.Disk_full { file }) -> check bool "path" true (file = path)
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok () -> Alcotest.fail "write succeeded under enospc");
  check bool "io.enospc fired" true (fired plan "io.enospc" > 0);
  rm_rf dir

let test_short_write () =
  let dir = fresh_dir "short" in
  let path = Filename.concat dir "out.txt" in
  let r, plan =
    with_fault [ "io.short-write" ] (fun () ->
        Io.write_file path (String.make 64 'x'))
  in
  (match r with
  | Error (Diag.Io_error { msg; _ }) ->
    check bool "mentions short write" true
      (String.length msg >= 11 && String.sub msg 0 11 = "short write")
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok () -> Alcotest.fail "write succeeded under short-write");
  check bool "io.short-write fired" true (fired plan "io.short-write" > 0);
  (* the injected short write really is a prefix, not the whole payload *)
  check int "half landed" 32 (String.length (read_file path));
  rm_rf dir

let test_fsync_lost () =
  let dir = fresh_dir "fsync" in
  let path = Filename.concat dir "log.jsonl" in
  let r, plan =
    with_fault [ "io.fsync-lost" ] (fun () ->
        match Io.create_sink path with
        | Error e -> Alcotest.failf "create_sink: %s" (Diag.to_string e)
        | Ok sink ->
          let w = Io.sink_write_line sink "line" in
          let f = Io.sink_fsync sink in
          Io.sink_close sink;
          (w, f))
  in
  (* the lie of a lost fsync: the call claims success *)
  (match r with
  | Ok (), Ok () -> ()
  | _ -> Alcotest.fail "write/fsync reported failure");
  check bool "io.fsync-lost fired" true (fired plan "io.fsync-lost" > 0);
  rm_rf dir

let test_eio_read () =
  let dir = fresh_dir "eio" in
  let path = Filename.concat dir "in.txt" in
  (match Io.write_file path "content" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "setup write: %s" (Diag.to_string e));
  let r, plan = with_fault [ "io.eio-read" ] (fun () -> Io.read_file path) in
  (match r with
  | Error (Diag.Io_error _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok _ -> Alcotest.fail "read succeeded under eio");
  check bool "io.eio-read fired" true (fired plan "io.eio-read" > 0);
  rm_rf dir

let test_torn_rename_and_sweep () =
  let dir = fresh_dir "torn" in
  let path = Filename.concat dir "state.ckpt" in
  (match Io.atomic_replace path "old" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "setup: %s" (Diag.to_string e));
  let r, plan =
    with_fault [ "io.torn-rename" ] (fun () -> Io.atomic_replace path "new")
  in
  (match r with
  | Error (Diag.Io_error _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok () -> Alcotest.fail "replace succeeded under torn-rename");
  check bool "io.torn-rename fired" true (fired plan "io.torn-rename" > 0);
  (* the replace never happened: the destination still holds the old
     content, and the orphaned temp file is left for the GC *)
  check bool "original intact" true (read_file path = "old");
  check bool "tmp left behind" true (Sys.file_exists (path ^ ".tmp"));
  let swept = Io.sweep_tmp dir in
  check bool "sweep removed it" true (swept = [ path ^ ".tmp" ]);
  check bool "tmp gone" true (not (Sys.file_exists (path ^ ".tmp")));
  check bool "original still intact" true (read_file path = "old");
  rm_rf dir

let test_crash_freezes_layer () =
  let dir = fresh_dir "crash" in
  let path = Filename.concat dir "a.txt" in
  let r, plan =
    with_fault ~count:1 [ "io.crash-after-write" ] (fun () ->
        (match Io.write_file path "first" with
        | exception Io.Simulated_crash _ -> ()
        | _ -> Alcotest.fail "crash did not fire");
        check bool "layer frozen" true (Io.crashed ());
        (* even if some catch-all swallowed the crash, every further
           instrumented op re-raises: the disk state is pinned *)
        match Io.write_file (Filename.concat dir "b.txt") "second" with
        | exception Io.Simulated_crash _ -> ()
        | _ -> Alcotest.fail "frozen layer accepted a write")
  in
  r;
  check bool "io.crash-after-write fired" true
    (fired plan "io.crash-after-write" > 0);
  (* clean crash mode: the write itself completed before the death *)
  check bool "write landed before crash" true (read_file path = "first");
  check bool "reset unfreezes" true (not (Io.crashed ()));
  rm_rf dir

(* ---------- journal under storage faults ---------- *)

let test_journal_enospc () =
  let dir = fresh_dir "journal-enospc" in
  let path = Filename.concat dir "journal.jsonl" in
  let jr =
    match Journal.open_append path with
    | Ok jr -> jr
    | Error e -> Alcotest.failf "open: %s" (Diag.to_string e)
  in
  Journal.event jr ~job:"a" "job-start";
  let (), plan =
    with_fault [ "io.enospc" ] (fun () ->
        (match Journal.event_checked jr ~job:"a" "job-ok" with
        | Error (Diag.Disk_full _) -> ()
        | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
        | Ok () -> Alcotest.fail "append succeeded under enospc");
        (* the unchecked variant must swallow the failure but remember it *)
        Journal.event jr ~job:"a" "job-retry";
        match Journal.last_error jr with
        | Some (Diag.Disk_full _) -> ()
        | _ -> Alcotest.fail "last_error not sticky")
  in
  check bool "io.enospc fired" true (fired plan "io.enospc" > 0);
  Journal.event jr ~job:"a" "job-done";
  Journal.close jr;
  (* only the writes that landed are visible; nothing half-written *)
  let events = List.map fst (Journal.scan path) in
  check bool "events" true (events = [ "job-start"; "job-done" ]);
  rm_rf dir

let test_journal_drops_torn_lines () =
  let dir = fresh_dir "journal-torn" in
  let path = Filename.concat dir "journal.jsonl" in
  let jr =
    match Journal.open_append path with
    | Ok jr -> jr
    | Error e -> Alcotest.failf "open: %s" (Diag.to_string e)
  in
  Journal.event jr ~job:"a" "job-ok";
  Journal.close jr;
  (* a crash mid-write tears the line anywhere — including right after an
     embedded object's closing brace, where a naive trailing-'}' test
     would accept the prefix as a complete record *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"event\": \"job-ok\", \"error\": {\"code\": \"numeric\"}";
  close_out oc;
  check int "torn line dropped" 1 (List.length (Journal.scan path));
  (* reopening seals the torn line; it must stay dropped, not become a
     parseable half-record *)
  (match Journal.open_append path with
  | Ok jr -> Journal.close jr
  | Error e -> Alcotest.failf "reopen: %s" (Diag.to_string e));
  check int "still dropped after seal" 1 (List.length (Journal.scan path));
  (* and a fresh append after the seal is intact *)
  (match Journal.open_append path with
  | Ok jr ->
    Journal.event jr ~job:"b" "job-start";
    Journal.close jr
  | Error e -> Alcotest.failf "reopen: %s" (Diag.to_string e));
  let events = List.map fst (Journal.scan path) in
  check bool "sealed journal appends cleanly" true
    (events = [ "job-ok"; "job-start" ]);
  rm_rf dir

let test_journal_sweeps_stale_tmp () =
  let dir = fresh_dir "journal-sweep" in
  let sub = Filename.concat dir "jobs" in
  Unix.mkdir sub 0o755;
  let stale = Filename.concat sub "c17.ckpt.tmp" in
  (match Io.write_file stale "orphan" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "setup: %s" (Diag.to_string e));
  let path = Filename.concat dir "journal.jsonl" in
  (match Journal.open_append path with
  | Ok jr -> Journal.close jr
  | Error e -> Alcotest.failf "open: %s" (Diag.to_string e));
  check bool "stale tmp swept on open" true (not (Sys.file_exists stale));
  (* the sweep is journaled, naming what it removed *)
  (match Journal.scan path with
  | [ ("tmp-swept", line) ] ->
    check bool "names the orphan" true
      (Journal.find_field line "count" = Some "1")
  | other -> Alcotest.failf "expected one tmp-swept event, got %d" (List.length other));
  rm_rf dir

(* ---------- checkpoint under storage faults ---------- *)

let sample_checkpoint () =
  { Checkpoint.circuit = "c17";
    circuit_hash = Checkpoint.hash_netlist (Generators.c17 ());
    target = 0.1 +. 0.2;
    solver = "simplex";
    fault_seed = None;
    snapshot =
      { Minflotransit.snap_iter = 3;
        snap_sizes = [| 1.0; 2.0; 3.0 |];
        snap_area = 6.0;
        snap_eta = 0.125;
        snap_osc_area = 1.0;
        snap_osc_repeats = 0;
        snap_solver = Some "simplex" };
    tilos =
      { Tilos.sizes = [| 1.0; 1.0; 1.0 |];
        met = true;
        bumps = 2;
        final_cp = 0.5;
        area = 3.0 };
    budget_iterations = 3;
    budget_pivots = 100;
    budget_elapsed = 0.25 }

let test_checkpoint_typed_failures () =
  let dir = fresh_dir "ckpt" in
  let file = Filename.concat dir "c17.ckpt" in
  let ck = sample_checkpoint () in
  (match Checkpoint.save file ck with
  | Ok () -> ()
  | Error e -> Alcotest.failf "baseline save: %s" (Diag.to_string e));
  (* disk full: typed, and the previous checkpoint survives untouched *)
  let r, plan =
    with_fault [ "io.enospc" ] (fun () ->
        Checkpoint.save file { ck with budget_iterations = 99 })
  in
  (match r with
  | Error (Diag.Disk_full _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok () -> Alcotest.fail "save succeeded under enospc");
  check bool "io.enospc fired" true (fired plan "io.enospc" > 0);
  check bool "no tmp litter" true (not (Sys.file_exists (file ^ ".tmp")));
  (match Checkpoint.load file with
  | Ok ck' -> check int "old checkpoint intact" 3 ck'.Checkpoint.budget_iterations
  | Error e -> Alcotest.failf "reload: %s" (Diag.to_string e));
  (* torn rename: same story, plus the orphan is left for the sweeper *)
  let r, _ =
    with_fault [ "io.torn-rename" ] (fun () ->
        Checkpoint.save file { ck with budget_iterations = 77 })
  in
  (match r with
  | Error (Diag.Io_error _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok () -> Alcotest.fail "save succeeded under torn-rename");
  check bool "orphan tmp present" true (Sys.file_exists (file ^ ".tmp"));
  (match Checkpoint.load file with
  | Ok ck' -> check int "old checkpoint still intact" 3 ck'.Checkpoint.budget_iterations
  | Error e -> Alcotest.failf "reload: %s" (Diag.to_string e));
  (* an unreadable disk is a typed read failure *)
  let r, _ = with_fault [ "io.eio-read" ] (fun () -> Checkpoint.load file) in
  (match r with
  | Error (Diag.Io_error _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok _ -> Alcotest.fail "load succeeded under eio");
  rm_rf dir

(* ---------- trace writer under storage faults ---------- *)

let test_trace_fails_flag_not_run () =
  let nl = Generators.c17 () in
  let model = Elmore.of_netlist Tech.default_130nm nl in
  let target = 0.5 in
  let dir = fresh_dir "trace" in
  let path = Filename.concat dir "trace.jsonl" in
  let sink =
    match Io.create_sink path with
    | Ok s -> s
    | Error e -> Alcotest.failf "create_sink: %s" (Diag.to_string e)
  in
  (* header lands fault-free; then the disk starts tearing writes *)
  let w = Trace.create sink model ~circuit:"c17" ~target in
  let (), plan =
    with_fault [ "io.short-write" ] (fun () ->
        Trace.record_tilos w
          { Tilos.sizes = Array.make 3 1.0;
            met = true;
            bumps = 0;
            final_cp = target;
            area = 3.0 })
  in
  check bool "io.short-write fired" true (fired plan "io.short-write" > 0);
  (match Trace.error w with
  | Some (Diag.Io_error _) -> ()
  | Some e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | None -> Alcotest.fail "writer did not record the failure");
  Io.sink_close sink;
  (* the surviving prefix audits as truncation damage (MF210) — the torn
     half-line never parses into a bogus record or claim *)
  (match Trace.audit_file model ~target path with
  | Error e -> Alcotest.failf "audit_file: %s" (Diag.to_string e)
  | Ok [] -> Alcotest.fail "truncated trace audited clean"
  | Ok fs ->
    List.iter
      (fun (f : Finding.t) ->
        check bool "only MF210" true (f.rule.Rule.id = "MF210"))
      fs);
  rm_rf dir

(* ---------- corpus under storage faults ---------- *)

let test_corpus_enospc () =
  let dir = fresh_dir "corpus" in
  let repro =
    { Corpus.fingerprint =
        Fingerprint.make ~phase:"engine" ~code:"numeric" ~detail:"wphase" ();
      seed = 42;
      config = Oracle.default_config;
      netlist = Generators.c17 () }
  in
  let r, plan =
    with_fault [ "io.enospc" ] (fun () -> Corpus.save ~dir repro)
  in
  (match r with
  | Error (Diag.Disk_full _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok p -> Alcotest.failf "save succeeded under enospc: %s" p);
  check bool "io.enospc fired" true (fired plan "io.enospc" > 0);
  check bool "no repro litter" true (Corpus.list dir = []);
  (* fault cleared: the same save lands *)
  (match Corpus.save ~dir repro with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "clean save: %s" (Diag.to_string e));
  rm_rf dir

(* ---------- EINTR-retrying primitives ---------- *)

let test_retry_helpers_roundtrip () =
  let r, w = Unix.pipe () in
  Io.really_write_substring w "hello";
  Unix.close w;
  let buf = Bytes.create 16 in
  let n = Io.read_retry r buf 0 16 in
  check int "read it back" 5 n;
  check bool "payload" true (Bytes.sub_string buf 0 n = "hello");
  check int "eof" 0 (Io.read_retry r buf 0 16);
  Unix.close r

(* ---------- miniature torture run ---------- *)

let test_mini_torture () =
  let dir = fresh_dir "torture" in
  let journal = Filename.concat dir "journal.jsonl" in
  let state = Filename.concat dir "state.txt" in
  let setup () =
    rm_rf dir;
    Unix.mkdir dir 0o755
  in
  let workload () =
    (match Journal.open_append journal with
    | Error e -> raise (Diag.Error_exn e)
    | Ok jr ->
      Journal.event jr ~job:"x" "job-start";
      (match Io.atomic_replace state "v1" with
      | Ok () -> ()
      | Error e -> raise (Diag.Error_exn e));
      Journal.event jr ~job:"x" "job-checkpoint";
      (match Io.atomic_replace state "v2" with
      | Ok () -> ()
      | Error e -> raise (Diag.Error_exn e));
      Journal.event jr ~job:"x" "job-ok";
      Journal.close jr)
  in
  let verify ~boundary:_ ~mode:_ =
    let violations = ref [] in
    let add fmt =
      Printf.ksprintf (fun s -> violations := s :: !violations) fmt
    in
    (* surviving journal lines parse; surviving state is a version the
       workload actually wrote (atomic replace never shows a mix) *)
    List.iter
      (fun (_, line) ->
        match Json.parse line with
        | Ok _ -> ()
        | Error m -> add "unparseable journal line (%s): %s" m line)
      (Journal.scan journal);
    if Sys.file_exists state then begin
      let c = read_file state in
      if c <> "v1" && c <> "v2" then add "state file torn: %S" c
    end;
    (* reopen sweeps any orphaned tmp *)
    (match Journal.open_append journal with
    | Ok jr -> Journal.close jr
    | Error e -> add "reopen: %s" (Diag.to_string e));
    if Sys.file_exists (state ^ ".tmp") then add "stale tmp survived reopen";
    List.rev !violations
  in
  (match Torture.run ~setup ~workload ~verify () with
  | Error e -> Alcotest.failf "torture: %s" (Diag.to_string e)
  | Ok report ->
    check bool "counted boundaries" true (report.Torture.total_boundaries > 4);
    check bool "every sim crashed" true
      (Torture.crash_points report = List.length report.Torture.sims);
    (match Torture.violations report with
    | [] -> ()
    | (s, v) :: _ ->
      Alcotest.failf "violation at boundary %d (%s): %s" s.Torture.sim_boundary
        (Torture.mode_to_string s.Torture.sim_mode)
        v));
  rm_rf dir

let () =
  Alcotest.run "io"
    [ ( "sites",
        [ Alcotest.test_case "enospc -> typed disk-full" `Quick
            test_enospc_report;
          Alcotest.test_case "short write -> typed io-error" `Quick
            test_short_write;
          Alcotest.test_case "fsync-lost claims success" `Quick test_fsync_lost;
          Alcotest.test_case "eio on read -> typed io-error" `Quick
            test_eio_read;
          Alcotest.test_case "torn rename leaves tmp, sweep collects" `Quick
            test_torn_rename_and_sweep;
          Alcotest.test_case "crash freezes the layer" `Quick
            test_crash_freezes_layer ] );
      ( "writers",
        [ Alcotest.test_case "journal append under enospc" `Quick
            test_journal_enospc;
          Alcotest.test_case "journal drops torn lines" `Quick
            test_journal_drops_torn_lines;
          Alcotest.test_case "journal sweeps stale tmp on open" `Quick
            test_journal_sweeps_stale_tmp;
          Alcotest.test_case "checkpoint failures are typed" `Quick
            test_checkpoint_typed_failures;
          Alcotest.test_case "trace failure hits the flag, not the run" `Quick
            test_trace_fails_flag_not_run;
          Alcotest.test_case "corpus save under enospc" `Quick
            test_corpus_enospc ] );
      ( "primitives",
        [ Alcotest.test_case "EINTR-retrying read/write round trip" `Quick
            test_retry_helpers_roundtrip ] );
      ( "torture",
        [ Alcotest.test_case "mini journal+checkpoint torture run" `Quick
            test_mini_torture ] ) ]
