(* Tests for the resilience layer: typed diagnostics, run budgets, the
   solver fallback chain, invariant checking and fault injection — both as
   units and threaded through the full sizing engine. *)

module Diag = Minflo_robust.Diag
module Budget = Minflo_robust.Budget
module Fallback = Minflo_robust.Fallback
module Inv = Minflo_robust.Check
module Fault = Minflo_robust.Fault
module Mcf = Minflo_flow.Mcf
module Network_simplex = Minflo_flow.Network_simplex
module Bench_format = Minflo_netlist.Bench_format
module Verilog_format = Minflo_netlist.Verilog_format
module Gen = Minflo_netlist.Generators
module Tech = Minflo_tech.Tech
module DM = Minflo_tech.Delay_model
module Elmore = Minflo_tech.Elmore
module Sweep = Minflo_sizing.Sweep
module Minflotransit = Minflo_sizing.Minflotransit

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* ---------- Diag ---------- *)

let test_diag_error_codes () =
  check string "parse" "parse-error"
    (Diag.error_code
       (Diag.Parse_error { file = None; line = 3; col = 0; msg = "x" }));
  check string "lint" "lint-error"
    (Diag.error_code
       (Diag.Lint_error
          { rule = "MF001"; file = None; line = 1; msg = "cycle" }));
  check string "unknown" "unknown-circuit"
    (Diag.error_code (Diag.Unknown_circuit { name = "z"; known = [] }));
  check string "budget" "budget-exhausted"
    (Diag.error_code
       (Diag.Budget_exhausted { resource = "pivots"; spent = 7.; limit = 5. }));
  check string "invariant" "invariant"
    (Diag.error_code (Diag.Invariant { what = "w"; detail = "d" }));
  check string "fault" "fault-injected"
    (Diag.error_code (Diag.Fault_injected { site = "s" }))

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_diag_json () =
  let j =
    Diag.to_json
      (Diag.Parse_error { file = Some "a.bench"; line = 7; col = 2; msg = "bad" })
  in
  check bool "has code" true (contains j "parse-error");
  check bool "has line" true (contains j "7");
  check bool "has file" true (contains j "a.bench");
  let j2 = Diag.to_json (Diag.Oscillation { area = 12.5; repeats = 3 }) in
  check bool "osc code" true (contains j2 "oscillation")

let test_diag_log () =
  let l = Diag.create_log () in
  check bool "empty" true (Diag.max_severity l = None);
  Diag.log l Diag.Debug ~source:"t" "dbg";
  Diag.log l Diag.Warning ~source:"t" "warn";
  Diag.logf l Diag.Info ~source:"t" "n=%d" 3;
  check int "all events" 3 (List.length (Diag.events l));
  check int "warning and above" 1
    (List.length (Diag.events_above l Diag.Warning));
  check bool "max severity" true (Diag.max_severity l = Some Diag.Warning);
  check bool "json renders" true
    (contains (Diag.log_to_json l) "warn")

(* ---------- Budget ---------- *)

let test_budget_pivots () =
  let b = Budget.start (Budget.limits ~max_pivots:5 ()) in
  for i = 1 to 5 do
    check bool (Printf.sprintf "tick %d ok" i) true (Budget.tick_pivot b)
  done;
  check bool "tick 6 trips" false (Budget.tick_pivot b);
  check bool "sticky" false (Budget.tick_pivot b);
  check bool "exhausted" true (Budget.exhausted b);
  (match Budget.check b with
  | Some (Diag.Budget_exhausted { resource; _ }) ->
    check string "resource" "pivots" resource
  | _ -> Alcotest.fail "expected Budget_exhausted")

let test_budget_iterations () =
  let b = Budget.start (Budget.limits ~max_iterations:2 ()) in
  Budget.tick_iteration b;
  check bool "below the limit is fine" true (Budget.check b = None);
  Budget.tick_iteration b;
  (match Budget.check b with
  | Some (Diag.Budget_exhausted { resource; _ }) ->
    check string "resource" "iterations" resource
  | _ -> Alcotest.fail "expected Budget_exhausted on iterations")

let test_budget_wall () =
  let b = Budget.start (Budget.limits ~wall_seconds:0.0 ()) in
  (* the deadline trips on [elapsed > limit]: wait out the clock tick *)
  while Budget.elapsed b <= 0.0 do () done;
  (match Budget.check b with
  | Some (Diag.Budget_exhausted _) -> ()
  | _ -> Alcotest.fail "expected wall-clock exhaustion");
  check bool "exhausted" true (Budget.exhausted b)

let test_budget_unlimited () =
  let b = Budget.unlimited () in
  for _ = 1 to 10_000 do ignore (Budget.tick_pivot b) done;
  Budget.tick_iteration b;
  check bool "still fine" true (Budget.check b = None);
  check bool "not exhausted" false (Budget.exhausted b);
  check int "pivot count" 10_000 (Budget.pivots b)

(* ---------- Fallback ---------- *)

let diverged = Diag.Solver_diverged { solver = "x"; iters = 1 }

let test_fallback_first_rung () =
  match
    Fallback.run [ { Fallback.name = "a"; attempt = (fun () -> Ok 1) } ]
  with
  | Ok { value; rung; failures } ->
    check int "value" 1 value;
    check string "rung" "a" rung;
    check int "no failures" 0 (List.length failures)
  | Error _ -> Alcotest.fail "expected success"

let test_fallback_retries_retryable () =
  let r =
    Fallback.run
      [ { Fallback.name = "a"; attempt = (fun () -> Error diverged) };
        { Fallback.name = "b"; attempt = (fun () -> Ok 2) } ]
  in
  match r with
  | Ok { value; rung; failures } ->
    check int "value" 2 value;
    check string "winning rung" "b" rung;
    (match failures with
    | [ ("a", Diag.Solver_diverged _) ] -> ()
    | _ -> Alcotest.fail "expected the recorded failure of rung a")
  | Error _ -> Alcotest.fail "expected fallback success"

let test_fallback_nonretryable_aborts () =
  let tried_b = ref false in
  let e =
    Diag.Infeasible_budget { vertex = 0; label = "g"; budget = 1.; intrinsic = 2. }
  in
  let r =
    Fallback.run
      [ { Fallback.name = "a"; attempt = (fun () -> Error e) };
        { Fallback.name = "b"; attempt = (fun () -> tried_b := true; Ok 2) } ]
  in
  (match r with
  | Error (Diag.Infeasible_budget _) -> ()
  | _ -> Alcotest.fail "expected the structural failure to propagate");
  check bool "second rung never tried" false !tried_b

let test_fallback_all_fail () =
  let log = Diag.create_log () in
  let r =
    Fallback.run ~log
      [ { Fallback.name = "a"; attempt = (fun () -> Error diverged) };
        { Fallback.name = "b";
          attempt =
            (fun () -> Error (Diag.Numeric { what = "obj"; value = nan })) } ]
  in
  (match r with
  | Error (Diag.Numeric _) -> ()
  | _ -> Alcotest.fail "expected the last failure");
  check int "both failures logged" 2
    (List.length (Diag.events_above log Diag.Warning))

(* ---------- Fault ---------- *)

let test_fault_unarmed () =
  let f = Fault.create () in
  check bool "never fires" true (Fault.fire f ~site:"s" = None);
  check int "fired count" 0 (Fault.fired f ~site:"s")

let test_fault_count () =
  let f = Fault.create () in
  Fault.arm f ~site:"s" ~count:2 (Fault.Fail (Diag.Fault_injected { site = "s" }));
  check bool "1st" true (Fault.fire f ~site:"s" <> None);
  check bool "2nd" true (Fault.fire f ~site:"s" <> None);
  check bool "3rd exhausted" true (Fault.fire f ~site:"s" = None);
  check int "fired twice" 2 (Fault.fired f ~site:"s");
  check bool "sites" true (Fault.sites f = [ "s" ])

let test_fault_prob_deterministic () =
  let pattern seed =
    let f = Fault.create ~seed () in
    Fault.arm f ~site:"s" ~prob:0.5 (Fault.Perturb 1.0);
    List.init 32 (fun _ -> Fault.fire f ~site:"s" <> None)
  in
  check bool "same seed, same replay" true (pattern 7 = pattern 7);
  let f0 = Fault.create ~seed:3 () in
  Fault.arm f0 ~site:"s" ~prob:0.0 (Fault.Perturb 1.0);
  for _ = 1 to 32 do
    check bool "prob 0 never fires" true (Fault.fire f0 ~site:"s" = None)
  done

(* ---------- Invariant recorder ---------- *)

let test_invariants_record () =
  let c = Inv.create () in
  Inv.record c "good" (Ok ());
  check bool "ok so far" true (Inv.ok c);
  Inv.record c "bad" (Error "broken");
  Inv.run c "explodes" (fun () -> failwith "boom");
  check bool "not ok" false (Inv.ok c);
  check int "findings" 3 (List.length (Inv.findings c));
  check int "failures" 2 (List.length (Inv.failures c));
  (match Inv.first_failure c with
  | Some (Diag.Invariant { what; _ }) -> check string "first" "bad" what
  | _ -> Alcotest.fail "expected an Invariant error");
  check bool "render marks failures" true (contains (Inv.to_string c) "FAIL")

(* ---------- MCF invariants on corrupted solutions ---------- *)

let small_problem () =
  { Mcf.num_nodes = 3;
    arcs =
      [| { Mcf.src = 0; dst = 1; cap = 5; cost = 1 };
         { Mcf.src = 1; dst = 2; cap = 5; cost = 1 } |];
    supply = [| 2; 0; -2 |] }

let test_mcf_corrupted_flow () =
  let p = small_problem () in
  let sol = Network_simplex.solve p in
  check bool "optimal" true (sol.Mcf.status = Mcf.Optimal);
  check bool "clean flow passes" true
    (Result.is_ok (Mcf.check_feasible_flow p sol.Mcf.flow));
  check bool "clean solution optimal" true
    (Result.is_ok (Mcf.check_optimality p sol));
  let bad = Array.copy sol.Mcf.flow in
  bad.(0) <- bad.(0) + 1;
  (match Mcf.check_feasible_flow p bad with
  | Error (Diag.Invariant { what; _ }) ->
    check string "conservation" "flow-conservation" what
  | _ -> Alcotest.fail "corrupted flow must fail conservation")

let test_mcf_corrupted_potential () =
  let p = small_problem () in
  let sol = Network_simplex.solve p in
  let pi = Array.copy sol.Mcf.potential in
  pi.(1) <- pi.(1) + 7;
  (match Mcf.check_optimality p { sol with Mcf.potential = pi } with
  | Error (Diag.Invariant { what; _ }) ->
    check string "reduced cost" "reduced-cost-optimality" what
  | _ -> Alcotest.fail "corrupted potential must fail optimality")

(* ---------- parsers: typed errors ---------- *)

let test_bench_parse_error_line () =
  (match Bench_format.parse_string "INPUT(a" with
  | Error (Diag.Parse_error { line; _ }) -> check int "line" 1 line
  | _ -> Alcotest.fail "expected Parse_error");
  match Bench_format.parse_string "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n" with
  | Error (Diag.Parse_error { line; _ }) -> check int "line of bad gate" 3 line
  | _ -> Alcotest.fail "expected Parse_error on the gate line"

let test_verilog_parse_error () =
  (match
     Verilog_format.parse_string
       "module m(a, y);\ninput a;\nalways @(a) begin end\nendmodule\n"
   with
  | Error (Diag.Parse_error { line; _ }) ->
    check int "behavioral construct line" 3 line
  | _ -> Alcotest.fail "expected Parse_error");
  match Verilog_format.parse_string "module m(a; endmodule" with
  | Error (Diag.Parse_error _) -> ()
  | _ -> Alcotest.fail "expected Parse_error on an empty module"

let test_parse_file_io_error () =
  match Bench_format.parse_file "/nonexistent/definitely/missing.bench" with
  | Error (Diag.Io_error _) -> ()
  | _ -> Alcotest.fail "expected Io_error"

(* ---------- engine resilience (end-to-end on c17) ---------- *)

let tech = Tech.default_130nm
let model_of nl = Elmore.of_netlist tech nl

let c17_setup () =
  let model = model_of (Gen.c17 ()) in
  let target = 0.5 *. Sweep.dmin model in
  (model, target)

let sizes_in_bounds model sizes =
  Array.for_all
    (fun v ->
      Float.is_finite v
      && v >= model.DM.min_size -. 1e-9
      && v <= model.DM.max_size +. 1e-9)
    sizes

let test_engine_budget_best_feasible () =
  let model, target = c17_setup () in
  let options =
    { Minflotransit.default_options with
      limits = Budget.limits ~max_iterations:1 () }
  in
  let r = Minflotransit.optimize ~options model ~target in
  check bool "budget flagged" true r.budget_exhausted;
  (match r.stop with
  | Minflotransit.Stop_budget (Diag.Budget_exhausted _) -> ()
  | _ -> Alcotest.fail "expected a typed budget stop");
  check bool "best-so-far still meets the target" true r.met;
  check bool "sizes stay in bounds" true (sizes_in_bounds model r.sizes)

let test_engine_pivot_budget_no_exception () =
  let model, target = c17_setup () in
  let options =
    { Minflotransit.default_options with
      limits = Budget.limits ~max_pivots:5 () }
  in
  (* five pivots is not even enough for TILOS: the run must still return a
     flagged result, never raise *)
  let r = Minflotransit.optimize ~options model ~target in
  check bool "budget flagged" true r.budget_exhausted;
  check int "sizes for every vertex" (DM.num_vertices model)
    (Array.length r.sizes)

let test_engine_fallback_to_ssp () =
  let model, target = c17_setup () in
  let fault = Fault.create () in
  Fault.arm fault ~site:"dphase.simplex"
    (Fault.Fail (Diag.Fault_injected { site = "dphase.simplex" }));
  let options = { Minflotransit.default_options with solver = `Auto } in
  let log = Diag.create_log () in
  let r = Minflotransit.optimize ~options ~fault ~log model ~target in
  check bool "met" true r.met;
  check bool "primary rung was hit" true (Fault.fired fault ~site:"dphase.simplex" > 0);
  check bool "improved through the fallback" true (r.iterations > 0);
  (match r.solver_used with
  | Some s -> check string "winning rung" "ssp" s
  | None -> Alcotest.fail "expected an accepted iteration via ssp");
  check bool "rung failures logged" true
    (Diag.events_above log Diag.Warning <> [])

let test_engine_fallback_to_bellman_ford () =
  let model, target = c17_setup () in
  let fault = Fault.create () in
  List.iter
    (fun site -> Fault.arm fault ~site (Fault.Fail (Diag.Fault_injected { site })))
    [ "dphase.simplex"; "dphase.ssp" ];
  let options = { Minflotransit.default_options with solver = `Auto } in
  let r = Minflotransit.optimize ~options ~fault model ~target in
  check bool "met" true r.met;
  check bool "both upper rungs were hit" true
    (Fault.fired fault ~site:"dphase.simplex" > 0
    && Fault.fired fault ~site:"dphase.ssp" > 0);
  (* the Bellman-Ford rung produces feasible but suboptimal duals: its
     candidates repeat the same non-improving area, which the oscillation
     detector must turn into a typed termination, not a hang *)
  match r.stop with
  | Minflotransit.Stop_oscillation { repeats; _ } ->
    check bool "window reached" true
      (repeats >= Minflotransit.default_options.osc_window)
  | Minflotransit.Stop_converged -> ()
  | s -> Alcotest.fail ("unexpected stop: " ^ Minflotransit.stop_reason_to_string s)

let test_engine_all_rungs_fail () =
  let model, target = c17_setup () in
  let fault = Fault.create () in
  List.iter
    (fun site -> Fault.arm fault ~site (Fault.Fail (Diag.Fault_injected { site })))
    [ "dphase.simplex"; "dphase.ssp"; "dphase.bellman-ford" ];
  let options = { Minflotransit.default_options with solver = `Auto } in
  let r = Minflotransit.optimize ~options ~fault model ~target in
  check bool "TILOS seed survives" true r.met;
  check int "no refinement possible" 0 r.iterations;
  check bool "no winning rung" true (r.solver_used = None)

let test_engine_wphase_fault () =
  let model, target = c17_setup () in
  let fault = Fault.create () in
  Fault.arm fault ~site:"wphase" ~count:1
    (Fault.Fail (Diag.Fault_injected { site = "wphase" }));
  let r = Minflotransit.optimize ~fault model ~target in
  check int "fired once" 1 (Fault.fired fault ~site:"wphase");
  check bool "run still completes and meets" true r.met;
  check bool "later iterations recover" true (r.iterations > 0)

let test_engine_perturb_caught_by_checks () =
  let model, target = c17_setup () in
  let fault = Fault.create () in
  (* corrupt the first simplex solution's duals: the post-phase checks must
     expose it and the auto chain must route around it *)
  Fault.arm fault ~site:"dphase.simplex" ~count:1 (Fault.Perturb 5.0);
  let checks = Inv.create () in
  let options = { Minflotransit.default_options with solver = `Auto } in
  let r = Minflotransit.optimize ~options ~fault ~checks model ~target in
  check int "fired once" 1 (Fault.fired fault ~site:"dphase.simplex");
  check bool "met" true r.met;
  check bool "corruption recorded as failed invariant" false (Inv.ok checks);
  check bool "an fsdu or optimality check caught it" true
    (List.exists
       (fun (f : Inv.finding) ->
         (not f.ok)
         && (contains f.name "dphase.fsdu-nonnegative"
            || contains f.name "dphase.mcf-optimality"))
       (Inv.failures checks))

let test_engine_clean_run_passes_checks () =
  let model, target = c17_setup () in
  let checks = Inv.create () in
  let r = Minflotransit.optimize ~checks model ~target in
  check bool "met" true r.met;
  check bool "ran checks" true (Inv.findings checks <> []);
  check bool "all invariants hold" true (Inv.ok checks)

let test_engine_oscillation_cutoff () =
  (* pinned Bellman-Ford duals are feasible but never area-improving on
     c17: every candidate is rejected with the same area, which must stop
     the loop with a typed oscillation reason instead of spinning until
     eta underflows *)
  let model, target = c17_setup () in
  let options =
    { Minflotransit.default_options with solver = `Bellman_ford }
  in
  let r = Minflotransit.optimize ~options model ~target in
  check bool "met" true r.met;
  match r.stop with
  | Minflotransit.Stop_oscillation { repeats; area } ->
    check bool "repeats reach the window" true
      (repeats >= Minflotransit.default_options.osc_window);
    check bool "oscillating area is finite" true (Float.is_finite area)
  | s -> Alcotest.fail ("expected oscillation, got " ^ Minflotransit.stop_reason_to_string s)

let () =
  Alcotest.run "robust"
    [ ( "diag",
        [ Alcotest.test_case "error codes are stable" `Quick test_diag_error_codes;
          Alcotest.test_case "json rendering" `Quick test_diag_json;
          Alcotest.test_case "event log" `Quick test_diag_log ] );
      ( "budget",
        [ Alcotest.test_case "pivot limit trips and sticks" `Quick test_budget_pivots;
          Alcotest.test_case "iteration limit" `Quick test_budget_iterations;
          Alcotest.test_case "wall-clock limit" `Quick test_budget_wall;
          Alcotest.test_case "unlimited never trips" `Quick test_budget_unlimited ] );
      ( "fallback",
        [ Alcotest.test_case "first rung wins" `Quick test_fallback_first_rung;
          Alcotest.test_case "retryable falls through" `Quick
            test_fallback_retries_retryable;
          Alcotest.test_case "structural failure aborts" `Quick
            test_fallback_nonretryable_aborts;
          Alcotest.test_case "all rungs fail" `Quick test_fallback_all_fail ] );
      ( "fault",
        [ Alcotest.test_case "unarmed sites are silent" `Quick test_fault_unarmed;
          Alcotest.test_case "count limits firing" `Quick test_fault_count;
          Alcotest.test_case "seeded probability replays" `Quick
            test_fault_prob_deterministic ] );
      ( "invariants",
        [ Alcotest.test_case "recording and rendering" `Quick test_invariants_record;
          Alcotest.test_case "corrupted flow is caught" `Quick test_mcf_corrupted_flow;
          Alcotest.test_case "corrupted potential is caught" `Quick
            test_mcf_corrupted_potential ] );
      ( "parsers",
        [ Alcotest.test_case "bench error carries the line" `Quick
            test_bench_parse_error_line;
          Alcotest.test_case "verilog error is typed" `Quick test_verilog_parse_error;
          Alcotest.test_case "missing file is an io error" `Quick
            test_parse_file_io_error ] );
      ( "engine",
        [ Alcotest.test_case "budget exhaustion returns best feasible" `Quick
            test_engine_budget_best_feasible;
          Alcotest.test_case "starved pivot budget never raises" `Quick
            test_engine_pivot_budget_no_exception;
          Alcotest.test_case "fallback to ssp under fault" `Quick
            test_engine_fallback_to_ssp;
          Alcotest.test_case "fallback to bellman-ford under faults" `Quick
            test_engine_fallback_to_bellman_ford;
          Alcotest.test_case "all rungs failing keeps the seed" `Quick
            test_engine_all_rungs_fail;
          Alcotest.test_case "w-phase fault is survivable" `Quick
            test_engine_wphase_fault;
          Alcotest.test_case "perturbed duals are caught and routed around" `Quick
            test_engine_perturb_caught_by_checks;
          Alcotest.test_case "clean run passes all checks" `Quick
            test_engine_clean_run_passes_checks;
          Alcotest.test_case "oscillation cutoff" `Quick test_engine_oscillation_cutoff ] ) ]
