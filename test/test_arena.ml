(* The arena/incremental bit-identity contract.

   The whole PR-10 performance story rests on one claim: the flat CSR
   arena and the incremental arrival engine are *bitwise* equivalent to
   the structures they replaced — same fanin/fanout orders as the
   Digraph, same coefficient sum order as [a_coeffs], and after any
   sequence of size mutations the engine's delays/arrivals/critical path
   are the floats a from-scratch batch STA would produce. These tests
   enforce that claim with exact [=] on floats, never a tolerance. *)

module Netlist = Minflo_netlist.Netlist
module Gen = Minflo_netlist.Generators
module Tech = Minflo_tech.Tech
module DM = Minflo_tech.Delay_model
module Elmore = Minflo_tech.Elmore
module Digraph = Minflo_graph.Digraph
module Arena = Minflo_timing.Arena
module Sta = Minflo_timing.Sta
module Inc = Minflo_timing.Incremental
module Rng = Minflo_util.Rng

let check = Alcotest.check
let tech = Tech.default_130nm

let random_model seed =
  let gates = 25 + (seed mod 31) in
  let nl = Gen.random_dag ~gates ~inputs:5 ~outputs:4 ~seed () in
  Elmore.of_netlist tech nl

let random_sizes rng model =
  Array.init (DM.num_vertices model) (fun _ ->
      model.DM.min_size +. Rng.float rng 7.0)

(* ---------- arena structure ---------- *)

(* every CSR row must reproduce the Digraph adjacency in its exact
   (insertion) order — the strict-[>] tie-breaks in TILOS and the STA
   backtraces depend on it *)
let test_csr_matches_digraph () =
  for seed = 0 to 19 do
    let model = random_model seed in
    let a = Arena.of_model model in
    let g = model.DM.graph in
    for v = 0 to a.Arena.n - 1 do
      let row off tbl =
        List.init (off.(v + 1) - off.(v)) (fun k -> tbl.(off.(v) + k))
      in
      check (Alcotest.list Alcotest.int)
        (Printf.sprintf "seed %d fanout of %d" seed v)
        (Digraph.succ g v)
        (row a.Arena.fanout_off a.Arena.fanout);
      check (Alcotest.list Alcotest.int)
        (Printf.sprintf "seed %d fanin of %d" seed v)
        (Digraph.pred g v)
        (row a.Arena.fanin_off a.Arena.fanin)
    done
  done

let test_coeff_rows_match_model () =
  for seed = 0 to 19 do
    let model = random_model seed in
    let a = Arena.of_model model in
    for v = 0 to a.Arena.n - 1 do
      let expect =
        Array.to_list model.DM.a_coeffs.(v)
        |> List.map (fun (j, c) -> (j, c))
      in
      let got =
        List.init
          (a.Arena.coeff_off.(v + 1) - a.Arena.coeff_off.(v))
          (fun k ->
            let c = a.Arena.coeff_off.(v) + k in
            (a.Arena.coeff_j.(c), a.Arena.coeff_a.(c)))
      in
      check
        (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 0.0)))
        (Printf.sprintf "seed %d coeff row of %d" seed v)
        expect got
    done
  done

let test_sinks_ascending () =
  for seed = 0 to 19 do
    let model = random_model seed in
    let a = Arena.of_model model in
    let expect = ref [] in
    Array.iteri (fun i s -> if s then expect := i :: !expect) model.DM.is_sink;
    check (Alcotest.list Alcotest.int)
      (Printf.sprintf "seed %d sinks" seed)
      (List.rev !expect)
      (Array.to_list a.Arena.sinks)
  done

let test_of_model_memoized () =
  let model = random_model 3 in
  Alcotest.(check bool)
    "same model record gives the same arena" true
    (Arena.of_model model == Arena.of_model model)

(* arena delay/arrival kernels agree bitwise with the model-level code *)
let test_arena_kernels_exact () =
  for seed = 0 to 19 do
    let model = random_model seed in
    let a = Arena.of_model model in
    let rng = Rng.create (seed * 11 + 1) in
    let x = random_sizes rng model in
    let d_ref = DM.delays model x in
    let d = Array.make a.Arena.n nan in
    Arena.delays_into a x d;
    check (Alcotest.array (Alcotest.float 0.0))
      (Printf.sprintf "seed %d delays" seed)
      d_ref d;
    for v = 0 to a.Arena.n - 1 do
      if Arena.delay a x v <> d_ref.(v) then
        Alcotest.failf "seed %d: Arena.delay %d = %h, model says %h" seed v
          (Arena.delay a x v) d_ref.(v)
    done;
    let at_ref = Sta.arrivals model ~delays:d_ref in
    let at = Array.make a.Arena.n nan in
    Arena.arrivals_into a ~delays:d at;
    check (Alcotest.array (Alcotest.float 0.0))
      (Printf.sprintf "seed %d arrivals" seed)
      at_ref at
  done

(* ---------- the 200-seed mutation differential ---------- *)

(* Drive the incremental engine through a random mutation schedule, then
   demand bit-identity against a from-scratch batch pass at the final
   sizes: delays, arrivals, critical path — and the critical set against
   a freshly created engine (whose state IS a batch pass). Exact float
   [=] throughout: one ulp of drift anywhere is a failure. *)
let differential_one_seed seed =
  let model = random_model seed in
  let n = DM.num_vertices model in
  let rng = Rng.create (seed * 7919 + 13) in
  let x0 = random_sizes rng model in
  let eng = Inc.create model ~sizes:x0 in
  let mutations = 8 + Rng.int rng 17 in
  for _ = 1 to mutations do
    let v = Rng.int rng n in
    let s =
      if Rng.bool rng then Inc.size eng v *. (1.0 +. Rng.float rng 0.5)
      else model.DM.min_size +. Rng.float rng 7.0
    in
    Inc.set_size eng v s
  done;
  let x = Inc.sizes eng in
  let d_ref = DM.delays model x in
  let d = Inc.all_delays eng in
  for v = 0 to n - 1 do
    if d.(v) <> d_ref.(v) then
      Alcotest.failf "seed %d: delay %d drifted: engine %h, batch %h" seed v
        d.(v) d_ref.(v)
  done;
  let at_ref = Sta.arrivals model ~delays:d_ref in
  for v = 0 to n - 1 do
    if Inc.arrival eng v <> at_ref.(v) then
      Alcotest.failf "seed %d: arrival %d drifted: engine %h, batch %h" seed v
        (Inc.arrival eng v) at_ref.(v)
  done;
  let cp_ref = Sta.critical_path_only model ~delays:d_ref in
  if Inc.critical_path eng <> cp_ref then
    Alcotest.failf "seed %d: critical path drifted: engine %h, batch %h" seed
      (Inc.critical_path eng) cp_ref;
  (* a fresh engine at the final sizes is a batch computation; the mutated
     engine must report the identical critical set (same members, same
     traversal order) *)
  let fresh = Inc.create model ~sizes:x in
  check (Alcotest.list Alcotest.int)
    (Printf.sprintf "seed %d critical set" seed)
    (Inc.critical_set fresh)
    (Inc.critical_set eng)

let test_mutation_differential () =
  for seed = 0 to 199 do
    differential_one_seed seed
  done

(* set_size must also be exact when sizes go *down* (TILOS's trial-bump
   rollback path) and when the write is a no-op *)
let test_rollback_exact () =
  for seed = 0 to 19 do
    let model = random_model seed in
    let n = DM.num_vertices model in
    let rng = Rng.create (seed + 400) in
    let x0 = random_sizes rng model in
    let eng = Inc.create model ~sizes:x0 in
    let at0 = Array.init n (Inc.arrival eng) in
    for _ = 1 to 10 do
      let v = Rng.int rng n in
      let old = Inc.size eng v in
      Inc.set_size eng v (old *. 1.3);
      Inc.set_size eng v old
    done;
    for v = 0 to n - 1 do
      if Inc.arrival eng v <> at0.(v) then
        Alcotest.failf "seed %d: bump+rollback moved arrival %d" seed v
    done
  done

let suite =
  [ ("csr-matches-digraph", `Quick, test_csr_matches_digraph);
    ("coeff-rows-match-model", `Quick, test_coeff_rows_match_model);
    ("sinks-ascending", `Quick, test_sinks_ascending);
    ("of-model-memoized", `Quick, test_of_model_memoized);
    ("arena-kernels-exact", `Quick, test_arena_kernels_exact);
    ("mutation-differential-200-seeds", `Quick, test_mutation_differential);
    ("rollback-exact", `Quick, test_rollback_exact) ]

let () = Alcotest.run "arena" [ ("arena", suite) ]
