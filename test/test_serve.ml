(* The sizing-as-a-service daemon: wire format, admission queue, and
   end-to-end lifecycle tests that fork a real daemon over a unix socket —
   including the acceptance scenario (SIGKILL with in-flight jobs, restart
   on the same run directory, bit-identical recovered results). *)

module Json = Minflo_serve.Json
module Protocol = Minflo_serve.Protocol
module Bounded_queue = Minflo_serve.Bounded_queue
module Server = Minflo_serve.Server
module Transport = Minflo_serve.Transport
module Client = Minflo_serve.Client
module Result_cache = Minflo_serve.Result_cache
module Chaosproxy = Minflo_serve.Chaosproxy
module Loadgen = Minflo_serve.Loadgen
module Journal = Minflo_runner.Journal
module Diag = Minflo_robust.Diag

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) ("minflo-" ^ name) in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  dir

(* ---------- json ---------- *)

let test_json_roundtrip () =
  let src = {|{"a": 1, "b": [true, null, "xé\n"], "c": -2.5}|} in
  (match Json.parse src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok j ->
    check (Alcotest.option Alcotest.int) "int field" (Some 1)
      (Json.int_field "a" j);
    (match Json.member "b" j with
    | Some (Json.List [ Json.Bool true; Json.Null; Json.Str s ]) ->
      check string "escapes decoded" "x\xc3\xa9\n" s
    | _ -> Alcotest.fail "array shape");
    check (Alcotest.option (Alcotest.float 0.)) "negative number" (Some (-2.5))
      (Json.num_field "c" j);
    (* print/parse round trip is structural identity *)
    match Json.parse (Json.to_string j) with
    | Ok j2 -> check string "reprint stable" (Json.to_string j) (Json.to_string j2)
    | Error e -> Alcotest.failf "reparse: %s" e);
  (match Json.parse {|{"a": 1} trailing|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Json.parse {|{"a": }|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed object accepted"

let test_json_number_bits () =
  (* the daemon's bit-identical recovery rides on numbers surviving
     print/parse unchanged *)
  List.iter
    (fun f ->
      match Json.parse (Json.to_string (Json.Num f)) with
      | Ok (Json.Num g) ->
        if Int64.bits_of_float f <> Int64.bits_of_float g then
          Alcotest.failf "%h reparsed as %h" f g
      | _ -> Alcotest.failf "%h did not reparse as a number" f)
    [ 0.0; -0.0; 0.1; 1.0 /. 3.0; 1e300; 4.94e-324; 12345.6789;
      1.0000000000000002; 745.0; -42.125 ]

(* ---------- protocol ---------- *)

let roundtrip req =
  let j = Protocol.request_to_json req in
  match Protocol.request_of_json j with
  | Error e -> Alcotest.failf "of_json: %s" e
  | Ok req2 ->
    check string "request round trip"
      (Json.to_string j)
      (Json.to_string (Protocol.request_to_json req2))

let submit_spec ?max_seconds ?max_iterations ?max_pivots ?(sleep = 0.0)
    ?(factor = 1.3) circuit =
  { Protocol.circuit; factor; solver = `Simplex; max_seconds; max_iterations;
    max_pivots; sleep_seconds = sleep }

let test_protocol_roundtrip () =
  roundtrip (Protocol.Submit (submit_spec "c17"));
  roundtrip
    (Protocol.Submit
       (submit_spec ~max_seconds:2.5 ~max_iterations:7 ~max_pivots:1000
          ~sleep:0.25 ~factor:0.45 "c432"));
  roundtrip (Protocol.Status "some-id");
  roundtrip (Protocol.Result { id = "some-id"; wait = true });
  roundtrip (Protocol.Result { id = "some-id"; wait = false });
  roundtrip (Protocol.Cancel "some-id");
  roundtrip Protocol.Stats;
  roundtrip Protocol.Health;
  roundtrip Protocol.Drain

let test_protocol_validation () =
  let reject j what =
    match Protocol.request_of_json j with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" what
  in
  reject (Json.Obj [ ("op", Json.Str "launch-missiles") ]) "unknown op";
  reject
    (Json.Obj
       [ ("op", Json.Str "submit"); ("circuit", Json.Str "c17");
         ("factor", Json.Num (-1.0)) ])
    "negative factor";
  reject
    (Json.Obj
       [ ("op", Json.Str "submit"); ("circuit", Json.Str "c17");
         ("factor", Json.Num 1.3); ("solver", Json.Str "quantum") ])
    "unknown solver";
  reject (Json.Obj [ ("op", Json.Str "status") ]) "status without id";
  reject (Json.Str "not an object") "non-object request"

let test_protocol_job_key () =
  let plain = Protocol.job_key (submit_spec "c17") in
  check Alcotest.bool "default budgets need no suffix" false
    (String.contains plain '#');
  let budgeted = Protocol.job_key (submit_spec ~max_iterations:3 "c17") in
  check Alcotest.bool "custom budget gets a suffix" true
    (String.contains budgeted '#');
  if plain = budgeted then
    Alcotest.fail "budget must change the job identity";
  let other = Protocol.job_key (submit_spec ~max_iterations:4 "c17") in
  if budgeted = other then
    Alcotest.fail "different budgets must have different identities";
  check string "same spec, same key" budgeted
    (Protocol.job_key (submit_spec ~max_iterations:3 "c17"))

(* ---------- bounded queue ---------- *)

let test_bounded_queue () =
  let q = Bounded_queue.create ~capacity:2 in
  check Alcotest.bool "starts empty" true (Bounded_queue.is_empty q);
  (match Bounded_queue.push q "a" with Ok () -> () | Error _ -> Alcotest.fail "push a");
  (match Bounded_queue.push q "b" with Ok () -> () | Error _ -> Alcotest.fail "push b");
  (match Bounded_queue.push q "c" with
  | Error (`Full 2) -> ()
  | Error (`Full n) -> Alcotest.failf "full at depth %d" n
  | Ok () -> Alcotest.fail "push past capacity accepted");
  check (Alcotest.option string) "fifo pop" (Some "a") (Bounded_queue.pop q);
  (match Bounded_queue.push q "c" with Ok () -> () | Error _ -> Alcotest.fail "push c");
  (* recovery path may exceed the bound *)
  Bounded_queue.push_force q "forced";
  check int "forced past capacity" 3 (Bounded_queue.length q);
  check int "capacity unchanged" 2 (Bounded_queue.capacity q);
  check int "peak is the high-water mark" 3 (Bounded_queue.peak q);
  check (Alcotest.option string) "pop b" (Some "b") (Bounded_queue.pop q);
  check (Alcotest.option string) "pop c" (Some "c") (Bounded_queue.pop q);
  check (Alcotest.option string) "pop forced" (Some "forced") (Bounded_queue.pop q);
  check (Alcotest.option string) "drained" None (Bounded_queue.pop q)

(* ---------- transport ---------- *)

let endpoint_t : Transport.endpoint Alcotest.testable =
  Alcotest.testable
    (fun ppf ep -> Format.pp_print_string ppf (Transport.to_string ep))
    ( = )

let test_transport_parse () =
  let ok s want =
    match Transport.parse s with
    | Ok got -> check endpoint_t s want got
    | Error e -> Alcotest.failf "%s rejected: %s" s e
  in
  ok "127.0.0.1:8080" (Transport.Tcp ("127.0.0.1", 8080));
  ok "localhost:0" (Transport.Tcp ("localhost", 0));
  ok "unix:/tmp/x.sock" (Transport.Unix_sock "/tmp/x.sock");
  ok "minflo.sock" (Transport.Unix_sock "minflo.sock");
  (* a colon whose suffix is not a port keeps meaning "socket path" *)
  ok "/var/run/odd:name" (Transport.Unix_sock "/var/run/odd:name");
  List.iter
    (fun s ->
      match Transport.parse s with
      | Error _ -> ()
      | Ok ep ->
        Alcotest.failf "%s accepted as %s" s (Transport.to_string ep))
    [ ""; "unix:"; "host:70000"; ":9" ]

(* ---------- result cache ---------- *)

let test_result_cache_lru () =
  let c = Result_cache.create ~budget_bytes:100 in
  Result_cache.put c "a" 1 ~bytes:40;
  Result_cache.put c "b" 2 ~bytes:40;
  check (Alcotest.option int) "a resident" (Some 1) (Result_cache.find c "a");
  (* the [find] above made "a" hot, so pressure evicts "b" *)
  Result_cache.put c "c" 3 ~bytes:40;
  check (Alcotest.option int) "cold entry evicted" None (Result_cache.find c "b");
  check (Alcotest.option int) "hot entry kept" (Some 1) (Result_cache.find c "a");
  check (Alcotest.option int) "new entry kept" (Some 3) (Result_cache.find c "c");
  check int "bytes within budget" 80 (Result_cache.bytes c);
  check int "one eviction so far" 1 (Result_cache.evictions c);
  (* an entry larger than the whole budget passes straight through *)
  Result_cache.put c "big" 4 ~bytes:200;
  check (Alcotest.option int) "oversized never resident" None
    (Result_cache.find c "big");
  check int "oversized flushed everything" 0 (Result_cache.bytes c);
  check int "evictions accumulate" 4 (Result_cache.evictions c);
  (* replacement re-accounts instead of double-counting *)
  Result_cache.put c "x" 5 ~bytes:50;
  Result_cache.put c "x" 6 ~bytes:60;
  check int "replace keeps one entry" 1 (Result_cache.entries c);
  check int "replace re-accounts bytes" 60 (Result_cache.bytes c);
  check (Alcotest.option int) "replace keeps latest" (Some 6)
    (Result_cache.find c "x")

(* ---------- end to end: a forked daemon over a real socket ---------- *)

let daemon_cfg ?(parallel = 2) ?(queue = 16) ?tcp ?watchdog
    ?(io_timeout = 30.0) ?(cache_bytes = 64 * 1024 * 1024) dir =
  { Server.socket_path = Filename.concat dir "minflo.sock";
    tcp;
    run_dir = Filename.concat dir "run";
    parallel;
    queue_capacity = queue;
    timeout_seconds = Some 60.0;
    watchdog_seconds = watchdog;
    io_timeout_seconds = io_timeout;
    cache_bytes;
    retries = 1;
    backoff_base = 0.05;
    preflight = true }

let start_daemon cfg =
  match Unix.fork () with
  | 0 ->
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 devnull Unix.stdout;
    Unix.dup2 devnull Unix.stderr;
    let code =
      match Server.run ~config:cfg () with
      | Ok () -> 0
      | Error (Diag.Journal_locked _) -> 3
      | Error _ -> 1
    in
    Unix._exit code
  | pid -> pid

let unix_ep cfg = Transport.Unix_sock cfg.Server.socket_path

(* test helpers talk straight to the daemon: one attempt, no backoff, so
   a broken daemon fails the test instead of being papered over *)
let no_retry = { Client.default_retry with attempts = 1; timeout = None }

let rpc_ep ep req =
  match
    Client.one_shot ~retry:no_retry ~endpoint:ep (Protocol.request_to_json req)
  with
  | Ok j -> j
  | Error e -> Alcotest.failf "rpc: %s" (Diag.to_string e)

let rpc cfg req = rpc_ep (unix_ep cfg) req

let wait_ready cfg =
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec go () =
    let up =
      match
        Client.one_shot ~retry:no_retry ~endpoint:(unix_ep cfg)
          (Protocol.request_to_json Protocol.Health)
      with
      | Ok j -> Json.bool_field "ok" j = Some true
      | Error _ -> false
    in
    if up then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "daemon never became healthy"
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

let wait_state cfg id want =
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec go () =
    match Json.str_field "state" (rpc cfg (Protocol.Status id)) with
    | Some st when st = want -> ()
    | _ when Unix.gettimeofday () > deadline ->
      Alcotest.failf "job %s never reached state %s" id want
    | _ ->
      Unix.sleepf 0.05;
      go ()
  in
  go ()

let submit_ok cfg spec =
  let r = rpc cfg (Protocol.Submit spec) in
  match (Json.bool_field "ok" r, Json.str_field "id" r) with
  | Some true, Some id -> (id, r)
  | _ -> Alcotest.failf "submit rejected: %s" (Json.to_string r)

let stop_daemon pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let _, status = Unix.waitpid [] pid in
  status

let journal_events cfg =
  List.map fst
    (Journal.scan (Filename.concat cfg.Server.run_dir "journal.jsonl"))

let counter_of stats name =
  match Json.member "counters" stats with
  | Some c -> Option.value (Json.int_field name c) ~default:(-1)
  | None -> -1

(* ---------- client resilience against misbehaving peers ---------- *)

(* a stub "daemon" exhibiting exactly one pathology: accept, read the
   request, then either go silent or tear the response mid-line *)
let stub_server path behavior =
  match Unix.fork () with
  | 0 ->
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 4;
       let c, _ = Unix.accept fd in
       let buf = Bytes.create 4096 in
       ignore (Unix.read c buf 0 4096);
       match behavior with
       | `Silent -> Unix.sleepf 30.0
       | `Torn ->
         ignore (Unix.write_substring c {|{"ok": tru|} 0 10);
         Unix.close c;
         Unix.sleepf 0.5
     with _ -> ());
    Unix._exit 0
  | pid -> pid

let wait_for_socket path =
  let deadline = Unix.gettimeofday () +. 10.0 in
  while
    (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.02
  done

let reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid)

let health_json = Protocol.request_to_json Protocol.Health

let test_client_connect_refused () =
  let retry =
    { Client.attempts = 3; backoff_base = 0.01; timeout = Some 0.5; seed = 7 }
  in
  let ep = Transport.Unix_sock "/nonexistent/minflo-nowhere.sock" in
  match Client.one_shot ~retry ~endpoint:ep health_json with
  | Error (Diag.Connect_refused { attempts; _ }) ->
    check int "all attempts spent" 3 attempts
  | Error e -> Alcotest.failf "wrong diagnostic: %s" (Diag.to_string e)
  | Ok _ -> Alcotest.fail "connected to nothing"

let test_client_net_timeout () =
  let dir = fresh_dir "client-timeout" in
  let path = Filename.concat dir "stub.sock" in
  let pid = stub_server path `Silent in
  wait_for_socket path;
  let retry =
    { Client.attempts = 1; backoff_base = 0.01; timeout = Some 0.3; seed = 0 }
  in
  (match Client.one_shot ~retry ~endpoint:(Transport.Unix_sock path) health_json with
  | Error (Diag.Net_timeout { op; seconds; _ }) ->
    check string "timed out waiting for" "response" op;
    check (Alcotest.float 0.001) "deadline reported" 0.3 seconds
  | Error e -> Alcotest.failf "wrong diagnostic: %s" (Diag.to_string e)
  | Ok _ -> Alcotest.fail "a silent peer produced a response");
  reap pid;
  rm_rf dir

let test_client_torn_response () =
  let dir = fresh_dir "client-torn" in
  let path = Filename.concat dir "stub.sock" in
  let pid = stub_server path `Torn in
  wait_for_socket path;
  let retry =
    { Client.attempts = 1; backoff_base = 0.01; timeout = Some 2.0; seed = 0 }
  in
  (match Client.one_shot ~retry ~endpoint:(Transport.Unix_sock path) health_json with
  | Error (Diag.Torn_response { bytes; _ }) ->
    check int "incomplete line length" 10 bytes
  | Error e -> Alcotest.failf "wrong diagnostic: %s" (Diag.to_string e)
  | Ok _ -> Alcotest.fail "a torn line parsed as a response");
  reap pid;
  rm_rf dir

let test_e2e_submit_result_cache () =
  let dir = fresh_dir "serve-e2e" in
  let cfg = daemon_cfg dir in
  let pid = start_daemon cfg in
  wait_ready cfg;
  let id, _ = submit_ok cfg (submit_spec "c17") in
  let res = rpc cfg (Protocol.Result { id; wait = true }) in
  check (Alcotest.option string) "terminal state" (Some "done")
    (Json.str_field "state" res);
  (match Json.num_field "area" res with
  | Some a when a > 0.0 -> ()
  | _ -> Alcotest.fail "result carries no positive area");
  check (Alcotest.option Alcotest.bool) "met" (Some true)
    (Json.bool_field "met" res);
  (* idempotent resubmit is answered from the cache, not re-solved *)
  let again = rpc cfg (Protocol.Submit (submit_spec "c17")) in
  check (Alcotest.option Alcotest.bool) "resubmitted flag" (Some true)
    (Json.bool_field "resubmitted" again);
  check (Alcotest.option string) "served from cache" (Some "done")
    (Json.str_field "state" again);
  let stats = rpc cfg (Protocol.Stats) in
  check Alcotest.bool "cache hit counted" true (counter_of stats "cache_hits" >= 1);
  (* unknown ids are a typed error, not a hang *)
  let missing = rpc cfg (Protocol.Status "no-such-id") in
  check (Alcotest.option Alcotest.bool) "unknown id rejected" (Some false)
    (Json.bool_field "ok" missing);
  let bye = rpc cfg Protocol.Drain in
  check (Alcotest.option Alcotest.bool) "drain acknowledged" (Some true)
    (Json.bool_field "ok" bye);
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "daemon did not exit cleanly after drain");
  let events = journal_events cfg in
  List.iter
    (fun e ->
      if not (List.mem e events) then Alcotest.failf "journal lacks %s" e)
    [ "serve-start"; "serve-accepted"; "job-result"; "serve-drain-start";
      "serve-drain-complete" ];
  rm_rf dir

let test_e2e_overload_cancel_sigterm () =
  let dir = fresh_dir "serve-overload" in
  let cfg = daemon_cfg ~parallel:1 ~queue:1 dir in
  let pid = start_daemon cfg in
  wait_ready cfg;
  (* slot: one slow job running, one parked in the admission queue *)
  let a, _ = submit_ok cfg (submit_spec ~sleep:5.0 ~factor:1.30 "c17") in
  wait_state cfg a "running";
  let b, _ = submit_ok cfg (submit_spec ~sleep:5.0 ~factor:1.31 "c17") in
  let r3 = rpc cfg (Protocol.Submit (submit_spec ~sleep:5.0 ~factor:1.32 "c17")) in
  check (Alcotest.option Alcotest.bool) "third submit rejected" (Some false)
    (Json.bool_field "ok" r3);
  check (Alcotest.option string) "typed overload" (Some "overloaded")
    (Json.str_field "code" r3);
  let stats = rpc cfg (Protocol.Stats) in
  check Alcotest.bool "rejection counted" true
    (counter_of stats "rejections" >= 1);
  (* cancel the queued job, then the running one *)
  let cb = rpc cfg (Protocol.Cancel b) in
  check (Alcotest.option Alcotest.bool) "queued cancel ok" (Some true)
    (Json.bool_field "ok" cb);
  let ca = rpc cfg (Protocol.Cancel a) in
  check (Alcotest.option Alcotest.bool) "running cancel ok" (Some true)
    (Json.bool_field "ok" ca);
  let ra = rpc cfg (Protocol.Result { id = a; wait = true }) in
  check (Alcotest.option string) "running job cancelled" (Some "cancelled")
    (Json.str_field "state" ra);
  (* cancelling a terminal job is a typed no-op *)
  let again = rpc cfg (Protocol.Cancel a) in
  check (Alcotest.option string) "already terminal" (Some "already-terminal")
    (Json.str_field "code" again);
  (* SIGTERM drains: nothing is in flight, so the exit is prompt and clean *)
  (match stop_daemon pid with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "daemon did not drain cleanly on SIGTERM");
  let events = journal_events cfg in
  check Alcotest.bool "drain journaled" true
    (List.mem "serve-drain-start" events
    && List.mem "serve-drain-complete" events);
  check Alcotest.bool "cancellations journaled" true
    (List.length (List.filter (fun e -> e = "job-cancelled") events) >= 2);
  rm_rf dir

(* fields whose equality defines "the same sizing result" — identity and
   provenance fields ([id] embeds the sleep suffix, [resumed] records the
   recovery itself) are excluded by construction *)
let result_signature res =
  String.concat ";"
    (List.map
       (fun k ->
         let v =
           match Json.member k res with
           | Some v -> Json.to_string v
           | None -> "<missing>"
         in
         k ^ "=" ^ v)
       [ "circuit"; "factor"; "solver"; "area"; "area_ratio"; "cp"; "target";
         "met"; "iterations"; "saving_pct"; "stop" ])

let test_e2e_sigkill_restart_recovers () =
  (* baseline: the same two sizings served by an uninterrupted daemon *)
  let base_dir = fresh_dir "serve-baseline" in
  let base = daemon_cfg base_dir in
  let bpid = start_daemon base in
  wait_ready base;
  let b1, _ = submit_ok base (submit_spec ~factor:1.30 "c17") in
  let b2, _ = submit_ok base (submit_spec ~factor:1.35 "c17") in
  let sig1 = result_signature (rpc base (Protocol.Result { id = b1; wait = true })) in
  let sig2 = result_signature (rpc base (Protocol.Result { id = b2; wait = true })) in
  ignore (rpc base Protocol.Drain);
  ignore (Unix.waitpid [] bpid);
  rm_rf base_dir;
  (* the crash run: one job mid-flight, one queued, daemon SIGKILLed *)
  let dir = fresh_dir "serve-recover" in
  let cfg = daemon_cfg ~parallel:1 dir in
  let pid = start_daemon cfg in
  wait_ready cfg;
  let k1, _ = submit_ok cfg (submit_spec ~sleep:2.0 ~factor:1.30 "c17") in
  let k2, _ = submit_ok cfg (submit_spec ~sleep:2.0 ~factor:1.35 "c17") in
  wait_state cfg k1 "running";
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  (* restart on the same run directory: the journal replays, both accepted
     jobs are requeued and must reach terminal states *)
  let pid2 = start_daemon cfg in
  wait_ready cfg;
  let events = journal_events cfg in
  check Alcotest.bool "recovery journaled" true
    (List.mem "serve-recovered" events);
  let r1 = rpc cfg (Protocol.Result { id = k1; wait = true }) in
  let r2 = rpc cfg (Protocol.Result { id = k2; wait = true }) in
  check (Alcotest.option string) "k1 terminal" (Some "done")
    (Json.str_field "state" r1);
  check (Alcotest.option string) "k2 terminal" (Some "done")
    (Json.str_field "state" r2);
  check string "k1 bit-identical to uninterrupted run" sig1 (result_signature r1);
  check string "k2 bit-identical to uninterrupted run" sig2 (result_signature r2);
  (* a served key resubmitted after recovery is a pure cache hit *)
  let again =
    rpc cfg (Protocol.Submit (submit_spec ~sleep:2.0 ~factor:1.30 "c17"))
  in
  check (Alcotest.option Alcotest.bool) "recovered result is cached" (Some true)
    (Json.bool_field "resubmitted" again);
  let stats = rpc cfg (Protocol.Stats) in
  check Alcotest.bool "cache hit counted after recovery" true
    (counter_of stats "cache_hits" >= 1);
  ignore (rpc cfg Protocol.Drain);
  (match Unix.waitpid [] pid2 with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "restarted daemon did not drain cleanly");
  (* audit: every accepted job reached a terminal journal event *)
  let events = journal_events cfg in
  let count e = List.length (List.filter (( = ) e) events) in
  check Alcotest.bool "no accepted job lost" true
    (count "serve-accepted" = 2 && count "job-result" >= 2);
  rm_rf dir

let test_e2e_second_daemon_locked () =
  let dir = fresh_dir "serve-locked" in
  let cfg = daemon_cfg dir in
  let pid = start_daemon cfg in
  wait_ready cfg;
  (* same run directory, different socket: must fail fast, typed *)
  let cfg2 =
    { cfg with Server.socket_path = Filename.concat dir "other.sock" }
  in
  let pid2 = start_daemon cfg2 in
  (match Unix.waitpid [] pid2 with
  | _, Unix.WEXITED 3 -> ()
  | _, Unix.WEXITED 0 -> Alcotest.fail "second daemon ran on a locked run dir"
  | _ -> Alcotest.fail "second daemon died with the wrong diagnostic");
  ignore (rpc cfg Protocol.Drain);
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "first daemon did not drain cleanly");
  rm_rf dir

let test_e2e_loadgen_mix () =
  let dir = fresh_dir "serve-loadgen" in
  let cfg = daemon_cfg dir in
  let pid = start_daemon cfg in
  wait_ready cfg;
  let summary =
    match
      Loadgen.run
        { Loadgen.default_config with
          Loadgen.endpoint = unix_ep cfg;
          circuits = [ "c17" ];
          count = 2;
          lint_bad = 1;
          tiny_budget = 1;
          deadline_seconds = 60.0 }
    with
    | Ok j -> j
    | Error e -> Alcotest.failf "loadgen: %s" (Diag.to_string e)
  in
  let field k = Option.value (Json.int_field k summary) ~default:(-1) in
  check int "submitted" 4 (field "submitted");
  check int "lint gate rejected the bad circuit" 1 (field "lint_rejected");
  (* the tiny-budget job still terminates (best-feasible or failed), and
     every well-formed job reaches "done" *)
  check Alcotest.bool "all accepted jobs terminal" true
    (field "accepted" = field "done" + field "failed" + field "cancelled");
  check Alcotest.bool "well-formed jobs done" true (field "done" >= 2);
  (* latency percentiles: present, finite, non-negative, ordered *)
  let fl k =
    match Json.num_field k summary with
    | Some v -> v
    | None -> Alcotest.failf "summary lacks %s" k
  in
  let p50 = fl "latency_p50_seconds" and p99 = fl "latency_p99_seconds" in
  check Alcotest.bool "p50 sane" true (Float.is_finite p50 && p50 >= 0.0);
  check Alcotest.bool "p99 >= p50" true (Float.is_finite p99 && p99 >= p50);
  ignore (rpc cfg Protocol.Drain);
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "daemon did not drain cleanly");
  rm_rf dir

(* the actual TCP endpoint (port 0 resolved) from the serve-start line *)
let tcp_endpoint_of_journal cfg =
  let path = Filename.concat cfg.Server.run_dir "journal.jsonl" in
  match
    List.find_map
      (fun (event, line) ->
        if event = "serve-start" then Journal.find_field line "tcp" else None)
      (Journal.scan path)
  with
  | None -> Alcotest.fail "serve-start journaled no tcp endpoint"
  | Some s -> (
    match Transport.parse s with
    | Ok ep -> ep
    | Error e -> Alcotest.failf "journaled tcp endpoint %S: %s" s e)

let test_e2e_tcp () =
  let dir = fresh_dir "serve-tcp" in
  let cfg = daemon_cfg ~tcp:"127.0.0.1:0" dir in
  let pid = start_daemon cfg in
  wait_ready cfg;
  let ep = tcp_endpoint_of_journal cfg in
  (match ep with
  | Transport.Tcp (_, port) ->
    check Alcotest.bool "kernel-assigned port journaled" true (port > 0)
  | Transport.Unix_sock _ -> Alcotest.fail "journaled endpoint is not TCP");
  let id =
    let r = rpc_ep ep (Protocol.Submit (submit_spec "c17")) in
    match (Json.bool_field "ok" r, Json.str_field "id" r) with
    | Some true, Some id -> id
    | _ -> Alcotest.failf "tcp submit rejected: %s" (Json.to_string r)
  in
  let res = rpc_ep ep (Protocol.Result { id; wait = true }) in
  check (Alcotest.option string) "solved over tcp" (Some "done")
    (Json.str_field "state" res);
  (* both transports front the same daemon: the unix socket sees the job *)
  let st = rpc cfg (Protocol.Status id) in
  check (Alcotest.option string) "same state over unix socket" (Some "done")
    (Json.str_field "state" st);
  let bye = rpc_ep ep Protocol.Drain in
  check (Alcotest.option Alcotest.bool) "drain over tcp" (Some true)
    (Json.bool_field "ok" bye);
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "daemon did not exit cleanly after tcp drain");
  rm_rf dir

let test_e2e_io_deadline_reaps_stalled_peer () =
  let dir = fresh_dir "serve-deadline" in
  let cfg = daemon_cfg ~io_timeout:0.4 dir in
  let pid = start_daemon cfg in
  wait_ready cfg;
  (* half a request, then silence: the daemon must reap us, not wait *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX cfg.Server.socket_path);
  ignore (Unix.write_substring fd {|{"op":|} 0 6);
  Transport.set_io_timeout fd 10.0;
  let buf = Bytes.create 16 in
  (match Unix.read fd buf 0 16 with
  | 0 -> ()
  | n -> Alcotest.failf "expected EOF from the reaper, got %d bytes" n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    Alcotest.fail "daemon never reaped the stalled connection");
  Unix.close fd;
  (* the daemon itself is unharmed and still serving *)
  let h = rpc cfg Protocol.Health in
  check (Alcotest.option Alcotest.bool) "daemon healthy after reap" (Some true)
    (Json.bool_field "ok" h);
  ignore (rpc cfg Protocol.Drain);
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "daemon did not drain cleanly");
  rm_rf dir

(* the worker pid the supervisor journaled for [id]'s latest spawn *)
let worker_pid cfg id =
  let path = Filename.concat cfg.Server.run_dir "journal.jsonl" in
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    let hit =
      List.find_map
        (fun (event, line) ->
          if event = "job-spawn" && Journal.find_field line "job" = Some id
          then Option.bind (Journal.find_field line "pid") int_of_string_opt
          else None)
        (Journal.scan path)
    in
    match hit with
    | Some pid -> pid
    | None when Unix.gettimeofday () > deadline ->
      Alcotest.failf "no job-spawn journaled for %s" id
    | None ->
      Unix.sleepf 0.05;
      go ()
  in
  go ()

let test_e2e_watchdog_kills_silent_worker () =
  let dir = fresh_dir "serve-watchdog" in
  let cfg = daemon_cfg ~parallel:1 ~watchdog:0.4 dir in
  let pid = start_daemon cfg in
  wait_ready cfg;
  let id, _ = submit_ok cfg (submit_spec ~sleep:2.5 "c17") in
  wait_state cfg id "running";
  (* freeze the worker: heartbeats stop, the watchdog must notice *)
  let victim = worker_pid cfg id in
  Unix.kill victim Sys.sigstop;
  let res = rpc cfg (Protocol.Result { id; wait = true }) in
  check (Alcotest.option string) "requeued job still completes" (Some "done")
    (Json.str_field "state" res);
  (match Json.num_field "area" res with
  | Some a when a > 0.0 -> ()
  | _ -> Alcotest.fail "retried result carries no positive area");
  let events = journal_events cfg in
  check Alcotest.bool "watchdog kill journaled" true
    (List.mem "job-watchdog-kill" events);
  check Alcotest.bool "job respawned after the kill" true
    (List.length (List.filter (( = ) "job-spawn") events) >= 2);
  ignore (rpc cfg Protocol.Drain);
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "daemon did not drain cleanly");
  rm_rf dir

let test_e2e_cache_eviction_under_pressure () =
  let dir = fresh_dir "serve-evict" in
  (* a budget smaller than two rendered results: the third job must evict *)
  let cfg = daemon_cfg ~cache_bytes:400 dir in
  let pid = start_daemon cfg in
  wait_ready cfg;
  let ids =
    List.map
      (fun factor ->
        let id, _ = submit_ok cfg (submit_spec ~factor "c17") in
        let r = rpc cfg (Protocol.Result { id; wait = true }) in
        check (Alcotest.option string) "job done" (Some "done")
          (Json.str_field "state" r);
        id)
      [ 1.30; 1.31; 1.32 ]
  in
  let stats = rpc cfg Protocol.Stats in
  (match Json.member "cache" stats with
  | None -> Alcotest.fail "stats carries no cache block"
  | Some c ->
    let get k = Option.value (Json.int_field k c) ~default:(-1) in
    check Alcotest.bool "evictions under pressure" true (get "evictions" >= 1);
    check Alcotest.bool "resident bytes within budget" true
      (get "bytes" >= 0 && get "bytes" <= get "budget");
    check int "budget echoed" 400 (get "budget"));
  check Alcotest.bool "evictions perf counter ticked" true
    (counter_of stats "evictions" >= 1);
  (* evicted results are re-read from the journal, not lost: every id —
     at most one can still be resident — answers done, and a resubmit of
     the first key is still the idempotent cache path *)
  List.iter
    (fun id ->
      let r = rpc cfg (Protocol.Result { id; wait = false }) in
      check (Alcotest.option string) "evicted result recovered" (Some "done")
        (Json.str_field "state" r);
      match Json.num_field "area" r with
      | Some a when a > 0.0 -> ()
      | _ -> Alcotest.fail "recovered result carries no positive area")
    ids;
  let again = rpc cfg (Protocol.Submit (submit_spec ~factor:1.30 "c17")) in
  check (Alcotest.option Alcotest.bool) "resubmit of evicted key" (Some true)
    (Json.bool_field "resubmitted" again);
  check (Alcotest.option string) "answered terminal" (Some "done")
    (Json.str_field "state" again);
  ignore (rpc cfg Protocol.Drain);
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "daemon did not drain cleanly");
  rm_rf dir

let test_e2e_drain_edges () =
  (* drain with zero in-flight jobs: prompt, clean, fully journaled *)
  let dir = fresh_dir "serve-drain-idle" in
  let cfg = daemon_cfg dir in
  let pid = start_daemon cfg in
  wait_ready cfg;
  let bye = rpc cfg Protocol.Drain in
  check (Alcotest.option Alcotest.bool) "idle drain acknowledged" (Some true)
    (Json.bool_field "ok" bye);
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "idle daemon did not drain cleanly");
  let events = journal_events cfg in
  check Alcotest.bool "idle drain journaled" true
    (List.mem "serve-drain-start" events
    && List.mem "serve-drain-complete" events);
  rm_rf dir;
  (* submit during drain with a full queue: the typed answer must be
     [draining], not [overloaded] — drain outranks the queue bound *)
  let dir = fresh_dir "serve-drain-full" in
  let cfg = daemon_cfg ~parallel:1 ~queue:1 dir in
  let pid = start_daemon cfg in
  wait_ready cfg;
  let a, _ = submit_ok cfg (submit_spec ~sleep:1.0 ~factor:1.30 "c17") in
  wait_state cfg a "running";
  let _b, _ = submit_ok cfg (submit_spec ~sleep:1.0 ~factor:1.31 "c17") in
  ignore (rpc cfg Protocol.Drain);
  let r3 =
    rpc cfg (Protocol.Submit (submit_spec ~sleep:1.0 ~factor:1.32 "c17"))
  in
  check (Alcotest.option Alcotest.bool) "submit during drain rejected"
    (Some false) (Json.bool_field "ok" r3);
  check (Alcotest.option string) "draining outranks overloaded"
    (Some "draining") (Json.str_field "code" r3);
  (* both accepted jobs still finish before the daemon exits *)
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "draining daemon did not exit cleanly");
  let events = journal_events cfg in
  check Alcotest.bool "accepted jobs resolved during drain" true
    (List.length (List.filter (( = ) "job-result") events) >= 2);
  rm_rf dir

(* the acceptance scenario: a loaded daemon behind a fault-injecting
   proxy, one worker SIGKILLed mid-load — every accepted job must still
   resolve, bit-identical to the fault-free baseline *)
let test_e2e_chaos_bit_identical () =
  let specs ~slow =
    (* the first job sleeps long enough to be murdered mid-flight; sleeps
       are identity-only (the key suffix), never part of the signature *)
    List.map
      (fun (factor, s) ->
        submit_spec ~sleep:(if slow then s else 0.0) ~factor "c17")
      [ (1.30, 2.0); (1.31, 0.3); (1.32, 0.3); (1.33, 0.3) ]
  in
  (* baseline: the same sizings from an unmolested daemon *)
  let base_dir = fresh_dir "chaos-base" in
  let base = daemon_cfg base_dir in
  let bpid = start_daemon base in
  wait_ready base;
  let sigs_base =
    List.map
      (fun spec ->
        let id, _ = submit_ok base spec in
        result_signature (rpc base (Protocol.Result { id; wait = true })))
      (specs ~slow:false)
  in
  ignore (rpc base Protocol.Drain);
  ignore (Unix.waitpid [] bpid);
  rm_rf base_dir;
  (* the chaos run *)
  let dir = fresh_dir "chaos-run" in
  let cfg = daemon_cfg ~parallel:2 dir in
  let pid = start_daemon cfg in
  wait_ready cfg;
  let proxy_sock = Filename.concat dir "proxy.sock" in
  let report = Filename.concat dir "chaos-report.json" in
  let arm ?count site = { Chaosproxy.site; count; prob = None } in
  let pcfg =
    { Chaosproxy.default_config with
      Chaosproxy.listen = Transport.Unix_sock proxy_sock;
      upstream = unix_ep cfg;
      faults =
        [ arm ~count:1 "net.accept-drop";
          arm ~count:1 "net.read-stall";
          arm ~count:1 "net.torn-write";
          arm ~count:2 "net.delayed-response" ];
      seed = 42;
      delay_seconds = 0.1;
      report_path = Some report }
  in
  let ppid =
    match Unix.fork () with
    | 0 ->
      let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      Unix.dup2 devnull Unix.stdout;
      Unix.dup2 devnull Unix.stderr;
      ignore (Chaosproxy.run ~config:pcfg ());
      Unix._exit 0
    | p -> p
  in
  wait_for_socket proxy_sock;
  let retry =
    { Client.attempts = 8; backoff_base = 0.05; timeout = Some 10.0; seed = 1 }
  in
  let s = Client.session ~retry (Transport.Unix_sock proxy_sock) in
  let chaos_rpc req =
    match Client.rpc s (Protocol.request_to_json req) with
    | Ok j -> j
    | Error e -> Alcotest.failf "chaos rpc: %s" (Diag.to_string e)
  in
  let ids =
    List.map
      (fun spec ->
        let r = chaos_rpc (Protocol.Submit spec) in
        match (Json.bool_field "ok" r, Json.str_field "id" r) with
        | Some true, Some id -> id
        | _ -> Alcotest.failf "chaos submit rejected: %s" (Json.to_string r))
      (specs ~slow:true)
  in
  (* murder the worker on the slow job, mid-load *)
  Unix.kill (worker_pid cfg (List.hd ids)) Sys.sigkill;
  let sigs_chaos =
    List.map
      (fun id ->
        let r = chaos_rpc (Protocol.Result { id; wait = true }) in
        check (Alcotest.option string) "chaos job terminal" (Some "done")
          (Json.str_field "state" r);
        result_signature r)
      ids
  in
  Client.close_session s;
  List.iter2
    (fun a b -> check string "bit-identical under chaos" a b)
    sigs_base sigs_chaos;
  (* audit: nothing accepted was lost, and the kill forced a respawn *)
  let events = journal_events cfg in
  let count e = List.length (List.filter (( = ) e) events) in
  check Alcotest.bool "every accepted job resolved" true
    (count "serve-accepted" = 4 && count "job-result" >= 4);
  check Alcotest.bool "killed worker respawned" true (count "job-spawn" >= 5);
  ignore (rpc cfg Protocol.Drain);
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "chaos daemon did not drain cleanly");
  (* the proxy's report proves the faults actually fired *)
  (try Unix.kill ppid Sys.sigterm with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] ppid);
  (match
     Json.parse (In_channel.with_open_text report In_channel.input_all)
   with
  | Ok rep ->
    check (Alcotest.option int) "accept-drop fired once" (Some 1)
      (Json.int_field "net.accept-drop" rep);
    check Alcotest.bool "torn-write fired" true
      (Option.value (Json.int_field "net.torn-write" rep) ~default:0 >= 1)
  | Error e -> Alcotest.failf "chaos report unreadable: %s" e);
  rm_rf dir

let () =
  Alcotest.run "serve"
    [ ( "json",
        [ Alcotest.test_case "parse/print round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "numbers keep their bits" `Quick
            test_json_number_bits ] );
      ( "protocol",
        [ Alcotest.test_case "request round trip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "validation" `Quick test_protocol_validation;
          Alcotest.test_case "job identity" `Quick test_protocol_job_key ] );
      ( "queue",
        [ Alcotest.test_case "bounded fifo with high-water mark" `Quick
            test_bounded_queue ] );
      ( "transport",
        [ Alcotest.test_case "endpoint parsing" `Quick test_transport_parse ] );
      ( "cache",
        [ Alcotest.test_case "lru eviction under a byte budget" `Quick
            test_result_cache_lru ] );
      ( "client",
        [ Alcotest.test_case "connect refused after bounded retries" `Quick
            test_client_connect_refused;
          Alcotest.test_case "silent peer is a typed timeout" `Quick
            test_client_net_timeout;
          Alcotest.test_case "torn line is a typed error, not a crash" `Quick
            test_client_torn_response ] );
      ( "daemon",
        [ Alcotest.test_case "submit, result, cache, drain" `Quick
            test_e2e_submit_result_cache;
          Alcotest.test_case "overload, cancel, sigterm drain" `Quick
            test_e2e_overload_cancel_sigterm;
          Alcotest.test_case "sigkill + restart recovers bit-identically" `Slow
            test_e2e_sigkill_restart_recovers;
          Alcotest.test_case "second daemon is locked out" `Quick
            test_e2e_second_daemon_locked;
          Alcotest.test_case "loadgen mix reaches terminal states" `Quick
            test_e2e_loadgen_mix;
          Alcotest.test_case "tcp transport fronts the same daemon" `Quick
            test_e2e_tcp;
          Alcotest.test_case "io deadline reaps a stalled peer" `Quick
            test_e2e_io_deadline_reaps_stalled_peer;
          Alcotest.test_case "watchdog kills a silent worker" `Slow
            test_e2e_watchdog_kills_silent_worker;
          Alcotest.test_case "cache eviction under memory pressure" `Quick
            test_e2e_cache_eviction_under_pressure;
          Alcotest.test_case "drain edges: idle exit, full-queue submit" `Quick
            test_e2e_drain_edges;
          Alcotest.test_case "chaos run is bit-identical to fault-free" `Slow
            test_e2e_chaos_bit_identical ] ) ]
