(* The sizing-as-a-service daemon: wire format, admission queue, and
   end-to-end lifecycle tests that fork a real daemon over a unix socket —
   including the acceptance scenario (SIGKILL with in-flight jobs, restart
   on the same run directory, bit-identical recovered results). *)

module Json = Minflo_serve.Json
module Protocol = Minflo_serve.Protocol
module Bounded_queue = Minflo_serve.Bounded_queue
module Server = Minflo_serve.Server
module Client = Minflo_serve.Client
module Loadgen = Minflo_serve.Loadgen
module Journal = Minflo_runner.Journal
module Diag = Minflo_robust.Diag

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) ("minflo-" ^ name) in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  dir

(* ---------- json ---------- *)

let test_json_roundtrip () =
  let src = {|{"a": 1, "b": [true, null, "xé\n"], "c": -2.5}|} in
  (match Json.parse src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok j ->
    check (Alcotest.option Alcotest.int) "int field" (Some 1)
      (Json.int_field "a" j);
    (match Json.member "b" j with
    | Some (Json.List [ Json.Bool true; Json.Null; Json.Str s ]) ->
      check string "escapes decoded" "x\xc3\xa9\n" s
    | _ -> Alcotest.fail "array shape");
    check (Alcotest.option (Alcotest.float 0.)) "negative number" (Some (-2.5))
      (Json.num_field "c" j);
    (* print/parse round trip is structural identity *)
    match Json.parse (Json.to_string j) with
    | Ok j2 -> check string "reprint stable" (Json.to_string j) (Json.to_string j2)
    | Error e -> Alcotest.failf "reparse: %s" e);
  (match Json.parse {|{"a": 1} trailing|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Json.parse {|{"a": }|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed object accepted"

let test_json_number_bits () =
  (* the daemon's bit-identical recovery rides on numbers surviving
     print/parse unchanged *)
  List.iter
    (fun f ->
      match Json.parse (Json.to_string (Json.Num f)) with
      | Ok (Json.Num g) ->
        if Int64.bits_of_float f <> Int64.bits_of_float g then
          Alcotest.failf "%h reparsed as %h" f g
      | _ -> Alcotest.failf "%h did not reparse as a number" f)
    [ 0.0; -0.0; 0.1; 1.0 /. 3.0; 1e300; 4.94e-324; 12345.6789;
      1.0000000000000002; 745.0; -42.125 ]

(* ---------- protocol ---------- *)

let roundtrip req =
  let j = Protocol.request_to_json req in
  match Protocol.request_of_json j with
  | Error e -> Alcotest.failf "of_json: %s" e
  | Ok req2 ->
    check string "request round trip"
      (Json.to_string j)
      (Json.to_string (Protocol.request_to_json req2))

let submit_spec ?max_seconds ?max_iterations ?max_pivots ?(sleep = 0.0)
    ?(factor = 1.3) circuit =
  { Protocol.circuit; factor; solver = `Simplex; max_seconds; max_iterations;
    max_pivots; sleep_seconds = sleep }

let test_protocol_roundtrip () =
  roundtrip (Protocol.Submit (submit_spec "c17"));
  roundtrip
    (Protocol.Submit
       (submit_spec ~max_seconds:2.5 ~max_iterations:7 ~max_pivots:1000
          ~sleep:0.25 ~factor:0.45 "c432"));
  roundtrip (Protocol.Status "some-id");
  roundtrip (Protocol.Result { id = "some-id"; wait = true });
  roundtrip (Protocol.Result { id = "some-id"; wait = false });
  roundtrip (Protocol.Cancel "some-id");
  roundtrip Protocol.Stats;
  roundtrip Protocol.Health;
  roundtrip Protocol.Drain

let test_protocol_validation () =
  let reject j what =
    match Protocol.request_of_json j with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" what
  in
  reject (Json.Obj [ ("op", Json.Str "launch-missiles") ]) "unknown op";
  reject
    (Json.Obj
       [ ("op", Json.Str "submit"); ("circuit", Json.Str "c17");
         ("factor", Json.Num (-1.0)) ])
    "negative factor";
  reject
    (Json.Obj
       [ ("op", Json.Str "submit"); ("circuit", Json.Str "c17");
         ("factor", Json.Num 1.3); ("solver", Json.Str "quantum") ])
    "unknown solver";
  reject (Json.Obj [ ("op", Json.Str "status") ]) "status without id";
  reject (Json.Str "not an object") "non-object request"

let test_protocol_job_key () =
  let plain = Protocol.job_key (submit_spec "c17") in
  check Alcotest.bool "default budgets need no suffix" false
    (String.contains plain '#');
  let budgeted = Protocol.job_key (submit_spec ~max_iterations:3 "c17") in
  check Alcotest.bool "custom budget gets a suffix" true
    (String.contains budgeted '#');
  if plain = budgeted then
    Alcotest.fail "budget must change the job identity";
  let other = Protocol.job_key (submit_spec ~max_iterations:4 "c17") in
  if budgeted = other then
    Alcotest.fail "different budgets must have different identities";
  check string "same spec, same key" budgeted
    (Protocol.job_key (submit_spec ~max_iterations:3 "c17"))

(* ---------- bounded queue ---------- *)

let test_bounded_queue () =
  let q = Bounded_queue.create ~capacity:2 in
  check Alcotest.bool "starts empty" true (Bounded_queue.is_empty q);
  (match Bounded_queue.push q "a" with Ok () -> () | Error _ -> Alcotest.fail "push a");
  (match Bounded_queue.push q "b" with Ok () -> () | Error _ -> Alcotest.fail "push b");
  (match Bounded_queue.push q "c" with
  | Error (`Full 2) -> ()
  | Error (`Full n) -> Alcotest.failf "full at depth %d" n
  | Ok () -> Alcotest.fail "push past capacity accepted");
  check (Alcotest.option string) "fifo pop" (Some "a") (Bounded_queue.pop q);
  (match Bounded_queue.push q "c" with Ok () -> () | Error _ -> Alcotest.fail "push c");
  (* recovery path may exceed the bound *)
  Bounded_queue.push_force q "forced";
  check int "forced past capacity" 3 (Bounded_queue.length q);
  check int "capacity unchanged" 2 (Bounded_queue.capacity q);
  check int "peak is the high-water mark" 3 (Bounded_queue.peak q);
  check (Alcotest.option string) "pop b" (Some "b") (Bounded_queue.pop q);
  check (Alcotest.option string) "pop c" (Some "c") (Bounded_queue.pop q);
  check (Alcotest.option string) "pop forced" (Some "forced") (Bounded_queue.pop q);
  check (Alcotest.option string) "drained" None (Bounded_queue.pop q)

(* ---------- end to end: a forked daemon over a real socket ---------- *)

let daemon_cfg ?(parallel = 2) ?(queue = 16) dir =
  { Server.socket_path = Filename.concat dir "minflo.sock";
    run_dir = Filename.concat dir "run";
    parallel;
    queue_capacity = queue;
    timeout_seconds = Some 60.0;
    retries = 1;
    backoff_base = 0.05;
    preflight = true }

let start_daemon cfg =
  match Unix.fork () with
  | 0 ->
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 devnull Unix.stdout;
    Unix.dup2 devnull Unix.stderr;
    let code =
      match Server.run ~config:cfg () with
      | Ok () -> 0
      | Error (Diag.Journal_locked _) -> 3
      | Error _ -> 1
    in
    Unix._exit code
  | pid -> pid

let rpc cfg req =
  match
    Client.one_shot ~socket:cfg.Server.socket_path
      (Protocol.request_to_json req)
  with
  | Ok j -> j
  | Error e -> Alcotest.failf "rpc: %s" (Diag.to_string e)

let wait_ready cfg =
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec go () =
    let up =
      match
        Client.one_shot ~socket:cfg.Server.socket_path
          (Protocol.request_to_json Protocol.Health)
      with
      | Ok j -> Json.bool_field "ok" j = Some true
      | Error _ -> false
    in
    if up then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "daemon never became healthy"
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

let wait_state cfg id want =
  let deadline = Unix.gettimeofday () +. 15.0 in
  let rec go () =
    match Json.str_field "state" (rpc cfg (Protocol.Status id)) with
    | Some st when st = want -> ()
    | _ when Unix.gettimeofday () > deadline ->
      Alcotest.failf "job %s never reached state %s" id want
    | _ ->
      Unix.sleepf 0.05;
      go ()
  in
  go ()

let submit_ok cfg spec =
  let r = rpc cfg (Protocol.Submit spec) in
  match (Json.bool_field "ok" r, Json.str_field "id" r) with
  | Some true, Some id -> (id, r)
  | _ -> Alcotest.failf "submit rejected: %s" (Json.to_string r)

let stop_daemon pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let _, status = Unix.waitpid [] pid in
  status

let journal_events cfg =
  List.map fst
    (Journal.scan (Filename.concat cfg.Server.run_dir "journal.jsonl"))

let counter_of stats name =
  match Json.member "counters" stats with
  | Some c -> Option.value (Json.int_field name c) ~default:(-1)
  | None -> -1

let test_e2e_submit_result_cache () =
  let dir = fresh_dir "serve-e2e" in
  let cfg = daemon_cfg dir in
  let pid = start_daemon cfg in
  wait_ready cfg;
  let id, _ = submit_ok cfg (submit_spec "c17") in
  let res = rpc cfg (Protocol.Result { id; wait = true }) in
  check (Alcotest.option string) "terminal state" (Some "done")
    (Json.str_field "state" res);
  (match Json.num_field "area" res with
  | Some a when a > 0.0 -> ()
  | _ -> Alcotest.fail "result carries no positive area");
  check (Alcotest.option Alcotest.bool) "met" (Some true)
    (Json.bool_field "met" res);
  (* idempotent resubmit is answered from the cache, not re-solved *)
  let again = rpc cfg (Protocol.Submit (submit_spec "c17")) in
  check (Alcotest.option Alcotest.bool) "resubmitted flag" (Some true)
    (Json.bool_field "resubmitted" again);
  check (Alcotest.option string) "served from cache" (Some "done")
    (Json.str_field "state" again);
  let stats = rpc cfg (Protocol.Stats) in
  check Alcotest.bool "cache hit counted" true (counter_of stats "cache_hits" >= 1);
  (* unknown ids are a typed error, not a hang *)
  let missing = rpc cfg (Protocol.Status "no-such-id") in
  check (Alcotest.option Alcotest.bool) "unknown id rejected" (Some false)
    (Json.bool_field "ok" missing);
  let bye = rpc cfg Protocol.Drain in
  check (Alcotest.option Alcotest.bool) "drain acknowledged" (Some true)
    (Json.bool_field "ok" bye);
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "daemon did not exit cleanly after drain");
  let events = journal_events cfg in
  List.iter
    (fun e ->
      if not (List.mem e events) then Alcotest.failf "journal lacks %s" e)
    [ "serve-start"; "serve-accepted"; "job-result"; "serve-drain-start";
      "serve-drain-complete" ];
  rm_rf dir

let test_e2e_overload_cancel_sigterm () =
  let dir = fresh_dir "serve-overload" in
  let cfg = daemon_cfg ~parallel:1 ~queue:1 dir in
  let pid = start_daemon cfg in
  wait_ready cfg;
  (* slot: one slow job running, one parked in the admission queue *)
  let a, _ = submit_ok cfg (submit_spec ~sleep:5.0 ~factor:1.30 "c17") in
  wait_state cfg a "running";
  let b, _ = submit_ok cfg (submit_spec ~sleep:5.0 ~factor:1.31 "c17") in
  let r3 = rpc cfg (Protocol.Submit (submit_spec ~sleep:5.0 ~factor:1.32 "c17")) in
  check (Alcotest.option Alcotest.bool) "third submit rejected" (Some false)
    (Json.bool_field "ok" r3);
  check (Alcotest.option string) "typed overload" (Some "overloaded")
    (Json.str_field "code" r3);
  let stats = rpc cfg (Protocol.Stats) in
  check Alcotest.bool "rejection counted" true
    (counter_of stats "rejections" >= 1);
  (* cancel the queued job, then the running one *)
  let cb = rpc cfg (Protocol.Cancel b) in
  check (Alcotest.option Alcotest.bool) "queued cancel ok" (Some true)
    (Json.bool_field "ok" cb);
  let ca = rpc cfg (Protocol.Cancel a) in
  check (Alcotest.option Alcotest.bool) "running cancel ok" (Some true)
    (Json.bool_field "ok" ca);
  let ra = rpc cfg (Protocol.Result { id = a; wait = true }) in
  check (Alcotest.option string) "running job cancelled" (Some "cancelled")
    (Json.str_field "state" ra);
  (* cancelling a terminal job is a typed no-op *)
  let again = rpc cfg (Protocol.Cancel a) in
  check (Alcotest.option string) "already terminal" (Some "already-terminal")
    (Json.str_field "code" again);
  (* SIGTERM drains: nothing is in flight, so the exit is prompt and clean *)
  (match stop_daemon pid with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "daemon did not drain cleanly on SIGTERM");
  let events = journal_events cfg in
  check Alcotest.bool "drain journaled" true
    (List.mem "serve-drain-start" events
    && List.mem "serve-drain-complete" events);
  check Alcotest.bool "cancellations journaled" true
    (List.length (List.filter (fun e -> e = "job-cancelled") events) >= 2);
  rm_rf dir

(* fields whose equality defines "the same sizing result" — identity and
   provenance fields ([id] embeds the sleep suffix, [resumed] records the
   recovery itself) are excluded by construction *)
let result_signature res =
  String.concat ";"
    (List.map
       (fun k ->
         let v =
           match Json.member k res with
           | Some v -> Json.to_string v
           | None -> "<missing>"
         in
         k ^ "=" ^ v)
       [ "circuit"; "factor"; "solver"; "area"; "area_ratio"; "cp"; "target";
         "met"; "iterations"; "saving_pct"; "stop" ])

let test_e2e_sigkill_restart_recovers () =
  (* baseline: the same two sizings served by an uninterrupted daemon *)
  let base_dir = fresh_dir "serve-baseline" in
  let base = daemon_cfg base_dir in
  let bpid = start_daemon base in
  wait_ready base;
  let b1, _ = submit_ok base (submit_spec ~factor:1.30 "c17") in
  let b2, _ = submit_ok base (submit_spec ~factor:1.35 "c17") in
  let sig1 = result_signature (rpc base (Protocol.Result { id = b1; wait = true })) in
  let sig2 = result_signature (rpc base (Protocol.Result { id = b2; wait = true })) in
  ignore (rpc base Protocol.Drain);
  ignore (Unix.waitpid [] bpid);
  rm_rf base_dir;
  (* the crash run: one job mid-flight, one queued, daemon SIGKILLed *)
  let dir = fresh_dir "serve-recover" in
  let cfg = daemon_cfg ~parallel:1 dir in
  let pid = start_daemon cfg in
  wait_ready cfg;
  let k1, _ = submit_ok cfg (submit_spec ~sleep:2.0 ~factor:1.30 "c17") in
  let k2, _ = submit_ok cfg (submit_spec ~sleep:2.0 ~factor:1.35 "c17") in
  wait_state cfg k1 "running";
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  (* restart on the same run directory: the journal replays, both accepted
     jobs are requeued and must reach terminal states *)
  let pid2 = start_daemon cfg in
  wait_ready cfg;
  let events = journal_events cfg in
  check Alcotest.bool "recovery journaled" true
    (List.mem "serve-recovered" events);
  let r1 = rpc cfg (Protocol.Result { id = k1; wait = true }) in
  let r2 = rpc cfg (Protocol.Result { id = k2; wait = true }) in
  check (Alcotest.option string) "k1 terminal" (Some "done")
    (Json.str_field "state" r1);
  check (Alcotest.option string) "k2 terminal" (Some "done")
    (Json.str_field "state" r2);
  check string "k1 bit-identical to uninterrupted run" sig1 (result_signature r1);
  check string "k2 bit-identical to uninterrupted run" sig2 (result_signature r2);
  (* a served key resubmitted after recovery is a pure cache hit *)
  let again =
    rpc cfg (Protocol.Submit (submit_spec ~sleep:2.0 ~factor:1.30 "c17"))
  in
  check (Alcotest.option Alcotest.bool) "recovered result is cached" (Some true)
    (Json.bool_field "resubmitted" again);
  let stats = rpc cfg (Protocol.Stats) in
  check Alcotest.bool "cache hit counted after recovery" true
    (counter_of stats "cache_hits" >= 1);
  ignore (rpc cfg Protocol.Drain);
  (match Unix.waitpid [] pid2 with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "restarted daemon did not drain cleanly");
  (* audit: every accepted job reached a terminal journal event *)
  let events = journal_events cfg in
  let count e = List.length (List.filter (( = ) e) events) in
  check Alcotest.bool "no accepted job lost" true
    (count "serve-accepted" = 2 && count "job-result" >= 2);
  rm_rf dir

let test_e2e_second_daemon_locked () =
  let dir = fresh_dir "serve-locked" in
  let cfg = daemon_cfg dir in
  let pid = start_daemon cfg in
  wait_ready cfg;
  (* same run directory, different socket: must fail fast, typed *)
  let cfg2 =
    { cfg with Server.socket_path = Filename.concat dir "other.sock" }
  in
  let pid2 = start_daemon cfg2 in
  (match Unix.waitpid [] pid2 with
  | _, Unix.WEXITED 3 -> ()
  | _, Unix.WEXITED 0 -> Alcotest.fail "second daemon ran on a locked run dir"
  | _ -> Alcotest.fail "second daemon died with the wrong diagnostic");
  ignore (rpc cfg Protocol.Drain);
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "first daemon did not drain cleanly");
  rm_rf dir

let test_e2e_loadgen_mix () =
  let dir = fresh_dir "serve-loadgen" in
  let cfg = daemon_cfg dir in
  let pid = start_daemon cfg in
  wait_ready cfg;
  let summary =
    match
      Loadgen.run
        { Loadgen.default_config with
          Loadgen.socket = cfg.Server.socket_path;
          circuits = [ "c17" ];
          count = 2;
          lint_bad = 1;
          tiny_budget = 1;
          deadline_seconds = 60.0 }
    with
    | Ok j -> j
    | Error e -> Alcotest.failf "loadgen: %s" (Diag.to_string e)
  in
  let field k = Option.value (Json.int_field k summary) ~default:(-1) in
  check int "submitted" 4 (field "submitted");
  check int "lint gate rejected the bad circuit" 1 (field "lint_rejected");
  (* the tiny-budget job still terminates (best-feasible or failed), and
     every well-formed job reaches "done" *)
  check Alcotest.bool "all accepted jobs terminal" true
    (field "accepted" = field "done" + field "failed" + field "cancelled");
  check Alcotest.bool "well-formed jobs done" true (field "done" >= 2);
  ignore (rpc cfg Protocol.Drain);
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "daemon did not drain cleanly");
  rm_rf dir

let () =
  Alcotest.run "serve"
    [ ( "json",
        [ Alcotest.test_case "parse/print round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "numbers keep their bits" `Quick
            test_json_number_bits ] );
      ( "protocol",
        [ Alcotest.test_case "request round trip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "validation" `Quick test_protocol_validation;
          Alcotest.test_case "job identity" `Quick test_protocol_job_key ] );
      ( "queue",
        [ Alcotest.test_case "bounded fifo with high-water mark" `Quick
            test_bounded_queue ] );
      ( "daemon",
        [ Alcotest.test_case "submit, result, cache, drain" `Quick
            test_e2e_submit_result_cache;
          Alcotest.test_case "overload, cancel, sigterm drain" `Quick
            test_e2e_overload_cancel_sigterm;
          Alcotest.test_case "sigkill + restart recovers bit-identically" `Slow
            test_e2e_sigkill_restart_recovers;
          Alcotest.test_case "second daemon is locked out" `Quick
            test_e2e_second_daemon_locked;
          Alcotest.test_case "loadgen mix reaches terminal states" `Quick
            test_e2e_loadgen_mix ] ) ]
