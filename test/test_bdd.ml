(* Tests for the BDD package and the formal equivalence checker. *)

module Bdd = Minflo_bdd.Bdd
module Check = Minflo_bdd.Check
module Netlist = Minflo_netlist.Netlist
module Gate = Minflo_netlist.Gate
module Gen = Minflo_netlist.Generators
module Transform = Minflo_netlist.Transform
module Rng = Minflo_util.Rng

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* ---------- core BDD identities ---------- *)

let test_constants () =
  let m = Bdd.manager () in
  check bool "true is true" true (Bdd.is_true m (Bdd.bdd_true m));
  check bool "false is false" true (Bdd.is_false m (Bdd.bdd_false m));
  check bool "distinct" false (Bdd.equal (Bdd.bdd_true m) (Bdd.bdd_false m))

let test_identities () =
  let m = Bdd.manager () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  let ( &&& ) = Bdd.bdd_and m and ( ||| ) = Bdd.bdd_or m in
  let neg = Bdd.bdd_not m and ( ^^^ ) = Bdd.bdd_xor m in
  (* canonical equality of algebraically equal functions *)
  check bool "commutativity" true (Bdd.equal (a &&& b) (b &&& a));
  check bool "de morgan" true (Bdd.equal (neg (a &&& b)) (neg a ||| neg b));
  check bool "distributivity" true
    (Bdd.equal (a &&& (b ||| c)) ((a &&& b) ||| (a &&& c)));
  check bool "xor via and/or" true
    (Bdd.equal (a ^^^ b) ((a &&& neg b) ||| (neg a &&& b)));
  check bool "double negation" true (Bdd.equal a (neg (neg a)));
  check bool "excluded middle" true (Bdd.is_true m (a ||| neg a));
  check bool "contradiction" true (Bdd.is_false m (a &&& neg a));
  check bool "xor self" true (Bdd.is_false m (a ^^^ a));
  check bool "ite as mux" true
    (Bdd.equal (Bdd.ite m c a b) ((c &&& a) ||| (neg c &&& b)))

let test_eval_restrict () =
  let m = Bdd.manager () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  let f = Bdd.bdd_xor m a b in
  check bool "eval 01" true (Bdd.eval m f (fun i -> i = 1));
  check bool "eval 11" false (Bdd.eval m f (fun _ -> true));
  check bool "restrict a=1" true (Bdd.equal (Bdd.restrict m f 0 true) (Bdd.bdd_not m b));
  check bool "restrict a=0" true (Bdd.equal (Bdd.restrict m f 0 false) b)

let test_support_satcount () =
  let m = Bdd.manager () in
  let a = Bdd.var m 0 and c = Bdd.var m 2 in
  let f = Bdd.bdd_and m a (Bdd.bdd_not m c) in
  check (Alcotest.list int) "support" [ 0; 2 ] (Bdd.support m f);
  check (Alcotest.float 1e-9) "satcount over 3 vars" 2.0 (Bdd.sat_count m f ~nvars:3);
  check (Alcotest.float 1e-9) "satcount true" 8.0
    (Bdd.sat_count m (Bdd.bdd_true m) ~nvars:3)

let test_any_sat () =
  let m = Bdd.manager () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  let f = Bdd.bdd_and m (Bdd.bdd_not m a) b in
  (match Bdd.any_sat m f with
  | Some assign ->
    let get v = Option.value ~default:false (List.assoc_opt v assign) in
    check bool "assignment satisfies" true (Bdd.eval m f get)
  | None -> Alcotest.fail "expected sat");
  check bool "unsat" true (Bdd.any_sat m (Bdd.bdd_false m) = None)

let prop_bdd_matches_truth_table =
  QCheck.Test.make ~name:"random expressions: BDD agrees with direct eval"
    ~count:200 QCheck.small_nat (fun seed ->
      let rng = Rng.create (seed + 31) in
      let m = Bdd.manager () in
      let nvars = 3 + Rng.int rng 3 in
      (* random expression tree, evaluated both ways *)
      let rec build depth =
        if depth = 0 || Rng.int rng 4 = 0 then begin
          let v = Rng.int rng nvars in
          ((fun a -> a.(v)), Bdd.var m v)
        end
        else begin
          let f1, b1 = build (depth - 1) in
          let f2, b2 = build (depth - 1) in
          match Rng.int rng 4 with
          | 0 -> ((fun a -> f1 a && f2 a), Bdd.bdd_and m b1 b2)
          | 1 -> ((fun a -> f1 a || f2 a), Bdd.bdd_or m b1 b2)
          | 2 -> ((fun a -> f1 a <> f2 a), Bdd.bdd_xor m b1 b2)
          | _ -> ((fun a -> not (f1 a)), Bdd.bdd_not m b1)
        end
      in
      let f, b = build 5 in
      let ok = ref true in
      for bits = 0 to (1 lsl nvars) - 1 do
        let a = Array.init nvars (fun i -> (bits lsr i) land 1 = 1) in
        if f a <> Bdd.eval m b (fun i -> a.(i)) then ok := false
      done;
      !ok)

let test_size_grows_reasonably () =
  (* the parity function has a linear-size BDD *)
  let m = Bdd.manager () in
  let f =
    List.fold_left (fun acc i -> Bdd.bdd_xor m acc (Bdd.var m i))
      (Bdd.bdd_false m) (List.init 16 Fun.id)
  in
  check bool "parity is linear" true (Bdd.size m f <= (2 * 16) + 2)

(* ---------- netlist equivalence ---------- *)

let test_equiv_self () =
  let nl = Gen.c17 () in
  check bool "c17 = c17" true (Check.equivalent nl nl = Check.Equivalent)

let test_equiv_transforms () =
  (* the transforms are FORMALLY equivalence-preserving *)
  List.iter
    (fun nl ->
      check bool "expand_xor" true
        (Check.equivalent nl (Transform.expand_xor nl) = Check.Equivalent);
      check bool "to_nand_inv" true
        (Check.equivalent nl (Transform.to_nand_inv nl) = Check.Equivalent))
    [ Gen.parity_tree ~width:6 ();
      Gen.ripple_carry_adder ~bits:4 ();
      Gen.alu ~width:3 ();
      Gen.comparator ~width:4 () ]

let test_equiv_detects_difference () =
  let make flip =
    let nl = Netlist.create () in
    let a = Netlist.add_input nl "a" in
    let b = Netlist.add_input nl "b" in
    let g = Netlist.add_gate nl "g" (if flip then Gate.Nor else Gate.Nand) [ a; b ] in
    Netlist.mark_output nl g;
    Netlist.validate nl;
    nl
  in
  match Check.equivalent (make false) (make true) with
  | Check.Differ { output_index; counterexample } ->
    check int "output 0" 0 output_index;
    (* the counterexample must actually distinguish NAND from NOR *)
    let v name = List.assoc name counterexample in
    check bool "cex valid" true ((not (v "a" && v "b")) <> not (v "a" || v "b"))
  | _ -> Alcotest.fail "expected Differ"

let test_equiv_interface_mismatch () =
  let a = Gen.parity_tree ~width:4 () in
  let b = Gen.parity_tree ~width:5 () in
  match Check.equivalent a b with
  | Check.Inputs_mismatch (4, 5) -> ()
  | _ -> Alcotest.fail "expected input mismatch"

let test_adder_formally_correct () =
  (* exhaustive formal check of the generator against integer addition *)
  List.iter
    (fun style ->
      let bits = 4 in
      let nl = Gen.ripple_carry_adder ~style ~bits () in
      let spec input =
        let field off =
          let v = ref 0 in
          for i = bits - 1 downto 0 do
            v := (2 * !v) + if input.(off + i) then 1 else 0
          done;
          !v
        in
        let sum = field 0 + field bits + if input.(2 * bits) then 1 else 0 in
        Array.init (bits + 1) (fun i -> (sum lsr i) land 1 = 1)
      in
      check bool "adder = +" true (Check.check_function nl ~spec))
    [ `Compact; `Nand ]

let test_mux_formally_correct () =
  let nl = Gen.mux_tree ~select_bits:2 () in
  let spec input =
    let sel = (if input.(4) then 1 else 0) lor if input.(5) then 2 else 0 in
    [| input.(sel) |]
  in
  check bool "mux = select" true (Check.check_function nl ~spec)

let prop_random_dag_equiv_under_mapping =
  QCheck.Test.make
    ~name:"random netlists stay formally equivalent under NAND mapping"
    ~count:40 QCheck.small_nat (fun seed ->
      let nl = Gen.random_dag ~gates:25 ~inputs:6 ~outputs:4 ~seed:(seed + 900) () in
      Check.equivalent nl (Transform.to_nand_inv nl) = Check.Equivalent)

let prop_bench_roundtrip_equiv =
  QCheck.Test.make
    ~name:"bench write/parse round-trips preserve the function (formally)"
    ~count:30 QCheck.small_nat (fun seed ->
      let nl = Gen.random_dag ~gates:20 ~inputs:5 ~outputs:3 ~seed:(seed + 333) () in
      let nl2 =
        Minflo_netlist.Bench_format.parse_string_exn
          (Minflo_netlist.Bench_format.to_string nl)
      in
      Check.equivalent nl nl2 = Check.Equivalent)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "bdd"
    [ ( "core",
        [ tc "constants" `Quick test_constants;
          tc "identities" `Quick test_identities;
          tc "eval/restrict" `Quick test_eval_restrict;
          tc "support/satcount" `Quick test_support_satcount;
          tc "any_sat" `Quick test_any_sat;
          tc "parity size" `Quick test_size_grows_reasonably;
          QCheck_alcotest.to_alcotest prop_bdd_matches_truth_table ] );
      ( "equivalence",
        [ tc "reflexive" `Quick test_equiv_self;
          tc "transforms preserve" `Quick test_equiv_transforms;
          tc "detects differences" `Quick test_equiv_detects_difference;
          tc "interface mismatch" `Quick test_equiv_interface_mismatch;
          tc "adder vs integer add" `Quick test_adder_formally_correct;
          tc "mux vs select" `Quick test_mux_formally_correct;
          QCheck_alcotest.to_alcotest prop_random_dag_equiv_under_mapping;
          QCheck_alcotest.to_alcotest prop_bench_roundtrip_equiv ] ) ]
