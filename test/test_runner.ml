(* Tests for the crash-safe batch runner: checkpoint round trips and
   validation, journal crash tolerance, supervised isolation with
   retry/backoff/quarantine, bit-identical resume, and cross-solver
   differential verification. *)

module Diag = Minflo_robust.Diag
module Budget = Minflo_robust.Budget
module Fault = Minflo_robust.Fault
module Generators = Minflo_netlist.Generators
module Bench_format = Minflo_netlist.Bench_format
module Minflotransit = Minflo_sizing.Minflotransit
module Tilos = Minflo_sizing.Tilos
module Job = Minflo_runner.Job
module Checkpoint = Minflo_runner.Checkpoint
module Journal = Minflo_runner.Journal
module Supervisor = Minflo_runner.Supervisor
module Differential = Minflo_runner.Differential
module Batch = Minflo_runner.Batch

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let fresh_dir name =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "minflo-runner-%s-%d" name (Unix.getpid ()))
  in
  rm_rf d;
  Unix.mkdir d 0o755;
  d

let bits = Int64.bits_of_float

let check_float_bits name a b =
  if bits a <> bits b then
    Alcotest.failf "%s: %.17g (%016Lx) <> %.17g (%016Lx)" name a (bits a) b
      (bits b)

(* ---------- jobs ---------- *)

let test_job_id_and_slug () =
  let j = { Job.circuit = "c432"; factor = 0.5; solver = `Simplex } in
  check string "id" "c432@0.500/simplex" (Job.id j);
  let p = { Job.circuit = "bench/my adder.bench"; factor = 0.75; solver = `Auto } in
  let slug = Job.file_slug p in
  String.iter
    (fun c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '.' || c = '_' || c = '-'
      in
      if not ok then Alcotest.failf "slug %S has unsafe char %c" slug c)
    slug

let test_job_cross () =
  let grid =
    Job.cross ~circuits:[ "a"; "b" ] ~factors:[ 0.5; 0.8 ]
      ~solvers:[ `Simplex; `Ssp ]
  in
  check int "grid size" 8 (List.length grid);
  check string "circuits-major order" "a@0.500/simplex" (Job.id (List.hd grid));
  (* ids are unique *)
  let ids = List.sort_uniq compare (List.map Job.id grid) in
  check int "unique ids" 8 (List.length ids)

let test_job_solver_names () =
  List.iter
    (fun s ->
      match Job.solver_of_string (Job.solver_name s) with
      | Some s' -> check bool "solver name round trip" true (s = s')
      | None -> Alcotest.failf "unparsable solver name %s" (Job.solver_name s))
    [ `Auto; `Simplex; `Ssp; `Bellman_ford ]

(* ---------- checkpoints ---------- *)

let sample_checkpoint () =
  { Checkpoint.circuit = "c17";
    circuit_hash = Checkpoint.hash_netlist (Generators.c17 ());
    target = 0.1 +. 0.2 (* deliberately not representable prettily *);
    solver = "simplex";
    fault_seed = Some 42;
    snapshot =
      { Minflotransit.snap_iter = 7;
        snap_sizes = [| 1.0; Float.pi; 1e-300; 0.1; 3.3333333333333335 |];
        snap_area = 12.345678901234567;
        snap_eta = 0.125;
        snap_osc_area = 1.0000000000000002;
        snap_osc_repeats = 2;
        snap_solver = Some "ssp" };
    tilos =
      { Tilos.sizes = [| 1.1; 2.2; 4.4; 0.30000000000000004; 1.0 |];
        met = true;
        bumps = 31;
        final_cp = 0.09999999999999999;
        area = 17.5 };
    budget_iterations = 9;
    budget_pivots = 12345;
    budget_elapsed = 1.5 }

let test_checkpoint_roundtrip () =
  let dir = fresh_dir "ckpt-rt" in
  let file = Filename.concat dir "a.ckpt" in
  let ck = sample_checkpoint () in
  (match Checkpoint.save file ck with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %s" (Diag.to_string e));
  (match Checkpoint.load file with
  | Error e -> Alcotest.failf "load: %s" (Diag.to_string e)
  | Ok ck' ->
    check string "circuit" ck.circuit ck'.Checkpoint.circuit;
    check bool "hash" true (ck.circuit_hash = ck'.Checkpoint.circuit_hash);
    check string "solver" ck.solver ck'.Checkpoint.solver;
    check bool "fault seed" true (ck.fault_seed = ck'.Checkpoint.fault_seed);
    check_float_bits "target" ck.target ck'.Checkpoint.target;
    let s = ck.snapshot and s' = ck'.Checkpoint.snapshot in
    check int "iter" s.snap_iter s'.Minflotransit.snap_iter;
    check int "osc repeats" s.snap_osc_repeats s'.Minflotransit.snap_osc_repeats;
    check bool "snap solver" true (s.snap_solver = s'.Minflotransit.snap_solver);
    check_float_bits "area" s.snap_area s'.Minflotransit.snap_area;
    check_float_bits "eta" s.snap_eta s'.Minflotransit.snap_eta;
    check_float_bits "osc area" s.snap_osc_area s'.Minflotransit.snap_osc_area;
    Array.iteri
      (fun i x -> check_float_bits (Printf.sprintf "size %d" i) x
          s'.Minflotransit.snap_sizes.(i))
      s.snap_sizes;
    Array.iteri
      (fun i x -> check_float_bits (Printf.sprintf "tilos size %d" i) x
          ck'.Checkpoint.tilos.Tilos.sizes.(i))
      ck.tilos.Tilos.sizes;
    check_float_bits "tilos cp" ck.tilos.final_cp ck'.Checkpoint.tilos.Tilos.final_cp;
    check int "budget iterations" ck.budget_iterations ck'.Checkpoint.budget_iterations;
    check int "budget pivots" ck.budget_pivots ck'.Checkpoint.budget_pivots;
    check_float_bits "budget elapsed" ck.budget_elapsed ck'.Checkpoint.budget_elapsed);
  rm_rf dir

let test_checkpoint_rejects_garbage () =
  let dir = fresh_dir "ckpt-bad" in
  let file = Filename.concat dir "bad.ckpt" in
  let oc = open_out file in
  output_string oc "not a checkpoint\n";
  close_out oc;
  (match Checkpoint.load file with
  | Error (Diag.Checkpoint_invalid _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok _ -> Alcotest.fail "garbage accepted");
  (* a truncated file (crash mid-write of a non-atomic copy) is rejected *)
  let good = Filename.concat dir "good.ckpt" in
  (match Checkpoint.save good (sample_checkpoint ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %s" (Diag.to_string e));
  let text =
    let ic = open_in_bin good in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let oc = open_out_bin file in
  output_string oc (String.sub text 0 (String.length text / 2));
  close_out oc;
  (match Checkpoint.load file with
  | Error (Diag.Checkpoint_invalid _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok _ -> Alcotest.fail "truncated checkpoint accepted");
  (* missing file is an io error, not a crash *)
  (match Checkpoint.load (Filename.concat dir "absent.ckpt") with
  | Error (Diag.Io_error _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok _ -> Alcotest.fail "missing checkpoint accepted");
  rm_rf dir

let test_checkpoint_validate () =
  let dir = fresh_dir "ckpt-val" in
  let file = Filename.concat dir "v.ckpt" in
  let ck = sample_checkpoint () in
  let hash = ck.circuit_hash in
  (match Checkpoint.validate ~file ck ~circuit_hash:hash ~target:ck.target
           ~solver:"simplex" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid rejected: %s" (Diag.to_string e));
  (match Checkpoint.validate ~file ck ~circuit_hash:(Int64.add hash 1L)
           ~target:ck.target ~solver:"simplex" with
  | Error (Diag.Checkpoint_invalid { file = f; _ }) ->
    check string "error carries the file" file f
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok () -> Alcotest.fail "foreign circuit accepted");
  (match Checkpoint.validate ~file ck ~circuit_hash:hash ~target:ck.target
           ~solver:"ssp" with
  | Error (Diag.Checkpoint_invalid _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok () -> Alcotest.fail "wrong solver accepted");
  (match Checkpoint.validate ~file ck ~circuit_hash:hash
           ~target:(ck.target *. (1.0 +. 1e-15)) ~solver:"simplex" with
  | Error (Diag.Checkpoint_invalid _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
  | Ok () -> Alcotest.fail "different target accepted");
  rm_rf dir

let test_circuit_hash_sensitivity () =
  let h8 = Checkpoint.hash_netlist (Generators.ripple_carry_adder ~bits:8 ()) in
  let h8' = Checkpoint.hash_netlist (Generators.ripple_carry_adder ~bits:8 ()) in
  let h9 = Checkpoint.hash_netlist (Generators.ripple_carry_adder ~bits:9 ()) in
  check bool "stable" true (h8 = h8');
  check bool "sensitive" true (h8 <> h9)

(* ---------- journal ---------- *)

let test_journal_completed_scan () =
  let dir = fresh_dir "journal" in
  let path = Filename.concat dir "journal.jsonl" in
  (match Journal.open_append path with
  | Error e -> Alcotest.failf "open: %s" (Diag.to_string e)
  | Ok j ->
    Journal.event j ~job:"a@0.500/simplex"
      ~fields:[ Journal.field_float "area" 12.5 ] "job-ok";
    Journal.event j ~job:"b@0.500/simplex"
      ~error:(Diag.Job_timeout { job = "b@0.500/simplex"; seconds = 1.0 })
      "job-failed";
    Journal.event j ~job:"c \"quoted\"@0.500/ssp"
      ~fields:[ Journal.field_float "area" 99.0 ] "job-ok";
    Journal.close j);
  (* simulate a crash mid-append: a truncated trailing line *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"event\": \"job-ok\", \"job\": \"d@0.5";
  close_out oc;
  let table = Journal.completed path in
  check int "two completed jobs" 2 (Hashtbl.length table);
  (match Hashtbl.find_opt table "a@0.500/simplex" with
  | Some a -> check_float_bits "area read back" 12.5 a
  | None -> Alcotest.fail "job a missing");
  check bool "escaped job key survives" true
    (Hashtbl.mem table "c \"quoted\"@0.500/ssp");
  check bool "failed job not completed" false (Hashtbl.mem table "b@0.500/simplex");
  (* scanning a missing journal is empty, not an error *)
  check int "missing journal" 0
    (Hashtbl.length (Journal.completed (Filename.concat dir "nope.jsonl")));
  rm_rf dir

let test_journal_torn_line_recovery () =
  let dir = fresh_dir "journal-torn" in
  let path = Filename.concat dir "journal.jsonl" in
  (match Journal.open_append path with
  | Error e -> Alcotest.failf "open: %s" (Diag.to_string e)
  | Ok j ->
    Journal.event j ~job:"a@0.500/simplex"
      ~fields:[ Journal.field_float "area" 1.0 ] "job-ok";
    Journal.close j);
  (* crash mid-append: the final line has no terminating newline *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"event\": \"job-ok\", \"job\": \"torn@0.5";
  close_out oc;
  (* the next open_append must seal the torn line so later events are not
     glued onto it *)
  (match Journal.open_append path with
  | Error e -> Alcotest.failf "reopen: %s" (Diag.to_string e)
  | Ok j ->
    Journal.event j ~job:"b@0.500/simplex"
      ~fields:[ Journal.field_float "area" 2.0 ] "job-ok";
    Journal.close j);
  let table = Journal.completed path in
  check int "both intact jobs completed" 2 (Hashtbl.length table);
  check bool "pre-crash job" true (Hashtbl.mem table "a@0.500/simplex");
  check bool "post-crash job" true (Hashtbl.mem table "b@0.500/simplex");
  check bool "torn job discarded" false
    (Hashtbl.fold
       (fun k _ acc ->
         acc || (String.length k >= 4 && String.sub k 0 4 = "torn"))
       table false);
  (* sealing is idempotent: a clean reopen adds nothing *)
  let size_of p = (Unix.stat p).Unix.st_size in
  let before = size_of path in
  (match Journal.open_append path with
  | Error e -> Alcotest.failf "idempotent reopen: %s" (Diag.to_string e)
  | Ok j -> Journal.close j);
  check int "clean reopen writes nothing" before (size_of path);
  rm_rf dir

let test_checkpoint_special_floats () =
  (* the "%h" encoding must round-trip every float bit pattern the engine
     can produce, including the non-finite ones a diverging run leaves in
     a snapshot *)
  let payload_nan = Int64.float_of_bits 0x7ff8_0000_dead_beefL in
  let specials =
    [ Float.nan; payload_nan; Float.infinity; Float.neg_infinity; -0.0;
      Float.min_float; Float.max_float; 4.9e-324 (* subnormal *) ]
  in
  List.iter
    (fun f ->
      match Checkpoint.parse_hex_float (Checkpoint.hex_float f) with
      | Some f' -> check_float_bits (Checkpoint.hex_float f) f f'
      | None ->
        Alcotest.failf "unparsable own rendering %S" (Checkpoint.hex_float f))
    specials;
  (* and through a whole checkpoint file *)
  let dir = fresh_dir "ckpt-special" in
  let file = Filename.concat dir "s.ckpt" in
  let ck = sample_checkpoint () in
  let ck =
    { ck with
      Checkpoint.snapshot =
        { ck.snapshot with
          Minflotransit.snap_sizes =
            [| Float.nan; payload_nan; Float.infinity; Float.neg_infinity;
               -0.0 |];
          snap_area = Float.infinity } }
  in
  (match Checkpoint.save file ck with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %s" (Diag.to_string e));
  (match Checkpoint.load file with
  | Error e -> Alcotest.failf "load: %s" (Diag.to_string e)
  | Ok ck' ->
    check_float_bits "inf area" ck.snapshot.snap_area
      ck'.Checkpoint.snapshot.Minflotransit.snap_area;
    Array.iteri
      (fun i x ->
        check_float_bits
          (Printf.sprintf "special size %d" i)
          x
          ck'.Checkpoint.snapshot.Minflotransit.snap_sizes.(i))
      ck.snapshot.snap_sizes);
  rm_rf dir

(* ---------- supervisor ---------- *)

let sup ?(parallel = 1) ?timeout ?(retries = 2) ?(isolate = true) ?watchdog ()
    =
  { Supervisor.parallel; timeout_seconds = timeout; retries;
    backoff_base = 0.01; isolate; watchdog_seconds = watchdog }

let test_supervisor_ok_isolated () =
  match Supervisor.run_all ~config:(sup ()) [ ("t", fun () -> Ok 42) ] with
  | [ ("t", { Supervisor.verdict = Ok v; attempts = 1; quarantined = false }) ]
    -> check int "marshalled result" 42 v
  | _ -> Alcotest.fail "unexpected outcome"

let test_supervisor_retries_transient () =
  (* fails on the first attempt, succeeds once the marker file exists;
     state is communicated through the filesystem because each attempt
     runs in its own process *)
  let dir = fresh_dir "sup-retry" in
  let marker = Filename.concat dir "attempted" in
  let thunk () =
    if Sys.file_exists marker then Ok 1
    else begin
      close_out (open_out marker);
      Error (Diag.Solver_diverged { solver = "simplex"; iters = 3 })
    end
  in
  (match Supervisor.run_all ~config:(sup ()) [ ("t", thunk) ] with
  | [ (_, { Supervisor.verdict = Ok 1; attempts = 2; quarantined = false }) ] -> ()
  | [ (_, o) ] ->
    Alcotest.failf "attempts=%d quarantined=%b ok=%b" o.Supervisor.attempts
      o.Supervisor.quarantined
      (Result.is_ok o.Supervisor.verdict)
  | _ -> Alcotest.fail "unexpected outcome");
  rm_rf dir

let test_supervisor_quarantines_structural () =
  let thunk () = Error (Diag.Unmet_target { target = 1.0; achieved = 2.0 }) in
  match Supervisor.run_all ~config:(sup ()) [ ("t", thunk) ] with
  | [ (_, { Supervisor.verdict = Error (Diag.Unmet_target _); attempts = 1;
            quarantined = true }) ] -> ()
  | _ -> Alcotest.fail "structural failure was not quarantined on sight"

let test_supervisor_quarantines_repeat_offender () =
  (* retryable error, but identical on consecutive attempts: one retry to
     observe the repetition, then quarantine without burning the rest *)
  let thunk () = Error (Diag.Solver_diverged { solver = "simplex"; iters = 3 }) in
  match Supervisor.run_all ~config:(sup ~retries:5 ()) [ ("t", thunk) ] with
  | [ (_, { Supervisor.verdict = Error (Diag.Solver_diverged _); attempts = 2;
            quarantined = true }) ] -> ()
  | [ (_, o) ] ->
    Alcotest.failf "attempts=%d quarantined=%b" o.Supervisor.attempts
      o.Supervisor.quarantined
  | _ -> Alcotest.fail "unexpected outcome"

let test_supervisor_timeout_kills () =
  let thunk () =
    while true do
      ignore (Sys.opaque_identity 0)
    done;
    Ok 0
  in
  match
    Supervisor.run_all ~config:(sup ~timeout:0.2 ~retries:0 ()) [ ("t", thunk) ]
  with
  | [ (_, { Supervisor.verdict = Error (Diag.Job_timeout _); quarantined = false;
            _ }) ] -> ()
  | [ (_, o) ] ->
    Alcotest.failf "quarantined=%b error=%s" o.Supervisor.quarantined
      (match o.Supervisor.verdict with
      | Error e -> Diag.error_code e
      | Ok _ -> "ok")
  | _ -> Alcotest.fail "unexpected outcome"

let test_supervisor_crash_is_contained () =
  let thunk () = Unix._exit 9 in
  match
    Supervisor.run_all ~config:(sup ~retries:0 ()) [ ("t", thunk) ]
  with
  | [ (_, { Supervisor.verdict = Error (Diag.Job_crashed _); _ }) ] -> ()
  | _ -> Alcotest.fail "abnormal exit not reported as a crash"

let test_supervisor_parallel_order () =
  let tasks =
    List.init 6 (fun i -> (string_of_int i, fun () -> Ok (i * i)))
  in
  let out = Supervisor.run_all ~config:(sup ~parallel:3 ()) tasks in
  check int "all ran" 6 (List.length out);
  List.iteri
    (fun i (id, o) ->
      check string "submission order" (string_of_int i) id;
      match o.Supervisor.verdict with
      | Ok v -> check int "value" (i * i) v
      | Error e -> Alcotest.failf "task %d: %s" i (Diag.to_string e))
    out

let test_supervisor_in_process_mode () =
  let calls = ref 0 in
  (* distinct (but retryable) errors on the first two attempts, so the
     repeat-offender quarantine does not kick in *)
  let thunk () =
    incr calls;
    match !calls with
    | 1 -> Error (Diag.Numeric { what = "flaky"; value = 1.0 })
    | 2 -> Error (Diag.Solver_diverged { solver = "simplex"; iters = 5 })
    | n -> Ok n
  in
  match
    Supervisor.run_all ~config:(sup ~isolate:false ~retries:5 ())
      [ ("t", thunk) ]
  with
  | [ (_, { Supervisor.verdict = Ok 3; attempts = 3; _ }) ] -> ()
  | [ (_, o) ] -> Alcotest.failf "attempts=%d" o.Supervisor.attempts
  | _ -> Alcotest.fail "unexpected outcome"

let test_supervisor_timeout_then_success () =
  (* attempt 1 wedges (and is SIGKILLed by the timeout), attempt 2 runs
     clean: a timeout is environmental, so the retry budget applies *)
  let dir = fresh_dir "sup-timeout-retry" in
  let marker = Filename.concat dir "attempted" in
  let thunk () =
    if Sys.file_exists marker then Ok 7
    else begin
      close_out (open_out marker);
      while true do
        ignore (Sys.opaque_identity 0)
      done;
      Ok 0
    end
  in
  (match
     Supervisor.run_all ~config:(sup ~timeout:0.3 ~retries:2 ()) [ ("t", thunk) ]
   with
  | [ (_, { Supervisor.verdict = Ok 7; attempts = 2; quarantined = false }) ] ->
    ()
  | [ (_, o) ] ->
    Alcotest.failf "attempts=%d quarantined=%b ok=%b" o.Supervisor.attempts
      o.Supervisor.quarantined
      (Result.is_ok o.Supervisor.verdict)
  | _ -> Alcotest.fail "unexpected outcome");
  rm_rf dir

let test_supervisor_watchdog_requeues_wedged_worker () =
  (* attempt 1 wedges with its heartbeat suppressed — the parent can only
     learn it is dead from the silence — attempt 2 runs clean *)
  let dir = fresh_dir "sup-watchdog" in
  let marker = Filename.concat dir "attempted" in
  let jpath = Filename.concat dir "journal.jsonl" in
  let journal =
    match Journal.open_append jpath with
    | Ok j -> j
    | Error e -> Alcotest.failf "journal: %s" (Diag.to_string e)
  in
  let thunk () =
    if Sys.file_exists marker then Ok 7
    else begin
      close_out (open_out marker);
      (* block SIGALRM so the heartbeat timer never fires, then hang:
         the event pipe goes silent exactly like a livelocked worker *)
      ignore (Unix.sigprocmask Unix.SIG_BLOCK [ Sys.sigalrm ]);
      Unix.sleep 30;
      Ok 0
    end
  in
  (match
     Supervisor.run_all ~config:(sup ~watchdog:0.3 ~retries:2 ()) ~journal
       [ ("t", thunk) ]
   with
  | [ (_, { Supervisor.verdict = Ok 7; attempts = 2; quarantined = false }) ]
    -> ()
  | [ (_, o) ] ->
    Alcotest.failf "attempts=%d quarantined=%b ok=%b" o.Supervisor.attempts
      o.Supervisor.quarantined
      (Result.is_ok o.Supervisor.verdict)
  | _ -> Alcotest.fail "unexpected outcome");
  Journal.close journal;
  let events = List.map fst (Journal.scan jpath) in
  check Alcotest.bool "watchdog kill journaled" true
    (List.mem "job-watchdog-kill" events);
  check int "spawned twice" 2
    (List.length (List.filter (( = ) "job-spawn") events));
  rm_rf dir

let test_supervisor_quarantines_when_error_stabilizes () =
  (* distinct transient errors keep the retry budget alive; the moment the
     same typed code repeats on consecutive attempts, the failure counts
     as deterministic and the job is quarantined without burning the rest
     of a large budget *)
  let dir = fresh_dir "sup-stabilize" in
  let counter = Filename.concat dir "n" in
  let thunk () =
    let n =
      if Sys.file_exists counter then
        let ic = open_in counter in
        let v = int_of_string (input_line ic) in
        close_in ic;
        v
      else 0
    in
    let oc = open_out counter in
    output_string oc (string_of_int (n + 1));
    close_out oc;
    if n = 0 then Error (Diag.Numeric { what = "first"; value = 1.0 })
    else Error (Diag.Solver_diverged { solver = "simplex"; iters = n })
  in
  (match
     Supervisor.run_all ~config:(sup ~retries:10 ()) [ ("t", thunk) ]
   with
  | [ (_, { Supervisor.verdict = Error (Diag.Solver_diverged _); attempts = 3;
            quarantined = true }) ] -> ()
  | [ (_, o) ] ->
    Alcotest.failf "attempts=%d quarantined=%b" o.Supervisor.attempts
      o.Supervisor.quarantined
  | _ -> Alcotest.fail "unexpected outcome");
  rm_rf dir

let test_supervisor_sigkill_between_checkpoints_requeues () =
  (* the worker emits a checkpoint event, then dies by SIGKILL before the
     next one — exactly a mid-job machine crash. The supervisor must
     classify the crash as transient, requeue, and the retry must succeed;
     the journal must hold attempt 1's checkpoint event, the retry, and
     the final verdict in within-job order *)
  let dir = fresh_dir "sup-sigkill-ckpt" in
  let marker = Filename.concat dir "attempted" in
  let jpath = Filename.concat dir "journal.jsonl" in
  let journal =
    match Journal.open_append jpath with
    | Ok j -> j
    | Error e -> Alcotest.failf "journal: %s" (Diag.to_string e)
  in
  let thunk (emit : Supervisor.emit) =
    if Sys.file_exists marker then begin
      emit ~fields:[ Journal.field_int "iter" 1 ] "job-checkpoint";
      Ok 99
    end
    else begin
      close_out (open_out marker);
      emit ~fields:[ Journal.field_int "iter" 0 ] "job-checkpoint";
      (* give the parent's pipe a moment, then die like a crashed host *)
      Unix.sleepf 0.05;
      Unix.kill (Unix.getpid ()) Sys.sigkill;
      Ok 0
    end
  in
  (match
     Supervisor.run_all_tasks ~config:(sup ~retries:2 ()) ~journal
       [ ("t", thunk) ]
   with
  | [ (_, { Supervisor.verdict = Ok 99; attempts = 2; quarantined = false }) ]
    -> ()
  | [ (_, o) ] ->
    Alcotest.failf "attempts=%d quarantined=%b ok=%b" o.Supervisor.attempts
      o.Supervisor.quarantined
      (Result.is_ok o.Supervisor.verdict)
  | _ -> Alcotest.fail "unexpected outcome");
  Journal.close journal;
  let events = List.map fst (Journal.scan jpath) in
  let expect =
    [ "job-spawn"; "job-checkpoint"; "job-retry"; "job-spawn";
      "job-checkpoint" ]
  in
  check (Alcotest.list string) "journal event order" expect events;
  rm_rf dir

(* ---------- supervisor: incremental pool ---------- *)

let test_pool_incremental_submit_and_cancel () =
  let dir = fresh_dir "pool-inc" in
  let slow = Filename.concat dir "slow-started" in
  let pool =
    Supervisor.pool_create ~config:(sup ~parallel:1 ~retries:0 ()) ()
  in
  Alcotest.(check bool) "fresh pool is idle" true (Supervisor.pool_idle pool);
  Supervisor.pool_submit pool ~id:"slow" (fun _ ->
      close_out (open_out slow);
      Unix.sleepf 5.0;
      Ok 1);
  Supervisor.pool_submit pool ~id:"queued" (fun _ -> Ok 2);
  Supervisor.pool_submit pool ~id:"third" (fun _ -> Ok 3);
  check int "load counts queued and running" 3 (Supervisor.pool_load pool);
  (* let the slow job actually start *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec wait_start () =
    ignore (Supervisor.pool_step pool);
    if Sys.file_exists slow then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "slow job never started"
    else begin
      Unix.sleepf 0.01;
      wait_start ()
    end
  in
  wait_start ();
  check int "one running" 1 (Supervisor.pool_running_count pool);
  (match Supervisor.pool_cancel pool "queued" with
  | `Cancelled_pending -> ()
  | _ -> Alcotest.fail "queued task should cancel from the queue");
  (match Supervisor.pool_cancel pool "slow" with
  | `Killed_running -> ()
  | _ -> Alcotest.fail "running task should be killed");
  (match Supervisor.pool_cancel pool "missing" with
  | `Not_found -> ()
  | _ -> Alcotest.fail "unknown id should be Not_found");
  let finished = ref [] in
  let rec drain () =
    finished := !finished @ Supervisor.pool_step pool;
    if not (Supervisor.pool_idle pool) then begin
      Unix.sleepf 0.01;
      drain ()
    end
  in
  drain ();
  (* cancelled-from-queue never reports; killed-running reports a crashed
     verdict without retrying; "third" completes normally *)
  let by_id id = List.assoc_opt id !finished in
  (match by_id "queued" with
  | None -> ()
  | Some _ -> Alcotest.fail "queue-cancelled task must not report");
  (match by_id "slow" with
  | Some { Supervisor.verdict = Error (Diag.Job_crashed { detail; _ });
           attempts = 1; _ } ->
    check string "cancel detail" "cancelled" detail
  | _ -> Alcotest.fail "killed task should finish as a cancelled crash");
  (match by_id "third" with
  | Some { Supervisor.verdict = Ok 3; _ } -> ()
  | _ -> Alcotest.fail "remaining task should complete");
  rm_rf dir

(* ---------- journal: single-writer advisory lock ---------- *)

let test_journal_lock_excludes_second_process () =
  let dir = fresh_dir "journal-lock" in
  let path = Filename.concat dir "journal.jsonl" in
  (match Journal.open_append path with
  | Error e -> Alcotest.failf "first open: %s" (Diag.to_string e)
  | Ok j -> (
    Journal.event j "held";
    (* POSIX record locks are per-process, so the conflict only shows from
       another process *)
    match Unix.fork () with
    | 0 ->
      let code =
        match Journal.open_append path with
        | Error (Diag.Journal_locked _) -> 0
        | Error _ -> 1
        | Ok _ -> 2
      in
      Unix._exit code
    | pid -> (
      let _, status = Unix.waitpid [] pid in
      (match status with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED 1 -> Alcotest.fail "child got a non-lock error"
      | Unix.WEXITED 2 -> Alcotest.fail "child acquired the held lock"
      | _ -> Alcotest.fail "child died abnormally");
      Journal.close j;
      (* the lock dies with the holder: reopening now must succeed *)
      match Journal.open_append path with
      | Ok j2 -> Journal.close j2
      | Error e ->
        Alcotest.failf "reopen after close: %s" (Diag.to_string e))));
  rm_rf dir

(* ---------- batch: SIGTERM seals the journal ---------- *)

let test_batch_sigterm_seals_journal () =
  let dir = fresh_dir "batch-sigterm" in
  let jobs =
    [ { Job.circuit = "c432"; factor = 0.4; solver = `Simplex };
      { Job.circuit = "c432"; factor = 0.45; solver = `Simplex } ]
  in
  let cfg =
    { Batch.default_config with
      Batch.checkpoint_dir = Some dir;
      supervise = sup ~parallel:1 () }
  in
  match Unix.fork () with
  | 0 ->
    (* stdout belongs to alcotest; the batch child stays silent *)
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 devnull Unix.stdout;
    ignore (Batch.run ~config:cfg jobs);
    Unix._exit 0
  | pid ->
    Unix.sleepf 0.4;
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    let _, status = Unix.waitpid [] pid in
    let events = List.map fst (Journal.scan (Filename.concat dir "journal.jsonl")) in
    (match status with
    | Unix.WEXITED 143 ->
      if not (List.mem "run-interrupted" events) then
        Alcotest.failf "no run-interrupted event; got: %s"
          (String.concat ", " events)
    | Unix.WEXITED 0 ->
      (* the batch outran the signal — the seal path wasn't exercised, but
         the journal must still be complete *)
      if not (List.mem "batch-end" events) then
        Alcotest.fail "batch finished but journal has no batch-end"
    | _ -> Alcotest.fail "batch child died abnormally");
    rm_rf dir

(* ---------- batch: bit-identical resume ---------- *)

(* Interrupt a run by tripping its iteration budget (the same code path a
   SIGKILL resumes through: the last on-disk checkpoint), then resume it
   and require the final area to match the uninterrupted run bit for bit. *)
let resume_bit_identical ~name ~circuit ~factor ~interrupt_after () =
  let dir = fresh_dir name in
  let job = { Job.circuit; factor; solver = `Simplex } in
  let base_cfg = Batch.default_config in
  let baseline =
    match Batch.run_job base_cfg job with
    | Ok o -> o
    | Error e -> Alcotest.failf "baseline: %s" (Diag.to_string e)
  in
  check bool "baseline refined past the seed" true (baseline.Job.iterations > 0);
  let interrupted_cfg =
    { base_cfg with
      Batch.checkpoint_dir = Some dir;
      engine =
        { Minflotransit.default_options with
          limits = Budget.limits ~max_iterations:interrupt_after () } }
  in
  (match Batch.run_job interrupted_cfg job with
  | Error (Diag.Budget_exhausted _) -> ()
  | Error e -> Alcotest.failf "interrupt: %s" (Diag.to_string e)
  | Ok _ ->
    Alcotest.failf "run converged before the %d-pass interrupt" interrupt_after);
  let ckpt = Filename.concat dir (Job.file_slug job ^ ".ckpt") in
  check bool "interrupted run left a checkpoint" true (Sys.file_exists ckpt);
  let resumed_cfg =
    { base_cfg with Batch.checkpoint_dir = Some dir; resume = true }
  in
  (match Batch.run_job resumed_cfg job with
  | Error e -> Alcotest.failf "resume: %s" (Diag.to_string e)
  | Ok o ->
    check bool "outcome marked resumed" true o.Job.resumed;
    check bool "met" true o.Job.met;
    check_float_bits "final area (resumed vs uninterrupted)" baseline.Job.area
      o.Job.area;
    check int "iteration count" baseline.Job.iterations o.Job.iterations;
    check bool "checkpoint consumed on success" false (Sys.file_exists ckpt));
  rm_rf dir

let test_resume_iscas85 =
  resume_bit_identical ~name:"resume-c432" ~circuit:"c432" ~factor:0.6
    ~interrupt_after:2

let test_resume_generated_adder () =
  (* a generated circuit, loaded through the .bench file path route *)
  let dir = fresh_dir "resume-adder-src" in
  let file = Filename.concat dir "adder8.bench" in
  Bench_format.write_file file (Generators.ripple_carry_adder ~bits:8 ());
  resume_bit_identical ~name:"resume-adder" ~circuit:file ~factor:0.6
    ~interrupt_after:2 ();
  rm_rf dir

let test_resume_supervised_batch () =
  (* the same guarantee end to end through Batch.run: supervised children,
     journal bookkeeping, quarantine of the budget-tripped job, then a
     --resume-style second batch *)
  let dir = fresh_dir "resume-batch" in
  let job = { Job.circuit = "c17"; factor = 0.6; solver = `Simplex } in
  let baseline =
    match Batch.run_job Batch.default_config job with
    | Ok o -> o
    | Error e -> Alcotest.failf "baseline: %s" (Diag.to_string e)
  in
  let interrupted_cfg =
    { Batch.default_config with
      checkpoint_dir = Some dir;
      supervise = sup ~retries:3 ();
      engine =
        { Minflotransit.default_options with
          limits = Budget.limits ~max_iterations:2 () } }
  in
  (match Batch.run ~config:interrupted_cfg [ job ] with
  | Error e -> Alcotest.failf "interrupted batch: %s" (Diag.to_string e)
  | Ok s ->
    check int "failed" 1 s.Batch.failed;
    match s.Batch.reports with
    | [ r ] ->
      check bool "budget trip quarantined, not retried" true r.Batch.quarantined;
      check int "single attempt" 1 r.Batch.attempts
    | _ -> Alcotest.fail "expected one report");
  let resumed_cfg =
    { Batch.default_config with
      checkpoint_dir = Some dir;
      resume = true;
      supervise = sup () }
  in
  (match Batch.run ~config:resumed_cfg [ job ] with
  | Error e -> Alcotest.failf "resumed batch: %s" (Diag.to_string e)
  | Ok s -> (
    check int "ok" 1 s.Batch.ok;
    match s.Batch.reports with
    | [ { Batch.outcome = Some (Ok o); _ } ] ->
      check bool "resumed" true o.Job.resumed;
      check_float_bits "area" baseline.Job.area o.Job.area
    | _ -> Alcotest.fail "expected one successful report"));
  (* a third run skips the job entirely: the journal records it complete *)
  (match Batch.run ~config:resumed_cfg [ job ] with
  | Error e -> Alcotest.failf "skip batch: %s" (Diag.to_string e)
  | Ok s ->
    check int "skipped" 1 s.Batch.skipped;
    check int "ok" 0 s.Batch.ok);
  rm_rf dir

let test_resume_rejects_foreign_checkpoint () =
  (* checkpoint from one circuit must not seed another *)
  let dir = fresh_dir "resume-foreign" in
  let job = { Job.circuit = "c17"; factor = 0.6; solver = `Simplex } in
  let cfg =
    { Batch.default_config with
      checkpoint_dir = Some dir;
      engine =
        { Minflotransit.default_options with
          limits = Budget.limits ~max_iterations:2 () } }
  in
  (match Batch.run_job cfg job with
  | Error (Diag.Budget_exhausted _) -> ()
  | _ -> Alcotest.fail "expected a budget trip");
  (* swap in a different circuit under the same job id *)
  let evil = Filename.concat dir "evil.bench" in
  Bench_format.write_file evil (Generators.ripple_carry_adder ~bits:4 ());
  let ckpt = Filename.concat dir (Job.file_slug job ^ ".ckpt") in
  (match Checkpoint.load ckpt with
  | Error e -> Alcotest.failf "load: %s" (Diag.to_string e)
  | Ok ck ->
    (match
       Checkpoint.validate ~file:ckpt ck
         ~circuit_hash:
           (Checkpoint.hash_netlist (Generators.ripple_carry_adder ~bits:4 ()))
         ~target:ck.Checkpoint.target ~solver:"simplex"
     with
    | Error (Diag.Checkpoint_invalid _) -> ()
    | Error e -> Alcotest.failf "wrong error: %s" (Diag.to_string e)
    | Ok () -> Alcotest.fail "foreign checkpoint validated"));
  rm_rf dir

(* ---------- differential verification ---------- *)

let test_differential_counterpart_is_independent () =
  List.iter
    (fun s ->
      check bool
        (Printf.sprintf "counterpart of %s differs" (Job.solver_name s))
        true
        (Differential.counterpart s <> s))
    [ `Auto; `Simplex; `Ssp; `Bellman_ford ]

let test_differential_catches_seeded_fault () =
  (* primary leg runs SSP cleanly; the simplex counterpart leg is poisoned
     through the fault plan, degrades to its TILOS seed, and the area gap
     must surface as the typed differential-mismatch diagnostic *)
  let job = { Job.circuit = "c17"; factor = 0.6; solver = `Ssp } in
  let make_fault _ =
    let f = Fault.create ~seed:7 () in
    Fault.arm f ~site:"dphase.simplex"
      (Fault.Fail (Diag.Fault_injected { site = "dphase.simplex" }));
    Some f
  in
  let cfg =
    { Batch.default_config with
      supervise = sup ~isolate:false ();
      differential = true;
      fault_seed = Some 7;
      make_fault }
  in
  match Batch.run ~config:cfg [ job ] with
  | Error e -> Alcotest.failf "batch: %s" (Diag.to_string e)
  | Ok s -> (
    check int "mismatches" 1 s.Batch.mismatches;
    match s.Batch.reports with
    | [ { Batch.differential = Some (Error e); _ } ] -> (
      check string "stable code" "differential-mismatch" (Diag.error_code e);
      match e with
      | Diag.Differential_mismatch m ->
        check string "primary solver" "ssp" m.solver_a;
        check string "secondary solver" "simplex" m.solver_b;
        check bool "areas actually differ" true (m.value_a <> m.value_b)
      | _ -> Alcotest.fail "wrong constructor")
    | _ -> Alcotest.fail "expected one report with a differential verdict")

(* ---------- pre-flight lint gate ---------- *)

let cyclic_bench_file dir =
  let file = Filename.concat dir "looped.bench" in
  let oc = open_out file in
  output_string oc
    "INPUT(a)\nOUTPUT(y)\ng1 = AND(g2, a)\ng2 = AND(g1, a)\ny = NAND(g1, a)\n";
  close_out oc;
  file

let test_preflight_quarantines_lint_failure () =
  let dir = fresh_dir "preflight" in
  let file = cyclic_bench_file dir in
  (* two jobs on the same broken circuit plus one healthy one: the broken
     pair is gated before any fork (zero attempts), the healthy job runs *)
  let jobs =
    [ { Job.circuit = file; factor = 0.6; solver = `Simplex };
      { Job.circuit = file; factor = 0.8; solver = `Ssp };
      { Job.circuit = "c17"; factor = 0.6; solver = `Simplex } ]
  in
  let cfg =
    { Batch.default_config with
      checkpoint_dir = Some dir;
      supervise = sup ~isolate:false () }
  in
  (match Batch.run ~config:cfg jobs with
  | Error e -> Alcotest.failf "batch: %s" (Diag.to_string e)
  | Ok s -> (
    check int "ok" 1 s.Batch.ok;
    check int "failed" 2 s.Batch.failed;
    match s.Batch.reports with
    | [ r1; r2; r3 ] ->
      List.iter
        (fun (r : Batch.job_report) ->
          check bool "quarantined" true r.Batch.quarantined;
          check int "zero attempts: never forked" 0 r.Batch.attempts;
          match r.Batch.outcome with
          | Some (Error (Diag.Lint_error { rule; line; _ })) ->
            check string "rule" "MF001" rule;
            check int "line of the first cycle member" 3 line
          | _ -> Alcotest.fail "expected a typed lint error")
        [ r1; r2 ];
      check bool "healthy job unaffected" true
        (match r3.Batch.outcome with Some (Ok _) -> true | _ -> false)
    | _ -> Alcotest.fail "expected three reports"));
  (* the gate is journaled as its own event, distinct from job-fail *)
  let journal = In_channel.with_open_text (Filename.concat dir "journal.jsonl")
      In_channel.input_all in
  check bool "journaled" true
    (let needle = "job-lint-quarantined" in
     let lh = String.length journal and ln = String.length needle in
     let rec go i = i + ln <= lh && (String.sub journal i ln = needle || go (i + 1)) in
     go 0);
  rm_rf dir

let test_preflight_can_be_disabled () =
  let dir = fresh_dir "preflight-off" in
  let file = cyclic_bench_file dir in
  let job = { Job.circuit = file; factor = 0.6; solver = `Simplex } in
  let cfg =
    { Batch.default_config with
      supervise = sup ~isolate:false ();
      preflight = false }
  in
  (match Batch.run ~config:cfg [ job ] with
  | Error e -> Alcotest.failf "batch: %s" (Diag.to_string e)
  | Ok s -> (
    match s.Batch.reports with
    | [ r ] -> (
      (* without the gate the job reaches the supervisor, which burns an
         attempt before quarantining the (structural) parse failure *)
      check bool "still quarantined" true r.Batch.quarantined;
      check bool "attempted at least once" true (r.Batch.attempts >= 1);
      match r.Batch.outcome with
      | Some (Error (Diag.Parse_error _)) -> ()
      | _ -> Alcotest.fail "expected the elaborator's parse error")
    | _ -> Alcotest.fail "expected one report"));
  rm_rf dir

let test_differential_clean_run_agrees () =
  let job = { Job.circuit = "c17"; factor = 0.6; solver = `Simplex } in
  let cfg =
    { Batch.default_config with
      supervise = sup ~isolate:false ();
      differential = true }
  in
  match Batch.run ~config:cfg [ job ] with
  | Error e -> Alcotest.failf "batch: %s" (Diag.to_string e)
  | Ok s -> (
    check int "mismatches" 0 s.Batch.mismatches;
    match s.Batch.reports with
    | [ { Batch.differential = Some (Ok ()); _ } ] -> ()
    | _ -> Alcotest.fail "expected an agreeing differential verdict")

let () =
  Alcotest.run "runner"
    [ ( "job",
        [ Alcotest.test_case "id and slug" `Quick test_job_id_and_slug;
          Alcotest.test_case "cross grid" `Quick test_job_cross;
          Alcotest.test_case "solver names round trip" `Quick
            test_job_solver_names ] );
      ( "checkpoint",
        [ Alcotest.test_case "bit-exact round trip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "garbage and truncation rejected" `Quick
            test_checkpoint_rejects_garbage;
          Alcotest.test_case "validation" `Quick test_checkpoint_validate;
          Alcotest.test_case "circuit hash sensitivity" `Quick
            test_circuit_hash_sensitivity;
          Alcotest.test_case "nan/inf round-trip bit-exact" `Quick
            test_checkpoint_special_floats ] );
      ( "journal",
        [ Alcotest.test_case "completed scan survives truncation" `Quick
            test_journal_completed_scan;
          Alcotest.test_case "torn final line sealed on reopen" `Quick
            test_journal_torn_line_recovery;
          Alcotest.test_case "advisory lock excludes a second process" `Quick
            test_journal_lock_excludes_second_process ] );
      ( "supervisor",
        [ Alcotest.test_case "isolated success" `Quick test_supervisor_ok_isolated;
          Alcotest.test_case "transient failure retries" `Quick
            test_supervisor_retries_transient;
          Alcotest.test_case "structural failure quarantines" `Quick
            test_supervisor_quarantines_structural;
          Alcotest.test_case "repeat offender quarantines" `Quick
            test_supervisor_quarantines_repeat_offender;
          Alcotest.test_case "timeout kills the child" `Quick
            test_supervisor_timeout_kills;
          Alcotest.test_case "crash is contained" `Quick
            test_supervisor_crash_is_contained;
          Alcotest.test_case "parallel keeps submission order" `Quick
            test_supervisor_parallel_order;
          Alcotest.test_case "in-process mode" `Quick
            test_supervisor_in_process_mode;
          Alcotest.test_case "watchdog requeues a wedged worker" `Quick
            test_supervisor_watchdog_requeues_wedged_worker;
          Alcotest.test_case "timeout then success" `Quick
            test_supervisor_timeout_then_success;
          Alcotest.test_case "quarantine when the error stabilizes" `Quick
            test_supervisor_quarantines_when_error_stabilizes;
          Alcotest.test_case "sigkill between checkpoints requeues" `Quick
            test_supervisor_sigkill_between_checkpoints_requeues;
          Alcotest.test_case "incremental pool submit and cancel" `Quick
            test_pool_incremental_submit_and_cancel ] );
      ( "resume",
        [ Alcotest.test_case "bit-identical (c432)" `Slow test_resume_iscas85;
          Alcotest.test_case "bit-identical (generated adder)" `Quick
            test_resume_generated_adder;
          Alcotest.test_case "supervised batch end to end" `Quick
            test_resume_supervised_batch;
          Alcotest.test_case "foreign checkpoint rejected" `Quick
            test_resume_rejects_foreign_checkpoint;
          Alcotest.test_case "sigterm seals the journal" `Quick
            test_batch_sigterm_seals_journal ] );
      ( "preflight",
        [ Alcotest.test_case "lint failure quarantined without a fork" `Quick
            test_preflight_quarantines_lint_failure;
          Alcotest.test_case "gate can be disabled" `Quick
            test_preflight_can_be_disabled ] );
      ( "differential",
        [ Alcotest.test_case "counterpart independence" `Quick
            test_differential_counterpart_is_independent;
          Alcotest.test_case "seeded fault is caught" `Quick
            test_differential_catches_seeded_fault;
          Alcotest.test_case "clean run agrees" `Quick
            test_differential_clean_run_agrees ] ) ]
